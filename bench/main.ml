(* Benchmark harness regenerating every table and figure of the paper's
   evaluation section (see DESIGN.md for the experiment index and
   EXPERIMENTS.md for paper-vs-measured). Run with no argument for all
   experiments at the default (scaled-down) size, or name experiments:

     dune exec bench/main.exe -- fig7 table3
     DIVM_BENCH=full dune exec bench/main.exe -- table1

   Absolute numbers depend on the machine and the scaled streams; the
   reproduction targets are the *shapes*: who wins, by what order of
   magnitude, where the crossovers are. *)

open Divm
module B = Divm_bench.Bench_util

(* ------------------------------------------------------------------ *)
(* Shared workload plumbing                                            *)
(* ------------------------------------------------------------------ *)

let tpch_cfg = { Tpch.Gen.scale = B.tpch_scale; seed = 2016 }
let tpcds_cfg = { Tpcds.Gen.scale = B.tpcds_scale; seed = 2016 }

let compile_tpch ?(preagg = true) (q : Tpch.Queries.t) =
  Compile.compile
    ~options:{ Compile.default_options with preaggregate = preagg }
    ~streams:Tpch.Schema.streams q.maps

let compile_tpcds ?(preagg = true) (q : Tpcds.Queries.t) =
  Compile.compile
    ~options:{ Compile.default_options with preaggregate = preagg }
    ~streams:Tpcds.Schema.streams q.maps

(* Feed a stream, time-budgeted: returns tuples/second. *)
let feed_budget ~budget apply stream =
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. budget in
  let tuples = ref 0 in
  (try
     List.iter
       (fun (rel, b) ->
         apply ~rel b;
         tuples := !tuples + Gmr.cardinal b;
         if Unix.gettimeofday () > deadline then raise Exit)
       stream
   with Exit -> ());
  let dt = Unix.gettimeofday () -. t0 in
  if !tuples = 0 then nan else float_of_int !tuples /. dt

let budget = if B.full_mode then 3.0 else 0.6

(* Warm-up/measure split: load the first 70% of the stream (coalesced into
   one batch per relation, which reaches the same state) so that the
   measured window sees steady-state base sizes — otherwise per-batch scan
   costs of the non-incremental engines are hidden by the empty-database
   prefix. *)
let split_warm stream =
  let total = List.fold_left (fun a (_, b) -> a + Gmr.cardinal b) 0 stream in
  let cut = total * 7 / 10 in
  let rec go acc n = function
    | [] -> (List.rev acc, [])
    | ((r, b) :: tl) as rest ->
        if n >= cut then (List.rev acc, rest)
        else go ((r, b) :: acc) (n + Gmr.cardinal b) tl
  in
  let warm, measure = go [] 0 stream in
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (r, b) ->
      match Hashtbl.find_opt tbl r with
      | None ->
          Hashtbl.add tbl r (Gmr.copy b);
          order := r :: !order
      | Some g -> Gmr.union_into g b)
    warm;
  (List.rev_map (fun r -> (r, Hashtbl.find tbl r)) !order, measure)

(* [measured_rate ~load ~measure stream]: tup/s of [measure] at steady
   state: the prefix is bulk-loaded, the suffix measured. *)
let measured_rate ~load ~measure stream =
  let prefix, suffix = split_warm stream in
  load prefix;
  feed_budget ~budget measure suffix

(* Batched throughput of a compiled runtime at one batch size. *)
let batched_rate stream_of prog bs =
  let rt = Runtime.create prog in
  measured_rate ~load:(Runtime.load rt)
    ~measure:(fun ~rel b -> ignore (Runtime.apply_batch rt ~rel b))
    (stream_of bs)

(* Single-tuple specialized throughput. *)
let single_rate stream_of prog =
  let rt = Runtime.create prog in
  measured_rate ~load:(Runtime.load rt)
    ~measure:(fun ~rel b ->
      Gmr.iter (fun tup m -> ignore (Runtime.apply_single rt ~rel tup m)) b)
    (stream_of 1000)

(* ------------------------------------------------------------------ *)
(* Fig. 7 / Fig. 12: normalized throughput vs batch size               *)
(* ------------------------------------------------------------------ *)

let normalized_throughput ~title ~queries ~stream_of ~compile_preagg
    ~compile_single =
  let header =
    "query" :: "single(tup/s)"
    :: List.map (fun b -> Printf.sprintf "B=%d" b) B.batch_sizes
  in
  let rows =
    List.map
      (fun qname ->
        let base = compile_single qname in
        let sr = single_rate stream_of base in
        let prog = compile_preagg qname in
        qname :: B.fmt_rate sr
        :: List.map
             (fun bs -> B.fmt_ratio (batched_rate stream_of prog bs /. sr))
             B.batch_sizes)
      queries
  in
  B.print_table ~title ~header rows

let fig7_queries =
  if B.full_mode then
    List.map (fun (q : Tpch.Queries.t) -> q.qname) Tpch.Queries.all
  else
    [ "Q1"; "Q3"; "Q4"; "Q6"; "Q12"; "Q13"; "Q14"; "Q17"; "Q19"; "Q22" ]

let fig7 () =
  normalized_throughput
    ~title:
      "Fig 7 — TPC-H batched throughput normalized to single-tuple \
       execution"
    ~queries:fig7_queries
    ~stream_of:(fun bs -> Tpch.Gen.stream tpch_cfg ~batch_size:bs)
    ~compile_preagg:(fun qn -> compile_tpch (Tpch.Queries.find qn))
    ~compile_single:(fun qn -> compile_tpch ~preagg:false (Tpch.Queries.find qn))

let fig12 () =
  normalized_throughput
    ~title:
      "Fig 12 — TPC-DS batched throughput normalized to single-tuple \
       execution"
    ~queries:(List.map (fun (q : Tpcds.Queries.t) -> q.qname) Tpcds.Queries.all)
    ~stream_of:(fun bs -> Tpcds.Gen.stream tpcds_cfg ~batch_size:bs)
    ~compile_preagg:(fun qn -> compile_tpcds (Tpcds.Queries.find qn))
    ~compile_single:(fun qn ->
      compile_tpcds ~preagg:false (Tpcds.Queries.find qn))

(* ------------------------------------------------------------------ *)
(* Fig. 8 / Table 1: engine comparison across batch sizes              *)
(* ------------------------------------------------------------------ *)

let engine_rate engine ~streams ~maps ~stream_of bs =
  let e = Baseline.create engine ~streams maps in
  measured_rate ~load:(Baseline.load e)
    ~measure:(fun ~rel b -> ignore (Baseline.apply_batch e ~rel b))
    (stream_of bs)

let engine_single ~streams ~maps ~stream_of =
  let e = Baseline.create Baseline.Rivm ~streams maps in
  measured_rate ~load:(Baseline.load e)
    ~measure:(fun ~rel b ->
      Gmr.iter (fun tup m -> ignore (Baseline.apply_single e ~rel tup m)) b)
    (stream_of 1000)

(* The engine-comparison experiments need base tables that dwarf the batch
   (the paper's stream is 10 GB): a larger stream makes re-evaluation and
   classical IVM pay their per-batch scan costs. *)
let big_tpch_cfg =
  { Tpch.Gen.scale = (if B.full_mode then 48.0 else 12.0); seed = 2016 }

let big_tpcds_cfg =
  { Tpcds.Gen.scale = (if B.full_mode then 48.0 else 12.0); seed = 2016 }

let fig8 () =
  let q = Tpch.Queries.find "Q17" in
  let streams = Tpch.Schema.streams in
  let stream_of bs = Tpch.Gen.stream big_tpch_cfg ~batch_size:bs in
  let header =
    "engine" :: "single"
    :: List.map (fun b -> Printf.sprintf "B=%d" b) B.batch_sizes
  in
  let row engine name =
    name
    :: (match engine with
       | Some Baseline.Rivm ->
           B.fmt_rate (engine_single ~streams ~maps:q.maps ~stream_of)
       | _ -> "-")
    :: List.map
         (fun bs ->
           match engine with
           | Some e ->
               B.fmt_rate (engine_rate e ~streams ~maps:q.maps ~stream_of bs)
           | None -> "-")
         B.batch_sizes
  in
  B.print_table
    ~title:
      "Fig 8 — TPC-H Q17 view refresh rate (tuples/s): re-evaluation vs \
       classical IVM vs recursive IVM"
    ~header
    [
      row (Some Baseline.Reeval) "Re-eval (generic engine)";
      row (Some Baseline.Classical) "IVM (generic engine)";
      row (Some Baseline.Rivm) "RIVM (specialized)";
    ]

let table1_queries =
  if B.full_mode then
    List.map (fun (q : Tpch.Queries.t) -> ("tpch", q.qname)) Tpch.Queries.all
    @ List.map
        (fun (q : Tpcds.Queries.t) -> ("tpcds", q.qname))
        Tpcds.Queries.all
  else
    [
      ("tpch", "Q1"); ("tpch", "Q3"); ("tpch", "Q6"); ("tpch", "Q13");
      ("tpch", "Q17"); ("tpch", "Q22"); ("tpcds", "DS3"); ("tpcds", "DS34");
      ("tpcds", "DS55");
    ]

let table1 () =
  let sizes = if B.full_mode then [ 1; 100; 10000 ] else [ 1; 100; 1000 ] in
  let header =
    "query"
    :: List.concat_map
         (fun e ->
           List.map (fun b -> Printf.sprintf "%s B=%d" e b) sizes)
         [ "reeval"; "ivm"; "rivm" ]
  in
  let rows =
    List.map
      (fun (family, qn) ->
        let streams, maps, stream_of =
          match family with
          | "tpch" ->
              ( Tpch.Schema.streams,
                (Tpch.Queries.find qn).maps,
                fun bs -> Tpch.Gen.stream big_tpch_cfg ~batch_size:bs )
          | _ ->
              ( Tpcds.Schema.streams,
                (Tpcds.Queries.find qn).maps,
                fun bs -> Tpcds.Gen.stream big_tpcds_cfg ~batch_size:bs )
        in
        qn
        :: List.concat_map
             (fun engine ->
               List.map
                 (fun bs ->
                   B.fmt_rate (engine_rate engine ~streams ~maps ~stream_of bs))
                 sizes)
             [ Baseline.Reeval; Baseline.Classical; Baseline.Rivm ])
      table1_queries
  in
  B.print_table
    ~title:
      "Table 1 — throughput (tuples/s) of re-evaluation, classical IVM and \
       recursive IVM across batch sizes"
    ~header rows

(* ------------------------------------------------------------------ *)
(* Table 2: cache locality of TPC-H Q3                                 *)
(* ------------------------------------------------------------------ *)

let table2 () =
  let q = Tpch.Queries.find "Q3" in
  let sizes = [ 1; 10; 100; 1000; 10000 ] in
  let run_mode label loader =
    let h = Cachesim.default_hierarchy () in
    let detach = Cachesim.attach h in
    let ops = loader () in
    detach ();
    let c = Cachesim.counters h in
    [
      label;
      string_of_int ops;
      string_of_int c.Cachesim.l1d_refs;
      string_of_int c.l1d_misses;
      string_of_int c.llc_refs;
      string_of_int c.llc_misses;
    ]
  in
  let rows =
    run_mode "single"
      (fun () ->
        let prog = compile_tpch ~preagg:false q in
        let rt = Runtime.create prog in
        Runtime.reset_ops rt;
        List.iter
          (fun (rel, b) ->
            Gmr.iter
              (fun tup m -> ignore (Runtime.apply_single rt ~rel tup m))
              b)
          (Tpch.Gen.stream tpch_cfg ~batch_size:1000);
        Runtime.ops rt)
    :: List.map
         (fun bs ->
           run_mode
             (Printf.sprintf "B=%d" bs)
             (fun () ->
               let prog = compile_tpch q in
               let rt = Runtime.create prog in
               Runtime.reset_ops rt;
               List.iter
                 (fun (rel, b) -> ignore (Runtime.apply_batch rt ~rel b))
                 (Tpch.Gen.stream tpch_cfg ~batch_size:bs);
               Runtime.ops rt))
         sizes
    @ [
        (* same batched plan on the row-at-a-time (generic) executor:
           isolates what typed columnar batches buy in locality *)
        run_mode "B=1000 (generic rows)" (fun () ->
            let prog = compile_tpch q in
            let rt = Runtime.create ~columnar:false prog in
            Runtime.reset_ops rt;
            List.iter
              (fun (rel, b) -> ignore (Runtime.apply_batch rt ~rel b))
              (Tpch.Gen.stream tpch_cfg ~batch_size:1000);
            Runtime.ops rt);
      ]
  in
  B.print_table
    ~title:
      "Table 2 — cache behaviour of TPC-H Q3 (simulated 32KiB L1D + 15MiB \
       LLC over the storage access stream)"
    ~header:[ "mode"; "record ops"; "L1D refs"; "L1D miss"; "LLC refs"; "LLC miss" ]
    rows;
  (* Selection-vector contrast: the scan-bound queries whose constant
     filters hoist to columnar kernels, each replayed at B=1000 through
     the vectorized executor (selvec) and the per-row generic executor
     under the same cache model. *)
  let selvec_rows =
    List.concat_map
      (fun qn ->
        let q = Tpch.Queries.find qn in
        List.map
          (fun (label, columnar) ->
            run_mode
              (Printf.sprintf "%s %s" qn label)
              (fun () ->
                let prog = compile_tpch q in
                let rt = Runtime.create ~columnar prog in
                Runtime.reset_ops rt;
                List.iter
                  (fun (rel, b) -> ignore (Runtime.apply_batch rt ~rel b))
                  (Tpch.Gen.stream tpch_cfg ~batch_size:1000);
                Runtime.ops rt))
          [ ("selvec", true); ("generic rows", false) ])
      [ "Q3"; "Q6"; "Q22" ]
  in
  B.print_table
    ~title:
      "Table 2b — selection-vector kernels vs per-row execution (B=1000, \
       same cache model)"
    ~header:[ "mode"; "record ops"; "L1D refs"; "L1D miss"; "LLC refs"; "LLC miss" ]
    selvec_rows

(* ------------------------------------------------------------------ *)
(* Fig. 5 + Table 3: distributed program structure                     *)
(* ------------------------------------------------------------------ *)

let dist_prog ?(level = 3) ?(delta_at = `Workers) (q : Tpch.Queries.t) =
  let prog = compile_tpch q in
  let catalog = Loc.heuristic ~keys:Tpch.Schema.partition_keys prog in
  Distribute.compile ~options:{ Distribute.level; delta_at } ~catalog prog

let fig5 () =
  let q = Tpch.Queries.find "Q3" in
  let before = dist_prog ~level:1 ~delta_at:`Driver q in
  let after = dist_prog ~level:3 ~delta_at:`Driver q in
  let count dp =
    List.fold_left
      (fun (l, d) tr ->
        let l', d' = Dprog.block_counts tr in
        (l + l', d + d'))
      (0, 0) dp.Dprog.dtriggers
  in
  let bl, bd = count before and al, ad = count after in
  Printf.printf
    "\n== Fig 5 — block fusion on TPC-H Q3 ==\nbefore fusion: %d local + %d \
     distributed blocks\nafter fusion:  %d local + %d distributed blocks\n\n\
     Fused program:\n"
    bl bd al ad;
  Format.printf "%a@." Dprog.pp after

let table3 () =
  let rows =
    List.map
      (fun (q : Tpch.Queries.t) ->
        let dp = dist_prog q in
        let lineitem_jobs, lineitem_stages =
          Dprog.jobs_and_stages dp "lineitem"
        in
        let total_jobs, total_stages =
          List.fold_left
            (fun (j, s) (tr : Dprog.dtrigger) ->
              let j', s' = Dprog.jobs_and_stages dp tr.drelation in
              (j + j', s + s'))
            (0, 0) dp.dtriggers
        in
        [
          q.qname;
          string_of_int lineitem_jobs;
          string_of_int lineitem_stages;
          string_of_int total_jobs;
          string_of_int total_stages;
        ])
      Tpch.Queries.all
  in
  B.print_table
    ~title:
      "Table 3 — jobs and stages per update batch (lineitem trigger / all \
       triggers)"
    ~header:[ "query"; "L jobs"; "L stages"; "jobs(all)"; "stages(all)" ]
    rows

(* ------------------------------------------------------------------ *)
(* Cluster experiments (Figs. 9, 10, 11, 13)                           *)
(* ------------------------------------------------------------------ *)

(* TPC-H streams for the cluster experiments are expensive to synthesize;
   memoize them by (scale, batch size). *)
let stream_cache : (float * int, (string * Gmr.t) list) Hashtbl.t =
  Hashtbl.create 8

let cached_stream ~scale ~batch =
  match Hashtbl.find_opt stream_cache (scale, batch) with
  | Some s -> s
  | None ->
      let s = Tpch.Gen.stream { Tpch.Gen.scale; seed = 2016 } ~batch_size:batch in
      Hashtbl.replace stream_cache (scale, batch) s;
      s

(* The relation whose batches a query's distributed latency is measured on:
   the highest-volume stream the query actually triggers on. *)
let measured_rel q =
  let maps = (Tpch.Queries.find q).maps in
  let rels = List.concat_map (fun (_, e) -> Calc.base_rels e) maps in
  match
    List.find_opt
      (fun r -> List.mem r rels)
      [ "lineitem"; "orders"; "partsupp"; "customer"; "part"; "supplier" ]
  with
  | Some r -> r
  | None -> "lineitem"

(* Feed the stream into the cluster; collect modeled metrics of the measured
   relation's batches. *)
let cluster_run ?(level = 3) ~workers ~batch q =
  let dp = dist_prog ~level (Tpch.Queries.find q) in
  let c = Cluster.create ~config:(Cluster.config ~workers ()) dp in
  let need = 3 * batch in
  let scale = Float.max 1.0 (float_of_int need /. 6000. *. 1.15) in
  let stream = cached_stream ~scale ~batch in
  let mrel = measured_rel q in
  let metrics = ref [] in
  List.iter
    (fun (rel, b) ->
      let m = Cluster.apply_batch c ~rel b in
      if rel = mrel && Gmr.cardinal b >= batch / 2 then
        metrics := m :: !metrics)
    stream;
  !metrics

let fig9_queries = [ "Q6"; "Q17"; "Q3"; "Q7" ]

let fig9 () =
  let per_worker = 100_000 / B.dist_div in
  let header =
    "query"
    :: List.map (fun w -> Printf.sprintf "W=%d" w) B.worker_counts
  in
  let latency_rows, thr_rows =
    List.split
      (List.map
         (fun q ->
           let cells =
             List.map
               (fun w ->
                 let ms = cluster_run ~workers:w ~batch:(w * per_worker) q in
                 let lat =
                   B.median (List.map (fun m -> m.Cluster.latency) ms)
                 in
                 ( B.fmt_sec lat,
                   B.fmt_rate (float_of_int (w * per_worker) /. lat) ))
               B.worker_counts
           in
           (q :: List.map fst cells, q :: List.map snd cells))
         fig9_queries)
  in
  B.print_table
    ~title:
      (Printf.sprintf
         "Fig 9 — weak scalability: median batch latency (batch = %d \
          tuples/worker; paper: 100k/worker)"
         per_worker)
    ~header latency_rows;
  B.print_table ~title:"Fig 9 — weak scalability: throughput (tuples/s)"
    ~header thr_rows

let strong ~title ~queries ~totals () =
  let header =
    "query/batch"
    :: List.map (fun w -> Printf.sprintf "W=%d" w) B.worker_counts
  in
  let rows =
    List.concat_map
      (fun q ->
        List.map
          (fun total ->
            Printf.sprintf "%s %s" q (B.fmt_rate (float_of_int total))
            :: List.map
                 (fun w ->
                   let ms = cluster_run ~workers:w ~batch:total q in
                   B.fmt_sec
                     (B.median (List.map (fun m -> m.Cluster.latency) ms)))
                 B.worker_counts)
          totals)
      queries
  in
  B.print_table ~title ~header rows

let fig10 () =
  let totals =
    List.map
      (fun t -> t / B.dist_div)
      (if B.full_mode then [ 50_000_000; 200_000_000 ]
       else [ 50_000_000; 100_000_000 ])
  in
  strong
    ~title:
      (Printf.sprintf
         "Fig 10 — strong scalability: median batch latency (batch sizes = \
          paper's 50M/200M ÷ %d)"
         B.dist_div)
    ~queries:[ "Q6"; "Q17"; "Q3"; "Q7" ] ~totals ()

let fig11 () =
  let totals = [ 50_000_000 / B.dist_div ] in
  strong
    ~title:
      (Printf.sprintf
         "Fig 11 — strong scalability, more TPC-H queries (batch = 100M ÷ %d)"
         B.dist_div)
    ~queries:[ "Q1"; "Q4"; "Q12"; "Q13"; "Q14"; "Q19"; "Q22" ]
    ~totals ()

(* Spark SQL re-evaluation stand-in: the re-evaluation program compiled for
   the cluster. *)
let sparksql () =
  let total = 100_000_000 / B.dist_div in
  let header =
    "query"
    :: List.map (fun w -> Printf.sprintf "W=%d" w) B.worker_counts
  in
  let rows =
    List.map
      (fun qn ->
        let q = Tpch.Queries.find qn in
        let prog =
          Preagg.apply
            (Compile.compile_reeval ~streams:Tpch.Schema.streams q.maps)
        in
        let catalog = Loc.heuristic ~keys:Tpch.Schema.partition_keys prog in
        let dp = Distribute.compile ~catalog prog in
        qn
        :: List.map
             (fun w ->
               let c =
                 Cluster.create ~config:(Cluster.config ~workers:w ()) dp
               in
               let scale =
                 Float.max 1.0 (float_of_int (3 * total) /. 6000. *. 1.15)
               in
               let stream = cached_stream ~scale ~batch:total in
               let lats = ref [] and comp = ref [] in
               List.iter
                 (fun (rel, b) ->
                   let m = Cluster.apply_batch c ~rel b in
                   if rel = "lineitem" && Gmr.cardinal b >= total / 2 then begin
                     lats := m.Cluster.latency :: !lats;
                     comp :=
                       (float_of_int m.Cluster.max_worker_ops *. 6e-8)
                       :: !comp
                   end)
                 stream;
               Printf.sprintf "%s (c %s)"
                 (B.fmt_sec (B.median !lats))
                 (B.fmt_sec (B.median !comp)))
             B.worker_counts)
      [ "Q6"; "Q3" ]
  in
  B.print_table
    ~title:
      (Printf.sprintf
         "Fig 10 (dashed lines) — Spark-SQL-style re-evaluation on the \
          cluster (batch = 100M ÷ %d; 'c' = compute component, the part \
          that dwarfs incremental maintenance as streams grow)"
         B.dist_div)
    ~header rows

let fig13 () =
  let total = 100_000_000 / B.dist_div in
  let header =
    "level"
    :: List.map (fun w -> Printf.sprintf "W=%d" w) B.worker_counts
  in
  let rows =
    List.map
      (fun (level, label) ->
        label
        :: List.map
             (fun w ->
               let ms = cluster_run ~level ~workers:w ~batch:total "Q3" in
               B.fmt_sec (B.median (List.map (fun m -> m.Cluster.latency) ms)))
             B.worker_counts)
      [
        (0, "O0 naive");
        (1, "O1 +simplification");
        (2, "O2 +block fusion");
        (3, "O3 +CSE/DCE");
      ]
  in
  B.print_table
    ~title:
      (Printf.sprintf
         "Fig 13 — optimization ablation on TPC-H Q3 (batch = 200M ÷ %d)"
         B.dist_div)
    ~header rows;
  (* shuffled bytes tell the mechanism *)
  let rows2 =
    List.map
      (fun level ->
        let ms = cluster_run ~level ~workers:8 ~batch:total "Q3" in
        [
          Printf.sprintf "O%d" level;
          B.fmt_bytes
            (List.fold_left (fun a m -> a + m.Cluster.bytes_shuffled) 0 ms
            / max 1 (List.length ms));
          string_of_int
            (match ms with m :: _ -> m.Cluster.stages | [] -> 0);
        ])
      [ 0; 1; 2; 3 ]
  in
  B.print_table ~title:"Fig 13 (mechanism) — bytes shuffled and stages per batch at W=8"
    ~header:[ "level"; "shuffled/batch"; "stages" ] rows2

(* ------------------------------------------------------------------ *)
(* Ablations called out in DESIGN.md                                   *)
(* ------------------------------------------------------------------ *)

let ablation_preagg () =
  let stream_of bs = Tpch.Gen.stream tpch_cfg ~batch_size:bs in
  let rows =
    List.map
      (fun qn ->
        let q = Tpch.Queries.find qn in
        let on = batched_rate stream_of (compile_tpch q) 1000 in
        let off = batched_rate stream_of (compile_tpch ~preagg:false q) 1000 in
        [ qn; B.fmt_rate on; B.fmt_rate off; B.fmt_ratio (on /. off) ])
      [ "Q1"; "Q3"; "Q6"; "Q14"; "Q19"; "Q22" ]
  in
  B.print_table
    ~title:"Ablation — batch pre-aggregation on/off (B=1000, tuples/s)"
    ~header:[ "query"; "preagg on"; "preagg off"; "speedup" ]
    rows

let ablation_index () =
  let stream_of bs = Tpch.Gen.stream tpch_cfg ~batch_size:bs in
  let rows =
    List.map
      (fun qn ->
        let q = Tpch.Queries.find qn in
        let prog = compile_tpch q in
        let rate auto_index =
          let rt = Runtime.create ~auto_index prog in
          feed_budget ~budget
            (fun ~rel b -> ignore (Runtime.apply_batch rt ~rel b))
            (stream_of 1000)
        in
        let on = rate true and off = rate false in
        [ qn; B.fmt_rate on; B.fmt_rate off; B.fmt_ratio (on /. off) ])
      [ "Q3"; "Q5"; "Q9"; "Q10" ]
  in
  B.print_table
    ~title:"Ablation — automatic index creation on/off (B=1000, tuples/s)"
    ~header:[ "query"; "indexes on"; "indexes off"; "speedup" ]
    rows

let ablation_factor () =
  let stream_of bs = Tpch.Gen.stream tpch_cfg ~batch_size:bs in
  let rows =
    List.map
      (fun qn ->
        let q = Tpch.Queries.find qn in
        let on = compile_tpch q in
        let off =
          Compile.compile
            ~options:{ Compile.default_options with factorize = false }
            ~streams:Tpch.Schema.streams q.maps
        in
        let maps p =
          List.length
            (List.filter
               (fun (m : Prog.map_decl) -> m.mkind <> Prog.Transient)
               p.Prog.maps)
        in
        [
          qn;
          string_of_int (maps on);
          string_of_int (maps off);
          B.fmt_rate (batched_rate stream_of on 1000);
          B.fmt_rate (batched_rate stream_of off 1000);
        ])
      [ "Q3"; "Q5"; "Q9"; "Q10" ]
  in
  B.print_table
    ~title:
      "Ablation — connected-component factorization on/off (maps \
       materialized; B=1000 tuples/s)"
    ~header:[ "query"; "maps(on)"; "maps(off)"; "rate(on)"; "rate(off)" ]
    rows

let ablation_columnar () =
  (* §5.2.2: columnar input batches improve locality of the static-filter
     scan in batch pre-aggregation. *)
  let stream_of bs = Tpch.Gen.stream tpch_cfg ~batch_size:bs in
  let rows =
    List.map
      (fun qn ->
        let q = Tpch.Queries.find qn in
        let prog = compile_tpch q in
        let rate columnar =
          let rt = Runtime.create ~columnar prog in
          measured_rate ~load:(Runtime.load rt)
            ~measure:(fun ~rel b -> ignore (Runtime.apply_batch rt ~rel b))
            (stream_of 1000)
        in
        let on = rate true and off = rate false in
        [ qn; B.fmt_rate on; B.fmt_rate off; B.fmt_ratio (on /. off) ])
      [ "Q1"; "Q6"; "Q14"; "Q19" ]
  in
  B.print_table
    ~title:"Ablation — columnar batch pre-aggregation on/off (B=1000, tuples/s)"
    ~header:[ "query"; "columnar"; "row-at-a-time"; "speedup" ]
    rows

let ablation_checkpoint () =
  (* §4: "Checkpointing may have detrimental effects on the latency of
     processing, so the user needs to carefully tune the frequency." *)
  let q = Tpch.Queries.find "Q3" in
  let dp = dist_prog q in
  let stream = cached_stream ~scale:8.0 ~batch:4000 in
  let rows =
    List.map
      (fun interval ->
        let c = Cluster.create ~config:(Cluster.config ~workers:8 ()) dp in
        let total = ref 0. and ckpt = ref 0. and n = ref 0 in
        List.iter
          (fun (rel, b) ->
            let m = Cluster.apply_batch c ~rel b in
            total := !total +. m.Cluster.latency;
            incr n;
            if interval > 0 && !n mod interval = 0 then begin
              let _, lat = Cluster.checkpoint c in
              ckpt := !ckpt +. lat
            end)
          stream;
        [
          (if interval = 0 then "never" else Printf.sprintf "every %d" interval);
          B.fmt_sec ((!total +. !ckpt) /. float_of_int !n);
          B.fmt_sec (!total /. float_of_int !n);
          Printf.sprintf "%.0f%%" (100. *. !ckpt /. !total);
        ])
      [ 0; 20; 5; 1 ]
  in
  B.print_table
    ~title:
      "Ablation — checkpoint frequency vs processing latency (Q3, W=8,        4k-tuple batches)"
    ~header:[ "checkpoint"; "avg latency"; "w/o ckpt"; "overhead" ]
    rows

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let i x = Value.Int x in
  let q3 = Tpch.Queries.find "Q3" in
  let prog = compile_tpch q3 in
  let rt = Runtime.create prog in
  let warm = Tpch.Gen.stream tpch_cfg ~batch_size:1000 in
  List.iter (fun (rel, b) -> ignore (Runtime.apply_batch rt ~rel b)) warm;
  let batch =
    match List.find_opt (fun (r, _) -> r = "lineitem") warm with
    | Some (_, b) -> b
    | None -> Gmr.create ()
  in
  let pool = Pool.create ~key_width:1 ~slices:[] () in
  for x = 0 to 9999 do
    Pool.add pool [| i x |] 1.
  done;
  let cnt = ref 0 in
  let tests =
    Test.make_grouped ~name:"divm"
      [
        Test.make ~name:"gmr-add-cancel"
          (Staged.stage (fun () ->
               let g = Gmr.create () in
               Gmr.add g [| i 1 |] 1.;
               Gmr.add g [| i 1 |] (-1.)));
        Test.make ~name:"pool-get"
          (Staged.stage (fun () ->
               incr cnt;
               ignore (Pool.get pool [| i (!cnt land 8191) |])));
        Test.make ~name:"pool-add"
          (Staged.stage (fun () ->
               incr cnt;
               Pool.add pool [| i (!cnt land 8191) |] 1.));
        Test.make ~name:"delta-derive-q3"
          (Staged.stage (fun () ->
               ignore
                 (Delta.expr ~rel:"lineitem" (snd (List.hd q3.maps)))));
        Test.make ~name:"q3-batch-1000"
          (Staged.stage (fun () ->
               ignore (Runtime.apply_batch rt ~rel:"lineitem" batch)));
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |]
  in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> Printf.sprintf "%.1f ns" e
        | _ -> "-"
      in
      rows := [ name; est ] :: !rows)
    results;
  B.print_table ~title:"Micro-benchmarks (bechamel, monotonic clock)"
    ~header:[ "benchmark"; "time/run" ]
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)
(* Quick micro-bench: the perf-trajectory smoke test                   *)
(* ------------------------------------------------------------------ *)

(* A small, fast, reproducible measurement of the hot trigger path:
   batched TPC-H triggers at B=1000 over the compiled runtime. Reports
   tuples/s and record-ops/s per query plus geomeans, and emits one
   machine-readable line (prefix [QUICK_JSON]) whose payload is recorded
   in the BENCH_PR<n>.json perf trajectory at the repo root. CI runs
   this as a smoke step; see README. *)

let quick_queries = [ "Q1"; "Q3"; "Q6"; "Q13"; "Q17"; "Q19"; "Q22" ]

(* The engine config parsed from the command line by Obs_cli.scan_common
   (--backend/--workers/--domains/--batch/--opt-level). Default: local
   backend, B=1000, DIVM_DOMAINS — the historical QUICK_JSON setup, so
   the perf trajectory stays comparable. *)
let cli_engine = ref (Engine.config ())

let quick () =
  let cfg = !cli_engine in
  let bs = cfg.Engine.batch_size in
  let used_domains = ref 1 in
  let backend = ref "local" in
  let results =
    List.map
      (fun qn ->
        let eng = Engine.create ~config:cfg (Workload.find qn) in
        used_domains := Engine.domains eng;
        backend := Engine.backend_name eng;
        let stream = Tpch.Gen.stream tpch_cfg ~batch_size:bs in
        let prefix, suffix = split_warm stream in
        Engine.load eng prefix;
        (* Repeat the measured suffix until the budget elapses; account
           only in-trigger wall time so stream bookkeeping is excluded. *)
        let tuples = ref 0 and ops = ref 0 and wall = ref 0. in
        let wire = ref 0 in
        let deadline = Unix.gettimeofday () +. budget in
        (try
           while true do
             List.iter
               (fun (rel, b) ->
                 let r = Engine.apply_batch eng ~rel b in
                 tuples := !tuples + r.Engine.tuples;
                 ops := !ops + r.Engine.ops;
                 wall := !wall +. r.Engine.wall;
                 wire := !wire + r.Engine.wire_bytes;
                 if Unix.gettimeofday () > deadline then raise Exit)
               suffix
           done
         with Exit -> ());
        Engine.shutdown eng;
        let tps = float_of_int !tuples /. !wall in
        let ops_s = float_of_int !ops /. !wall in
        (qn, tps, ops_s, float_of_int !ops /. float_of_int !tuples, !wire))
      quick_queries
  in
  let geomean f =
    exp
      (List.fold_left (fun a r -> a +. log (f r)) 0. results
      /. float_of_int (List.length results))
  in
  let g_tps = geomean (fun (_, t, _, _, _) -> t) in
  let g_ops = geomean (fun (_, _, o, _, _) -> o) in
  (* Actual socket traffic, multiprocess only (0 elsewhere): the number
     the star-vs-mesh shuffle A/B compares. *)
  let total_wire =
    List.fold_left (fun a (_, _, _, _, w) -> a + w) 0 results
  in
  B.print_table
    ~title:
      (Printf.sprintf
         "Quick micro-bench — batched TPC-H triggers (B=%d, %s backend, \
          domains=%d)"
         bs !backend !used_domains)
    ~header:[ "query"; "tuples/s"; "record-ops/s"; "ops/tuple" ]
    (List.map
       (fun (qn, tps, ops_s, opt, _) ->
         [ qn; B.fmt_rate tps; B.fmt_rate ops_s; Printf.sprintf "%.1f" opt ])
       results
    @ [ [ "geomean"; B.fmt_rate g_tps; B.fmt_rate g_ops; "-" ] ]);
  let fields =
    String.concat ","
      (List.map
         (fun (qn, tps, ops_s, opt, wire) ->
           Printf.sprintf
             "\"%s\":{\"tuples_per_s\":%.0f,\"ops_per_s\":%.0f,\"ops_per_tuple\":%.2f%s}"
             qn tps ops_s opt
             (if wire > 0 then Printf.sprintf ",\"wire_bytes\":%d" wire else ""))
         results)
  in
  Printf.printf
    "QUICK_JSON {\"bench\":\"quick\",\"batch_size\":%d,\"domains\":%d,\"host_cores\":%d,\"queries\":{%s},\"geomean_tuples_per_s\":%.0f,\"geomean_ops_per_s\":%.0f%s}\n"
    bs !used_domains
    (Stdlib.Domain.recommended_domain_count ())
    fields g_tps g_ops
    (if total_wire > 0 then
       Printf.sprintf ",\"total_wire_bytes\":%d" total_wire
     else "")

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("quick", "fast trigger-path micro-bench (perf trajectory smoke)", quick);
    ("fig5", "block fusion before/after on Q3", fig5);
    ("fig7", "TPC-H normalized throughput vs batch size", fig7);
    ("fig8", "Q17 across engines and batch sizes", fig8);
    ("fig9", "weak scalability (cluster simulation)", fig9);
    ("fig10", "strong scalability Q6/Q17/Q3/Q7", fig10);
    ("fig11", "strong scalability, more queries", fig11);
    ("sparksql", "Spark-SQL-style re-evaluation lines of Fig 10", sparksql);
    ("fig12", "TPC-DS normalized throughput vs batch size", fig12);
    ("fig13", "distributed optimization ablation on Q3", fig13);
    ("table1", "engine throughput comparison", table1);
    ("table2", "cache locality of Q3", table2);
    ("table3", "jobs and stages per query", table3);
    ("ablation-preagg", "batch pre-aggregation on/off", ablation_preagg);
    ("ablation-index", "automatic indexing on/off", ablation_index);
    ("ablation-factor", "factorized materialization on/off", ablation_factor);
    ("ablation-checkpoint", "checkpoint frequency vs latency", ablation_checkpoint);
    ("ablation-columnar", "columnar pre-aggregation on/off", ablation_columnar);
    ("micro", "bechamel micro-benchmarks", micro);
  ]

let () =
  (* Engine + observability flags are shared with the CLIs
     (--backend/--workers/--domains/--batch/--opt-level, --metrics/
     --trace/--profile); the remaining arguments select experiments. *)
  let common, args = Divm_obs_cli.Obs_cli.scan_common () in
  cli_engine := common.Divm_obs_cli.Obs_cli.engine;
  (* accept both [quick] and [--quick] forms *)
  let strip a =
    if String.length a > 2 && String.sub a 0 2 = "--" then
      String.sub a 2 (String.length a - 2)
    else a
  in
  let selected =
    match List.map strip args with
    | [] -> List.map (fun (n, _, _) -> n) experiments
    | args -> args
  in
  Printf.printf
    "divm benchmark harness — mode: %s (set DIVM_BENCH=full for larger \
     streams)\n"
    (if B.full_mode then "full" else "quick");
  List.iter
    (fun name ->
      match List.find_opt (fun (n, _, _) -> n = name) experiments with
      | Some (_, desc, f) ->
          Printf.printf "\n#### %s — %s\n%!" name desc;
          let dt = B.time_unit f in
          Printf.printf "[%s finished in %s]\n%!" name (B.fmt_sec dt)
      | None ->
          Printf.eprintf "unknown experiment %s; available: %s\n" name
            (String.concat ", " (List.map (fun (n, _, _) -> n) experiments)))
    selected
