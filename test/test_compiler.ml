open Divm_ring
open Divm_storage
open Divm_calc
open Divm_calc.Calc
open Divm_compiler
open Divm_runtime

let i x = Value.Int x
let va = Schema.var "A"
let vb = Schema.var "B"
let vc = Schema.var "C"
let vd = Schema.var "D"
let vx = Schema.var "X"

let streams_rst = [ ("R", [ va; vb ]); ("S", [ vb; vc ]); ("T", [ vc; vd ]) ]

let q_running =
  sum [ vb ]
    (prod [ rel "R" [ va; vb ]; rel "S" [ vb; vc ]; rel "T" [ vc; vd ] ])

(* ------------------------------------------------------------------ *)
(* Structure of the compiled program (Example 2.2)                     *)
(* ------------------------------------------------------------------ *)

let test_running_structure () =
  let prog =
    Compile.compile
      ~options:{ Compile.default_options with preaggregate = false }
      ~streams:streams_rst
      [ ("Q", q_running) ]
  in
  (* Materializes the query, ST and RS auxiliaries, and projected base
     views — at least 5 maps beyond nothing, with reuse keeping it small. *)
  let n = List.length prog.maps in
  Alcotest.(check bool)
    (Printf.sprintf "map count %d in [4, 12]" n)
    true (n >= 4 && n <= 12);
  (* No statement may reference a raw base relation. *)
  List.iter
    (fun tr ->
      List.iter
        (fun (s : Prog.stmt) ->
          Alcotest.(check (list string))
            ("no base rels in " ^ Calc.to_string s.rhs)
            [] (Calc.base_rels s.rhs))
        tr.Prog.stmts)
    prog.triggers;
  (* The R-trigger must update Q using a map over S ⋈ T (degree-2 aux). *)
  let tr = Prog.find_trigger prog "R" in
  let q_stmt =
    List.find (fun (s : Prog.stmt) -> s.target = "Q") tr.stmts
  in
  let aux = Calc.map_refs q_stmt.rhs in
  Alcotest.(check int) "Q stmt reads one aux map" 1 (List.length aux);
  let aux_decl = Prog.find_map prog (List.hd aux) in
  Alcotest.(check (list string))
    "aux is over S and T" [ "S"; "T" ]
    (List.sort compare (Calc.base_rels aux_decl.definition));
  (* Statements maintain views in decreasing order of complexity: the Q
     update reads pre-state of the aux map, so it must come first. *)
  let idx_of target =
    let rec go k = function
      | [] -> -1
      | (s : Prog.stmt) :: tl -> if s.target = target then k else go (k + 1) tl
    in
    go 0 tr.stmts
  in
  Alcotest.(check bool)
    "Q updated before its aux inputs" true
    (idx_of "Q" < idx_of (List.hd aux)
    || idx_of (List.hd aux) = -1 (* aux not updated by R *))

let test_map_reuse () =
  (* Q and Q' share the subquery S ⋈ T; auxiliary maps must be shared. *)
  let q2 =
    sum [ vc ]
      (prod [ rel "R" [ va; vb ]; rel "S" [ vb; vc ]; rel "T" [ vc; vd ] ])
  in
  let p1 =
    Compile.compile ~streams:streams_rst [ ("Q", q_running) ]
  in
  let p2 =
    Compile.compile ~streams:streams_rst [ ("Q", q_running); ("Q2", q2) ]
  in
  let aux_count p =
    List.length
      (List.filter
         (fun (m : Prog.map_decl) -> m.mkind <> Prog.Transient)
         p.Prog.maps)
  in
  (* Adding the second query must cost fewer maps than compiling it alone
     (sharing of base views at minimum). *)
  Alcotest.(check bool)
    (Printf.sprintf "sharing: %d vs %d" (aux_count p2) (aux_count p1))
    true
    (aux_count p2 < 2 * aux_count p1)

(* ------------------------------------------------------------------ *)
(* End-to-end equivalence on random streams                            *)
(* ------------------------------------------------------------------ *)

(* Oracle: raw relation contents, query evaluated from scratch. *)
let oracle_eval rels q =
  let src = Divm_eval.Interp.source_of_rels rels in
  snd (Divm_eval.Interp.eval_closed src q)

let run_equivalence ?(msg = "equiv") ~streams ~queries stream_batches =
  let progs =
    [
      ("rivm", Compile.compile ~streams queries);
      ( "rivm-nopreagg",
        Compile.compile
          ~options:{ Compile.default_options with preaggregate = false }
          ~streams queries );
      ( "rivm-nofactor",
        Compile.compile
          ~options:{ Compile.default_options with factorize = false }
          ~streams queries );
      ("classical", Compile.compile_classical ~streams queries);
      ("reeval", Compile.compile_reeval ~streams queries);
    ]
  in
  let execs = List.map (fun (n, p) -> (n, Exec.create p)) progs in
  let rels =
    List.map (fun (r, _) -> (r, Gmr.create ())) streams
  in
  List.iteri
    (fun bi (rel_name, batch) ->
      (* keep the oracle database in sync *)
      Gmr.union_into (List.assoc rel_name rels) batch;
      List.iter (fun (_, ex) -> Exec.apply_batch ex ~rel:rel_name batch) execs;
      List.iter
        (fun (qname, qdef) ->
          let expect = oracle_eval rels qdef in
          List.iter
            (fun (en, ex) ->
              let got = Exec.result ex qname in
              if not (Gmr.equal expect got) then
                Alcotest.failf
                  "%s: engine %s diverged on query %s after batch %d (%s):@.got %a@.want %a"
                  msg en qname bi rel_name Gmr.pp got Gmr.pp expect)
            execs)
        queries)
    stream_batches

let mk2 l = Gmr.of_list (List.map (fun (a, b, m) -> ([| i a; i b |], m)) l)

let test_equiv_running () =
  run_equivalence ~msg:"running" ~streams:streams_rst
    ~queries:[ ("Q", q_running) ]
    [
      ("R", mk2 [ (1, 10, 1.); (2, 10, 1.) ]);
      ("S", mk2 [ (10, 100, 1.); (20, 200, 2.) ]);
      ("T", mk2 [ (100, 7, 1.); (200, 8, 1.) ]);
      ("R", mk2 [ (3, 20, 2.); (1, 10, -1.) ]);
      ("S", mk2 [ (20, 100, 1.); (10, 100, -1.) ]);
      ("T", mk2 [ (100, 9, 3.); (200, 8, -1.) ]);
    ]

let test_equiv_filters_values () =
  (* SELECT B, SUM(A) FROM R WHERE A < 3 GROUP BY B joined with S count. *)
  let q =
    sum [ vb ]
      (prod
         [
           rel "R" [ va; vb ];
           cmp Lt (Vexpr.var va) (Vexpr.const_i 3);
           rel "S" [ vb; vc ];
           value (Vexpr.var va);
         ])
  in
  run_equivalence ~msg:"filters" ~streams:streams_rst
    ~queries:[ ("QF", q) ]
    [
      ("R", mk2 [ (1, 10, 1.); (5, 10, 1.); (2, 20, 3.) ]);
      ("S", mk2 [ (10, 1, 1.); (20, 2, 1.) ]);
      ("R", mk2 [ (1, 10, -1.); (2, 20, 1.) ]);
      ("S", mk2 [ (10, 1, -1.); (10, 3, 2.) ]);
    ]

let test_equiv_distinct () =
  let q =
    exists
      (sum [ va ]
         (prod [ rel "R" [ va; vb ]; cmp Gt (Vexpr.var vb) (Vexpr.const_i 5) ]))
  in
  run_equivalence ~msg:"distinct" ~streams:[ ("R", [ va; vb ]) ]
    ~queries:[ ("QD", q) ]
    [
      ("R", mk2 [ (1, 10, 1.); (2, 3, 1.) ]);
      ("R", mk2 [ (1, 20, 2.); (3, 8, 1.) ]);
      ("R", mk2 [ (1, 10, -1.); (1, 20, -2.) ]);
      (* A=1 loses all support here; tuple must vanish from the result *)
      ("R", mk2 [ (3, 8, -1.); (2, 9, 1.) ]);
    ]

let test_equiv_nested_correlated () =
  (* Q17 shape: COUNT of R rows with A < per-B count of S. *)
  let q =
    sum []
      (prod
         [
           rel "R" [ va; vb ];
           lift vx (sum [ vb ] (rel "S" [ vb; vc ]));
           cmp_vars Lt va vx;
         ])
  in
  run_equivalence ~msg:"nested-corr" ~streams:streams_rst
    ~queries:[ ("QN", q) ]
    [
      ("R", mk2 [ (0, 10, 1.); (1, 20, 1.) ]);
      ("S", mk2 [ (10, 1, 1.); (20, 2, 2.) ]);
      ("S", mk2 [ (10, 1, -1.); (20, 9, 1.) ]);
      ("R", mk2 [ (0, 10, -1.); (2, 20, 5.) ]);
    ]

let test_equiv_nested_uncorrelated () =
  (* Example 3.3 shape: uncorrelated nested aggregate -> re-eval path. *)
  let vb2 = Schema.var "B2" in
  let q =
    sum []
      (prod
         [
           rel "R" [ va; vb ];
           lift vx (sum [] (rel "S" [ vb2; vc ]));
           cmp_vars Lt va vx;
         ])
  in
  run_equivalence ~msg:"nested-uncorr" ~streams:streams_rst
    ~queries:[ ("QU", q) ]
    [
      ("R", mk2 [ (0, 10, 1.); (3, 20, 1.) ]);
      ("S", mk2 [ (1, 1, 1.); (2, 2, 1.) ]);
      ("S", mk2 [ (3, 3, 1.); (1, 1, -1.) ]);
      ("R", mk2 [ (2, 10, 2.) ]);
    ]

let test_equiv_self_join () =
  let q = sum [ vb ] (prod [ rel "R" [ va; vb ]; rel "R" [ vc; vb ] ]) in
  run_equivalence ~msg:"self-join" ~streams:[ ("R", [ va; vb ]) ]
    ~queries:[ ("QS", q) ]
    [
      ("R", mk2 [ (1, 10, 1.); (2, 10, 1.) ]);
      ("R", mk2 [ (3, 10, 1.); (1, 10, -1.) ]);
      ("R", mk2 [ (4, 20, 2.) ]);
    ]

let test_equiv_multi_query () =
  let q2 = sum [] (prod [ rel "R" [ va; vb ]; rel "S" [ vb; vc ] ]) in
  run_equivalence ~msg:"multi-query" ~streams:streams_rst
    ~queries:[ ("Q", q_running); ("QC", q2) ]
    [
      ("R", mk2 [ (1, 10, 1.) ]);
      ("S", mk2 [ (10, 100, 2.) ]);
      ("T", mk2 [ (100, 5, 1.) ]);
      ("R", mk2 [ (2, 10, 3.); (1, 10, -1.) ]);
    ]

(* Random-stream property: all engines agree with the oracle. *)
let qcheck_engines_agree =
  let open QCheck in
  let gen_batch =
    Gen.(
      list_size (int_range 1 6)
        (triple (int_range 0 3) (int_range 0 3) (int_range (-2) 2)))
  in
  let gen_stream =
    Gen.(list_size (int_range 1 8) (pair (int_range 0 2) gen_batch))
  in
  let arb = QCheck.make ~print:(fun _ -> "<stream>") gen_stream in
  QCheck.Test.make ~name:"engines agree on random streams" ~count:60 arb
    (fun stream ->
      let rels = [| "R"; "S"; "T" |] in
      let batches =
        List.map
          (fun (ri, tuples) ->
            ( rels.(ri),
              mk2 (List.map (fun (a, b, m) -> (a, b, float_of_int m)) tuples)
            ))
          stream
      in
      run_equivalence ~msg:"qcheck" ~streams:streams_rst
        ~queries:[ ("Q", q_running) ]
        batches;
      true)

(* Random flat queries over the R/S/T chain: a random join prefix, random
   filters over bound columns, an optional value weight, a random group-by,
   optionally wrapped in DISTINCT. All engines must agree with the oracle
   on random streams. *)
let gen_query =
  let open QCheck.Gen in
  let atoms =
    [|
      [ rel "R" [ va; vb ] ];
      [ rel "R" [ va; vb ]; rel "S" [ vb; vc ] ];
      [ rel "R" [ va; vb ]; rel "S" [ vb; vc ]; rel "T" [ vc; vd ] ];
    |]
  in
  let* n_atoms = int_range 0 2 in
  let chain = atoms.(n_atoms) in
  let visible = List.filteri (fun i _ -> i <= n_atoms + 1) [ va; vb; vc; vd ] in
  let gen_filter =
    let* v = oneofl visible in
    let* op = oneofl [ Lt; Lte; Gt; Gte; Eq; Neq ] in
    let* k = int_range 0 4 in
    return (cmp op (Vexpr.var v) (Vexpr.const_i k))
  in
  let* n_filters = int_range 0 2 in
  let* filters = list_repeat n_filters gen_filter in
  let* weighted = bool in
  let* wvar = oneofl visible in
  let weight = if weighted then [ value (Vexpr.var wvar) ] else [] in
  let* gb_mask = int_range 0 ((1 lsl List.length visible) - 1) in
  let gb = List.filteri (fun i _ -> gb_mask land (1 lsl i) <> 0) visible in
  let body = prod (chain @ filters @ weight) in
  let* distinct = bool in
  return (if distinct then exists (sum gb body) else sum gb body)

let qcheck_random_queries =
  let gen_batch =
    QCheck.Gen.(
      list_size (int_range 1 5)
        (triple (int_range 0 3) (int_range 0 3) (int_range (-2) 2)))
  in
  let gen_case =
    QCheck.Gen.(
      pair gen_query (list_size (int_range 1 5) (pair (int_range 0 2) gen_batch)))
  in
  let arb =
    QCheck.make
      ~print:(fun (q, _) -> Calc.to_string q)
      gen_case
  in
  QCheck.Test.make ~name:"engines agree on random queries" ~count:80 arb
    (fun (q, stream) ->
      let rels = [| "R"; "S"; "T" |] in
      let batches =
        List.map
          (fun (ri, tuples) ->
            ( rels.(ri),
              mk2 (List.map (fun (a, b, m) -> (a, b, float_of_int m)) tuples)
            ))
          stream
      in
      run_equivalence ~msg:"random-query" ~streams:streams_rst
        ~queries:[ ("RQ", q) ]
        batches;
      true)

let test_preagg_structure () =
  let prog = Compile.compile ~streams:streams_rst [ ("Q", q_running) ] in
  (* Each trigger must start with a transient delta pre-aggregation. *)
  List.iter
    (fun (tr : Prog.trigger) ->
      match tr.stmts with
      | [] -> ()
      | s0 :: _ ->
          let m = Prog.find_map prog s0.target in
          Alcotest.(check bool)
            (Printf.sprintf "trigger %s starts with transient (got %s)"
               tr.relation s0.target)
            true
            (m.mkind = Prog.Transient))
    prog.triggers

let suites =
  [
    ( "compiler",
      [
        Alcotest.test_case "Ex 2.2 structure" `Quick test_running_structure;
        Alcotest.test_case "map reuse across queries" `Quick test_map_reuse;
        Alcotest.test_case "equivalence: running example" `Quick
          test_equiv_running;
        Alcotest.test_case "equivalence: filters+values" `Quick
          test_equiv_filters_values;
        Alcotest.test_case "equivalence: distinct" `Quick test_equiv_distinct;
        Alcotest.test_case "equivalence: correlated nested" `Quick
          test_equiv_nested_correlated;
        Alcotest.test_case "equivalence: uncorrelated nested" `Quick
          test_equiv_nested_uncorrelated;
        Alcotest.test_case "equivalence: self join" `Quick test_equiv_self_join;
        Alcotest.test_case "equivalence: multiple queries" `Quick
          test_equiv_multi_query;
        Alcotest.test_case "preagg structure" `Quick test_preagg_structure;
        QCheck_alcotest.to_alcotest qcheck_engines_agree;
        QCheck_alcotest.to_alcotest qcheck_random_queries;
      ] );
  ]
