open Divm_ring
open Divm_storage
open Divm_sql

let i x = Value.Int x
let va = Schema.var ~ty:Value.TInt "a"
let vb = Schema.var ~ty:Value.TInt "b"
let vb2 = Schema.var ~ty:Value.TInt "b"
let vc = Schema.var ~ty:Value.TInt "c"

let catalog = [ ("R", [ va; vb ]); ("S", [ vb2; vc ]) ]

let db () =
  let r =
    Gmr.of_list
      [
        ([| i 1; i 10 |], 1.); ([| i 2; i 10 |], 1.); ([| i 3; i 20 |], 2.);
      ]
  in
  let s =
    Gmr.of_list [ ([| i 10; i 5 |], 1.); ([| i 20; i 7 |], 4.) ]
  in
  Divm_eval.Interp.source_of_rels [ ("R", r); ("S", s) ]

let eval_sql sql =
  let maps = Sql.compile ~catalog sql in
  List.map
    (fun (n, e) -> (n, snd (Divm_eval.Interp.eval_closed (db ()) e)))
    maps

let test_parse_shapes () =
  let q = Sql.parse "SELECT COUNT(*) FROM R WHERE R.a < 3" in
  Alcotest.(check int) "one table" 1 (List.length q.Ast.from);
  Alcotest.(check int) "one pred" 1 (List.length q.Ast.where);
  let q2 =
    Sql.parse
      "SELECT R.b, SUM(R.a) FROM R, S WHERE R.b = S.b AND S.c > 2 GROUP BY \
       R.b"
  in
  Alcotest.(check int) "two tables" 2 (List.length q2.Ast.from);
  Alcotest.(check int) "group by" 1 (List.length q2.Ast.group_by)

let test_count_filter () =
  match eval_sql "SELECT COUNT(*) FROM R WHERE R.a < 3" with
  | [ (_, g) ] ->
      Alcotest.(check (float 1e-9)) "count" 2. (Gmr.mult g Vtuple.empty)
  | _ -> Alcotest.fail "expected one map"

let test_join_group () =
  match
    eval_sql
      "SELECT R.b, SUM(S.c) FROM R, S WHERE R.b = S.b GROUP BY R.b"
  with
  | [ (_, g) ] ->
      (* b=10: two R rows x c=5 -> 10; b=20: mult 2 x c=7 mult 4 -> 56 *)
      Alcotest.(check (float 1e-9)) "b=10" 10. (Gmr.mult g [| i 10 |]);
      Alcotest.(check (float 1e-9)) "b=20" 56. (Gmr.mult g [| i 20 |])
  | _ -> Alcotest.fail "expected one map"

let test_avg_two_maps () =
  let maps =
    Sql.compile ~catalog "SELECT R.b, AVG(R.a) AS aa FROM R GROUP BY R.b"
  in
  Alcotest.(check int) "avg = sum+count" 2 (List.length maps)

let test_distinct () =
  match eval_sql "SELECT DISTINCT R.b FROM R" with
  | [ (_, g) ] ->
      Alcotest.(check int) "two distinct" 2 (Gmr.cardinal g);
      Alcotest.(check (float 1e-9)) "mult 1" 1. (Gmr.mult g [| i 20 |])
  | _ -> Alcotest.fail "expected one map"

let test_nested_scalar () =
  (* Example 3.1 as SQL. *)
  match
    eval_sql
      "SELECT COUNT(*) FROM R WHERE R.a < (SELECT COUNT(*) FROM S WHERE R.b \
       = S.b)"
  with
  | [ (_, g) ] ->
      (* b=10: inner=1: rows a<1: none. b=20: inner=4: (3,20) mult 2. *)
      Alcotest.(check (float 1e-9)) "correlated" 2. (Gmr.mult g Vtuple.empty)
  | _ -> Alcotest.fail "expected one map"

let test_exists () =
  match
    eval_sql
      "SELECT COUNT(*) FROM R WHERE EXISTS (SELECT COUNT(*) FROM S WHERE \
       S.b = R.b AND S.c > 5)"
  with
  | [ (_, g) ] ->
      (* only b=20 has S.c=7>5: row (3,20) mult 2 *)
      Alcotest.(check (float 1e-9)) "exists" 2. (Gmr.mult g Vtuple.empty)
  | _ -> Alcotest.fail "expected one map"

let test_in () =
  match
    eval_sql "SELECT COUNT(*) FROM R WHERE R.b IN (SELECT S.b FROM S WHERE \
              S.c < 6)"
  with
  | [ (_, g) ] ->
      (* S.c<6 -> b=10; R rows with b=10: 2 *)
      Alcotest.(check (float 1e-9)) "in" 2. (Gmr.mult g Vtuple.empty)
  | _ -> Alcotest.fail "expected one map"

let test_between_or () =
  match
    eval_sql
      "SELECT COUNT(*) FROM R WHERE R.a BETWEEN 2 AND 3 AND (R.b = 10 OR \
       R.b = 20)"
  with
  | [ (_, g) ] ->
      Alcotest.(check (float 1e-9)) "between+or" 3. (Gmr.mult g Vtuple.empty)
  | _ -> Alcotest.fail "expected one map"

(* The SQL-compiled correlated query is incrementalizable and maintained
   correctly end to end. *)
let test_sql_end_to_end () =
  let maps =
    Sql.compile ~catalog ~name:"QS"
      "SELECT COUNT(*) FROM R WHERE R.a < (SELECT COUNT(*) FROM S WHERE R.b \
       = S.b)"
  in
  let streams = [ ("R", [ va; vb ]); ("S", [ vb2; vc ]) ] in
  let prog = Divm_compiler.Compile.compile ~streams maps in
  let ex = Divm_runtime.Exec.create prog in
  let rels = [ ("R", Gmr.create ()); ("S", Gmr.create ()) ] in
  let batches =
    [
      ("R", Gmr.of_list [ ([| i 1; i 10 |], 1.); ([| i 2; i 10 |], 1.) ]);
      ("S", Gmr.of_list [ ([| i 10; i 5 |], 1.); ([| i 20; i 7 |], 3.) ]);
      ("S", Gmr.of_list [ ([| i 10; i 9 |], 2.); ([| i 20; i 7 |], -1.) ]);
      ("R", Gmr.of_list [ ([| i 3; i 20 |], 2.); ([| i 1; i 10 |], -1.) ]);
    ]
  in
  List.iter
    (fun (rel, b) ->
      Gmr.union_into (List.assoc rel rels) b;
      Divm_runtime.Exec.apply_batch ex ~rel b)
    batches;
  let qname = fst (List.hd maps) in
  let expect =
    snd
      (Divm_eval.Interp.eval_closed
         (Divm_eval.Interp.source_of_rels rels)
         (snd (List.hd maps)))
  in
  Alcotest.(check bool)
    "incremental matches oracle" true
    (Gmr.equal expect (Divm_runtime.Exec.result ex qname))

let test_errors () =
  Alcotest.check_raises "unknown table" (Sql.Compile_error "unknown table T")
    (fun () -> ignore (Sql.compile ~catalog "SELECT COUNT(*) FROM T"));
  (try
     ignore (Sql.compile ~catalog "SELECT FROM R");
     Alcotest.fail "expected parse error"
   with Sql.Parse_error _ -> ());
  try
    ignore (Sql.compile ~catalog "SELECT COUNT(*) FROM R WHERE");
    Alcotest.fail "expected parse error"
  with Sql.Parse_error _ -> ()

let suites =
  [
    ( "sql",
      [
        Alcotest.test_case "parser shapes" `Quick test_parse_shapes;
        Alcotest.test_case "count + filter" `Quick test_count_filter;
        Alcotest.test_case "join + group by" `Quick test_join_group;
        Alcotest.test_case "avg splits into two maps" `Quick test_avg_two_maps;
        Alcotest.test_case "select distinct" `Quick test_distinct;
        Alcotest.test_case "correlated scalar subquery" `Quick
          test_nested_scalar;
        Alcotest.test_case "exists" `Quick test_exists;
        Alcotest.test_case "in subquery" `Quick test_in;
        Alcotest.test_case "between / or" `Quick test_between_or;
        Alcotest.test_case "sql end-to-end maintenance" `Quick
          test_sql_end_to_end;
        Alcotest.test_case "error reporting" `Quick test_errors;
      ] );
  ]
