(* Profiling & EXPLAIN subsystem: static plans, per-statement attribution,
   and the reconciliation of slot sums against registry totals. *)

open Divm_ring
open Divm_storage
open Divm_calc.Calc
open Divm_compiler
open Divm_runtime
module Obs = Divm_obs.Obs
module Prof = Divm_obs.Prof
module Profile = Divm_profile.Profile
module Workload = Divm_workload.Workload

let i x = Value.Int x
let va = Schema.var "A"
let vb = Schema.var "B"
let vc = Schema.var "C"
let streams_rs = [ ("R", [ va; vb ]); ("S", [ vb; vc ]) ]
let q_join = sum [ vb ] (prod [ rel "R" [ va; vb ]; rel "S" [ vb; vc ] ])
let mk2 l = Gmr.of_list (List.map (fun (a, b, m) -> ([| i a; i b |], m)) l)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go k = k + n <= m && (String.sub s k n = affix || go (k + 1)) in
  n = 0 || go 0

let with_profiler f =
  Prof.reset ();
  Profile.set_enabled true;
  Fun.protect ~finally:(fun () -> Profile.set_enabled false) f

(* ------------------------------------------------------------------ *)
(* EXPLAIN                                                             *)
(* ------------------------------------------------------------------ *)

let test_explain_local () =
  let prog = Compile.compile ~streams:streams_rs [ ("Q", q_join) ] in
  let p = Profile.explain ~name:"rs" prog in
  Alcotest.(check bool) "local plan" false p.Profile.pl_dist;
  Alcotest.(check (list string)) "no transfers" []
    (List.map (fun t -> t.Profile.tp_label) p.Profile.pl_transfers);
  (* one plan entry per compiled statement (columnar routes replace the
     plain entry for the statement they serve) *)
  let stmts_of tr =
    List.length
      (List.filter (fun s -> s.Profile.sp_trigger = tr) p.Profile.pl_stmts)
  in
  List.iter
    (fun (tr : Prog.trigger) ->
      Alcotest.(check int)
        ("statements of " ^ tr.relation)
        (List.length tr.stmts) (stmts_of tr.relation))
    prog.Prog.triggers;
  (* every compiled statement drives off a full scan of the incoming
     (pre-aggregated) delta; the other reads are gets or slices *)
  List.iter
    (fun s ->
      if not s.Profile.sp_columnar then
        Alcotest.(check bool)
          (s.Profile.sp_label ^ " scans its delta input")
          true
          (List.exists
             (fun a -> a.Profile.a_path = Patterns.Foreach)
             s.Profile.sp_accesses))
    p.Profile.pl_stmts;
  let txt = Profile.render p in
  Alcotest.(check bool) "header" true (contains ~affix:"== EXPLAIN rs" txt);
  Alcotest.(check bool) "trigger sections" true
    (contains ~affix:"ON UPDATE R:" txt && contains ~affix:"ON UPDATE S:" txt);
  (* the R/S join vectorizes end to end: transient assigns take the
     columnar pre-aggregation route, the store-reading statements fuse *)
  Alcotest.(check bool) "columnar route shown" true
    (contains ~affix:"[columnar:" txt);
  Alcotest.(check bool) "fused route shown" true
    (contains ~affix:"[fused:" txt
    && contains ~affix:"fused columnar group" txt)

(* Route labels on a store-joining query: Q17's delta statements probe
   materialized maps, so EXPLAIN must show the batched-join and fused
   routes, while the pure transient copies stay on the generic path with
   their access plans rendered. *)
let test_explain_routes () =
  let w = Workload.find "Q17" in
  let prog = Workload.compile w in
  let p = Profile.explain ~name:"Q17" prog in
  let txt = Profile.render p in
  Alcotest.(check bool) "columnar-join route" true
    (contains ~affix:"[columnar-join:" txt
    && contains ~affix:"vectorized batched join (key-grouped probes)" txt);
  Alcotest.(check bool) "fused route" true (contains ~affix:"[fused:" txt);
  Alcotest.(check bool) "generic route remains" true
    (contains ~affix:"[stmt:" txt
    && contains ~affix:"via foreach (full scan)" txt);
  (* every labelled statement agrees with the runtime's planner *)
  let routed = Runtime.columnar_routed prog in
  Alcotest.(check bool) "Q17 takes a vectorized route" true
    (List.mem ("lineitem", "Q17") routed);
  List.iter
    (fun s ->
      if s.Profile.sp_columnar then
        Alcotest.(check bool)
          (s.Profile.sp_label ^ " agrees with runtime")
          true
          (List.mem (s.Profile.sp_trigger, s.Profile.sp_target) routed))
    p.Profile.pl_stmts

let test_explain_matches_runtime_columnar () =
  let w = Workload.find "Q3" in
  let prog = Workload.compile w in
  let routed = Runtime.columnar_routed prog in
  let p = Profile.explain prog in
  let planned =
    List.filter_map
      (fun s ->
        if s.Profile.sp_columnar then
          Some (s.Profile.sp_trigger, s.Profile.sp_target)
        else None)
      p.Profile.pl_stmts
  in
  Alcotest.(check (list (pair string string)))
    "columnar routes agree with the runtime" routed planned;
  Alcotest.(check bool) "Q3 uses the columnar route" true (routed <> [])

let test_explain_dist () =
  let w = Workload.find "Q3" in
  let prog = Workload.compile w in
  let dp = Workload.distribute w prog in
  let p = Profile.explain_dist ~name:"Q3" dp in
  Alcotest.(check bool) "distributed plan" true p.Profile.pl_dist;
  Alcotest.(check bool) "has transfers" true (p.Profile.pl_transfers <> []);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (s.Profile.sp_label ^ " has a block")
        true
        (s.Profile.sp_block <> None);
      Alcotest.(check bool)
        (s.Profile.sp_label ^ " has a location")
        true
        (s.Profile.sp_loc <> None))
    p.Profile.pl_stmts;
  let txt = Profile.render p in
  Alcotest.(check bool) "block structure rendered" true
    (contains ~affix:"block 0 [distributed, stage 1]" txt);
  Alcotest.(check bool) "transfers rendered" true
    (contains ~affix:"[transfer:" txt);
  Alcotest.(check bool) "location tags rendered" true
    (contains ~affix:"@DIST<" txt || contains ~affix:"@RANDOM" txt);
  (* JSON exporter emits something structurally plausible for both shapes *)
  let j = Profile.plan_json p in
  Alcotest.(check bool) "plan JSON has statements and transfers" true
    (contains ~affix:"\"statements\"" j && contains ~affix:"\"transfers\"" j)

(* ------------------------------------------------------------------ *)
(* Attribution: slot sums = registry deltas                            *)
(* ------------------------------------------------------------------ *)

let check_reconciles what diff =
  List.iter
    (fun (name, slots, registry) ->
      Alcotest.(check int) (what ^ ": " ^ name ^ " slots = registry") registry
        slots)
    (Profile.reconcile ~diff)

let test_profile_local_reconciles () =
  let prog = Compile.compile ~streams:streams_rs [ ("Q", q_join) ] in
  let rt = Runtime.create prog in
  with_profiler (fun () ->
      let earlier = Obs.snapshot () in
      ignore (Runtime.apply_batch rt ~rel:"R" (mk2 [ (1, 10, 1.); (2, 20, 1.) ]));
      ignore (Runtime.apply_batch rt ~rel:"S" (mk2 [ (10, 5, 1.); (20, 6, 2.) ]));
      ignore (Runtime.apply_single rt ~rel:"R" [| i 7; i 10 |] 1.);
      let diff = Obs.diff ~later:(Obs.snapshot ()) ~earlier in
      check_reconciles "local" diff;
      let rows = Prof.rows () in
      Alcotest.(check bool) "some statement fired" true
        (List.exists (fun r -> r.Prof.r_firings > 0) rows);
      Alcotest.(check bool) "ops attributed" true
        (List.fold_left (fun a r -> a + r.Prof.r_ops) 0 rows > 0))

let test_profile_cluster_reconciles () =
  let w = Workload.find "Q3" in
  let prog = Workload.compile w in
  let dp = Workload.distribute w prog in
  let c =
    Divm_cluster.Cluster.create
      ~config:(Divm_cluster.Cluster.config ~workers:4 ())
      dp
  in
  let stream =
    Divm_tpch.Gen.stream { Divm_tpch.Gen.scale = 0.05; seed = 7 }
      ~batch_size:300
  in
  with_profiler (fun () ->
      let earlier = Obs.snapshot () in
      List.iter
        (fun (rel, b) -> ignore (Divm_cluster.Cluster.apply_batch c ~rel b))
        stream;
      let diff = Obs.diff ~later:(Obs.snapshot ()) ~earlier in
      check_reconciles "cluster" diff;
      let rows = Prof.rows () in
      let sum f = List.fold_left (fun a r -> a + f r) 0 rows in
      Alcotest.(check bool) "shuffle bytes attributed to transfer slots" true
        (sum (fun r -> r.Prof.r_bytes) > 0);
      Alcotest.(check bool) "transfer slots registered" true
        (List.exists
           (fun r ->
             r.Prof.r_bytes > 0
             && String.length r.Prof.r_label > 9
             && String.sub r.Prof.r_label 0 9 = "transfer:")
           rows))

(* Selection-vector execution must stay exactly attributable: drive Q6
   (whose delta statement compiles to solo selvec kernels) on the Local
   backend with the profiler on, demand nonzero selvec counters in the
   registry diff, per-slot svscan/svsel sums that reconcile exactly
   against them, and a "selvec"-labelled slot owning the rows. *)
let test_profile_selvec_reconciles () =
  let w = Workload.find "Q6" in
  let prog = Workload.compile w in
  let rt = Runtime.create prog in
  let stream =
    Divm_tpch.Gen.stream { Divm_tpch.Gen.scale = 0.05; seed = 11 }
      ~batch_size:400
  in
  with_profiler (fun () ->
      let earlier = Obs.snapshot () in
      List.iter (fun (rel, b) -> ignore (Runtime.apply_batch rt ~rel b)) stream;
      let diff = Obs.diff ~later:(Obs.snapshot ()) ~earlier in
      let counter name = Obs.counter_value diff name in
      let scanned = counter "divm_selvec_rows_scanned_total" in
      let selected = counter "divm_selvec_rows_selected_total" in
      Alcotest.(check bool) "selvec kernels scanned rows" true (scanned > 0);
      Alcotest.(check bool) "selvec selected <= scanned" true
        (selected >= 0 && selected <= scanned);
      check_reconciles "selvec" diff;
      let rows = Prof.rows () in
      let sum f = List.fold_left (fun a r -> a + f r) 0 rows in
      Alcotest.(check int) "svscan slot sums = registry" scanned
        (sum (fun r -> r.Prof.r_svscan));
      Alcotest.(check int) "svsel slot sums = registry" selected
        (sum (fun r -> r.Prof.r_svsel));
      Alcotest.(check bool) "a selvec-labelled slot owns the scans" true
        (List.exists
           (fun r ->
             contains ~affix:"selvec" r.Prof.r_label && r.Prof.r_svscan > 0)
           rows))

let test_profile_disabled_attributes_nothing () =
  let prog = Compile.compile ~streams:streams_rs [ ("Q", q_join) ] in
  let rt = Runtime.create prog in
  Prof.reset ();
  Profile.set_enabled false;
  ignore (Runtime.apply_batch rt ~rel:"R" (mk2 [ (1, 10, 1.) ]));
  Alcotest.(check int) "no firings recorded" 0
    (List.fold_left (fun a r -> a + r.Prof.r_firings) 0 (Prof.rows ()))

let test_profile_results_unchanged () =
  let prog = Compile.compile ~streams:streams_rs [ ("Q", q_join) ] in
  let batches =
    [
      ("R", mk2 [ (1, 10, 1.); (2, 20, 3.) ]);
      ("S", mk2 [ (10, 5, 1.); (20, 6, -1.) ]);
      ("R", mk2 [ (1, 10, -1.) ]);
    ]
  in
  let run () =
    let rt = Runtime.create prog in
    List.iter (fun (rel, b) -> ignore (Runtime.apply_batch rt ~rel b)) batches;
    Runtime.result rt "Q"
  in
  let plain = run () in
  let profiled = with_profiler run in
  Alcotest.(check bool) "profiling does not change results" true
    (Gmr.equal plain profiled)

(* ------------------------------------------------------------------ *)
(* Reports and storage self-metrics                                    *)
(* ------------------------------------------------------------------ *)

let test_report_renders () =
  let prog = Compile.compile ~streams:streams_rs [ ("Q", q_join) ] in
  let rt = Runtime.create prog in
  let plan = Profile.explain ~name:"rs" prog in
  with_profiler (fun () ->
      let earlier = Obs.snapshot () in
      ignore (Runtime.apply_batch rt ~rel:"R" (mk2 [ (1, 10, 1.) ]));
      ignore (Runtime.apply_batch rt ~rel:"S" (mk2 [ (10, 5, 1.) ]));
      let diff = Obs.diff ~later:(Obs.snapshot ()) ~earlier in
      let storage = Runtime.storage_stats rt in
      let txt = Profile.report ~plan ~storage ~diff () in
      Alcotest.(check bool) "report header" true
        (contains ~affix:"== PROFILE rs" txt);
      Alcotest.(check bool) "totals row" true (contains ~affix:"-- totals:" txt);
      Alcotest.(check bool) "reconciliation OK" true (contains ~affix:" OK" txt);
      Alcotest.(check bool) "no mismatch" false
        (contains ~affix:"MISMATCH" txt);
      Alcotest.(check bool) "storage section" true
        (contains ~affix:"-- storage:" txt);
      let j = Profile.report_json ~plan ~storage ~diff () in
      Alcotest.(check bool) "json has slots + reconciliation" true
        (contains ~affix:"\"slots\"" j
        && contains ~affix:"\"reconciliation\"" j))

let test_storage_stats_invariants () =
  let prog = Compile.compile ~streams:streams_rs [ ("Q", q_join) ] in
  let rt = Runtime.create prog in
  ignore (Runtime.apply_batch rt ~rel:"R" (mk2 [ (1, 10, 1.); (2, 20, 1.) ]));
  ignore (Runtime.apply_batch rt ~rel:"S" (mk2 [ (10, 5, 1.); (20, 6, 1.) ]));
  let stats = Runtime.storage_stats rt in
  Alcotest.(check bool) "one entry per map and batch pool" true
    (List.length stats = List.length prog.Prog.maps + List.length prog.Prog.streams);
  List.iter
    (fun ((name : string), (s : Pool.stats)) ->
      Alcotest.(check string) "name matches pool" name s.Pool.s_name;
      Alcotest.(check bool)
        (name ^ " load in bounds")
        true
        (s.Pool.s_load >= 0. && s.Pool.s_load <= 0.75);
      Alcotest.(check int)
        (name ^ " probe histogram covers live records")
        s.Pool.s_live
        (Array.fold_left ( + ) 0 s.Pool.s_probe_hist))
    stats;
  (* observing publishes gauges under pool-labeled names *)
  List.iter (fun (_, (s : Pool.stats)) -> ignore s) stats;
  let snap = Obs.snapshot () in
  Alcotest.(check bool) "live-slot gauge registered" true
    (List.exists
       (fun (n, _) -> contains ~affix:"divm_pool_live_slots{pool=" n)
       snap)

let suites =
  [
    ( "profile",
      [
        Alcotest.test_case "explain: local plan" `Quick test_explain_local;
        Alcotest.test_case "explain: vectorized route labels" `Quick
          test_explain_routes;
        Alcotest.test_case "explain: columnar route matches runtime" `Quick
          test_explain_matches_runtime_columnar;
        Alcotest.test_case "explain: distributed plan" `Quick test_explain_dist;
        Alcotest.test_case "profiler: local slot sums = registry deltas" `Quick
          test_profile_local_reconciles;
        Alcotest.test_case "profiler: cluster slot sums = registry deltas"
          `Quick test_profile_cluster_reconciles;
        Alcotest.test_case "profiler: selvec counters reconcile exactly"
          `Quick test_profile_selvec_reconciles;
        Alcotest.test_case "profiler: disabled attributes nothing" `Quick
          test_profile_disabled_attributes_nothing;
        Alcotest.test_case "profiler: results unchanged" `Quick
          test_profile_results_unchanged;
        Alcotest.test_case "report: text and JSON" `Quick test_report_renders;
        Alcotest.test_case "storage stats invariants" `Quick
          test_storage_stats_invariants;
      ] );
  ]
