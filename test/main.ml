let () =
  Alcotest.run "divm"
    (Test_ring.suites @ Test_calc.suites @ Test_interp.suites @ Test_delta.suites @ Test_compiler.suites @ Test_storage.suites @ Test_runtime.suites @ Test_dist.suites @ Test_tpch.suites @ Test_tpcds.suites @ Test_sql.suites @ Test_misc.suites @ Test_ft.suites @ Test_obs.suites @ Test_par.suites @ Test_profile.suites @ Test_node.suites)
