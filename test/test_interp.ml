open Divm_ring
open Divm_storage
open Divm_calc
open Divm_calc.Calc
open Divm_eval

let i x = Value.Int x
let va = Schema.var "A"
let vb = Schema.var "B"
let vc = Schema.var "C"
let vd = Schema.var "D"
let vx = Schema.var "X"

(* R(A,B), S(B,C), T(C,D) — the paper's running example (Ex. 2.1). *)
let db () =
  let r =
    Gmr.of_list
      [
        ([| i 1; i 10 |], 1.);
        ([| i 2; i 10 |], 1.);
        ([| i 3; i 20 |], 2.);
      ]
  in
  let s =
    Gmr.of_list
      [ ([| i 10; i 100 |], 1.); ([| i 20; i 100 |], 1.); ([| i 20; i 200 |], 3.) ]
  in
  let t = Gmr.of_list [ ([| i 100; i 7 |], 1.); ([| i 200; i 8 |], 2.) ] in
  Interp.source_of_rels [ ("R", r); ("S", s); ("T", t) ]

let q_running =
  sum [ vb ]
    (prod [ rel "R" [ va; vb ]; rel "S" [ vb; vc ]; rel "T" [ vc; vd ] ])

let test_running_example () =
  let sch, g = Interp.eval_closed (db ()) q_running in
  Alcotest.(check string) "schema" "[B]" (Schema.to_string sch);
  (* B=10: R has 2 tuples (mult 1 each), S(10,100) mult 1, T(100,7) mult 1,
     so 2. B=20: R mult 2; S(20,100) x T(100,.) = 1, S(20,200) x T(200,.) = 6;
     total 2 x 7 = 14. *)
  Alcotest.(check (float 1e-9)) "B=10" 2. (Gmr.mult g [| i 10 |]);
  Alcotest.(check (float 1e-9)) "B=20" 14. (Gmr.mult g [| i 20 |])

let test_filters_and_values () =
  (* SELECT SUM(A) FROM R WHERE B = 10 *)
  let q =
    sum []
      (prod
         [
           rel "R" [ va; vb ];
           cmp Eq (Vexpr.var vb) (Vexpr.const_i 10);
           value (Vexpr.var va);
         ])
  in
  Alcotest.(check (float 1e-9)) "sum A" 3. (Interp.eval_scalar (db ()) q)

let test_union_and_negation () =
  let q =
    sum []
      (add [ rel "R" [ va; vb ]; neg (rel "R" [ va; vb ]) ])
  in
  Alcotest.(check (float 1e-9)) "R - R = 0" 0. (Interp.eval_scalar (db ()) q)

let test_nested_aggregate () =
  (* Example 3.1: SELECT COUNT( * ) FROM R WHERE R.A <
       (SELECT COUNT( * ) FROM S WHERE R.B = S.B) *)
  let vb2 = Schema.var "B2" in
  let qn =
    sum [] (prod [ rel "S" [ vb2; vc ]; cmp_vars Eq vb vb2 ])
  in
  let q =
    sum []
      (prod [ rel "R" [ va; vb ]; lift vx qn; cmp_vars Lt va vx ])
  in
  (* For B=10 the inner count is 1: rows with A<1: none.
     For B=20 the inner count is 4: row (3,20) has A=3<4, mult 2. *)
  Alcotest.(check (float 1e-9)) "correlated nested" 2.
    (Interp.eval_scalar (db ()) q)

let test_scalar_lift_empty () =
  (* A scalar lift over an empty selection binds 0, as SQL COUNT does. *)
  let qn =
    sum []
      (prod [ rel "S" [ vb; vc ]; cmp Eq (Vexpr.var vb) (Vexpr.const_i 999) ])
  in
  let q =
    sum []
      (prod [ lift vx qn; value (Vexpr.Add (Vexpr.var vx, Vexpr.const_i 5)) ])
  in
  Alcotest.(check (float 1e-9)) "lift of empty = 0" 5.
    (Interp.eval_scalar (db ()) q)

let test_exists () =
  (* SELECT DISTINCT B FROM R: Exists(Sum_[B] R). *)
  let q = exists (sum [ vb ] (rel "R" [ va; vb ])) in
  let _, g = Interp.eval_closed (db ()) q in
  Alcotest.(check int) "two distinct" 2 (Gmr.cardinal g);
  Alcotest.(check (float 1e-9)) "mult 1" 1. (Gmr.mult g [| i 20 |])

let test_exists_negative_cancel () =
  (* Exists sees multiplicity 0 tuples as absent. *)
  let q =
    exists
      (sum [ vb ]
         (add [ rel "R" [ va; vb ]; neg (rel "R" [ va; vb ]) ]))
  in
  let _, g = Interp.eval_closed (db ()) q in
  Alcotest.(check int) "empty" 0 (Gmr.cardinal g)

let test_repeated_column_var () =
  (* R(A,A) selects tuples with equal columns: none here; add one. *)
  let r = Gmr.of_list [ ([| i 5; i 5 |], 3.); ([| i 5; i 6 |], 1.) ] in
  let src = Interp.source_of_rels [ ("R", r) ] in
  let q = sum [] (rel "R" [ va; va ]) in
  Alcotest.(check (float 1e-9)) "self-equal columns" 3.
    (Interp.eval_scalar src q)

let test_eval_with_env () =
  let src = db () in
  let env = Env.bind Env.empty vb (i 20) in
  let sch, g = Interp.eval src env (rel "R" [ va; vb ]) in
  Alcotest.(check string) "bound var excluded" "[A]" (Schema.to_string sch);
  Alcotest.(check (float 1e-9)) "slice" 2. (Gmr.mult g [| i 3 |]);
  Alcotest.(check int) "slice cardinality" 1 (Gmr.cardinal g)

let test_delta_atom_and_maps () =
  let d = Gmr.of_list [ ([| i 9; i 10 |], 1.) ] in
  let m = Gmr.of_list [ ([| i 10 |], 4.) ] in
  let src =
    {
      Interp.rel = (fun _ -> raise Not_found);
      delta = (fun n -> if n = "R" then d else raise Not_found);
      map = (fun n -> if n = "MST" then m else raise Not_found);
    }
  in
  (* dQ(B) = Sum_[B](dR(A,B) * MST[B]) — trigger body of Ex. 2.2. *)
  let q = sum [ vb ] (prod [ delta_rel "R" [ va; vb ]; map_ "MST" [ vb ] ]) in
  let _, g = Interp.eval_closed src q in
  Alcotest.(check (float 1e-9)) "delta join map" 4. (Gmr.mult g [| i 10 |])

let suites =
  [
    ( "interp",
      [
        Alcotest.test_case "running example Ex2.1" `Quick test_running_example;
        Alcotest.test_case "filters and value aggregates" `Quick
          test_filters_and_values;
        Alcotest.test_case "union and negation" `Quick test_union_and_negation;
        Alcotest.test_case "correlated nested aggregate" `Quick
          test_nested_aggregate;
        Alcotest.test_case "scalar lift of empty result" `Quick
          test_scalar_lift_empty;
        Alcotest.test_case "exists / distinct" `Quick test_exists;
        Alcotest.test_case "exists cancellation" `Quick
          test_exists_negative_cancel;
        Alcotest.test_case "repeated column variable" `Quick
          test_repeated_column_var;
        Alcotest.test_case "evaluation under bindings" `Quick
          test_eval_with_env;
        Alcotest.test_case "delta and map atoms" `Quick
          test_delta_atom_and_maps;
      ] );
  ]
