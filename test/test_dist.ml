open Divm_ring
open Divm_storage
open Divm_calc
open Divm_calc.Calc
open Divm_compiler
open Divm_dist
open Divm_runtime
open Divm_cluster

let i x = Value.Int x
let va = Schema.var "A"
let vb = Schema.var "B"
let vc = Schema.var "C"
let vd = Schema.var "D"
let vx = Schema.var "X"

let streams_rst = [ ("R", [ va; vb ]); ("S", [ vb; vc ]); ("T", [ vc; vd ]) ]

let q_running =
  sum [ vb ]
    (prod [ rel "R" [ va; vb ]; rel "S" [ vb; vc ]; rel "T" [ vc; vd ] ])

let mk2 l = Gmr.of_list (List.map (fun (a, b, m) -> ([| i a; i b |], m)) l)

let batches_running =
  [
    ("R", mk2 [ (1, 10, 1.); (2, 10, 1.); (4, 30, 1.) ]);
    ("S", mk2 [ (10, 100, 1.); (20, 200, 2.); (30, 100, 1.) ]);
    ("T", mk2 [ (100, 7, 1.); (200, 8, 1.) ]);
    ("R", mk2 [ (3, 20, 2.); (1, 10, -1.) ]);
    ("S", mk2 [ (20, 100, 1.); (10, 100, -1.) ]);
    ("T", mk2 [ (100, 9, 3.); (200, 8, -1.) ]);
  ]

let compile_dist ?(level = 3) ?(delta_at = `Workers) ~keys queries =
  let prog = Compile.compile ~streams:streams_rst queries in
  let catalog = Loc.heuristic ~keys prog in
  Distribute.compile
    ~options:{ Distribute.level; delta_at }
    ~catalog prog

(* Equivalence: the cluster simulation matches the local runtime after
   every batch, for all optimization levels and several worker counts. *)
let run_cluster_equiv ?(msg = "dist") ~keys ~queries batches =
  let prog = Compile.compile ~streams:streams_rst queries in
  let local = Exec.create prog in
  let clusters =
    List.concat_map
      (fun level ->
        List.concat_map
          (fun w ->
            List.map
              (fun delta_at ->
                let dp = compile_dist ~level ~delta_at ~keys queries in
                ( Printf.sprintf "L%d/W%d/%s" level w
                    (match delta_at with `Workers -> "wk" | `Driver -> "dr"),
                  Cluster.create ~config:(Cluster.config ~workers:w ()) dp ))
              [ `Workers; `Driver ])
          [ 1; 3; 5 ])
      [ 0; 3 ]
  in
  List.iteri
    (fun bi (rel_name, batch) ->
      Exec.apply_batch local ~rel:rel_name batch;
      List.iter
        (fun (_cname, c) -> ignore (Cluster.apply_batch c ~rel:rel_name batch);
          Cluster.check_replicas c)
        clusters;
      List.iter
        (fun (qname, _) ->
          let expect = Exec.result local qname in
          List.iter
            (fun (cname, c) ->
              let got = Cluster.result c qname in
              if not (Gmr.equal expect got) then
                Alcotest.failf "%s: cluster %s diverged on %s at batch %d:@.%a@.vs %a"
                  msg cname qname bi Gmr.pp got Gmr.pp expect)
            clusters)
        queries)
    batches

let test_cluster_running () =
  run_cluster_equiv ~msg:"running" ~keys:[ "B"; "C" ]
    ~queries:[ ("Q", q_running) ]
    batches_running

let test_cluster_scalar () =
  (* Q6 shape: single aggregate, driver-resident result. *)
  let q = sum [] (prod [ rel "R" [ va; vb ]; value (Vexpr.var va) ]) in
  run_cluster_equiv ~msg:"scalar" ~keys:[ "B" ]
    ~queries:[ ("Q6ish", q) ]
    [
      ("R", mk2 [ (1, 10, 1.); (2, 20, 3.) ]);
      ("R", mk2 [ (5, 10, 2.); (1, 10, -1.) ]);
    ]

let test_cluster_nested () =
  (* Q17 shape: correlated nested aggregate, co-partitioned on B. *)
  let q =
    sum []
      (prod
         [
           rel "R" [ va; vb ];
           lift vx (sum [ vb ] (rel "S" [ vb; vc ]));
           cmp_vars Lt va vx;
         ])
  in
  run_cluster_equiv ~msg:"nested" ~keys:[ "B" ]
    ~queries:[ ("QN", q) ]
    [
      ("R", mk2 [ (0, 10, 1.); (1, 20, 1.) ]);
      ("S", mk2 [ (10, 1, 1.); (20, 2, 2.) ]);
      ("S", mk2 [ (10, 1, -1.); (20, 9, 1.) ]);
      ("R", mk2 [ (0, 10, -1.); (2, 20, 5.) ]);
    ]

let test_block_fusion_reduces () =
  let dp0 = compile_dist ~level:1 ~keys:[ "B"; "C" ] [ ("Q", q_running) ] in
  let dp2 = compile_dist ~level:2 ~keys:[ "B"; "C" ] [ ("Q", q_running) ] in
  List.iter
    (fun (t0 : Dprog.dtrigger) ->
      let t2 = Dprog.find_trigger dp2 t0.drelation in
      let n0 = List.length t0.blocks and n2 = List.length t2.blocks in
      Alcotest.(check bool)
        (Printf.sprintf "fusion reduces blocks for %s (%d -> %d)" t0.drelation
           n0 n2)
        true (n2 <= n0))
    dp0.dtriggers;
  (* and at least one trigger actually fuses something *)
  let total d =
    List.fold_left (fun a (t : Dprog.dtrigger) -> a + List.length t.blocks) 0
      d.Dprog.dtriggers
  in
  Alcotest.(check bool) "some fusion happened" true (total dp2 < total dp0)

let test_fuse_algorithm_direct () =
  (* the Appendix C.3 example structure: alternating modes fuse into at
     most one block per mode when statements commute *)
  let mk_stmt t reads =
    Dprog.Compute
      {
        Prog.target = t;
        target_vars = [];
        op = Prog.Add_to;
        rhs = add (List.map (fun r -> map_ r []) reads);
      }
  in
  let locs = [ ("L1", Loc.Local); ("L2", Loc.Local); ("D1", Loc.Dist [| 0 |]); ("D2", Loc.Dist [| 0 |]) ] in
  let stmts =
    [ mk_stmt "L1" []; mk_stmt "D1" [ "L1" ]; mk_stmt "L2" []; mk_stmt "D2" [ "L2" ] ]
  in
  let blocks = Dprog.promote locs stmts in
  Alcotest.(check int) "before" 4 (List.length blocks);
  let fused = Dprog.fuse blocks in
  (* L2 commutes with D1, so: [L1; L2] [D1; D2] *)
  Alcotest.(check int) "after" 2 (List.length fused);
  match fused with
  | [ b1; b2 ] ->
      Alcotest.(check bool) "local first" true (b1.Dprog.bmode = Dprog.MLocal);
      Alcotest.(check int) "two local stmts" 2 (List.length b1.bstmts);
      Alcotest.(check bool) "dist second" true (b2.Dprog.bmode = Dprog.MDist)
  | _ -> Alcotest.fail "unexpected fusion shape"

let test_fuse_respects_dependencies () =
  let mk_stmt t reads loc_t =
    ignore loc_t;
    Dprog.Compute
      {
        Prog.target = t;
        target_vars = [];
        op = Prog.Add_to;
        rhs = add (List.map (fun r -> map_ r []) reads);
      }
  in
  let locs = [ ("A", Loc.Local); ("B", Loc.Dist [| 0 |]); ("C", Loc.Local) ] in
  (* C reads B, B reads A: no reordering of C before B allowed *)
  let stmts =
    [ mk_stmt "A" [] `L; mk_stmt "B" [ "A" ] `D; mk_stmt "C" [ "B" ] `L ]
  in
  let fused = Dprog.fuse (Dprog.promote locs stmts) in
  Alcotest.(check int) "cannot fuse across dependency" 3 (List.length fused)

let test_jobs_stages () =
  let dp = compile_dist ~level:3 ~keys:[ "B"; "C" ] [ ("Q", q_running) ] in
  List.iter
    (fun (tr : Dprog.dtrigger) ->
      let jobs, stages = Dprog.jobs_and_stages dp tr.drelation in
      Alcotest.(check bool)
        (Printf.sprintf "%s: jobs %d <= stages %d, both small" tr.drelation
           jobs stages)
        true
        (jobs >= 1 && jobs <= stages && stages <= 6))
    dp.dtriggers

let test_optimization_reduces_shuffle () =
  (* O0 repartitions big views; O3 ships pre-aggregated deltas: on the same
     stream, O3 must shuffle no more bytes than O0. *)
  let run level =
    let dp = compile_dist ~level ~keys:[ "B"; "C" ] [ ("Q", q_running) ] in
    let c = Cluster.create ~config:(Cluster.config ~workers:4 ()) dp in
    List.fold_left
      (fun acc (r, b) ->
        let m = Cluster.apply_batch c ~rel:r b in
        acc + m.Cluster.bytes_shuffled)
      0 batches_running
  in
  let b0 = run 0 and b3 = run 3 in
  Alcotest.(check bool)
    (Printf.sprintf "O3 shuffles <= O0 (%d vs %d)" b3 b0)
    true (b3 <= b0)

let test_plan_quality_no_view_gather () =
  (* At full optimization the planner must ship batch-derived data, never
     round-trip whole views through the driver: no Gather whose source is a
     non-transient map (scalar query results excepted — they are tiny). *)
  let q = Divm_tpch.Queries.find "Q3" in
  let prog =
    Divm_compiler.Compile.compile ~streams:Divm_tpch.Schema.streams q.maps
  in
  let catalog = Loc.heuristic ~keys:Divm_tpch.Schema.partition_keys prog in
  let dp = Distribute.compile ~catalog prog in
  let transient name =
    match List.find_opt (fun m -> m.Prog.mname = name) dp.Dprog.base.maps with
    | Some { Prog.mkind = Prog.Transient; _ } -> true
    | _ -> false
  in
  List.iter
    (fun (tr : Dprog.dtrigger) ->
      List.iter
        (fun b ->
          List.iter
            (fun d ->
              match d with
              | Dprog.Transfer { tkind = Dprog.Gather; source; _ } ->
                  Alcotest.(check bool)
                    (Printf.sprintf "gather of %s is batch-derived" source)
                    true (transient source)
              | _ -> ())
            b.Dprog.bstmts)
        tr.blocks)
    dp.dtriggers;
  (* the orders trigger splits into two distributed stages (the partial
     join with customer, then the okey-side joins), like Figure 5 *)
  let _, stages = Dprog.jobs_and_stages dp "orders" in
  Alcotest.(check bool)
    (Printf.sprintf "orders trigger multi-stage (%d)" stages)
    true (stages >= 2)

let suites =
  [
    ( "dist",
      [
        Alcotest.test_case "cluster = local (running)" `Quick
          test_cluster_running;
        Alcotest.test_case "cluster = local (scalar agg)" `Quick
          test_cluster_scalar;
        Alcotest.test_case "cluster = local (nested)" `Quick
          test_cluster_nested;
        Alcotest.test_case "block fusion reduces blocks" `Quick
          test_block_fusion_reduces;
        Alcotest.test_case "fusion algorithm (C.3)" `Quick
          test_fuse_algorithm_direct;
        Alcotest.test_case "fusion respects dependencies" `Quick
          test_fuse_respects_dependencies;
        Alcotest.test_case "jobs and stages" `Quick test_jobs_stages;
        Alcotest.test_case "optimization reduces shuffling" `Quick
          test_optimization_reduces_shuffle;
        Alcotest.test_case "plan quality: no whole-view gathers" `Quick
          test_plan_quality_no_view_gather;
      ] );
  ]
