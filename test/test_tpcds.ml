open Divm_storage
open Divm_compiler
open Divm_runtime
open Divm_tpcds

let cfg = { Gen.scale = 0.3; seed = 5 }
let batches = lazy (Gen.stream cfg ~batch_size:60)
let full_tables = lazy (Gen.tables cfg)

let oracle qdef =
  let src = Divm_eval.Interp.source_of_rels (Lazy.force full_tables) in
  snd (Divm_eval.Interp.eval_closed src qdef)

let check_query (q : Queries.t) () =
  let prog = Compile.compile ~streams:Schema.streams q.maps in
  let ex = Exec.create prog in
  let rt = Runtime.create prog in
  List.iter
    (fun (rel, b) ->
      Exec.apply_batch ex ~rel b;
      ignore (Runtime.apply_batch rt ~rel b))
    (Lazy.force batches);
  List.iter
    (fun (mname, qdef) ->
      let expect = oracle qdef in
      let got = Exec.result ex mname in
      if not (Gmr.equal ~eps:2e-4 expect got) then
        Alcotest.failf "%s (interpreted) diverged on %s: %d vs %d tuples"
          q.qname mname (Gmr.cardinal got) (Gmr.cardinal expect);
      let got_rt = Runtime.result rt mname in
      if not (Gmr.equal ~eps:2e-4 expect got_rt) then
        Alcotest.failf "%s (compiled) diverged on %s: %d vs %d tuples" q.qname
          mname (Gmr.cardinal got_rt) (Gmr.cardinal expect))
    q.maps

let test_nonempty () =
  List.iter
    (fun qn ->
      let q = Queries.find qn in
      let mname, qdef = List.hd q.maps in
      Alcotest.(check bool) (qn ^ "/" ^ mname ^ " nonempty") true
        (not (Gmr.is_empty (oracle qdef))))
    [ "DS3"; "DS7"; "DS19"; "DS27"; "DS42"; "DS43"; "DS52"; "DS79" ]

let suites =
  [
    ( "tpcds",
      Alcotest.test_case "key results nonempty" `Quick test_nonempty
      :: List.map
           (fun (q : Queries.t) ->
             Alcotest.test_case
               (Printf.sprintf "%s incremental = from-scratch" q.qname)
               `Slow (check_query q))
           Queries.all );
  ]
