open Divm_storage
open Divm_compiler
open Divm_runtime
open Divm_tpch

let cfg = { Gen.scale = 0.12; seed = 7 }
let batches = lazy (Gen.stream cfg ~batch_size:50)
let full_tables = lazy (Gen.tables cfg)

let oracle qdef =
  let src = Divm_eval.Interp.source_of_rels (Lazy.force full_tables) in
  snd (Divm_eval.Interp.eval_closed src qdef)

(* Run one query's maintenance over the full stream with the interpreted
   executor and the compiled runtime; both must match the from-scratch
   evaluation of the final database. *)
let check_query (q : Queries.t) () =
  let prog = Compile.compile ~streams:Schema.streams q.maps in
  let ex = Exec.create prog in
  let rt = Runtime.create prog in
  List.iter
    (fun (rel, b) ->
      Exec.apply_batch ex ~rel b;
      ignore (Runtime.apply_batch rt ~rel b))
    (Lazy.force batches);
  List.iter
    (fun (mname, qdef) ->
      let expect = oracle qdef in
      let got = Exec.result ex mname in
      if not (Gmr.equal ~eps:2e-4 expect got) then
        Alcotest.failf "%s (interpreted) diverged on %s: %d vs %d tuples@.%a@.vs %a"
          q.qname mname (Gmr.cardinal got) (Gmr.cardinal expect) Gmr.pp got
          Gmr.pp expect;
      let got_rt = Runtime.result rt mname in
      if not (Gmr.equal ~eps:2e-4 expect got_rt) then
        Alcotest.failf "%s (compiled) diverged on %s: %d vs %d tuples" q.qname
          mname (Gmr.cardinal got_rt) (Gmr.cardinal expect))
    q.maps

let test_gen_sanity () =
  let tables = Lazy.force full_tables in
  let card n = Gmr.cardinal (List.assoc n tables) in
  Alcotest.(check int) "regions" 5 (card "region");
  Alcotest.(check int) "nations" 25 (card "nation");
  Alcotest.(check int) "orders" 180 (card "orders");
  Alcotest.(check bool) "lineitems ~4x orders" true (card "lineitem" > 100);
  (* stream covers exactly the tables *)
  let sums = Hashtbl.create 8 in
  List.iter
    (fun (n, b) ->
      Hashtbl.replace sums n
        ((match Hashtbl.find_opt sums n with Some x -> x | None -> 0)
        + Gmr.cardinal b))
    (Lazy.force batches);
  List.iter
    (fun (n, g) ->
      Alcotest.(check int)
        ("stream covers " ^ n)
        (Gmr.cardinal g)
        (match Hashtbl.find_opt sums n with Some x -> x | None -> 0))
    tables

let test_nonempty_results () =
  (* Guard against vacuous tests: these queries must produce output on the
     generated data. *)
  List.iter
    (fun qn ->
      let q = Queries.find qn in
      let mname, qdef = List.hd q.maps in
      let g = oracle qdef in
      Alcotest.(check bool) (qn ^ "/" ^ mname ^ " nonempty") true
        (not (Gmr.is_empty g)))
    [ "Q1"; "Q3"; "Q4"; "Q6"; "Q9"; "Q10"; "Q12"; "Q13"; "Q18" ]

(* Distributed spot checks: the cluster simulation of representative TPC-H
   queries matches local execution under the §6.2 partitioning heuristic. *)
let check_query_cluster qname () =
  let q = Queries.find qname in
  let prog = Compile.compile ~streams:Schema.streams q.maps in
  let catalog = Divm_dist.Loc.heuristic ~keys:Schema.partition_keys prog in
  let dp = Divm_dist.Distribute.compile ~catalog prog in
  let c =
    Divm_cluster.Cluster.create
      ~config:(Divm_cluster.Cluster.config ~workers:4 ())
      dp
  in
  let ex = Exec.create prog in
  List.iter
    (fun (rel, b) ->
      Exec.apply_batch ex ~rel b;
      ignore (Divm_cluster.Cluster.apply_batch c ~rel b))
    (Lazy.force batches);
  Divm_cluster.Cluster.check_replicas c;
  List.iter
    (fun (mname, _) ->
      let expect = Exec.result ex mname in
      let got = Divm_cluster.Cluster.result c mname in
      if not (Gmr.equal ~eps:2e-4 expect got) then
        Alcotest.failf "%s cluster diverged on %s: %d vs %d tuples" qname
          mname (Gmr.cardinal got) (Gmr.cardinal expect))
    q.maps

(* The comparison engines of Fig 8 / Table 1 must themselves be correct:
   classical IVM and re-evaluation match the oracle on real queries. *)
let check_query_baselines qname () =
  let q = Queries.find qname in
  let engines =
    List.map
      (fun e -> (e, Divm_baseline.Baseline.create e ~streams:Schema.streams q.maps))
      [ Divm_baseline.Baseline.Reeval; Divm_baseline.Baseline.Classical ]
  in
  List.iter
    (fun (rel, b) ->
      List.iter
        (fun (_, e) -> ignore (Divm_baseline.Baseline.apply_batch e ~rel b))
        engines)
    (Lazy.force batches);
  List.iter
    (fun (mname, qdef) ->
      let expect = oracle qdef in
      List.iter
        (fun (kind, e) ->
          let got = Divm_baseline.Baseline.result e mname in
          if not (Gmr.equal ~eps:2e-4 expect got) then
            Alcotest.failf "%s (%s) diverged on %s: %d vs %d tuples" qname
              (Divm_baseline.Baseline.engine_name kind)
              mname (Gmr.cardinal got) (Gmr.cardinal expect))
        engines)
    q.maps

let suites =
  [
    ( "tpch",
      Alcotest.test_case "generator sanity" `Quick test_gen_sanity
      :: Alcotest.test_case "key results nonempty" `Quick test_nonempty_results
      :: (List.map
            (fun (q : Queries.t) ->
              Alcotest.test_case
                (Printf.sprintf "%s incremental = from-scratch" q.qname)
                `Slow (check_query q))
            Queries.all
         @ List.map
             (fun qn ->
               Alcotest.test_case
                 (Printf.sprintf "%s cluster = local" qn)
                 `Slow (check_query_cluster qn))
             [ "Q1"; "Q3"; "Q6"; "Q12"; "Q14"; "Q17" ]
         @ List.map
             (fun qn ->
               Alcotest.test_case
                 (Printf.sprintf "%s baselines = from-scratch" qn)
                 `Slow (check_query_baselines qn))
             [ "Q1"; "Q3"; "Q6"; "Q13"; "Q17"; "Q22" ]) );
  ]
