open Divm_ring
open Divm_storage
module Obs = Divm_obs.Obs

let i x = Value.Int x
let t2 a b = [| i a; i b |]

let test_pool_basic () =
  let p = Pool.create ~key_width:2 ~slices:[] () in
  Pool.add p (t2 1 10) 2.;
  Pool.add p (t2 1 10) 3.;
  Pool.add p (t2 2 20) 1.;
  Alcotest.(check int) "cardinal" 2 (Pool.cardinal p);
  Alcotest.(check (float 1e-9)) "get" 5. (Pool.get p (t2 1 10));
  Pool.add p (t2 1 10) (-5.);
  Alcotest.(check int) "cancel removes" 1 (Pool.cardinal p);
  Alcotest.(check (float 1e-9)) "absent" 0. (Pool.get p (t2 1 10));
  Pool.set p (t2 2 20) 9.;
  Alcotest.(check (float 1e-9)) "set overwrites" 9. (Pool.get p (t2 2 20))

let test_pool_free_list () =
  let p = Pool.create ~key_width:1 ~slices:[] () in
  for x = 0 to 9 do
    Pool.add p [| i x |] 1.
  done;
  for x = 0 to 4 do
    Pool.add p [| i x |] (-1.)
  done;
  Alcotest.(check int) "five free slots" 5 (Pool.free_slots p);
  (* New inserts must reuse freed slots. *)
  for x = 100 to 104 do
    Pool.add p [| i x |] 1.
  done;
  Alcotest.(check int) "slots reused" 0 (Pool.free_slots p);
  Alcotest.(check int) "cardinal" 10 (Pool.cardinal p)

let test_pool_slice () =
  let p = Pool.create ~key_width:2 ~slices:[ [| 1 |] ] () in
  Pool.add p (t2 1 10) 1.;
  Pool.add p (t2 2 10) 2.;
  Pool.add p (t2 3 20) 3.;
  let seen = ref [] in
  Pool.slice p ~index:0 [| i 10 |] (fun key m -> seen := (key.(0), m) :: !seen);
  Alcotest.(check int) "slice size" 2 (List.length !seen);
  Alcotest.(check bool) "slice members" true
    (List.mem (i 1, 1.) !seen && List.mem (i 2, 2.) !seen);
  (* Deletion must update the secondary index. *)
  Pool.add p (t2 1 10) (-1.);
  let n = ref 0 in
  Pool.slice p ~index:0 [| i 10 |] (fun _ _ -> incr n);
  Alcotest.(check int) "slice after delete" 1 !n;
  Alcotest.(check (option int)) "find_slice hit" (Some 0)
    (Pool.find_slice p [| 1 |]);
  Alcotest.(check (option int)) "find_slice miss" None
    (Pool.find_slice p [| 0 |])

let test_pool_growth_and_gmr () =
  let p = Pool.create ~key_width:1 ~slices:[] () in
  for x = 0 to 999 do
    Pool.add p [| i x |] (float_of_int (x + 1))
  done;
  Alcotest.(check int) "grown pool" 1000 (Pool.cardinal p);
  Alcotest.(check (float 1e-9)) "value after growth" 500. (Pool.get p [| i 499 |]);
  let g = Pool.to_gmr p in
  Alcotest.(check int) "roundtrip cardinal" 1000 (Gmr.cardinal g);
  let p2 = Pool.of_gmr ~key_width:1 ~slices:[] g in
  Alcotest.(check (float 1e-9)) "roundtrip value" 500. (Pool.get p2 [| i 499 |])

let test_pool_clear () =
  let p = Pool.create ~key_width:1 ~slices:[ [| 0 |] ] () in
  Pool.add p [| i 1 |] 1.;
  Pool.clear p;
  Alcotest.(check int) "cleared" 0 (Pool.cardinal p);
  Alcotest.(check (float 1e-9)) "get after clear" 0. (Pool.get p [| i 1 |]);
  Pool.add p [| i 1 |] 2.;
  Alcotest.(check (float 1e-9)) "reusable" 2. (Pool.get p [| i 1 |])

let test_colbatch_roundtrip () =
  let g =
    Gmr.of_list [ (t2 1 10, 1.); (t2 2 20, -2.); (t2 3 30, 3.) ]
  in
  let b = Colbatch.of_gmr ~width:2 g in
  Alcotest.(check int) "length" 3 (Colbatch.length b);
  Alcotest.(check int) "width" 2 (Colbatch.width b);
  Alcotest.(check bool) "roundtrip" true (Gmr.equal g (Colbatch.to_gmr b))

let test_colbatch_filter_project () =
  let g =
    Gmr.of_list [ (t2 1 10, 1.); (t2 2 20, 1.); (t2 3 10, 1.) ]
  in
  let b = Colbatch.of_gmr ~width:2 g in
  let col1 = Colbatch.column b 1 in
  let fb = Colbatch.filter b (fun j -> Value.equal col1.(j) (i 10)) in
  Alcotest.(check int) "filtered" 2 (Colbatch.length fb);
  let pb = Colbatch.project fb [| 1 |] in
  Alcotest.(check int) "projected width" 1 (Colbatch.width pb);
  (* aggregation merges the two B=10 rows *)
  let agg = Colbatch.aggregate pb in
  Alcotest.(check (float 1e-9)) "aggregated" 2. (Gmr.mult agg [| i 10 |])

let test_trace_hooks () =
  let events = ref 0 in
  Trace.set_sink (Some (fun _ _ -> incr events));
  let p = Pool.create ~key_width:1 ~slices:[] () in
  Pool.add p [| i 1 |] 1.;
  ignore (Pool.get p [| i 1 |]);
  Pool.foreach p (fun _ _ -> ());
  Trace.set_sink None;
  let frozen = !events in
  ignore (Pool.get p [| i 1 |]);
  Alcotest.(check bool) "events recorded" true (frozen >= 3);
  Alcotest.(check int) "sink disabled" frozen !events

(* Model-based property: a pool with a secondary index behaves exactly like
   a GMR under random add/set/clear programs, including slice results. *)
let qcheck_pool_model =
  let open QCheck in
  let gen_op =
    Gen.(
      frequency
        [
          (6, map2 (fun a m -> `Add (a, float_of_int m)) (int_range 0 8) (int_range (-2) 3));
          (2, map2 (fun a m -> `Set (a, float_of_int m)) (int_range 0 8) (int_range 0 3));
          (1, return `Clear);
        ])
  in
  let arb =
    QCheck.make
      ~print:(fun ops -> Printf.sprintf "<%d ops>" (List.length ops))
      Gen.(list_size (int_range 1 60) gen_op)
  in
  QCheck.Test.make ~name:"pool = gmr model under random programs" ~count:200
    arb (fun ops ->
      let p = Pool.create ~key_width:2 ~slices:[ [| 1 |] ] () in
      let model = Gmr.create () in
      List.iter
        (fun op ->
          match op with
          | `Add (a, m) ->
              let key = t2 a (a mod 3) in
              Pool.add p key m;
              Gmr.add model key m
          | `Set (a, m) ->
              let key = t2 a (a mod 3) in
              Pool.set p key m;
              Gmr.set model key m
          | `Clear ->
              Pool.clear p;
              Gmr.clear model)
        ops;
      (* cardinality, contents, and slices agree with the model *)
      Pool.cardinal p = Gmr.cardinal model
      && Gmr.equal (Pool.to_gmr p) model
      && List.for_all
           (fun b ->
             let via_slice = ref 0. and via_model = ref 0. in
             Pool.slice p ~index:0 [| i b |] (fun _ m -> via_slice := !via_slice +. m);
             Gmr.iter
               (fun key m ->
                 if Value.equal key.(1) (i b) then via_model := !via_model +. m)
               model;
             Float.abs (!via_slice -. !via_model) < 1e-9)
           [ 0; 1; 2 ])

(* Independent reference model for the storage core: a plain association
   list keyed by [Vtuple.equal], with the engine's cancellation threshold.
   Deliberately NOT a Gmr — Gmr sits on the same Oaidx core, so checking
   against it would let a shared bug cancel out. *)
module Model = struct
  type t = (Vtuple.t * float) list

  let get m key =
    match List.find_opt (fun (k, _) -> Vtuple.equal k key) m with
    | Some (_, v) -> v
    | None -> 0.

  let add m key x =
    if Float.abs x < Gmr.zero_eps then m
    else
      match List.partition (fun (k, _) -> Vtuple.equal k key) m with
      | [ (k0, v) ], rest ->
          let v' = v +. x in
          if Float.abs v' < Gmr.zero_eps then rest else (k0, v') :: rest
      | [], rest -> (key, x) :: rest
      | _ -> assert false

  let set m key x =
    let rest = List.filter (fun (k, _) -> not (Vtuple.equal k key)) m in
    if Float.abs x < Gmr.zero_eps then rest else (key, x) :: rest
end

(* Key fields flip between [Int x] and [Float (float x)]: the two forms are
   equal (and must collide) per [Value.equal]/[Value.hash]. *)
let field x as_float = if as_float then Value.Float (float_of_int x) else i x

type churn_op =
  | Add of int * bool * int * bool * float
  | Set of int * bool * int * bool * float
  | Remove of int * bool * int * bool
  | Clear

let show_op = function
  | Add (a, fa, b, fb, m) -> Printf.sprintf "Add(%d%s,%d%s,%g)" a
      (if fa then "f" else "") b (if fb then "f" else "") m
  | Set (a, fa, b, fb, m) -> Printf.sprintf "Set(%d%s,%d%s,%g)" a
      (if fa then "f" else "") b (if fb then "f" else "") m
  | Remove (a, fa, b, fb) -> Printf.sprintf "Remove(%d%s,%d%s)" a
      (if fa then "f" else "") b (if fb then "f" else "")
  | Clear -> "Clear"

let gen_churn =
  let open QCheck.Gen in
  (* enough distinct keys (0..40 x 0..8) that long programs force index
     growth, and enough cancellation that freed slots get reused *)
  let key = quad (int_range 0 40) bool (int_range 0 8) bool in
  let op =
    frequency
      [
        ( 6,
          map2
            (fun (a, fa, b, fb) m -> Add (a, fa, b, fb, float_of_int m))
            key (int_range (-2) 3) );
        ( 2,
          map2
            (fun (a, fa, b, fb) m -> Set (a, fa, b, fb, float_of_int m))
            key (int_range 0 3) );
        (2, map (fun (a, fa, b, fb) -> Remove (a, fa, b, fb)) key);
        (1, return Clear);
      ]
  in
  list_size (int_range 1 300) op

let arb_churn =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map show_op ops))
    gen_churn

let key_of = function
  | Add (a, fa, b, fb, _) | Set (a, fa, b, fb, _) | Remove (a, fa, b, fb) ->
      Some [| field a fa; field b fb |]
  | Clear -> None

(* Pool vs the association-list model: get, foreach, and every slice must
   agree after arbitrary churn (growth, free-slot reuse, mixed-type keys). *)
let qcheck_pool_churn =
  QCheck.Test.make ~name:"pool = assoc-list model under churn" ~count:150
    arb_churn (fun ops ->
      let p = Pool.create ~key_width:2 ~slices:[ [| 1 |] ] () in
      let model = ref [] in
      List.iter
        (fun op ->
          match (op, key_of op) with
          | Add (_, _, _, _, m), Some key ->
              Pool.add p key m;
              model := Model.add !model key m
          | Set (_, _, _, _, m), Some key ->
              Pool.set p key m;
              model := Model.set !model key m
          | Remove _, Some key ->
              Pool.set p key 0.;
              model := Model.set !model key 0.
          | _ ->
              Pool.clear p;
              model := [])
        ops;
      let ok_card = Pool.cardinal p = List.length !model in
      (* gets agree for every key the program ever mentioned *)
      let ok_get =
        List.for_all
          (fun op ->
            match key_of op with
            | None -> true
            | Some key ->
                Float.abs (Pool.get p key -. Model.get !model key) < 1e-9)
          ops
      in
      (* foreach emits exactly the model's entries *)
      let seen = ref 0 in
      let ok_foreach = ref true in
      Pool.foreach p (fun key v ->
          incr seen;
          if Float.abs (v -. Model.get !model key) >= 1e-9 then
            ok_foreach := false);
      (* each slice bucket (queried in both key forms) sums like the model *)
      let ok_slice =
        List.for_all
          (fun b ->
            List.for_all
              (fun fb ->
                let got = ref 0. and want = ref 0. in
                Pool.slice p ~index:0 [| field b fb |] (fun _ m ->
                    got := !got +. m);
                List.iter
                  (fun (k, v) ->
                    if Value.equal k.(1) (i b) then want := !want +. v)
                  !model;
                Float.abs (!got -. !want) < 1e-9)
              [ false; true ])
          [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ]
      in
      ok_card && ok_get && !ok_foreach && !seen = List.length !model
      && ok_slice)

(* ------------------------------------------------------------------ *)
(* Radix compaction vs the sort-based oracle                           *)
(* ------------------------------------------------------------------ *)

(* A compacted batch's linear content: rows (over all its columns) summed
   into a GMR. Both compaction paths must agree on this even when a hash
   collision leaves the radix output with a duplicate row or a split
   group — the duplicate's multiplicities sum right back together. *)
let compact_rows_gmr cb weights =
  let g = Gmr.create () in
  let w = Colbatch.width cb in
  for r = 0 to Colbatch.length cb - 1 do
    let tup = Array.init w (fun c -> Colbatch.get (Colbatch.col cb c) r) in
    Gmr.add g tup weights.(r)
  done;
  g

let check_starts cb starts =
  let n = Colbatch.length cb in
  let k = Array.length starts in
  Alcotest.(check int) "starts begins at 0" 0 starts.(0);
  Alcotest.(check int) "starts ends at length" n starts.(k - 1);
  for gi = 0 to k - 2 do
    if starts.(gi) >= starts.(gi + 1) then
      Alcotest.failf "starts not strictly increasing at %d" gi
  done

let check_groups_key_constant cb starts nk =
  for gi = 0 to Array.length starts - 2 do
    for r = starts.(gi) + 1 to starts.(gi + 1) - 1 do
      for c = 0 to nk - 1 do
        let col = Colbatch.col cb c in
        if not (Value.equal (Colbatch.get col starts.(gi)) (Colbatch.get col r))
        then Alcotest.failf "group %d not key-constant at row %d col %d" gi r c
      done
    done
  done

(* Cell domain small enough that duplicate rows, shared keys and
   canceling multiplicities all occur; Int/Float cross-equal forms and
   strings force mixed (boxed) columns. *)
let gen_cell =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun x -> Value.Int x) (int_range 0 3));
        (2, map (fun x -> Value.Float (float_of_int x)) (int_range 0 3));
        (1, map (fun x -> Value.Float (float_of_int x +. 0.5)) (int_range 0 3));
        (1, map (fun x -> Value.Date x) (int_range 0 3));
        ( 1,
          map
            (fun x -> Value.String (String.make 1 (Char.chr (65 + x))))
            (int_range 0 3) );
      ])

let gen_compact_case =
  let open QCheck.Gen in
  int_range 1 4 >>= fun w ->
  list_size (int_range 0 50)
    (pair (array_repeat w gen_cell)
       (map float_of_int (oneofl [ -2; -1; 1; 2 ])))
  >>= fun rows ->
  (* a random permutation of the columns, split into selected key/rest *)
  list_repeat w (int_bound 10_000) >>= fun ks ->
  let perm =
    List.map snd (List.sort compare (List.combine ks (List.init w Fun.id)))
  in
  int_bound w >>= fun s ->
  int_bound s >>= fun nk ->
  let sel = List.filteri (fun i _ -> i < s) perm in
  let key = Array.of_list (List.filteri (fun i _ -> i < nk) sel) in
  let rest = Array.of_list (List.filteri (fun i _ -> i >= nk) sel) in
  return (w, rows, key, rest)

let show_compact_case (w, rows, key, rest) =
  Printf.sprintf "w=%d key=[%s] rest=[%s] rows=[%s]" w
    (String.concat ";" (Array.to_list (Array.map string_of_int key)))
    (String.concat ";" (Array.to_list (Array.map string_of_int rest)))
    (String.concat "; "
       (List.map
          (fun (t, m) ->
            Printf.sprintf "%s*%g"
              (String.concat ","
                 (Array.to_list (Array.map Value.to_string t)))
              m)
          rows))

(* The radix path (cached-hash counting passes) against the PR 4
   comparison sort, on the same batch: identical linear content (rows ×
   mults and rows × source counts as GMRs), valid group structure, and
   with [drop_cancelled] no surviving ~0 rows. The second round masks
   compaction hashes to 2 bits so distinct values collide constantly —
   the radix output may then split groups or leave duplicates unmerged,
   but never change what the batch sums to. *)
let qcheck_compact_radix_vs_sorted =
  let arb = QCheck.make ~print:show_compact_case gen_compact_case in
  QCheck.Test.make ~name:"radix compact_group = sorted oracle" ~count:300 arb
    (fun (w, rows, key, rest) ->
      let b =
        Colbatch.of_iter ~width:w ~count:(List.length rows) (fun emit ->
            List.iter (fun (t, m) -> emit t m) rows)
      in
      let nk = Array.length key in
      List.iter
        (fun bits ->
          Colbatch.hash_bits_for_tests := bits;
          Fun.protect
            ~finally:(fun () -> Colbatch.hash_bits_for_tests := None)
            (fun () ->
              List.iter
                (fun drop ->
                  let cr, sr, nr =
                    Colbatch.compact_group ~drop_cancelled:drop b ~key ~rest
                  in
                  let cs, ss, ns =
                    Colbatch.compact_group_sorted ~drop_cancelled:drop b ~key
                      ~rest
                  in
                  if
                    not
                      (Gmr.equal ~eps:1e-9
                         (compact_rows_gmr cr (Colbatch.mults cr))
                         (compact_rows_gmr cs (Colbatch.mults cs)))
                  then
                    Alcotest.failf "row/mult content diverges (drop=%b)" drop;
                  (* counts only matter to consumers that keep cancelled
                     rows, so compare them in the keep-everything mode *)
                  if
                    (not drop)
                    && not
                         (Gmr.equal ~eps:1e-9 (compact_rows_gmr cr nr)
                            (compact_rows_gmr cs ns))
                  then Alcotest.fail "source-count content diverges";
                  check_starts cr sr;
                  check_starts cs ss;
                  check_groups_key_constant cr sr nk;
                  check_groups_key_constant cs ss nk;
                  if drop then
                    Array.iter
                      (fun m ->
                        if Float.abs m < Gmr.zero_eps then
                          Alcotest.fail "cancelled row survived drop")
                      (Colbatch.mults cr))
                [ false; true ]))
        [ None; Some 2 ];
      true)

(* Exact cancellation is dropped (and counted) only when asked to. *)
let test_compact_drop_cancelled () =
  let g0 = Obs.snapshot () in
  let b =
    Colbatch.of_iter ~width:2 ~count:4 (fun emit ->
        emit (t2 1 10) 2.;
        emit (t2 2 20) 1.;
        emit (t2 1 10) (-2.);
        emit (t2 2 20) 1.)
  in
  let keep, _, _ = Colbatch.compact_group b ~key:[| 0 |] ~rest:[| 1 |] in
  Alcotest.(check int) "kept without flag" 2 (Colbatch.length keep);
  let dropped, _, _ =
    Colbatch.compact_group ~drop_cancelled:true b ~key:[| 0 |] ~rest:[| 1 |]
  in
  Alcotest.(check int) "cancelled row dropped" 1 (Colbatch.length dropped);
  let cancelled =
    Obs.counter_value
      (Obs.diff ~later:(Obs.snapshot ()) ~earlier:g0)
      "divm_batch_rows_cancelled_total"
  in
  (* the counter tallies cancelled *source* rows: both the +2 and the -2 *)
  Alcotest.(check int) "counter incremented" 2 cancelled

(* ------------------------------------------------------------------ *)
(* Dictionary-encoded string columns (PR 9)                            *)
(* ------------------------------------------------------------------ *)

let mk_str_batch rows =
  (* width 2: [Int k; String s] per row, unit multiplicity *)
  Colbatch.of_iter ~width:2 ~count:(List.length rows) (fun emit ->
      List.iter (fun (k, s) -> emit [| i k; Value.String s |] 1.) rows)

(* [dictify_cols] promotes a low-cardinality string column in place,
   accounts the dictionary in [byte_size] per the documented wire layout
   (count + length-prefixed entries + one i32 code per row), and
   invalidates the memoized boxed size. *)
let test_dictify_byte_size () =
  let names = [ "AIR"; "RAIL"; "MAIL"; "AIR"; "RAIL"; "AIR" ] in
  let rows = List.mapi (fun k s -> (k, s)) names in
  let b = mk_str_batch rows in
  (* memoize the boxed size first, so a stale memo would be caught below *)
  let boxed_size = Colbatch.byte_size b in
  Colbatch.dictify_cols b [ 1 ];
  (match Colbatch.col b 1 with
  | Colbatch.CDict (d, codes) ->
      Alcotest.(check int) "dict size" 3 (Colbatch.dict_size d);
      List.iteri
        (fun r s ->
          Alcotest.(check string) "code decodes to source string" s
            (Colbatch.dict_entry d codes.(r)))
        names
  | _ -> Alcotest.fail "low-cardinality string column not promoted to CDict");
  let n = List.length names in
  let dict_payload =
    List.fold_left
      (fun acc s -> acc + 4 + String.length s)
      4
      [ "AIR"; "RAIL"; "MAIL" ]
  in
  (* mults (8n) + CInt column (8n) + dictionary payload + i32 codes (4n) *)
  let expect = (8 * n) + (8 * n) + dict_payload + (4 * n) in
  Alcotest.(check int) "memo invalidated, dictionary accounted" expect
    (Colbatch.byte_size b);
  Alcotest.(check bool) "dict size differs from the boxed size" true
    (expect <> boxed_size);
  (* re-running is idempotent: already-CDict columns are skipped *)
  Colbatch.dictify_cols b [ 1 ];
  Alcotest.(check int) "idempotent" expect (Colbatch.byte_size b)

(* Past the cardinality cutoff (64 distinct entries) the column must stay
   boxed under both the targeted and the whole-batch upgrade, and the
   byte_size memo must not churn. *)
let test_dictify_cardinality_cutoff () =
  let rows = List.init 80 (fun k -> (k, Printf.sprintf "name-%04d" k)) in
  let b = mk_str_batch rows in
  let before = Colbatch.byte_size b in
  Colbatch.dictify_cols b [ 1 ];
  (match Colbatch.col b 1 with
  | Colbatch.CBoxed _ -> ()
  | _ -> Alcotest.fail "high-cardinality column must stay boxed (targeted)");
  Alcotest.(check int) "byte_size unchanged" before (Colbatch.byte_size b);
  Colbatch.dictify b;
  match Colbatch.col b 1 with
  | Colbatch.CBoxed _ -> ()
  | _ -> Alcotest.fail "high-cardinality column must stay boxed (wire)"

(* The targeted form only touches the named columns; non-string columns
   are skipped; content is unchanged either way. *)
let test_dictify_targeted () =
  let mk () =
    Colbatch.of_iter ~width:3 ~count:4 (fun emit ->
        List.iter
          (fun (a, s1, s2) ->
            emit [| i a; Value.String s1; Value.String s2 |] 1.)
          [ (1, "x", "p"); (2, "y", "q"); (3, "x", "p"); (4, "z", "q") ])
  in
  let b = mk () in
  let orig = Colbatch.to_gmr (mk ()) in
  Colbatch.dictify_cols b [ 0; 1 ];
  (match Colbatch.col b 0 with
  | Colbatch.CInt _ -> ()
  | _ -> Alcotest.fail "numeric column must not change representation");
  (match Colbatch.col b 1 with
  | Colbatch.CDict _ -> ()
  | _ -> Alcotest.fail "named string column must promote");
  (match Colbatch.col b 2 with
  | Colbatch.CBoxed _ -> ()
  | _ -> Alcotest.fail "unnamed string column must stay boxed");
  Alcotest.(check bool) "content unchanged by promotion" true
    (Gmr.equal orig (Colbatch.to_gmr b))

(* Radix compaction over CDict columns (cached per-entry hashes) against
   the sort-based oracle, including forced 2-bit hash collisions: same
   linear content, valid group structure. Mirrors
   [qcheck_compact_radix_vs_sorted], but guarantees dictionary-encoded
   key and rest columns. *)
let gen_dict_compact_case =
  let open QCheck.Gen in
  list_size (int_range 0 40)
    (pair
       (pair (int_range 0 3) (oneofl [ "AIR"; "RAIL"; "MAIL"; "SHIP" ]))
       (map float_of_int (oneofl [ -2; -1; 1; 2 ])))
  >>= fun rows ->
  oneofl [ ([| 1 |], [| 0 |]); ([| 0; 1 |], [||]); ([||], [| 1 |]) ]
  >>= fun (key, rest) -> return (rows, key, rest)

let qcheck_compact_dict_vs_sorted =
  let print (rows, key, rest) =
    Printf.sprintf "key=[%s] rest=[%s] rows=[%s]"
      (String.concat ";" (Array.to_list (Array.map string_of_int key)))
      (String.concat ";" (Array.to_list (Array.map string_of_int rest)))
      (String.concat "; "
         (List.map
            (fun ((k, s), m) -> Printf.sprintf "(%d,%s)*%g" k s m)
            rows))
  in
  let arb = QCheck.make ~print gen_dict_compact_case in
  QCheck.Test.make ~name:"radix compact_group on CDict = sorted oracle"
    ~count:200 arb (fun (rows, key, rest) ->
      let b = mk_str_batch (List.map fst rows) in
      List.iteri
        (fun r (_, m) -> (Colbatch.mults b).(r) <- m)
        rows;
      Colbatch.dictify_cols b [ 1 ];
      (if List.length rows > 0 then
         match Colbatch.col b 1 with
         | Colbatch.CDict _ -> ()
         | _ -> Alcotest.fail "string column should be dictionary-encoded");
      let nk = Array.length key in
      List.iter
        (fun bits ->
          Colbatch.hash_bits_for_tests := bits;
          Fun.protect
            ~finally:(fun () -> Colbatch.hash_bits_for_tests := None)
            (fun () ->
              let cr, sr, _ = Colbatch.compact_group b ~key ~rest in
              let cs, ss, _ = Colbatch.compact_group_sorted b ~key ~rest in
              if
                not
                  (Gmr.equal ~eps:1e-9
                     (compact_rows_gmr cr (Colbatch.mults cr))
                     (compact_rows_gmr cs (Colbatch.mults cs)))
              then Alcotest.fail "dict compaction content diverges";
              check_starts cr sr;
              check_starts cs ss;
              check_groups_key_constant cr sr nk))
        [ None; Some 2 ];
      true)

(* Same churn programs against Gmr: mult/iter/cardinal agreement. *)
let qcheck_gmr_churn =
  QCheck.Test.make ~name:"gmr = assoc-list model under churn" ~count:150
    arb_churn (fun ops ->
      let g = Gmr.create () in
      let model = ref [] in
      List.iter
        (fun op ->
          match (op, key_of op) with
          | Add (_, _, _, _, m), Some key ->
              Gmr.add g key m;
              model := Model.add !model key m
          | Set (_, _, _, _, m), Some key ->
              Gmr.set g key m;
              model := Model.set !model key m
          | Remove _, Some key ->
              Gmr.set g key 0.;
              model := Model.set !model key 0.
          | _ ->
              Gmr.clear g;
              model := [])
        ops;
      let ok_mult =
        List.for_all
          (fun op ->
            match key_of op with
            | None -> true
            | Some key ->
                Float.abs (Gmr.mult g key -. Model.get !model key) < 1e-9
                && Gmr.mem g key = (Model.get !model key <> 0.))
          ops
      in
      let seen = ref 0 in
      let ok_iter = ref true in
      Gmr.iter
        (fun key m ->
          incr seen;
          if Float.abs (m -. Model.get !model key) >= 1e-9 then
            ok_iter := false)
        g;
      ok_mult && !ok_iter
      && !seen = List.length !model
      && Gmr.cardinal g = List.length !model)

let suites =
  [
    ( "storage",
      [
        Alcotest.test_case "pool add/get/cancel" `Quick test_pool_basic;
        Alcotest.test_case "pool free list" `Quick test_pool_free_list;
        Alcotest.test_case "pool slice index" `Quick test_pool_slice;
        Alcotest.test_case "pool growth + gmr roundtrip" `Quick
          test_pool_growth_and_gmr;
        Alcotest.test_case "pool clear" `Quick test_pool_clear;
        Alcotest.test_case "colbatch roundtrip" `Quick test_colbatch_roundtrip;
        Alcotest.test_case "colbatch filter/project" `Quick
          test_colbatch_filter_project;
        Alcotest.test_case "trace hooks" `Quick test_trace_hooks;
        Alcotest.test_case "compact_group drop_cancelled" `Quick
          test_compact_drop_cancelled;
        Alcotest.test_case "dictify accounts bytes + invalidates memo" `Quick
          test_dictify_byte_size;
        Alcotest.test_case "dictify cardinality cutoff" `Quick
          test_dictify_cardinality_cutoff;
        Alcotest.test_case "dictify_cols is targeted" `Quick
          test_dictify_targeted;
        QCheck_alcotest.to_alcotest qcheck_compact_radix_vs_sorted;
        QCheck_alcotest.to_alcotest qcheck_compact_dict_vs_sorted;
        QCheck_alcotest.to_alcotest qcheck_pool_model;
        QCheck_alcotest.to_alcotest qcheck_pool_churn;
        QCheck_alcotest.to_alcotest qcheck_gmr_churn;
      ] );
  ]
