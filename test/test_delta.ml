open Divm_ring
open Divm_storage
open Divm_calc
open Divm_calc.Calc
open Divm_eval
open Divm_delta

let i x = Value.Int x
let va = Schema.var "A"
let vb = Schema.var "B"
let vc = Schema.var "C"
let vx = Schema.var "X"

let src_of ~rels ~deltas =
  let find tbl n =
    match List.assoc_opt n tbl with Some g -> g | None -> Gmr.create ()
  in
  {
    Interp.rel = find rels;
    delta = find deltas;
    map = (fun _ -> raise Not_found);
  }

(* Apply a batch to a copy of a relation. *)
let apply g d =
  let g' = Gmr.copy g in
  Gmr.union_into g' d;
  g'

(* The delta invariant: Q(db + ΔR) = Q(db) + (ΔQ)(db, ΔR). *)
let check_delta_invariant ?(msg = "delta invariant") q rels rel_name batch =
  let dq = Delta.expr ~rel:rel_name q in
  let src_pre = src_of ~rels ~deltas:[ (rel_name, batch) ] in
  let rels_post =
    List.map
      (fun (n, g) -> if n = rel_name then (n, apply g batch) else (n, g))
      rels
  in
  let src_post = src_of ~rels:rels_post ~deltas:[] in
  let _, q_pre = Interp.eval_closed src_pre q in
  let _, q_post = Interp.eval_closed src_post q in
  let _, d = Interp.eval_closed src_pre dq in
  let expect = Gmr.copy q_pre in
  Gmr.union_into expect d;
  if not (Gmr.equal expect q_post) then
    Alcotest.failf "%s failed for %s:@.dQ = %s@.got %s@.want %s" msg
      (to_string q) (to_string dq)
      (Format.asprintf "%a" Gmr.pp expect)
      (Format.asprintf "%a" Gmr.pp q_post)

let mk_r l = Gmr.of_list (List.map (fun (a, b, m) -> ([| i a; i b |], m)) l)

let db_r () = mk_r [ (1, 10, 1.); (2, 10, 1.); (3, 20, 2.) ]
let db_s () = mk_r [ (10, 100, 1.); (20, 100, 1.); (20, 200, 3.) ]

let q_join =
  sum [ vb ] (prod [ rel "R" [ va; vb ]; rel "S" [ vb; vc ] ])

let test_delta_join () =
  let batch = mk_r [ (5, 10, 1.); (3, 20, -2.) ] in
  check_delta_invariant q_join
    [ ("R", db_r ()); ("S", db_s ()) ]
    "R" batch;
  let sbatch = mk_r [ (10, 100, -1.); (30, 300, 2.) ] in
  check_delta_invariant q_join
    [ ("R", db_r ()); ("S", db_s ()) ]
    "S" sbatch

let test_delta_shape () =
  (* ΔR(R ⋈ S) must not contain S's delta and must reference dR. *)
  let d = Delta.expr ~rel:"R" q_join in
  Alcotest.(check (list string)) "delta rels" [ "R" ] (delta_rels d);
  Alcotest.(check (list string)) "still joins S" [ "S" ] (base_rels d);
  let d2 = Delta.expr ~rel:"T" q_join in
  Alcotest.(check bool) "delta wrt absent rel is zero" true (is_zero d2)

let test_delta_union_filter () =
  let q =
    sum [ va ]
      (add
         [
           prod [ rel "R" [ va; vb ]; cmp Gt (Vexpr.var vb) (Vexpr.const_i 15) ];
           prod [ rel "R" [ va; vb ]; cmp Lte (Vexpr.var vb) (Vexpr.const_i 15) ];
         ])
  in
  let batch = mk_r [ (7, 20, 1.); (1, 10, -1.) ] in
  check_delta_invariant q [ ("R", db_r ()) ] "R" batch

let test_delta_distinct () =
  (* Example 3.2: SELECT DISTINCT A FROM R WHERE B > 3. *)
  let q =
    exists
      (sum [ va ]
         (prod [ rel "R" [ va; vb ]; cmp Gt (Vexpr.var vb) (Vexpr.const_i 15) ]))
  in
  (* Insertion that creates a new distinct A, deletion that removes one,
     and a no-op change that keeps A distinct. *)
  let batch = mk_r [ (9, 20, 1.); (3, 20, -2.); (1, 10, 5.) ] in
  check_delta_invariant q [ ("R", db_r ()) ] "R" batch;
  (* The revised rule must restrict the difference with a domain. *)
  let d = Delta.of_expr ~rel:"R" q in
  Alcotest.(check bool) "restricted, not expensive" false d.expensive

let test_delta_nested_correlated () =
  (* Example 3.1 with the correlated variable as inner group-by:
     COUNT of R rows with A < (COUNT of S rows with same B). *)
  let q =
    sum []
      (prod
         [
           rel "R" [ va; vb ];
           lift vx (sum [ vb ] (rel "S" [ vb; vc ]));
           cmp_vars Lt va vx;
         ])
  in
  let rels = [ ("R", db_r ()); ("S", db_s ()) ] in
  check_delta_invariant q rels "R" (mk_r [ (0, 20, 1.) ]);
  check_delta_invariant q rels "S" (mk_r [ (10, 300, 2.); (20, 100, -1.) ]);
  let d = Delta.of_expr ~rel:"S" q in
  Alcotest.(check bool) "equality correlation found" false d.expensive

let test_delta_nested_uncorrelated () =
  (* Example 3.3 shape: nested aggregate with no correlation — delta is
     flagged expensive (re-evaluation preferable). *)
  let vb' = Schema.var "B2" in
  let q =
    sum []
      (prod
         [
           rel "R" [ va; vb ];
           lift vx (sum [] (rel "S" [ vb'; vc ]));
           cmp_vars Lt va vx;
         ])
  in
  let rels = [ ("R", db_r ()); ("S", db_s ()) ] in
  check_delta_invariant q rels "S" (mk_r [ (10, 300, 2.) ]);
  let d = Delta.of_expr ~rel:"S" q in
  Alcotest.(check bool) "uncorrelated is expensive" true d.expensive

let test_domain_extract_basic () =
  let dq =
    sum [ va ]
      (prod
         [ delta_rel "R" [ va; vb ]; cmp Gt (Vexpr.var vb) (Vexpr.const_i 3) ])
  in
  let dom = Domain.extract dq in
  Alcotest.(check bool) "binds A" true (Domain.restricts dom [ va ]);
  Alcotest.(check bool) "does not bind C" false (Domain.restricts dom [ vc ]);
  (* Domain tuples must have multiplicity one and cover the delta support. *)
  let batch = mk_r [ (1, 10, 5.); (2, 2, 1.) ] in
  let src = src_of ~rels:[] ~deltas:[ ("R", batch) ] in
  let _, g =
    Interp.eval_closed src (exists (sum [ va ] (Domain.to_expr dom)))
  in
  Alcotest.(check (float 1e-9)) "A=1 in domain (mult 1)" 1. (Gmr.mult g [| i 1 |]);
  Alcotest.(check (float 1e-9)) "A=2 filtered out by B>3" 0. (Gmr.mult g [| i 2 |])

let test_domain_union_intersection () =
  let d1 = delta_rel "R" [ va; vb ] in
  let f = cmp Gt (Vexpr.var vb) (Vexpr.const_i 3) in
  let dom_prod = Domain.extract (prod [ d1; f ]) in
  Alcotest.(check int) "prod unions factors" 2 (List.length dom_prod);
  let dom_add = Domain.extract (add [ prod [ d1; f ]; prod [ d1 ] ]) in
  (* Only the common factor survives a union. *)
  Alcotest.(check int) "add intersects factors" 1 (List.length dom_add)

(* Property: the delta invariant holds for random data on a panel of query
   shapes covering joins, filters, aggregation, distinct and nesting. *)
let qcheck_delta_invariant =
  let open QCheck in
  let gen_gmr =
    Gen.(
      list_size (int_range 0 12)
        (triple (int_range 0 4) (int_range 0 4) (int_range (-2) 3)))
  in
  let shapes =
    [
      ("join", q_join, `Both);
      ( "filter-agg",
        sum [ vb ]
          (prod
             [
               rel "R" [ va; vb ];
               cmp Lte (Vexpr.var va) (Vexpr.const_i 2);
               value (Vexpr.var vb);
             ]),
        `R );
      ( "distinct",
        exists (sum [ va ] (rel "R" [ va; vb ])),
        `R );
      ( "nested",
        sum []
          (prod
             [
               rel "R" [ va; vb ];
               lift vx (sum [ vb ] (rel "S" [ vb; vc ]));
               cmp_vars Lt va vx;
             ]),
        `Both );
      ( "self-join",
        sum [ va ] (prod [ rel "R" [ va; vb ]; rel "R" [ vc; vb ] ]),
        `R );
    ]
  in
  let arb =
    QCheck.make
      ~print:(fun (r, s, d, i) ->
        Printf.sprintf "r=%d tuples, s=%d, d=%d, shape=%d" (List.length r)
          (List.length s) (List.length d) i)
      Gen.(quad gen_gmr gen_gmr gen_gmr (int_range 0 (List.length shapes - 1)))
  in
  QCheck.Test.make ~name:"delta invariant on random data" ~count:200 arb
    (fun (rl, sl, dl, si) ->
      let to_gmr l =
        Gmr.of_list (List.map (fun (a, b, m) -> ([| i a; i b |], float_of_int m)) l)
      in
      let rels = [ ("R", to_gmr rl); ("S", to_gmr sl) ] in
      let name, q, targets = List.nth shapes si in
      let batch = to_gmr dl in
      let check rel_name =
        check_delta_invariant ~msg:name q rels rel_name batch;
        true
      in
      match targets with `R -> check "R" | `Both -> check "R" && check "S")

(* Polynomial expansion preserves semantics: add(monomials e) ≡ e. *)
let qcheck_monomials_equiv =
  let open QCheck in
  let gen_gmr =
    Gen.(
      list_size (int_range 0 10)
        (triple (int_range 0 3) (int_range 0 3) (int_range (-2) 3)))
  in
  let exprs =
    [
      add
        [
          prod [ rel "R" [ va; vb ]; rel "S" [ vb; vc ] ];
          prod [ rel "R" [ va; vb ]; neg (rel "S" [ vb; vc ]) ];
        ];
      sum [ vb ]
        (prod
           [
             add [ rel "R" [ va; vb ]; rel "R" [ va; vb ] ];
             add
               [
                 cmp Lt (Vexpr.var va) (Vexpr.const_i 2);
                 cmp Gte (Vexpr.var va) (Vexpr.const_i 2);
               ];
             rel "S" [ vb; vc ];
           ]);
      sum [ va ]
        (prod
           [
             rel "R" [ va; vb ];
             add [ exists (sum [ vb ] (rel "S" [ vb; vc ])); one ];
           ]);
    ]
  in
  let arb =
    QCheck.make
      ~print:(fun _ -> "<data>")
      Gen.(triple gen_gmr gen_gmr (int_range 0 (List.length exprs - 1)))
  in
  QCheck.Test.make ~name:"add(monomials e) ≡ e" ~count:100 arb
    (fun (rl, sl, ei) ->
      let to_gmr l =
        Gmr.of_list
          (List.map (fun (a, b, m) -> ([| i a; i b |], float_of_int m)) l)
      in
      let src = src_of ~rels:[ ("R", to_gmr rl); ("S", to_gmr sl) ] ~deltas:[] in
      let e = List.nth exprs ei in
      let monos = Poly.monomials e in
      let _, g1 = Interp.eval_closed src e in
      let _, g2 = Interp.eval_closed src (add monos) in
      Gmr.equal g1 g2)

let test_reorder_preserves_semantics () =
  (* Reordering a product must not change its value (domain-first vs
     source order), including order-sensitive Lift factors. *)
  let fs =
    [
      rel "R" [ va; vb ];
      lift vx (sum [ vb ] (rel "S" [ vb; vc ]));
      cmp_vars Lt va vx;
    ]
  in
  match Poly.reorder ~bound:[] fs with
  | None -> Alcotest.fail "no ordering found"
  | Some fs' ->
      let src =
        src_of
          ~rels:[ ("R", db_r ()); ("S", db_s ()) ]
          ~deltas:[]
      in
      let v1 = Interp.eval_scalar src (sum [] (prod fs)) in
      let v2 = Interp.eval_scalar src (sum [] (prod fs')) in
      Alcotest.(check (float 1e-9)) "same value" v1 v2

let suites =
  [
    ( "delta",
      [
        Alcotest.test_case "join deltas (Ex 2.1)" `Quick test_delta_join;
        Alcotest.test_case "delta shape" `Quick test_delta_shape;
        Alcotest.test_case "union + filter" `Quick test_delta_union_filter;
        Alcotest.test_case "distinct (Ex 3.2)" `Quick test_delta_distinct;
        Alcotest.test_case "correlated nesting (Ex 3.1)" `Quick
          test_delta_nested_correlated;
        Alcotest.test_case "uncorrelated nesting (Ex 3.3)" `Quick
          test_delta_nested_uncorrelated;
        Alcotest.test_case "domain extraction basics" `Quick
          test_domain_extract_basic;
        Alcotest.test_case "domain union/intersection" `Quick
          test_domain_union_intersection;
        QCheck_alcotest.to_alcotest qcheck_delta_invariant;
        QCheck_alcotest.to_alcotest qcheck_monomials_equiv;
        Alcotest.test_case "reorder preserves semantics" `Quick
          test_reorder_preserves_semantics;
      ] );
  ]
