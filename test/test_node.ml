(* Multi-process engine tests: the wire codec round-trips bit-exactly and
   rejects malformed frames; a real 2-worker process cluster leaves stores
   bit-identical to the simulator over random TPC-H streams; the Engine
   facade gives the same answers through every backend. *)

open Divm_ring
open Divm_storage
module Obs = Divm_obs.Obs
module Prof = Divm_obs.Prof
module Profile = Divm_profile.Profile
module Protocol = Divm_node.Protocol
module Node = Divm_node.Node
module Cluster = Divm_cluster.Cluster
module Workload = Divm_workload.Workload
module Engine = Divm_engine.Engine
module Tpch = Divm_tpch

(* ------------------------------------------------------------------ *)
(* Codec round-trip                                                    *)
(* ------------------------------------------------------------------ *)

let gen_value =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun i -> Value.Int i) int);
        ( 3,
          map
            (fun f -> Value.Float f)
            (oneof
               [
                 float;
                 oneofl [ 0.0; -0.0; 1e-300; -1e300; 0.1; infinity ];
               ]) );
        (2, map (fun s -> Value.String s) (string_size (int_range 0 20)));
        (1, map (fun d -> Value.Date d) (int_range 19920101 19981231));
      ])

let gen_tuple = QCheck.Gen.(map Array.of_list (list_size (int_range 0 6) gen_value))

let gen_gmr =
  QCheck.Gen.(
    map
      (fun l ->
        let g = Gmr.create () in
        List.iter (fun (t, m) -> Gmr.add g t m) l;
        g)
      (list_size (int_range 0 25)
         (pair gen_tuple (oneof [ float; oneofl [ 1.; -2.; 0.5 ] ]))))

let gen_name =
  QCheck.Gen.(
    string_size ~gen:(map (fun i -> Char.chr i) (int_range 97 122))
      (int_range 1 12))

(* Floats for the telemetry fields: the codec ships IEEE-754 bits, so
   the generator deliberately includes signed zero and infinities. *)
let gen_f =
  QCheck.Gen.(
    oneof [ float; oneofl [ 0.0; -0.0; 1e-300; -1e300; 0.1; infinity ] ])

let gen_obs_value =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun c -> Obs.VCounter c) int);
        (2, map (fun g -> Obs.VGauge g) gen_f);
        ( 2,
          int_range 0 5 >>= fun nb ->
          map3
            (fun buckets counts (sum, count) ->
              Obs.VHistogram
                {
                  buckets = Array.of_list buckets;
                  counts = Array.of_list counts;
                  sum;
                  count;
                })
            (list_repeat nb gen_f)
            (list_repeat (nb + 1) (int_range 0 1_000_000))
            (pair gen_f (int_range 0 1_000_000)) );
      ])

let gen_snapshot =
  QCheck.Gen.(list_size (int_range 0 8) (pair gen_name gen_obs_value))

let gen_row =
  QCheck.Gen.(
    map3
      (fun trigger label (f, (o, (p, (ms, (s, (sv, (se, (b, w)))))))) ->
        {
          Prof.r_trigger = trigger;
          r_label = label;
          r_firings = f;
          r_ops = o;
          r_probes = p;
          r_misses = ms;
          r_scanned = s;
          r_svscan = sv;
          r_svsel = se;
          r_bytes = b;
          r_wall = w;
        })
      gen_name gen_name
      (pair (int_range 0 1000)
         (pair int
            (pair int
               (pair int (pair int (pair int (pair int (pair int gen_f)))))))))

let gen_event =
  QCheck.Gen.(
    map3
      (fun name (start, dur) (depth, attrs) ->
        {
          Obs.ev_name = name;
          ev_start = start;
          ev_dur = dur;
          ev_depth = depth;
          ev_attrs = attrs;
        })
      gen_name (pair gen_f gen_f)
      (pair (int_range 0 5)
         (list_size (int_range 0 3) (pair gen_name gen_name))))

let gen_telem =
  QCheck.Gen.(
    map3
      (fun t_now t_snap (t_slots, t_spans) ->
        { Protocol.t_now; t_snap; t_slots; t_spans })
      gen_f gen_snapshot
      (pair
         (list_size (int_range 0 6) gen_row)
         (list_size (int_range 0 6) gen_event)))

(* Byte counts in a shuffle stat are non-negative by construction (the
   decoder rejects anything else — see the mesh strictness test). *)
let gen_shuffle_stat =
  QCheck.Gen.(
    map3
      (fun ser (modeled, sent) wall ->
        {
          Protocol.ss_ser = ser;
          ss_modeled = Array.of_list modeled;
          ss_sent = Array.of_list sent;
          ss_wall = wall;
        })
      (int_range 0 1_000_000)
      (pair
         (list_size (int_range 0 4) (int_range 0 1_000_000))
         (list_size (int_range 0 4) (int_range 0 1_000_000)))
      gen_f)

let gen_msg =
  QCheck.Gen.(
    frequency
      [
        (1, map (fun i -> Protocol.Hello i) (int_range 0 100));
        (1, map (fun s -> Protocol.Init s) (string_size (int_range 0 64)));
        ( 3,
          map2 (fun r g -> Protocol.Load_batch (r, g)) gen_name gen_gmr );
        (1, map2 (fun r i -> Protocol.Run_block (r, i)) gen_name (int_range 0 50));
        ( 1,
          map2
            (fun i w -> Protocol.Block_done (i, w))
            (int_range 0 1_000_000) gen_f );
        (1, map (fun m -> Protocol.Pull_map m) gen_name);
        (3, map (fun g -> Protocol.Map_contents g) gen_gmr);
        (3, map2 (fun m g -> Protocol.Deliver (m, g)) gen_name gen_gmr);
        (1, map (fun m -> Protocol.Clear_map m) gen_name);
        (1, return Protocol.Ack);
        (1, return Protocol.Shutdown);
        ( 1,
          map2
            (fun p tr -> Protocol.Start_telemetry (p, tr))
            bool bool );
        (1, return Protocol.Pull_telemetry);
        (2, map (fun tm -> Protocol.Telemetry tm) gen_telem);
        ( 1,
          map
            (fun ps -> Protocol.Peers (Array.of_list ps))
            (list_size (int_range 0 4) gen_name) );
        (1, return Protocol.Mesh_connect);
        (1, map (fun i -> Protocol.Shuffle i) (int_range 0 1000));
        (1, map (fun st -> Protocol.Shuffle_done st) gen_shuffle_stat);
        ( 2,
          map2
            (fun src g -> Protocol.Mesh_data (src, g))
            (int_range 0 8) gen_gmr );
      ])

(* Bit-exact multiset equality: same tuples (values compared structurally,
   which for floats is bit comparison via [compare]) and multiplicities
   equal as IEEE-754 bit patterns. *)
let gmr_bits_equal a b =
  Gmr.cardinal a = Gmr.cardinal b
  && Gmr.fold
       (fun t m acc ->
         acc && Gmr.mem b t
         && Int64.equal (Int64.bits_of_float m) (Int64.bits_of_float (Gmr.mult b t)))
       a true

let fbits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let obs_value_equal a b =
  match (a, b) with
  | Obs.VCounter x, Obs.VCounter y -> x = y
  | Obs.VGauge x, Obs.VGauge y -> fbits_equal x y
  | Obs.VHistogram h1, Obs.VHistogram h2 ->
      Array.length h1.buckets = Array.length h2.buckets
      && Array.for_all2 fbits_equal h1.buckets h2.buckets
      && h1.counts = h2.counts
      && fbits_equal h1.sum h2.sum
      && h1.count = h2.count
  | _ -> false

let row_equal (a : Prof.row) (b : Prof.row) =
  a.r_trigger = b.r_trigger && a.r_label = b.r_label
  && a.r_firings = b.r_firings && a.r_ops = b.r_ops
  && a.r_probes = b.r_probes && a.r_misses = b.r_misses
  && a.r_scanned = b.r_scanned && a.r_bytes = b.r_bytes
  && fbits_equal a.r_wall b.r_wall

let event_equal (a : Obs.event) (b : Obs.event) =
  a.ev_name = b.ev_name
  && fbits_equal a.ev_start b.ev_start
  && fbits_equal a.ev_dur b.ev_dur
  && a.ev_depth = b.ev_depth && a.ev_attrs = b.ev_attrs

let telem_equal (a : Protocol.telem) (b : Protocol.telem) =
  fbits_equal a.t_now b.t_now
  && List.length a.t_snap = List.length b.t_snap
  && List.for_all2
       (fun (n1, v1) (n2, v2) -> n1 = n2 && obs_value_equal v1 v2)
       a.t_snap b.t_snap
  && List.length a.t_slots = List.length b.t_slots
  && List.for_all2 row_equal a.t_slots b.t_slots
  && List.length a.t_spans = List.length b.t_spans
  && List.for_all2 event_equal a.t_spans b.t_spans

let msg_equal (a : Protocol.msg) (b : Protocol.msg) =
  match (a, b) with
  | Protocol.Load_batch (r1, g1), Protocol.Load_batch (r2, g2)
  | Protocol.Deliver (r1, g1), Protocol.Deliver (r2, g2) ->
      String.equal r1 r2 && gmr_bits_equal g1 g2
  | Protocol.Map_contents g1, Protocol.Map_contents g2 -> gmr_bits_equal g1 g2
  | Protocol.Block_done (o1, w1), Protocol.Block_done (o2, w2) ->
      o1 = o2 && fbits_equal w1 w2
  | Protocol.Telemetry t1, Protocol.Telemetry t2 -> telem_equal t1 t2
  | Protocol.Mesh_data (s1, g1), Protocol.Mesh_data (s2, g2) ->
      s1 = s2 && gmr_bits_equal g1 g2
  | Protocol.Shuffle_done st1, Protocol.Shuffle_done st2 ->
      st1.ss_ser = st2.ss_ser
      && st1.ss_modeled = st2.ss_modeled
      && st1.ss_sent = st2.ss_sent
      && fbits_equal st1.ss_wall st2.ss_wall
  | a, b -> a = b

let qcheck_codec_roundtrip =
  let arb = QCheck.make ~print:(fun _ -> "<msg>") gen_msg in
  QCheck.Test.make ~name:"protocol codec round-trips bit-exactly" ~count:500 arb
    (fun m ->
      let payload = Protocol.encode m in
      if not (msg_equal m (Protocol.decode payload)) then
        Alcotest.fail "decode (encode m) <> m";
      let frame = Protocol.encode_frame m in
      let m', consumed = Protocol.decode_frame frame in
      if consumed <> String.length frame then
        Alcotest.failf "frame not fully consumed: %d <> %d" consumed
          (String.length frame);
      if not (msg_equal m m') then Alcotest.fail "frame round-trip diverged";
      (* Frames are self-delimiting: a concatenated stream splits back. *)
      let m'', consumed' = Protocol.decode_frame (frame ^ frame) in
      msg_equal m m'' && consumed' = String.length frame)

let expect_error name f =
  match f () with
  | exception Protocol.Error _ -> ()
  | exception e ->
      Alcotest.failf "%s: expected Protocol.Error, got %s" name
        (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: malformed input accepted" name

let qcheck_codec_truncated =
  let arb = QCheck.make ~print:(fun _ -> "<msg>") gen_msg in
  QCheck.Test.make ~name:"truncated frames and payloads are rejected" ~count:200
    arb (fun m ->
      let frame = Protocol.encode_frame m in
      let n = String.length frame in
      (* Any strict prefix must be rejected (or, below 4 header bytes,
         still rejected — decode_frame never guesses). *)
      for cut = 1 to n - 1 do
        expect_error
          (Printf.sprintf "prefix of %d/%d bytes" cut n)
          (fun () -> Protocol.decode_frame (String.sub frame 0 cut))
      done;
      true)

let test_codec_malformed () =
  (* Length prefix exceeding max_frame. *)
  let oversized =
    let b = Buffer.create 8 in
    Buffer.add_int32_be b (Int32.of_int (Protocol.max_frame + 1));
    Buffer.add_string b "xxxx";
    Buffer.contents b
  in
  expect_error "oversized length prefix" (fun () ->
      Protocol.decode_frame oversized);
  (* Zero-length payload. *)
  expect_error "empty payload" (fun () ->
      Protocol.decode_frame "\x00\x00\x00\x00");
  (* Unknown tag byte. *)
  expect_error "unknown tag" (fun () -> Protocol.decode "\xff");
  (* Trailing garbage after a complete message. *)
  expect_error "trailing bytes" (fun () ->
      Protocol.decode (Protocol.encode Protocol.Ack ^ "\x00"));
  (* Gmr count claiming more entries than the payload holds. *)
  let lying =
    let b = Buffer.create 16 in
    Buffer.add_string b (Protocol.encode (Protocol.Map_contents (Gmr.create ())))
    ;
    (* patch the count field (last 4 bytes of the empty-Gmr encoding) *)
    let s = Bytes.of_string (Buffer.contents b) in
    Bytes.set s (Bytes.length s - 1) '\xff';
    Bytes.to_string s
  in
  expect_error "lying entry count" (fun () -> Protocol.decode lying)

(* ------------------------------------------------------------------ *)
(* Dictionary-encoded string columns on the wire (PR 9)                *)
(* ------------------------------------------------------------------ *)

(* Low-cardinality string columns must actually ship as dictionary +
   codes (column kind 4), round-trip bit-exactly, and high-cardinality
   columns must stay on the boxed layout (kind 3). The kind byte of the
   second column sits at a computable offset: tag + entry count (i32) +
   layout (u8) + width (u16) + column 0's kind (u8) + n unboxed i64s. *)
let test_codec_dict_roundtrip () =
  let modes = [| "AIR"; "RAIL"; "MAIL"; "SHIP" |] in
  let g = Gmr.create () in
  for k = 0 to 39 do
    Gmr.add g [| Value.Int (k mod 7); Value.String modes.(k mod 4) |] 1.
  done;
  let payload = Protocol.encode (Protocol.Map_contents g) in
  let kind_pos n = 1 + 4 + 1 + 2 + 1 + (8 * n) in
  Alcotest.(check char)
    "string column ships dictionary-encoded" '\x04'
    payload.[kind_pos (Gmr.cardinal g)];
  (match Protocol.decode payload with
  | Protocol.Map_contents g' ->
      Alcotest.(check bool) "dict round-trip bit-exact" true
        (gmr_bits_equal g g')
  | _ -> Alcotest.fail "decoded to a different message");
  let gh = Gmr.create () in
  for k = 0 to 69 do
    Gmr.add gh [| Value.Int k; Value.String (Printf.sprintf "name-%04d" k) |] 1.
  done;
  let ph = Protocol.encode (Protocol.Map_contents gh) in
  Alcotest.(check char)
    "high-cardinality column stays boxed" '\x03'
    ph.[kind_pos (Gmr.cardinal gh)];
  match Protocol.decode ph with
  | Protocol.Map_contents g' ->
      Alcotest.(check bool) "boxed round-trip bit-exact" true
        (gmr_bits_equal gh g')
  | _ -> Alcotest.fail "decoded to a different message"

(* Hand-built dictionary frames the encoder would never produce: the
   strict decoder must reject duplicate dictionary entries and codes
   outside [0, dict size). *)
let dict_payload ~entries ~codes =
  let n = Array.length codes in
  let b = Buffer.create 64 in
  Buffer.add_uint8 b 7 (* Map_contents *);
  Buffer.add_int32_be b (Int32.of_int n);
  Buffer.add_uint8 b 1 (* columnar layout *);
  Buffer.add_uint16_be b 1 (* width *);
  Buffer.add_uint8 b 4 (* dictionary column kind *);
  Buffer.add_int32_be b (Int32.of_int (Array.length entries));
  Array.iter
    (fun s ->
      Buffer.add_int32_be b (Int32.of_int (String.length s));
      Buffer.add_string b s)
    entries;
  Array.iter (fun c -> Buffer.add_int32_be b (Int32.of_int c)) codes;
  for _ = 1 to n do
    Buffer.add_int64_be b (Int64.bits_of_float 1.)
  done;
  Buffer.contents b

let test_codec_dict_strict () =
  (* sanity: a well-formed hand-built dict frame decodes, duplicate rows
     merging by multiplicity *)
  (match
     Protocol.decode (dict_payload ~entries:[| "x"; "y" |] ~codes:[| 0; 1; 0 |])
   with
  | Protocol.Map_contents g ->
      Alcotest.(check (float 1e-9)) "codes decode through the dictionary" 2.
        (Gmr.mult g [| Value.String "x" |])
  | _ -> Alcotest.fail "decoded to a different message");
  expect_error "duplicate dictionary entry" (fun () ->
      Protocol.decode (dict_payload ~entries:[| "x"; "x" |] ~codes:[| 0 |]));
  expect_error "code out of range" (fun () ->
      Protocol.decode (dict_payload ~entries:[| "x" |] ~codes:[| 0; 1 |]));
  expect_error "negative code" (fun () ->
      Protocol.decode (dict_payload ~entries:[| "x" |] ~codes:[| -1 |]))

(* ------------------------------------------------------------------ *)
(* Mesh frame strictness + error context                               *)
(* ------------------------------------------------------------------ *)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let expect_error_with name substrings f =
  match f () with
  | exception Protocol.Error msg ->
      List.iter
        (fun sub ->
          if not (contains msg sub) then
            Alcotest.failf "%s: error %S lacks %S" name msg sub)
        substrings
  | exception e ->
      Alcotest.failf "%s: expected Protocol.Error, got %s" name
        (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: malformed input accepted" name

(* The strict decoder rejects negative fields the encoder would never
   produce, and every field-level failure cites the frame's claimed tag
   and payload length — debuggable from the exception alone. *)
let test_codec_mesh_strict () =
  (* Negative transfer index: the i32 right after the tag byte. *)
  let shuffle = Protocol.encode (Protocol.Shuffle 3) in
  let neg_idx = Bytes.of_string shuffle in
  Bytes.set neg_idx 1 '\xff';
  expect_error_with "negative transfer index"
    [ "Shuffle"; "tag 17"; "negative transfer index" ]
    (fun () -> Protocol.decode (Bytes.to_string neg_idx));
  (* Negative mesh source id: the i32 right after the tag byte. *)
  let md = Protocol.encode (Protocol.Mesh_data (0, Gmr.create ())) in
  let neg_src = Bytes.of_string md in
  Bytes.set neg_src 1 '\xff';
  expect_error_with "negative mesh source id"
    [ "Mesh_data"; "tag 19"; "negative mesh source id" ]
    (fun () -> Protocol.decode (Bytes.to_string neg_src));
  (* Negative serialized byte count: the i64 right after the tag byte. *)
  let sd =
    Protocol.encode
      (Protocol.Shuffle_done
         {
           Protocol.ss_ser = 1;
           ss_modeled = [| 2 |];
           ss_sent = [| 3 |];
           ss_wall = 0.;
         })
  in
  let neg_ser = Bytes.of_string sd in
  Bytes.set neg_ser 1 '\xff';
  expect_error_with "negative serialized byte count"
    [ "Shuffle_done"; "tag 18"; "negative" ]
    (fun () -> Protocol.decode (Bytes.to_string neg_ser));
  (* Negative modeled byte count: the per-peer arrays ride as i32;
     layout is tag(1) + ser i64(8) + count(4), then the first entry. *)
  let neg_modeled = Bytes.of_string sd in
  Bytes.set neg_modeled 13 '\xff';
  expect_error_with "negative modeled byte count"
    [ "Shuffle_done"; "tag 18"; "negative modeled byte count" ]
    (fun () -> Protocol.decode (Bytes.to_string neg_modeled));
  (* Truncation inside a payload names the claimed message and its
     actual length. *)
  expect_error_with "truncated Shuffle payload"
    [ "Shuffle"; "tag 17" ]
    (fun () -> Protocol.decode (String.sub shuffle 0 (String.length shuffle - 1)));
  (* A frame-cap violation cites the declared length and the would-be
     tag byte of the garbage that follows. *)
  let oversized =
    let b = Buffer.create 8 in
    Buffer.add_int32_be b (Int32.of_int (Protocol.max_frame + 1));
    Buffer.add_uint8 b 8 (* Deliver *);
    Buffer.contents b
  in
  expect_error_with "frame-cap violation cites length and tag"
    [ "declared frame length"; string_of_int (Protocol.max_frame + 1); "Deliver" ]
    (fun () -> Protocol.decode_frame oversized)

(* ------------------------------------------------------------------ *)
(* Simulated vs multiprocess store equivalence                         *)
(* ------------------------------------------------------------------ *)

let tpch_queries =
  [ "Q1"; "Q3"; "Q4"; "Q6"; "Q7"; "Q12"; "Q13"; "Q14"; "Q17"; "Q19"; "Q22" ]

let close_rel a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1. (Float.max a b)

(* The acceptance property of the whole subsystem: a real 2-process
   cluster replaying a random TPC-H stream leaves every non-transient
   store bit-identical to the simulator running the same program at the
   same worker count, and the cost model predicts the same latency and
   shuffle bytes on both (it sees the same op counts). *)
let qcheck_node_equiv =
  let arb =
    QCheck.(
      make
        ~print:(Print.pair Print.int Print.int)
        Gen.(pair (int_range 0 10_000) (int_range 1 40)))
  in
  QCheck.Test.make
    ~name:"multiprocess stores bit-identical to simulator on TPC-H streams"
    ~count:3 arb
    (fun (seed, batch_size) ->
      let stream = Tpch.Gen.stream { Tpch.Gen.scale = 0.03; seed } ~batch_size in
      List.iter
        (fun qn ->
          let w = Workload.find qn in
          let prog = Workload.compile w in
          let dp = Workload.distribute w prog in
          let sim =
            Cluster.create ~config:(Cluster.config ~workers:2 ()) ~domains:1 dp
          in
          let node = Node.create ~config:(Node.config ~workers:2 ()) dp in
          Fun.protect
            ~finally:(fun () -> Node.shutdown node)
            (fun () ->
              List.iter
                (fun (rel, b) ->
                  let ms = Cluster.apply_batch sim ~rel b in
                  let mn = Node.apply_batch node ~rel b in
                  if not (close_rel ms.Cluster.latency mn.Node.latency) then
                    Alcotest.failf
                      "%s: predicted latency diverges from simulator: %g vs %g"
                      qn mn.Node.latency ms.Cluster.latency;
                  if ms.Cluster.bytes_shuffled <> mn.Node.bytes_shuffled then
                    Alcotest.failf
                      "%s: modeled shuffle bytes diverge: %d vs %d" qn
                      mn.Node.bytes_shuffled ms.Cluster.bytes_shuffled;
                  if ms.Cluster.stages <> mn.Node.stages then
                    Alcotest.failf "%s: stage counts diverge: %d vs %d" qn
                      mn.Node.stages ms.Cluster.stages)
                stream;
              List.iter
                (fun (m : Divm_compiler.Prog.map_decl) ->
                  if m.mkind <> Divm_compiler.Prog.Transient then
                    let gs = Cluster.map_contents sim m.mname in
                    let gn = Node.map_contents node m.mname in
                    if not (gmr_bits_equal gs gn) then
                      Alcotest.failf
                        "%s: store %s differs between simulator and worker \
                         processes"
                        qn m.mname)
                prog.Divm_compiler.Prog.maps))
        tpch_queries;
      true)

(* Tentpole acceptance of the shuffle mesh: over the same random TPC-H
   stream, the star and mesh topologies leave every non-transient store
   bit-identical to each other and to the simulator — at 2 AND 4 workers
   — while agreeing on every modeled quantity (the cost model never sees
   the topology). And the point of the mesh: summed over all queries,
   its transfer-stage wire bytes come to at most 0.6x the star's
   (aggregate, because gather-only queries are wire-identical under
   both). *)
let qcheck_star_mesh_equiv =
  let arb = QCheck.(make ~print:Print.int Gen.(int_range 0 10_000)) in
  QCheck.Test.make
    ~name:"star and mesh shuffles bit-identical to simulator at 2 and 4 workers"
    ~count:1 arb
    (fun seed ->
      let stream =
        Tpch.Gen.stream { Tpch.Gen.scale = 0.02; seed } ~batch_size:500
      in
      List.iter
        (fun workers ->
          let star_tw = ref 0 and mesh_tw = ref 0 in
          let transfer_wire acc (m : Node.metrics) =
            List.iter
              (fun (s : Node.stage_stat) ->
                if String.length s.Node.sname >= 9
                   && String.sub s.Node.sname 0 9 = "transfer:"
                then acc := !acc + s.Node.swire)
              m.Node.stage_stats
          in
          List.iter
            (fun qn ->
              let w = Workload.find qn in
              let prog = Workload.compile w in
              let dp = Workload.distribute w prog in
              let sim =
                Cluster.create ~config:(Cluster.config ~workers ()) ~domains:1
                  dp
              in
              let star =
                Node.create
                  ~config:(Node.config ~workers ~shuffle:Node.Star ())
                  dp
              in
              let mesh =
                Node.create
                  ~config:(Node.config ~workers ~shuffle:Node.Mesh ())
                  dp
              in
              Fun.protect
                ~finally:(fun () ->
                  Node.shutdown star;
                  Node.shutdown mesh)
                (fun () ->
                  List.iter
                    (fun (rel, b) ->
                      let ms = Cluster.apply_batch sim ~rel b in
                      let mst = Node.apply_batch star ~rel b in
                      let mme = Node.apply_batch mesh ~rel b in
                      transfer_wire star_tw mst;
                      transfer_wire mesh_tw mme;
                      List.iter
                        (fun (which, (mn : Node.metrics)) ->
                          if not (close_rel ms.Cluster.latency mn.Node.latency)
                          then
                            Alcotest.failf
                              "%s/%dw/%s: predicted latency diverges from \
                               simulator: %g vs %g"
                              qn workers which mn.Node.latency
                              ms.Cluster.latency;
                          if
                            ms.Cluster.bytes_shuffled
                            <> mn.Node.bytes_shuffled
                          then
                            Alcotest.failf
                              "%s/%dw/%s: modeled shuffle bytes diverge: %d \
                               vs %d"
                              qn workers which mn.Node.bytes_shuffled
                              ms.Cluster.bytes_shuffled;
                          if ms.Cluster.stages <> mn.Node.stages then
                            Alcotest.failf
                              "%s/%dw/%s: stage counts diverge: %d vs %d" qn
                              workers which mn.Node.stages ms.Cluster.stages)
                        [ ("star", mst); ("mesh", mme) ])
                    stream;
                  List.iter
                    (fun (m : Divm_compiler.Prog.map_decl) ->
                      if m.mkind <> Divm_compiler.Prog.Transient then begin
                        let gs = Cluster.map_contents sim m.mname in
                        let gst = Node.map_contents star m.mname in
                        let gme = Node.map_contents mesh m.mname in
                        if not (gmr_bits_equal gs gst) then
                          Alcotest.failf
                            "%s/%dw: store %s differs simulator vs star" qn
                            workers m.mname;
                        if not (gmr_bits_equal gst gme) then
                          Alcotest.failf
                            "%s/%dw: store %s differs star vs mesh" qn workers
                            m.mname
                      end)
                    prog.Divm_compiler.Prog.maps))
            tpch_queries;
          if !mesh_tw = 0 then
            Alcotest.failf "%dw: no mesh transfer wire traffic at all" workers;
          (* The acceptance bar, aggregated over the suite: at 2 workers
             mesh stays at or under 0.6x star even at this miniature
             scale. At 4 workers the per-transfer control floors
             (4 Shuffle + 4 Shuffle_done + 12 Mesh_data frames vs star's
             pull/deliver round trips) are a larger share of these tiny
             payloads, so the 0.6x bound belongs to benched scales (the
             CI smoke job enforces it there) — here mesh must still be
             strictly cheaper. *)
          if workers = 2 && !mesh_tw * 10 > !star_tw * 6 then
            Alcotest.failf
              "%dw: mesh transfer wire bytes %d exceed 0.6x star's %d" workers
              !mesh_tw !star_tw;
          if !mesh_tw >= !star_tw then
            Alcotest.failf
              "%dw: mesh transfer wire bytes %d not below star's %d" workers
              !mesh_tw !star_tw)
        [ 2; 4 ];
      true)

(* ------------------------------------------------------------------ *)
(* Engine facade                                                       *)
(* ------------------------------------------------------------------ *)

let test_engine_backends () =
  let stream =
    Tpch.Gen.stream { Tpch.Gen.scale = 0.05; seed = 7 } ~batch_size:300
  in
  let run backend =
    let eng =
      Engine.create ~config:(Engine.config ~backend ~domains:1 ()) (Workload.find "Q3")
    in
    Fun.protect
      ~finally:(fun () -> Engine.shutdown eng)
      (fun () ->
        let reports =
          List.map (fun (rel, b) -> Engine.apply_batch eng ~rel b) stream
        in
        (Engine.query eng "Q3", Engine.backend_name eng, reports))
  in
  let g_local, n_local, _ = run Engine.Local in
  let g_sim, n_sim, _ =
    run (Engine.Simulated (Cluster.config ~workers:2 ()))
  in
  let g_proc, n_proc, proc_reports =
    run (Engine.Multiprocess (Node.config ~workers:2 ()))
  in
  Alcotest.(check string) "local name" "local" n_local;
  Alcotest.(check string) "simulated name" "simulated" n_sim;
  Alcotest.(check string) "multiprocess name" "multiprocess" n_proc;
  if not (Gmr.equal ~eps:1e-6 g_local g_sim) then
    Alcotest.failf "Q3 diverges local vs simulated:@.%a@.vs %a" Gmr.pp g_sim
      Gmr.pp g_local;
  if not (gmr_bits_equal g_sim g_proc) then
    Alcotest.fail "Q3 diverges simulated vs multiprocess";
  (* Multiprocess reports carry the predictor next to the measurement,
     and reconcile_json aggregates them into the CI artifact. *)
  List.iter
    (fun (r : Engine.report) ->
      match r.Engine.modeled with
      | Some l when l >= 0. -> ()
      | _ -> Alcotest.fail "multiprocess report lacks modeled latency")
    proc_reports;
  Alcotest.(check bool) "some batch predicted positive latency" true
    (List.exists
       (fun (r : Engine.report) ->
         match r.Engine.modeled with Some l -> l > 0. | None -> false)
       proc_reports);
  Alcotest.(check bool) "some batch carries stage stats" true
    (List.exists (fun (r : Engine.report) -> r.Engine.stage_stats <> []) proc_reports);
  let json = Engine.reconcile_json proc_reports in
  Alcotest.(check bool) "reconcile json has stage rows" true
    (String.length json > 2
    && String.sub json 0 1 = "["
    &&
    let has s sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    has json "\"predicted_ms\"" && has json "\"measured_ms\"")

(* Boxed-vs-unboxed equivalence through the Engine facade: every
   non-transient store reaches the same state whether the Local executor
   runs typed columnar batches or generic rows, on all three backends.
   For the distributed backends the [columnar] knob is a no-op on
   execution, but both runs cross the new columnar wire layout (and its
   row-layout fallback on mixed-type columns), so the comparison pins the
   codec too. *)
let test_columnar_backend_equiv () =
  let stream =
    Tpch.Gen.stream { Tpch.Gen.scale = 0.02; seed = 13 } ~batch_size:500
  in
  let backends =
    [
      ("local", fun () -> Engine.Local);
      ("simulated", fun () -> Engine.Simulated (Cluster.config ~workers:2 ()));
      ( "multiprocess",
        fun () -> Engine.Multiprocess (Node.config ~workers:2 ()) );
    ]
  in
  List.iter
    (fun qn ->
      let w = Workload.find qn in
      let run backend columnar =
        let eng =
          Engine.create
            ~config:(Engine.config ~backend ~domains:1 ~columnar ())
            w
        in
        Fun.protect
          ~finally:(fun () -> Engine.shutdown eng)
          (fun () ->
            List.iter
              (fun (rel, b) -> ignore (Engine.apply_batch eng ~rel b))
              stream;
            List.filter_map
              (fun (m : Divm_compiler.Prog.map_decl) ->
                if m.mkind <> Divm_compiler.Prog.Transient then
                  Some (m.mname, Engine.map_contents eng m.mname)
                else None)
              (Engine.prog eng).Divm_compiler.Prog.maps)
      in
      List.iter
        (fun (bname, mk) ->
          let unboxed = run (mk ()) true and boxed = run (mk ()) false in
          List.iter2
            (fun (n1, g1) (n2, g2) ->
              Alcotest.(check string) "same map order" n1 n2;
              (* same computation replayed in a different merge order:
                 equal within summation-order epsilon *)
              if not (Gmr.equal ~eps:1e-6 g1 g2) then
                Alcotest.failf
                  "%s/%s: store %s differs between columnar and generic \
                   storage"
                  qn bname n1)
            unboxed boxed)
        backends)
    tpch_queries

let test_engine_single_and_load () =
  (* apply_single on a distributed backend is a one-tuple batch; load on a
     distributed backend replays entries incrementally. Both must agree
     with the simulator fed the same tuples. *)
  let stream =
    Tpch.Gen.stream { Tpch.Gen.scale = 0.03; seed = 3 } ~batch_size:50
  in
  let mk backend = Engine.create ~config:(Engine.config ~backend ()) (Workload.find "Q6") in
  let a = mk (Engine.Simulated (Cluster.config ~workers:2 ())) in
  let b = mk (Engine.Simulated (Cluster.config ~workers:2 ())) in
  List.iter
    (fun (rel, batch) ->
      ignore (Engine.apply_batch a ~rel batch);
      Gmr.iter (fun t m -> ignore (Engine.apply_single b ~rel t m)) batch)
    stream;
  if not (Gmr.equal ~eps:1e-6 (Engine.query a "Q6") (Engine.query b "Q6")) then
    Alcotest.fail "Q6 diverges between batch and single-tuple application"

(* ------------------------------------------------------------------ *)
(* Cluster config/argument domain precedence                           *)
(* ------------------------------------------------------------------ *)

let test_cluster_domains_contradiction () =
  let w = Workload.find "Q6" in
  let dp = Workload.distribute w (Workload.compile w) in
  (match
     Cluster.create ~config:(Cluster.config ~workers:2 ~domains:2 ()) ~domains:4
       dp
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "contradictory domain counts accepted");
  (* Agreement and one-sided pinning are fine. *)
  ignore
    (Cluster.create ~config:(Cluster.config ~workers:2 ~domains:2 ()) ~domains:2
       dp);
  ignore (Cluster.create ~config:(Cluster.config ~workers:2 ()) ~domains:1 dp)

(* ------------------------------------------------------------------ *)
(* Distributed telemetry                                               *)
(* ------------------------------------------------------------------ *)

(* Restore every global observer flag no matter how a telemetry test
   exits — later suites assume the defaults. *)
let with_observers f =
  Fun.protect
    ~finally:(fun () ->
      Profile.set_enabled false;
      Obs.set_collection false;
      Obs.set_tracing false;
      Obs.clear_events ();
      Profile.reset ())
    f

(* The PR 3 invariant — profiler slot sums equal registry deltas —
   extended across process boundaries: with telemetry collection armed,
   the merged coordinator registry must reconcile exactly against the
   merged slots, the per-worker labeled record-op counters must sum to
   the coordinator's own worker-op total, and that total must equal the
   simulator's for the same program and stream (the proven equivalence
   pattern, applied to telemetry). *)
let test_telemetry_reconcile () =
  let stream =
    Tpch.Gen.stream { Tpch.Gen.scale = 0.02; seed = 21 } ~batch_size:400
  in
  let w = Workload.find "Q3" in
  let dp = Workload.distribute w (Workload.compile w) in
  (* Simulator reference with every observer off. *)
  let sim_base = Obs.snapshot () in
  let sim =
    Cluster.create ~config:(Cluster.config ~workers:2 ()) ~domains:1 dp
  in
  List.iter (fun (rel, b) -> ignore (Cluster.apply_batch sim ~rel b)) stream;
  let sim_diff = Obs.diff ~later:(Obs.snapshot ()) ~earlier:sim_base in
  let sim_worker_ops =
    Obs.counter_value sim_diff "divm_cluster_worker_ops_total"
  in
  Alcotest.(check bool) "simulator did distributed work" true
    (sim_worker_ops > 0);
  with_observers @@ fun () ->
  Obs.set_collection true;
  Profile.reset ();
  Profile.set_enabled true;
  let base = Obs.snapshot () in
  let node = Node.create ~config:(Node.config ~workers:2 ()) dp in
  Fun.protect
    ~finally:(fun () -> Node.shutdown node)
    (fun () ->
      List.iter (fun (rel, b) -> ignore (Node.apply_batch node ~rel b)) stream);
  (* shutdown ran inside finally: the final pull has merged by now *)
  let diff = Obs.diff ~later:(Obs.snapshot ()) ~earlier:base in
  let labeled_record_ops =
    List.fold_left
      (fun acc (n, v) ->
        match v with
        | Obs.VCounter c
          when Obs.base_of n = "divm_record_ops_total" && n <> Obs.base_of n ->
            acc + c
        | _ -> acc)
      0 diff
  in
  let node_worker_ops = Obs.counter_value diff "divm_node_worker_ops_total" in
  Alcotest.(check int)
    "merged per-worker record ops equal the coordinator's worker-op total"
    node_worker_ops labeled_record_ops;
  Alcotest.(check int)
    "worker ops equal the simulator's for the same stream" sim_worker_ops
    node_worker_ops;
  let per_worker =
    List.filter
      (fun (n, v) ->
        match v with
        | Obs.VCounter c ->
            Obs.base_of n = "divm_node_worker_ops_total"
            && n <> Obs.base_of n && c > 0
        | _ -> false)
      diff
  in
  Alcotest.(check int) "both workers contributed labeled op counters" 2
    (List.length per_worker);
  List.iter
    (fun (what, slots, registry) ->
      Alcotest.(check int)
        (Printf.sprintf "cross-process reconciliation of %s is exact" what)
        registry slots)
    (Profile.reconcile ~diff)

(* Merged Chrome trace: spans from three pids (coordinator + 2 workers)
   on one corrected timeline; the per-pid offset is applied uniformly at
   export, so a worker's own span order survives correction, and every
   corrected worker span lands inside the coordinator's observed
   window. *)
let test_merged_trace_monotonic () =
  with_observers @@ fun () ->
  Obs.clear_events ();
  Obs.set_collection true;
  Obs.set_tracing true;
  let stream =
    Tpch.Gen.stream { Tpch.Gen.scale = 0.02; seed = 5 } ~batch_size:500
  in
  let w = Workload.find "Q3" in
  let dp = Workload.distribute w (Workload.compile w) in
  let t_start = Unix.gettimeofday () in
  let node = Node.create ~config:(Node.config ~workers:2 ()) dp in
  Fun.protect
    ~finally:(fun () -> Node.shutdown node)
    (fun () ->
      List.iter (fun (rel, b) -> ignore (Node.apply_batch node ~rel b)) stream);
  let t_end = Unix.gettimeofday () in
  let remote = Obs.remote_events () in
  Alcotest.(check int) "both workers shipped spans" 2 (List.length remote);
  List.iter
    (fun (pid, pname, offset, evs) ->
      Alcotest.(check bool)
        (Printf.sprintf "worker pid %d is distinct from the coordinator's" pid)
        true
        (pid >= 2 && contains pname "worker");
      Alcotest.(check bool) "worker produced spans" true (evs <> []);
      (* Uniform offset: sorting by raw start and by corrected start must
         agree — the correction can shift but never reorder. *)
      let sorted =
        List.sort
          (fun (a : Obs.event) b -> compare a.ev_start b.ev_start)
          evs
      in
      let prev = ref neg_infinity in
      List.iter
        (fun (e : Obs.event) ->
          let corrected = e.ev_start -. offset in
          if corrected < !prev then
            Alcotest.failf
              "pid %d: offset correction reordered spans (%.9f after %.9f)"
              pid corrected !prev;
          prev := corrected;
          (* One coherent timeline: the corrected span sits inside the
             coordinator's observed window (slack for the shutdown-pull
             spans and clock estimation error). *)
          let slack = 0.5 in
          if
            corrected < t_start -. slack
            || corrected +. e.ev_dur > t_end +. slack
          then
            Alcotest.failf
              "pid %d: corrected span [%0.6f, %0.6f] escapes the \
               coordinator window [%0.6f, %0.6f]"
              pid corrected
              (corrected +. e.ev_dur)
              (t_start -. slack) (t_end +. slack))
        sorted)
    remote;
  let json = Obs.chrome_trace_json () in
  List.iter
    (fun pid ->
      Alcotest.(check bool)
        (Printf.sprintf "merged trace has spans under pid %d" pid)
        true
        (contains json (Printf.sprintf "\"pid\":%d" pid)))
    [ 1; 2; 3 ]

(* A worker killed mid-stream surfaces as a [Failure] naming the worker
   and its signal, not an opaque socket error. *)
let test_worker_death_report () =
  let stream =
    Tpch.Gen.stream { Tpch.Gen.scale = 0.02; seed = 2 } ~batch_size:200
  in
  let w = Workload.find "Q6" in
  let dp = Workload.distribute w (Workload.compile w) in
  let node = Node.create ~config:(Node.config ~workers:2 ()) dp in
  Fun.protect
    ~finally:(fun () -> Node.shutdown node)
    (fun () ->
      let rel, batch = List.hd stream in
      ignore (Node.apply_batch node ~rel batch);
      (match Node.worker_pids node with
      | Some pid :: _ -> Unix.kill pid Sys.sigkill
      | _ -> Alcotest.fail "coordinator does not know its worker pids");
      Unix.sleepf 0.1;
      match
        List.iter (fun (rel, b) -> ignore (Node.apply_batch node ~rel b)) stream
      with
      | exception Failure msg ->
          Alcotest.(check bool)
            (Printf.sprintf "error names the dead worker: %s" msg)
            true (contains msg "worker 0");
          Alcotest.(check bool)
            (Printf.sprintf "error carries the signal: %s" msg)
            true (contains msg "signaled")
      | () -> Alcotest.fail "batches kept succeeding with a dead worker")

let suites =
  [
    ( "node",
      [
        QCheck_alcotest.to_alcotest qcheck_codec_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_codec_truncated;
        Alcotest.test_case "malformed frames rejected" `Quick
          test_codec_malformed;
        Alcotest.test_case "dict columns round-trip on the wire" `Quick
          test_codec_dict_roundtrip;
        Alcotest.test_case "dict frames decode strictly" `Quick
          test_codec_dict_strict;
        Alcotest.test_case "mesh frames decode strictly with error context"
          `Quick test_codec_mesh_strict;
        QCheck_alcotest.to_alcotest qcheck_node_equiv;
        QCheck_alcotest.to_alcotest qcheck_star_mesh_equiv;
        Alcotest.test_case "engine backends agree" `Quick test_engine_backends;
        Alcotest.test_case "columnar on/off stores agree on every backend"
          `Slow test_columnar_backend_equiv;
        Alcotest.test_case "engine single/load paths" `Quick
          test_engine_single_and_load;
        Alcotest.test_case "cluster domains contradiction" `Quick
          test_cluster_domains_contradiction;
        Alcotest.test_case "telemetry reconciles across processes" `Quick
          test_telemetry_reconcile;
        Alcotest.test_case "merged trace is offset-corrected and ordered"
          `Quick test_merged_trace_monotonic;
        Alcotest.test_case "worker death names the worker and signal" `Quick
          test_worker_death_report;
      ] );
  ]
