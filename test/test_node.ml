(* Multi-process engine tests: the wire codec round-trips bit-exactly and
   rejects malformed frames; a real 2-worker process cluster leaves stores
   bit-identical to the simulator over random TPC-H streams; the Engine
   facade gives the same answers through every backend. *)

open Divm_ring
open Divm_storage
module Protocol = Divm_node.Protocol
module Node = Divm_node.Node
module Cluster = Divm_cluster.Cluster
module Workload = Divm_workload.Workload
module Engine = Divm_engine.Engine
module Tpch = Divm_tpch

(* ------------------------------------------------------------------ *)
(* Codec round-trip                                                    *)
(* ------------------------------------------------------------------ *)

let gen_value =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun i -> Value.Int i) int);
        ( 3,
          map
            (fun f -> Value.Float f)
            (oneof
               [
                 float;
                 oneofl [ 0.0; -0.0; 1e-300; -1e300; 0.1; infinity ];
               ]) );
        (2, map (fun s -> Value.String s) (string_size (int_range 0 20)));
        (1, map (fun d -> Value.Date d) (int_range 19920101 19981231));
      ])

let gen_tuple = QCheck.Gen.(map Array.of_list (list_size (int_range 0 6) gen_value))

let gen_gmr =
  QCheck.Gen.(
    map
      (fun l ->
        let g = Gmr.create () in
        List.iter (fun (t, m) -> Gmr.add g t m) l;
        g)
      (list_size (int_range 0 25)
         (pair gen_tuple (oneof [ float; oneofl [ 1.; -2.; 0.5 ] ]))))

let gen_name =
  QCheck.Gen.(
    string_size ~gen:(map (fun i -> Char.chr i) (int_range 97 122))
      (int_range 1 12))

let gen_msg =
  QCheck.Gen.(
    frequency
      [
        (1, map (fun i -> Protocol.Hello i) (int_range 0 100));
        (1, map (fun s -> Protocol.Init s) (string_size (int_range 0 64)));
        ( 3,
          map2 (fun r g -> Protocol.Load_batch (r, g)) gen_name gen_gmr );
        (1, map2 (fun r i -> Protocol.Run_block (r, i)) gen_name (int_range 0 50));
        (1, map (fun i -> Protocol.Block_done i) (int_range 0 1_000_000));
        (1, map (fun m -> Protocol.Pull_map m) gen_name);
        (3, map (fun g -> Protocol.Map_contents g) gen_gmr);
        (3, map2 (fun m g -> Protocol.Deliver (m, g)) gen_name gen_gmr);
        (1, map (fun m -> Protocol.Clear_map m) gen_name);
        (1, return Protocol.Ack);
        (1, return Protocol.Shutdown);
      ])

(* Bit-exact multiset equality: same tuples (values compared structurally,
   which for floats is bit comparison via [compare]) and multiplicities
   equal as IEEE-754 bit patterns. *)
let gmr_bits_equal a b =
  Gmr.cardinal a = Gmr.cardinal b
  && Gmr.fold
       (fun t m acc ->
         acc && Gmr.mem b t
         && Int64.equal (Int64.bits_of_float m) (Int64.bits_of_float (Gmr.mult b t)))
       a true

let msg_equal (a : Protocol.msg) (b : Protocol.msg) =
  match (a, b) with
  | Protocol.Load_batch (r1, g1), Protocol.Load_batch (r2, g2)
  | Protocol.Deliver (r1, g1), Protocol.Deliver (r2, g2) ->
      String.equal r1 r2 && gmr_bits_equal g1 g2
  | Protocol.Map_contents g1, Protocol.Map_contents g2 -> gmr_bits_equal g1 g2
  | a, b -> a = b

let qcheck_codec_roundtrip =
  let arb = QCheck.make ~print:(fun _ -> "<msg>") gen_msg in
  QCheck.Test.make ~name:"protocol codec round-trips bit-exactly" ~count:500 arb
    (fun m ->
      let payload = Protocol.encode m in
      if not (msg_equal m (Protocol.decode payload)) then
        Alcotest.fail "decode (encode m) <> m";
      let frame = Protocol.encode_frame m in
      let m', consumed = Protocol.decode_frame frame in
      if consumed <> String.length frame then
        Alcotest.failf "frame not fully consumed: %d <> %d" consumed
          (String.length frame);
      if not (msg_equal m m') then Alcotest.fail "frame round-trip diverged";
      (* Frames are self-delimiting: a concatenated stream splits back. *)
      let m'', consumed' = Protocol.decode_frame (frame ^ frame) in
      msg_equal m m'' && consumed' = String.length frame)

let expect_error name f =
  match f () with
  | exception Protocol.Error _ -> ()
  | exception e ->
      Alcotest.failf "%s: expected Protocol.Error, got %s" name
        (Printexc.to_string e)
  | _ -> Alcotest.failf "%s: malformed input accepted" name

let qcheck_codec_truncated =
  let arb = QCheck.make ~print:(fun _ -> "<msg>") gen_msg in
  QCheck.Test.make ~name:"truncated frames and payloads are rejected" ~count:200
    arb (fun m ->
      let frame = Protocol.encode_frame m in
      let n = String.length frame in
      (* Any strict prefix must be rejected (or, below 4 header bytes,
         still rejected — decode_frame never guesses). *)
      for cut = 1 to n - 1 do
        expect_error
          (Printf.sprintf "prefix of %d/%d bytes" cut n)
          (fun () -> Protocol.decode_frame (String.sub frame 0 cut))
      done;
      true)

let test_codec_malformed () =
  (* Length prefix exceeding max_frame. *)
  let oversized =
    let b = Buffer.create 8 in
    Buffer.add_int32_be b (Int32.of_int (Protocol.max_frame + 1));
    Buffer.add_string b "xxxx";
    Buffer.contents b
  in
  expect_error "oversized length prefix" (fun () ->
      Protocol.decode_frame oversized);
  (* Zero-length payload. *)
  expect_error "empty payload" (fun () ->
      Protocol.decode_frame "\x00\x00\x00\x00");
  (* Unknown tag byte. *)
  expect_error "unknown tag" (fun () -> Protocol.decode "\xff");
  (* Trailing garbage after a complete message. *)
  expect_error "trailing bytes" (fun () ->
      Protocol.decode (Protocol.encode Protocol.Ack ^ "\x00"));
  (* Gmr count claiming more entries than the payload holds. *)
  let lying =
    let b = Buffer.create 16 in
    Buffer.add_string b (Protocol.encode (Protocol.Map_contents (Gmr.create ())))
    ;
    (* patch the count field (last 4 bytes of the empty-Gmr encoding) *)
    let s = Bytes.of_string (Buffer.contents b) in
    Bytes.set s (Bytes.length s - 1) '\xff';
    Bytes.to_string s
  in
  expect_error "lying entry count" (fun () -> Protocol.decode lying)

(* ------------------------------------------------------------------ *)
(* Simulated vs multiprocess store equivalence                         *)
(* ------------------------------------------------------------------ *)

let tpch_queries =
  [ "Q1"; "Q3"; "Q4"; "Q6"; "Q7"; "Q12"; "Q13"; "Q14"; "Q17"; "Q19"; "Q22" ]

let close_rel a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1. (Float.max a b)

(* The acceptance property of the whole subsystem: a real 2-process
   cluster replaying a random TPC-H stream leaves every non-transient
   store bit-identical to the simulator running the same program at the
   same worker count, and the cost model predicts the same latency and
   shuffle bytes on both (it sees the same op counts). *)
let qcheck_node_equiv =
  let arb =
    QCheck.(
      make
        ~print:(Print.pair Print.int Print.int)
        Gen.(pair (int_range 0 10_000) (int_range 1 40)))
  in
  QCheck.Test.make
    ~name:"multiprocess stores bit-identical to simulator on TPC-H streams"
    ~count:3 arb
    (fun (seed, batch_size) ->
      let stream = Tpch.Gen.stream { Tpch.Gen.scale = 0.03; seed } ~batch_size in
      List.iter
        (fun qn ->
          let w = Workload.find qn in
          let prog = Workload.compile w in
          let dp = Workload.distribute w prog in
          let sim =
            Cluster.create ~config:(Cluster.config ~workers:2 ()) ~domains:1 dp
          in
          let node = Node.create ~config:(Node.config ~workers:2 ()) dp in
          Fun.protect
            ~finally:(fun () -> Node.shutdown node)
            (fun () ->
              List.iter
                (fun (rel, b) ->
                  let ms = Cluster.apply_batch sim ~rel b in
                  let mn = Node.apply_batch node ~rel b in
                  if not (close_rel ms.Cluster.latency mn.Node.latency) then
                    Alcotest.failf
                      "%s: predicted latency diverges from simulator: %g vs %g"
                      qn mn.Node.latency ms.Cluster.latency;
                  if ms.Cluster.bytes_shuffled <> mn.Node.bytes_shuffled then
                    Alcotest.failf
                      "%s: modeled shuffle bytes diverge: %d vs %d" qn
                      mn.Node.bytes_shuffled ms.Cluster.bytes_shuffled;
                  if ms.Cluster.stages <> mn.Node.stages then
                    Alcotest.failf "%s: stage counts diverge: %d vs %d" qn
                      mn.Node.stages ms.Cluster.stages)
                stream;
              List.iter
                (fun (m : Divm_compiler.Prog.map_decl) ->
                  if m.mkind <> Divm_compiler.Prog.Transient then
                    let gs = Cluster.map_contents sim m.mname in
                    let gn = Node.map_contents node m.mname in
                    if not (gmr_bits_equal gs gn) then
                      Alcotest.failf
                        "%s: store %s differs between simulator and worker \
                         processes"
                        qn m.mname)
                prog.Divm_compiler.Prog.maps))
        tpch_queries;
      true)

(* ------------------------------------------------------------------ *)
(* Engine facade                                                       *)
(* ------------------------------------------------------------------ *)

let test_engine_backends () =
  let stream =
    Tpch.Gen.stream { Tpch.Gen.scale = 0.05; seed = 7 } ~batch_size:300
  in
  let run backend =
    let eng =
      Engine.create ~config:(Engine.config ~backend ~domains:1 ()) (Workload.find "Q3")
    in
    Fun.protect
      ~finally:(fun () -> Engine.shutdown eng)
      (fun () ->
        let reports =
          List.map (fun (rel, b) -> Engine.apply_batch eng ~rel b) stream
        in
        (Engine.query eng "Q3", Engine.backend_name eng, reports))
  in
  let g_local, n_local, _ = run Engine.Local in
  let g_sim, n_sim, _ =
    run (Engine.Simulated (Cluster.config ~workers:2 ()))
  in
  let g_proc, n_proc, proc_reports =
    run (Engine.Multiprocess (Node.config ~workers:2 ()))
  in
  Alcotest.(check string) "local name" "local" n_local;
  Alcotest.(check string) "simulated name" "simulated" n_sim;
  Alcotest.(check string) "multiprocess name" "multiprocess" n_proc;
  if not (Gmr.equal ~eps:1e-6 g_local g_sim) then
    Alcotest.failf "Q3 diverges local vs simulated:@.%a@.vs %a" Gmr.pp g_sim
      Gmr.pp g_local;
  if not (gmr_bits_equal g_sim g_proc) then
    Alcotest.fail "Q3 diverges simulated vs multiprocess";
  (* Multiprocess reports carry the predictor next to the measurement,
     and reconcile_json aggregates them into the CI artifact. *)
  List.iter
    (fun (r : Engine.report) ->
      match r.Engine.modeled with
      | Some l when l >= 0. -> ()
      | _ -> Alcotest.fail "multiprocess report lacks modeled latency")
    proc_reports;
  Alcotest.(check bool) "some batch predicted positive latency" true
    (List.exists
       (fun (r : Engine.report) ->
         match r.Engine.modeled with Some l -> l > 0. | None -> false)
       proc_reports);
  Alcotest.(check bool) "some batch carries stage stats" true
    (List.exists (fun (r : Engine.report) -> r.Engine.stage_stats <> []) proc_reports);
  let json = Engine.reconcile_json proc_reports in
  Alcotest.(check bool) "reconcile json has stage rows" true
    (String.length json > 2
    && String.sub json 0 1 = "["
    &&
    let has s sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    has json "\"predicted_ms\"" && has json "\"measured_ms\"")

(* Boxed-vs-unboxed equivalence through the Engine facade: every
   non-transient store reaches the same state whether the Local executor
   runs typed columnar batches or generic rows, on all three backends.
   For the distributed backends the [columnar] knob is a no-op on
   execution, but both runs cross the new columnar wire layout (and its
   row-layout fallback on mixed-type columns), so the comparison pins the
   codec too. *)
let test_columnar_backend_equiv () =
  let stream =
    Tpch.Gen.stream { Tpch.Gen.scale = 0.02; seed = 13 } ~batch_size:500
  in
  let backends =
    [
      ("local", fun () -> Engine.Local);
      ("simulated", fun () -> Engine.Simulated (Cluster.config ~workers:2 ()));
      ( "multiprocess",
        fun () -> Engine.Multiprocess (Node.config ~workers:2 ()) );
    ]
  in
  List.iter
    (fun qn ->
      let w = Workload.find qn in
      let run backend columnar =
        let eng =
          Engine.create
            ~config:(Engine.config ~backend ~domains:1 ~columnar ())
            w
        in
        Fun.protect
          ~finally:(fun () -> Engine.shutdown eng)
          (fun () ->
            List.iter
              (fun (rel, b) -> ignore (Engine.apply_batch eng ~rel b))
              stream;
            List.filter_map
              (fun (m : Divm_compiler.Prog.map_decl) ->
                if m.mkind <> Divm_compiler.Prog.Transient then
                  Some (m.mname, Engine.map_contents eng m.mname)
                else None)
              (Engine.prog eng).Divm_compiler.Prog.maps)
      in
      List.iter
        (fun (bname, mk) ->
          let unboxed = run (mk ()) true and boxed = run (mk ()) false in
          List.iter2
            (fun (n1, g1) (n2, g2) ->
              Alcotest.(check string) "same map order" n1 n2;
              (* same computation replayed in a different merge order:
                 equal within summation-order epsilon *)
              if not (Gmr.equal ~eps:1e-6 g1 g2) then
                Alcotest.failf
                  "%s/%s: store %s differs between columnar and generic \
                   storage"
                  qn bname n1)
            unboxed boxed)
        backends)
    tpch_queries

let test_engine_single_and_load () =
  (* apply_single on a distributed backend is a one-tuple batch; load on a
     distributed backend replays entries incrementally. Both must agree
     with the simulator fed the same tuples. *)
  let stream =
    Tpch.Gen.stream { Tpch.Gen.scale = 0.03; seed = 3 } ~batch_size:50
  in
  let mk backend = Engine.create ~config:(Engine.config ~backend ()) (Workload.find "Q6") in
  let a = mk (Engine.Simulated (Cluster.config ~workers:2 ())) in
  let b = mk (Engine.Simulated (Cluster.config ~workers:2 ())) in
  List.iter
    (fun (rel, batch) ->
      ignore (Engine.apply_batch a ~rel batch);
      Gmr.iter (fun t m -> ignore (Engine.apply_single b ~rel t m)) batch)
    stream;
  if not (Gmr.equal ~eps:1e-6 (Engine.query a "Q6") (Engine.query b "Q6")) then
    Alcotest.fail "Q6 diverges between batch and single-tuple application"

(* ------------------------------------------------------------------ *)
(* Cluster config/argument domain precedence                           *)
(* ------------------------------------------------------------------ *)

let test_cluster_domains_contradiction () =
  let w = Workload.find "Q6" in
  let dp = Workload.distribute w (Workload.compile w) in
  (match
     Cluster.create ~config:(Cluster.config ~workers:2 ~domains:2 ()) ~domains:4
       dp
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "contradictory domain counts accepted");
  (* Agreement and one-sided pinning are fine. *)
  ignore
    (Cluster.create ~config:(Cluster.config ~workers:2 ~domains:2 ()) ~domains:2
       dp);
  ignore (Cluster.create ~config:(Cluster.config ~workers:2 ()) ~domains:1 dp)

let suites =
  [
    ( "node",
      [
        QCheck_alcotest.to_alcotest qcheck_codec_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_codec_truncated;
        Alcotest.test_case "malformed frames rejected" `Quick
          test_codec_malformed;
        QCheck_alcotest.to_alcotest qcheck_node_equiv;
        Alcotest.test_case "engine backends agree" `Quick test_engine_backends;
        Alcotest.test_case "columnar on/off stores agree on every backend"
          `Slow test_columnar_backend_equiv;
        Alcotest.test_case "engine single/load paths" `Quick
          test_engine_single_and_load;
        Alcotest.test_case "cluster domains contradiction" `Quick
          test_cluster_domains_contradiction;
      ] );
  ]
