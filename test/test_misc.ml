open Divm_ring
open Divm_storage
open Divm_cachesim

let test_cache_lru () =
  (* 2 sets, 2 ways, 64B lines: addresses 0, 128, 256 map to set 0. *)
  let c = Cachesim.cache ~sets:2 ~ways:2 () in
  Alcotest.(check bool) "cold miss" false (Cachesim.access c 0);
  Alcotest.(check bool) "hit" true (Cachesim.access c 8);
  Alcotest.(check bool) "second line miss" false (Cachesim.access c 128);
  Alcotest.(check bool) "both resident" true (Cachesim.access c 0);
  (* third line evicts LRU (128) *)
  Alcotest.(check bool) "conflict miss" false (Cachesim.access c 256);
  Alcotest.(check bool) "victim evicted" false (Cachesim.access c 128);
  Alcotest.(check int) "refs counted" 6 (Cachesim.refs c);
  Alcotest.(check int) "misses counted" 4 (Cachesim.misses c);
  Cachesim.reset c;
  Alcotest.(check int) "reset" 0 (Cachesim.refs c)

let test_cache_hierarchy () =
  let h = Cachesim.default_hierarchy () in
  let detach = Cachesim.attach h in
  let p = Divm_storage.Pool.create ~key_width:1 ~slices:[] () in
  for x = 0 to 999 do
    Divm_storage.Pool.add p [| Value.Int x |] 1.
  done;
  (* hot loop over a small working set: mostly L1 hits *)
  for _ = 1 to 10 do
    for x = 0 to 9 do
      ignore (Divm_storage.Pool.get p [| Value.Int x |])
    done
  done;
  detach ();
  let c = Cachesim.counters h in
  Alcotest.(check bool) "l1 refs recorded" true (c.l1d_refs > 1000);
  Alcotest.(check bool) "llc refs are l1 misses" true
    (c.llc_refs = c.l1d_misses);
  Alcotest.(check bool) "some locality" true (c.l1d_misses < c.l1d_refs)

let test_baseline_engines_agree () =
  let open Divm_calc.Calc in
  let va = Schema.var "A" and vb = Schema.var "B" and vc = Schema.var "C" in
  let streams = [ ("R", [ va; vb ]); ("S", [ vb; vc ]) ] in
  let q = sum [ vb ] (prod [ rel "R" [ va; vb ]; rel "S" [ vb; vc ] ]) in
  let engines =
    List.map
      (fun e -> Divm_baseline.Baseline.create e ~streams [ ("Q", q) ])
      [ Divm_baseline.Baseline.Reeval; Classical; Rivm_interp; Rivm ]
  in
  let i x = Value.Int x in
  let batches =
    [
      ("R", Gmr.of_list [ ([| i 1; i 10 |], 1.); ([| i 2; i 20 |], 1.) ]);
      ("S", Gmr.of_list [ ([| i 10; i 5 |], 2.) ]);
      ("R", Gmr.of_list [ ([| i 1; i 10 |], -1.); ([| i 7; i 10 |], 3.) ]);
    ]
  in
  List.iter
    (fun (r, b) ->
      List.iter
        (fun e -> ignore (Divm_baseline.Baseline.apply_batch e ~rel:r b))
        engines)
    batches;
  let results =
    List.map (fun e -> Divm_baseline.Baseline.result e "Q") engines
  in
  List.iter
    (fun g ->
      Alcotest.(check bool) "engines agree" true
        (Gmr.equal (List.hd results) g))
    (List.tl results)

let test_baseline_load () =
  let open Divm_calc.Calc in
  let va = Schema.var "A" and vb = Schema.var "B" in
  let streams = [ ("R", [ va; vb ]) ] in
  let q = sum [ vb ] (prod [ rel "R" [ va; vb ]; value (Divm_calc.Vexpr.var va) ]) in
  let i x = Value.Int x in
  let warm =
    Gmr.of_list [ ([| i 1; i 10 |], 1.); ([| i 4; i 10 |], 2.); ([| i 2; i 20 |], 1.) ]
  in
  List.iter
    (fun engine ->
      let e = Divm_baseline.Baseline.create engine ~streams [ ("Q", q) ] in
      Divm_baseline.Baseline.load e [ ("R", warm) ];
      (* loaded state must continue incrementally *)
      ignore
        (Divm_baseline.Baseline.apply_batch e ~rel:"R"
           (Gmr.of_list [ ([| i 5; i 20 |], 1.) ]));
      let g = Divm_baseline.Baseline.result e "Q" in
      Alcotest.(check (float 1e-6)) "b=10 after load" 9. (Gmr.mult g [| i 10 |]);
      Alcotest.(check (float 1e-6)) "b=20 after load+batch" 7.
        (Gmr.mult g [| i 20 |]))
    [ Divm_baseline.Baseline.Reeval; Classical; Rivm_interp; Rivm ]

let suites =
  [
    ( "misc",
      [
        Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru;
        Alcotest.test_case "cache hierarchy via trace" `Quick
          test_cache_hierarchy;
        Alcotest.test_case "baseline engines agree" `Quick
          test_baseline_engines_agree;
        Alcotest.test_case "bulk load then incremental" `Quick
          test_baseline_load;
      ] );
  ]
