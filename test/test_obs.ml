(* Observability layer: metrics registry, span tracer, exporters, and
   their integration with the runtime and the cluster simulator. *)

open Divm_ring
open Divm_storage
open Divm_calc.Calc
open Divm_compiler
open Divm_runtime
module Obs = Divm_obs.Obs
module Workload = Divm_workload.Workload

let i x = Value.Int x
let va = Schema.var "A"
let vb = Schema.var "B"
let vc = Schema.var "C"
let streams_rs = [ ("R", [ va; vb ]); ("S", [ vb; vc ]) ]
let q_join = sum [ vb ] (prod [ rel "R" [ va; vb ]; rel "S" [ vb; vc ] ])
let mk2 l = Gmr.of_list (List.map (fun (a, b, m) -> ([| i a; i b |], m)) l)

let reset_tracer () =
  Obs.set_tracing false;
  Obs.clear_events ()

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go k = k + n <= m && (String.sub s k n = affix || go (k + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Instruments and snapshots                                           *)
(* ------------------------------------------------------------------ *)

let test_counter_gauge_histogram () =
  let c = Obs.Counter.make "test_obs_counter_total" in
  Obs.Counter.reset c;
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Alcotest.(check int) "counter" 42 (Obs.Counter.value c);
  let c' = Obs.Counter.make "test_obs_counter_total" in
  Alcotest.(check int) "re-make returns same instrument" 42
    (Obs.Counter.value c');
  let g = Obs.Gauge.make "test_obs_gauge" in
  Obs.Gauge.set g 2.5;
  Alcotest.(check (float 0.)) "gauge" 2.5 (Obs.Gauge.value g);
  let h = Obs.Histogram.make "test_obs_hist" in
  Obs.Histogram.observe h 0.001;
  Obs.Histogram.observe h 0.01;
  Alcotest.(check int) "hist count" 2 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "hist sum" 0.011 (Obs.Histogram.sum h)

let test_snapshot_diff () =
  let c = Obs.Counter.make "test_obs_diff_total" in
  Obs.Counter.reset c;
  Obs.Counter.add c 5;
  let earlier = Obs.snapshot () in
  Obs.Counter.add c 7;
  let later = Obs.snapshot () in
  Alcotest.(check int) "snapshot sees counter" 12
    (Obs.counter_value later "test_obs_diff_total");
  let d = Obs.diff ~later ~earlier in
  Alcotest.(check int) "diff is the delta" 7
    (Obs.counter_value d "test_obs_diff_total")

let test_exporters_parse () =
  let c = Obs.Counter.make "test_obs_export_total" in
  Obs.Counter.reset c;
  Obs.Counter.add c 3;
  let snap = Obs.snapshot () in
  let text = Obs.to_text snap in
  Alcotest.(check bool) "text has TYPE line" true
    (contains ~affix:"# TYPE test_obs_export_total counter" text);
  Alcotest.(check bool) "text has sample line" true
    (contains ~affix:"test_obs_export_total 3" text);
  (* the JSON exporters emit only controlled characters: brace balance is a
     sufficient well-formedness check without a JSON dependency *)
  let balanced s =
    let depth = ref 0 and ok = ref true and in_str = ref false in
    String.iteri
      (fun k ch ->
        if !in_str then begin
          if ch = '"' && s.[k - 1] <> '\\' then in_str := false
        end
        else
          match ch with
          | '"' -> in_str := true
          | '{' | '[' -> incr depth
          | '}' | ']' ->
              decr depth;
              if !depth < 0 then ok := false
          | _ -> ())
      s;
    !ok && !depth = 0 && not !in_str
  in
  let json = Obs.to_json snap in
  Alcotest.(check bool) "metrics JSON balanced" true (balanced json);
  Alcotest.(check bool) "metrics JSON is an object" true
    (String.length json >= 2 && json.[0] = '{' && json.[String.length json - 1] = '}');
  reset_tracer ();
  Obs.set_tracing true;
  Obs.span "outer" (fun () -> Obs.span "inner" (fun () -> ()));
  let trace = Obs.chrome_trace_json () in
  reset_tracer ();
  Alcotest.(check bool) "chrome trace balanced" true (balanced trace);
  Alcotest.(check bool) "chrome trace has events key" true
    (contains ~affix:"\"traceEvents\"" trace);
  Alcotest.(check bool) "chrome trace has complete events" true
    (contains ~affix:"\"ph\":\"X\"" trace)

let test_percentiles () =
  (* observations 5,15,15,35 into buckets (0,10],(10,20],(20,40],+inf *)
  let buckets = [| 10.; 20.; 40. |] and counts = [| 1; 2; 1; 0 |] in
  let q p = Obs.Histogram.percentile_of ~buckets ~counts ~count:4 p in
  Alcotest.(check (float 1e-9)) "p25 tops out the first bucket" 10. (q 25.);
  Alcotest.(check (float 1e-9)) "p50 interpolates mid-bucket" 15. (q 50.);
  Alcotest.(check (float 1e-9)) "p100 is the max bound hit" 40. (q 100.);
  Alcotest.(check bool) "empty histogram is nan" true
    (Float.is_nan
       (Obs.Histogram.percentile_of ~buckets ~counts:[| 0; 0; 0; 0 |] ~count:0
          50.));
  (* everything in the +inf bucket: report the largest finite bound *)
  Alcotest.(check (float 1e-9)) "+inf bucket clamps to last bound" 40.
    (Obs.Histogram.percentile_of ~buckets ~counts:[| 0; 0; 0; 3 |] ~count:3 99.);
  let h = Obs.Histogram.make ~register:false ~buckets "test_obs_pct" in
  List.iter (Obs.Histogram.observe h) [ 5.; 15.; 15.; 35. ];
  Alcotest.(check (float 1e-9)) "instrument percentile agrees" 15.
    (Obs.Histogram.percentile h 50.);
  (* the JSON exporter reports the same estimates *)
  let h' = Obs.Histogram.make ~buckets "test_obs_pct_reg" in
  List.iter (Obs.Histogram.observe h') [ 5.; 15.; 15.; 35. ];
  let json = Obs.to_json (Obs.snapshot ()) in
  Alcotest.(check bool) "to_json includes p50" true
    (contains ~affix:"\"p50\":" json && contains ~affix:"\"p99\":" json)

let test_diff_bucket_mismatch () =
  let mk buckets counts sum count =
    Obs.VHistogram { buckets; counts; sum; count }
  in
  (* same bounds: per-bucket subtraction *)
  let earlier = [ ("h", mk [| 1.; 2. |] [| 1; 0; 0 |] 0.5 1) ] in
  let later = [ ("h", mk [| 1.; 2. |] [| 2; 1; 0 |] 3.5 3) ] in
  (match Obs.find (Obs.diff ~later ~earlier) "h" with
  | Some (Obs.VHistogram d) ->
      Alcotest.(check (array int)) "bucket deltas" [| 1; 1; 0 |] d.counts;
      Alcotest.(check (float 1e-9)) "sum delta" 3.0 d.sum;
      Alcotest.(check int) "count delta" 2 d.count
  | _ -> Alcotest.fail "histogram missing from diff");
  (* changed bounds: bucket deltas are meaningless — zeroed, sum/count
     still subtracted (the documented fallback, not silent absolutes) *)
  let later' = [ ("h", mk [| 1.; 3. |] [| 2; 1; 0 |] 3.5 3) ] in
  match Obs.find (Obs.diff ~later:later' ~earlier) "h" with
  | Some (Obs.VHistogram d) ->
      Alcotest.(check (array int)) "mismatched buckets zeroed" [| 0; 0; 0 |]
        d.counts;
      Alcotest.(check (float 1e-9)) "sum still subtracted" 3.0 d.sum;
      Alcotest.(check int) "count still subtracted" 2 d.count;
      Alcotest.(check bool) "keeps later's bounds" true
        (d.buckets = [| 1.; 3. |])
  | _ -> Alcotest.fail "histogram missing from mismatched diff"

(* Both exporters carry a p999 estimate, and the JSON sum is printed
   with full 17-digit precision so a remote reconciliation can compare
   it bit-exactly after a parse round-trip. *)
let test_p999_and_sum_precision () =
  let buckets = [| 0.001; 0.01; 0.1; 1.0 |] in
  let h = Obs.Histogram.make ~buckets "test_obs_p999" in
  (* 0.1 + 0.2 is the canonical float whose %.9g rendering is lossy *)
  Obs.Histogram.observe h 0.1;
  Obs.Histogram.observe h 0.2;
  let snap = Obs.snapshot () in
  let text = Obs.to_text snap in
  Alcotest.(check bool) "text exporter reports p999" true
    (contains ~affix:"p999=" text);
  let json = Obs.to_json snap in
  Alcotest.(check bool) "json exporter reports p999" true
    (contains ~affix:"\"p999\":" json)

let test_json_sum_roundtrips_exactly () =
  let h = Obs.Histogram.make ~buckets:[| 1.0 |] "test_obs_sum_exact" in
  Obs.Histogram.observe h 0.1;
  Obs.Histogram.observe h 0.2;
  let want = Obs.Histogram.sum h in
  (* a display rounding would already have collapsed this onto 0.3 *)
  Alcotest.(check bool) "sum is not exactly 0.3" true (want <> 0.3);
  let json = Obs.to_json (Obs.snapshot ()) in
  (* pull the literal back out of the serialized histogram entry *)
  let key = "\"test_obs_sum_exact\":" in
  let at =
    let n = String.length key in
    let rec go k =
      if k + n > String.length json then
        Alcotest.fail "histogram missing from JSON"
      else if String.sub json k n = key then k + n
      else go (k + 1)
    in
    go 0
  in
  let sum_at =
    let tag = "\"sum\":" in
    let n = String.length tag in
    let rec go k =
      if String.sub json k n = tag then k + n else go (k + 1)
    in
    go at
  in
  let fin = ref sum_at in
  while json.[!fin] <> ',' && json.[!fin] <> '}' do
    incr fin
  done;
  let got = float_of_string (String.sub json sum_at (!fin - sum_at)) in
  Alcotest.(check bool)
    (Printf.sprintf "%.17g parses back bit-exactly (got %h, want %h)" want got
       want)
    true
    (Int64.bits_of_float got = Int64.bits_of_float want)

let test_labels_and_ingest () =
  Alcotest.(check string) "labels appended"
    "m{worker=\"2\"}"
    (Obs.with_labels "m" [ ("worker", "2") ]);
  Alcotest.(check string) "labels merged into an existing set"
    "m{a=\"1\",worker=\"2\"}"
    (Obs.with_labels "m{a=\"1\"}" [ ("worker", "2") ]);
  Alcotest.(check string) "label values escaped"
    "m{w=\"x\\\"y\"}"
    (Obs.with_labels "m" [ ("w", "x\"y") ]);
  Alcotest.(check string) "base strips the label set" "m"
    (Obs.base_of "m{worker=\"2\"}");
  (* ingest a worker's delta snapshot twice: counters accumulate, gauges
     overwrite, histograms merge bucket-wise *)
  let delta =
    [
      ("test_obs_ing_total", Obs.VCounter 5);
      ("test_obs_ing_gauge", Obs.VGauge 2.5);
      ( "test_obs_ing_hist",
        Obs.VHistogram
          { buckets = [| 1.0 |]; counts = [| 1; 2 |]; sum = 3.5; count = 3 } );
    ]
  in
  Obs.ingest ~labels:[ ("worker", "0") ] delta;
  Obs.ingest ~labels:[ ("worker", "0") ] delta;
  let snap = Obs.snapshot () in
  (match Obs.find snap "test_obs_ing_total{worker=\"0\"}" with
  | Some (Obs.VCounter c) ->
      Alcotest.(check int) "ingested counters accumulate" 10 c
  | _ -> Alcotest.fail "labeled counter missing after ingest");
  (match Obs.find snap "test_obs_ing_gauge{worker=\"0\"}" with
  | Some (Obs.VGauge g) ->
      Alcotest.(check (float 0.)) "ingested gauge takes last value" 2.5 g
  | _ -> Alcotest.fail "labeled gauge missing after ingest");
  (match Obs.find snap "test_obs_ing_hist{worker=\"0\"}" with
  | Some (Obs.VHistogram h) ->
      Alcotest.(check (array int)) "bucket counts merged" [| 2; 4 |] h.counts;
      Alcotest.(check (float 1e-9)) "sums merged" 7.0 h.sum;
      Alcotest.(check int) "counts merged" 6 h.count
  | _ -> Alcotest.fail "labeled histogram missing after ingest");
  (* the text exporter renders the labeled sample under the family's base
     name, with one shared TYPE line *)
  let text = Obs.to_text snap in
  Alcotest.(check bool) "labeled sample rendered" true
    (contains ~affix:"test_obs_ing_total{worker=\"0\"} 10" text);
  Alcotest.(check bool) "TYPE line uses the base name" true
    (contains ~affix:"# TYPE test_obs_ing_total counter" text)

(* The dependency-free scrape endpoint: bind an ephemeral port, make
   real HTTP requests against it, check routing and content types. *)
let test_http_metrics_endpoint () =
  let c = Obs.Counter.make "test_obs_http_total" in
  Obs.Counter.add c 7;
  let port = Divm_obs_cli.Obs_http.listen 0 in
  Alcotest.(check bool) "kernel picked a real port" true (port > 0);
  let request path =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        Unix.connect fd
          (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        let req = Printf.sprintf "GET %s HTTP/1.1\r\nHost: x\r\n\r\n" path in
        ignore (Unix.write_substring fd req 0 (String.length req));
        let buf = Buffer.create 4096 and chunk = Bytes.create 4096 in
        let rec drain () =
          match Unix.read fd chunk 0 4096 with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              drain ()
        in
        drain ();
        Buffer.contents buf)
  in
  let metrics = request "/metrics" in
  Alcotest.(check bool) "/metrics answers 200" true
    (contains ~affix:"200 OK" metrics);
  Alcotest.(check bool) "/metrics is Prometheus text" true
    (contains ~affix:"# TYPE test_obs_http_total counter" metrics
    && contains ~affix:"test_obs_http_total 7" metrics);
  let json = request "/metrics.json" in
  Alcotest.(check bool) "/metrics.json answers JSON" true
    (contains ~affix:"200 OK" json
    && contains ~affix:"\"test_obs_http_total\":" json);
  Alcotest.(check bool) "unknown path answers 404" true
    (contains ~affix:"404" (request "/nope"));
  (* scrapes are repeatable: the serving thread outlives a request *)
  Obs.Counter.add c 1;
  Alcotest.(check bool) "second scrape sees the update" true
    (contains ~affix:"test_obs_http_total 8" (request "/metrics"))

(* ------------------------------------------------------------------ *)
(* Span tracer                                                         *)
(* ------------------------------------------------------------------ *)

let test_spans_nest_and_balance () =
  reset_tracer ();
  Obs.set_tracing true;
  Obs.span "a" (fun () ->
      Obs.span "b" (fun () -> Obs.set_attr "k" "v");
      Obs.span "c" (fun () -> ()));
  (try Obs.span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Obs.set_tracing false;
  let evs = Obs.events () in
  Alcotest.(check int) "all spans closed" 0 (Obs.open_spans ());
  Alcotest.(check int) "four events" 4 (List.length evs);
  let find n = List.find (fun (e : Obs.event) -> e.ev_name = n) evs in
  Alcotest.(check int) "root depth" 0 (find "a").ev_depth;
  Alcotest.(check int) "child depth" 1 (find "b").ev_depth;
  Alcotest.(check (list (pair string string))) "attrs recorded"
    [ ("k", "v") ]
    (find "b").ev_attrs;
  Alcotest.(check bool) "parent spans child" true
    ((find "a").ev_dur >= (find "b").ev_dur);
  Alcotest.(check int) "exception span still closed" 0
    (find "boom").ev_depth;
  reset_tracer ()

(* A minimal JSON reader — enough to round-trip the Chrome trace exporter's
   output and prove the escaping is real JSON escaping, not just
   quote-balanced text. *)
type json =
  | JNull
  | JBool of bool
  | JNum of float
  | JStr of string
  | JArr of json list
  | JObj of (string * json) list

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos
    else failwith (Printf.sprintf "expected %c at %d" c !pos)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> failwith "unterminated string"
      | Some '"' -> incr pos
      | Some '\\' -> (
          incr pos;
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some '/' -> Buffer.add_char buf '/'
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 'b' -> Buffer.add_char buf '\b'
          | Some 'f' -> Buffer.add_char buf '\012'
          | Some 'u' ->
              let h = String.sub s (!pos + 1) 4 in
              pos := !pos + 4;
              Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ h) land 0xff))
          | _ -> failwith "bad escape");
          incr pos;
          go ())
      | Some c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> JStr (parse_string ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then (incr pos; JObj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                JObj (List.rev ((k, v) :: acc))
            | _ -> failwith "bad object"
          in
          members []
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then (incr pos; JArr [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elems (v :: acc)
            | Some ']' ->
                incr pos;
                JArr (List.rev (v :: acc))
            | _ -> failwith "bad array"
          in
          elems []
    | Some 't' ->
        pos := !pos + 4;
        JBool true
    | Some 'f' ->
        pos := !pos + 5;
        JBool false
    | Some 'n' ->
        pos := !pos + 4;
        JNull
    | Some _ ->
        let start = !pos in
        while
          !pos < n
          && match s.[!pos] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false
        do
          incr pos
        done;
        JNum (float_of_string (String.sub s start (!pos - start)))
    | None -> failwith "eof"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then failwith "trailing garbage";
  v

let test_chrome_trace_escaping_roundtrip () =
  reset_tracer ();
  Obs.set_tracing true;
  let nasty = "he said \"hi\"\nthen\\left\ttab" in
  Obs.span nasty (fun () ->
      Obs.set_attr "note" "line1\nline2 \"quoted\" c:\\path";
      Obs.span "plain" (fun () -> ()));
  Obs.set_tracing false;
  let trace = Obs.chrome_trace_json () in
  reset_tracer ();
  let root = parse_json trace in
  let events =
    match root with
    | JObj kvs -> (
        match List.assoc "traceEvents" kvs with
        | JArr evs -> evs
        | _ -> Alcotest.fail "traceEvents is not an array")
    | _ -> Alcotest.fail "trace is not an object"
  in
  Alcotest.(check int) "both spans exported" 2 (List.length events);
  let name_of = function
    | JObj kvs -> ( match List.assoc "name" kvs with JStr s -> s | _ -> "")
    | _ -> ""
  in
  let ev =
    try List.find (fun e -> name_of e = nasty) events
    with Not_found -> Alcotest.fail "escaped span name did not round-trip"
  in
  (match ev with
  | JObj kvs -> (
      (match List.assoc "args" kvs with
      | JObj args -> (
          match List.assoc "note" args with
          | JStr v ->
              Alcotest.(check string) "attr value round-trips"
                "line1\nline2 \"quoted\" c:\\path" v
          | _ -> Alcotest.fail "note is not a string")
      | _ -> Alcotest.fail "args is not an object");
      match List.assoc "ph" kvs with
      | JStr "X" -> ()
      | _ -> Alcotest.fail "not a complete event")
  | _ -> Alcotest.fail "event is not an object");
  (* the metrics JSON exporter survives the same parser *)
  let c = Obs.Counter.make "test_obs_roundtrip_total" in
  Obs.Counter.incr c;
  match parse_json (Obs.to_json (Obs.snapshot ())) with
  | JObj _ -> ()
  | _ -> Alcotest.fail "metrics JSON is not an object"

(* ------------------------------------------------------------------ *)
(* Runtime integration                                                 *)
(* ------------------------------------------------------------------ *)

let test_runtime_reports_match_registry () =
  let prog = Compile.compile ~streams:streams_rs [ ("Q", q_join) ] in
  let rt = Runtime.create prog in
  let before = Obs.snapshot () in
  let r1 = Runtime.apply_batch rt ~rel:"R" (mk2 [ (1, 10, 1.); (2, 10, 1.) ]) in
  let r2 = Runtime.apply_batch rt ~rel:"S" (mk2 [ (10, 5, 1.) ]) in
  let r3 = Runtime.apply_single rt ~rel:"R" [| i 7; i 10 |] 1. in
  let d = Obs.diff ~later:(Obs.snapshot ()) ~earlier:before in
  (* the per-firing reports are exactly the registry deltas, and both equal
     the runtime's own (deprecated) cumulative counter *)
  Alcotest.(check int) "ops fold into registry"
    (r1.Runtime.ops + r2.Runtime.ops + r3.Runtime.ops)
    (Obs.counter_value d "divm_record_ops_total");
  Alcotest.(check int) "reports equal cumulative Runtime.ops"
    (Runtime.ops rt)
    (r1.Runtime.ops + r2.Runtime.ops + r3.Runtime.ops);
  Alcotest.(check int) "tuples counted" 4
    (Obs.counter_value d "divm_tuples_total");
  Alcotest.(check int) "batches counted" 2
    (Obs.counter_value d "divm_batches_total");
  Alcotest.(check int) "singles counted" 1
    (Obs.counter_value d "divm_single_updates_total");
  Alcotest.(check int) "report tuple counts" 2 r1.Runtime.tuples;
  Alcotest.(check int) "single reports one tuple" 1 r3.Runtime.tuples

let test_runtime_spans () =
  let prog = Compile.compile ~streams:streams_rs [ ("Q", q_join) ] in
  let rt = Runtime.create prog in
  reset_tracer ();
  Obs.set_tracing true;
  let _ = Runtime.apply_batch rt ~rel:"R" (mk2 [ (1, 10, 1.) ]) in
  Obs.set_tracing false;
  let evs = Obs.events () in
  reset_tracer ();
  Alcotest.(check bool) "trigger span present" true
    (List.exists (fun (e : Obs.event) -> e.ev_name = "trigger:R") evs);
  Alcotest.(check bool) "statement spans nested under trigger" true
    (List.exists
       (fun (e : Obs.event) ->
         e.ev_depth = 1
         && String.length e.ev_name > 5
         && (String.sub e.ev_name 0 5 = "stmt:"
            || String.sub e.ev_name 0 9 = "columnar:"))
       evs)

let test_disabled_tracing_identical_results () =
  let prog = Compile.compile ~streams:streams_rs [ ("Q", q_join) ] in
  let batches =
    [
      ("R", mk2 [ (1, 10, 1.); (2, 20, 3.) ]);
      ("S", mk2 [ (10, 5, 1.); (20, 6, -1.) ]);
      ("R", mk2 [ (1, 10, -1.) ]);
    ]
  in
  let run () =
    let rt = Runtime.create prog in
    List.iter (fun (rel, b) -> ignore (Runtime.apply_batch rt ~rel b)) batches;
    Runtime.result rt "Q"
  in
  reset_tracer ();
  let plain = run () in
  Obs.set_tracing true;
  let traced = run () in
  reset_tracer ();
  Alcotest.(check bool) "tracing does not change results" true
    (Gmr.equal plain traced)

(* ------------------------------------------------------------------ *)
(* Cluster integration                                                 *)
(* ------------------------------------------------------------------ *)

let cluster_q3 () =
  let w = Workload.find "Q3" in
  let prog = Workload.compile w in
  let dp = Workload.distribute w prog in
  let c =
    Divm_cluster.Cluster.create
      ~config:(Divm_cluster.Cluster.config ~workers:4 ())
      dp
  in
  let stream =
    Divm_tpch.Gen.stream { Divm_tpch.Gen.scale = 0.05; seed = 7 }
      ~batch_size:300
  in
  (c, stream)

let test_cluster_metrics_view_of_registry () =
  let c, stream = cluster_q3 () in
  let before = Obs.snapshot () in
  let records =
    List.map (fun (rel, b) -> Divm_cluster.Cluster.apply_batch c ~rel b) stream
  in
  let d = Obs.diff ~later:(Obs.snapshot ()) ~earlier:before in
  let sum f = List.fold_left (fun a r -> a + f r) 0 records in
  Alcotest.(check int) "bytes_shuffled totals match"
    (sum (fun r -> r.Divm_cluster.Cluster.bytes_shuffled))
    (Obs.counter_value d "divm_cluster_bytes_shuffled_total");
  Alcotest.(check int) "stage totals match"
    (sum (fun r -> r.Divm_cluster.Cluster.stages))
    (Obs.counter_value d "divm_cluster_stages_total");
  Alcotest.(check int) "driver op totals match"
    (sum (fun r -> r.Divm_cluster.Cluster.driver_ops))
    (Obs.counter_value d "divm_cluster_driver_ops_total");
  Alcotest.(check int) "max-worker-op totals match"
    (sum (fun r -> r.Divm_cluster.Cluster.max_worker_ops))
    (Obs.counter_value d "divm_cluster_max_worker_ops_total");
  Alcotest.(check int) "batch count matches" (List.length records)
    (Obs.counter_value d "divm_cluster_batches_total");
  Alcotest.(check bool) "something was shuffled" true
    (sum (fun r -> r.Divm_cluster.Cluster.bytes_shuffled) > 0)

let test_cluster_spans_sum_to_latency () =
  let c, stream = cluster_q3 () in
  reset_tracer ();
  Obs.set_tracing true;
  let modeled =
    List.fold_left
      (fun acc (rel, b) ->
        acc +. (Divm_cluster.Cluster.apply_batch c ~rel b).Divm_cluster.Cluster.latency)
      0. stream
  in
  Obs.set_tracing false;
  let evs = Obs.events () in
  reset_tracer ();
  let prefixed p (e : Obs.event) =
    String.length e.ev_name >= String.length p
    && String.sub e.ev_name 0 (String.length p) = p
  in
  let span_sum =
    List.fold_left
      (fun acc (e : Obs.event) ->
        if prefixed "stage:" e || prefixed "transfer:" e then
          match List.assoc_opt "modeled_ms" e.ev_attrs with
          | Some ms -> acc +. (float_of_string ms /. 1e3)
          | None -> acc
        else acc)
      0. evs
  in
  Alcotest.(check bool) "trace produced cluster spans" true
    (List.exists (prefixed "cluster:") evs);
  (* modeled_ms attributes are printed with 1e-6 ms precision; allow that
     rounding times the number of spans *)
  Alcotest.(check bool)
    (Printf.sprintf "stage+transfer spans (%g s) sum to modeled latency (%g s)"
       span_sum modeled)
    true
    (Float.abs (span_sum -. modeled) < 1e-6 *. float_of_int (List.length evs))

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "instruments" `Quick test_counter_gauge_histogram;
        Alcotest.test_case "snapshot / diff" `Quick test_snapshot_diff;
        Alcotest.test_case "exporters parse" `Quick test_exporters_parse;
        Alcotest.test_case "percentiles" `Quick test_percentiles;
        Alcotest.test_case "diff: histogram bucket mismatch" `Quick
          test_diff_bucket_mismatch;
        Alcotest.test_case "exporters report p999" `Quick
          test_p999_and_sum_precision;
        Alcotest.test_case "JSON sum round-trips bit-exactly" `Quick
          test_json_sum_roundtrips_exactly;
        Alcotest.test_case "labels and cross-process ingest" `Quick
          test_labels_and_ingest;
        Alcotest.test_case "live /metrics endpoint" `Quick
          test_http_metrics_endpoint;
        Alcotest.test_case "spans nest and balance" `Quick
          test_spans_nest_and_balance;
        Alcotest.test_case "chrome trace escaping round-trips" `Quick
          test_chrome_trace_escaping_roundtrip;
        Alcotest.test_case "runtime reports = registry deltas" `Quick
          test_runtime_reports_match_registry;
        Alcotest.test_case "runtime trigger spans" `Quick test_runtime_spans;
        Alcotest.test_case "disabled tracing, identical results" `Quick
          test_disabled_tracing_identical_results;
        Alcotest.test_case "cluster metrics are registry views" `Quick
          test_cluster_metrics_view_of_registry;
        Alcotest.test_case "cluster spans sum to modeled latency" `Quick
          test_cluster_spans_sum_to_latency;
      ] );
  ]
