(* Observability layer: metrics registry, span tracer, exporters, and
   their integration with the runtime and the cluster simulator. *)

open Divm_ring
open Divm_storage
open Divm_calc.Calc
open Divm_compiler
open Divm_runtime
module Obs = Divm_obs.Obs
module Workload = Divm_workload.Workload

let i x = Value.Int x
let va = Schema.var "A"
let vb = Schema.var "B"
let vc = Schema.var "C"
let streams_rs = [ ("R", [ va; vb ]); ("S", [ vb; vc ]) ]
let q_join = sum [ vb ] (prod [ rel "R" [ va; vb ]; rel "S" [ vb; vc ] ])
let mk2 l = Gmr.of_list (List.map (fun (a, b, m) -> ([| i a; i b |], m)) l)

let reset_tracer () =
  Obs.set_tracing false;
  Obs.clear_events ()

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go k = k + n <= m && (String.sub s k n = affix || go (k + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Instruments and snapshots                                           *)
(* ------------------------------------------------------------------ *)

let test_counter_gauge_histogram () =
  let c = Obs.Counter.make "test_obs_counter_total" in
  Obs.Counter.reset c;
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Alcotest.(check int) "counter" 42 (Obs.Counter.value c);
  let c' = Obs.Counter.make "test_obs_counter_total" in
  Alcotest.(check int) "re-make returns same instrument" 42
    (Obs.Counter.value c');
  let g = Obs.Gauge.make "test_obs_gauge" in
  Obs.Gauge.set g 2.5;
  Alcotest.(check (float 0.)) "gauge" 2.5 (Obs.Gauge.value g);
  let h = Obs.Histogram.make "test_obs_hist" in
  Obs.Histogram.observe h 0.001;
  Obs.Histogram.observe h 0.01;
  Alcotest.(check int) "hist count" 2 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-9)) "hist sum" 0.011 (Obs.Histogram.sum h)

let test_snapshot_diff () =
  let c = Obs.Counter.make "test_obs_diff_total" in
  Obs.Counter.reset c;
  Obs.Counter.add c 5;
  let earlier = Obs.snapshot () in
  Obs.Counter.add c 7;
  let later = Obs.snapshot () in
  Alcotest.(check int) "snapshot sees counter" 12
    (Obs.counter_value later "test_obs_diff_total");
  let d = Obs.diff ~later ~earlier in
  Alcotest.(check int) "diff is the delta" 7
    (Obs.counter_value d "test_obs_diff_total")

let test_exporters_parse () =
  let c = Obs.Counter.make "test_obs_export_total" in
  Obs.Counter.reset c;
  Obs.Counter.add c 3;
  let snap = Obs.snapshot () in
  let text = Obs.to_text snap in
  Alcotest.(check bool) "text has TYPE line" true
    (contains ~affix:"# TYPE test_obs_export_total counter" text);
  Alcotest.(check bool) "text has sample line" true
    (contains ~affix:"test_obs_export_total 3" text);
  (* the JSON exporters emit only controlled characters: brace balance is a
     sufficient well-formedness check without a JSON dependency *)
  let balanced s =
    let depth = ref 0 and ok = ref true and in_str = ref false in
    String.iteri
      (fun k ch ->
        if !in_str then begin
          if ch = '"' && s.[k - 1] <> '\\' then in_str := false
        end
        else
          match ch with
          | '"' -> in_str := true
          | '{' | '[' -> incr depth
          | '}' | ']' ->
              decr depth;
              if !depth < 0 then ok := false
          | _ -> ())
      s;
    !ok && !depth = 0 && not !in_str
  in
  let json = Obs.to_json snap in
  Alcotest.(check bool) "metrics JSON balanced" true (balanced json);
  Alcotest.(check bool) "metrics JSON is an object" true
    (String.length json >= 2 && json.[0] = '{' && json.[String.length json - 1] = '}');
  reset_tracer ();
  Obs.set_tracing true;
  Obs.span "outer" (fun () -> Obs.span "inner" (fun () -> ()));
  let trace = Obs.chrome_trace_json () in
  reset_tracer ();
  Alcotest.(check bool) "chrome trace balanced" true (balanced trace);
  Alcotest.(check bool) "chrome trace has events key" true
    (contains ~affix:"\"traceEvents\"" trace);
  Alcotest.(check bool) "chrome trace has complete events" true
    (contains ~affix:"\"ph\":\"X\"" trace)

let test_percentiles () =
  (* observations 5,15,15,35 into buckets (0,10],(10,20],(20,40],+inf *)
  let buckets = [| 10.; 20.; 40. |] and counts = [| 1; 2; 1; 0 |] in
  let q p = Obs.Histogram.percentile_of ~buckets ~counts ~count:4 p in
  Alcotest.(check (float 1e-9)) "p25 tops out the first bucket" 10. (q 25.);
  Alcotest.(check (float 1e-9)) "p50 interpolates mid-bucket" 15. (q 50.);
  Alcotest.(check (float 1e-9)) "p100 is the max bound hit" 40. (q 100.);
  Alcotest.(check bool) "empty histogram is nan" true
    (Float.is_nan
       (Obs.Histogram.percentile_of ~buckets ~counts:[| 0; 0; 0; 0 |] ~count:0
          50.));
  (* everything in the +inf bucket: report the largest finite bound *)
  Alcotest.(check (float 1e-9)) "+inf bucket clamps to last bound" 40.
    (Obs.Histogram.percentile_of ~buckets ~counts:[| 0; 0; 0; 3 |] ~count:3 99.);
  let h = Obs.Histogram.make ~register:false ~buckets "test_obs_pct" in
  List.iter (Obs.Histogram.observe h) [ 5.; 15.; 15.; 35. ];
  Alcotest.(check (float 1e-9)) "instrument percentile agrees" 15.
    (Obs.Histogram.percentile h 50.);
  (* the JSON exporter reports the same estimates *)
  let h' = Obs.Histogram.make ~buckets "test_obs_pct_reg" in
  List.iter (Obs.Histogram.observe h') [ 5.; 15.; 15.; 35. ];
  let json = Obs.to_json (Obs.snapshot ()) in
  Alcotest.(check bool) "to_json includes p50" true
    (contains ~affix:"\"p50\":" json && contains ~affix:"\"p99\":" json)

let test_diff_bucket_mismatch () =
  let mk buckets counts sum count =
    Obs.VHistogram { buckets; counts; sum; count }
  in
  (* same bounds: per-bucket subtraction *)
  let earlier = [ ("h", mk [| 1.; 2. |] [| 1; 0; 0 |] 0.5 1) ] in
  let later = [ ("h", mk [| 1.; 2. |] [| 2; 1; 0 |] 3.5 3) ] in
  (match Obs.find (Obs.diff ~later ~earlier) "h" with
  | Some (Obs.VHistogram d) ->
      Alcotest.(check (array int)) "bucket deltas" [| 1; 1; 0 |] d.counts;
      Alcotest.(check (float 1e-9)) "sum delta" 3.0 d.sum;
      Alcotest.(check int) "count delta" 2 d.count
  | _ -> Alcotest.fail "histogram missing from diff");
  (* changed bounds: bucket deltas are meaningless — zeroed, sum/count
     still subtracted (the documented fallback, not silent absolutes) *)
  let later' = [ ("h", mk [| 1.; 3. |] [| 2; 1; 0 |] 3.5 3) ] in
  match Obs.find (Obs.diff ~later:later' ~earlier) "h" with
  | Some (Obs.VHistogram d) ->
      Alcotest.(check (array int)) "mismatched buckets zeroed" [| 0; 0; 0 |]
        d.counts;
      Alcotest.(check (float 1e-9)) "sum still subtracted" 3.0 d.sum;
      Alcotest.(check int) "count still subtracted" 2 d.count;
      Alcotest.(check bool) "keeps later's bounds" true
        (d.buckets = [| 1.; 3. |])
  | _ -> Alcotest.fail "histogram missing from mismatched diff"

(* ------------------------------------------------------------------ *)
(* Span tracer                                                         *)
(* ------------------------------------------------------------------ *)

let test_spans_nest_and_balance () =
  reset_tracer ();
  Obs.set_tracing true;
  Obs.span "a" (fun () ->
      Obs.span "b" (fun () -> Obs.set_attr "k" "v");
      Obs.span "c" (fun () -> ()));
  (try Obs.span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Obs.set_tracing false;
  let evs = Obs.events () in
  Alcotest.(check int) "all spans closed" 0 (Obs.open_spans ());
  Alcotest.(check int) "four events" 4 (List.length evs);
  let find n = List.find (fun (e : Obs.event) -> e.ev_name = n) evs in
  Alcotest.(check int) "root depth" 0 (find "a").ev_depth;
  Alcotest.(check int) "child depth" 1 (find "b").ev_depth;
  Alcotest.(check (list (pair string string))) "attrs recorded"
    [ ("k", "v") ]
    (find "b").ev_attrs;
  Alcotest.(check bool) "parent spans child" true
    ((find "a").ev_dur >= (find "b").ev_dur);
  Alcotest.(check int) "exception span still closed" 0
    (find "boom").ev_depth;
  reset_tracer ()

(* A minimal JSON reader — enough to round-trip the Chrome trace exporter's
   output and prove the escaping is real JSON escaping, not just
   quote-balanced text. *)
type json =
  | JNull
  | JBool of bool
  | JNum of float
  | JStr of string
  | JArr of json list
  | JObj of (string * json) list

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos
    else failwith (Printf.sprintf "expected %c at %d" c !pos)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> failwith "unterminated string"
      | Some '"' -> incr pos
      | Some '\\' -> (
          incr pos;
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some '/' -> Buffer.add_char buf '/'
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 'b' -> Buffer.add_char buf '\b'
          | Some 'f' -> Buffer.add_char buf '\012'
          | Some 'u' ->
              let h = String.sub s (!pos + 1) 4 in
              pos := !pos + 4;
              Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ h) land 0xff))
          | _ -> failwith "bad escape");
          incr pos;
          go ())
      | Some c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> JStr (parse_string ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then (incr pos; JObj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                JObj (List.rev ((k, v) :: acc))
            | _ -> failwith "bad object"
          in
          members []
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then (incr pos; JArr [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elems (v :: acc)
            | Some ']' ->
                incr pos;
                JArr (List.rev (v :: acc))
            | _ -> failwith "bad array"
          in
          elems []
    | Some 't' ->
        pos := !pos + 4;
        JBool true
    | Some 'f' ->
        pos := !pos + 5;
        JBool false
    | Some 'n' ->
        pos := !pos + 4;
        JNull
    | Some _ ->
        let start = !pos in
        while
          !pos < n
          && match s.[!pos] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false
        do
          incr pos
        done;
        JNum (float_of_string (String.sub s start (!pos - start)))
    | None -> failwith "eof"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then failwith "trailing garbage";
  v

let test_chrome_trace_escaping_roundtrip () =
  reset_tracer ();
  Obs.set_tracing true;
  let nasty = "he said \"hi\"\nthen\\left\ttab" in
  Obs.span nasty (fun () ->
      Obs.set_attr "note" "line1\nline2 \"quoted\" c:\\path";
      Obs.span "plain" (fun () -> ()));
  Obs.set_tracing false;
  let trace = Obs.chrome_trace_json () in
  reset_tracer ();
  let root = parse_json trace in
  let events =
    match root with
    | JObj kvs -> (
        match List.assoc "traceEvents" kvs with
        | JArr evs -> evs
        | _ -> Alcotest.fail "traceEvents is not an array")
    | _ -> Alcotest.fail "trace is not an object"
  in
  Alcotest.(check int) "both spans exported" 2 (List.length events);
  let name_of = function
    | JObj kvs -> ( match List.assoc "name" kvs with JStr s -> s | _ -> "")
    | _ -> ""
  in
  let ev =
    try List.find (fun e -> name_of e = nasty) events
    with Not_found -> Alcotest.fail "escaped span name did not round-trip"
  in
  (match ev with
  | JObj kvs -> (
      (match List.assoc "args" kvs with
      | JObj args -> (
          match List.assoc "note" args with
          | JStr v ->
              Alcotest.(check string) "attr value round-trips"
                "line1\nline2 \"quoted\" c:\\path" v
          | _ -> Alcotest.fail "note is not a string")
      | _ -> Alcotest.fail "args is not an object");
      match List.assoc "ph" kvs with
      | JStr "X" -> ()
      | _ -> Alcotest.fail "not a complete event")
  | _ -> Alcotest.fail "event is not an object");
  (* the metrics JSON exporter survives the same parser *)
  let c = Obs.Counter.make "test_obs_roundtrip_total" in
  Obs.Counter.incr c;
  match parse_json (Obs.to_json (Obs.snapshot ())) with
  | JObj _ -> ()
  | _ -> Alcotest.fail "metrics JSON is not an object"

(* ------------------------------------------------------------------ *)
(* Runtime integration                                                 *)
(* ------------------------------------------------------------------ *)

let test_runtime_reports_match_registry () =
  let prog = Compile.compile ~streams:streams_rs [ ("Q", q_join) ] in
  let rt = Runtime.create prog in
  let before = Obs.snapshot () in
  let r1 = Runtime.apply_batch rt ~rel:"R" (mk2 [ (1, 10, 1.); (2, 10, 1.) ]) in
  let r2 = Runtime.apply_batch rt ~rel:"S" (mk2 [ (10, 5, 1.) ]) in
  let r3 = Runtime.apply_single rt ~rel:"R" [| i 7; i 10 |] 1. in
  let d = Obs.diff ~later:(Obs.snapshot ()) ~earlier:before in
  (* the per-firing reports are exactly the registry deltas, and both equal
     the runtime's own (deprecated) cumulative counter *)
  Alcotest.(check int) "ops fold into registry"
    (r1.Runtime.ops + r2.Runtime.ops + r3.Runtime.ops)
    (Obs.counter_value d "divm_record_ops_total");
  Alcotest.(check int) "reports equal cumulative Runtime.ops"
    (Runtime.ops rt)
    (r1.Runtime.ops + r2.Runtime.ops + r3.Runtime.ops);
  Alcotest.(check int) "tuples counted" 4
    (Obs.counter_value d "divm_tuples_total");
  Alcotest.(check int) "batches counted" 2
    (Obs.counter_value d "divm_batches_total");
  Alcotest.(check int) "singles counted" 1
    (Obs.counter_value d "divm_single_updates_total");
  Alcotest.(check int) "report tuple counts" 2 r1.Runtime.tuples;
  Alcotest.(check int) "single reports one tuple" 1 r3.Runtime.tuples

let test_runtime_spans () =
  let prog = Compile.compile ~streams:streams_rs [ ("Q", q_join) ] in
  let rt = Runtime.create prog in
  reset_tracer ();
  Obs.set_tracing true;
  let _ = Runtime.apply_batch rt ~rel:"R" (mk2 [ (1, 10, 1.) ]) in
  Obs.set_tracing false;
  let evs = Obs.events () in
  reset_tracer ();
  Alcotest.(check bool) "trigger span present" true
    (List.exists (fun (e : Obs.event) -> e.ev_name = "trigger:R") evs);
  Alcotest.(check bool) "statement spans nested under trigger" true
    (List.exists
       (fun (e : Obs.event) ->
         e.ev_depth = 1
         && String.length e.ev_name > 5
         && (String.sub e.ev_name 0 5 = "stmt:"
            || String.sub e.ev_name 0 9 = "columnar:"))
       evs)

let test_disabled_tracing_identical_results () =
  let prog = Compile.compile ~streams:streams_rs [ ("Q", q_join) ] in
  let batches =
    [
      ("R", mk2 [ (1, 10, 1.); (2, 20, 3.) ]);
      ("S", mk2 [ (10, 5, 1.); (20, 6, -1.) ]);
      ("R", mk2 [ (1, 10, -1.) ]);
    ]
  in
  let run () =
    let rt = Runtime.create prog in
    List.iter (fun (rel, b) -> ignore (Runtime.apply_batch rt ~rel b)) batches;
    Runtime.result rt "Q"
  in
  reset_tracer ();
  let plain = run () in
  Obs.set_tracing true;
  let traced = run () in
  reset_tracer ();
  Alcotest.(check bool) "tracing does not change results" true
    (Gmr.equal plain traced)

(* ------------------------------------------------------------------ *)
(* Cluster integration                                                 *)
(* ------------------------------------------------------------------ *)

let cluster_q3 () =
  let w = Workload.find "Q3" in
  let prog = Workload.compile w in
  let dp = Workload.distribute w prog in
  let c =
    Divm_cluster.Cluster.create
      ~config:(Divm_cluster.Cluster.config ~workers:4 ())
      dp
  in
  let stream =
    Divm_tpch.Gen.stream { Divm_tpch.Gen.scale = 0.05; seed = 7 }
      ~batch_size:300
  in
  (c, stream)

let test_cluster_metrics_view_of_registry () =
  let c, stream = cluster_q3 () in
  let before = Obs.snapshot () in
  let records =
    List.map (fun (rel, b) -> Divm_cluster.Cluster.apply_batch c ~rel b) stream
  in
  let d = Obs.diff ~later:(Obs.snapshot ()) ~earlier:before in
  let sum f = List.fold_left (fun a r -> a + f r) 0 records in
  Alcotest.(check int) "bytes_shuffled totals match"
    (sum (fun r -> r.Divm_cluster.Cluster.bytes_shuffled))
    (Obs.counter_value d "divm_cluster_bytes_shuffled_total");
  Alcotest.(check int) "stage totals match"
    (sum (fun r -> r.Divm_cluster.Cluster.stages))
    (Obs.counter_value d "divm_cluster_stages_total");
  Alcotest.(check int) "driver op totals match"
    (sum (fun r -> r.Divm_cluster.Cluster.driver_ops))
    (Obs.counter_value d "divm_cluster_driver_ops_total");
  Alcotest.(check int) "max-worker-op totals match"
    (sum (fun r -> r.Divm_cluster.Cluster.max_worker_ops))
    (Obs.counter_value d "divm_cluster_max_worker_ops_total");
  Alcotest.(check int) "batch count matches" (List.length records)
    (Obs.counter_value d "divm_cluster_batches_total");
  Alcotest.(check bool) "something was shuffled" true
    (sum (fun r -> r.Divm_cluster.Cluster.bytes_shuffled) > 0)

let test_cluster_spans_sum_to_latency () =
  let c, stream = cluster_q3 () in
  reset_tracer ();
  Obs.set_tracing true;
  let modeled =
    List.fold_left
      (fun acc (rel, b) ->
        acc +. (Divm_cluster.Cluster.apply_batch c ~rel b).Divm_cluster.Cluster.latency)
      0. stream
  in
  Obs.set_tracing false;
  let evs = Obs.events () in
  reset_tracer ();
  let prefixed p (e : Obs.event) =
    String.length e.ev_name >= String.length p
    && String.sub e.ev_name 0 (String.length p) = p
  in
  let span_sum =
    List.fold_left
      (fun acc (e : Obs.event) ->
        if prefixed "stage:" e || prefixed "transfer:" e then
          match List.assoc_opt "modeled_ms" e.ev_attrs with
          | Some ms -> acc +. (float_of_string ms /. 1e3)
          | None -> acc
        else acc)
      0. evs
  in
  Alcotest.(check bool) "trace produced cluster spans" true
    (List.exists (prefixed "cluster:") evs);
  (* modeled_ms attributes are printed with 1e-6 ms precision; allow that
     rounding times the number of spans *)
  Alcotest.(check bool)
    (Printf.sprintf "stage+transfer spans (%g s) sum to modeled latency (%g s)"
       span_sum modeled)
    true
    (Float.abs (span_sum -. modeled) < 1e-6 *. float_of_int (List.length evs))

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "instruments" `Quick test_counter_gauge_histogram;
        Alcotest.test_case "snapshot / diff" `Quick test_snapshot_diff;
        Alcotest.test_case "exporters parse" `Quick test_exporters_parse;
        Alcotest.test_case "percentiles" `Quick test_percentiles;
        Alcotest.test_case "diff: histogram bucket mismatch" `Quick
          test_diff_bucket_mismatch;
        Alcotest.test_case "spans nest and balance" `Quick
          test_spans_nest_and_balance;
        Alcotest.test_case "chrome trace escaping round-trips" `Quick
          test_chrome_trace_escaping_roundtrip;
        Alcotest.test_case "runtime reports = registry deltas" `Quick
          test_runtime_reports_match_registry;
        Alcotest.test_case "runtime trigger spans" `Quick test_runtime_spans;
        Alcotest.test_case "disabled tracing, identical results" `Quick
          test_disabled_tracing_identical_results;
        Alcotest.test_case "cluster metrics are registry views" `Quick
          test_cluster_metrics_view_of_registry;
        Alcotest.test_case "cluster spans sum to modeled latency" `Quick
          test_cluster_spans_sum_to_latency;
      ] );
  ]
