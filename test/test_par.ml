(* Multicore layer: the Par pool contract, the Obs counter/gauge
   memory-ordering contract hammered from real domains, and the cluster
   simulator's cost-model determinism at any domain count. *)
open Divm_ring
open Divm_storage
open Divm_calc.Calc
open Divm_compiler
open Divm_dist
open Divm_runtime
open Divm_cluster
module Obs = Divm_obs.Obs
module Par = Divm_par.Par

(* ------------------------------------------------------------------ *)
(* Obs domain safety                                                   *)
(* ------------------------------------------------------------------ *)

let test_counter_hammer () =
  (* 4 domains x 250k unsynchronized increments: striped shards must lose
     nothing, and Domain.join is the happens-before point that makes
     [value] exact. *)
  let c = Obs.Counter.make ~register:false "par_test_hammer" in
  let per = 250_000 and d = 4 in
  let doms =
    Array.init d (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              Obs.Counter.incr c
            done))
  in
  Array.iter Domain.join doms;
  Alcotest.(check int) "no lost updates" (per * d) (Obs.Counter.value c);
  Obs.Counter.reset c;
  Alcotest.(check int) "reset" 0 (Obs.Counter.value c);
  (* mixed incr/add from fresh domains after a reset *)
  let doms =
    Array.init d (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 1_000 do
              Obs.Counter.add c 3
            done))
  in
  Array.iter Domain.join doms;
  Alcotest.(check int) "add after reset" (3_000 * d) (Obs.Counter.value c)

let test_gauge_domains () =
  let g = Obs.Gauge.make ~register:false "par_test_gauge" in
  let doms =
    Array.init 4 (fun i ->
        Domain.spawn (fun () -> Obs.Gauge.set g (float_of_int i)))
  in
  Array.iter Domain.join doms;
  let v = Obs.Gauge.value g in
  Alcotest.(check bool) "last-writer value" true (v >= 0. && v <= 3.)

(* ------------------------------------------------------------------ *)
(* Par pool                                                            *)
(* ------------------------------------------------------------------ *)

let test_pool_runs_all () =
  let pl = Par.get ~domains:4 in
  let n = 64 in
  let hit = Array.make n 0 in
  Par.Pool.run pl (Array.init n (fun i () -> hit.(i) <- hit.(i) + 1));
  Alcotest.(check (array int)) "each task exactly once" (Array.make n 1) hit

let test_pool_reuse () =
  (* back-to-back runs on the shared pool, like a batch stream *)
  let pl = Par.get ~domains:2 in
  let acc = ref 0 in
  for _ = 1 to 50 do
    let part = Array.make 8 0 in
    Par.Pool.run pl (Array.init 8 (fun i () -> part.(i) <- i));
    acc := !acc + Array.fold_left ( + ) 0 part
  done;
  Alcotest.(check int) "50 barriers" (50 * 28) !acc

let test_pool_exception () =
  let pl = Par.get ~domains:2 in
  let ran = Array.make 4 false in
  (match
     Par.Pool.run pl
       (Array.init 4 (fun i () ->
            ran.(i) <- true;
            if i = 2 then failwith "task boom"))
   with
  | () -> Alcotest.fail "expected exception"
  | exception Failure m -> Alcotest.(check string) "re-raised" "task boom" m);
  (* the barrier still completed: every task ran, and the pool survives *)
  Alcotest.(check (array bool)) "all tasks ran" (Array.make 4 true) ran;
  let ok = Array.make 3 false in
  Par.Pool.run pl (Array.init 3 (fun i () -> ok.(i) <- true));
  Alcotest.(check (array bool)) "pool usable after" (Array.make 3 true) ok

let test_pool_growth () =
  let pl = Par.get ~domains:2 in
  let pl' = Par.get ~domains:3 in
  Alcotest.(check bool) "shared pool instance" true (pl == pl');
  Alcotest.(check bool) "grown to max requested" true (Par.Pool.domains pl >= 3)

(* ------------------------------------------------------------------ *)
(* Cluster cost-model determinism                                      *)
(* ------------------------------------------------------------------ *)

let i x = Value.Int x
let va = Schema.var "A"
let vb = Schema.var "B"
let vc = Schema.var "C"
let vd = Schema.var "D"
let streams_rst = [ ("R", [ va; vb ]); ("S", [ vb; vc ]); ("T", [ vc; vd ]) ]

let q_running =
  sum [ vb ]
    (prod [ rel "R" [ va; vb ]; rel "S" [ vb; vc ]; rel "T" [ vc; vd ] ])

let mk2 l =
  Gmr.of_list (List.map (fun (a, b, m) -> ([| i a; i b |], m)) l)

let batches_running =
  [
    ("R", mk2 [ (1, 10, 1.); (2, 10, 1.); (4, 30, 1.) ]);
    ("S", mk2 [ (10, 100, 1.); (20, 200, 2.); (30, 100, 1.) ]);
    ("T", mk2 [ (100, 7, 1.); (200, 8, 1.) ]);
    ("R", mk2 [ (3, 20, 2.); (1, 10, -1.) ]);
    ("S", mk2 [ (20, 100, 1.); (10, 100, -1.) ]);
    ("T", mk2 [ (100, 9, 3.); (200, 8, -1.) ]);
  ]

let bits = Int64.bits_of_float

let test_cluster_determinism () =
  (* Same distributed program, same batches, 1 vs 4 execution domains:
     the modeled cost must be bit-identical per batch (the model is a
     serial reduction over per-worker op counts), and the final state
     equal. *)
  let prog = Compile.compile ~streams:streams_rst [ ("Q", q_running) ] in
  let catalog = Loc.heuristic ~keys:[ "B"; "C" ] prog in
  let dp =
    Distribute.compile
      ~options:{ Distribute.level = 3; delta_at = `Workers }
      ~catalog prog
  in
  let mk d = Cluster.create ~config:(Cluster.config ~workers:5 ()) ~domains:d dp in
  let c1 = mk 1 and c4 = mk 4 in
  List.iter
    (fun (rel, b) ->
      let m1 = Cluster.apply_batch c1 ~rel (Gmr.copy b) in
      let m4 = Cluster.apply_batch c4 ~rel (Gmr.copy b) in
      Alcotest.(check int64)
        "modeled latency bit-identical" (bits m1.Cluster.latency)
        (bits m4.Cluster.latency);
      Alcotest.(check int) "stages" m1.Cluster.stages m4.Cluster.stages;
      Alcotest.(check int) "bytes shuffled" m1.Cluster.bytes_shuffled
        m4.Cluster.bytes_shuffled;
      Alcotest.(check int) "max worker ops" m1.Cluster.max_worker_ops
        m4.Cluster.max_worker_ops;
      Alcotest.(check int) "driver ops" m1.Cluster.driver_ops
        m4.Cluster.driver_ops)
    batches_running;
  Alcotest.(check bool) "results equal" true
    (Gmr.equal (Cluster.result c1 "Q") (Cluster.result c4 "Q"))

let test_runtime_domains_accessor () =
  let prog = Compile.compile ~streams:streams_rst [ ("Q", q_running) ] in
  let rt = Runtime.create ~domains:3 prog in
  Alcotest.(check int) "domains recorded" 3 (Runtime.domains rt);
  let rt1 = Runtime.create ~domains:1 prog in
  Alcotest.(check int) "serial" 1 (Runtime.domains rt1)

let suites =
  [
    ( "par",
      [
        Alcotest.test_case "counter hammer (4 domains)" `Quick
          test_counter_hammer;
        Alcotest.test_case "gauge across domains" `Quick test_gauge_domains;
        Alcotest.test_case "pool runs every task" `Quick test_pool_runs_all;
        Alcotest.test_case "pool barrier reuse" `Quick test_pool_reuse;
        Alcotest.test_case "pool exception propagation" `Quick
          test_pool_exception;
        Alcotest.test_case "shared pool growth" `Quick test_pool_growth;
        Alcotest.test_case "cluster cost model deterministic" `Quick
          test_cluster_determinism;
        Alcotest.test_case "runtime domains accessor" `Quick
          test_runtime_domains_accessor;
      ] );
  ]
