(* Fault tolerance (checkpoint / worker failure / recovery) and the dbgen
   .tbl loader. *)

open Divm_ring
open Divm_storage
open Divm_compiler
open Divm_dist
open Divm_cluster

let i x = Value.Int x
let va = Schema.var "A"
let vb = Schema.var "B"
let vc = Schema.var "C"

let streams = [ ("R", [ va; vb ]); ("S", [ vb; vc ]) ]

let q =
  Divm_calc.Calc.(sum [ vb ] (prod [ rel "R" [ va; vb ]; rel "S" [ vb; vc ] ]))

let mk2 l = Gmr.of_list (List.map (fun (a, b, m) -> ([| i a; i b |], m)) l)

let batches =
  [
    ("R", mk2 [ (1, 10, 1.); (2, 20, 1.) ]);
    ("S", mk2 [ (10, 5, 2.); (20, 7, 1.) ]);
    ("R", mk2 [ (3, 10, 2.); (1, 10, -1.) ]);
    ("S", mk2 [ (10, 6, 1.); (30, 9, 1.) ]);
  ]

let mk_cluster () =
  let prog = Compile.compile ~streams [ ("Q", q) ] in
  let catalog = Loc.heuristic ~keys:[ "B" ] prog in
  let dp = Distribute.compile ~catalog prog in
  Cluster.create ~config:(Cluster.config ~workers:3 ()) dp

let test_checkpoint_restore () =
  let c = mk_cluster () in
  List.iteri
    (fun k (r, b) -> if k < 2 then ignore (Cluster.apply_batch c ~rel:r b))
    batches;
  let snap, lat = Cluster.checkpoint c in
  Alcotest.(check bool) "checkpoint has latency cost" true (lat > 0.);
  Alcotest.(check bool) "snapshot non-empty" true
    (Cluster.Checkpoint.byte_size snap > 0);
  let at_ckpt = Cluster.result c "Q" in
  (* keep processing, then roll back *)
  List.iteri
    (fun k (r, b) -> if k >= 2 then ignore (Cluster.apply_batch c ~rel:r b))
    batches;
  Alcotest.(check bool) "state moved on" false
    (Gmr.equal at_ckpt (Cluster.result c "Q"));
  Cluster.restore c snap;
  Alcotest.(check bool) "restored to checkpoint" true
    (Gmr.equal at_ckpt (Cluster.result c "Q"))

let test_failure_recovery_replay () =
  (* Reference run without failure. *)
  let ref_c = mk_cluster () in
  List.iter (fun (r, b) -> ignore (Cluster.apply_batch ref_c ~rel:r b)) batches;
  let expected = Cluster.result ref_c "Q" in
  (* Run with a checkpoint after batch 2, a crash during batch 3, recovery
     and replay of the missed suffix. *)
  let c = mk_cluster () in
  List.iteri
    (fun k (r, b) -> if k < 2 then ignore (Cluster.apply_batch c ~rel:r b))
    batches;
  let snap, _ = Cluster.checkpoint c in
  ignore (Cluster.apply_batch c ~rel:"R" (mk2 [ (3, 10, 2.); (1, 10, -1.) ]));
  Cluster.fail_worker c 1;
  (* after the crash the state is damaged *)
  Cluster.restore c snap;
  List.iteri
    (fun k (r, b) -> if k >= 2 then ignore (Cluster.apply_batch c ~rel:r b))
    batches;
  Alcotest.(check bool) "recovered run matches failure-free run" true
    (Gmr.equal expected (Cluster.result c "Q"))

let test_checkpoint_file_roundtrip () =
  let c = mk_cluster () in
  List.iter (fun (r, b) -> ignore (Cluster.apply_batch c ~rel:r b)) batches;
  let snap, _ = Cluster.checkpoint c in
  let path = Filename.temp_file "divm_ckpt" ".bin" in
  Cluster.Checkpoint.save_file snap path;
  let snap' = Cluster.Checkpoint.load_file path in
  Sys.remove path;
  Alcotest.(check int) "same serialized size"
    (Cluster.Checkpoint.byte_size snap)
    (Cluster.Checkpoint.byte_size snap');
  let before = Cluster.result c "Q" in
  Cluster.fail_worker c 0;
  Cluster.fail_worker c 2;
  Cluster.restore c snap';
  Alcotest.(check bool) "restore from file" true
    (Gmr.equal before (Cluster.result c "Q"))

(* ------------------------------------------------------------------ *)
(* dbgen .tbl loader                                                   *)
(* ------------------------------------------------------------------ *)

let test_tbl_parse () =
  let t =
    Divm_tpch.Load.parse_line "orders"
      "17|55|O|128786.57|1995-10-11|3-MEDIUM|Clerk#000000333|0|quickly final \
       requests|"
  in
  Alcotest.(check bool) "okey" true (Value.equal t.(0) (i 17));
  Alcotest.(check bool) "ckey" true (Value.equal t.(1) (i 55));
  Alcotest.(check bool) "status" true (Value.equal t.(2) (Value.String "O"));
  Alcotest.(check bool) "date" true
    (Value.equal t.(4) (Value.date 1995 10 11));
  Alcotest.(check bool) "spriority" true (Value.equal t.(6) (i 0));
  let li =
    Divm_tpch.Load.parse_line "lineitem"
      "1|156|4|1|17|17954.55|0.04|0.02|N|O|1996-03-13|1996-02-12|1996-03-22|DELIVER \
       IN PERSON|TRUCK|egular courts|"
  in
  Alcotest.(check int) "lineitem width" 14 (Array.length li);
  Alcotest.(check bool) "qty" true (Value.equal li.(4) (Value.Float 17.))

let test_tbl_errors () =
  (try
     ignore (Divm_tpch.Load.parse_line "orders" "not|enough");
     Alcotest.fail "expected Error"
   with Divm_tpch.Load.Error _ -> ());
  try
    ignore (Divm_tpch.Load.parse_line "widgets" "1|2|");
    Alcotest.fail "expected Error"
  with Divm_tpch.Load.Error _ -> ()

let test_tbl_file_and_query () =
  (* Write a small .tbl fixture, load it, and run a query over it. *)
  let dir = Filename.temp_file "divm_tbl" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let write name lines =
    let oc = open_out (Filename.concat dir name) in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc
  in
  write "region.tbl"
    [ "0|AFRICA|comment|"; "1|AMERICA|c|"; "2|ASIA|c|" ];
  write "nation.tbl" [ "0|ALGERIA|0|c|"; "1|ARGENTINA|1|c|" ];
  let tables = Divm_tpch.Load.load_dir dir in
  Sys.remove (Filename.concat dir "region.tbl");
  Sys.remove (Filename.concat dir "nation.tbl");
  Unix.rmdir dir;
  Alcotest.(check int) "two tables found" 2 (List.length tables);
  Alcotest.(check int) "regions" 3 (Gmr.cardinal (List.assoc "region" tables));
  let src = Divm_eval.Interp.source_of_rels tables in
  let count =
    Divm_eval.Interp.eval_scalar src
      Divm_calc.Calc.(sum [] (rel "nation" Divm_tpch.Schema.nation))
  in
  Alcotest.(check (float 1e-9)) "query over loaded data" 2. count

let suites =
  [
    ( "fault-tolerance",
      [
        Alcotest.test_case "checkpoint / restore" `Quick
          test_checkpoint_restore;
        Alcotest.test_case "crash + recovery + replay" `Quick
          test_failure_recovery_replay;
        Alcotest.test_case "checkpoint file roundtrip" `Quick
          test_checkpoint_file_roundtrip;
        Alcotest.test_case "tbl line parsing" `Quick test_tbl_parse;
        Alcotest.test_case "tbl error reporting" `Quick test_tbl_errors;
        Alcotest.test_case "tbl dir load + query" `Quick
          test_tbl_file_and_query;
      ] );
  ]
