open Divm_ring
open Divm_storage
open Divm_calc
open Divm_calc.Calc
open Divm_compiler
open Divm_runtime

let i x = Value.Int x
let va = Schema.var "A"
let vb = Schema.var "B"
let vc = Schema.var "C"
let vd = Schema.var "D"
let vx = Schema.var "X"

let streams_rst = [ ("R", [ va; vb ]); ("S", [ vb; vc ]); ("T", [ vc; vd ]) ]

let q_running =
  sum [ vb ]
    (prod [ rel "R" [ va; vb ]; rel "S" [ vb; vc ]; rel "T" [ vc; vd ] ])

let mk2 l = Gmr.of_list (List.map (fun (a, b, m) -> ([| i a; i b |], m)) l)

(* Run the same stream through the interpreted executor and the compiled
   runtime (batch and single-tuple paths) and demand identical query maps
   after every batch. *)
let check_runtime_equiv ?(msg = "rt") ~streams ~queries batches =
  let prog = Compile.compile ~streams queries in
  let prog_nopre =
    Compile.compile
      ~options:{ Compile.default_options with preaggregate = false }
      ~streams queries
  in
  let ex = Exec.create prog in
  let rt = Runtime.create prog in
  let rt_single = Runtime.create prog_nopre in
  List.iteri
    (fun bi (rel_name, batch) ->
      Exec.apply_batch ex ~rel:rel_name batch;
      let _ = Runtime.apply_batch rt ~rel:rel_name batch in
      Gmr.iter
        (fun tup m ->
          ignore (Runtime.apply_single rt_single ~rel:rel_name tup m))
        batch;
      List.iter
        (fun (qname, _) ->
          let expect = Exec.result ex qname in
          let got = Runtime.result rt qname in
          if not (Gmr.equal expect got) then
            Alcotest.failf "%s: compiled runtime diverged at batch %d:@.%a@.vs %a"
              msg bi Gmr.pp got Gmr.pp expect;
          let got1 = Runtime.result rt_single qname in
          if not (Gmr.equal expect got1) then
            Alcotest.failf
              "%s: single-tuple runtime diverged at batch %d:@.%a@.vs %a" msg
              bi Gmr.pp got1 Gmr.pp expect)
        queries)
    batches

let test_rt_running () =
  check_runtime_equiv ~msg:"running" ~streams:streams_rst
    ~queries:[ ("Q", q_running) ]
    [
      ("R", mk2 [ (1, 10, 1.); (2, 10, 1.) ]);
      ("S", mk2 [ (10, 100, 1.); (20, 200, 2.) ]);
      ("T", mk2 [ (100, 7, 1.); (200, 8, 1.) ]);
      ("R", mk2 [ (3, 20, 2.); (1, 10, -1.) ]);
      ("S", mk2 [ (20, 100, 1.); (10, 100, -1.) ]);
      ("T", mk2 [ (100, 9, 3.); (200, 8, -1.) ]);
    ]

let test_rt_nested () =
  let q =
    sum []
      (prod
         [
           rel "R" [ va; vb ];
           lift vx (sum [ vb ] (rel "S" [ vb; vc ]));
           cmp_vars Lt va vx;
         ])
  in
  check_runtime_equiv ~msg:"nested" ~streams:streams_rst
    ~queries:[ ("QN", q) ]
    [
      ("R", mk2 [ (0, 10, 1.); (1, 20, 1.) ]);
      ("S", mk2 [ (10, 1, 1.); (20, 2, 2.) ]);
      ("S", mk2 [ (10, 1, -1.); (20, 9, 1.) ]);
      ("R", mk2 [ (0, 10, -1.); (2, 20, 5.) ]);
    ]

let test_rt_distinct () =
  let q =
    exists
      (sum [ va ]
         (prod [ rel "R" [ va; vb ]; cmp Gt (Vexpr.var vb) (Vexpr.const_i 5) ]))
  in
  check_runtime_equiv ~msg:"distinct" ~streams:[ ("R", [ va; vb ]) ]
    ~queries:[ ("QD", q) ]
    [
      ("R", mk2 [ (1, 10, 1.); (2, 3, 1.) ]);
      ("R", mk2 [ (1, 20, 2.); (3, 8, 1.) ]);
      ("R", mk2 [ (1, 10, -1.); (1, 20, -2.) ]);
    ]

let test_rt_filters_values () =
  let q =
    sum [ vb ]
      (prod
         [
           rel "R" [ va; vb ];
           cmp Lt (Vexpr.var va) (Vexpr.const_i 3);
           rel "S" [ vb; vc ];
           value (Vexpr.var va);
         ])
  in
  check_runtime_equiv ~msg:"filters" ~streams:streams_rst
    ~queries:[ ("QF", q) ]
    [
      ("R", mk2 [ (1, 10, 1.); (5, 10, 1.); (2, 20, 3.) ]);
      ("S", mk2 [ (10, 1, 1.); (20, 2, 1.) ]);
      ("R", mk2 [ (1, 10, -1.); (2, 20, 1.) ]);
      ("S", mk2 [ (10, 1, -1.); (10, 3, 2.) ]);
    ]

let qcheck_rt_agree =
  let open QCheck in
  let gen_batch =
    Gen.(
      list_size (int_range 1 5)
        (triple (int_range 0 3) (int_range 0 3) (int_range (-2) 2)))
  in
  let gen_stream =
    Gen.(list_size (int_range 1 6) (pair (int_range 0 2) gen_batch))
  in
  let arb = QCheck.make ~print:(fun _ -> "<stream>") gen_stream in
  QCheck.Test.make ~name:"compiled runtime agrees on random streams" ~count:40
    arb (fun stream ->
      let rels = [| "R"; "S"; "T" |] in
      let batches =
        List.map
          (fun (ri, tuples) ->
            ( rels.(ri),
              mk2 (List.map (fun (a, b, m) -> (a, b, float_of_int m)) tuples)
            ))
          stream
      in
      check_runtime_equiv ~msg:"qcheck" ~streams:streams_rst
        ~queries:[ ("Q", q_running) ]
        batches;
      true)

(* Vectorized-executor equivalence: the same random TPC-H stream replayed
   through columnar-on and columnar-off runtimes must leave every
   non-transient store identical. The bench queries cover the batched-join
   and fused-group routes (Q17 joins against stores, Q7 fuses statements
   that access shared transients under different positional names). *)
let qcheck_columnar_equiv =
  let module Workload = Divm_workload.Workload in
  let module Tpch = Divm_tpch in
  let queries =
    [ "Q1"; "Q3"; "Q4"; "Q6"; "Q7"; "Q12"; "Q13"; "Q14"; "Q17"; "Q19"; "Q22" ]
  in
  let arb =
    QCheck.(
      make
        ~print:(Print.pair Print.int Print.int)
        Gen.(pair (int_range 0 10_000) (int_range 1 40)))
  in
  QCheck.Test.make ~name:"columnar on/off stores agree on random TPC-H streams"
    ~count:4 arb
    (fun (seed, batch_size) ->
      let stream =
        Tpch.Gen.stream { Tpch.Gen.scale = 0.03; seed } ~batch_size
      in
      List.iter
        (fun qn ->
          let w = Workload.find qn in
          let prog = Workload.compile w in
          let on = Runtime.create ~columnar:true prog in
          let off = Runtime.create ~columnar:false prog in
          List.iter
            (fun (rel, b) ->
              ignore (Runtime.apply_batch on ~rel b);
              ignore (Runtime.apply_batch off ~rel b))
            stream;
          List.iter
            (fun (m : Prog.map_decl) ->
              if m.mkind <> Prog.Transient then
                let g_on = Runtime.map_contents on m.mname in
                let g_off = Runtime.map_contents off m.mname in
                if not (Gmr.equal ~eps:1e-6 g_on g_off) then
                  Alcotest.failf
                    "%s: store %s diverges between columnar and generic paths"
                    qn m.mname)
            prog.Prog.maps)
        queries;
      true)

(* Domain-parallel executor equivalence: the same random TPC-H stream
   replayed through serial and parallel runtimes must leave every
   non-transient store identical (exactly for integer multiplicities,
   within summation-order epsilon for float aggregates — the same
   contract as columnar on/off). [par_min_rows:1] forces even the
   smallest random batches through the parallel fan-out. *)
let qcheck_parallel_equiv =
  let module Workload = Divm_workload.Workload in
  let module Tpch = Divm_tpch in
  let queries =
    [ "Q1"; "Q3"; "Q4"; "Q6"; "Q7"; "Q12"; "Q13"; "Q14"; "Q17"; "Q19"; "Q22" ]
  in
  let arb =
    QCheck.(
      make
        ~print:(Print.pair Print.int Print.int)
        Gen.(pair (int_range 0 10_000) (int_range 1 40)))
  in
  QCheck.Test.make
    ~name:"parallel (2,4 domains) stores agree with serial on TPC-H streams"
    ~count:4 arb
    (fun (seed, batch_size) ->
      let stream =
        Tpch.Gen.stream { Tpch.Gen.scale = 0.03; seed } ~batch_size
      in
      List.iter
        (fun qn ->
          let w = Workload.find qn in
          let prog = Workload.compile w in
          let seq = Runtime.create ~domains:1 prog in
          let par2 = Runtime.create ~domains:2 ~par_min_rows:1 prog in
          let par4 = Runtime.create ~domains:4 ~par_min_rows:1 prog in
          List.iter
            (fun (rel, b) ->
              ignore (Runtime.apply_batch seq ~rel b);
              ignore (Runtime.apply_batch par2 ~rel b);
              ignore (Runtime.apply_batch par4 ~rel b))
            stream;
          List.iter
            (fun (m : Prog.map_decl) ->
              if m.mkind <> Prog.Transient then begin
                let g_seq = Runtime.map_contents seq m.mname in
                List.iter
                  (fun (d, rt) ->
                    if
                      not
                        (Gmr.equal ~eps:1e-6 g_seq (Runtime.map_contents rt m.mname))
                    then
                      Alcotest.failf
                        "%s: store %s diverges between serial and %d-domain \
                         execution"
                        qn m.mname d)
                  [ (2, par2); (4, par4) ]
              end)
            prog.Prog.maps)
        queries;
      true)

let test_rt_ops_counter () =
  let prog = Compile.compile ~streams:streams_rst [ ("Q", q_running) ] in
  let rt = Runtime.create prog in
  Runtime.reset_ops rt;
  let rep = Runtime.apply_batch rt ~rel:"R" (mk2 [ (1, 10, 1.) ]) in
  Alcotest.(check bool) "ops counted" true (Runtime.ops rt > 0);
  Alcotest.(check int) "report matches counter" (Runtime.ops rt) rep.Runtime.ops;
  Alcotest.(check int) "tuples counted" 1 rep.Runtime.tuples;
  Runtime.reset_ops rt;
  Alcotest.(check int) "ops reset" 0 (Runtime.ops rt)

let test_columnar_path () =
  (* The §5.2.2 columnar pre-aggregation path must agree with the generic
     closure path, including filters, value weights, and deletions. *)
  let q =
    sum [ vb ]
      (prod
         [
           rel "R" [ va; vb ];
           cmp Lt (Vexpr.var va) (Vexpr.const_i 3);
           value (Vexpr.var va);
         ])
  in
  let streams = [ ("R", [ va; vb ]) ] in
  let prog = Compile.compile ~streams [ ("QC", q) ] in
  let on = Runtime.create ~columnar:true prog in
  let off = Runtime.create ~columnar:false prog in
  let batches =
    [
      mk2 [ (1, 10, 1.); (5, 10, 1.); (2, 20, 3.) ];
      mk2 [ (1, 10, -1.); (0, 20, 2.) ];
    ]
  in
  List.iter
    (fun b ->
      let _ = Runtime.apply_batch on ~rel:"R" b in
      ignore (Runtime.apply_batch off ~rel:"R" b))
    batches;
  Alcotest.(check bool) "columnar = generic" true
    (Gmr.equal (Runtime.result on "QC") (Runtime.result off "QC"));
  (* b=20: row (2,20) mult 3 weighted by a=2 -> 6; (0,20) weighs 0 *)
  Alcotest.(check (float 1e-6)) "value correct" 6.
    (Gmr.mult (Runtime.result on "QC") [| i 20 |])

(* ------------------------------------------------------------------ *)
(* PR 9: selection-vector kernels vs the per-row closure path          *)
(* ------------------------------------------------------------------ *)

(* Random typed batches through the same compiled filter program on a
   columnar runtime (constant filters hoist to selection-vector kernels,
   string operands dictionary-encode) and a columnar-off runtime (the
   per-row closure path). Stream R has a fixed column typing — A int or
   date, B int (the group key), C float, D string — so the batch
   transposes to the unboxed reps the kernels specialize on. The float
   pool includes NaN and two [fcompare_approx] epsilon edges (1+1e-12
   and 1e9+0.5, both approx-equal to a filter constant); the second
   round forces 2-bit compaction hash collisions, which must not change
   results even for dictionary-coded keys. *)
let vds = Schema.var ~ty:Value.TString "D"

type sv_filter =
  | FInt of cmp_op * int
  | FFloat of cmp_op * float
  | FStr of bool * string
  | FDyn of cmp_op  (** A vs C+1: dynamic operand, stays per-row *)

let sv_ops = [ Eq; Neq; Lt; Lte; Gt; Gte ]
let sv_floats = [ 0.; 1.; 1.5; -2.5; Float.nan; 1. +. 1e-12; 1e9; 1e9 +. 0.5 ]
let sv_strs = [ "AIR"; "RAIL"; "MAIL" ]

let gen_selvec_case =
  let open QCheck.Gen in
  let gen_filter =
    frequency
      [
        (3, map2 (fun op k -> FInt (op, k)) (oneofl sv_ops) (int_range 0 4));
        ( 3,
          map2
            (fun op x -> FFloat (op, x))
            (oneofl sv_ops)
            (oneofl [ 1.; 0.; 1e9 ]) );
        (2, map2 (fun eq s -> FStr (eq, s)) bool (oneofl sv_strs));
        (1, map (fun op -> FDyn op) (oneofl sv_ops));
      ]
  in
  let gen_row =
    map2
      (fun (a, b) (c, (d, m)) -> (a, b, c, d, m))
      (pair (int_range 0 4) (int_range 0 3))
      (pair (oneofl sv_floats)
         (pair (oneofl sv_strs) (map float_of_int (oneofl [ -2; -1; 1; 2 ]))))
  in
  triple bool
    (list_size (int_range 1 4) gen_filter)
    (list_size (int_range 1 2) (list_size (int_range 0 30) gen_row))

let show_selvec_case (use_date, filters, batches) =
  let op_s = function
    | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Lte -> "<=" | Gt -> ">"
    | Gte -> ">="
  in
  Printf.sprintf "date=%b filters=[%s] batches=%s" use_date
    (String.concat "; "
       (List.map
          (function
            | FInt (op, k) -> Printf.sprintf "A %s %d" (op_s op) k
            | FFloat (op, x) -> Printf.sprintf "C %s %h" (op_s op) x
            | FStr (true, s) -> Printf.sprintf "D = %s" s
            | FStr (false, s) -> Printf.sprintf "D <> %s" s
            | FDyn op -> Printf.sprintf "A %s C+1" (op_s op))
          filters))
    (String.concat " | "
       (List.map
          (fun rows ->
            String.concat ";"
              (List.map
                 (fun (a, b, c, d, m) ->
                   Printf.sprintf "(%d,%d,%h,%s)*%g" a b c d m)
                 rows))
          batches))

let qcheck_selvec_equiv =
  let arb = QCheck.make ~print:show_selvec_case gen_selvec_case in
  QCheck.Test.make ~name:"selection vectors = per-row filter evaluation"
    ~count:150 arb (fun (use_date, filters, batches) ->
      let mk_a a = if use_date then Value.Date a else Value.Int a in
      let q =
        sum [ vb ]
          (prod
             (rel "R" [ va; vb; vc; vds ]
             :: List.map
                  (function
                    | FInt (op, k) ->
                        cmp op (Vexpr.var va) (Vexpr.Const (mk_a k))
                    | FFloat (op, x) ->
                        cmp op (Vexpr.var vc) (Vexpr.const_f x)
                    | FStr (eq, s) ->
                        cmp
                          (if eq then Eq else Neq)
                          (Vexpr.var vds)
                          (Vexpr.Const (Value.String s))
                    | FDyn op ->
                        cmp op (Vexpr.var va)
                          (Vexpr.Add (Vexpr.var vc, Vexpr.const_f 1.)))
                  filters))
      in
      let prog =
        Compile.compile ~streams:[ ("R", [ va; vb; vc; vds ]) ] [ ("Q", q) ]
      in
      let gmrs =
        List.map
          (fun rows ->
            Gmr.of_list
              (List.map
                 (fun (a, b, c, d, m) ->
                   ([| mk_a a; i b; Value.Float c; Value.String d |], m))
                 rows))
          batches
      in
      List.iter
        (fun bits ->
          let vec = Runtime.create prog in
          let row = Runtime.create ~columnar:false prog in
          List.iter
            (fun g ->
              Colbatch.hash_bits_for_tests := bits;
              Fun.protect
                ~finally:(fun () -> Colbatch.hash_bits_for_tests := None)
                (fun () -> ignore (Runtime.apply_batch vec ~rel:"R" g));
              ignore (Runtime.apply_batch row ~rel:"R" g))
            gmrs;
          if
            not
              (Gmr.equal ~eps:1e-6 (Runtime.result vec "Q")
                 (Runtime.result row "Q"))
          then
            Alcotest.failf "selvec diverged (bits=%s):@.%a@.vs %a"
              (match bits with None -> "none" | Some b -> string_of_int b)
              Gmr.pp (Runtime.result vec "Q") Gmr.pp (Runtime.result row "Q"))
        [ None; Some 2 ];
      true)

(* The planner actually hoists those filters: constant int/float/string
   comparisons count as selvec in the EXPLAIN split, the dynamic A-vs-C+1
   operand stays rowwise, and the split agrees between stmt_routes_ex and
   what a classifiable-only program labels. *)
let test_selvec_route_split () =
  let q =
    sum [ vb ]
      (prod
         [
           rel "R" [ va; vb; vc; vds ];
           cmp Lt (Vexpr.var va) (Vexpr.const_i 3);
           cmp Gte (Vexpr.var vc) (Vexpr.const_f 1.);
           cmp Eq (Vexpr.var vds) (Vexpr.Const (Value.String "AIR"));
           cmp Gt (Vexpr.var va) (Vexpr.Add (Vexpr.var vc, Vexpr.const_f 1.));
         ])
  in
  let prog =
    Compile.compile ~streams:[ ("R", [ va; vb; vc; vds ]) ] [ ("Q", q) ]
  in
  let split =
    List.concat_map snd (Runtime.stmt_routes_ex prog)
    |> List.filter_map (fun (_, label, sv, rw) ->
           if String.length label >= 6 && String.sub label 0 6 = "selvec" then
             Some (sv, rw)
           else None)
  in
  match split with
  | [ (sv, rw) ] ->
      Alcotest.(check int) "three filters hoist to kernels" 3 sv;
      Alcotest.(check int) "dynamic filter stays rowwise" 1 rw
  | _ -> Alcotest.fail "expected exactly one selvec-routed statement"

let suites =
  [
    ( "runtime",
      [
        Alcotest.test_case "compiled = interpreted (running)" `Quick
          test_rt_running;
        Alcotest.test_case "compiled = interpreted (nested)" `Quick
          test_rt_nested;
        Alcotest.test_case "compiled = interpreted (distinct)" `Quick
          test_rt_distinct;
        Alcotest.test_case "compiled = interpreted (filters)" `Quick
          test_rt_filters_values;
        Alcotest.test_case "ops counter" `Quick test_rt_ops_counter;
        Alcotest.test_case "columnar preagg path" `Quick test_columnar_path;
        Alcotest.test_case "selvec route split" `Quick test_selvec_route_split;
        QCheck_alcotest.to_alcotest qcheck_rt_agree;
        QCheck_alcotest.to_alcotest qcheck_columnar_equiv;
        QCheck_alcotest.to_alcotest qcheck_parallel_equiv;
        QCheck_alcotest.to_alcotest qcheck_selvec_equiv;
      ] );
  ]
