open Divm_ring
open Divm_storage

let v_int i = Value.Int i
let v_str s = Value.String s

let test_value_arith () =
  Alcotest.(check bool)
    "int add" true
    (Value.equal (Value.add (v_int 2) (v_int 3)) (v_int 5));
  Alcotest.(check bool)
    "mixed mul" true
    (Value.equal (Value.mul (v_int 2) (Value.Float 1.5)) (Value.Float 3.));
  Alcotest.(check bool)
    "int div exact" true
    (Value.equal (Value.div (v_int 6) (v_int 3)) (v_int 2));
  Alcotest.(check bool)
    "int div inexact" true
    (Value.equal (Value.div (v_int 7) (v_int 2)) (Value.Float 3.5));
  Alcotest.check_raises "string add" (Invalid_argument "Value.add: non-numeric operand")
    (fun () -> ignore (Value.add (v_str "a") (v_int 1)))

let test_value_mixed_equal_hash () =
  (* Int and equal Float must collide so GMR lookups are type-insensitive. *)
  Alcotest.(check bool) "2 = 2.0" true (Value.equal (v_int 2) (Value.Float 2.));
  Alcotest.(check int) "hash 2 = hash 2.0" (Value.hash (v_int 2))
    (Value.hash (Value.Float 2.))

let test_value_date () =
  let d = Value.date 1995 3 15 in
  Alcotest.(check bool) "date encoding" true (Value.equal d (Value.Date 19950315));
  Alcotest.(check bool)
    "date order" true
    (Value.compare (Value.date 1995 3 15) (Value.date 1995 12 1) < 0);
  Alcotest.(check string) "date pp" "1995-03-15" (Value.to_string d)

let test_tuple_ops () =
  let t1 = [| v_int 1; v_str "a" |] and t2 = [| v_int 1; v_str "a" |] in
  Alcotest.(check bool) "tuple equal" true (Vtuple.equal t1 t2);
  Alcotest.(check int) "tuple hash" (Vtuple.hash t1) (Vtuple.hash t2);
  Alcotest.(check bool)
    "concat" true
    (Vtuple.equal (Vtuple.concat t1 [| v_int 9 |]) [| v_int 1; v_str "a"; v_int 9 |]);
  Alcotest.(check bool)
    "project" true
    (Vtuple.equal (Vtuple.project t1 [| 1; 0 |]) [| v_str "a"; v_int 1 |]);
  Alcotest.(check bool) "empty distinct" false (Vtuple.equal t1 Vtuple.empty)

let test_schema_ops () =
  let a = Schema.var "a" and b = Schema.var "b" and c = Schema.var "c" in
  Alcotest.(check bool) "mem" true (Schema.mem a [ a; b ]);
  Alcotest.(check int) "union len" 3 (List.length (Schema.union [ a; b ] [ b; c ]));
  Alcotest.(check int) "inter len" 1 (List.length (Schema.inter [ a; b ] [ b; c ]));
  Alcotest.(check int) "diff len" 1 (List.length (Schema.diff [ a; b ] [ b; c ]));
  Alcotest.(check bool) "subset" true (Schema.subset [ b ] [ a; b ]);
  Alcotest.(check bool) "set equal" true (Schema.equal_as_sets [ a; b ] [ b; a ]);
  let pos = Schema.positions [ c; a ] [ a; b; c ] in
  Alcotest.(check (array int)) "positions" [| 2; 0 |] pos

let test_gmr_basic () =
  let g = Gmr.create () in
  Gmr.add g [| v_int 1 |] 2.;
  Gmr.add g [| v_int 1 |] 3.;
  Gmr.add g [| v_int 2 |] 1.;
  Alcotest.(check int) "cardinal" 2 (Gmr.cardinal g);
  Alcotest.(check (float 1e-9)) "mult" 5. (Gmr.mult g [| v_int 1 |]);
  Gmr.add g [| v_int 1 |] (-5.);
  Alcotest.(check int) "cancellation removes" 1 (Gmr.cardinal g);
  Alcotest.(check (float 1e-9)) "absent is zero" 0. (Gmr.mult g [| v_int 1 |])

let test_gmr_union_scale () =
  let g1 = Gmr.of_list [ ([| v_int 1 |], 1.); ([| v_int 2 |], 2.) ] in
  let g2 = Gmr.of_list [ ([| v_int 2 |], -2.); ([| v_int 3 |], 3.) ] in
  Gmr.union_into g1 g2;
  Alcotest.(check int) "union cancels" 2 (Gmr.cardinal g1);
  let s = Gmr.scale g1 2. in
  Alcotest.(check (float 1e-9)) "scale" 6. (Gmr.mult s [| v_int 3 |]);
  Alcotest.(check int) "scale by zero" 0 (Gmr.cardinal (Gmr.scale g1 0.))

let test_gmr_equal () =
  let g1 = Gmr.of_list [ ([| v_int 1 |], 1.) ] in
  let g2 = Gmr.of_list [ ([| v_int 1 |], 1. +. 1e-9) ] in
  let g3 = Gmr.of_list [ ([| v_int 1 |], 2.) ] in
  Alcotest.(check bool) "tolerant equal" true (Gmr.equal g1 g2);
  Alcotest.(check bool) "not equal" false (Gmr.equal g1 g3)

let test_gmr_negative_mult () =
  (* Deletions are negative multiplicities; a GMR may go negative. *)
  let g = Gmr.create () in
  Gmr.add g [| v_int 7 |] (-3.);
  Alcotest.(check (float 1e-9)) "negative kept" (-3.) (Gmr.mult g [| v_int 7 |]);
  Alcotest.(check int) "byte size" (8 + 8) (Gmr.byte_size g)

let suites =
  [
    ( "ring",
      [
        Alcotest.test_case "value arithmetic" `Quick test_value_arith;
        Alcotest.test_case "mixed int/float equal+hash" `Quick
          test_value_mixed_equal_hash;
        Alcotest.test_case "dates" `Quick test_value_date;
        Alcotest.test_case "tuples" `Quick test_tuple_ops;
        Alcotest.test_case "schemas" `Quick test_schema_ops;
        Alcotest.test_case "gmr add/cancel" `Quick test_gmr_basic;
        Alcotest.test_case "gmr union/scale" `Quick test_gmr_union_scale;
        Alcotest.test_case "gmr equality" `Quick test_gmr_equal;
        Alcotest.test_case "gmr negative multiplicities" `Quick
          test_gmr_negative_mult;
      ] );
  ]
