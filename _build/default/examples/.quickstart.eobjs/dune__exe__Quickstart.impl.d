examples/quickstart.ml: Compile Divm Format Gmr List Prog Runtime Schema Sql Value
