examples/sensors.ml: Array Calc Compile Divm Gmr List Printf Queue Random Runtime Schema Value Vexpr
