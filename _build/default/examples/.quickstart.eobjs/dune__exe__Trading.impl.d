examples/trading.ml: Array Calc Compile Divm Gmr Printf Random Runtime Schema Unix Value Vexpr
