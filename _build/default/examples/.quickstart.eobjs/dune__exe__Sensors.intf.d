examples/sensors.mli:
