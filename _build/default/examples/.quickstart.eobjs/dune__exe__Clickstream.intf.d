examples/clickstream.mli:
