examples/quickstart.mli:
