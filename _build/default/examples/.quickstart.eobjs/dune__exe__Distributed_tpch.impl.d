examples/distributed_tpch.ml: Cluster Compile Distribute Divm Dprog Gmr List Loc Printf Runtime Tpch
