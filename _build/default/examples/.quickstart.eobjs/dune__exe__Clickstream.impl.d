examples/clickstream.ml: Compile Divm Gmr List Printf Prog Random Runtime Schema Sql Unix Value
