examples/trading.mli:
