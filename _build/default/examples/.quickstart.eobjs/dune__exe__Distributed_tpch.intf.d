examples/distributed_tpch.mli:
