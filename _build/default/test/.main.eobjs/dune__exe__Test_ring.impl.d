test/test_ring.ml: Alcotest Divm_ring Gmr List Schema Value Vtuple
