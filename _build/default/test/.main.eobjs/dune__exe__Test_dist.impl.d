test/test_dist.ml: Alcotest Cluster Compile Distribute Divm_calc Divm_cluster Divm_compiler Divm_dist Divm_ring Divm_runtime Divm_tpch Dprog Exec Gmr List Loc Printf Prog Schema Value Vexpr
