test/test_runtime.ml: Alcotest Array Compile Divm_calc Divm_compiler Divm_ring Divm_runtime Exec Gen Gmr List QCheck QCheck_alcotest Runtime Schema Value Vexpr
