test/test_tpch.ml: Alcotest Compile Divm_baseline Divm_cluster Divm_compiler Divm_dist Divm_eval Divm_ring Divm_runtime Divm_tpch Exec Gen Gmr Hashtbl Lazy List Printf Queries Runtime Schema
