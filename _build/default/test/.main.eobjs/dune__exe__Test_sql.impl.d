test/test_sql.ml: Alcotest Ast Divm_compiler Divm_eval Divm_ring Divm_runtime Divm_sql Gmr List Schema Sql Value Vtuple
