test/test_compiler.ml: Alcotest Array Calc Compile Divm_calc Divm_compiler Divm_eval Divm_ring Divm_runtime Exec Gen Gmr List Printf Prog QCheck QCheck_alcotest Schema Value Vexpr
