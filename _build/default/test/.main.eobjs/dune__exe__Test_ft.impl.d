test/test_ft.ml: Alcotest Array Cluster Compile Distribute Divm_calc Divm_cluster Divm_compiler Divm_dist Divm_eval Divm_ring Divm_tpch Filename Gmr List Loc Schema Sys Unix Value
