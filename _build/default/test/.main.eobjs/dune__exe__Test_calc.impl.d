test/test_calc.ml: Alcotest Divm_calc Divm_ring Schema Vexpr
