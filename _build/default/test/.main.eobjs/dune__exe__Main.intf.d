test/main.mli:
