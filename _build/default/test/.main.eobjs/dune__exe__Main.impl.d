test/main.ml: Alcotest Test_calc Test_compiler Test_delta Test_dist Test_ft Test_interp Test_misc Test_ring Test_runtime Test_sql Test_storage Test_tpcds Test_tpch
