test/test_misc.ml: Alcotest Cachesim Divm_baseline Divm_cachesim Divm_calc Divm_ring Divm_storage Gmr List Schema Value
