test/test_delta.ml: Alcotest Delta Divm_calc Divm_delta Divm_eval Divm_ring Domain Format Gen Gmr Interp List Poly Printf QCheck QCheck_alcotest Schema Value Vexpr
