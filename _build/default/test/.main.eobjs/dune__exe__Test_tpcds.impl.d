test/test_tpcds.ml: Alcotest Compile Divm_compiler Divm_eval Divm_ring Divm_runtime Divm_tpcds Exec Gen Gmr Lazy List Printf Queries Runtime Schema
