test/test_interp.ml: Alcotest Divm_calc Divm_eval Divm_ring Env Gmr Interp Schema Value Vexpr
