test/test_storage.ml: Alcotest Array Colbatch Divm_ring Divm_storage Float Gen Gmr List Pool Printf QCheck QCheck_alcotest Trace Value
