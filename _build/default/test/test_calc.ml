open Divm_ring
open Divm_calc
open Divm_calc.Calc

let va = Schema.var "A"
let vb = Schema.var "B"
let vc = Schema.var "C"
let vx = Schema.var "X"

let r_ab = rel "R" [ va; vb ]
let s_bc = rel "S" [ vb; vc ]

let test_smart_prod () =
  Alcotest.(check bool) "zero absorbs" true (is_zero (prod [ r_ab; zero ]));
  Alcotest.(check bool) "one neutral" true (equal (prod [ one; r_ab ]) r_ab);
  (match prod [ prod [ r_ab; s_bc ]; r_ab ] with
  | Prod [ _; _; _ ] -> ()
  | e -> Alcotest.failf "prod did not flatten: %s" (to_string e));
  match prod [ const 2.; const 3.; r_ab ] with
  | Prod [ Const 6.; _ ] -> ()
  | e -> Alcotest.failf "constants not folded: %s" (to_string e)

let test_smart_add () =
  Alcotest.(check bool) "zero dropped" true (equal (add [ zero; r_ab ]) r_ab);
  Alcotest.(check bool) "empty is zero" true (is_zero (add []));
  match add [ add [ r_ab; s_bc ]; r_ab ] with
  | Add [ _; _; _ ] -> ()
  | e -> Alcotest.failf "add did not flatten: %s" (to_string e)

let test_neg_is_product () =
  match neg r_ab with
  | Prod [ Const -1.; Rel _ ] -> ()
  | e -> Alcotest.failf "neg encoding: %s" (to_string e)

let test_schema_inference () =
  let q = sum [ vb ] (prod [ r_ab; s_bc ]) in
  Alcotest.(check string) "sum schema" "[B]" (Schema.to_string (schema q));
  Alcotest.(check string)
    "prod binds left to right" "[A, B, C]"
    (Schema.to_string (schema (prod [ r_ab; s_bc ])));
  Alcotest.(check string)
    "bound vars excluded" "[B, C]"
    (Schema.to_string (schema ~bound:[ va ] (prod [ r_ab; s_bc ])));
  let lifted = prod [ r_ab; lift vx (sum [] s_bc) ] in
  Alcotest.(check string)
    "lift adds its var" "[A, B, X]"
    (Schema.to_string (schema lifted))

let test_schema_errors () =
  (* A Value over an unbound variable is invalid. *)
  (try
     ignore (schema (value (Vexpr.var va)));
     Alcotest.fail "expected Type_error"
   with Type_error _ -> ());
  (* Union members must agree on schema. *)
  (try
     ignore (schema (Add [ r_ab; s_bc ]));
     Alcotest.fail "expected Type_error"
   with Type_error _ -> ());
  (* Sum group-by vars must be produced. *)
  try
    ignore (schema (Sum ([ vx ], r_ab)));
    Alcotest.fail "expected Type_error"
  with Type_error _ -> ()

let test_analyses () =
  let q = sum [ vb ] (prod [ r_ab; delta_rel "S" [ vb; vc ]; map_ "M" [ vc ] ]) in
  Alcotest.(check (list string)) "base rels" [ "R" ] (base_rels q);
  Alcotest.(check (list string)) "delta rels" [ "S" ] (delta_rels q);
  Alcotest.(check (list string)) "maps" [ "M" ] (map_refs q);
  Alcotest.(check int) "degree of monomial" 3 (degree q);
  Alcotest.(check int) "degree of union is max" 2
    (degree (add [ prod [ r_ab; s_bc ]; map_ "M" [ vb; vc ] ]))

let test_rename_and_alpha () =
  let q = sum [ vb ] (prod [ r_ab; s_bc ]) in
  let q' = rename_by_assoc [ ("A", Schema.var "A2"); ("C", Schema.var "C2") ] q in
  Alcotest.(check string)
    "renamed" "Sum_[B]((R(A2, B) * S(B, C2)))" (to_string q');
  (* Alpha-canonical forms of the same shape with different internal names
     are equal when the kept (output) vars match. *)
  let c1 = alpha_canon ~keep:[ vb ] q in
  let c2 = alpha_canon ~keep:[ vb ] q' in
  Alcotest.(check bool) "alpha equivalent" true (equal c1 c2);
  (* ... but differ if an output var differs. *)
  let q'' = rename_by_assoc [ ("B", Schema.var "B2") ] q in
  let c3 = alpha_canon ~keep:[ vb; Schema.var "B2" ] q'' in
  Alcotest.(check bool) "not alpha equivalent" false (equal c1 c3)

let test_exists_const () =
  Alcotest.(check bool) "exists const" true (equal (exists (const 5.)) one);
  match exists r_ab with
  | Exists _ -> ()
  | e -> Alcotest.failf "exists kept: %s" (to_string e)

let test_pp_roundtrip_shape () =
  let q = sum [ vb ] (prod [ r_ab; cmp_vars Lt va vb ]) in
  Alcotest.(check string) "pp" "Sum_[B]((R(A, B) * {A < B}))" (to_string q)

let suites =
  [
    ( "calc",
      [
        Alcotest.test_case "prod smart constructor" `Quick test_smart_prod;
        Alcotest.test_case "add smart constructor" `Quick test_smart_add;
        Alcotest.test_case "neg is (-1)*e" `Quick test_neg_is_product;
        Alcotest.test_case "schema inference" `Quick test_schema_inference;
        Alcotest.test_case "schema errors" `Quick test_schema_errors;
        Alcotest.test_case "analyses" `Quick test_analyses;
        Alcotest.test_case "rename / alpha-canon" `Quick test_rename_and_alpha;
        Alcotest.test_case "exists of constant" `Quick test_exists_const;
        Alcotest.test_case "pretty printing" `Quick test_pp_roundtrip_shape;
      ] );
  ]
