open Divm_ring
open Divm_storage

let i x = Value.Int x
let t2 a b = [| i a; i b |]

let test_pool_basic () =
  let p = Pool.create ~key_width:2 ~slices:[] () in
  Pool.add p (t2 1 10) 2.;
  Pool.add p (t2 1 10) 3.;
  Pool.add p (t2 2 20) 1.;
  Alcotest.(check int) "cardinal" 2 (Pool.cardinal p);
  Alcotest.(check (float 1e-9)) "get" 5. (Pool.get p (t2 1 10));
  Pool.add p (t2 1 10) (-5.);
  Alcotest.(check int) "cancel removes" 1 (Pool.cardinal p);
  Alcotest.(check (float 1e-9)) "absent" 0. (Pool.get p (t2 1 10));
  Pool.set p (t2 2 20) 9.;
  Alcotest.(check (float 1e-9)) "set overwrites" 9. (Pool.get p (t2 2 20))

let test_pool_free_list () =
  let p = Pool.create ~key_width:1 ~slices:[] () in
  for x = 0 to 9 do
    Pool.add p [| i x |] 1.
  done;
  for x = 0 to 4 do
    Pool.add p [| i x |] (-1.)
  done;
  Alcotest.(check int) "five free slots" 5 (Pool.free_slots p);
  (* New inserts must reuse freed slots. *)
  for x = 100 to 104 do
    Pool.add p [| i x |] 1.
  done;
  Alcotest.(check int) "slots reused" 0 (Pool.free_slots p);
  Alcotest.(check int) "cardinal" 10 (Pool.cardinal p)

let test_pool_slice () =
  let p = Pool.create ~key_width:2 ~slices:[ [| 1 |] ] () in
  Pool.add p (t2 1 10) 1.;
  Pool.add p (t2 2 10) 2.;
  Pool.add p (t2 3 20) 3.;
  let seen = ref [] in
  Pool.slice p ~index:0 [| i 10 |] (fun key m -> seen := (key.(0), m) :: !seen);
  Alcotest.(check int) "slice size" 2 (List.length !seen);
  Alcotest.(check bool) "slice members" true
    (List.mem (i 1, 1.) !seen && List.mem (i 2, 2.) !seen);
  (* Deletion must update the secondary index. *)
  Pool.add p (t2 1 10) (-1.);
  let n = ref 0 in
  Pool.slice p ~index:0 [| i 10 |] (fun _ _ -> incr n);
  Alcotest.(check int) "slice after delete" 1 !n;
  Alcotest.(check (option int)) "find_slice hit" (Some 0)
    (Pool.find_slice p [| 1 |]);
  Alcotest.(check (option int)) "find_slice miss" None
    (Pool.find_slice p [| 0 |])

let test_pool_growth_and_gmr () =
  let p = Pool.create ~key_width:1 ~slices:[] () in
  for x = 0 to 999 do
    Pool.add p [| i x |] (float_of_int (x + 1))
  done;
  Alcotest.(check int) "grown pool" 1000 (Pool.cardinal p);
  Alcotest.(check (float 1e-9)) "value after growth" 500. (Pool.get p [| i 499 |]);
  let g = Pool.to_gmr p in
  Alcotest.(check int) "roundtrip cardinal" 1000 (Gmr.cardinal g);
  let p2 = Pool.of_gmr ~key_width:1 ~slices:[] g in
  Alcotest.(check (float 1e-9)) "roundtrip value" 500. (Pool.get p2 [| i 499 |])

let test_pool_clear () =
  let p = Pool.create ~key_width:1 ~slices:[ [| 0 |] ] () in
  Pool.add p [| i 1 |] 1.;
  Pool.clear p;
  Alcotest.(check int) "cleared" 0 (Pool.cardinal p);
  Alcotest.(check (float 1e-9)) "get after clear" 0. (Pool.get p [| i 1 |]);
  Pool.add p [| i 1 |] 2.;
  Alcotest.(check (float 1e-9)) "reusable" 2. (Pool.get p [| i 1 |])

let test_colbatch_roundtrip () =
  let g =
    Gmr.of_list [ (t2 1 10, 1.); (t2 2 20, -2.); (t2 3 30, 3.) ]
  in
  let b = Colbatch.of_gmr ~width:2 g in
  Alcotest.(check int) "length" 3 (Colbatch.length b);
  Alcotest.(check int) "width" 2 (Colbatch.width b);
  Alcotest.(check bool) "roundtrip" true (Gmr.equal g (Colbatch.to_gmr b))

let test_colbatch_filter_project () =
  let g =
    Gmr.of_list [ (t2 1 10, 1.); (t2 2 20, 1.); (t2 3 10, 1.) ]
  in
  let b = Colbatch.of_gmr ~width:2 g in
  let col1 = Colbatch.column b 1 in
  let fb = Colbatch.filter b (fun j -> Value.equal col1.(j) (i 10)) in
  Alcotest.(check int) "filtered" 2 (Colbatch.length fb);
  let pb = Colbatch.project fb [| 1 |] in
  Alcotest.(check int) "projected width" 1 (Colbatch.width pb);
  (* aggregation merges the two B=10 rows *)
  let agg = Colbatch.aggregate pb in
  Alcotest.(check (float 1e-9)) "aggregated" 2. (Gmr.mult agg [| i 10 |])

let test_trace_hooks () =
  let events = ref 0 in
  Trace.set_sink (Some (fun _ _ -> incr events));
  let p = Pool.create ~key_width:1 ~slices:[] () in
  Pool.add p [| i 1 |] 1.;
  ignore (Pool.get p [| i 1 |]);
  Pool.foreach p (fun _ _ -> ());
  Trace.set_sink None;
  let frozen = !events in
  ignore (Pool.get p [| i 1 |]);
  Alcotest.(check bool) "events recorded" true (frozen >= 3);
  Alcotest.(check int) "sink disabled" frozen !events

(* Model-based property: a pool with a secondary index behaves exactly like
   a GMR under random add/set/clear programs, including slice results. *)
let qcheck_pool_model =
  let open QCheck in
  let gen_op =
    Gen.(
      frequency
        [
          (6, map2 (fun a m -> `Add (a, float_of_int m)) (int_range 0 8) (int_range (-2) 3));
          (2, map2 (fun a m -> `Set (a, float_of_int m)) (int_range 0 8) (int_range 0 3));
          (1, return `Clear);
        ])
  in
  let arb =
    QCheck.make
      ~print:(fun ops -> Printf.sprintf "<%d ops>" (List.length ops))
      Gen.(list_size (int_range 1 60) gen_op)
  in
  QCheck.Test.make ~name:"pool = gmr model under random programs" ~count:200
    arb (fun ops ->
      let p = Pool.create ~key_width:2 ~slices:[ [| 1 |] ] () in
      let model = Gmr.create () in
      List.iter
        (fun op ->
          match op with
          | `Add (a, m) ->
              let key = t2 a (a mod 3) in
              Pool.add p key m;
              Gmr.add model key m
          | `Set (a, m) ->
              let key = t2 a (a mod 3) in
              Pool.set p key m;
              Gmr.set model key m
          | `Clear ->
              Pool.clear p;
              Gmr.clear model)
        ops;
      (* cardinality, contents, and slices agree with the model *)
      Pool.cardinal p = Gmr.cardinal model
      && Gmr.equal (Pool.to_gmr p) model
      && List.for_all
           (fun b ->
             let via_slice = ref 0. and via_model = ref 0. in
             Pool.slice p ~index:0 [| i b |] (fun _ m -> via_slice := !via_slice +. m);
             Gmr.iter
               (fun key m ->
                 if Value.equal key.(1) (i b) then via_model := !via_model +. m)
               model;
             Float.abs (!via_slice -. !via_model) < 1e-9)
           [ 0; 1; 2 ])

let suites =
  [
    ( "storage",
      [
        Alcotest.test_case "pool add/get/cancel" `Quick test_pool_basic;
        Alcotest.test_case "pool free list" `Quick test_pool_free_list;
        Alcotest.test_case "pool slice index" `Quick test_pool_slice;
        Alcotest.test_case "pool growth + gmr roundtrip" `Quick
          test_pool_growth_and_gmr;
        Alcotest.test_case "pool clear" `Quick test_pool_clear;
        Alcotest.test_case "colbatch roundtrip" `Quick test_colbatch_roundtrip;
        Alcotest.test_case "colbatch filter/project" `Quick
          test_colbatch_filter_project;
        Alcotest.test_case "trace hooks" `Quick test_trace_hooks;
        QCheck_alcotest.to_alcotest qcheck_pool_model;
      ] );
  ]
