bin/divm_cluster.mli:
