bin/divm_stream.ml: Arg Cmd Cmdliner Compile Divm Format Gmr List Printf Runtime String Term Tpch Unix
