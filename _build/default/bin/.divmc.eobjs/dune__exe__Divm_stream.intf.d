bin/divm_stream.mli:
