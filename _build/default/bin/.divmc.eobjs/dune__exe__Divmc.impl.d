bin/divmc.ml: Arg Cmd Cmdliner Compile Distribute Divm Dprog Format List Loc Prog Sql String Term Tpcds Tpch
