bin/divm_cluster.ml: Arg Cluster Cmd Cmdliner Compile Distribute Divm Gmr List Loc Printf String Term Tpch
