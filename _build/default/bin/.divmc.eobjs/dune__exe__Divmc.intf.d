bin/divmc.mli:
