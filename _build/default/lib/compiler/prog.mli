(** Trigger-program IR produced by the recursive IVM compiler.

    A program declares a set of materialized maps and, for every stream
    relation, one trigger ([ON UPDATE R BY dR]) whose statements refresh the
    maps bottom-up in dependency order, reading pre-update map state (except
    re-evaluation statements, which run after their inputs are refreshed). *)

open Divm_ring
open Divm_calc

type map_kind =
  | Query  (** a top-level query result *)
  | Auxiliary  (** materialized update-independent part *)
  | Base  (** (projected) copy of a base relation *)
  | Transient  (** per-batch intermediate (e.g. pre-aggregated delta) *)

type map_decl = {
  mname : string;
  mschema : Schema.t;  (** key variables, canonical order *)
  mkind : map_kind;
  definition : Calc.expr;
      (** definition over base relations; for [Transient] maps, over the
          current batch's delta relations *)
}

type stmt_op =
  | Add_to  (** [M(vars) += rhs] *)
  | Assign  (** [M(vars) := rhs] (re-evaluation / transient init) *)

type stmt = {
  target : string;
  target_vars : Schema.t;
  op : stmt_op;
  rhs : Calc.expr;  (** over [Map], [DeltaRel] and value atoms only *)
}

type trigger = { relation : string; stmts : stmt list }

type t = {
  maps : map_decl list;
  triggers : trigger list;
  queries : (string * string) list;  (** query name -> result map *)
  streams : (string * Schema.t) list;  (** updatable base relations *)
}

val find_map : t -> string -> map_decl
val find_trigger : t -> string -> trigger

(** Statements of [t] whose RHS reads map [m]. *)
val readers : t -> string -> stmt list

(** Number of statements across all triggers. *)
val stmt_count : t -> int

val pp_stmt : Format.formatter -> stmt -> unit
val pp_trigger : Format.formatter -> trigger -> unit
val pp : Format.formatter -> t -> unit
