(** The recursive incremental view maintenance compiler (§2.2, §3).

    Given top-level queries over stream relations, the compiler derives, for
    every query and every stream, the delta query; materializes each delta's
    update-independent parts as auxiliary maps (factorized into connected
    components of the join graph, so disconnected parts are stored
    separately, cf. footnote 2); and recursively repeats the procedure on
    the auxiliary maps until deltas reference no base relations.

    Queries whose deltas contain an unrestrictable [Lift]/[Exists]
    difference (§3.2.3) fall back to re-evaluation over materialized base
    relations for that update path.

    Three compilation modes share the machinery:
    - [compile] — full recursive IVM (the paper's approach);
    - [compile_classical] — first-order IVM over materialized base tables
      (the "classical incremental view maintenance" baseline);
    - [compile_reeval] — recompute every query from materialized base
      tables on every batch (the re-evaluation baseline). *)

open Divm_ring
open Divm_calc

type options = {
  factorize : bool;
      (** decompose update-independent parts into connected components
          (true in the paper; false only for the ablation bench) *)
  preaggregate : bool;
      (** insert batch pre-aggregation statements (§3.3) *)
  max_maps : int;  (** safety bound on recursive materialization *)
}

val default_options : options

(** [compile ~streams queries] compiles [queries] (name, definition) into a
    trigger program. [streams] lists the updatable relations with their
    column variables (declaration order). Relations referenced by queries
    but absent from [streams] are static tables (no triggers derived). *)
val compile :
  ?options:options ->
  streams:(string * Schema.t) list ->
  (string * Calc.expr) list ->
  Prog.t

val compile_classical :
  ?options:options ->
  streams:(string * Schema.t) list ->
  (string * Calc.expr) list ->
  Prog.t

val compile_reeval :
  streams:(string * Schema.t) list -> (string * Calc.expr) list -> Prog.t
