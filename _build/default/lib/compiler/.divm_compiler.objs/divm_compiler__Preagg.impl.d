lib/compiler/preagg.ml: Calc Divm_calc Divm_delta Divm_ring Hashtbl List Printf Prog Schema String
