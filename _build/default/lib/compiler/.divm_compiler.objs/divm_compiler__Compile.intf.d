lib/compiler/compile.mli: Calc Divm_calc Divm_ring Prog Schema
