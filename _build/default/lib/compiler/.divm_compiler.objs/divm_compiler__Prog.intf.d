lib/compiler/prog.mli: Calc Divm_calc Divm_ring Format Schema
