lib/compiler/prog.ml: Calc Divm_calc Divm_ring Format List Schema String
