lib/compiler/preagg.mli: Prog
