lib/compiler/compile.ml: Array Calc Delta Divm_calc Divm_delta Divm_ring Fun Hashtbl List Logs Poly Preagg Printf Prog Schema String
