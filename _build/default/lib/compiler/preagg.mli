(** Batch pre-aggregation (§3.3): for every trigger statement, the incoming
    batch is filtered by the statement's static conditions, projected onto
    the columns used downstream, and pre-aggregated into a per-batch
    transient map that the statement then joins against. Identical
    pre-aggregations are shared across the statements of a trigger.

    This mirrors the paper's batched-mode code generation: even identity
    pre-aggregations are materialized (their cost is what makes batching
    lose to tuple-at-a-time processing on simple queries, cf. Fig. 7). *)

val apply : Prog.t -> Prog.t
