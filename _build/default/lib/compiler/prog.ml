open Divm_ring
open Divm_calc

type map_kind = Query | Auxiliary | Base | Transient

type map_decl = {
  mname : string;
  mschema : Schema.t;
  mkind : map_kind;
  definition : Calc.expr;
}

type stmt_op = Add_to | Assign

type stmt = {
  target : string;
  target_vars : Schema.t;
  op : stmt_op;
  rhs : Calc.expr;
}

type trigger = { relation : string; stmts : stmt list }

type t = {
  maps : map_decl list;
  triggers : trigger list;
  queries : (string * string) list;
  streams : (string * Schema.t) list;
}

let find_map t name =
  match List.find_opt (fun m -> String.equal m.mname name) t.maps with
  | Some m -> m
  | None -> invalid_arg ("Prog.find_map: unknown map " ^ name)

let find_trigger t rel =
  match List.find_opt (fun tr -> String.equal tr.relation rel) t.triggers with
  | Some tr -> tr
  | None -> invalid_arg ("Prog.find_trigger: unknown relation " ^ rel)

let readers t name =
  List.concat_map
    (fun tr ->
      List.filter (fun s -> List.mem name (Calc.map_refs s.rhs)) tr.stmts)
    t.triggers

let stmt_count t =
  List.fold_left (fun acc tr -> acc + List.length tr.stmts) 0 t.triggers

let pp_op ppf = function
  | Add_to -> Format.pp_print_string ppf "+="
  | Assign -> Format.pp_print_string ppf ":="

let pp_stmt ppf s =
  Format.fprintf ppf "@[<hov 2>%s[%a] %a@ %a@]" s.target Calc.pp_vars
    s.target_vars pp_op s.op Calc.pp s.rhs

let pp_trigger ppf tr =
  Format.fprintf ppf "@[<v 2>ON UPDATE %s BY d%s:@ %a@]" tr.relation
    tr.relation
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt)
    tr.stmts

let pp_kind ppf = function
  | Query -> Format.pp_print_string ppf "query"
  | Auxiliary -> Format.pp_print_string ppf "aux"
  | Base -> Format.pp_print_string ppf "base"
  | Transient -> Format.pp_print_string ppf "transient"

let pp ppf t =
  Format.fprintf ppf "@[<v>MAPS:@ ";
  List.iter
    (fun m ->
      Format.fprintf ppf "  @[<hov 2>%s[%a] (%a) :=@ %a@]@ " m.mname
        Calc.pp_vars m.mschema pp_kind m.mkind Calc.pp m.definition)
    t.maps;
  Format.fprintf ppf "@ ";
  List.iter (fun tr -> Format.fprintf ppf "%a@ @ " pp_trigger tr) t.triggers;
  Format.fprintf ppf "@]"
