lib/eval/env.mli: Divm_ring Format Schema Value Vtuple
