lib/eval/interp.ml: Array Calc Divm_calc Divm_ring Env Gmr Hashtbl List Printf Schema String Value Vexpr Vtuple
