lib/eval/env.ml: Array Divm_ring Format List Schema Value
