lib/eval/interp.mli: Calc Divm_calc Divm_ring Env Gmr Schema
