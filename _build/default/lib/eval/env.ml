open Divm_ring

type t = (string * Value.t) list

let empty = []
let bind env (v : Schema.var) value = (v.name, value) :: env
let find env (v : Schema.var) = List.assoc_opt v.name env

let find_exn env (v : Schema.var) =
  match find env v with
  | Some x -> x
  | None -> raise Not_found

let is_bound env (v : Schema.var) = List.mem_assoc v.name env

let project env vars =
  Array.of_list (List.map (fun v -> find_exn env v) vars)

let of_list l = List.map (fun ((v : Schema.var), x) -> (v.name, x)) l

let domain env =
  List.fold_left
    (fun acc (n, _) ->
      if List.exists (fun (v : Schema.var) -> v.name = n) acc then acc
      else Schema.var n :: acc)
    [] env
  |> List.rev

let pp ppf env =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf (n, v) -> Format.fprintf ppf "%s=%a" n Value.pp v))
    env
