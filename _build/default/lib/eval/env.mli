(** Variable bindings threaded left-to-right through evaluation. *)

open Divm_ring

type t

val empty : t
val bind : t -> Schema.var -> Value.t -> t
val find : t -> Schema.var -> Value.t option
val find_exn : t -> Schema.var -> Value.t
val is_bound : t -> Schema.var -> bool

(** [project env vars] builds the tuple of [vars]'s values, raising
    [Not_found] if one is unbound. *)
val project : t -> Schema.t -> Vtuple.t

val of_list : (Schema.var * Value.t) list -> t

(** Bound variables, without duplicates (types are nominal: comparisons in
    [Schema] are by name). *)
val domain : t -> Schema.t
val pp : Format.formatter -> t -> unit
