lib/runtime/exec.ml: Divm_compiler Divm_eval Divm_ring Gmr Hashtbl List Prog Schema String Vtuple
