lib/runtime/patterns.mli: Divm_compiler Prog
