lib/runtime/exec.mli: Divm_compiler Divm_ring Gmr Prog
