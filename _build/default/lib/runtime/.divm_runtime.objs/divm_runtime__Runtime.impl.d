lib/runtime/runtime.ml: Array Calc Colbatch Divm_calc Divm_compiler Divm_delta Divm_eval Divm_ring Divm_storage Float Gmr Hashtbl List Patterns Pool Prog Schema String Value Vexpr Vtuple
