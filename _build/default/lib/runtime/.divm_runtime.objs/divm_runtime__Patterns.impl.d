lib/runtime/patterns.ml: Array Calc Divm_calc Divm_compiler Divm_ring Hashtbl List Prog Schema
