lib/runtime/runtime.mli: Divm_compiler Divm_ring Gmr Prog Vtuple
