(** Access-pattern analysis (§5.2.1).

    Walks every trigger statement with the same static bound-variable
    tracking as the closure compiler and records, for every map, the key
    positions that are bound when the map is accessed:
    - all positions bound → [get] (unique hash index, always present),
    - none → [foreach] (no index needed),
    - a strict subset → [slice] (one non-unique hash index per pattern). *)

open Divm_compiler

(** [slices prog] returns, for each map name, the list of distinct slice
    patterns (sorted position arrays, strict non-empty subsets of the key). *)
val slices : Prog.t -> (string * int array list) list

(** Batch relation patterns: slice patterns over the raw update batch of
    each stream relation (for programs that reference [DeltaRel] inline). *)
val batch_slices : Prog.t -> (string * int array list) list
