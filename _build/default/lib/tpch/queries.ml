module Tsch = Schema
open Divm_ring
open Divm_calc
open Divm_calc.Calc

type t = { qname : string; maps : (string * Calc.expr) list }

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let atom name = Calc.rel name (List.assoc name Tsch.streams)

(* Renamed atom copy: [atomr "nation" [("nkey", cnk)]]. *)
let atomr name renames = Calc.rename_by_assoc renames (atom name)

let x n = Vexpr.var (Tsch.v n)
let xv v = Vexpr.var v
let c_f = Vexpr.const_f
let c_i = Vexpr.const_i
let c_s s = Vexpr.Const (Value.String s)
let c_d (y, m, d) = Vexpr.Const (Value.date y m d)
let vr ?(ty = Value.TFloat) n = Schema.var ~ty n
let eq a b = cmp Eq a b
let lt a b = cmp Lt a b
let lte a b = cmp Lte a b
let gt a b = cmp Gt a b
let gte a b = cmp Gte a b
let neq a b = cmp Neq a b
let mul a b = Vexpr.Mul (a, b)
let sub_ a b = Vexpr.Sub (a, b)
let add_ a b = Vexpr.Add (a, b)

(* one-of-a-set string filter: a disjunction of equalities *)
let in_set col names = add (List.map (fun s -> eq col (c_s s)) names)
let in_set_i col is = add (List.map (fun k -> eq col (c_i k)) is)

(* revenue term: extendedprice * (1 - discount) *)
let revenue = value (mul (x "l_price") (sub_ (c_f 1.) (x "l_disc")))

(* year(date) as a lifted group-by variable *)
let year_of v_date v_year =
  lift v_year (value (Vexpr.Floor (Vexpr.Div (xv v_date, c_i 10000))))

let q qname maps = { qname; maps }
let v = Tsch.v

(* ------------------------------------------------------------------ *)
(* Q1: pricing summary report                                          *)
(* ------------------------------------------------------------------ *)

let q1 =
  let gb = [ v "l_rflag"; v "l_status" ] in
  let base = prod [ atom "lineitem"; lte (x "l_sdate") (c_d (1998, 9, 2)) ] in
  let agg name value_term = (name, sum gb (prod [ base; value_term ])) in
  q "Q1"
    [
      agg "Q1_sum_qty" (value (x "l_qty"));
      agg "Q1_sum_base" (value (x "l_price"));
      agg "Q1_sum_disc_price"
        (value (mul (x "l_price") (sub_ (c_f 1.) (x "l_disc"))));
      agg "Q1_sum_charge"
        (value
           (mul
              (mul (x "l_price") (sub_ (c_f 1.) (x "l_disc")))
              (add_ (c_f 1.) (x "l_tax"))));
      agg "Q1_count" one;
    ]

(* ------------------------------------------------------------------ *)
(* Q2: minimum-cost supplier (MIN encoded as "no cheaper offer")       *)
(* ------------------------------------------------------------------ *)

let q2 =
  let sc = v "ps_supplycost" in
  (* inner copy of partsupp ⋈ supplier ⋈ nation ⋈ region(EUROPE) *)
  let sk2 = vr ~ty:TInt "skey2"
  and nk2 = vr ~ty:TInt "nkey2"
  and rk2 = vr ~ty:TInt "rkey2"
  and sc2 = vr "ps_supplycost2" in
  let inner =
    prod
      [
        atomr "partsupp"
          [ ("skey", sk2); ("ps_availqty", vr ~ty:TInt "ps_availqty2"); ("ps_supplycost", sc2) ];
        atomr "supplier"
          [ ("skey", sk2); ("s_name", vr ~ty:TString "s_name2");
            ("nkey", nk2); ("s_acctbal", vr "s_acctbal2") ];
        atomr "nation"
          [ ("nkey", nk2); ("n_name", vr ~ty:TString "n_name2"); ("rkey", rk2) ];
        atomr "region" [ ("rkey", rk2); ("r_name", vr ~ty:TString "r_name2") ];
        eq (xv (vr ~ty:TString "r_name2")) (c_s "EUROPE");
        lt (xv sc2) (xv sc);
      ]
  in
  let cheaper = vr "cheaper_cnt" in
  q "Q2"
    [
      ( "Q2",
        sum
          [ v "pkey"; v "skey" ]
          (prod
             [
               atom "part";
               eq (x "p_size") (c_i 15);
               eq (x "p_type") (c_s "STANDARD ANODIZED BRASS");
               atom "partsupp";
               atom "supplier";
               atom "nation";
               atom "region";
               eq (x "r_name") (c_s "EUROPE");
               lift cheaper (sum [ v "pkey" ] inner);
               eq (xv cheaper) (c_i 0);
               value (x "s_acctbal");
             ]) );
    ]

(* ------------------------------------------------------------------ *)
(* Q3: shipping priority                                               *)
(* ------------------------------------------------------------------ *)

let q3 =
  q "Q3"
    [
      ( "Q3",
        sum
          [ v "okey"; v "o_date"; v "o_spriority" ]
          (prod
             [
               atom "customer";
               eq (x "c_mktsegment") (c_s "BUILDING");
               atom "orders";
               lt (x "o_date") (c_d (1995, 3, 15));
               atom "lineitem";
               gt (x "l_sdate") (c_d (1995, 3, 15));
               revenue;
             ]) );
    ]

(* ------------------------------------------------------------------ *)
(* Q4: order priority checking (EXISTS)                                *)
(* ------------------------------------------------------------------ *)

let q4 =
  let e = vr "q4_exists" in
  q "Q4"
    [
      ( "Q4",
        sum
          [ v "o_priority" ]
          (prod
             [
               atom "orders";
               gte (x "o_date") (c_d (1993, 7, 1));
               lt (x "o_date") (c_d (1993, 10, 1));
               lift e
                 (sum [ v "okey" ]
                    (prod [ atom "lineitem"; lt (x "l_cdate") (x "l_rdate") ]));
               neq (xv e) (c_i 0);
             ]) );
    ]

(* ------------------------------------------------------------------ *)
(* Q5: local supplier volume (customer and supplier in same nation)    *)
(* ------------------------------------------------------------------ *)

let q5 =
  q "Q5"
    [
      ( "Q5",
        sum
          [ v "nkey"; v "n_name" ]
          (prod
             [
               atom "region";
               eq (x "r_name") (c_s "ASIA");
               atom "nation";
               atom "supplier";
               atom "customer";
               atom "orders";
               gte (x "o_date") (c_d (1994, 1, 1));
               lt (x "o_date") (c_d (1995, 1, 1));
               atom "lineitem";
               revenue;
             ]) );
    ]

(* ------------------------------------------------------------------ *)
(* Q6: forecasting revenue change                                      *)
(* ------------------------------------------------------------------ *)

let q6 =
  q "Q6"
    [
      ( "Q6",
        sum []
          (prod
             [
               atom "lineitem";
               gte (x "l_sdate") (c_d (1994, 1, 1));
               lt (x "l_sdate") (c_d (1995, 1, 1));
               gte (x "l_disc") (c_f 0.05);
               lte (x "l_disc") (c_f 0.07);
               lt (x "l_qty") (c_f 24.);
               value (mul (x "l_price") (x "l_disc"));
             ]) );
    ]

(* ------------------------------------------------------------------ *)
(* Q7: volume shipping between two nations                             *)
(* ------------------------------------------------------------------ *)

let q7 =
  let cnk = vr ~ty:TInt "cnk"
  and n2name = vr ~ty:TString "n2_name"
  and crk = vr ~ty:TInt "crk"
  and yr = vr ~ty:TInt "l_year" in
  let cust = atomr "customer" [ ("nkey", cnk) ] in
  let nation2 =
    atomr "nation" [ ("nkey", cnk); ("n_name", n2name); ("rkey", crk) ]
  in
  let body n1 n2 =
    prod
      [
        atom "supplier";
        atom "nation";
        eq (x "n_name") (c_s n1);
        atom "lineitem";
        gte (x "l_sdate") (c_d (1995, 1, 1));
        lte (x "l_sdate") (c_d (1996, 12, 28));
        atom "orders";
        cust;
        nation2;
        eq (xv n2name) (c_s n2);
        year_of (v "l_sdate") yr;
        revenue;
      ]
  in
  q "Q7"
    [
      ( "Q7",
        sum
          [ v "n_name"; n2name; yr ]
          (add [ body "NATION_03" "NATION_07"; body "NATION_07" "NATION_03" ])
      );
    ]

(* ------------------------------------------------------------------ *)
(* Q8: national market share (numerator and denominator maps)          *)
(* ------------------------------------------------------------------ *)

let q8 =
  let snk = vr ~ty:TInt "snk"
  and sn_name = vr ~ty:TString "sn_name"
  and srk = vr ~ty:TInt "srk"
  and yr = vr ~ty:TInt "o_year" in
  let supp = atomr "supplier" [ ("nkey", snk) ] in
  let nation_s =
    atomr "nation" [ ("nkey", snk); ("n_name", sn_name); ("rkey", srk) ]
  in
  let base extra =
    prod
      ([
         atom "part";
         eq (x "p_type") (c_s "ECONOMY ANODIZED STEEL");
         atom "lineitem";
         supp;
         atom "orders";
         gte (x "o_date") (c_d (1995, 1, 1));
         lte (x "o_date") (c_d (1996, 12, 28));
         atom "customer";
         atom "nation";
         atom "region";
         eq (x "r_name") (c_s "AMERICA");
         nation_s;
         year_of (v "o_date") yr;
       ]
      @ extra
      @ [ revenue ])
  in
  q "Q8"
    [
      ("Q8_num", sum [ yr ] (base [ eq (xv sn_name) (c_s "NATION_06") ]));
      ("Q8_den", sum [ yr ] (base []));
    ]

(* ------------------------------------------------------------------ *)
(* Q9: product type profit                                             *)
(* ------------------------------------------------------------------ *)

let q9 =
  let yr = vr ~ty:TInt "o_year" in
  q "Q9"
    [
      ( "Q9",
        sum
          [ v "n_name"; yr ]
          (prod
             [
               atom "part";
               eq (x "p_color") (c_i 3);
               atom "lineitem";
               atom "supplier";
               atom "partsupp";
               atom "orders";
               atom "nation";
               year_of (v "o_date") yr;
               value
                 (sub_
                    (mul (x "l_price") (sub_ (c_f 1.) (x "l_disc")))
                    (mul (x "ps_supplycost") (x "l_qty")));
             ]) );
    ]

(* ------------------------------------------------------------------ *)
(* Q10: returned item reporting                                        *)
(* ------------------------------------------------------------------ *)

let q10 =
  q "Q10"
    [
      ( "Q10",
        sum
          [ v "ckey"; v "c_name"; v "n_name" ]
          (prod
             [
               atom "customer";
               atom "orders";
               gte (x "o_date") (c_d (1993, 10, 1));
               lt (x "o_date") (c_d (1994, 1, 1));
               atom "lineitem";
               eq (x "l_rflag") (c_s "R");
               atom "nation";
               revenue;
             ]) );
    ]

(* ------------------------------------------------------------------ *)
(* Q11: important stock identification (uncorrelated total: re-eval)   *)
(* ------------------------------------------------------------------ *)

let q11 =
  let pv = vr "part_value" and tv = vr "total_value" in
  let germany extra_renames =
    let base =
      [
        atom "partsupp";
        atom "supplier";
        atom "nation";
        eq (x "n_name") (c_s "NATION_08");
        value (mul (x "ps_supplycost") (x "ps_availqty"));
      ]
    in
    match extra_renames with
    | None -> prod base
    | Some rs -> Calc.rename_by_assoc rs (prod base)
  in
  let pk2 = vr ~ty:TInt "pkey2"
  and sk2 = vr ~ty:TInt "skey2"
  and nk2 = vr ~ty:TInt "nkey2" in
  let inner_total =
    germany
      (Some
         [
           ("pkey", pk2); ("skey", sk2); ("nkey", nk2);
           ("ps_availqty", vr ~ty:TInt "ps_availqty2");
           ("ps_supplycost", vr "ps_supplycost2");
           ("s_name", vr ~ty:TString "s_name2");
           ("s_acctbal", vr "s_acctbal2");
           ("n_name", vr ~ty:TString "n_name2");
           ("rkey", vr ~ty:TInt "rkey2");
         ])
  in
  q "Q11"
    [
      ( "Q11",
        sum
          [ v "pkey" ]
          (prod
             [
               lift pv (sum [ v "pkey" ] (germany None));
               lift tv (sum [] inner_total);
               gt (xv pv) (mul (c_f 0.001) (xv tv));
               value (xv pv);
             ]) );
    ]

(* ------------------------------------------------------------------ *)
(* Q12: shipping modes and order priority                              *)
(* ------------------------------------------------------------------ *)

let q12 =
  let base =
    prod
      [
        atom "orders";
        atom "lineitem";
        in_set (x "l_smode") [ "MAIL"; "SHIP" ];
        lt (x "l_cdate") (x "l_rdate");
        lt (x "l_sdate") (x "l_cdate");
        gte (x "l_rdate") (c_d (1994, 1, 1));
        lt (x "l_rdate") (c_d (1995, 1, 1));
      ]
  in
  q "Q12"
    [
      ( "Q12_high",
        sum
          [ v "l_smode" ]
          (prod [ base; in_set (x "o_priority") [ "1-URGENT"; "2-HIGH" ] ]) );
      ( "Q12_low",
        sum
          [ v "l_smode" ]
          (prod
             [
               base;
               in_set (x "o_priority")
                 [ "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" ];
             ]) );
    ]

(* ------------------------------------------------------------------ *)
(* Q13: customer distribution (aggregate as group-by key)              *)
(* ------------------------------------------------------------------ *)

let q13 =
  let cnt = vr "c_count" in
  q "Q13"
    [
      ( "Q13",
        sum [ cnt ]
          (prod
             [
               exists (sum [ v "ckey" ] (atom "customer"));
               lift cnt (sum [ v "ckey" ] (atom "orders"));
             ]) );
    ]

(* ------------------------------------------------------------------ *)
(* Q14: promotion effect (numerator and denominator maps)              *)
(* ------------------------------------------------------------------ *)

let q14 =
  let base extra =
    prod
      ([
         atom "lineitem";
         gte (x "l_sdate") (c_d (1995, 9, 1));
         lt (x "l_sdate") (c_d (1995, 10, 1));
         atom "part";
       ]
      @ extra
      @ [ revenue ])
  in
  q "Q14"
    [
      ( "Q14_promo",
        sum []
          (base
             [
               in_set (x "p_type")
                 [ "PROMO BRUSHED NICKEL"; "PROMO PLATED BRASS" ];
             ]) );
      ("Q14_total", sum [] (base []));
    ]

(* ------------------------------------------------------------------ *)
(* Q15: top supplier (MAX encoded as "no higher revenue": re-eval)     *)
(* ------------------------------------------------------------------ *)

let q15 =
  let filters renames =
    let e =
      prod
        [
          atom "lineitem";
          gte (x "l_sdate") (c_d (1996, 1, 1));
          lt (x "l_sdate") (c_d (1996, 4, 1));
          revenue;
        ]
    in
    match renames with None -> e | Some rs -> Calc.rename_by_assoc rs e
  in
  let rev = vr "total_rev" and rev2 = vr "total_rev2" and hc = vr "higher" in
  let sk2 = vr ~ty:TInt "skey2" in
  let inner =
    sum []
      (prod
         [
           lift rev2
             (sum [ sk2 ]
                (filters
                   (Some
                      [
                        ("skey", sk2); ("okey", vr ~ty:TInt "okey2");
                        ("pkey", vr ~ty:TInt "pkey2");
                        ("l_num", vr ~ty:TInt "l_num2");
                        ("l_qty", vr "l_qty2"); ("l_price", vr "l_price2");
                        ("l_disc", vr "l_disc2"); ("l_tax", vr "l_tax2");
                        ("l_rflag", vr ~ty:TString "l_rflag2");
                        ("l_status", vr ~ty:TString "l_status2");
                        ("l_sdate", vr ~ty:TDate "l_sdate2");
                        ("l_cdate", vr ~ty:TDate "l_cdate2");
                        ("l_rdate", vr ~ty:TDate "l_rdate2");
                        ("l_smode", vr ~ty:TString "l_smode2");
                      ])));
           gt (xv rev2) (xv rev);
         ])
  in
  q "Q15"
    [
      ( "Q15",
        sum
          [ v "skey" ]
          (prod
             [
               atom "supplier";
               lift rev (sum [ v "skey" ] (filters None));
               lift hc inner;
               eq (xv hc) (c_i 0);
               value (xv rev);
             ]) );
    ]

(* ------------------------------------------------------------------ *)
(* Q16: parts/supplier relationship (NOT EXISTS complaints)            *)
(* ------------------------------------------------------------------ *)

let q16 =
  let bad = vr "complaints" in
  q "Q16"
    [
      ( "Q16",
        sum
          [ v "p_brand"; v "p_type"; v "p_size" ]
          (exists
             (sum
                [ v "p_brand"; v "p_type"; v "p_size"; v "skey" ]
                (prod
                   [
                     atom "part";
                     neq (x "p_brand") (c_s "Brand#45");
                     in_set_i (x "p_size") [ 49; 14; 23; 45; 19; 3; 36; 9 ];
                     atom "partsupp";
                     lift bad
                       (sum [ v "skey" ]
                          (prod [ atom "supplier"; lt (x "s_acctbal") (c_f 0.) ]));
                     eq (xv bad) (c_i 0);
                   ]))) );
    ]

(* ------------------------------------------------------------------ *)
(* Q17: small-quantity-order revenue (correlated AVG, division-free)   *)
(* ------------------------------------------------------------------ *)

let li2_renames =
  [
    ("okey", Schema.var ~ty:Value.TInt "okey2");
    ("skey", Schema.var ~ty:Value.TInt "skey2");
    ("l_num", Schema.var ~ty:Value.TInt "l_num2");
    ("l_qty", Schema.var "l_qty2");
    ("l_price", Schema.var "l_price2");
    ("l_disc", Schema.var "l_disc2");
    ("l_tax", Schema.var "l_tax2");
    ("l_rflag", Schema.var ~ty:Value.TString "l_rflag2");
    ("l_status", Schema.var ~ty:Value.TString "l_status2");
    ("l_sdate", Schema.var ~ty:Value.TDate "l_sdate2");
    ("l_cdate", Schema.var ~ty:Value.TDate "l_cdate2");
    ("l_rdate", Schema.var ~ty:Value.TDate "l_rdate2");
    ("l_smode", Schema.var ~ty:Value.TString "l_smode2");
  ]

let q17 =
  let sq = vr "sum_qty" and cn = vr "cnt_qty" in
  (* l_qty < 0.2 * avg(qty) ⟺ 5·qty·cnt < sum (count ≥ 0, division-free) *)
  q "Q17"
    [
      ( "Q17",
        sum []
          (prod
             [
               atom "part";
               eq (x "p_brand") (c_s "Brand#23");
               eq (x "p_container") (c_s "MED BOX");
               atom "lineitem";
               lift sq
                 (sum [ v "pkey" ]
                    (prod
                       [ atomr "lineitem" li2_renames; value (xv (vr "l_qty2")) ]));
               lift cn (sum [ v "pkey" ] (atomr "lineitem" li2_renames));
               gt (xv sq) (mul (c_f 5.) (mul (x "l_qty") (xv cn)));
               value (Vexpr.Div (x "l_price", c_f 7.));
             ]) );
    ]

(* ------------------------------------------------------------------ *)
(* Q18: large volume customers (HAVING over nested sum)                *)
(* ------------------------------------------------------------------ *)

let q18 =
  let s = vr "sum_qty" in
  q "Q18"
    [
      ( "Q18",
        sum
          [ v "ckey"; v "okey" ]
          (prod
             [
               atom "customer";
               atom "orders";
               lift s
                 (sum [ v "okey" ]
                    (prod [ atom "lineitem"; value (x "l_qty") ]));
               gt (xv s) (c_f 150.);
               value (xv s);
             ]) );
    ]

(* ------------------------------------------------------------------ *)
(* Q19: discounted revenue (disjunctive clause)                        *)
(* ------------------------------------------------------------------ *)

let q19 =
  let clause brand containers qlo qhi size_hi =
    prod
      [
        eq (x "p_brand") (c_s brand);
        in_set (x "p_container") containers;
        gte (x "l_qty") (c_f qlo);
        lte (x "l_qty") (c_f qhi);
        lte (x "p_size") (c_i size_hi);
        in_set (x "l_smode") [ "AIR"; "AIR REG" ];
      ]
  in
  q "Q19"
    [
      ( "Q19",
        sum []
          (prod
             [
               atom "lineitem";
               atom "part";
               add
                 [
                   clause "Brand#12" [ "SM CASE"; "SM BOX" ] 1. 11. 5;
                   clause "Brand#23" [ "MED BAG"; "MED BOX" ] 10. 20. 10;
                   clause "Brand#34" [ "LG CASE"; "LG BOX" ] 20. 30. 15;
                 ];
               revenue;
             ]) );
    ]

(* ------------------------------------------------------------------ *)
(* Q20: potential part promotion                                       *)
(* ------------------------------------------------------------------ *)

let q20 =
  let e = vr "q20_exists" and sq = vr "ship_qty" in
  let inner =
    sum [ v "skey" ]
      (prod
         [
           atom "partsupp";
           exists
             (sum [ v "pkey" ]
                (prod [ atom "part"; eq (x "p_color") (c_i 3) ]));
           lift sq
             (sum
                [ v "pkey"; v "skey" ]
                (prod
                   [
                     atom "lineitem";
                     gte (x "l_sdate") (c_d (1994, 1, 1));
                     lt (x "l_sdate") (c_d (1995, 1, 1));
                     value (x "l_qty");
                   ]));
           gt (mul (c_f 2.) (x "ps_availqty")) (xv sq);
         ])
  in
  q "Q20"
    [
      ( "Q20",
        sum
          [ v "skey"; v "s_name" ]
          (prod
             [
               atom "supplier";
               atom "nation";
               eq (x "n_name") (c_s "NATION_04");
               lift e inner;
               neq (xv e) (c_i 0);
             ]) );
    ]

(* ------------------------------------------------------------------ *)
(* Q21: suppliers who kept orders waiting                              *)
(* ------------------------------------------------------------------ *)

let q21 =
  let e2 = vr "other_supp" and e3 = vr "other_late" in
  let sk2 = vr ~ty:TInt "skey2" and sk3 = vr ~ty:TInt "skey3" in
  let li2 =
    atomr "lineitem"
      (( "skey", sk2 ) :: ("pkey", vr ~ty:TInt "pkey2")
      :: List.filter
           (fun (n, _) -> n <> "okey" && n <> "skey" && n <> "pkey")
           li2_renames)
  in
  let li3 =
    atomr "lineitem"
      [
        ("skey", sk3); ("pkey", vr ~ty:TInt "pkey3");
        ("l_num", vr ~ty:TInt "l_num3"); ("l_qty", vr "l_qty3");
        ("l_price", vr "l_price3"); ("l_disc", vr "l_disc3");
        ("l_tax", vr "l_tax3"); ("l_rflag", vr ~ty:TString "l_rflag3");
        ("l_status", vr ~ty:TString "l_status3");
        ("l_sdate", vr ~ty:TDate "l_sdate3");
        ("l_cdate", vr ~ty:TDate "l_cdate3");
        ("l_rdate", vr ~ty:TDate "l_rdate3");
        ("l_smode", vr ~ty:TString "l_smode3");
      ]
  in
  q "Q21"
    [
      ( "Q21",
        sum
          [ v "skey"; v "s_name" ]
          (prod
             [
               atom "supplier";
               atom "nation";
               eq (x "n_name") (c_s "NATION_20");
               atom "lineitem";
               gt (x "l_rdate") (x "l_cdate");
               atom "orders";
               eq (x "o_status") (c_s "F");
               lift e2 (sum [ v "okey" ] (prod [ li2; neq (xv sk2) (x "skey") ]));
               neq (xv e2) (c_i 0);
               lift e3
                 (sum [ v "okey" ]
                    (prod
                       [
                         li3;
                         neq (xv sk3) (x "skey");
                         gt (xv (vr ~ty:TDate "l_rdate3"))
                           (xv (vr ~ty:TDate "l_cdate3"));
                       ]));
               eq (xv e3) (c_i 0);
             ]) );
    ]

(* ------------------------------------------------------------------ *)
(* Q22: global sales opportunity                                       *)
(* ------------------------------------------------------------------ *)

let q22 =
  let sa = vr "sum_bal" and ca = vr "cnt_bal" and oc = vr "order_cnt" in
  let ck2 = vr ~ty:TInt "ckey2" in
  let cust2 =
    atomr "customer"
      [
        ("ckey", ck2); ("c_name", vr ~ty:TString "c_name2");
        ("nkey", vr ~ty:TInt "nkey2");
        ("c_mktsegment", vr ~ty:TString "c_mktsegment2");
        ("c_acctbal", vr "c_acctbal2"); ("c_cc", vr ~ty:TInt "c_cc2");
      ]
  in
  let cc_set = [ 13; 31; 23; 29; 30; 18; 17 ] in
  q "Q22"
    [
      ( "Q22",
        sum
          [ v "c_cc" ]
          (prod
             [
               atom "customer";
               in_set_i (x "c_cc") cc_set;
               (* average positive balance, division-free:
                  acctbal·cnt > sum ⟺ acctbal > avg *)
               lift sa
                 (sum []
                    (prod
                       [
                         cust2;
                         in_set_i (xv (vr ~ty:TInt "c_cc2")) cc_set;
                         gt (xv (vr "c_acctbal2")) (c_f 0.);
                         value (xv (vr "c_acctbal2"));
                       ]));
               lift ca
                 (sum []
                    (prod
                       [
                         cust2;
                         in_set_i (xv (vr ~ty:TInt "c_cc2")) cc_set;
                         gt (xv (vr "c_acctbal2")) (c_f 0.);
                       ]));
               gt (mul (x "c_acctbal") (xv ca)) (xv sa);
               lift oc (sum [ v "ckey" ] (atom "orders"));
               eq (xv oc) (c_i 0);
               value (x "c_acctbal");
             ]) );
    ]

(* ------------------------------------------------------------------ *)

let all =
  [
    q1; q2; q3; q4; q5; q6; q7; q8; q9; q10; q11; q12; q13; q14; q15; q16;
    q17; q18; q19; q20; q21; q22;
  ]

let find name =
  match List.find_opt (fun q -> String.equal q.qname name) all with
  | Some q -> q
  | None -> invalid_arg ("Tpch.Queries.find: unknown query " ^ name)

let distributed_subset =
  [ "Q1"; "Q2"; "Q3"; "Q4"; "Q6"; "Q7"; "Q8"; "Q10"; "Q11"; "Q12"; "Q13";
    "Q14"; "Q17"; "Q19"; "Q22" ]
