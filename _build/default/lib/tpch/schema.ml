open Divm_ring
open Value

let v' name ty = Schema.var ~ty name

(* Join keys share one canonical variable name across relations, so that
   natural joins in the calculus link them without explicit predicates;
   queries that need distinct instances rename at the use site. *)
let rkey = v' "rkey" TInt
let nkey = v' "nkey" TInt
let skey = v' "skey" TInt
let ckey = v' "ckey" TInt
let pkey = v' "pkey" TInt
let okey = v' "okey" TInt

let region = [ rkey; v' "r_name" TString ]
let nation = [ nkey; v' "n_name" TString; rkey ]
let supplier = [ skey; v' "s_name" TString; nkey; v' "s_acctbal" TFloat ]

let customer =
  [
    ckey;
    v' "c_name" TString;
    nkey;
    v' "c_mktsegment" TString;
    v' "c_acctbal" TFloat;
    v' "c_cc" TInt (* phone country code, stands in for substring(c_phone) *);
  ]

let part =
  [
    pkey;
    v' "p_color" TInt (* stands in for LIKE patterns over p_name *);
    v' "p_mfgr" TString;
    v' "p_brand" TString;
    v' "p_type" TString;
    v' "p_size" TInt;
    v' "p_container" TString;
  ]

let partsupp = [ pkey; skey; v' "ps_availqty" TInt; v' "ps_supplycost" TFloat ]

let orders =
  [
    okey;
    ckey;
    v' "o_status" TString;
    v' "o_totalprice" TFloat;
    v' "o_date" TDate;
    v' "o_priority" TString;
    v' "o_spriority" TInt;
  ]

let lineitem =
  [
    okey;
    pkey;
    skey;
    v' "l_num" TInt;
    v' "l_qty" TFloat;
    v' "l_price" TFloat;
    v' "l_disc" TFloat;
    v' "l_tax" TFloat;
    v' "l_rflag" TString;
    v' "l_status" TString;
    v' "l_sdate" TDate;
    v' "l_cdate" TDate;
    v' "l_rdate" TDate;
    v' "l_smode" TString;
  ]

let streams =
  [
    ("lineitem", lineitem);
    ("orders", orders);
    ("customer", customer);
    ("part", part);
    ("partsupp", partsupp);
    ("supplier", supplier);
    ("nation", nation);
    ("region", region);
  ]

let all_vars =
  List.concat_map snd streams
  |> List.fold_left
       (fun acc (x : Schema.var) ->
         if List.exists (fun (y : Schema.var) -> y.name = x.name) acc then acc
         else x :: acc)
       []

let v name =
  match List.find_opt (fun (x : Schema.var) -> x.name = name) all_vars with
  | Some x -> x
  | None -> invalid_arg ("Tpch.Schema.v: unknown column " ^ name)

let partition_keys = [ "okey"; "ckey"; "pkey"; "skey"; "nkey"; "rkey" ]
