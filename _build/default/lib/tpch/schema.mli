(** The TPC-H schema in its streaming form (§6): the eight base relations,
    with the columns the streaming query workload uses, as typed calculus
    variables. Dates are [yyyymmdd] ints; identifiers are dense ints. *)

open Divm_ring

(** Column variables of each relation, in declaration order. *)
val region : Schema.t

val nation : Schema.t
val supplier : Schema.t
val customer : Schema.t
val part : Schema.t
val partsupp : Schema.t
val orders : Schema.t
val lineitem : Schema.t

(** All eight relations as (name, columns). *)
val streams : (string * Schema.t) list

(** Variable lookup by name, e.g. [v "l_orderkey"]. Raises on unknown. *)
val v : string -> Schema.var

(** Partitioning keys in decreasing cardinality (§6.2 heuristic):
    ["l_orderkey"; "o_orderkey"; ...]. *)
val partition_keys : string list
