lib/tpch/load.ml: Divm_ring Filename Gmr Hashtbl List Printf Schema String Sys Value
