lib/tpch/gen.mli: Divm_ring Gmr Vtuple
