lib/tpch/queries.ml: Calc Divm_calc Divm_ring List Schema String Value Vexpr
