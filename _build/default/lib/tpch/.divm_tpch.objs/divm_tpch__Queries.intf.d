lib/tpch/queries.mli: Calc Divm_calc
