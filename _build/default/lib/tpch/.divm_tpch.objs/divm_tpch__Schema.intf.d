lib/tpch/schema.mli: Divm_ring Schema
