lib/tpch/load.mli: Divm_ring Gmr Vtuple
