lib/tpch/gen.ml: Array Divm_ring Gmr Hashtbl List Printf Random Schema Value Vtuple
