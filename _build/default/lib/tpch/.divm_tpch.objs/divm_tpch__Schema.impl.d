lib/tpch/schema.ml: Divm_ring List Schema Value
