(** The TPC-H query workload in its streaming form (§6, [22]): ORDER
    BY/LIMIT are dropped and each query maintains its group-by aggregates;
    AVG-style ratios are maintained as separate numerator/denominator maps.

    Textual predicates are mapped onto the synthetic schema: [LIKE] patterns
    over names become equality on the generated category columns
    ([p_color], [p_type]), phone-prefix tests use the integer country code
    [c_cc], and comment-based filters use value predicates of the same
    selectivity class. MIN/MAX nested aggregates (Q2, Q15) use the standard
    calculus encoding ("no element compares better"), which the compiler's
    §3.2.3 analysis then handles like the paper (incremental when the
    nested domain is equality-correlated, re-evaluation otherwise). *)

open Divm_calc

type t = {
  qname : string;
  maps : (string * Calc.expr) list;  (** top-level result maps *)
}

(** Q1 … Q22, in order. *)
val all : t list

val find : string -> t

(** Queries used in the paper's distributed experiments (Fig. 9–11). *)
val distributed_subset : string list
