lib/storage/colbatch.mli: Divm_ring Gmr Value Vtuple
