lib/storage/pool.ml: Array Bool Divm_ring Float Gmr List Trace Vtuple
