lib/storage/trace.mli:
