lib/storage/trace.ml:
