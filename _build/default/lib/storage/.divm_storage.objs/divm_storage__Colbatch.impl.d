lib/storage/colbatch.ml: Array Divm_ring Gmr Value
