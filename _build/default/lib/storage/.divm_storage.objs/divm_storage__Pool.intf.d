lib/storage/pool.mli: Divm_ring Gmr Vtuple
