type kind = Read | Write

let sink : (int -> kind -> unit) option ref = ref None
let next_addr = ref 0x1000
let set_sink s = sink := s
let enabled () = !sink <> None

let emit addr kind =
  match !sink with None -> () | Some f -> f addr kind

let alloc_region bytes =
  let base = !next_addr in
  (* 64-byte align regions so distinct pools never share a cache line *)
  next_addr := base + ((bytes + 63) / 64 * 64);
  base

let reset () = next_addr := 0x1000
