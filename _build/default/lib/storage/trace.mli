(** Optional instrumentation of storage accesses.

    When a sink is installed, every record access reports a pseudo-address
    (stable per record) so a cache simulator can replay the access stream —
    the Table 2 experiment. The hooks are free when disabled. *)

type kind = Read | Write

(** [set_sink (Some f)] installs [f addr kind]; [None] disables tracing. *)
val set_sink : (int -> kind -> unit) option -> unit

val enabled : unit -> bool
val emit : int -> kind -> unit

(** Allocate a fresh address region of [bytes] bytes; returns the base
    address. Used by pools to place their records in a fake address space. *)
val alloc_region : int -> int

(** Reset the fake address space (does not clear the sink). *)
val reset : unit -> unit
