(** Column-oriented update batches (§5.2.2).

    Input batches and shuffled view contents travel in columnar form: one
    value array per attribute plus a multiplicity array. Filtering and
    projection scan single columns (cache-friendly); row transformers
    convert to and from row-oriented GMRs/pools. *)

open Divm_ring

type t

val width : t -> int
val length : t -> int

(** Row-to-column transformer. [width] must be the tuple width; empty GMRs
    need it to be supplied explicitly. *)
val of_gmr : width:int -> Gmr.t -> t

(** Column-to-row transformer. *)
val to_gmr : t -> Gmr.t

val column : t -> int -> Value.t array
val mults : t -> float array

(** [iter_rows b f] calls [f tuple mult] per row (tuples are fresh). *)
val iter_rows : t -> (Vtuple.t -> float -> unit) -> unit

(** [filter b pred] keeps the rows whose index satisfies [pred] (the
    predicate reads columns directly). *)
val filter : t -> (int -> bool) -> t

(** [project b keep] keeps the columns at positions [keep]. *)
val project : t -> int array -> t

(** [aggregate b] merges equal rows, summing multiplicities (the row-format
    output is the pre-aggregated batch). *)
val aggregate : t -> Gmr.t

(** Serialized size in bytes. *)
val byte_size : t -> int
