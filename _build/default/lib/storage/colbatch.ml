open Divm_ring

type t = {
  columns : Value.t array array; (* [width][length] *)
  mults : float array;
  n : int;
}

let width t = Array.length t.columns
let length t = t.n

let of_gmr ~width g =
  let n = Gmr.cardinal g in
  let columns = Array.init width (fun _ -> Array.make n (Value.Int 0)) in
  let mults = Array.make n 0. in
  let i = ref 0 in
  Gmr.iter
    (fun tup m ->
      for c = 0 to width - 1 do
        columns.(c).(!i) <- tup.(c)
      done;
      mults.(!i) <- m;
      incr i)
    g;
  { columns; mults; n }

let to_gmr t =
  let g = Gmr.create ~size:t.n () in
  let w = width t in
  for i = 0 to t.n - 1 do
    let tup = Array.init w (fun c -> t.columns.(c).(i)) in
    Gmr.add g tup t.mults.(i)
  done;
  g

let column t c = t.columns.(c)
let mults t = t.mults

let iter_rows t f =
  let w = width t in
  for i = 0 to t.n - 1 do
    f (Array.init w (fun c -> t.columns.(c).(i))) t.mults.(i)
  done

let filter t pred =
  let keep = ref [] in
  for i = t.n - 1 downto 0 do
    if pred i then keep := i :: !keep
  done;
  let keep = Array.of_list !keep in
  let n = Array.length keep in
  {
    columns =
      Array.map (fun col -> Array.init n (fun j -> col.(keep.(j)))) t.columns;
    mults = Array.init n (fun j -> t.mults.(keep.(j)));
    n;
  }

let project t keep =
  { t with columns = Array.map (fun c -> t.columns.(c)) keep }

let aggregate t = to_gmr t

let byte_size t =
  let acc = ref (8 * t.n) in
  Array.iter
    (fun col -> Array.iter (fun v -> acc := !acc + Value.byte_size v) col)
    t.columns;
  !acc
