lib/calc/calc.mli: Divm_ring Format Schema Value Vexpr
