lib/calc/vexpr.mli: Divm_ring Format Schema Value
