lib/calc/calc.ml: Divm_ring Float Format Gmr Hashtbl List Printf Schema String Value Vexpr
