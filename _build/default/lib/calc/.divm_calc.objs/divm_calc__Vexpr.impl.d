lib/calc/vexpr.ml: Divm_ring Float Format Schema Value
