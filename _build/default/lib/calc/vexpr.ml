open Divm_ring

type t =
  | Const of Value.t
  | Var of Schema.var
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Neg of t
  | Min of t * t
  | Max of t * t
  | Floor of t

let const_f f = Const (Value.Float f)
let const_i i = Const (Value.Int i)
let var v = Var v

let rec vars = function
  | Const _ -> []
  | Var v -> [ v ]
  | Floor a -> vars a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Min (a, b) | Max (a, b)
    ->
      Schema.union (vars a) (vars b)
  | Neg a -> vars a

let rec eval lookup = function
  | Const v -> v
  | Var v -> lookup v
  | Add (a, b) -> Value.add (eval lookup a) (eval lookup b)
  | Sub (a, b) -> Value.sub (eval lookup a) (eval lookup b)
  | Mul (a, b) -> Value.mul (eval lookup a) (eval lookup b)
  | Div (a, b) -> Value.div (eval lookup a) (eval lookup b)
  | Neg a -> Value.neg (eval lookup a)
  | Floor a -> Value.Int (int_of_float (Float.floor (Value.to_float (eval lookup a))))
  | Min (a, b) ->
      let x = eval lookup a and y = eval lookup b in
      if Value.compare x y <= 0 then x else y
  | Max (a, b) ->
      let x = eval lookup a and y = eval lookup b in
      if Value.compare x y >= 0 then x else y

let rec rename f = function
  | Const v -> Const v
  | Var v -> Var (f v)
  | Add (a, b) -> Add (rename f a, rename f b)
  | Sub (a, b) -> Sub (rename f a, rename f b)
  | Mul (a, b) -> Mul (rename f a, rename f b)
  | Div (a, b) -> Div (rename f a, rename f b)
  | Neg a -> Neg (rename f a)
  | Floor a -> Floor (rename f a)
  | Min (a, b) -> Min (rename f a, rename f b)
  | Max (a, b) -> Max (rename f a, rename f b)

let rec equal a b =
  match (a, b) with
  | Const x, Const y -> Value.equal x y
  | Var x, Var y -> Schema.var_equal x y
  | Add (a1, a2), Add (b1, b2)
  | Sub (a1, a2), Sub (b1, b2)
  | Mul (a1, a2), Mul (b1, b2)
  | Div (a1, a2), Div (b1, b2)
  | Min (a1, a2), Min (b1, b2)
  | Max (a1, a2), Max (b1, b2) ->
      equal a1 b1 && equal a2 b2
  | Neg x, Neg y | Floor x, Floor y -> equal x y
  | _ -> false

let rec pp ppf = function
  | Const v -> Value.pp ppf v
  | Var v -> Schema.pp_var ppf v
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp a pp b
  | Div (a, b) -> Format.fprintf ppf "(%a / %a)" pp a pp b
  | Neg a -> Format.fprintf ppf "(-%a)" pp a
  | Floor a -> Format.fprintf ppf "floor(%a)" pp a
  | Min (a, b) -> Format.fprintf ppf "min(%a, %a)" pp a pp b
  | Max (a, b) -> Format.fprintf ppf "max(%a, %a)" pp a pp b
