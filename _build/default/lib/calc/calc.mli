(** The query calculus of §3.1 / Appendix A over generalized multiset
    relations.

    Expressions denote GMRs: finite maps from tuples (over the expression's
    output variables) to real multiplicities. Information about bound
    variables flows left-to-right through products (§3.2.1): in
    [Prod [R(A); S(A)]] the left factor binds [A], the right factor is a
    lookup.

    Negation is not a primitive: [neg e] is sugar for [Const (-1) * e],
    matching the paper ("−Q is syntactic sugar for (−1) ⋈ Q"). *)

open Divm_ring

type cmp_op = Eq | Neq | Lt | Lte | Gt | Gte

(** Base-relation atom: name plus the variables naming its columns. *)
type rel = { rname : string; rvars : Schema.t }

(** Materialized-view (map) access atom. *)
type map_access = { mname : string; mvars : Schema.t }

type expr =
  | Const of float  (** singleton over the empty tuple *)
  | Value of Vexpr.t  (** interpreted relation; all vars must be bound *)
  | Cmp of cmp_op * Vexpr.t * Vexpr.t  (** 0/1 filter *)
  | Rel of rel  (** base-table contents *)
  | DeltaRel of rel  (** the current update batch ΔR *)
  | Map of map_access  (** materialized view *)
  | Lift of Schema.var * expr  (** var := Q (generalized assignment) *)
  | Exists of expr  (** non-zero multiplicities become 1 *)
  | Sum of Schema.t * expr  (** multiplicity-preserving projection *)
  | Prod of expr list  (** natural join *)
  | Add of expr list  (** bag union *)

(** {1 Smart constructors} — they flatten and apply ring identities
    ([x*1 = x], [x*0 = 0], [x+0 = x]). *)

val one : expr
val zero : expr
val const : float -> expr
val rel : string -> Schema.t -> expr
val delta_rel : string -> Schema.t -> expr
val map_ : string -> Schema.t -> expr
val prod : expr list -> expr
val add : expr list -> expr
val neg : expr -> expr
val sum : Schema.t -> expr -> expr
val lift : Schema.var -> expr -> expr
val exists : expr -> expr
val cmp : cmp_op -> Vexpr.t -> Vexpr.t -> expr
val value : Vexpr.t -> expr

(** [cmp_vars op a b] compares two variables. *)
val cmp_vars : cmp_op -> Schema.var -> Schema.var -> expr

val is_zero : expr -> bool
val is_one : expr -> bool

(** {1 Analysis} *)

(** Output variables given the set of already-bound variables.
    Raises [Type_error] on malformed expressions (e.g. a [Value] with an
    unbound variable, or union members with differing schemas). *)
val schema : ?bound:Schema.t -> expr -> Schema.t

exception Type_error of string

(** All variables appearing anywhere in the expression. *)
val all_vars : expr -> Schema.t

(** Free input variables: the variables the expression requires from its
    evaluation context (comparison/value operands and correlations not
    produced internally). Relation/map atoms bind their own columns and
    require none. *)
val inputs : ?bound:Schema.t -> expr -> Schema.t

(** Names of base relations referenced (via [Rel]). *)
val base_rels : expr -> string list

(** Names of delta relations referenced (via [DeltaRel]). *)
val delta_rels : expr -> string list

(** Names of maps referenced (via [Map]). *)
val map_refs : expr -> string list

val has_base_rels : expr -> bool
val has_deltas : expr -> bool

(** Degree: the maximum number of relation-or-map atoms multiplied together
    in any monomial — the complexity measure of §3.2. *)
val degree : expr -> int

(** {1 Transformations} *)

(** [rename f e] renames every variable occurrence (column vars, lift vars,
    group-by vars). [f] must be injective on the variables of [e]. *)
val rename : (Schema.var -> Schema.var) -> expr -> expr

(** [rename_by_assoc assoc e] renames via an association list (by name);
    unlisted variables are unchanged. *)
val rename_by_assoc : (string * Schema.var) list -> expr -> expr

(** Structural equality (variables compared by name). *)
val equal : expr -> expr -> bool

(** [alpha_canon ~keep e] canonically renames every variable not in [keep]
    to ["!cN"] in traversal order, giving alpha-equivalence-modulo-[keep]
    comparability via [equal]. *)
val alpha_canon : keep:Schema.t -> expr -> expr

val pp : Format.formatter -> expr -> unit

(** Comma-separated variable list (no brackets). *)
val pp_vars : Format.formatter -> Schema.t -> unit

val to_string : expr -> string

(** Multiplicity of truth: [of_bool true = 1.], [of_bool false = 0.]. *)
val eval_cmp : cmp_op -> Value.t -> Value.t -> bool
