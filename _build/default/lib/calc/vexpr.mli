(** Arithmetic value expressions over bound variables (the "value"
    interpreted relations of §3.1): every variable they mention must be bound
    by the surrounding expression before they are evaluated. *)

open Divm_ring

type t =
  | Const of Value.t
  | Var of Schema.var
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Neg of t
  | Min of t * t
  | Max of t * t
  | Floor of t

val const_f : float -> t
val const_i : int -> t
val var : Schema.var -> t

(** Variables mentioned, without duplicates. *)
val vars : t -> Schema.t

(** [eval lookup e] evaluates with [lookup] resolving variables. Raises
    [Not_found] on an unbound variable. *)
val eval : (Schema.var -> Value.t) -> t -> Value.t

(** [rename f e] applies a variable renaming. *)
val rename : (Schema.var -> Schema.var) -> t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
