(** Experiment-harness helpers: timing, aligned table printing, scaled
    workload configuration.

    The default run is scaled down so that every experiment finishes on a
    laptop in seconds; set [DIVM_BENCH=full] for larger streams. Ratios and
    shapes, not absolute numbers, are the reproduction target (DESIGN.md). *)

let full_mode =
  match Sys.getenv_opt "DIVM_BENCH" with
  | Some ("full" | "FULL") -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Timing                                                              *)
(* ------------------------------------------------------------------ *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let time_unit f = snd (time f)

let median l =
  match List.sort compare l with
  | [] -> nan
  | s ->
      let n = List.length s in
      List.nth s (n / 2)

(* ------------------------------------------------------------------ *)
(* Table printing                                                      *)
(* ------------------------------------------------------------------ *)

let hr width = String.make width '-'

let print_table ~title ~header rows =
  let cols = List.length header in
  let widths = Array.make cols 0 in
  List.iteri (fun i h -> widths.(i) <- String.length h) header;
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if i < cols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let pad i s = Printf.sprintf "%*s" widths.(i) s in
  let line row = String.concat "  " (List.mapi pad row) in
  let total = Array.fold_left ( + ) (2 * (cols - 1)) widths in
  Printf.printf "\n== %s ==\n%s\n%s\n" title (line header) (hr total);
  List.iter (fun row -> print_endline (line row)) rows;
  print_newline ()

let fmt_rate r =
  if Float.is_nan r || Float.is_integer r && r = 0. then "-"
  else if r >= 1e6 then Printf.sprintf "%.2fM" (r /. 1e6)
  else if r >= 1e3 then Printf.sprintf "%.1fk" (r /. 1e3)
  else Printf.sprintf "%.0f" r

let fmt_sec s =
  if Float.is_nan s then "-"
  else if s >= 1. then Printf.sprintf "%.2fs" s
  else Printf.sprintf "%.0fms" (s *. 1000.)

let fmt_bytes b =
  let f = float_of_int b in
  if f >= 1e6 then Printf.sprintf "%.1fMB" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.1fKB" (f /. 1e3)
  else Printf.sprintf "%dB" b

let fmt_ratio r =
  if Float.is_nan r then "-" else Printf.sprintf "%.2fx" r

(* ------------------------------------------------------------------ *)
(* Workload scales                                                     *)
(* ------------------------------------------------------------------ *)

(* TPC-H stream scale for local experiments (≈6k lineitems per unit). *)
let tpch_scale = if full_mode then 4.0 else 0.8
let tpcds_scale = if full_mode then 4.0 else 1.0

(* Batch sizes swept in the local experiments (the paper uses 1..100k on a
   10 GB stream; the scaled stream keeps the same decades that fit). *)
let batch_sizes = if full_mode then [ 1; 10; 100; 1000; 10000 ] else [ 1; 10; 100; 1000 ]

(* Worker counts for the cluster experiments (the paper uses 25–1000). *)
let worker_counts = if full_mode then [ 4; 8; 16; 32; 64; 128 ] else [ 4; 8; 16; 32 ]

(* Simulation scale: paper batch sizes divided by [dist_div]. *)
let dist_div = if full_mode then 500 else 4000
