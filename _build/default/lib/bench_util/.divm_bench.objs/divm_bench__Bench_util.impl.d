lib/bench_util/bench_util.ml: Array Float List Printf String Sys Unix
