lib/cluster/cluster.mli: Divm_dist Divm_ring Dprog Gmr
