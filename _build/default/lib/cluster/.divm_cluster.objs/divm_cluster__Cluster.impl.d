lib/cluster/cluster.ml: Array Divm_calc Divm_compiler Divm_dist Divm_ring Divm_runtime Dprog Gmr List Loc Marshal Printf Prog Runtime Vtuple
