module Tsch = Schema
open Divm_ring
open Divm_calc
open Divm_calc.Calc

(* The 13 TPC-DS queries of Table 1 (3, 7, 19, 27, 34, 42, 43, 46, 52, 55,
   68, 73, 79) over the reduced star schema, in streaming form. The four
   OVER-clause queries of [23] are excluded like in the paper. Queries 34,
   46, 68, 73 and 79 keep their per-ticket nested aggregates (HAVING-style
   count/sum conditions), which exercise the domain-extraction path. *)

type t = { qname : string; maps : (string * Calc.expr) list }

let atom name = Calc.rel name (List.assoc name Tsch.streams)
let v = Tsch.v
let x n = Vexpr.var (v n)
let xv vv = Vexpr.var vv
let c_f = Vexpr.const_f
let c_i = Vexpr.const_i
let c_s s = Vexpr.Const (Value.String s)
let vr ?(ty = Value.TFloat) n = Schema.var ~ty n
let eq a b = cmp Eq a b
let gte a b = cmp Gte a b
let lte a b = cmp Lte a b
let gt a b = cmp Gt a b
let lt a b = cmp Lt a b
let q qname maps = { qname; maps }

let ds3 =
  q "DS3"
    [
      ( "DS3",
        sum
          [ v "d_year"; v "i_brand_id" ]
          (prod
             [
               atom "date_dim";
               eq (x "d_moy") (c_i 11);
               atom "store_sales";
               atom "item";
               eq (x "i_manufact_id") (c_i 5);
               value (x "ss_ext_sales_price");
             ]) );
    ]

let ds7 =
  q "DS7"
    [
      ( "DS7",
        sum [ v "isk" ]
          (prod
             [
               atom "customer_demographics";
               eq (x "cd_gender") (c_s "F");
               eq (x "cd_marital") (c_s "M");
               atom "store_sales";
               atom "date_dim";
               eq (x "d_year") (c_i 1999);
               value (x "ss_quantity");
             ]) );
    ]

let ds19 =
  q "DS19"
    [
      ( "DS19",
        sum
          [ v "i_brand_id" ]
          (prod
             [
               atom "date_dim";
               eq (x "d_moy") (c_i 11);
               eq (x "d_year") (c_i 1999);
               atom "store_sales";
               atom "item";
               eq (x "i_manager_id") (c_i 7);
               atom "customer";
               atom "store";
               value (x "ss_ext_sales_price");
             ]) );
    ]

let ds27 =
  q "DS27"
    [
      ( "DS27",
        sum
          [ v "isk"; v "s_county" ]
          (prod
             [
               atom "customer_demographics";
               eq (x "cd_gender") (c_s "M");
               eq (x "cd_marital") (c_s "S");
               eq (x "cd_edu") (c_s "College");
               atom "store_sales";
               atom "date_dim";
               eq (x "d_year") (c_i 1998);
               atom "store";
               value (x "ss_quantity");
             ]) );
    ]

(* Per-ticket basket-size queries: count (or sum) the items of each
   (customer, ticket) pair under dimension filters, then keep the tickets
   whose aggregate falls in a band — the nested-aggregate pattern. *)
let basket qname ~agg_value ~lo ~hi ~dim_filters =
  let cnt = vr "basket_agg" in
  let inner =
    sum
      [ v "csk"; v "ss_ticket" ]
      (prod ([ atom "store_sales" ] @ dim_filters @ agg_value))
  in
  q qname
    [
      ( qname,
        sum
          [ v "csk"; v "ss_ticket" ]
          (prod
             ([ exists inner; lift cnt inner ]
             @ [ gte (xv cnt) lo; lte (xv cnt) hi ])) );
    ]

let ds34 =
  basket "DS34" ~agg_value:[] ~lo:(c_f 15.) ~hi:(c_f 20.)
    ~dim_filters:
      [
        atom "date_dim";
        add [ lte (x "d_dom") (c_i 3); gte (x "d_dom") (c_i 25) ];
        atom "household_demographics";
        gt (x "hd_dep_count") (c_i 5);
      ]

let ds42 =
  q "DS42"
    [
      ( "DS42",
        sum
          [ v "d_year"; v "i_category_id" ]
          (prod
             [
               atom "date_dim";
               eq (x "d_moy") (c_i 11);
               atom "store_sales";
               atom "item";
               value (x "ss_ext_sales_price");
             ]) );
    ]

let ds43 =
  q "DS43"
    [
      ( "DS43",
        sum
          [ v "ssk"; v "d_dow" ]
          (prod
             [
               atom "date_dim";
               eq (x "d_year") (c_i 1998);
               atom "store_sales";
               atom "store";
               value (x "ss_sales_price");
             ]) );
    ]

let ds46 =
  basket "DS46"
    ~agg_value:[ value (x "ss_coupon_amt") ]
    ~lo:(c_f 0.00001) ~hi:(c_f 1e12)
    ~dim_filters:
      [
        atom "date_dim";
        add [ eq (x "d_dow") (c_i 6); eq (x "d_dow") (c_i 0) ];
        atom "household_demographics";
        gt (x "hd_vehicle_count") (c_i 2);
      ]

let ds52 =
  q "DS52"
    [
      ( "DS52",
        sum
          [ v "d_year"; v "i_brand_id" ]
          (prod
             [
               atom "date_dim";
               eq (x "d_moy") (c_i 12);
               atom "store_sales";
               atom "item";
               eq (x "i_manager_id") (c_i 1);
               value (x "ss_ext_sales_price");
             ]) );
    ]

let ds55 =
  q "DS55"
    [
      ( "DS55",
        sum
          [ v "i_brand_id" ]
          (prod
             [
               atom "date_dim";
               eq (x "d_moy") (c_i 11);
               eq (x "d_year") (c_i 1999);
               atom "store_sales";
               atom "item";
               eq (x "i_manager_id") (c_i 28);
               value (x "ss_ext_sales_price");
             ]) );
    ]

let ds68 =
  let ext = vr "sum_ext" and lst = vr "sum_list" in
  let mk value_term =
    sum
      [ v "csk"; v "ss_ticket" ]
      (prod
         [
           atom "store_sales";
           atom "date_dim";
           add [ lte (x "d_dom") (c_i 2); gte (x "d_dom") (c_i 27) ];
           atom "household_demographics";
           gt (x "hd_dep_count") (c_i 4);
           value_term;
         ])
  in
  q "DS68"
    [
      ( "DS68",
        sum
          [ v "csk"; v "ss_ticket" ]
          (prod
             [
               exists (mk (value (x "ss_ext_sales_price")));
               lift ext (mk (value (x "ss_ext_sales_price")));
               lift lst (mk (value (x "ss_list_price")));
               lt (xv ext) (xv lst);
             ]) );
    ]

let ds73 =
  basket "DS73" ~agg_value:[] ~lo:(c_f 1.) ~hi:(c_f 5.)
    ~dim_filters:
      [
        atom "date_dim";
        add [ lte (x "d_dom") (c_i 2); gte (x "d_dom") (c_i 26) ];
        atom "household_demographics";
        gt (x "hd_vehicle_count") (c_i 1);
      ]

let ds79 =
  let prof = vr "sum_profit" in
  let inner =
    sum
      [ v "csk"; v "ss_ticket" ]
      (prod
         [
           atom "store_sales";
           atom "date_dim";
           eq (x "d_dow") (c_i 1);
           atom "household_demographics";
           gt (x "hd_dep_count") (c_i 3);
           atom "store";
           value (x "ss_net_profit");
         ])
  in
  q "DS79"
    [
      ( "DS79",
        sum
          [ v "csk"; v "ss_ticket" ]
          (prod
             [ exists inner; lift prof inner; gt (xv prof) (c_f 0.); value (xv prof) ]) );
    ]

let all =
  [ ds3; ds7; ds19; ds27; ds34; ds42; ds43; ds46; ds52; ds55; ds68; ds73; ds79 ]

let find name =
  match List.find_opt (fun q -> String.equal q.qname name) all with
  | Some q -> q
  | None -> invalid_arg ("Tpcds.Queries.find: unknown query " ^ name)
