(** Reduced TPC-DS star schema: the store_sales fact table and the
    dimensions the Table 1 query subset of the paper touches, as typed
    calculus variables. Surrogate keys share one canonical variable per
    dimension so natural joins link fact to dimension. *)

open Divm_ring

val store_sales : Schema.t
val date_dim : Schema.t
val item : Schema.t
val customer : Schema.t
val store : Schema.t
val household_demographics : Schema.t
val customer_demographics : Schema.t
val customer_address : Schema.t

(** All relations as (name, columns). *)
val streams : (string * Schema.t) list

(** Column lookup by name; raises on unknown. *)
val v : string -> Schema.var

(** Partitioning keys in decreasing cardinality (the §6.2 heuristic). *)
val partition_keys : string list
