lib/tpcds/queries.mli: Calc Divm_calc
