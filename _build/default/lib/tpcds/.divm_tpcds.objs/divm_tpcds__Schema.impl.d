lib/tpcds/schema.ml: Divm_ring List Schema Value
