lib/tpcds/schema.mli: Divm_ring Schema
