lib/tpcds/gen.ml: Array Divm_ring Gmr List Random Schema Value Vtuple
