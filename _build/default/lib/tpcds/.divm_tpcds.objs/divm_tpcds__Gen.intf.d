lib/tpcds/gen.mli: Divm_ring Gmr
