(** The 13 TPC-DS queries of the paper's Table 1 (3, 7, 19, 27, 34, 42,
    43, 46, 52, 55, 68, 73, 79) over the reduced star schema, in streaming
    form; the four OVER-clause queries of the source workload are excluded
    like in the paper. Queries 34, 46, 68, 73 and 79 keep their per-ticket
    nested aggregates (HAVING-style conditions), which exercise the
    domain-extraction path. *)

open Divm_calc

type t = { qname : string; maps : (string * Calc.expr) list }

val all : t list
val find : string -> t
