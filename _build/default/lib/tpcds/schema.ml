open Divm_ring
open Value

(* Reduced TPC-DS star schema: the store_sales fact table plus the
   dimensions the Table 1 query subset touches. Surrogate keys share one
   canonical variable per dimension so natural joins link fact to
   dimension. *)

let v' name ty = Schema.var ~ty name
let dsk = v' "dsk" TInt (* date_dim surrogate *)
let isk = v' "isk" TInt (* item *)
let csk = v' "csk" TInt (* customer *)
let cdsk = v' "cdsk" TInt (* customer_demographics *)
let hdsk = v' "hdsk" TInt (* household_demographics *)
let cask = v' "cask" TInt (* customer_address *)
let ssk = v' "ssk" TInt (* store *)

let store_sales =
  [
    dsk; isk; csk; cdsk; hdsk; cask; ssk;
    v' "ss_ticket" TInt;
    v' "ss_quantity" TFloat;
    v' "ss_list_price" TFloat;
    v' "ss_sales_price" TFloat;
    v' "ss_ext_sales_price" TFloat;
    v' "ss_coupon_amt" TFloat;
    v' "ss_net_profit" TFloat;
  ]

let date_dim =
  [ dsk; v' "d_year" TInt; v' "d_moy" TInt; v' "d_dom" TInt; v' "d_dow" TInt ]

let item =
  [
    isk;
    v' "i_brand_id" TInt;
    v' "i_category_id" TInt;
    v' "i_manufact_id" TInt;
    v' "i_manager_id" TInt;
  ]

let customer = [ csk; v' "c_cask" TInt ]
let store = [ ssk; v' "s_city" TInt; v' "s_county" TInt ]

let household_demographics =
  [ hdsk; v' "hd_dep_count" TInt; v' "hd_vehicle_count" TInt ]

let customer_demographics =
  [
    cdsk;
    v' "cd_gender" TString;
    v' "cd_marital" TString;
    v' "cd_edu" TString;
  ]

let customer_address = [ cask; v' "ca_city" TInt ]

let streams =
  [
    ("store_sales", store_sales);
    ("date_dim", date_dim);
    ("item", item);
    ("customer", customer);
    ("store", store);
    ("household_demographics", household_demographics);
    ("customer_demographics", customer_demographics);
    ("customer_address", customer_address);
  ]

let all_vars =
  List.concat_map snd streams
  |> List.fold_left
       (fun acc (x : Schema.var) ->
         if List.exists (fun (y : Schema.var) -> y.name = x.name) acc then acc
         else x :: acc)
       []

let v name =
  match List.find_opt (fun (x : Schema.var) -> x.name = name) all_vars with
  | Some x -> x
  | None -> invalid_arg ("Tpcds.Schema.v: unknown column " ^ name)

let partition_keys = [ "ss_ticket"; "isk"; "csk"; "dsk"; "ssk" ]
