open Divm_ring
open Divm_compiler

type t = Local | Dist of int array | Replicated | Random
type catalog = (string * t) list

let equal a b =
  match (a, b) with
  | Local, Local | Replicated, Replicated | Random, Random -> true
  | Dist p1, Dist p2 -> p1 = p2
  | _ -> false

let pp ppf = function
  | Local -> Format.pp_print_string ppf "LOCAL"
  | Replicated -> Format.pp_print_string ppf "REPLICATED"
  | Random -> Format.pp_print_string ppf "RANDOM"
  | Dist p ->
      Format.fprintf ppf "DIST<%s>"
        (String.concat ","
           (Array.to_list (Array.map string_of_int p)))

let find cat name =
  match List.assoc_opt name cat with Some l -> l | None -> Local

let heuristic ~keys (prog : Prog.t) : catalog =
  List.map
    (fun (m : Prog.map_decl) ->
      let loc =
        match m.mkind with
        | Prog.Transient -> Random
        | _ -> (
            if m.mschema = [] then Local
            else
              (* first key name (highest cardinality first) present in the
                 schema wins *)
              let rec pick = function
                | [] -> Local
                | k :: rest -> (
                    let idx = ref (-1) in
                    List.iteri
                      (fun i (v : Schema.var) ->
                        if !idx < 0 && String.equal v.name k then idx := i)
                      m.mschema;
                    match !idx with -1 -> pick rest | i -> Dist [| i |])
              in
              pick keys)
      in
      (m.mname, loc))
    prog.maps
