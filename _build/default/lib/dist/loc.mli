(** Location tags (§4.2).

    A materialized view lives on the driver ([Local]), is hash-partitioned
    over the workers by a subset of its key columns ([Dist positions]), is
    fully replicated on every worker ([Replicated] — the paper's
    partitioning functions may map a tuple to a set of nodes), or is spread
    randomly ([Random] — e.g. per-worker pre-aggregations of the worker's
    own batch partition). *)

open Divm_compiler

type t =
  | Local
  | Dist of int array  (** partition key: positions into the map's schema *)
  | Replicated
  | Random

type catalog = (string * t) list

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** [find cat name] defaults to [Local] for unknown maps (scalar results). *)
val find : catalog -> string -> t

(** Default partitioning heuristic of §6.2: partition each non-scalar map on
    the position of the highest-cardinality primary-key-like column, given
    [keys] mapping stream relations to their key variable names (ordered by
    decreasing cardinality); maps with none of those columns in their schema
    and scalar maps stay on the driver. Transient delta pre-aggregations are
    tagged [Random] (each worker pre-aggregates its own batch partition). *)
val heuristic : keys:string list -> Prog.t -> catalog
