(** Compilation of local trigger programs into well-formed distributed
    programs (§4.1–§4.3).

    The trigger compiler produces flat statements (a projection over a
    product of map references, delta pre-aggregations, and filters), so the
    annotation and the Figure 3/4 rule engine reduce to choosing, per
    statement, an execution locus — driver, co-partitioned by some key,
    replicated, or in-place over the randomly distributed batch — and
    inserting the location transformers each factor needs to reach it. The
    optimizer enumerates the candidate loci and keeps the plan with fewest
    communication rounds (ties broken towards shuffling batch-derived data
    and away from [Gather], the paper's heuristics); the naive [level 0]
    annotator mimics the pre-optimization plans of Example 4.1.

    Optimization levels (the Figure 13 ablation):
    - 0: naive bottom-up annotation;
    - 1: + locus optimization / transformer simplification;
    - 2: + block fusion (Appendix C.3);
    - 3: + transfer CSE and dead-code elimination. *)

open Divm_compiler

type options = {
  level : int;  (** 0–3 *)
  delta_at : [ `Workers | `Driver ];
      (** where update batches arrive: pre-partitioned across workers (the
          experiments of §6.2) or at the driver (the Figure 5 listing) *)
}

val default_options : options

(** [compile ~catalog prog] requires [prog] to be pre-aggregated (no raw
    delta atom outside transient definitions). The catalog gives locations
    for [prog]'s maps; locations for transfer transients are added. *)
val compile : ?options:options -> catalog:Loc.catalog -> Prog.t -> Dprog.t
