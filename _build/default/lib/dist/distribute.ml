open Divm_ring
open Divm_calc
open Divm_calc.Calc
open Divm_compiler

type options = { level : int; delta_at : [ `Workers | `Driver ] }

let default_options = { level = 3; delta_at = `Workers }

type locus = LLocal | LKey of Schema.t | LRepl | LRandom

(* Map references with their variables, in evaluation order, deduplicated by
   (name, variable names). *)
let refs_of expr =
  let acc = ref [] in
  let rec go e =
    match e with
    | Map m ->
        let key =
          (m.mname, List.map (fun (v : Schema.var) -> v.name) m.mvars)
        in
        if not (List.mem_assoc key !acc) then acc := !acc @ [ (key, m) ]
    | Lift (_, q) | Exists q | Sum (_, q) -> go q
    | Prod es | Add es -> List.iter go es
    | _ -> ()
  in
  go expr;
  List.map snd !acc

let key_vars mvars positions =
  List.map (fun i -> List.nth mvars i) (Array.to_list positions)

let positions_of kvars vars =
  (* positions (into [vars]) of the variables of [kvars]; None when a key
     variable is absent *)
  try
    Some
      (Array.of_list
         (List.map
            (fun (k : Schema.var) ->
              let rec idx i = function
                | [] -> raise Not_found
                | (v : Schema.var) :: tl ->
                    if Schema.var_equal v k then i else idx (i + 1) tl
              in
              idx 0 vars)
            kvars))
  with Not_found -> None

(* ------------------------------------------------------------------ *)
(* Per-statement planning                                              *)
(* ------------------------------------------------------------------ *)

type st = {
  opts : options;
  mutable counter : int;
  mutable new_maps : Prog.map_decl list; (* reverse *)
  mutable locs : Loc.catalog;
  prog : Prog.t;
}

let fresh_transfer st ~kind ~key ~source ~dest_loc =
  st.counter <- st.counter + 1;
  let sdecl = Prog.find_map { st.prog with maps = st.prog.maps @ List.rev st.new_maps } source in
  let suffix =
    match kind with
    | Dprog.Scatter -> "scatter"
    | Dprog.Repart -> "repart"
    | Dprog.Gather -> "gather"
  in
  let tname = Printf.sprintf "%s_%s%d" source suffix st.counter in
  st.new_maps <-
    {
      Prog.mname = tname;
      mschema = sdecl.mschema;
      mkind = Prog.Transient;
      definition = Map { mname = source; mvars = sdecl.mschema };
    }
    :: st.new_maps;
  st.locs <- (tname, dest_loc) :: st.locs;
  (tname, Dprog.Transfer { tname; tkind = kind; key; source })

(* Size rank of shuffling a map: batch-derived transients are cheap. *)
let size_rank st source =
  let maps = st.prog.maps @ List.rev st.new_maps in
  match List.find_opt (fun m -> m.Prog.mname = source) maps with
  | Some { Prog.mkind = Prog.Transient; _ } -> 1
  | _ -> 10

(* Plan the transfers needed to make one map reference readable at the
   locus. Returns (transfers, replacement name, still_random). *)
let plan_ref st locus (m : map_access) =
  let loc = Loc.find st.locs m.mname in
  let fail = ref false in
  let transfers = ref [] in
  let emit kind key dest_loc src =
    let name, tr = fresh_transfer st ~kind ~key ~source:src ~dest_loc in
    transfers := !transfers @ [ tr ];
    name
  in
  let name, random =
    match (locus, loc) with
    | LLocal, Loc.Local -> (m.mname, false)
    | LLocal, (Loc.Dist _ | Loc.Random | Loc.Replicated) ->
        (emit Dprog.Gather [||] Loc.Local m.mname, false)
    | LKey _, Loc.Replicated -> (m.mname, false)
    | LKey kv, Loc.Local -> (
        match positions_of kv m.mvars with
        | Some pos -> (emit Dprog.Scatter pos (Loc.Dist pos) m.mname, false)
        | None -> (emit Dprog.Scatter [||] Loc.Replicated m.mname, false))
    | LKey kv, Loc.Dist pos
      when Schema.equal_as_sets (key_vars m.mvars pos) kv ->
        (m.mname, false)
    | LKey kv, (Loc.Dist _ | Loc.Random) -> (
        match positions_of kv m.mvars with
        | Some pos -> (emit Dprog.Repart pos (Loc.Dist pos) m.mname, false)
        | None ->
            let g = emit Dprog.Gather [||] Loc.Local m.mname in
            (emit Dprog.Scatter [||] Loc.Replicated g, false))
    | LRepl, Loc.Replicated -> (m.mname, false)
    | LRepl, Loc.Local ->
        (emit Dprog.Scatter [||] Loc.Replicated m.mname, false)
    | LRepl, (Loc.Dist _ | Loc.Random) ->
        let g = emit Dprog.Gather [||] Loc.Local m.mname in
        (emit Dprog.Scatter [||] Loc.Replicated g, false)
    | LRandom, Loc.Random -> (m.mname, true)
    | LRandom, Loc.Replicated -> (m.mname, false)
    | LRandom, Loc.Local ->
        (emit Dprog.Scatter [||] Loc.Replicated m.mname, false)
    | LRandom, Loc.Dist _ ->
        fail := true;
        (m.mname, false)
  in
  if !fail then None else Some (!transfers, name, random)

(* Result location of evaluating at [locus] a statement producing
   [target_vars]; [has_random] marks an in-place random factor. *)
let result_loc locus target_vars ~has_random =
  match locus with
  | LLocal -> Loc.Local
  | LRepl -> Loc.Replicated
  | LRandom -> Loc.Random
  | LKey kv -> (
      if has_random then Loc.Random
      else
        match positions_of kv target_vars with
        | Some pos -> Loc.Dist pos
        | None -> Loc.Random)

let rename_refs subst expr =
  let rec go e =
    match e with
    | Map m -> (
        match List.assoc_opt m.mname subst with
        | Some n -> Map { m with mname = n }
        | None -> e)
    | Lift (v, q) -> Lift (v, go q)
    | Exists q -> Exists (go q)
    | Sum (gb, q) -> Sum (gb, go q)
    | Prod es -> Prod (List.map go es)
    | Add es -> Add (List.map go es)
    | e -> e
  in
  go expr

(* Build the full plan (transfers + compute statements) for one statement at
   one locus. Returns (cost, dstmts) or None when infeasible. *)
let plan_stmt st locus (s : Prog.stmt) =
  let saved_counter = st.counter
  and saved_maps = st.new_maps
  and saved_locs = st.locs in
  let rollback () =
    st.counter <- saved_counter;
    st.new_maps <- saved_maps;
    st.locs <- saved_locs
  in
  let refs = refs_of s.rhs in
  let rec plan_all acc subst n_random = function
    | [] -> Some (acc, subst, n_random)
    | m :: rest -> (
        match plan_ref st locus m with
        | None -> None
        | Some (trs, name, random) ->
            let subst =
              if name = m.mname then subst else (m.mname, name) :: subst
            in
            plan_all (acc @ trs) subst
              (n_random + if random then 1 else 0)
              rest)
  in
  match plan_all [] [] 0 refs with
  | None ->
      rollback ();
      None
  | Some (_, _, n_random) when n_random > 1 ->
      rollback ();
      None
  | Some (transfers, subst, n_random) ->
      let rloc = result_loc locus s.target_vars ~has_random:(n_random > 0) in
      let tloc = Loc.find st.locs s.target in
      let rhs = rename_refs subst s.rhs in
      let stmts, extra =
        if Loc.equal rloc tloc then ([ Dprog.Compute { s with rhs } ], [])
        else begin
          (* materialize at the locus, transfer, apply at the target *)
          st.counter <- st.counter + 1;
          let out = Printf.sprintf "%s_part%d" s.target st.counter in
          st.new_maps <-
            {
              Prog.mname = out;
              mschema = s.target_vars;
              mkind = Prog.Transient;
              definition = rhs;
            }
            :: st.new_maps;
          st.locs <- (out, rloc) :: st.locs;
          let move =
            match tloc with
            | Loc.Local -> [ (Dprog.Gather, [||], Loc.Local) ]
            | Loc.Dist pos -> (
                match rloc with
                | Loc.Local -> [ (Dprog.Scatter, pos, Loc.Dist pos) ]
                | _ -> [ (Dprog.Repart, pos, Loc.Dist pos) ])
            | Loc.Replicated -> (
                match rloc with
                | Loc.Local -> [ (Dprog.Scatter, [||], Loc.Replicated) ]
                | _ ->
                    [
                      (Dprog.Gather, [||], Loc.Local);
                      (Dprog.Scatter, [||], Loc.Replicated);
                    ])
            | Loc.Random -> [ (Dprog.Gather, [||], Loc.Local) ]
          in
          let src = ref out in
          let moves =
            List.map
              (fun (kind, key, dloc) ->
                let name, tr =
                  fresh_transfer st ~kind ~key ~source:!src ~dest_loc:dloc
                in
                src := name;
                tr)
              move
          in
          ( [
              Dprog.Compute
                {
                  Prog.target = out;
                  target_vars = s.target_vars;
                  op = Prog.Assign;
                  rhs;
                };
            ]
            @ moves
            @ [
                Dprog.Compute
                  {
                    Prog.target = s.target;
                    target_vars = s.target_vars;
                    op = s.op;
                    rhs = Map { mname = !src; mvars = s.target_vars };
                  };
              ],
            moves )
        end
      in
      let all = transfers @ stmts in
      let n_transfers =
        List.length transfers + List.length extra
      in
      let gathers =
        List.length
          (List.filter
             (function
               | Dprog.Transfer { tkind = Dprog.Gather; _ } -> true
               | _ -> false)
             all)
      in
      let rank =
        List.fold_left
          (fun acc d ->
            match d with
            | Dprog.Transfer { source; _ } -> acc + size_rank st source
            | _ -> acc)
          0 all
      in
      Some ((n_transfers, rank, gathers), all, rollback)

(* Candidate loci for a statement. *)
let candidates st (s : Prog.stmt) =
  let refs = refs_of s.rhs in
  let target_loc = Loc.find st.locs s.target in
  let base = [ LLocal; LRepl; LRandom ] in
  let from_target =
    match target_loc with
    | Loc.Dist pos -> [ LKey (key_vars s.target_vars pos) ]
    | _ -> []
  in
  let from_refs =
    List.filter_map
      (fun (m : map_access) ->
        match Loc.find st.locs m.mname with
        | Loc.Dist pos -> Some (LKey (key_vars m.mvars pos))
        | _ -> None)
      refs
  in
  (* dedup LKey candidates by variable-name sets *)
  let seen = ref [] in
  List.filter
    (fun c ->
      match c with
      | LKey kv ->
          let names =
            List.sort compare (List.map (fun (v : Schema.var) -> v.name) kv)
          in
          if List.mem names !seen then false
          else begin
            seen := names :: !seen;
            true
          end
      | _ -> true)
    (from_target @ from_refs @ base)

let naive_candidate st (s : Prog.stmt) =
  (* bottom-up annotation without optimization: adopt the location of the
     last relational factor, whatever the cost *)
  match List.rev (refs_of s.rhs) with
  | m :: _ -> (
      match Loc.find st.locs m.mname with
      | Loc.Local -> LLocal
      | Loc.Replicated -> LRepl
      | Loc.Random -> LRandom
      | Loc.Dist pos -> LKey (key_vars m.mvars pos))
  | [] -> LLocal

let add3 (a1, a2, a3) (b1, b2, b3) = (a1 + b1, a2 + b2, a3 + b3)

(* Best single-locus plan for one statement. *)
let single_locus_plan st (s : Prog.stmt) =
  let cands =
    if st.opts.level = 0 then [ naive_candidate st s ] else candidates st s
  in
  let best = ref None in
  List.iter
    (fun c ->
      match plan_stmt st c s with
      | None -> ()
      | Some (cost, dstmts, rollback) -> (
          match !best with
          | Some (bcost, _) when bcost <= cost -> rollback ()
          | _ -> best := Some (cost, dstmts)))
    cands;
  !best

(* Multi-stage plans: split the product at a join boundary, materialize the
   (usually batch-derived) prefix as an intermediate at the location the
   suffix wants, and continue — the partial-join-then-repartition idiom of
   the Figure 5 programs. Replaces Gather∘Scatter round-trips of whole
   views with one shuffle of a small intermediate. *)
let rec best_plan st ~depth (s : Prog.stmt) =
  let base = single_locus_plan st s in
  if depth >= 1 || st.opts.level < 1 then base
  else
    match try_splits st ~depth s with
    | Some (c2, d2) -> (
        match base with
        | Some (c1, _) when c1 <= c2 -> base
        | _ -> Some (c2, d2))
    | None -> base

and try_splits st ~depth (s : Prog.stmt) =
  let gb, fs =
    match s.rhs with
    | Sum (g, b) -> (Some g, Divm_delta.Poly.factors b)
    | e -> (None, Divm_delta.Poly.factors e)
  in
  let n = List.length fs in
  if n < 3 then None
  else begin
    let arr = Array.of_list fs in
    let best = ref None in
    for i = 1 to n - 1 do
      let prefix = Calc.prod (Array.to_list (Array.sub arr 0 i)) in
      let suffix_fs = Array.to_list (Array.sub arr i (n - i)) in
      let suffix = Calc.prod suffix_fs in
      if refs_of prefix <> [] && refs_of suffix <> [] then begin
        match Calc.schema ~bound:[] prefix with
        | exception Type_error _ -> ()
        | psch -> (
            let needed =
              Schema.union (Calc.all_vars suffix) s.target_vars
            in
            let keep = Schema.inter psch needed in
            match Calc.schema ~bound:keep suffix with
            | exception Type_error _ -> ()
            | _ ->
                st.counter <- st.counter + 1;
                let tname = Printf.sprintf "%s_stage%d" s.target st.counter in
                (* co-partition the intermediate with the first suffix view
                   it joins; replicate when no key fits (it is small) *)
                let tloc =
                  let rec pick = function
                    | [] -> Loc.Replicated
                    | (m : map_access) :: rest -> (
                        match Loc.find st.locs m.mname with
                        | Loc.Dist pos -> (
                            match
                              positions_of (key_vars m.mvars pos) keep
                            with
                            | Some p -> Loc.Dist p
                            | None -> pick rest)
                        | _ -> pick rest)
                  in
                  pick (refs_of suffix)
                in
                st.new_maps <-
                  {
                    Prog.mname = tname;
                    mschema = keep;
                    mkind = Prog.Transient;
                    definition = Calc.sum keep prefix;
                  }
                  :: st.new_maps;
                st.locs <- (tname, tloc) :: st.locs;
                let stmt1 =
                  {
                    Prog.target = tname;
                    target_vars = keep;
                    op = Prog.Assign;
                    rhs = Calc.sum keep prefix;
                  }
                in
                let body2 =
                  Calc.prod (Map { mname = tname; mvars = keep } :: suffix_fs)
                in
                let rhs2 =
                  match gb with Some g -> Calc.sum g body2 | None -> body2
                in
                let stmt2 = { s with rhs = rhs2 } in
                match
                  ( best_plan st ~depth:(depth + 1) stmt1,
                    best_plan st ~depth:(depth + 1) stmt2 )
                with
                | Some (c1, d1), Some (c2, d2) -> (
                    let c = add3 c1 c2 in
                    match !best with
                    | Some (bc, _) when bc <= c -> ()
                    | _ -> best := Some (c, d1 @ d2))
                | _ -> ())
      end
    done;
    !best
  end

let compile_stmt st (s : Prog.stmt) =
  (* transient delta pre-aggregations are pinned where batches arrive *)
  let is_delta_def =
    match Prog.find_map st.prog s.target with
    | { Prog.mkind = Prog.Transient; _ } -> Calc.delta_rels s.rhs <> []
    | _ -> false
    | exception _ -> false
  in
  if is_delta_def then [ Dprog.Compute s ]
  else begin
    assert (Calc.delta_rels s.rhs = []);
    match best_plan st ~depth:0 s with
    | Some (_, dstmts) -> dstmts
    | None -> (
        (* fall back to full gather at the driver *)
        match plan_stmt st LLocal s with
        | Some (_, dstmts, _) -> dstmts
        | None -> failwith ("Distribute: no plan for stmt of " ^ s.target))
  end

(* ------------------------------------------------------------------ *)
(* CSE + DCE over transfers                                            *)
(* ------------------------------------------------------------------ *)

let cse_dce st dstmts =
  (* forward pass: identical transfers — and identical assignments into
     transient intermediates — collapse to the first occurrence *)
  let subst = Hashtbl.create 8 in
  let seen = Hashtbl.create 8 in
  let seen_assign = Hashtbl.create 8 in
  let resolve n =
    match Hashtbl.find_opt subst n with Some n' -> n' | None -> n
  in
  let transient name =
    match
      List.find_opt
        (fun m -> m.Prog.mname = name)
        (st.prog.maps @ List.rev st.new_maps)
    with
    | Some { Prog.mkind = Prog.Transient; _ } -> true
    | _ -> false
  in
  let dstmts =
    List.filter_map
      (fun d ->
        match d with
        | Dprog.Transfer t ->
            let source = resolve t.source in
            let key = (t.tkind, t.key, source) in
            (match Hashtbl.find_opt seen key with
            | Some existing ->
                Hashtbl.replace subst t.tname existing;
                None
            | None ->
                Hashtbl.replace seen key t.tname;
                Some (Dprog.Transfer { t with source }))
        | Dprog.Compute s -> (
            let rhs =
              rename_refs
                (Hashtbl.fold (fun k v acc -> (k, v) :: acc) subst [])
                s.rhs
            in
            let s = { s with rhs } in
            if s.op = Prog.Assign && transient s.target then begin
              let key =
                ( Calc.to_string s.rhs,
                  List.map (fun (v : Schema.var) -> v.name) s.target_vars,
                  Loc.find st.locs s.target )
              in
              match Hashtbl.find_opt seen_assign key with
              | Some existing ->
                  Hashtbl.replace subst s.target existing;
                  None
              | None ->
                  Hashtbl.replace seen_assign key s.target;
                  Some (Dprog.Compute s)
            end
            else Some (Dprog.Compute s)))
      dstmts
  in
  (* backward pass: drop writes to transients nobody reads *)
  let transient name =
    match
      List.find_opt
        (fun m -> m.Prog.mname = name)
        (st.prog.maps @ List.rev st.new_maps)
    with
    | Some { Prog.mkind = Prog.Transient; _ } -> true
    | _ -> false
  in
  let rec dce rev_stmts live =
    match rev_stmts with
    | [] -> []
    | d :: rest ->
        let w = Dprog.writes d in
        if transient w && not (List.mem w live) then dce rest live
        else d :: dce rest (Dprog.reads d @ live)
  in
  List.rev (dce (List.rev dstmts) [])

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let compile ?(options = default_options) ~catalog (prog : Prog.t) =
  let catalog =
    match options.delta_at with
    | `Workers -> catalog
    | `Driver ->
        List.map
          (fun (n, l) ->
            match
              (l, List.find_opt (fun m -> m.Prog.mname = n) prog.maps)
            with
            | _, Some { Prog.mkind = Prog.Transient; _ } -> (n, Loc.Local)
            | _ -> (n, l))
          catalog
  in
  let st =
    {
      opts = options;
      counter = 0;
      new_maps = [];
      locs = catalog;
      prog;
    }
  in
  let dtriggers =
    List.map
      (fun (tr : Prog.trigger) ->
        let dstmts = List.concat_map (compile_stmt st) tr.stmts in
        let dstmts = if options.level >= 3 then cse_dce st dstmts else dstmts in
        let blocks = Dprog.promote st.locs dstmts in
        let blocks = if options.level >= 2 then Dprog.fuse blocks else blocks in
        { Dprog.drelation = tr.relation; blocks })
      prog.triggers
  in
  {
    Dprog.base = { prog with maps = prog.maps @ List.rev st.new_maps };
    locs = st.locs;
    dtriggers;
  }
