lib/dist/loc.ml: Array Divm_compiler Divm_ring Format List Prog Schema String
