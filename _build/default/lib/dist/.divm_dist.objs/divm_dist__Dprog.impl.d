lib/dist/dprog.ml: Array Calc Divm_calc Divm_compiler Format List Loc Prog String
