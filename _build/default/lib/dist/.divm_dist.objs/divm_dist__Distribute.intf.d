lib/dist/distribute.mli: Divm_compiler Dprog Loc Prog
