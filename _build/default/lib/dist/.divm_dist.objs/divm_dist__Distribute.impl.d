lib/dist/distribute.ml: Array Calc Divm_calc Divm_compiler Divm_delta Divm_ring Dprog Hashtbl List Loc Printf Prog Schema
