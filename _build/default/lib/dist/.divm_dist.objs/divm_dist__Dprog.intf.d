lib/dist/dprog.mli: Divm_compiler Format Loc Prog
