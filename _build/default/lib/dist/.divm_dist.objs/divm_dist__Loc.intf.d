lib/dist/loc.mli: Divm_compiler Format Prog
