open Divm_ring
open Divm_calc
open Divm_calc.Calc

type result = { expr : expr; expensive : bool }

let rec delta ~rel ~bound (e : expr) : result =
  match e with
  | Rel r when String.equal r.rname rel ->
      { expr = DeltaRel r; expensive = false }
  | Rel _ | Map _ | Const _ | Value _ | Cmp _ | DeltaRel _ ->
      { expr = zero; expensive = false }
  | Add es ->
      let ds = List.map (delta ~rel ~bound) es in
      {
        expr = add (List.map (fun d -> d.expr) ds);
        expensive = List.exists (fun d -> d.expensive) ds;
      }
  | Sum (gb, q) ->
      let d = delta ~rel ~bound q in
      { d with expr = sum gb d.expr }
  | Prod es -> delta_prod ~rel ~bound es
  | Exists q -> delta_diff ~rel ~bound (fun body -> exists body) q
  | Lift (v, q) -> delta_diff ~rel ~bound (fun body -> lift v body) q

(* Leibniz rule over a product list, threading the binding context
   left-to-right (deltas preserve schemas, so the context of the i-th factor
   is the same in every expansion term). *)
and delta_prod ~rel ~bound es =
  match es with
  | [] -> { expr = zero; expensive = false }
  | [ e ] -> delta ~rel ~bound e
  | e :: rest ->
      let de = delta ~rel ~bound e in
      let bound' = Schema.union bound (Calc.schema ~bound e) in
      let rest_e = match rest with [ x ] -> x | xs -> Prod xs in
      let drest = delta_prod ~rel ~bound:bound' rest in
      {
        expr =
          add
            [
              prod [ de.expr; rest_e ];
              prod [ e; drest.expr ];
              prod [ de.expr; drest.expr ];
            ];
        expensive = de.expensive || drest.expensive;
      }

(* Revised delta rule for Lift/Exists: Qdom ⋈ (mk(Q+ΔQ) − mk(Q)), where
   Qdom is the extracted domain of ΔQ projected onto the variables the
   difference term can actually be restricted by: context-bound variables
   (equality correlations) and the difference's own output variables. *)
and delta_diff ~rel ~bound mk q =
  let dq = delta ~rel ~bound q in
  if is_zero dq.expr then { expr = zero; expensive = false }
  else
    let dom = Domain.extract dq.expr in
    let restrictable =
      Schema.union bound
        (match Calc.schema ~bound q with
        | s -> s
        | exception Type_error _ -> [])
    in
    let corr = Schema.inter (Domain.bound_vars dom) restrictable in
    let diff = add [ mk (add [ q; dq.expr ]); neg (mk q) ] in
    match corr with
    | [] -> { expr = diff; expensive = true }
    | _ ->
        let qdom = exists (sum corr (Domain.to_expr ~bound dom)) in
        { expr = prod [ qdom; diff ]; expensive = dq.expensive }

let of_expr ~rel ?(bound = []) e = delta ~rel ~bound e
let expr ~rel ?(bound = []) e = (of_expr ~rel ~bound e).expr
