open Divm_ring
open Divm_calc
open Divm_calc.Calc

type t = Calc.expr list

let dedup factors =
  List.fold_left
    (fun acc f -> if List.exists (Calc.equal f) acc then acc else f :: acc)
    [] factors
  |> List.rev

let union_doms doms = dedup (List.concat doms)

let inter_doms = function
  | [] -> []
  | hd :: tl ->
      List.filter
        (fun f -> List.for_all (fun d -> List.exists (Calc.equal f) d) tl)
        hd

(* Greedy left-to-right ordering keeping only factors whose input variables
   are bound by [bound] or by earlier kept factors; iterate to a fixpoint so
   order inside the factor list does not matter. *)
let sanitize ~bound factors =
  let rec round kept bound pending =
    let kept, bound, remaining, progressed =
      List.fold_left
        (fun (kept, bound, rem, prog) f ->
          match Calc.schema ~bound f with
          | s -> (f :: kept, Schema.union bound s, rem, true)
          | exception Type_error _ -> (kept, bound, f :: rem, prog))
        (kept, bound, [], false) pending
    in
    if progressed && remaining <> [] then round kept bound (List.rev remaining)
    else List.rev kept
  in
  round [] bound factors

let dom_schema ?(bound = []) factors =
  let sane = sanitize ~bound factors in
  List.fold_left
    (fun acc f ->
      match Calc.schema ~bound:(Schema.union bound acc) f with
      | s -> Schema.union acc s
      | exception Type_error _ -> acc)
    [] sane

let to_expr ?(bound = []) factors =
  match sanitize ~bound factors with
  | [] -> Calc.one
  | fs -> Calc.prod fs

let bound_vars factors = dom_schema factors
let restricts factors vars = Schema.inter (bound_vars factors) vars <> []

let rec extract (e : expr) : t =
  match e with
  | Add es -> inter_doms (List.map extract es)
  | Prod es -> union_doms (List.map extract es)
  | Sum (gb, a) -> (
      let dom_a = extract a in
      let sane = sanitize ~bound:[] dom_a in
      let sch = dom_schema sane in
      let dom_gb = Schema.inter sch gb in
      if Schema.equal_as_sets dom_gb gb then dom_a
      else
        match (dom_gb, sane) with
        | [], _ | _, [] -> []
        | _ -> [ Calc.exists (Calc.sum dom_gb (Calc.prod sane)) ])
  | Lift (_, a) when Calc.base_rels a <> [] || Calc.delta_rels a <> [] ->
      extract a
  | Lift (_, _) -> [ e ]
  | Exists a -> extract a
  | DeltaRel _ -> [ Calc.exists e ]
  | Rel _ | Map _ -> []
  | Cmp _ -> [ e ]
  | Const _ | Value _ -> []
