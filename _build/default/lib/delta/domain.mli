(** Domain extraction (§3.2.2, Figure 1).

    A domain for an expression [e] is a set of constraint factors [ds] such
    that [prod ds ⋈ e ≡ e]: every tuple of [e]'s support satisfies all the
    factors, and all factor tuples carry multiplicity one. Prepending the
    domain to an expensive re-evaluation difference (the revised delta rule
    for [Lift]/[Exists]) restricts iteration to the output tuples a batch
    can actually affect. *)

open Divm_ring
open Divm_calc

(** A domain as a list of constraint factors; [[]] means "no restriction"
    (the constant 1 of Figure 1). *)
type t = Calc.expr list

(** [extract e] runs the algorithm of Figure 1 on [e] (normally a delta
    expression). Delta-relation atoms are treated as low-cardinality;
    base-relation and map atoms as high-cardinality. *)
val extract : Calc.expr -> t

(** [to_expr ~bound dom] turns a domain into a single prefix expression,
    dropping filter factors whose variables are not bound by the domain's
    relational factors or by [bound] (a conservative but always well-typed
    weakening). Returns [Calc.one] for the unrestricted domain. *)
val to_expr : ?bound:Schema.t -> t -> Calc.expr

(** Variables bound by the domain's relational factors. *)
val bound_vars : t -> Schema.t

(** [restricts dom vars] tells whether the domain binds at least one of
    [vars] — the §3.2.3 criterion ("incrementally maintain whenever the
    extracted nested domain binds at least one equality-correlated
    variable"). *)
val restricts : t -> Schema.t -> bool
