open Divm_ring
open Divm_calc
open Divm_calc.Calc

let rec monomials (e : expr) : expr list =
  match e with
  | Add es -> List.concat_map monomials es
  | Prod es ->
      let parts = List.map monomials es in
      let combos =
        List.fold_left
          (fun acc ms ->
            List.concat_map (fun pref -> List.map (fun m -> m :: pref) ms) acc)
          [ [] ] parts
      in
      List.filter_map
        (fun rev ->
          let m = Calc.prod (List.rev rev) in
          if Calc.is_zero m then None else Some m)
        combos
  | Sum (gb, q) ->
      List.filter_map
        (fun m ->
          let s = Calc.sum gb m in
          if Calc.is_zero s then None else Some s)
        (monomials q)
  | e -> if Calc.is_zero e then [] else [ e ]

let factors = function Prod es -> es | e -> [ e ]

(* Factor scheduling priority: cheap filters as soon as they are bound,
   then batch-derived factors (iteration starts from the small delta),
   then the rest in original order. *)
let priority e =
  match e with
  | Const _ | Value _ | Cmp _ -> 0
  | Lift (_, q) when not (Calc.has_base_rels q || Calc.has_deltas q) -> 1
  | DeltaRel _ -> 2
  | _ when Calc.has_deltas e -> 3
  | _ -> 4

let reorder ~bound ?orig fs =
  (* Boundness of each factor's variables at its position in the input
     order; Lift/Exists semantics depend on it (a lift over a bound
     variable set is a lookup with default 0; over free variables it
     iterates non-zero groups), so those factors may only move to positions
     with the same boundness of their variables. [orig] overrides the
     reference boundness per factor when the caller knows the semantic
     context the factor came from (e.g. after materialization rewrote the
     product around it). *)
  let input_bound =
    List.fold_left
      (fun (acc, b) f ->
        let b' =
          match Calc.schema ~bound:b f with
          | s -> Schema.union b s
          | exception Type_error _ -> b
        in
        (acc @ [ b ], b'))
      ([], bound) fs
    |> fst
  in
  let orig_bound =
    match orig with
    | None -> input_bound
    | Some os ->
        List.map2
          (fun inp o -> match o with Some b -> b | None -> inp)
          input_bound os
  in
  let indexed = List.mapi (fun i f -> (i, f)) fs in
  (* Only Lift is order-sensitive: a lift over a bound variable set is a
     lookup with default 0, over free variables an iteration of non-zero
     groups. Exists always yields its support with multiplicity one, so
     filter and iterator placements agree in a product. *)
  let sensitive = function Lift _ -> true | _ -> false in
  let ready cur_bound (i, f) =
    (match Calc.schema ~bound:cur_bound f with
    | _ -> true
    | exception Type_error _ -> false)
    && (not (sensitive f))
    ||
    (sensitive f
    &&
    let vs = Calc.all_vars f in
    Schema.equal_as_sets
      (Schema.inter vs cur_bound)
      (Schema.inter vs (List.nth orig_bound i)))
  in
  let rec go bound acc remaining =
    match remaining with
    | [] -> Some (List.rev acc)
    | _ -> (
        let candidates = List.filter (ready bound) remaining in
        match candidates with
        | [] -> None
        | _ ->
            let best =
              List.fold_left
                (fun (bi, bf) (i, f) ->
                  let p = priority f and bp = priority bf in
                  if p < bp || (p = bp && i < bi) then (i, f) else (bi, bf))
                (List.hd candidates) (List.tl candidates)
            in
            let i, f = best in
            let bound =
              match Calc.schema ~bound f with
              | s -> Schema.union bound s
              | exception Type_error _ -> bound
            in
            go bound (f :: acc) (List.filter (fun (j, _) -> j <> i) remaining))
  in
  go bound [] indexed
