lib/delta/delta.ml: Calc Divm_calc Divm_ring Domain List Schema String
