lib/delta/domain.ml: Calc Divm_calc Divm_ring List Schema
