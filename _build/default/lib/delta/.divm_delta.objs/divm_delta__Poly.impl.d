lib/delta/poly.ml: Calc Divm_calc Divm_ring List Schema
