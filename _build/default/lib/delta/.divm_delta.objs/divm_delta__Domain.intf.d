lib/delta/domain.mli: Calc Divm_calc Divm_ring Schema
