lib/delta/delta.mli: Calc Divm_calc Divm_ring Schema
