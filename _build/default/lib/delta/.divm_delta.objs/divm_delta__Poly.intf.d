lib/delta/poly.mli: Calc Divm_calc Divm_ring
