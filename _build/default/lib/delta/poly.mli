(** Polynomial normal form: expansion of an expression into a bag union of
    monomials, used by the recursive-IVM compiler to factorize and
    materialize each monomial independently.

    [Sum] is linear and distributes over union; [Lift] and [Exists] are not
    and stay opaque. *)

open Divm_calc

(** [monomials e] returns [ms] with [e ≡ Calc.add ms]. No monomial is the
    zero expression. *)
val monomials : Calc.expr -> Calc.expr list

(** [factors m] flattens a monomial into its product factors (a non-product
    expression is its own single factor). *)
val factors : Calc.expr -> Calc.expr list

(** [reorder ~bound fs] stable-sorts factors so that every factor's input
    variables are bound before it evaluates, preferring delta-relation and
    domain factors first (the §3.2.1 commuting optimization: iterate small
    delta-derived terms, look up large ones). Order-sensitive factors
    ([Lift]/[Exists], whose semantics depend on which of their variables
    are bound) may only move to positions with the same boundness of their
    variables — [orig], when given, supplies the reference boundness per
    factor. Returns [None] when no valid ordering exists. *)
val reorder :
  bound:Divm_ring.Schema.t ->
  ?orig:Divm_ring.Schema.t option list ->
  Calc.expr list ->
  Calc.expr list option
