(** Delta derivation (§3.1) with the revised rule for variable assignments
    and existential quantification based on domain extraction (§3.2.2).

    [of_expr ~rel ~bound e] rewrites [e] into an expression over the same
    schema that evaluates to the change of [e] when relation [rel] receives
    the update batch [ΔR] (referenced through [Calc.DeltaRel] atoms; the
    batch may mix insertions and deletions as positive and negative
    multiplicities).

    [bound] lists the variables bound by the evaluation context (the trigger
    derivation passes the enclosing binding context so that equality
    correlations of nested aggregates can be recognized). *)

open Divm_ring
open Divm_calc

type result = {
  expr : Calc.expr;
  expensive : bool;
      (** true when some [Lift]/[Exists] difference could not be domain
          restricted — the §3.2.3 signal that re-evaluation may beat
          incremental maintenance for this update path. *)
}

val of_expr : rel:string -> ?bound:Schema.t -> Calc.expr -> result

(** Convenience: just the expression. *)
val expr : rel:string -> ?bound:Schema.t -> Calc.expr -> Calc.expr
