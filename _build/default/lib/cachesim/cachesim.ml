type cache = {
  line_bits : int;
  sets : int;
  ways : int;
  tags : int array; (* sets * ways, -1 = invalid *)
  stamps : int array; (* LRU timestamps *)
  mutable clock : int;
  mutable refs : int;
  mutable misses : int;
}

let cache ?(line = 64) ~sets ~ways () =
  let line_bits =
    let rec go b = if 1 lsl b >= line then b else go (b + 1) in
    go 0
  in
  {
    line_bits;
    sets;
    ways;
    tags = Array.make (sets * ways) (-1);
    stamps = Array.make (sets * ways) 0;
    clock = 0;
    refs = 0;
    misses = 0;
  }

let access c addr =
  c.refs <- c.refs + 1;
  c.clock <- c.clock + 1;
  let block = addr lsr c.line_bits in
  let set = block mod c.sets in
  let base = set * c.ways in
  let hit = ref false in
  let victim = ref base in
  let oldest = ref max_int in
  for w = 0 to c.ways - 1 do
    let i = base + w in
    if c.tags.(i) = block then begin
      hit := true;
      c.stamps.(i) <- c.clock
    end
    else if c.stamps.(i) < !oldest then begin
      oldest := c.stamps.(i);
      victim := i
    end
  done;
  if not !hit then begin
    c.misses <- c.misses + 1;
    c.tags.(!victim) <- block;
    c.stamps.(!victim) <- c.clock
  end;
  !hit

let refs c = c.refs
let misses c = c.misses

let reset c =
  Array.fill c.tags 0 (Array.length c.tags) (-1);
  Array.fill c.stamps 0 (Array.length c.stamps) 0;
  c.clock <- 0;
  c.refs <- 0;
  c.misses <- 0

type hierarchy = { l1d : cache; llc : cache }

(* 32 KiB / 8-way / 64 B = 64 sets; 15 MiB / 20-way / 64 B = 12288 sets. *)
let default_hierarchy () =
  { l1d = cache ~sets:64 ~ways:8 (); llc = cache ~sets:12288 ~ways:20 () }

let attach h =
  Divm_storage.Trace.set_sink
    (Some
       (fun addr _kind ->
         if not (access h.l1d addr) then ignore (access h.llc addr)));
  fun () -> Divm_storage.Trace.set_sink None

type counters = {
  l1d_refs : int;
  l1d_misses : int;
  llc_refs : int;
  llc_misses : int;
}

let counters h =
  {
    l1d_refs = refs h.l1d;
    l1d_misses = misses h.l1d;
    llc_refs = refs h.llc;
    llc_misses = misses h.llc;
  }

let reset_hierarchy h =
  reset h.l1d;
  reset h.llc
