(** Set-associative LRU cache simulator — the perf-counter substitute for
    the Table 2 experiment (see DESIGN.md).

    A two-level hierarchy replays the storage layer's pseudo-address stream
    ({!Divm_storage.Trace}): accesses hit a private L1D; L1D misses become
    LLC references; LLC misses are counted. Geometry defaults mirror the
    paper's Xeon E5-2630L (32 KiB 8-way L1D, 15 MiB 20-way shared LLC,
    64-byte lines). *)

type cache

val cache : ?line:int -> sets:int -> ways:int -> unit -> cache

(** [access c addr] returns [true] on hit. *)
val access : cache -> int -> bool

val refs : cache -> int
val misses : cache -> int
val reset : cache -> unit

type hierarchy = { l1d : cache; llc : cache }

val default_hierarchy : unit -> hierarchy

(** Install the hierarchy as the storage trace sink; returns a function that
    uninstalls it. *)
val attach : hierarchy -> unit -> unit

type counters = {
  l1d_refs : int;
  l1d_misses : int;
  llc_refs : int;
  llc_misses : int;
}

val counters : hierarchy -> counters
val reset_hierarchy : hierarchy -> unit
