lib/cachesim/cachesim.mli:
