lib/cachesim/cachesim.ml: Array Divm_storage
