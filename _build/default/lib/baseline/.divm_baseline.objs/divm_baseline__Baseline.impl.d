lib/baseline/baseline.ml: Compile Divm_compiler Divm_ring Divm_runtime Exec Gmr Prog Runtime Unix
