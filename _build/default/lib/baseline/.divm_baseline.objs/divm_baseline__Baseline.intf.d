lib/baseline/baseline.mli: Calc Divm_calc Divm_compiler Divm_ring Gmr Schema Vtuple
