type var = { name : string; ty : Value.ty }
type t = var list

let var ?(ty = Value.TFloat) name = { name; ty }
let var_equal a b = String.equal a.name b.name
let mem v l = List.exists (var_equal v) l
let union a b = a @ List.filter (fun v -> not (mem v a)) b
let inter a b = List.filter (fun v -> mem v b) a
let diff a b = List.filter (fun v -> not (mem v b)) a
let subset a b = List.for_all (fun v -> mem v b) a
let equal_as_sets a b = subset a b && subset b a

let positions sub sup =
  let idx v =
    let rec go i = function
      | [] -> raise Not_found
      | x :: _ when var_equal x v -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 sup
  in
  Array.of_list (List.map idx sub)

let pp_var ppf v = Format.pp_print_string ppf v.name

let pp ppf l =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_var)
    l

let to_string l = Format.asprintf "%a" pp l
