type t = float Vtuple.Tbl.t

let zero_eps = 1e-9
let is_zero m = Float.abs m < zero_eps
let create ?(size = 16) () = Vtuple.Tbl.create size

let add r tup m =
  if not (is_zero m) then
    match Vtuple.Tbl.find_opt r tup with
    | None -> Vtuple.Tbl.replace r tup m
    | Some old ->
        let m' = old +. m in
        if is_zero m' then Vtuple.Tbl.remove r tup
        else Vtuple.Tbl.replace r tup m'

let set r tup m =
  if is_zero m then Vtuple.Tbl.remove r tup else Vtuple.Tbl.replace r tup m

let mult r tup = match Vtuple.Tbl.find_opt r tup with None -> 0. | Some m -> m
let mem = Vtuple.Tbl.mem
let iter f r = Vtuple.Tbl.iter f r
let fold f r acc = Vtuple.Tbl.fold f r acc
let cardinal = Vtuple.Tbl.length
let is_empty r = Vtuple.Tbl.length r = 0
let copy = Vtuple.Tbl.copy
let clear = Vtuple.Tbl.clear
let union_into dst src = iter (fun tup m -> add dst tup m) src

let scale r c =
  let out = create ~size:(cardinal r) () in
  if not (is_zero c) then iter (fun tup m -> add out tup (m *. c)) r;
  out

let of_list l =
  let r = create ~size:(List.length l) () in
  List.iter (fun (tup, m) -> add r tup m) l;
  r

let to_list r = fold (fun tup m acc -> (tup, m) :: acc) r []

let to_sorted_list r =
  List.sort (fun (a, _) (b, _) -> Vtuple.compare a b) (to_list r)

let equal ?(eps = 1e-6) a b =
  cardinal a = cardinal b
  && fold (fun tup m ok -> ok && Float.abs (mult b tup -. m) <= eps) a true

let byte_size r = fold (fun tup _ acc -> acc + Vtuple.byte_size tup + 8) r 0

let pp ppf r =
  Format.fprintf ppf "@[<v>{";
  List.iter
    (fun (tup, m) -> Format.fprintf ppf "@ %a -> %g;" Vtuple.pp tup m)
    (to_sorted_list r);
  Format.fprintf ppf "@ }@]"
