(** Typed variables and schemas of calculus expressions. *)

type var = { name : string; ty : Value.ty }
type t = var list

val var : ?ty:Value.ty -> string -> var

(** Variable equality is by name only: the calculus never reuses one name at
    two types inside one expression. *)
val var_equal : var -> var -> bool

val mem : var -> t -> bool
val union : t -> t -> t

(** [inter a b] keeps the elements of [a] that occur in [b], in [a]'s order. *)
val inter : t -> t -> t

(** [diff a b] keeps the elements of [a] not in [b]. *)
val diff : t -> t -> t

val subset : t -> t -> bool
val equal_as_sets : t -> t -> bool

(** [positions sub sup] gives, for each variable of [sub], its index in
    [sup]. Raises [Not_found] if one is missing. *)
val positions : t -> t -> int array

val pp_var : Format.formatter -> var -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
