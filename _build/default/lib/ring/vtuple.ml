type t = Value.t array

let empty : t = [||]

let equal a b =
  Array.length a = Array.length b
  &&
  let rec go i = i < 0 || (Value.equal a.(i) b.(i) && go (i - 1)) in
  go (Array.length a - 1)

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i >= la then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let hash t =
  let h = ref 17 in
  for i = 0 to Array.length t - 1 do
    h := (!h * 31) + Value.hash t.(i)
  done;
  !h land max_int

let concat = Array.append
let project t idxs = Array.map (fun i -> t.(i)) idxs

let byte_size t =
  Array.fold_left (fun acc v -> acc + Value.byte_size v) 0 t

let pp ppf t =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    t

let to_string t = Format.asprintf "%a" pp t

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
