lib/ring/schema.ml: Array Format List String Value
