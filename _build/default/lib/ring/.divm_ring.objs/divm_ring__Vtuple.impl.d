lib/ring/vtuple.ml: Array Format Hashtbl Stdlib Value
