lib/ring/value.mli: Format
