lib/ring/value.ml: Float Format Hashtbl Stdlib String
