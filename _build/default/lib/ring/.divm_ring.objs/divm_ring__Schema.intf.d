lib/ring/schema.mli: Format Value
