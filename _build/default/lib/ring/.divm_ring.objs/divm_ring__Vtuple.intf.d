lib/ring/vtuple.mli: Format Hashtbl Value
