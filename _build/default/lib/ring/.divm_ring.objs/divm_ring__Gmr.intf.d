lib/ring/gmr.mli: Format Vtuple
