lib/ring/gmr.ml: Float Format List Vtuple
