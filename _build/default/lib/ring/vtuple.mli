(** Tuples of values — the keys of generalized multiset relations. *)

type t = Value.t array

val empty : t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** [concat a b] appends [b]'s fields after [a]'s. *)
val concat : t -> t -> t

(** [project t idxs] keeps the fields at positions [idxs], in that order. *)
val project : t -> int array -> t

val byte_size : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Tbl : Hashtbl.S with type key = t
