(** SQL frontend: a parser and calculus translator for the paper's query
    class — flat aggregate queries plus equality-correlated nested
    aggregates, EXISTS/NOT EXISTS, IN, and scalar subquery comparisons.

    {[
      let maps =
        Sql.compile
          ~catalog:[ ("R", [ va; vb ]); ("S", [ vb2; vc ]) ]
          ~name:"Q"
          "SELECT R.a, SUM(R.b * S.c) FROM R, S \
           WHERE R.b = S.b GROUP BY R.a"
      (* -> [ ("Q", <calculus expr>) ] ready for Compile.compile *)
    ]}

    Column equalities become shared calculus variables (joins and
    correlations are nominal in the calculus); correlated subqueries are
    compiled to the group-by-correlated [Lift] form that the
    domain-extraction machinery of §3.2.2 incrementalizes. *)

open Divm_ring
open Divm_calc

exception Parse_error of string
exception Compile_error of string

(** [compile ~catalog ~name sql] parses and translates one query; returns
    one named map per aggregate (AVG yields a [_sum]/[_count] pair). *)
val compile :
  catalog:(string * Schema.t) list ->
  ?name:string ->
  string ->
  (string * Calc.expr) list

(** Parse only (exposed for tooling/tests). *)
val parse : string -> Ast.query
