exception Parse_error of string
exception Compile_error of string

let compile ~catalog ?name s =
  try To_calc.compile_string ?name catalog s with
  | Lexer.Error m | Parser.Error m -> raise (Parse_error m)
  | To_calc.Error m -> raise (Compile_error m)

let parse s =
  try Parser.parse s with
  | Lexer.Error m | Parser.Error m -> raise (Parse_error m)
