(* Hand-rolled lexer for the SQL subset. Keywords are case-insensitive;
   identifiers keep their case. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string (* uppercased keyword *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | CMP of Ast.cmp
  | EOF

exception Error of string

let keywords =
  [
    "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "GROUP"; "BY"; "AND"; "OR";
    "EXISTS"; "NOT"; "IN"; "AS"; "SUM"; "COUNT"; "AVG"; "DATE"; "BETWEEN";
  ]

let tokenize (s : string) : token list =
  let n = String.length s in
  let out = ref [] in
  let push t = out := t :: !out in
  let i = ref 0 in
  let peek () = if !i < n then Some s.[!i] else None in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
    || (c >= '0' && c <= '9')
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\n' || c = '\t' || c = '\r' then incr i
    else if c = '(' then (push LPAREN; incr i)
    else if c = ')' then (push RPAREN; incr i)
    else if c = ',' then (push COMMA; incr i)
    else if c = '.' && not (!i + 1 < n && s.[!i + 1] >= '0' && s.[!i + 1] <= '9')
    then (push DOT; incr i)
    else if c = '*' then (push STAR; incr i)
    else if c = '+' then (push PLUS; incr i)
    else if c = '-' then (push MINUS; incr i)
    else if c = '/' then (push SLASH; incr i)
    else if c = '=' then (push (CMP Ast.Eq); incr i)
    else if c = '<' then begin
      incr i;
      match peek () with
      | Some '=' -> (push (CMP Ast.Lte); incr i)
      | Some '>' -> (push (CMP Ast.Neq); incr i)
      | _ -> push (CMP Ast.Lt)
    end
    else if c = '>' then begin
      incr i;
      match peek () with
      | Some '=' -> (push (CMP Ast.Gte); incr i)
      | _ -> push (CMP Ast.Gt)
    end
    else if c = '!' && !i + 1 < n && s.[!i + 1] = '=' then begin
      push (CMP Ast.Neq);
      i := !i + 2
    end
    else if c = '\'' then begin
      incr i;
      let b = Buffer.create 8 in
      while !i < n && s.[!i] <> '\'' do
        Buffer.add_char b s.[!i];
        incr i
      done;
      if !i >= n then raise (Error "unterminated string literal");
      incr i;
      push (STRING (Buffer.contents b))
    end
    else if (c >= '0' && c <= '9') || (c = '.' && !i + 1 < n) then begin
      let start = !i in
      let isfloat = ref false in
      while
        !i < n
        && ((s.[!i] >= '0' && s.[!i] <= '9') || s.[!i] = '.')
      do
        if s.[!i] = '.' then isfloat := true;
        incr i
      done;
      let lit = String.sub s start (!i - start) in
      if !isfloat then push (FLOAT (float_of_string lit))
      else push (INT (int_of_string lit))
    end
    else if is_ident c then begin
      let start = !i in
      while !i < n && is_ident s.[!i] do
        incr i
      done;
      let word = String.sub s start (!i - start) in
      let up = String.uppercase_ascii word in
      if List.mem up keywords then push (KW up) else push (IDENT word)
    end
    else raise (Error (Printf.sprintf "unexpected character %c at %d" c !i))
  done;
  List.rev (EOF :: !out)
