(* Abstract syntax of the supported SQL subset (§3.1: flat queries with
   aggregates, equality-correlated nested aggregates, EXISTS/IN). *)

type expr =
  | Int of int
  | Float of float
  | Str of string
  | DateLit of int * int * int
  | Col of string option * string (* alias.column *)
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr

type cmp = Eq | Neq | Lt | Lte | Gt | Gte

type pred =
  | Cmp of cmp * expr * expr
  | CmpSub of cmp * expr * query (* scalar subquery comparison *)
  | Exists of query
  | NotExists of query
  | In of expr * query
  | Or of pred * pred
  | Between of expr * expr * expr

and select_item =
  | SelCol of expr * string option (* group-by column [AS name] *)
  | SelSum of expr * string option
  | SelCount of string option
  | SelAvg of expr * string option

and query = {
  distinct : bool;
  select : select_item list;
  from : (string * string) list; (* table, alias *)
  where : pred list; (* conjunction *)
  group_by : (string option * string) list;
}
