lib/sql/ast.ml:
