lib/sql/to_calc.ml: Ast Calc Divm_calc Divm_ring Hashtbl List Parser Printf Schema String Value Vexpr
