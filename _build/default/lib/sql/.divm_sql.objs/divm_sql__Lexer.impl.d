lib/sql/lexer.ml: Ast Buffer List Printf String
