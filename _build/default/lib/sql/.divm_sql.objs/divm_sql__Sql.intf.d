lib/sql/sql.mli: Ast Calc Divm_calc Divm_ring Schema
