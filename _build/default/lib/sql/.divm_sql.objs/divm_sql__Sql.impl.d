lib/sql/sql.ml: Lexer Parser To_calc
