(* Translation of the SQL subset into the calculus.

   Equality predicates between columns are turned into shared variables
   (the calculus expresses joins and correlations through names): a
   union-find over column variables picks one representative per class,
   preferring outer-scope variables so that correlated nested aggregates
   end up in the group-by-correlated form the domain-extraction machinery
   recognizes (§3.2.2). *)

open Divm_ring
open Divm_calc
open Divm_calc.Calc

exception Error of string

type catalog = (string * Schema.t) list

(* ------------------------------------------------------------------ *)
(* Scopes and variable instantiation                                   *)
(* ------------------------------------------------------------------ *)

type scope = {
  bindings : ((string * string) * Schema.var) list; (* (alias, col) -> var *)
  depth : int;
}

let counter = ref 0

let fresh_name base =
  incr counter;
  Printf.sprintf "%s_%d" base !counter

let instantiate cat ~depth from =
  let bindings = ref [] in
  let atoms =
    List.map
      (fun (table, alias) ->
        let schema =
          match List.assoc_opt table cat with
          | Some s -> s
          | None -> raise (Error ("unknown table " ^ table))
        in
        let vars =
          List.map
            (fun (cv : Schema.var) ->
              let v =
                { cv with Schema.name = fresh_name (alias ^ "_" ^ cv.name) }
              in
              bindings := ((alias, cv.name), v) :: !bindings;
              v)
            schema
        in
        Calc.rel table vars)
      from
  in
  (atoms, { bindings = List.rev !bindings; depth })

let resolve scopes (alias_opt, col) =
  let try_scope sc =
    match alias_opt with
    | Some a -> List.assoc_opt (a, col) sc.bindings
    | None -> (
        match
          List.filter (fun ((_, c), _) -> String.equal c col) sc.bindings
        with
        | [ (_, v) ] -> Some v
        | [] -> None
        | _ -> raise (Error ("ambiguous column " ^ col)))
  in
  let rec go = function
    | [] ->
        raise
          (Error
             ("unknown column "
             ^ (match alias_opt with Some a -> a ^ "." | None -> "")
             ^ col))
    | sc :: rest -> ( match try_scope sc with Some v -> v | None -> go rest)
  in
  go scopes

(* ------------------------------------------------------------------ *)
(* Union-find over column variables (by name)                          *)
(* ------------------------------------------------------------------ *)

type uf = (string, string) Hashtbl.t

let rec find (uf : uf) x =
  match Hashtbl.find_opt uf x with
  | None -> x
  | Some p ->
      let r = find uf p in
      if r <> p then Hashtbl.replace uf x r;
      r

(* Union preferring the shallower (outer) scope's variable as the
   representative. *)
let union uf ~depth_of a b =
  let ra = find uf a and rb = find uf b in
  if ra <> rb then begin
    let da = depth_of ra and db = depth_of rb in
    if da <= db then Hashtbl.replace uf rb ra else Hashtbl.replace uf ra rb
  end

(* ------------------------------------------------------------------ *)
(* Expression translation                                              *)
(* ------------------------------------------------------------------ *)

let rec tr_expr scopes (e : Ast.expr) : Vexpr.t =
  match e with
  | Ast.Int k -> Vexpr.const_i k
  | Ast.Float f -> Vexpr.const_f f
  | Ast.Str s -> Vexpr.Const (Value.String s)
  | Ast.DateLit (y, m, d) -> Vexpr.Const (Value.date y m d)
  | Ast.Col (a, c) -> Vexpr.var (resolve scopes (a, c))
  | Ast.Add (a, b) -> Vexpr.Add (tr_expr scopes a, tr_expr scopes b)
  | Ast.Sub (a, b) -> Vexpr.Sub (tr_expr scopes a, tr_expr scopes b)
  | Ast.Mul (a, b) -> Vexpr.Mul (tr_expr scopes a, tr_expr scopes b)
  | Ast.Div (a, b) -> Vexpr.Div (tr_expr scopes a, tr_expr scopes b)

let tr_cmp (c : Ast.cmp) : Calc.cmp_op =
  match c with
  | Ast.Eq -> Eq
  | Ast.Neq -> Neq
  | Ast.Lt -> Lt
  | Ast.Lte -> Lte
  | Ast.Gt -> Gt
  | Ast.Gte -> Gte

(* ------------------------------------------------------------------ *)
(* Query body compilation                                              *)
(* ------------------------------------------------------------------ *)

(* Compile a query body under outer [scopes]: returns the product factors
   (atoms, filters, nested lifts) with variable unification applied, plus
   the local scope. *)
let rec compile_body cat scopes (q : Ast.query) =
  let depth = match scopes with [] -> 0 | sc :: _ -> sc.depth + 1 in
  let atoms, local = instantiate cat ~depth q.Ast.from in
  let scopes' = local :: scopes in
  (* pass 1: unification of column equalities *)
  let uf : uf = Hashtbl.create 16 in
  let depth_of name =
    let rec go = function
      | [] -> max_int
      | sc :: rest ->
          if List.exists (fun (_, (v : Schema.var)) -> v.name = name) sc.bindings
          then sc.depth
          else go rest
    in
    go scopes'
  in
  List.iter
    (fun p ->
      match p with
      | Ast.Cmp (Ast.Eq, Ast.Col (a1, c1), Ast.Col (a2, c2)) ->
          let v1 = resolve scopes' (a1, c1) and v2 = resolve scopes' (a2, c2) in
          union uf ~depth_of v1.Schema.name v2.Schema.name
      | _ -> ())
    q.Ast.where;
  let subst_var (v : Schema.var) = { v with Schema.name = find uf v.name } in
  let subst_expr = Calc.rename subst_var in
  let atoms = List.map subst_expr atoms in
  (* rewrite the local scope so later resolution sees representatives *)
  let local =
    { local with bindings = List.map (fun (k, v) -> (k, subst_var v)) local.bindings }
  in
  let scopes' = local :: scopes in
  (* pass 2: remaining predicates *)
  let filters =
    List.concat_map
      (fun p ->
        match p with
        | Ast.Cmp (Ast.Eq, Ast.Col _, Ast.Col _) -> [] (* unified away *)
        | p -> [ compile_pred cat scopes' p ])
      q.Ast.where
  in
  (atoms @ filters, local, scopes')

and compile_pred cat scopes (p : Ast.pred) : Calc.expr =
  match p with
  | Ast.Cmp (op, a, b) ->
      Calc.cmp (tr_cmp op) (tr_expr scopes a) (tr_expr scopes b)
  | Ast.Between (e, lo, hi) ->
      let ve = tr_expr scopes e in
      Calc.prod
        [
          Calc.cmp Gte ve (tr_expr scopes lo);
          Calc.cmp Lte ve (tr_expr scopes hi);
        ]
  | Ast.Or (a, b) ->
      Calc.add [ compile_pred cat scopes a; compile_pred cat scopes b ]
  | Ast.Exists sub ->
      let e = Schema.var (fresh_name "ex") in
      Calc.prod
        [
          Calc.lift e (subquery_count cat scopes sub);
          Calc.cmp Neq (Vexpr.var e) (Vexpr.const_i 0);
        ]
  | Ast.NotExists sub ->
      let e = Schema.var (fresh_name "nex") in
      Calc.prod
        [
          Calc.lift e (subquery_count cat scopes sub);
          Calc.cmp Eq (Vexpr.var e) (Vexpr.const_i 0);
        ]
  | Ast.In (e, sub) -> (
      (* e IN (SELECT c ...) ≡ EXISTS(... AND c = e) *)
      match sub.Ast.select with
      | [ Ast.SelCol (Ast.Col (ca, cc), _) ] ->
          let factors, _, sub_scopes = compile_body cat scopes sub in
          let cv = resolve sub_scopes (ca, cc) in
          let corr = correlated scopes factors in
          let e' = tr_expr scopes e in
          let x = Schema.var (fresh_name "inx") in
          Calc.prod
            [
              Calc.lift x
                (Calc.sum corr
                   (Calc.prod
                      (factors @ [ Calc.cmp Eq (Vexpr.var cv) e' ])));
              Calc.cmp Neq (Vexpr.var x) (Vexpr.const_i 0);
            ]
      | _ -> raise (Error "IN subquery must select a single column"))
  | Ast.CmpSub (op, e, sub) -> (
      match sub.Ast.select with
      | [ item ] ->
          let factors, _, sub_scopes = compile_body cat scopes sub in
          let corr = correlated scopes factors in
          let body =
            match item with
            | Ast.SelSum (ae, _) ->
                Calc.prod (factors @ [ Calc.value (tr_expr sub_scopes ae) ])
            | Ast.SelCount _ -> Calc.prod factors
            | _ -> raise (Error "scalar subquery must be SUM or COUNT")
          in
          let x = Schema.var (fresh_name "sub") in
          Calc.prod
            [
              Calc.lift x (Calc.sum corr body);
              Calc.cmp (tr_cmp op) (tr_expr scopes e) (Vexpr.var x);
            ]
      | _ -> raise (Error "scalar subquery must have one select item"))

(* Correlated variables: outer-scope variables referenced by the inner
   factors (after unification) — they become the inner group-by, enabling
   domain extraction. *)
and correlated outer_scopes factors =
  let outer_vars =
    List.concat_map (fun sc -> List.map snd sc.bindings) outer_scopes
  in
  let used =
    List.fold_left
      (fun acc f -> Schema.union acc (Calc.all_vars f))
      [] factors
  in
  Schema.inter outer_vars used

and subquery_count cat scopes sub =
  let factors, _, _ = compile_body cat scopes sub in
  let corr = correlated scopes factors in
  Calc.sum corr (Calc.prod factors)

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let compile ?(name = "Q") (cat : catalog) (q : Ast.query) :
    (string * Calc.expr) list =
  counter := 0;
  let factors, _, scopes = compile_body cat [] q in
  let gb = List.map (fun (a, c) -> resolve scopes (a, c)) q.Ast.group_by in
  let aggs =
    List.filter
      (function Ast.SelCol _ -> false | _ -> true)
      q.Ast.select
  in
  if aggs = [] then begin
    (* plain projection: meaningful only with DISTINCT *)
    let cols =
      List.filter_map
        (function
          | Ast.SelCol (Ast.Col (ca, cc), _) -> Some (resolve scopes (ca, cc))
          | Ast.SelCol _ -> raise (Error "non-column projection")
          | _ -> None)
        q.Ast.select
    in
    let keys = Schema.union gb cols in
    if q.Ast.distinct then
      [ (name, Calc.exists (Calc.sum keys (Calc.prod factors))) ]
    else [ (name, Calc.sum keys (Calc.prod factors)) ]
  end
  else
    List.concat
      (List.mapi
         (fun i item ->
           let mk suffix body = (Printf.sprintf "%s%s" name suffix, body) in
           let suffix alias fallback =
             match alias with
             | Some a -> "_" ^ a
             | None ->
                 if List.length aggs = 1 then ""
                 else Printf.sprintf "_%s%d" fallback i
           in
           match item with
           | Ast.SelSum (e, alias) ->
               [
                 mk
                   (suffix alias "sum")
                   (Calc.sum gb
                      (Calc.prod (factors @ [ Calc.value (tr_expr scopes e) ])));
               ]
           | Ast.SelCount alias ->
               [ mk (suffix alias "count") (Calc.sum gb (Calc.prod factors)) ]
           | Ast.SelAvg (e, alias) ->
               let base = suffix alias "avg" in
               [
                 mk (base ^ "_sum")
                   (Calc.sum gb
                      (Calc.prod (factors @ [ Calc.value (tr_expr scopes e) ])));
                 mk (base ^ "_count") (Calc.sum gb (Calc.prod factors));
               ]
           | Ast.SelCol _ -> [])
         q.Ast.select)

let compile_string ?name cat s = compile ?name cat (Parser.parse s)
