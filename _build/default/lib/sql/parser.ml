(* Recursive-descent parser for the SQL subset. *)

open Ast

exception Error of string

type st = { mutable toks : Lexer.token list }

let peek st = match st.toks with [] -> Lexer.EOF | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: tl -> st.toks <- tl

let expect st t =
  if peek st = t then advance st
  else raise (Error "unexpected token")

let expect_kw st kw =
  match peek st with
  | Lexer.KW k when k = kw -> advance st
  | _ -> raise (Error ("expected " ^ kw))

let accept_kw st kw =
  match peek st with
  | Lexer.KW k when k = kw ->
      advance st;
      true
  | _ -> false

let ident st =
  match peek st with
  | Lexer.IDENT s ->
      advance st;
      s
  | _ -> raise (Error "expected identifier")

(* expr := term (('+'|'-') term)* ; term := factor (('*'|'/') factor)* *)
let rec parse_expr st =
  let lhs = parse_term st in
  match peek st with
  | Lexer.PLUS ->
      advance st;
      Add (lhs, parse_expr st)
  | Lexer.MINUS ->
      advance st;
      Sub (lhs, parse_expr st)
  | _ -> lhs

and parse_term st =
  let lhs = parse_factor st in
  match peek st with
  | Lexer.STAR ->
      advance st;
      Mul (lhs, parse_term st)
  | Lexer.SLASH ->
      advance st;
      Div (lhs, parse_term st)
  | _ -> lhs

and parse_factor st =
  match peek st with
  | Lexer.INT k ->
      advance st;
      Int k
  | Lexer.FLOAT f ->
      advance st;
      Float f
  | Lexer.STRING s ->
      advance st;
      Str s
  | Lexer.KW "DATE" -> (
      advance st;
      match peek st with
      | Lexer.STRING s -> (
          advance st;
          match String.split_on_char '-' s with
          | [ y; m; d ] ->
              DateLit (int_of_string y, int_of_string m, int_of_string d)
          | _ -> raise (Error ("bad date literal " ^ s)))
      | _ -> raise (Error "expected date string"))
  | Lexer.LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.RPAREN;
      e
  | Lexer.IDENT a -> (
      advance st;
      match peek st with
      | Lexer.DOT ->
          advance st;
          Col (Some a, ident st)
      | _ -> Col (None, a))
  | _ -> raise (Error "expected expression")

(* predicates *)
let rec parse_pred st =
  let p = parse_pred_atom st in
  if accept_kw st "OR" then Or (p, parse_pred st) else p

and parse_pred_atom st =
  if accept_kw st "EXISTS" then begin
    expect st Lexer.LPAREN;
    let q = parse_query st in
    expect st Lexer.RPAREN;
    Exists q
  end
  else if accept_kw st "NOT" then begin
    expect_kw st "EXISTS";
    expect st Lexer.LPAREN;
    let q = parse_query st in
    expect st Lexer.RPAREN;
    NotExists q
  end
  else if peek st = Lexer.LPAREN then begin
    (* parenthesized predicate *)
    advance st;
    let p = parse_pred st in
    expect st Lexer.RPAREN;
    p
  end
  else begin
    let lhs = parse_expr st in
    if accept_kw st "IN" then begin
      expect st Lexer.LPAREN;
      let q = parse_query st in
      expect st Lexer.RPAREN;
      In (lhs, q)
    end
    else if accept_kw st "BETWEEN" then begin
      let lo = parse_expr st in
      expect_kw st "AND";
      let hi = parse_expr st in
      Between (lhs, lo, hi)
    end
    else
      match peek st with
      | Lexer.CMP op -> (
          advance st;
          (* scalar subquery? *)
          match st.toks with
          | Lexer.KW "SELECT" :: _ -> raise (Error "unparenthesized subquery")
          | _ ->
              if peek st = Lexer.LPAREN then begin
                match st.toks with
                | Lexer.LPAREN :: Lexer.KW "SELECT" :: _ ->
                    advance st;
                    let q = parse_query st in
                    expect st Lexer.RPAREN;
                    CmpSub (op, lhs, q)
                | _ ->
                    let rhs = parse_expr st in
                    Cmp (op, lhs, rhs)
              end
              else
                let rhs = parse_expr st in
                Cmp (op, lhs, rhs))
      | _ -> raise (Error "expected comparison")
  end

and parse_where st =
  let rec go acc =
    let p = parse_pred st in
    let acc =
      match p with
      | Between (e, lo, hi) -> Cmp (Lte, e, hi) :: Cmp (Gte, e, lo) :: acc
      | p -> p :: acc
    in
    if accept_kw st "AND" then go acc else List.rev acc
  in
  go []

and parse_select_item st =
  if accept_kw st "SUM" then begin
    expect st Lexer.LPAREN;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    let alias = if accept_kw st "AS" then Some (ident st) else None in
    SelSum (e, alias)
  end
  else if accept_kw st "AVG" then begin
    expect st Lexer.LPAREN;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    let alias = if accept_kw st "AS" then Some (ident st) else None in
    SelAvg (e, alias)
  end
  else if accept_kw st "COUNT" then begin
    expect st Lexer.LPAREN;
    (match peek st with
    | Lexer.STAR -> advance st
    | _ -> ignore (parse_expr st));
    expect st Lexer.RPAREN;
    let alias = if accept_kw st "AS" then Some (ident st) else None in
    SelCount alias
  end
  else
    let e = parse_expr st in
    let alias = if accept_kw st "AS" then Some (ident st) else None in
    SelCol (e, alias)

and parse_query st =
  expect_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let rec items acc =
    let it = parse_select_item st in
    if peek st = Lexer.COMMA then begin
      advance st;
      items (it :: acc)
    end
    else List.rev (it :: acc)
  in
  let select = items [] in
  expect_kw st "FROM";
  let rec tables acc =
    let t = ident st in
    let alias =
      match peek st with
      | Lexer.IDENT a ->
          advance st;
          a
      | _ -> t
    in
    if peek st = Lexer.COMMA then begin
      advance st;
      tables ((t, alias) :: acc)
    end
    else List.rev ((t, alias) :: acc)
  in
  let from = tables [] in
  let where = if accept_kw st "WHERE" then parse_where st else [] in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      let rec cols acc =
        let a = ident st in
        let col =
          match peek st with
          | Lexer.DOT ->
              advance st;
              (Some a, ident st)
          | _ -> (None, a)
        in
        if peek st = Lexer.COMMA then begin
          advance st;
          cols (col :: acc)
        end
        else List.rev (col :: acc)
      in
      cols []
    end
    else []
  in
  { distinct; select; from; where; group_by }

let parse (s : string) : query =
  let st = { toks = Lexer.tokenize s } in
  let q = parse_query st in
  (match peek st with
  | Lexer.EOF -> ()
  | _ -> raise (Error "trailing tokens"));
  q
