(* Clickstream analytics: the kind of continuous monitoring workload the
   paper's introduction motivates. Pageview and purchase events stream in;
   three dashboards stay fresh incrementally:

   - views and revenue per page,
   - distinct visitors per page (DISTINCT → Exists),
   - "hot converters": pages whose purchase count exceeds a tenth of their
     view count (a correlated nested aggregate, maintained via domain
     extraction).

   Run with: dune exec examples/clickstream.exe *)

open Divm

let ty = Value.TInt

let v n = Schema.var ~ty n

let streams =
  [
    ("views", [ v "user_id"; v "page"; v "ts" ]);
    ("purchases", [ v "buyer"; v "ppage"; v "amount" ]);
  ]

let queries =
  Sql.compile ~catalog:streams ~name:"views_per_page"
    "SELECT views.page, COUNT(*) FROM views GROUP BY views.page"
  @ Sql.compile ~catalog:streams ~name:"visitors"
      "SELECT DISTINCT views.page, views.user_id FROM views"
  @ Sql.compile ~catalog:streams ~name:"hot"
      "SELECT views.page, COUNT(*) FROM views WHERE 1 <= (SELECT COUNT(*) \
       FROM purchases WHERE purchases.ppage = views.page) GROUP BY \
       views.page"

let () =
  let prog = Compile.compile ~streams queries in
  let rt = Runtime.create prog in
  Printf.printf
    "clickstream: %d maps maintain %d dashboards over 2 event streams\n"
    (List.length prog.Prog.maps)
    (List.length queries);

  (* Synthesize an event stream: 20k pageviews, 800 purchases, batches of
     500 events. *)
  let st = Random.State.make [| 7 |] in
  let i x = Value.Int x in
  let t0 = Unix.gettimeofday () in
  let events = ref 0 in
  for round = 1 to 40 do
    let views = Gmr.create () in
    for _ = 1 to 500 do
      Gmr.add views
        [| i (Random.State.int st 2000); i (Random.State.int st 50); i round |]
        1.
    done;
    let _ = Runtime.apply_batch rt ~rel:"views" views in
    events := !events + 500;
    if round mod 2 = 0 then begin
      let buys = Gmr.create () in
      for _ = 1 to 40 do
        Gmr.add buys
          [|
            i (Random.State.int st 2000);
            i (Random.State.int st 50);
            i (1 + Random.State.int st 500);
          |]
          1.
      done;
      let _ = Runtime.apply_batch rt ~rel:"purchases" buys in
      events := !events + 40
    end
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Printf.printf "processed %d events in %.3fs (%.0f events/s)\n" !events dt
    (float_of_int !events /. dt);

  let card n = Gmr.cardinal (Runtime.result rt n) in
  Printf.printf "pages tracked: %d, distinct (page, visitor) pairs: %d\n"
    (card "views_per_page") (card "visitors");
  Printf.printf "pages with at least one purchase: %d\n" (card "hot");

  (* Retention: forget the first round's views with a deletion batch — the
     dashboards adjust incrementally. *)
  let before = card "visitors" in
  let deletions = Gmr.create () in
  let st2 = Random.State.make [| 7 |] in
  for _ = 1 to 500 do
    Gmr.add deletions
      [| i (Random.State.int st2 2000); i (Random.State.int st2 50); i 1 |]
      (-1.)
  done;
  let _ = Runtime.apply_batch rt ~rel:"views" deletions in
  Printf.printf "after retention deletes: %d -> %d visitor pairs\n" before
    (card "visitors")
