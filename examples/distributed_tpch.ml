(* Distributed incremental view maintenance of TPC-H Q3 on the simulated
   synchronous cluster (§4, §6.2): compile the local triggers into a
   distributed program, inspect its blocks, then process the stream and
   watch per-batch latency and network traffic as workers scale.

   Run with: dune exec examples/distributed_tpch.exe *)

open Divm

let () =
  let q = Tpch.Queries.find "Q3" in
  let prog = Compile.compile ~streams:Tpch.Schema.streams q.maps in
  let catalog = Loc.heuristic ~keys:Tpch.Schema.partition_keys prog in
  let dp = Distribute.compile ~catalog prog in

  let jobs, stages = Dprog.jobs_and_stages dp "lineitem" in
  Printf.printf "Q3 lineitem trigger: %d job(s), %d stage(s) per batch\n\n"
    jobs stages;

  let stream = Tpch.Gen.stream { Tpch.Gen.scale = 4.0; seed = 1 } ~batch_size:4000 in
  Printf.printf "%8s %10s %12s %10s %12s\n" "workers" "batches" "median lat"
    "shuffled" "result rows";
  List.iter
    (fun workers ->
      let c = Cluster.create ~config:(Cluster.config ~workers ()) dp in
      let lats = ref [] and bytes = ref 0 in
      List.iter
        (fun (rel, b) ->
          let m = Cluster.apply_batch c ~rel b in
          bytes := !bytes + m.Cluster.bytes_shuffled;
          if rel = "lineitem" then lats := m.Cluster.latency :: !lats)
        stream;
      Cluster.check_replicas c;
      let sorted = List.sort compare !lats in
      let median = List.nth sorted (List.length sorted / 2) in
      Printf.printf "%8d %10d %10.1fms %8dKB %12d\n" workers
        (List.length !lats) (median *. 1000.) (!bytes / 1024)
        (Gmr.cardinal (Cluster.result c "Q3")))
    [ 2; 4; 8; 16 ];

  (* The distributed result equals local execution. *)
  let local = Runtime.create prog in
  List.iter (fun (rel, b) -> ignore (Runtime.apply_batch local ~rel b)) stream;
  let c = Cluster.create ~config:(Cluster.config ~workers:4 ()) dp in
  List.iter (fun (rel, b) -> ignore (Cluster.apply_batch c ~rel b)) stream;
  assert (Gmr.equal (Runtime.result local "Q3") (Cluster.result c "Q3"));
  print_endline "\ndistributed result verified against local execution ✓"
