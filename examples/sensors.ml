(* Sensor-network monitoring (one of the paper's motivating domains):
   temperature readings stream in from sensors grouped into regions; the
   monitor maintains

   - reading count and temperature sum per region (avg = sum/count),
   - "hot sensors": sensors whose accumulated temperature exceeds twice
     their region's per-sensor average — a correlated nested aggregate that
     stays incrementally maintainable through domain extraction,

   and expires old readings with deletion batches (the multiset model makes
   retention a negative-multiplicity update, no window operator needed).

   Run with: dune exec examples/sensors.exe *)

open Divm

let vsid = Schema.var ~ty:Value.TInt "sensor"
let vreg = Schema.var ~ty:Value.TInt "region"
let vtemp = Schema.var ~ty:Value.TFloat "temp"
let vsid2 = Schema.var ~ty:Value.TInt "sensor2"
let vreg2 = Schema.var ~ty:Value.TInt "region"
let vtemp2 = Schema.var ~ty:Value.TFloat "temp2"

let streams = [ ("readings", [ vsid; vreg; vtemp ]) ]

let queries =
  let open Calc in
  let r = rel "readings" [ vsid; vreg; vtemp ] in
  let r2 = rel "readings" [ vsid2; vreg2; vtemp2 ] in
  let x = Vexpr.var in
  let per_region_count = sum [ vreg ] r in
  let per_region_sum = sum [ vreg ] (prod [ r; value (x vtemp) ]) in
  let s = Schema.var "region_sum"
  and c = Schema.var "region_cnt"
  and mine = Schema.var "sensor_sum" in
  (* sensor_sum · region_cnt > 2 · region_sum · sensors_per_region; with a
     fixed 8 sensors per region the sensor population cancels into the
     constant. *)
  let hot =
    exists
      (sum [ vreg; vsid ]
         (prod
            [
              r;
              lift mine
                (sum [ vreg; vsid ]
                   (prod
                      [
                        rel "readings" [ vsid; vreg; vtemp2 ];
                        value (x vtemp2);
                      ]));
              lift s (sum [ vreg ] (prod [ r2; value (x vtemp2) ]));
              lift c (sum [ vreg ] r2);
              cmp Gt
                (Vexpr.Mul (x mine, x c))
                (Vexpr.Mul (Vexpr.const_f 16., x s));
            ]))
  in
  [
    ("region_count", per_region_count);
    ("region_sum", per_region_sum);
    ("hot_sensors", hot);
  ]

let () =
  let prog = Compile.compile ~streams queries in
  let rt = Runtime.create prog in
  let st = Random.State.make [| 3 |] in
  let i x = Value.Int x and f x = Value.Float x in
  let regions = 12 and sensors_per_region = 8 in
  let window = Queue.create () in
  let mk_batch round =
    let b = Gmr.create () in
    for reg = 0 to regions - 1 do
      for s = 0 to sensors_per_region - 1 do
        let base = 20. +. Random.State.float st 5. in
        (* one sensor per region runs hot in later rounds *)
        let temp =
          if s = 0 && round > 20 then base +. 60. else base
        in
        Gmr.add b [| i ((reg * sensors_per_region) + s); i reg; f temp |] 1.
      done
    done;
    b
  in
  let hot_history = ref [] in
  for round = 1 to 40 do
    let b = mk_batch round in
    Queue.push b window;
    let _ = Runtime.apply_batch rt ~rel:"readings" b in
    (* expire readings older than 10 rounds *)
    if Queue.length window > 10 then begin
      let old = Queue.pop window in
      ignore (Runtime.apply_batch rt ~rel:"readings" (Gmr.scale old (-1.)))
    end;
    let hot = Gmr.cardinal (Runtime.result rt "hot_sensors") in
    hot_history := (round, hot) :: !hot_history
  done;
  let cnt = Runtime.result rt "region_count"
  and sm = Runtime.result rt "region_sum" in
  Printf.printf "regions monitored: %d (window of 10 rounds retained)\n"
    (Gmr.cardinal cnt);
  Gmr.iter
    (fun key total ->
      if Value.equal key.(0) (i 0) then
        Printf.printf "region 0: %.0f readings, avg %.1f°C\n"
          (Gmr.mult cnt key) (total /. Gmr.mult cnt key))
    sm;
  let at r = try List.assoc r !hot_history with Not_found -> -1 in
  Printf.printf "hot sensors at round 10: %d, at round 40: %d\n" (at 10)
    (at 40);
  assert (at 40 > at 10);
  print_endline "anomaly detection picked up the overheating sensors ✓"
