(* Algorithmic-trading monitor: single-tuple processing for microsecond
   refresh latencies (§3.3 — specialized tuple-at-a-time triggers beat
   batching when updates must be visible immediately).

   Maintained views over a trade stream trades(symbol, qty, price):
   - notional value per symbol,
   - "whales": count of trades whose notional exceeds 3x the per-symbol
     average (correlated nested aggregate; the division-free encoding
     qty·price·count > 3·sum keeps the predicate exact).

   Run with: dune exec examples/trading.exe *)

open Divm

let ty = Value.TFloat

let vsym = Schema.var ~ty:Value.TInt "symbol"
let vqty = Schema.var ~ty "qty"
let vprice = Schema.var ~ty "price"

let vsym2 = Schema.var ~ty:Value.TInt "symbol"
let vqty2 = Schema.var ~ty "qty2"
let vprice2 = Schema.var ~ty "price2"

let streams = [ ("trades", [ vsym; vqty; vprice ]) ]

let queries =
  let open Calc in
  let trades = rel "trades" [ vsym; vqty; vprice ] in
  let trades2 =
    rel "trades" [ vsym2; vqty2; vprice2 ]
    (* second instance shares the symbol column: per-symbol correlation *)
  in
  let x = Vexpr.var in
  let notional =
    sum [ vsym ] (prod [ trades; value (Vexpr.Mul (x vqty, x vprice)) ])
  in
  let s = Schema.var "sum_notional" and c = Schema.var "cnt_trades" in
  let whales =
    sum [ vsym ]
      (prod
         [
           trades;
           lift s
             (sum [ vsym2 ]
                (prod [ trades2; value (Vexpr.Mul (x vqty2, x vprice2)) ]));
           lift c (sum [ vsym2 ] trades2);
           (* qty·price·cnt > 3·sum  ⟺  notional > 3·avg *)
           cmp Gt
             (Vexpr.Mul (Vexpr.Mul (x vqty, x vprice), x c))
             (Vexpr.Mul (Vexpr.const_f 3., x s));
         ])
  in
  [ ("notional", notional); ("whales", whales) ]

let () =
  let prog =
    Compile.compile
      ~options:{ Compile.default_options with preaggregate = false }
      ~streams queries
  in
  let rt = Runtime.create prog in
  let st = Random.State.make [| 99 |] in
  let n = 50_000 in
  let lat = Array.make n 0. in
  for k = 0 to n - 1 do
    let sym = Random.State.int st 100 in
    let qty = float_of_int (1 + Random.State.int st 1000) in
    let price = 10. +. Random.State.float st 500. in
    let r =
      Runtime.apply_single rt ~rel:"trades"
        [| Value.Int sym; Value.Float qty; Value.Float price |]
        1.
    in
    lat.(k) <- r.Runtime.wall
  done;
  Array.sort compare lat;
  let pct p = lat.(int_of_float (float_of_int n *. p)) *. 1e6 in
  Printf.printf
    "%d trades, per-event refresh latency: p50=%.1fµs p99=%.1fµs p99.9=%.1fµs\n"
    n (pct 0.5) (pct 0.99) (pct 0.999);
  Printf.printf "symbols tracked: %d, symbols with whale trades: %d\n"
    (Gmr.cardinal (Runtime.result rt "notional"))
    (Gmr.cardinal (Runtime.result rt "whales"))
