(* Quickstart: define a streaming SQL query, compile it to an incremental
   maintenance program, and keep its result fresh while update batches
   arrive.

   Run with: dune exec examples/quickstart.exe *)

open Divm

let () =
  (* 1. Declare the stream schemas: two relations R(a,b) and S(b,c). *)
  let ty = Value.TInt in
  let va = Schema.var ~ty "a"
  and vb = Schema.var ~ty "b"
  and vb' = Schema.var ~ty "b"
  and vc = Schema.var ~ty "c" in
  let streams = [ ("R", [ va; vb ]); ("S", [ vb'; vc ]) ] in

  (* 2. Write the query in SQL. Equality predicates become natural joins in
     the underlying calculus. *)
  let maps =
    Sql.compile ~catalog:streams ~name:"revenue_by_b"
      "SELECT R.b, SUM(R.a * S.c) FROM R, S WHERE R.b = S.b GROUP BY R.b"
  in

  (* 3. Compile to a recursive incremental view maintenance program and
     inspect it: note the auxiliary views and the per-relation triggers. *)
  let prog = Compile.compile ~streams maps in
  Format.printf "The maintenance program:@.%a@." Prog.pp prog;

  (* 4. Load it into the specialized runtime and feed update batches.
     Positive multiplicities insert, negative delete. *)
  let rt = Runtime.create prog in
  let i x = Value.Int x in
  let batch rows = Gmr.of_list (List.map (fun (t, m) -> (t, m)) rows) in

  let r1 =
    Runtime.apply_batch rt ~rel:"R"
      (batch
         [ ([| i 1; i 10 |], 1.); ([| i 2; i 10 |], 1.); ([| i 5; i 20 |], 1.) ])
  in
  let _ =
    Runtime.apply_batch rt ~rel:"S"
      (batch [ ([| i 10; i 3 |], 1.); ([| i 20; i 7 |], 1.) ])
  in
  Format.printf "after two batches: %a@." Gmr.pp (Runtime.result rt "revenue_by_b");
  Format.printf "first batch cost: %d record ops over %d tuples@." r1.ops
    r1.tuples;

  (* A mixed batch: one insertion and one deletion. *)
  let _ =
    Runtime.apply_batch rt ~rel:"R"
      (batch [ ([| i 9; i 20 |], 1.); ([| i 1; i 10 |], -1.) ])
  in
  Format.printf "after an update batch: %a@." Gmr.pp
    (Runtime.result rt "revenue_by_b");

  (* 5. The single-tuple fast path serves latency-critical feeds. *)
  let _ = Runtime.apply_single rt ~rel:"S" [| i 10; i 100 |] 1. in
  Format.printf "after one more tuple: %a@." Gmr.pp
    (Runtime.result rt "revenue_by_b")
