(** Atomic values stored in tuples of generalized multiset relations.

    The paper's data model (Appendix A) operates on relations whose tuples
    carry typed fields; we support the types needed by the TPC-H and TPC-DS
    workloads: integers, floats, strings, and dates (encoded as [yyyymmdd]
    integers so comparisons are plain integer comparisons). *)

type t =
  | Int of int
  | Float of float
  | String of string
  | Date of int  (** encoded [yyyymmdd] *)

type ty = TInt | TFloat | TString | TDate

val ty_of : t -> ty
val ty_to_string : ty -> string

val equal : t -> t -> bool
val compare : t -> t -> int

(** Comparison with a relative numeric tolerance (1e-9): floats whose
    difference is within rounding noise compare equal. Predicates over
    aggregate values use this — two evaluation orders of the same sum must
    not flip a comparison (cf. the MIN/MAX encodings). Keys keep the exact
    [compare]. *)
val compare_approx : t -> t -> int

(** The numeric core of [compare_approx], on raw floats — for unboxed
    comparators compiled by the vectorized executor. Agrees with
    [compare_approx] on every numeric operand pair. *)
val fcompare_approx : float -> float -> int

val hash : t -> int

(** Numeric view of a value; [String] raises [Invalid_argument]. *)
val to_float : t -> float

(** Arithmetic lifts ints to floats when mixed. Raises on strings. *)
val add : t -> t -> t

val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t

(** [date y m d] builds an encoded date value. *)
val date : int -> int -> int -> t

(** Serialized size in bytes, used by the cluster simulator's shuffle
    accounting. *)
val byte_size : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
