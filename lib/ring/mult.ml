let zero_eps = 1e-9
let is_zero m = Float.abs m < zero_eps
