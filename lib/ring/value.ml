type t =
  | Int of int
  | Float of float
  | String of string
  | Date of int

type ty = TInt | TFloat | TString | TDate

let ty_of = function
  | Int _ -> TInt
  | Float _ -> TFloat
  | String _ -> TString
  | Date _ -> TDate

let ty_to_string = function
  | TInt -> "int"
  | TFloat -> "float"
  | TString -> "string"
  | TDate -> "date"

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | Date x, Date y -> x = y
  | Int x, Float y | Float y, Int x -> Float.equal (float_of_int x) y
  | _ -> false

let compare a b =
  match (a, b) with
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Float.compare x y
  | String x, String y -> String.compare x y
  | Date x, Date y -> Stdlib.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | _ -> Stdlib.compare (ty_of a) (ty_of b)

(* Numeric comparison with a relative tolerance; the single source of
   truth for [compare_approx] on numeric operands and for the unboxed
   comparators the vectorized executor compiles. *)
let fcompare_approx x y =
  let scale = Float.max 1. (Float.max (Float.abs x) (Float.abs y)) in
  if Float.abs (x -. y) <= 1e-9 *. scale then 0 else Float.compare x y

let compare_approx a b =
  match (a, b) with
  | (Int _ | Float _ | Date _), (Int _ | Float _ | Date _) ->
      let x = (match a with Int i -> float_of_int i | Float f -> f | Date d -> float_of_int d | _ -> 0.)
      and y = (match b with Int i -> float_of_int i | Float f -> f | Date d -> float_of_int d | _ -> 0.) in
      fcompare_approx x y
  | _ -> compare a b

let hash = function
  | Int x -> Hashtbl.hash x
  | Float x ->
      (* Hash float-valued integers like the integer, so that mixed-type
         equal values collide as [equal] demands. *)
      if Float.is_integer x && Float.abs x < 1e15 then
        Hashtbl.hash (int_of_float x)
      else Hashtbl.hash x
  | String x -> Hashtbl.hash x
  | Date x -> Hashtbl.hash (x lxor 0x5a5a)

let to_float = function
  | Int x -> float_of_int x
  | Float x -> x
  | Date x -> float_of_int x
  | String s -> invalid_arg ("Value.to_float: string " ^ s)

let arith name fi ff a b =
  match (a, b) with
  | Int x, Int y -> Int (fi x y)
  | (Int _ | Float _ | Date _), (Int _ | Float _ | Date _) ->
      Float (ff (to_float a) (to_float b))
  | _ -> invalid_arg ("Value." ^ name ^ ": non-numeric operand")

let add a b = arith "add" ( + ) ( +. ) a b
let sub a b = arith "sub" ( - ) ( -. ) a b
let mul a b = arith "mul" ( * ) ( *. ) a b

let div a b =
  match (a, b) with
  | _, Int 0 -> invalid_arg "Value.div: division by zero"
  | Int x, Int y when x mod y = 0 -> Int (x / y)
  | _ -> Float (to_float a /. to_float b)

let neg = function
  | Int x -> Int (-x)
  | Float x -> Float (-.x)
  | v -> invalid_arg ("Value.neg: " ^ ty_to_string (ty_of v))

let date y m d = Date ((y * 10000) + (m * 100) + d)

let byte_size = function
  | Int _ | Date _ -> 8
  | Float _ -> 8
  | String s -> 4 + String.length s

let pp ppf = function
  | Int x -> Format.fprintf ppf "%d" x
  | Float x -> Format.fprintf ppf "%g" x
  | String s -> Format.fprintf ppf "%S" s
  | Date x ->
      Format.fprintf ppf "%04d-%02d-%02d" (x / 10000) (x / 100 mod 100)
        (x mod 100)

let to_string v = Format.asprintf "%a" pp v
