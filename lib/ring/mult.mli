(** Multiplicity-ring numerics shared by every layer.

    Multiplicities are reals represented as floats; values whose absolute
    value falls below {!zero_eps} are identified with the ring's zero and
    their tuples disappear from GMRs and pools. *)

(** The cancellation threshold. *)
val zero_eps : float

(** [is_zero m] iff [m] is within {!zero_eps} of zero. *)
val is_zero : float -> bool
