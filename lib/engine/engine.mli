(** The one way to run a workload.

    Every front end (divmc, divm_stream, divm_cluster, the bench harness)
    used to construct its own runtime, simulator, or cluster by hand —
    four slightly different dances around the same three calls. [Engine]
    replaces them: one {!config} record selects the {!backend} and the
    shared knobs, one {!create}/{!apply_batch}/{!query}/{!shutdown}
    signature drives all of them, and one {!report} shape carries the
    per-batch numbers whichever backend produced them.

    Backends:
    - [Local] — the specialized single-process runtime
      ({!Divm_runtime.Runtime}), optionally domain-parallel.
    - [Simulated] — the deterministic cluster simulator
      ({!Divm_cluster.Cluster}): real partitioned execution in one
      process, latency from the cost model. The oracle.
    - [Multiprocess] — real worker processes ({!Divm_node.Node}): same
      program, same partitioning, actual sockets. The cost model runs
      over the measured op counts as a predictor, so {!report} carries
      modeled latency next to wall time and actual wire bytes.

    Simulated and Multiprocess leave bit-identical stores for the same
    input stream (qcheck-verified over the TPC-H suite in [test_node]). *)

open Divm_ring
open Divm_storage
open Divm_compiler
open Divm_dist

type backend =
  | Local
  | Simulated of Divm_cluster.Cluster.config
  | Multiprocess of Divm_node.Node.config

type config = {
  backend : backend;
  domains : int option;
      (** execution domains: the local runtime's batch fan-out, or the
          simulator's stage fan-out (where it composes with
          [Cluster.config.domains] under that record's precedence rules).
          Ignored by [Multiprocess] — its parallelism is the worker
          processes. [None] defers to [DIVM_DOMAINS]. *)
  batch_size : int;  (** for front ends that synthesize streams *)
  opt_level : int;  (** distributed optimization level 0–3 (Fig. 13) *)
  preaggregate : bool;  (** §3.3 batch pre-aggregation *)
  auto_index : bool;  (** §5.2.1 automatic indexes ([Local] only) *)
  columnar : bool;  (** §5.2.2 columnar path ([Local] only) *)
}

val config :
  ?backend:backend ->
  ?domains:int ->
  ?batch_size:int ->
  ?opt_level:int ->
  ?preaggregate:bool ->
  ?auto_index:bool ->
  ?columnar:bool ->
  unit ->
  config
(** Defaults: [Local], [batch_size = 1000], [opt_level = 3], everything
    on. *)

val default_config : config

(** Uniform per-batch accounting. Local runs fill [tuples]/[ops]/[wall]
    and leave the distributed fields zero; distributed runs model
    [latency] with the cost model and count shuffled bytes; multiprocess
    runs additionally measure [wire_bytes] and per-stage
    predicted-vs-measured {!Divm_node.Node.stage_stat}s. *)
type report = {
  tuples : int;
  ops : int;
      (** local: record ops; distributed: driver ops + per-stage maximum
          worker ops (the modeled critical path) *)
  wall : float;  (** measured seconds *)
  modeled : float option;  (** cost-model seconds (distributed backends) *)
  stages : int;
  bytes_shuffled : int;
  wire_bytes : int;
  stage_stats : Divm_node.Node.stage_stat list;
}

type t

(** Compile the workload ([preaggregate], and for distributed backends
    placement + the distributed compiler at [opt_level]) and construct
    the backend. [Multiprocess] spawns its worker processes here. *)
val create : ?config:config -> Divm_workload.Workload.t -> t

val conf : t -> config
val workload : t -> Divm_workload.Workload.t

(** ["local"], ["simulated"], or ["multiprocess"]. *)
val backend_name : t -> string

(** The compiled local trigger program (all backends). *)
val prog : t -> Prog.t

(** The distributed program ([None] for [Local]). *)
val dprog : t -> Dprog.t option

(** Execution domains actually in use ([Local] backend; 1 otherwise —
    the distributed backends' parallelism is workers, not domains). *)
val domains : t -> int

(** Bulk initial load. [Local] evaluates map definitions directly over
    the given base contents; the distributed backends maintain
    incrementally from empty (one batch per entry), which reaches the
    same state. *)
val load : t -> (string * Gmr.t) list -> unit

val apply_batch : t -> rel:string -> Gmr.t -> report

(** Single-tuple fast path on [Local]; distributed backends process a
    one-tuple batch (they have no single-tuple path). *)
val apply_single : t -> rel:string -> Vtuple.t -> float -> report

(** Result of a named query. *)
val query : t -> string -> Gmr.t

(** Assembled global contents of a map. *)
val map_contents : t -> string -> Gmr.t

(** Per-pool storage self-metrics (driver + representative worker for the
    simulator; the coordinator's driver for multiprocess). *)
val storage_stats : t -> (string * Pool.stats) list

(** Release backend resources. Required for [Multiprocess] (reaps the
    worker processes); a no-op for the others. Idempotent. *)
val shutdown : t -> unit

(** Aggregate the [stage_stats] of many reports by stage name, preserving
    first-seen order: a JSON array of
    [{"name", "batches", "predicted_ms", "measured_ms", "bytes",
    "wire_bytes"}] rows — the modeled-vs-measured reconciliation artifact
    CI uploads. Transfer rows add ["predicted_wire_bytes"] (the a-priori
    {!Divm_dist.Costmodel.predicted_wire_bytes} estimate); mesh transfers
    add ["mesh_links"] ([{"src", "dst", "bytes"}] per active link, sorted
    by (src, dst)) and, like distributed stages, ["worker_walls_ms"] /
    ["slowest_worker"] / ["straggler_ratio"] from the workers'
    self-measured shuffle walls — per-link straggler attribution. *)
val reconcile_json : report list -> string
