open Divm_storage
open Divm_compiler
open Divm_dist
module Runtime = Divm_runtime.Runtime
module Cluster = Divm_cluster.Cluster
module Node = Divm_node.Node
module Workload = Divm_workload.Workload

type backend =
  | Local
  | Simulated of Cluster.config
  | Multiprocess of Node.config

type config = {
  backend : backend;
  domains : int option;
  batch_size : int;
  opt_level : int;
  preaggregate : bool;
  auto_index : bool;
  columnar : bool;
}

let config ?(backend = Local) ?domains ?(batch_size = 1000) ?(opt_level = 3)
    ?(preaggregate = true) ?(auto_index = true) ?(columnar = true) () =
  { backend; domains; batch_size; opt_level; preaggregate; auto_index; columnar }

let default_config = config ()

type report = {
  tuples : int;
  ops : int;
  wall : float;
  modeled : float option;
  stages : int;
  bytes_shuffled : int;
  wire_bytes : int;
  stage_stats : Node.stage_stat list;
}

type impl =
  | ILocal of Runtime.t
  | ISim of Cluster.t
  | IProc of Node.t

type t = {
  cfg : config;
  w : Workload.t;
  eprog : Prog.t;
  edprog : Dprog.t option;
  impl : impl;
}

let create ?(config = default_config) (w : Workload.t) =
  let prog = Workload.compile ~preaggregate:config.preaggregate w in
  match config.backend with
  | Local ->
      let rt =
        Runtime.create ~auto_index:config.auto_index ~columnar:config.columnar
          ?domains:config.domains prog
      in
      { cfg = config; w; eprog = prog; edprog = None; impl = ILocal rt }
  | Simulated cc ->
      let dp = Workload.distribute ~level:config.opt_level w prog in
      let c = Cluster.create ~config:cc ?domains:config.domains dp in
      { cfg = config; w; eprog = prog; edprog = Some dp; impl = ISim c }
  | Multiprocess nc ->
      let dp = Workload.distribute ~level:config.opt_level w prog in
      let n = Node.create ~config:nc dp in
      { cfg = config; w; eprog = prog; edprog = Some dp; impl = IProc n }

let conf t = t.cfg
let workload t = t.w
let prog t = t.eprog
let dprog t = t.edprog

let backend_name t =
  match t.impl with
  | ILocal _ -> "local"
  | ISim _ -> "simulated"
  | IProc _ -> "multiprocess"

let domains t =
  match t.impl with ILocal rt -> Runtime.domains rt | ISim _ | IProc _ -> 1

let apply_batch t ~rel batch =
  match t.impl with
  | ILocal rt ->
      let r = Runtime.apply_batch rt ~rel batch in
      {
        tuples = r.Runtime.tuples;
        ops = r.Runtime.ops;
        wall = r.Runtime.wall;
        modeled = None;
        stages = 0;
        bytes_shuffled = 0;
        wire_bytes = 0;
        stage_stats = [];
      }
  | ISim c ->
      let t0 = Unix.gettimeofday () in
      let m = Cluster.apply_batch c ~rel batch in
      {
        tuples = Gmr.cardinal batch;
        ops = m.Cluster.driver_ops + m.Cluster.max_worker_ops;
        wall = Unix.gettimeofday () -. t0;
        modeled = Some m.Cluster.latency;
        stages = m.Cluster.stages;
        bytes_shuffled = m.Cluster.bytes_shuffled;
        wire_bytes = 0;
        stage_stats = [];
      }
  | IProc n ->
      let m = Node.apply_batch n ~rel batch in
      {
        tuples = Gmr.cardinal batch;
        ops = m.Node.driver_ops + m.Node.max_worker_ops;
        wall = m.Node.wall;
        modeled = Some m.Node.latency;
        stages = m.Node.stages;
        bytes_shuffled = m.Node.bytes_shuffled;
        wire_bytes = m.Node.wire_bytes;
        stage_stats = m.Node.stage_stats;
      }

let apply_single t ~rel tup m =
  match t.impl with
  | ILocal rt ->
      let r = Runtime.apply_single rt ~rel tup m in
      {
        tuples = r.Runtime.tuples;
        ops = r.Runtime.ops;
        wall = r.Runtime.wall;
        modeled = None;
        stages = 0;
        bytes_shuffled = 0;
        wire_bytes = 0;
        stage_stats = [];
      }
  | ISim _ | IProc _ ->
      let b = Gmr.create ~size:1 () in
      Gmr.add b tup m;
      apply_batch t ~rel b

let load t entries =
  match t.impl with
  | ILocal rt -> Runtime.load rt entries
  | ISim c ->
      List.iter (fun (rel, b) -> ignore (Cluster.apply_batch c ~rel b)) entries
  | IProc n ->
      List.iter (fun (rel, b) -> ignore (Node.apply_batch n ~rel b)) entries

let query t qname =
  match t.impl with
  | ILocal rt -> Runtime.result rt qname
  | ISim c -> Cluster.result c qname
  | IProc n -> Node.result n qname

let map_contents t name =
  match t.impl with
  | ILocal rt -> Runtime.map_contents rt name
  | ISim c -> Cluster.map_contents c name
  | IProc n -> Node.map_contents n name

let storage_stats t =
  match t.impl with
  | ILocal rt -> Runtime.storage_stats rt
  | ISim c -> Cluster.storage_stats c
  | IProc _ -> []

let shutdown t = match t.impl with IProc n -> Node.shutdown n | _ -> ()

(* Reconciliation artifact: per stage name, how the predictor did against
   the measurement, summed over the batches. Distributed stages also
   aggregate the workers' self-measured walls, attributing the slowest
   worker and its straggler ratio (max/median over the summed walls);
   mesh transfers additionally aggregate per-link wire bytes. *)
type srow = {
  mutable rn : int;
  mutable rp : float;
  mutable rm : float;
  mutable rb : int;
  mutable rwb : int;
  mutable rpwb : int;
  mutable rws : float array;
  rlinks : (int * int, int ref) Hashtbl.t;
}

let reconcile_json reports =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      List.iter
        (fun (s : Node.stage_stat) ->
          let row =
            match Hashtbl.find_opt tbl s.Node.sname with
            | Some row -> row
            | None ->
                let row =
                  {
                    rn = 0;
                    rp = 0.;
                    rm = 0.;
                    rb = 0;
                    rwb = 0;
                    rpwb = 0;
                    rws = [||];
                    rlinks = Hashtbl.create 4;
                  }
                in
                Hashtbl.add tbl s.Node.sname row;
                order := s.Node.sname :: !order;
                row
          in
          (if Array.length s.Node.swalls > 0 then
             row.rws <-
               (if Array.length row.rws = Array.length s.Node.swalls then
                  Array.mapi (fun i w -> w +. s.Node.swalls.(i)) row.rws
                else Array.copy s.Node.swalls));
          List.iter
            (fun (src, dst, b) ->
              match Hashtbl.find_opt row.rlinks (src, dst) with
              | Some r -> r := !r + b
              | None -> Hashtbl.add row.rlinks (src, dst) (ref b))
            s.Node.slinks;
          row.rn <- row.rn + 1;
          row.rp <- row.rp +. s.Node.predicted;
          row.rm <- row.rm +. s.Node.measured;
          row.rb <- row.rb + s.Node.sbytes;
          row.rwb <- row.rwb + s.Node.swire;
          row.rpwb <- row.rpwb + s.Node.spwire)
        r.stage_stats)
    reports;
  let buf = Buffer.create 256 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i name ->
      let row = Hashtbl.find tbl name in
      let n, p, m, b, wb, ws =
        (row.rn, row.rp, row.rm, row.rb, row.rwb, row.rws)
      in
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf
           "\n  {\"name\": %S, \"batches\": %d, \"predicted_ms\": %.6f, \
            \"measured_ms\": %.6f, \"bytes\": %d, \"wire_bytes\": %d"
           name n (p *. 1e3) (m *. 1e3) b wb);
      if row.rpwb > 0 then
        Buffer.add_string buf
          (Printf.sprintf ", \"predicted_wire_bytes\": %d" row.rpwb);
      (if Hashtbl.length row.rlinks > 0 then begin
         let links =
           List.sort compare
             (Hashtbl.fold
                (fun (src, dst) r acc -> (src, dst, !r) :: acc)
                row.rlinks [])
         in
         Buffer.add_string buf ", \"mesh_links\": [";
         List.iteri
           (fun j (src, dst, lb) ->
             if j > 0 then Buffer.add_string buf ", ";
             Buffer.add_string buf
               (Printf.sprintf "{\"src\": %d, \"dst\": %d, \"bytes\": %d}" src
                  dst lb))
           links;
         Buffer.add_string buf "]"
       end);
      let w = Array.length ws in
      if w > 0 then begin
        Buffer.add_string buf ", \"worker_walls_ms\": [";
        Array.iteri
          (fun j x ->
            if j > 0 then Buffer.add_string buf ", ";
            Buffer.add_string buf (Printf.sprintf "%.6f" (x *. 1e3)))
          ws;
        Buffer.add_string buf "]";
        let slowest = ref 0 in
        Array.iteri (fun j x -> if x > ws.(!slowest) then slowest := j) ws;
        let sorted = Array.copy ws in
        Array.sort compare sorted;
        let median =
          if w land 1 = 1 then sorted.(w / 2)
          else (sorted.((w / 2) - 1) +. sorted.(w / 2)) /. 2.
        in
        Buffer.add_string buf
          (Printf.sprintf ", \"slowest_worker\": %d" !slowest);
        if median > 0. then
          Buffer.add_string buf
            (Printf.sprintf ", \"straggler_ratio\": %.4f"
               (sorted.(w - 1) /. median))
      end;
      Buffer.add_string buf "}")
    (List.rev !order);
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf
