(** Public facade: one namespace over the whole system.

    {1 Layers}

    - {!Value}, {!Vtuple}, {!Schema}, {!Mult} — values, tuples and the
      multiplicity zero-threshold (the data model of §3.1);
    - {!Vexpr}, {!Calc} — the query calculus;
    - {!Interp} — reference interpreter (semantic oracle);
    - {!Delta}, {!Domain}, {!Poly} — delta derivation and domain extraction
      (§3.1–3.2);
    - {!Prog}, {!Compile}, {!Preagg} — the recursive IVM compiler (§2.2) and
      batch pre-aggregation (§3.3);
    - {!Gmr}, {!Pool}, {!Colbatch}, {!Trace} — the specialized storage
      engine (§5.2): GMRs and record pools on a shared open-addressing
      core;
    - {!Exec}, {!Runtime} — interpreted and specialized local runtimes (§5);
    - {!Loc}, {!Dprog}, {!Distribute} — the distributed compiler (§4);
      {!Costmodel} — the latency model shared by simulator and predictor;
    - {!Cluster} — the simulated Spark-like cluster (§6.2);
    - {!Protocol}, {!Node} — the multi-process engine: real worker
      processes over a framed binary shuffle protocol;
    - {!Engine} — the unified backend API every front end drives
      ([Local] runtime, [Simulated] cluster, [Multiprocess] node engine
      behind one [create]/[apply_batch]/[query]/[shutdown]);
    - {!Sql} — SQL frontend;
    - {!Tpch}, {!Tpcds} — workloads; {!Baseline} — comparison engines;
      {!Cachesim} — the Table 2 cache model;
    - {!Obs} — observability: metrics registry and span tracer shared by
      every layer; {!Profile} — EXPLAIN and the per-statement profiler;
      {!Workload} — named-query boilerplate for front ends.

    {1 Quickstart}

    {[
      open Divm

      let streams = [ ("R", [ va; vb ]); ("S", [ vb; vc ]) ]
      let maps = Sql.compile ~catalog:streams ~name:"Q"
          "SELECT R.b, COUNT(*) FROM R, S WHERE R.b = S.b GROUP BY R.b"
      let prog = Compile.compile ~streams maps
      let rt = Runtime.create prog
      let report = Runtime.apply_batch rt ~rel:"R" batch
      let () = Printf.printf "%d ops in %.1fms\n" report.ops (report.wall *. 1e3)
      let result = Runtime.result rt "Q"
    ]} *)

module Value = Divm_ring.Value
module Vtuple = Divm_ring.Vtuple
module Schema = Divm_ring.Schema
module Mult = Divm_ring.Mult
module Gmr = Divm_storage.Gmr
module Vexpr = Divm_calc.Vexpr
module Calc = Divm_calc.Calc
module Env = Divm_eval.Env
module Interp = Divm_eval.Interp
module Delta = Divm_delta.Delta
module Domain = Divm_delta.Domain
module Poly = Divm_delta.Poly
module Prog = Divm_compiler.Prog
module Compile = Divm_compiler.Compile
module Preagg = Divm_compiler.Preagg
module Pool = Divm_storage.Pool
module Colbatch = Divm_storage.Colbatch
module Trace = Divm_storage.Trace
module Exec = Divm_runtime.Exec
module Runtime = Divm_runtime.Runtime
module Patterns = Divm_runtime.Patterns
module Loc = Divm_dist.Loc
module Dprog = Divm_dist.Dprog
module Distribute = Divm_dist.Distribute
module Costmodel = Divm_dist.Costmodel
module Cluster = Divm_cluster.Cluster
module Protocol = Divm_node.Protocol
module Node = Divm_node.Node
module Engine = Divm_engine.Engine
module Sql = Divm_sql.Sql
module Baseline = Divm_baseline.Baseline
module Cachesim = Divm_cachesim.Cachesim
module Obs = Divm_obs.Obs
module Par = Divm_par.Par
module Profile = Divm_profile.Profile
module Workload = Divm_workload.Workload

module Tpch = struct
  module Schema = Divm_tpch.Schema
  module Gen = Divm_tpch.Gen
  module Queries = Divm_tpch.Queries
  module Load = Divm_tpch.Load
end

module Tpcds = struct
  module Schema = Divm_tpcds.Schema
  module Gen = Divm_tpcds.Gen
  module Queries = Divm_tpcds.Queries
end
