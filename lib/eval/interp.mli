(** Reference interpreter for the calculus: the semantic oracle used by the
    baseline engines and as ground truth in tests.

    Evaluation follows the model of computation of §3.2.1: operator trees are
    evaluated left-to-right, bottom-up, with bound-variable information
    flowing rightwards through products. Relation atoms with partially bound
    columns use on-demand hash indexes (built once per [eval] call), matching
    the in-memory hash-join reference model. *)

open Divm_ring
open Divm_storage
open Divm_calc

(** Where atoms get their contents. All three lookups raise [Not_found] for
    unknown names. *)
type source = {
  rel : string -> Gmr.t;  (** base-table contents, declaration column order *)
  delta : string -> Gmr.t;  (** current update batch *)
  map : string -> Gmr.t;  (** materialized views, declared column order *)
}

val source_of_rels : (string * Gmr.t) list -> source

(** [eval src env e] evaluates [e] under bindings [env]; the result is keyed
    by [Calc.schema ~bound:(vars of env... ) e]'s variables in order. The
    returned schema is that order. *)
val eval :
  ?bound:Schema.t -> source -> Env.t -> Calc.expr -> Schema.t * Gmr.t

(** [eval_closed src e] evaluates a closed expression (no bound vars). *)
val eval_closed : source -> Calc.expr -> Schema.t * Gmr.t

(** Total multiplicity of a fully-aggregated expression (empty schema);
    [0.] when the result is empty. *)
val eval_scalar : source -> Calc.expr -> float

(** Number of elementary tuple operations (atom visits) performed since the
    counter was last reset — the interpreter's work metric, used by the
    baseline cost accounting. *)
val ops_counter : unit -> int

val reset_ops_counter : unit -> unit
