open Divm_ring
open Divm_storage
open Divm_calc
open Divm_calc.Calc

type source = {
  rel : string -> Gmr.t;
  delta : string -> Gmr.t;
  map : string -> Gmr.t;
}

let source_of_rels rels =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (n, g) -> Hashtbl.replace tbl n g) rels;
  let get n =
    match Hashtbl.find_opt tbl n with Some g -> g | None -> raise Not_found
  in
  { rel = get; delta = get; map = get }

let ops = ref 0
let ops_counter () = !ops
let reset_ops_counter () = ops := 0

(* Per-eval-call cache of hash indexes over relation contents, keyed by
   (atom kind, name, bound column positions). *)
type ctx = {
  src : source;
  cache : (string, (Vtuple.t * float) list Vtuple.Tbl.t) Hashtbl.t;
}

let domain env = Env.domain env

let contents ctx kind name =
  match kind with
  | `Rel -> ctx.src.rel name
  | `Delta -> ctx.src.delta name
  | `Map -> ctx.src.map name

let index ctx kind name positions =
  let key =
    Printf.sprintf "%s/%s/%s"
      (match kind with `Rel -> "r" | `Delta -> "d" | `Map -> "m")
      name
      (String.concat "," (List.map string_of_int positions))
  in
  match Hashtbl.find_opt ctx.cache key with
  | Some idx -> idx
  | None ->
      let g = contents ctx kind name in
      let idx = Vtuple.Tbl.create (max 16 (Gmr.cardinal g)) in
      let pos = Array.of_list positions in
      Gmr.iter
        (fun tup m ->
          let sub = Vtuple.project tup pos in
          let prev =
            match Vtuple.Tbl.find_opt idx sub with Some l -> l | None -> []
          in
          Vtuple.Tbl.replace idx sub ((tup, m) :: prev))
        g;
      Hashtbl.replace ctx.cache key idx;
      idx

(* Bind the columns of [tup] to [rvars] on top of [env], respecting
   already-bound variables and repeated column variables as equality
   constraints. Returns [None] on constraint violation. *)
let bind_columns env (rvars : Schema.t) (tup : Vtuple.t) =
  let rec go env i = function
    | [] -> Some env
    | v :: rest -> (
        let x = tup.(i) in
        match Env.find env v with
        | Some y -> if Value.equal x y then go env (i + 1) rest else None
        | None -> go (Env.bind env v x) (i + 1) rest)
  in
  go env 0 rvars

let rec iter_expr ctx env e (k : Env.t -> float -> unit) =
  match e with
  | Const c -> if c <> 0. then k env c
  | Value v ->
      incr ops;
      let x = Vexpr.eval (Env.find_exn env) v in
      let f = Value.to_float x in
      if f <> 0. then k env f
  | Cmp (op, a, b) ->
      incr ops;
      let x = Vexpr.eval (Env.find_exn env) a
      and y = Vexpr.eval (Env.find_exn env) b in
      if Calc.eval_cmp op x y then k env 1.
  | Rel r -> iter_atom ctx env `Rel r.rname r.rvars k
  | DeltaRel r -> iter_atom ctx env `Delta r.rname r.rvars k
  | Map m -> iter_atom ctx env `Map m.mname m.mvars k
  | Exists q ->
      let sch, g = materialize ctx env q in
      Gmr.iter
        (fun tup _m ->
          incr ops;
          match bind_columns env sch tup with
          | Some env' -> k env' 1.
          | None -> ())
        g
  | Lift (v, q) -> (
      let sch, g = materialize ctx env q in
      match sch with
      | [] -> (
          (* Scalar lift: always produces one binding, 0 when empty, matching
             SQL scalar aggregates over empty inputs. *)
          let total = Gmr.mult g Vtuple.empty in
          incr ops;
          match Env.find env v with
          | Some x ->
              if Value.compare_approx x (Value.Float total) = 0 then k env 1.
          | None -> k (Env.bind env v (Value.Float total)) 1.)
      | _ ->
          Gmr.iter
            (fun tup m ->
              incr ops;
              match bind_columns env sch tup with
              | None -> ()
              | Some env' -> (
                  match Env.find env' v with
                  | Some x ->
                      if Value.compare_approx x (Value.Float m) = 0 then k env' 1.
                  | None -> k (Env.bind env' v (Value.Float m)) 1.))
            g)
  | Sum (gb, q) ->
      let out = List.filter (fun v -> not (Env.is_bound env v)) gb in
      let sch, g = materialize ctx env q in
      let pos = Schema.positions out sch in
      let groups = Gmr.create ~size:(Gmr.cardinal g) () in
      Gmr.iter (fun tup m -> Gmr.add groups (Vtuple.project tup pos) m) g;
      Gmr.iter
        (fun tup m ->
          incr ops;
          match bind_columns env out tup with
          | Some env' -> k env' m
          | None -> ())
        groups
  | Prod es ->
      let rec go env mult = function
        | [] -> k env mult
        | e :: rest ->
            iter_expr ctx env e (fun env' m -> go env' (mult *. m) rest)
      in
      go env 1. es
  | Add es -> List.iter (fun e -> iter_expr ctx env e k) es

and iter_atom ctx env kind name rvars k =
  let bound_pos =
    List.mapi (fun i v -> (i, v)) rvars
    |> List.filter (fun (_, v) -> Env.is_bound env v)
    |> List.map fst
  in
  let g = contents ctx kind name in
  let visit tup m =
    incr ops;
    match bind_columns env rvars tup with
    | Some env' -> k env' m
    | None -> ()
  in
  if List.length bound_pos = List.length rvars then (
    (* Fully bound: direct lookup. *)
    let tup = Env.project env rvars in
    incr ops;
    let m = Gmr.mult g tup in
    if m <> 0. then k env m)
  else if bound_pos = [] then Gmr.iter visit g
  else
    let idx = index ctx kind name bound_pos in
    let sub =
      Array.of_list (List.map (fun i -> Env.find_exn env (List.nth rvars i)) bound_pos)
    in
    match Vtuple.Tbl.find_opt idx sub with
    | None -> ()
    | Some entries -> List.iter (fun (tup, m) -> visit tup m) entries

and materialize ctx env e =
  let bound = domain env in
  let sch = Calc.schema ~bound e in
  let out = Gmr.create () in
  iter_expr ctx env e (fun env' m -> Gmr.add out (Env.project env' sch) m);
  (sch, out)

let eval ?bound src env e =
  let ctx = { src; cache = Hashtbl.create 8 } in
  let bound = match bound with Some b -> b | None -> domain env in
  let sch = Calc.schema ~bound e in
  let out = Gmr.create () in
  iter_expr ctx env e (fun env' m -> Gmr.add out (Env.project env' sch) m);
  (sch, out)

let eval_closed src e = eval ~bound:[] src Env.empty e

let eval_scalar src e =
  let sch, g = eval_closed src e in
  if sch <> [] then
    invalid_arg
      (Printf.sprintf "eval_scalar: expression has schema %s"
         (Schema.to_string sch));
  Gmr.mult g Vtuple.empty
