module Obs = Divm_obs.Obs
module Profile = Divm_profile.Profile

type opts = { explain : bool; profile : bool }

let install ?metrics_json ~metrics ~trace () =
  (* Any consumer of the registry/trace means the distributed engines
     should pull their workers' share into the merged view. *)
  if metrics || metrics_json <> None || trace <> None then
    Obs.set_collection true;
  (* at_exit runs hooks in reverse registration order: register metrics
     first so the trace file is written before the snapshot is printed. *)
  if metrics then
    at_exit (fun () -> prerr_string (Obs.to_text (Obs.snapshot ())));
  (match metrics_json with
  | None -> ()
  | Some file ->
      at_exit (fun () ->
          let oc = open_out file in
          output_string oc (Obs.to_json (Obs.snapshot ()));
          close_out oc));
  match trace with
  | None -> ()
  | Some file ->
      Obs.set_tracing true;
      at_exit (fun () ->
          Obs.write_chrome_trace file;
          Printf.eprintf "wrote %d spans to %s\n%!"
            (List.length (Obs.events ()))
            file)

(* [--listen PORT]: the scrape endpoint wants the merged live registry,
   so it arms collection too. *)
let listen port =
  Obs.set_collection true;
  let bound = Obs_http.listen port in
  Printf.eprintf "serving /metrics on http://127.0.0.1:%d\n%!" bound;
  bound

(* Registry state when profiling was switched on, so the exit report can
   reconcile slot sums against the registry deltas of the same window. *)
let profile_baseline = ref None

let enable_profile () =
  Obs.set_collection true;
  Profile.reset ();
  Profile.set_enabled true;
  profile_baseline := Some (Obs.snapshot ())

let profile_report ?plan ?storage () =
  let diff =
    Option.map
      (fun earlier -> Obs.diff ~later:(Obs.snapshot ()) ~earlier)
      !profile_baseline
  in
  Profile.report ?plan ?storage ?diff ()

let activate ?plan ?storage opts =
  (match (opts.explain, plan) with
  | true, Some p -> print_string (Profile.render p)
  | _ -> ());
  if opts.profile then begin
    enable_profile ();
    at_exit (fun () ->
        prerr_string
          (profile_report ?plan
             ?storage:(Option.map (fun f -> f ()) storage)
             ()))
  end

open Cmdliner

let metrics_t =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print a final metrics registry snapshot (Prometheus text format) \
           on stderr at exit.")

let metrics_json_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"FILE"
        ~doc:
          "Write a final metrics registry snapshot as JSON to $(docv) at \
           exit.")

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record trace spans and write them to $(docv) as Chrome \
           trace_event JSON at exit (open in chrome://tracing or Perfetto).")

let explain_t =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Print the compiled trigger program's plan: per statement the \
           chosen access path (foreach/get/slice), which index serves it, \
           the columnar route, and (distributed) location tags, blocks and \
           transfers.")

let profile_t =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Enable the per-statement profiler and print a hot-statement \
           report (ops/probes/bytes/wall per statement, reconciled against \
           registry totals) on stderr at exit.")

let listen_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "listen" ] ~docv:"PORT"
        ~doc:
          "Serve the live metrics registry over HTTP on \
           127.0.0.1:$(docv) while running: $(b,GET /metrics) answers \
           Prometheus text, $(b,GET /metrics.json) the JSON report. With \
           a distributed backend the registry includes the \
           per-worker-labeled merged telemetry.")

let setup =
  Term.(
    const (fun metrics metrics_json trace listen_port explain profile ->
        install ?metrics_json ~metrics ~trace ();
        (match listen_port with Some p -> ignore (listen p) | None -> ());
        { explain; profile })
    $ metrics_t $ metrics_json_t $ trace_t $ listen_t $ explain_t $ profile_t)

let scan_argv () =
  let rec go acc = function
    | [] -> List.rev acc
    | "--metrics" :: tl ->
        install ~metrics:true ~trace:None ();
        go acc tl
    | "--metrics-json" :: file :: tl ->
        install ~metrics:false ~metrics_json:file ~trace:None ();
        go acc tl
    | "--trace" :: file :: tl ->
        install ~metrics:false ~trace:(Some file) ();
        go acc tl
    | arg :: tl when String.length arg > 8 && String.sub arg 0 8 = "--trace=" ->
        install ~metrics:false
          ~trace:(Some (String.sub arg 8 (String.length arg - 8)))
          ();
        go acc tl
    | "--listen" :: port :: tl ->
        (match int_of_string_opt port with
        | Some p -> ignore (listen p)
        | None -> invalid_arg ("--listen expects a port, got " ^ port));
        go acc tl
    | "--profile" :: tl ->
        (* no static plan available here: report slots only *)
        enable_profile ();
        at_exit (fun () -> prerr_string (profile_report ()));
        go acc tl
    | arg :: tl -> go (arg :: acc) tl
  in
  go [] (List.tl (Array.to_list Sys.argv))

(* ---------------- unified engine flags ---------------- *)

module Engine = Divm_engine.Engine

type common = { engine : Engine.config; opts : opts }

(* Re-point the backend variant: a [--backend] name keeps the current
   backend's parameters when it already is that variant (so [defaults]
   survive), otherwise starts from that backend's default config;
   [--workers] re-parameterizes whichever distributed backend won, and
   [--shuffle] the multiprocess backend's transfer topology. *)
let resolve_backend (current : Engine.backend) backend workers shuffle =
  let base =
    match backend with
    | None -> current
    | Some `Local -> Engine.Local
    | Some `Simulated -> (
        match current with
        | Engine.Simulated _ -> current
        | _ -> Engine.Simulated (Divm_cluster.Cluster.config ()))
    | Some `Multiprocess -> (
        match current with
        | Engine.Multiprocess _ -> current
        | _ -> Engine.Multiprocess (Divm_node.Node.config ()))
  in
  let base =
    match (workers, base) with
    | None, b -> b
    | Some w, Engine.Simulated cc ->
        Engine.Simulated { cc with Divm_cluster.Cluster.workers = w }
    | Some w, Engine.Multiprocess nc ->
        Engine.Multiprocess { nc with Divm_node.Node.workers = w }
    | Some _, Engine.Local -> Engine.Local
  in
  match (shuffle, base) with
  | Some s, Engine.Multiprocess nc ->
      Engine.Multiprocess { nc with Divm_node.Node.shuffle = s }
  | _, b -> b

let combine (defaults : Engine.config) backend workers shuffle domains batch
    level opts =
  let engine =
    {
      defaults with
      Engine.backend =
        resolve_backend defaults.Engine.backend backend workers shuffle;
      domains =
        (match domains with Some _ -> domains | None -> defaults.Engine.domains);
      batch_size = Option.value batch ~default:defaults.Engine.batch_size;
      opt_level = Option.value level ~default:defaults.Engine.opt_level;
    }
  in
  { engine; opts }

let backend_conv =
  Arg.enum
    [ ("local", `Local); ("simulated", `Simulated); ("multiprocess", `Multiprocess) ]

let shuffle_conv =
  Arg.enum [ ("star", Divm_node.Node.Star); ("mesh", Divm_node.Node.Mesh) ]

let parse_common ?(defaults = Engine.default_config) () =
  let backend_t =
    Arg.(
      value
      & opt (some backend_conv) None
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            "Execution backend: $(b,local) (specialized single-process \
             runtime), $(b,simulated) (deterministic cluster simulator, \
             modeled latency), or $(b,multiprocess) (real worker processes \
             over sockets; the cost model becomes a predictor reported next \
             to measured wall time).")
  in
  let workers_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "workers"; "w" ] ~docv:"N"
          ~doc:"Worker count for the simulated or multiprocess backend.")
  in
  let shuffle_t =
    Arg.(
      value
      & opt (some shuffle_conv) None
      & info [ "shuffle" ] ~docv:"TOPOLOGY"
          ~doc:
            "Multiprocess transfer topology: $(b,mesh) (default) ships \
             worker-to-worker shuffles directly over an N\xC3\x97N worker \
             connection mesh, $(b,star) relays every payload byte through \
             the coordinator. Results and modeled latencies are identical; \
             only real wire traffic differs.")
  in
  let domains_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Execution domains (default: $(b,DIVM_DOMAINS) or 1): the local \
             runtime's batch fan-out, or the simulator's stage fan-out. \
             Ignored by the multiprocess backend (its parallelism is the \
             worker processes).")
  in
  let batch_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "batch" ] ~docv:"N" ~doc:"Update batch size.")
  in
  let level_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "opt-level" ] ~docv:"L"
          ~doc:"Distributed optimization level 0\xE2\x80\x933 (Fig. 13).")
  in
  Term.(
    const (combine defaults)
    $ backend_t $ workers_t $ shuffle_t $ domains_t $ batch_t $ level_t $ setup)

let scan_common ?(defaults = Engine.default_config) () =
  let rest = scan_argv () in
  let backend = ref None
  and workers = ref None
  and shuffle = ref None
  and domains = ref None
  and batch = ref None
  and level = ref None in
  let int_arg flag v =
    match int_of_string_opt v with
    | Some i -> i
    | None -> invalid_arg (flag ^ " expects an integer, got " ^ v)
  in
  let rec go acc = function
    | [] -> List.rev acc
    | "--backend" :: v :: tl ->
        (backend :=
           match v with
           | "local" -> Some `Local
           | "simulated" -> Some `Simulated
           | "multiprocess" -> Some `Multiprocess
           | _ -> invalid_arg ("unknown backend " ^ v));
        go acc tl
    | ("--workers" | "-w") :: v :: tl ->
        workers := Some (int_arg "--workers" v);
        go acc tl
    | "--shuffle" :: v :: tl ->
        (shuffle :=
           match v with
           | "star" -> Some Divm_node.Node.Star
           | "mesh" -> Some Divm_node.Node.Mesh
           | _ -> invalid_arg ("unknown shuffle topology " ^ v));
        go acc tl
    | "--domains" :: v :: tl ->
        domains := Some (int_arg "--domains" v);
        go acc tl
    | "--batch" :: v :: tl ->
        batch := Some (int_arg "--batch" v);
        go acc tl
    | "--opt-level" :: v :: tl ->
        level := Some (int_arg "--opt-level" v);
        go acc tl
    | a :: tl -> go (a :: acc) tl
  in
  let rest = go [] rest in
  ( combine defaults !backend !workers !shuffle !domains !batch !level
      { explain = false; profile = false },
    rest )

let activate_engine eng opts =
  let name = (Engine.workload eng).Divm_workload.Workload.wname in
  let plan =
    match Engine.dprog eng with
    | Some dp -> Profile.explain_dist ~name dp
    | None -> Profile.explain ~name (Engine.prog eng)
  in
  activate ~plan ~storage:(fun () -> Engine.storage_stats eng) opts
