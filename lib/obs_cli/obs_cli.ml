module Obs = Divm_obs.Obs
module Profile = Divm_profile.Profile

type opts = { explain : bool; profile : bool }

let install ?metrics_json ~metrics ~trace () =
  (* at_exit runs hooks in reverse registration order: register metrics
     first so the trace file is written before the snapshot is printed. *)
  if metrics then
    at_exit (fun () -> prerr_string (Obs.to_text (Obs.snapshot ())));
  (match metrics_json with
  | None -> ()
  | Some file ->
      at_exit (fun () ->
          let oc = open_out file in
          output_string oc (Obs.to_json (Obs.snapshot ()));
          close_out oc));
  match trace with
  | None -> ()
  | Some file ->
      Obs.set_tracing true;
      at_exit (fun () ->
          Obs.write_chrome_trace file;
          Printf.eprintf "wrote %d spans to %s\n%!"
            (List.length (Obs.events ()))
            file)

(* Registry state when profiling was switched on, so the exit report can
   reconcile slot sums against the registry deltas of the same window. *)
let profile_baseline = ref None

let enable_profile () =
  Profile.reset ();
  Profile.set_enabled true;
  profile_baseline := Some (Obs.snapshot ())

let profile_report ?plan ?storage () =
  let diff =
    Option.map
      (fun earlier -> Obs.diff ~later:(Obs.snapshot ()) ~earlier)
      !profile_baseline
  in
  Profile.report ?plan ?storage ?diff ()

let activate ?plan ?storage opts =
  (match (opts.explain, plan) with
  | true, Some p -> print_string (Profile.render p)
  | _ -> ());
  if opts.profile then begin
    enable_profile ();
    at_exit (fun () ->
        prerr_string
          (profile_report ?plan
             ?storage:(Option.map (fun f -> f ()) storage)
             ()))
  end

open Cmdliner

let metrics_t =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print a final metrics registry snapshot (Prometheus text format) \
           on stderr at exit.")

let metrics_json_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"FILE"
        ~doc:
          "Write a final metrics registry snapshot as JSON to $(docv) at \
           exit.")

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record trace spans and write them to $(docv) as Chrome \
           trace_event JSON at exit (open in chrome://tracing or Perfetto).")

let explain_t =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Print the compiled trigger program's plan: per statement the \
           chosen access path (foreach/get/slice), which index serves it, \
           the columnar route, and (distributed) location tags, blocks and \
           transfers.")

let profile_t =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Enable the per-statement profiler and print a hot-statement \
           report (ops/probes/bytes/wall per statement, reconciled against \
           registry totals) on stderr at exit.")

let setup =
  Term.(
    const (fun metrics metrics_json trace explain profile ->
        install ?metrics_json ~metrics ~trace ();
        { explain; profile })
    $ metrics_t $ metrics_json_t $ trace_t $ explain_t $ profile_t)

let scan_argv () =
  let rec go acc = function
    | [] -> List.rev acc
    | "--metrics" :: tl ->
        install ~metrics:true ~trace:None ();
        go acc tl
    | "--metrics-json" :: file :: tl ->
        install ~metrics:false ~metrics_json:file ~trace:None ();
        go acc tl
    | "--trace" :: file :: tl ->
        install ~metrics:false ~trace:(Some file) ();
        go acc tl
    | arg :: tl when String.length arg > 8 && String.sub arg 0 8 = "--trace=" ->
        install ~metrics:false
          ~trace:(Some (String.sub arg 8 (String.length arg - 8)))
          ();
        go acc tl
    | "--profile" :: tl ->
        (* no static plan available here: report slots only *)
        enable_profile ();
        at_exit (fun () -> prerr_string (profile_report ()));
        go acc tl
    | arg :: tl -> go (arg :: acc) tl
  in
  go [] (List.tl (Array.to_list Sys.argv))
