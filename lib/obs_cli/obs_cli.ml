module Obs = Divm_obs.Obs

let install ~metrics ~trace =
  (* at_exit runs hooks in reverse registration order: register metrics
     first so the trace file is written before the snapshot is printed. *)
  if metrics then
    at_exit (fun () -> prerr_string (Obs.to_text (Obs.snapshot ())));
  match trace with
  | None -> ()
  | Some file ->
      Obs.set_tracing true;
      at_exit (fun () ->
          Obs.write_chrome_trace file;
          Printf.eprintf "wrote %d spans to %s\n%!"
            (List.length (Obs.events ()))
            file)

open Cmdliner

let metrics_t =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print a final metrics registry snapshot (Prometheus text format) \
           on stderr at exit.")

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record trace spans and write them to $(docv) as Chrome \
           trace_event JSON at exit (open in chrome://tracing or Perfetto).")

let setup =
  Term.(
    const (fun metrics trace -> install ~metrics ~trace) $ metrics_t $ trace_t)

let scan_argv () =
  let rec go acc = function
    | [] -> List.rev acc
    | "--metrics" :: tl ->
        install ~metrics:true ~trace:None;
        go acc tl
    | "--trace" :: file :: tl ->
        install ~metrics:false ~trace:(Some file);
        go acc tl
    | arg :: tl when String.length arg > 8 && String.sub arg 0 8 = "--trace=" ->
        install ~metrics:false
          ~trace:(Some (String.sub arg 8 (String.length arg - 8)));
        go acc tl
    | arg :: tl -> go (arg :: acc) tl
  in
  go [] (List.tl (Array.to_list Sys.argv))
