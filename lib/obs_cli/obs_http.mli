(** Live scrape endpoint for the metrics registry — no HTTP library, no
    framework: a background thread on a loopback TCP socket answering

    - [GET /metrics] with the Prometheus text exposition
      ({!Divm_obs.Obs.to_text}) of a fresh registry snapshot, and
    - [GET /metrics.json] with the JSON report ({!Divm_obs.Obs.to_json}).

    Snapshots are taken on the serving thread; systhreads share the
    runtime lock, so reads interleave safely with the engine's updates
    (see the memory-ordering contract in [obs.mli]). The thread runs for
    the life of the process — scrapes keep working while batches stream
    — and dies with it. *)

(** [listen port] binds [127.0.0.1:port] (raising [Failure] if the port
    is taken), starts the serving thread, and returns the bound port —
    pass [0] to let the kernel pick a free one. *)
val listen : int -> int
