module Obs = Divm_obs.Obs

(* Dependency-free scrape endpoint: a background systhread accepting
   loopback TCP connections and answering GET /metrics[.json] from the
   live registry. Systhreads share their domain's runtime lock, so a
   snapshot taken here serializes with the engine thread's increments —
   exactly the read-side guarantee [Obs.snapshot] already documents.
   One request per connection (Connection: close), bounded reads, and
   every handler failure only drops that connection. *)

let http_date () =
  (* RFC 7231 fixdate, hand-rolled to stay dependency-free. *)
  let tm = Unix.gmtime (Unix.time ()) in
  let day = [| "Sun"; "Mon"; "Tue"; "Wed"; "Thu"; "Fri"; "Sat" |] in
  let mon =
    [|
      "Jan"; "Feb"; "Mar"; "Apr"; "May"; "Jun";
      "Jul"; "Aug"; "Sep"; "Oct"; "Nov"; "Dec";
    |]
  in
  Printf.sprintf "%s, %02d %s %04d %02d:%02d:%02d GMT" day.(tm.Unix.tm_wday)
    tm.Unix.tm_mday mon.(tm.Unix.tm_mon) (1900 + tm.Unix.tm_year)
    tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let respond fd ~status ~content_type body =
  let head =
    Printf.sprintf
      "HTTP/1.1 %s\r\n\
       Date: %s\r\n\
       Content-Type: %s\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n"
      status (http_date ()) content_type (String.length body)
  in
  let msg = head ^ body in
  let n = String.length msg in
  let pos = ref 0 in
  while !pos < n do
    match Unix.write_substring fd msg !pos (n - !pos) with
    | 0 -> pos := n
    | k -> pos := !pos + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* First request line only; the headers that follow are read (bounded)
   and ignored — both exporters answer from process state alone. *)
let request_path fd =
  let buf = Bytes.create 4096 in
  let len = ref 0 in
  let complete () =
    let s = Bytes.sub_string buf 0 !len in
    match String.index_opt s '\n' with Some _ -> Some s | None -> None
  in
  let rec fill () =
    match complete () with
    | Some s -> Some s
    | None ->
        if !len >= Bytes.length buf then None
        else begin
          match Unix.read fd buf !len (Bytes.length buf - !len) with
          | 0 -> None
          | k ->
              len := !len + k;
              fill ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill ()
        end
  in
  match fill () with
  | None -> None
  | Some s -> (
      match String.split_on_char ' ' (List.hd (String.split_on_char '\r' s)) with
      | meth :: path :: _ when String.uppercase_ascii meth = "GET" ->
          (* strip any query string: /metrics?x=y scrapes the same *)
          Some
            (match String.index_opt path '?' with
            | Some i -> String.sub path 0 i
            | None -> path)
      | _ -> None)

let handle fd =
  match request_path fd with
  | Some "/metrics" ->
      respond fd ~status:"200 OK"
        ~content_type:"text/plain; version=0.0.4; charset=utf-8"
        (Obs.to_text (Obs.snapshot ()))
  | Some "/metrics.json" ->
      respond fd ~status:"200 OK" ~content_type:"application/json"
        (Obs.to_json (Obs.snapshot ()))
  | Some _ ->
      respond fd ~status:"404 Not Found" ~content_type:"text/plain"
        "only /metrics and /metrics.json live here\n"
  | None ->
      respond fd ~status:"400 Bad Request" ~content_type:"text/plain"
        "malformed request\n"

let listen port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  (try Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
   with e ->
     (try Unix.close sock with _ -> ());
     failwith
       (Printf.sprintf "--listen %d: cannot bind: %s" port
          (Printexc.to_string e)));
  Unix.listen sock 16;
  let bound =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let _t =
    Thread.create
      (fun () ->
        while true do
          match Unix.accept sock with
          | fd, _ ->
              (try handle fd with _ -> ());
              (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ());
              (try Unix.close fd with _ -> ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done)
      ()
  in
  bound
