(** Shared observability CLI wiring for the [divm] binaries.

    Adds [--metrics], [--metrics-json FILE], [--trace FILE], [--listen
    PORT], [--explain] and [--profile] to a binary — either through
    cmdliner ({!setup}) or by scanning [Sys.argv] directly ({!scan_argv})
    for binaries that do their own argument parsing. Metrics / trace /
    profile output is emitted from [at_exit] hooks so it reflects the
    whole run; [--listen] serves the live registry while running
    ({!Obs_http}).

    Every flag that consumes the registry or trace also arms
    {!Divm_obs.Obs.set_collection}, so a multiprocess engine pulls its
    workers' telemetry into the merged view. *)

(** What the user asked for beyond metrics/tracing (which install their
    own hooks as a side effect of parsing). *)
type opts = { explain : bool; profile : bool }

(** [install ?metrics_json ~metrics ~trace ()] registers the at-exit
    hooks: with [metrics], print a Prometheus-text registry snapshot on
    stderr; with [metrics_json = Some f], write the registry snapshot as
    JSON to [f]; with [trace = Some f], enable span recording and write a
    Chrome trace_event JSON file to [f] (open it in [chrome://tracing] or
    Perfetto). *)
val install :
  ?metrics_json:string -> metrics:bool -> trace:string option -> unit -> unit

(** [listen port] arms collection and starts the {!Obs_http} endpoint on
    [127.0.0.1:port] (0 picks a free port), returning the bound port. *)
val listen : int -> int

(** Reset the profiler slots, enable profiling, and snapshot the registry
    as the reconciliation baseline for {!profile_report}. *)
val enable_profile : unit -> unit

(** Render the profiler report now, reconciled against the registry delta
    since {!enable_profile}. *)
val profile_report :
  ?plan:Divm_profile.Profile.plan ->
  ?storage:(string * Divm_storage.Pool.stats) list ->
  unit ->
  string

(** [activate ?plan ?storage opts] acts on parsed {!opts}: with
    [opts.explain] and a [plan], print the rendered EXPLAIN on stdout now;
    with [opts.profile], {!enable_profile} and register an at-exit hook
    printing {!profile_report} on stderr. [storage] is a thunk (for
    example [fun () -> Runtime.storage_stats rt]) evaluated at exit so the
    report sees final pool occupancy. *)
val activate :
  ?plan:Divm_profile.Profile.plan ->
  ?storage:(unit -> (string * Divm_storage.Pool.stats) list) ->
  opts ->
  unit

(** Cmdliner term parsing all five flags; evaluating it calls {!install}
    and returns the remaining {!opts} for the binary to {!activate}. *)
val setup : opts Cmdliner.Term.t

(** For binaries that do their own argv handling (the bench harness):
    consume the observability flags from [Sys.argv], installing the same
    hooks as encountered ([--profile] enables the profiler and registers a
    plan-less at-exit report), and return the remaining arguments
    (excluding [Sys.argv.(0)]). *)
val scan_argv : unit -> string list

(** {1 Unified engine flags}

    Every front end takes the same engine flags — [--backend
    local|simulated|multiprocess], [--workers], [--shuffle star|mesh],
    [--domains], [--batch], [--opt-level] — plus the five observability
    flags above, and turns them into one {!Divm_engine.Engine.config}.
    This is the only flag parser the binaries use; none of them
    constructs a runtime, simulator or node engine by hand anymore. *)

type common = { engine : Divm_engine.Engine.config; opts : opts }

(** Cmdliner term for the engine + observability flags. [defaults] seeds
    the per-binary defaults (e.g. divm_cluster starts from a [Simulated]
    backend with 8 workers); flags the user passes override it.
    [--workers] re-parameterizes whichever distributed backend is
    selected; [--backend simulated|multiprocess] starts from the default
    config of that backend when [defaults] named a different one. *)
val parse_common : ?defaults:Divm_engine.Engine.config -> unit -> common Cmdliner.Term.t

(** Argv-scanning equivalent of {!parse_common} for the bench harness:
    consumes engine and observability flags from [Sys.argv], returns the
    parsed {!common} and the remaining arguments. *)
val scan_common : ?defaults:Divm_engine.Engine.config -> unit -> common * string list

(** [activate_engine eng opts] is {!activate} wired to an engine: the
    EXPLAIN plan is derived from the engine's compiled (distributed)
    program and the storage thunk from {!Divm_engine.Engine.storage_stats}. *)
val activate_engine : Divm_engine.Engine.t -> opts -> unit
