(** Shared [--metrics] / [--trace FILE] flags for the CLIs.

    Include {!setup} in a cmdliner term to give a binary the standard
    observability switches:

    - [--metrics] prints a final {!Divm_obs.Obs} registry snapshot in
      Prometheus text format on stderr when the process exits;
    - [--trace FILE] enables span recording and writes the collected spans
      as Chrome [trace_event] JSON to [FILE] at exit (open it in
      [chrome://tracing] or Perfetto).

    Both act at exit so they compose with any command without threading
    state through it. *)

(** Cmdliner term parsing both flags and installing the [at_exit] hooks. *)
val setup : unit Cmdliner.Term.t

(** For binaries that do their own argv handling (the bench harness):
    [scan_argv ()] consumes [--metrics], [--trace FILE] and [--trace=FILE]
    from [Sys.argv], installs the same hooks, and returns the remaining
    arguments (excluding [Sys.argv.(0)]). *)
val scan_argv : unit -> string list

(** What the flags install: enable tracing / register the exit hooks
    directly. Exposed for tests and custom front ends. *)
val install : metrics:bool -> trace:string option -> unit
