open Divm_storage
open Divm_dist
open Divm_runtime
module Obs = Divm_obs.Obs
module Prof = Divm_obs.Prof
module Par = Divm_par.Par

(* Registry instruments, mirroring the simulator's so `--metrics` and
   Profile.reconcile treat both backends uniformly. *)
let m_bytes_shuffled = Obs.Counter.make "divm_node_bytes_shuffled_total"
let m_wire_bytes = Obs.Counter.make "divm_node_wire_bytes_total"
let m_stages = Obs.Counter.make "divm_node_stages_total"
let m_batches = Obs.Counter.make "divm_node_batches_total"
let m_worker_ops = Obs.Counter.make "divm_node_worker_ops_total"
let m_driver_ops = Obs.Counter.make "divm_node_driver_ops_total"
let g_workers = Obs.Gauge.make "divm_node_workers"

(* Straggler detector: max/median worker wall per distributed stage. A
   perfectly balanced stage lands in the first bucket; the tail buckets
   say one worker ran several times longer than the typical one. *)
let h_straggler =
  Obs.Histogram.make
    ~buckets:[| 1.0; 1.05; 1.1; 1.25; 1.5; 2.0; 3.0; 5.0; 10.0 |]
    "divm_stage_straggler_ratio"

(* The worker side's share of [divm_record_ops_total] ([Counter.make] is
   idempotent per name, so in-process this is the runtime's own
   instrument). Workers fold their op deltas in explicitly — they run
   compiled block closures directly, never [Runtime.apply_batch] — which
   keeps the profiler invariant (slot sums = registry deltas) intact on
   the worker's own registry, and therefore on the coordinator's after
   the labeled merge. *)
let w_record_ops = Obs.Counter.make "divm_record_ops_total"

(* How transfer payloads travel between workers: [Star] relays every
   byte through the coordinator (two socket hops per payload byte),
   [Mesh] ships worker-to-worker over a full connection mesh and leaves
   the coordinator as the barrier/ack control plane. *)
type topology = Star | Mesh

type config = {
  workers : int;
  cost : Costmodel.t;
  socket_dir : string option;
  worker_exe : string option;
  shuffle : topology;
}

let config ?(workers = 2) ?(cost = Costmodel.default) ?socket_dir ?worker_exe
    ?(shuffle = Mesh) () =
  { workers; cost; socket_dir; worker_exe; shuffle }

let default_config = config ()

type stage_stat = {
  sname : string;
  predicted : float;
  measured : float;
  sbytes : int;
  swire : int;
  spwire : int;
  swalls : float array;
  slinks : (int * int * int) list;
}

type metrics = {
  latency : float;
  wall : float;
  stages : int;
  bytes_shuffled : int;
  wire_bytes : int;
  max_worker_ops : int;
  driver_ops : int;
  stage_stats : stage_stat list;
}

let ignore_sigpipe () =
  (* A worker dying mid-write must surface as EPIPE, not kill the
     coordinator. *)
  try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with _ -> ()

(* -------------------------------------------------------------- *)
(* Worker side                                                     *)
(* -------------------------------------------------------------- *)

(* Per-statement worker plans carry the profiler label and slot resolved
   at compile time, like the runtime's own executor lists: the firing
   path under an enabled profiler pays array additions, not lookups. *)
type wstate = {
  wrt : Runtime.t;
  wplans : (string * (string * int * (unit -> unit)) list array) list;
  wtransfers : (string * int array * string) array;
      (* the coordinator's Shuffle frames index into this; both sides
         derive it from the identical marshaled program *)
}

let build_wstate (dp : Dprog.t) =
  (* Same compilation path as the simulator's nodes: one serial runtime
     over the compute program, closures per distributed block. The block
     array indexes line up with the coordinator's plan because both walk
     the identical marshaled [Dprog.t]. *)
  let rt = Runtime.create ~domains:1 (Dprog.compute_prog dp) in
  let wplans =
    List.map
      (fun (tr : Dprog.dtrigger) ->
        ( tr.drelation,
          Array.of_list
            (List.map
               (fun (b : Dprog.block) ->
                 match b.bmode with
                 | Dprog.MLocal -> []
                 | Dprog.MDist ->
                     List.filter_map
                       (fun d ->
                         match d with
                         | Dprog.Transfer _ -> None
                         | Dprog.Compute s ->
                             let label = "stmt:" ^ s.target in
                             Some
                               ( label,
                                 Prof.slot ~trigger:tr.drelation ~label,
                                 List.hd (Runtime.compile_stmts rt [ s ]) ))
                       b.bstmts)
               tr.blocks) ))
      dp.dtriggers
  in
  { wrt = rt; wplans; wtransfers = Dprog.transfers dp }

(* Baseline registry snapshot for the worker's telemetry deltas: each
   [Pull_telemetry] ships [diff] against this and advances it. *)
let w_last_snap = ref []

(* Run one distributed statement under whatever observers the
   coordinator enabled. With the profiler on, the firing is attributed
   to its slot AND its op delta is folded into the worker's registered
   [divm_record_ops_total] — symmetric accounting, so the shipped slot
   rows reconcile exactly against the shipped registry delta. Telemetry
   off costs one flag check ([Obs.span] with tracing disabled invokes
   [f] directly). *)
let wexec s ~label ~slot f =
  if Prof.enabled () then begin
    let o0 = Runtime.ops s.wrt in
    Runtime.run_attributed s.wrt ~label ~slot f;
    Obs.Counter.add w_record_ops (Runtime.ops s.wrt - o0)
  end
  else Obs.span label f

(* Everything observed since the last pull: registry delta (zero entries
   dropped — a worker registers instruments it never touches), nonzero
   profiler slots, completed spans. Slots and spans reset so the next
   pull starts clean; the snapshot baseline advances. *)
let collect_telemetry () =
  let now = Unix.gettimeofday () in
  let later = Obs.snapshot () in
  let delta = Obs.diff ~later ~earlier:!w_last_snap in
  w_last_snap := later;
  let interesting (_, v) =
    match (v : Obs.value) with
    | Obs.VCounter c -> c <> 0
    | Obs.VGauge g -> g <> 0.
    | Obs.VHistogram h -> h.count <> 0
  in
  let slots =
    List.filter (fun (r : Prof.row) -> r.r_firings <> 0) (Prof.rows ())
  in
  Prof.reset ();
  let spans = Obs.events () in
  Obs.clear_events ();
  {
    Protocol.t_now = now;
    t_snap = List.filter interesting delta;
    t_slots = slots;
    t_spans = spans;
  }

(* ---- worker-to-worker mesh (the direct shuffle data plane) ---- *)

(* Mesh state, built by the coordinator's [Peers]/[Mesh_connect]
   handshake: one connected socket per peer worker, indexed by peer id
   ([None] at our own index). *)
type wmesh = {
  mself : int;
  mpaths : string array;
  mutable mlisten : Unix.file_descr option;
  mpeers : Unix.file_descr option array;
}

let mesh_bind ~id paths =
  let w = Array.length paths in
  if id < 0 || id >= w then
    failwith "divm_node worker: Peers does not cover this worker's id";
  let mlisten =
    (* Only acceptors need a listener: worker [i] accepts from every
       higher id and initiates to every lower one. *)
    if id < w - 1 then begin
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.unlink paths.(id) with _ -> ());
      Unix.bind fd (Unix.ADDR_UNIX paths.(id));
      Unix.listen fd w;
      Some fd
    end
    else None
  in
  { mself = id; mpaths = paths; mlisten; mpeers = Array.make w None }

(* Establish the full mesh: initiate to every lower id, accept from
   every higher one. A Unix-domain [connect] completes as soon as the
   target's listen backlog takes it, whether or not the target has
   reached its own accept loop — so the fixed initiate-then-accept order
   cannot deadlock, whatever order the coordinator's [Mesh_connect]
   frames land in. *)
let mesh_connect m =
  let w = Array.length m.mpaths in
  for j = 0 to m.mself - 1 do
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let rec conn tries =
      try Unix.connect fd (Unix.ADDR_UNIX m.mpaths.(j))
      with Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when tries > 0 ->
        Unix.sleepf 0.05;
        conn (tries - 1)
    in
    conn 100;
    ignore (Protocol.write_msg fd (Protocol.Hello m.mself));
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 120. with _ -> ());
    m.mpeers.(j) <- Some fd
  done;
  (match m.mlisten with
  | None -> ()
  | Some lfd ->
      (* Higher ids arrive in arbitrary order; the Hello identifies each. *)
      for _ = m.mself + 1 to w - 1 do
        (match Unix.select [ lfd ] [] [] 30. with
        | [], _, _ ->
            failwith "divm_node worker: mesh peer did not connect within 30s"
        | _ -> ());
        let fd, _ = Unix.accept lfd in
        match Protocol.read_msg fd with
        | Protocol.Hello j, _ when j > m.mself && j < w && m.mpeers.(j) = None
          ->
            (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 120. with _ -> ());
            m.mpeers.(j) <- Some fd
        | _ -> failwith "divm_node worker: bad mesh handshake"
      done;
      (try Unix.close lfd with _ -> ());
      (try Unix.unlink m.mpaths.(m.mself) with _ -> ());
      m.mlisten <- None)

let mesh_close m =
  (match m.mlisten with
  | Some fd ->
      (try Unix.close fd with _ -> ());
      (try Unix.unlink m.mpaths.(m.mself) with _ -> ())
  | None -> ());
  m.mlisten <- None;
  Array.iteri
    (fun i p ->
      match p with
      | Some fd ->
          (try Unix.close fd with _ -> ());
          m.mpeers.(i) <- None
      | None -> ())
    m.mpeers

(* Full exchange: one frame out to every peer, one frame in from every
   peer, over a single non-blocking select loop that interleaves sends
   with receives. Every worker keeps draining its receive side while its
   own sends are in flight, so a peer blocked on a full socket buffer is
   always relieved by its receiver — the all-to-all cyclic-wait deadlock
   is impossible by construction. Returns the received raw frames,
   indexed by peer id. *)
let mesh_exchange m (frames : string array) =
  let w = Array.length m.mpeers in
  let self = m.mself in
  let peer_idx = ref [] in
  Array.iteri
    (fun i p ->
      match p with
      | Some fd -> peer_idx := (fd, i) :: !peer_idx
      | None ->
          if i <> self then
            failwith
              (Printf.sprintf "divm_node worker: no mesh link to peer %d" i))
    m.mpeers;
  let index_of fd = List.assoc fd !peer_idx in
  let sent = Array.make w 0 in
  let out_done = Array.init w (fun i -> i = self) in
  let in_done = Array.init w (fun i -> i = self) in
  let bufs = Array.init w (fun _ -> Buffer.create 256) in
  let need = Array.make w (-1) in
  List.iter (fun (fd, _) -> Unix.set_nonblock fd) !peer_idx;
  let restore () =
    List.iter (fun (fd, _) -> try Unix.clear_nonblock fd with _ -> ()) !peer_idx
  in
  Fun.protect ~finally:restore @@ fun () ->
  let scratch = Bytes.create 65536 in
  let deadline = Unix.gettimeofday () +. 120. in
  while Array.exists not out_done || Array.exists not in_done do
    if Unix.gettimeofday () > deadline then
      raise (Protocol.Error "mesh exchange timed out after 120s");
    let rds =
      List.filter_map
        (fun (fd, i) -> if in_done.(i) then None else Some fd)
        !peer_idx
    and wrs =
      List.filter_map
        (fun (fd, i) -> if out_done.(i) then None else Some fd)
        !peer_idx
    in
    match Unix.select rds wrs [] 5. with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | rs, ws, _ ->
        List.iter
          (fun fd ->
            let i = index_of fd in
            let s = frames.(i) in
            match
              Unix.write_substring fd s sent.(i) (String.length s - sent.(i))
            with
            | k ->
                sent.(i) <- sent.(i) + k;
                if sent.(i) >= String.length s then out_done.(i) <- true
            | exception
                Unix.Unix_error
                  ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
                ())
          ws;
        List.iter
          (fun fd ->
            let i = index_of fd in
            match Unix.read fd scratch 0 (Bytes.length scratch) with
            | 0 ->
                raise
                  (Protocol.Error
                     (Printf.sprintf "mesh peer %d closed mid-shuffle" i))
            | k ->
                Buffer.add_subbytes bufs.(i) scratch 0 k;
                if need.(i) < 0 && Buffer.length bufs.(i) >= 4 then begin
                  let n =
                    Int32.to_int
                      (String.get_int32_be (Buffer.sub bufs.(i) 0 4) 0)
                  in
                  if n < 1 || n > Protocol.max_frame then
                    raise
                      (Protocol.Error
                         (Printf.sprintf
                            "mesh peer %d: declared frame length %d out of \
                             range (max_frame %d)"
                            i n Protocol.max_frame));
                  need.(i) <- n
                end;
                if need.(i) >= 0 && Buffer.length bufs.(i) >= 4 + need.(i)
                then
                  if Buffer.length bufs.(i) > 4 + need.(i) then
                    raise
                      (Protocol.Error
                         (Printf.sprintf
                            "mesh peer %d: %d trailing bytes after frame" i
                            (Buffer.length bufs.(i) - 4 - need.(i))))
                  else in_done.(i) <- true
            | exception
                Unix.Unix_error
                  ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
                ())
          rs
  done;
  Array.init w (fun i -> if i = self then "" else Buffer.contents bufs.(i))

(* One direct shuffle: partition our source partition into per-destination
   pre-summed buffers, exchange with every peer, apply in source order.
   The modeled byte accounting is computed here with exactly the
   simulator's rule (origin = destination moves are free), and the
   apply loop below walks sources in ascending worker id — the same
   source order the coordinator's star path and the simulator use — so
   both the float association of cross-source collisions and the
   destination map's slot-creation order are preserved bit-identically. *)
let mesh_shuffle s m ~tname ~key ~source =
  let wall0 = Unix.gettimeofday () in
  let w = Array.length m.mpeers in
  let self = m.mself in
  let outs = Array.init w (fun _ -> Gmr.create ()) in
  let ser = ref 0 in
  let modeled = Array.make w 0 in
  Gmr.iter
    (fun tup mult ->
      let b = Costmodel.tuple_bytes tup in
      ser := !ser + b;
      if Array.length key = 0 then
        for d = 0 to w - 1 do
          Gmr.add outs.(d) tup mult;
          if d <> self then modeled.(d) <- modeled.(d) + b
        done
      else begin
        let d =
          Divm_ring.Vtuple.hash (Divm_ring.Vtuple.project tup key) mod w
        in
        Gmr.add outs.(d) tup mult;
        if d <> self then modeled.(d) <- modeled.(d) + b
      end)
    (Runtime.map_contents s.wrt source);
  Runtime.clear_map s.wrt tname;
  let frames =
    Array.init w (fun d ->
        if d = self then ""
        else Protocol.encode_frame (Protocol.Mesh_data (self, outs.(d))))
  in
  let received = if w > 1 then mesh_exchange m frames else frames in
  for src = 0 to w - 1 do
    let g =
      if src = self then outs.(self)
      else
        match Protocol.decode_frame received.(src) with
        | Protocol.Mesh_data (src', g), _ when src' = src -> g
        | Protocol.Mesh_data (src', _), _ ->
            failwith
              (Printf.sprintf
                 "divm_node worker: mesh frame from peer %d claims src %d"
                 src src')
        | _ ->
            failwith
              (Printf.sprintf
                 "divm_node worker: unexpected mesh message from peer %d" src)
    in
    (* slot-order replay, exactly like the star path's Deliver handler *)
    Gmr.iter (fun tup mult -> Runtime.add_to_map s.wrt tname tup mult) g
  done;
  {
    Protocol.ss_ser = !ser;
    ss_modeled = modeled;
    ss_sent = Array.map String.length frames;
    ss_wall = Unix.gettimeofday () -. wall0;
  }

let serve ~id fd =
  let state = ref None in
  let st () =
    match !state with
    | Some s -> s
    | None -> failwith "divm_node worker: message before Init"
  in
  let mesh = ref None in
  let running = ref true in
  while !running do
    match Protocol.read_msg fd with
    | exception End_of_file -> running := false
    | msg, _ ->
        let reply =
          match msg with
          | Protocol.Init s ->
              let dp : Dprog.t = Marshal.from_string s 0 in
              state := Some (build_wstate dp);
              Protocol.Ack
          | Protocol.Load_batch (rel, g) ->
              Runtime.load_batch (st ()).wrt ~rel g;
              Protocol.Ack
          | Protocol.Run_block (rel, bi) ->
              let s = st () in
              let o0 = Runtime.ops s.wrt in
              let wall0 = Unix.gettimeofday () in
              (match List.assoc_opt rel s.wplans with
              | Some blocks when bi >= 0 && bi < Array.length blocks ->
                  List.iter
                    (fun (label, slot, f) -> wexec s ~label ~slot f)
                    blocks.(bi)
              | _ ->
                  failwith
                    (Printf.sprintf "divm_node worker: no block %d for %s" bi
                       rel));
              Protocol.Block_done
                (Runtime.ops s.wrt - o0, Unix.gettimeofday () -. wall0)
          | Protocol.Pull_map name ->
              Protocol.Map_contents (Runtime.map_contents (st ()).wrt name)
          | Protocol.Deliver (name, g) ->
              let s = st () in
              (* replay in slot order: the decoded GMR preserves the
                 sender's buffer order, which is the order the simulator
                 delivers in. Any reordering here would permute the
                 transient's slots and perturb downstream float
                 summation, breaking bit-identity with the simulator. *)
              Gmr.iter (fun tup m -> Runtime.add_to_map s.wrt name tup m) g;
              Protocol.Ack
          | Protocol.Clear_map name ->
              Runtime.clear_map (st ()).wrt name;
              Protocol.Ack
          | Protocol.Start_telemetry (profile, trace) ->
              Prof.set_enabled profile;
              Obs.set_tracing trace;
              w_last_snap := Obs.snapshot ();
              Protocol.Ack
          | Protocol.Pull_telemetry ->
              Protocol.Telemetry (collect_telemetry ())
          | Protocol.Peers paths ->
              (match !mesh with Some m -> mesh_close m | None -> ());
              mesh := Some (mesh_bind ~id paths);
              Protocol.Ack
          | Protocol.Mesh_connect ->
              (match !mesh with
              | Some m -> mesh_connect m
              | None -> failwith "divm_node worker: Mesh_connect before Peers");
              Protocol.Ack
          | Protocol.Shuffle idx ->
              let s = st () in
              (match !mesh with
              | Some m ->
                  if idx >= Array.length s.wtransfers then
                    failwith
                      (Printf.sprintf
                         "divm_node worker: transfer index %d out of range \
                          (%d transfers)"
                         idx
                         (Array.length s.wtransfers));
                  let tname, key, source = s.wtransfers.(idx) in
                  Protocol.Shuffle_done (mesh_shuffle s m ~tname ~key ~source)
              | None ->
                  failwith
                    "divm_node worker: Shuffle before the mesh handshake")
          | Protocol.Shutdown ->
              running := false;
              Protocol.Ack
          | Protocol.Hello _ | Protocol.Ack | Protocol.Block_done _
          | Protocol.Map_contents _ | Protocol.Telemetry _
          | Protocol.Shuffle_done _ | Protocol.Mesh_data _ ->
              failwith "divm_node worker: unexpected coordinator message"
        in
        ignore (Protocol.write_msg fd reply)
  done;
  match !mesh with Some m -> mesh_close m | None -> ()

let worker_main ~socket ~id =
  ignore_sigpipe ();
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec connect tries =
    try Unix.connect fd (Unix.ADDR_UNIX socket)
    with Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
    when tries > 0 ->
      Unix.sleepf 0.05;
      connect (tries - 1)
  in
  connect 100;
  ignore (Protocol.write_msg fd (Protocol.Hello id));
  serve ~id fd;
  (try Unix.close fd with _ -> ())

(* -------------------------------------------------------------- *)
(* Coordinator                                                     *)
(* -------------------------------------------------------------- *)

type transfer = {
  tname : string;
  tkind : Dprog.transfer_kind;
  key : int array;
  source : string;
  tslot : int;
}

type item =
  | NDriver of string * int * (unit -> unit)
  | NTransfer of transfer

type nblock =
  | BLocal of item list
  | BDist of int * int (* block index within the trigger, profiler slot *)

type conn = { fd : Unix.file_descr; pid : int option }

type t = {
  cfg : config;
  dprog : Dprog.t;
  driver : Runtime.t;
  conns : conn array;
  plans : (string * nblock list) list;
  delta_at_workers : bool;
  mutable wire : int; (* actual socket bytes, current batch *)
  mutable alive : bool;
  mutable telem_started : bool; (* Start_telemetry sent to every worker *)
  offsets : float array; (* estimated worker clock minus ours, seconds *)
  rtts : float array; (* best pull round-trip so far, per worker *)
  wops : Obs.Counter.t array; (* divm_node_worker_ops_total{worker=i} *)
  wstage : Obs.Histogram.t array; (* divm_node_stage_seconds{worker=i} *)
  mlinks : Obs.Counter.t array array;
      (* divm_node_mesh_bytes_total{src=i,dst=j}; empty under Star *)
  tindex : (string * int array * string, int) Hashtbl.t;
      (* (tname, key, source) -> index in Dprog.transfers; the workers
         derive the same table from the Init program, so a Shuffle frame
         carries four bytes instead of the three names *)
}

let workers t = t.cfg.workers
let worker_pids t = Array.to_list (Array.map (fun c -> c.pid) t.conns)

(* A dead socket alone is an opaque decode/EOF failure; the child's exit
   status says *why*. Poll briefly with WNOHANG — the SIGKILL/exit that
   killed the socket races our read of it. *)
let worker_fate t wi =
  match t.conns.(wi).pid with
  | None -> None
  | Some pid ->
      let rec poll tries =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
            if tries <= 0 then None
            else begin
              Unix.sleepf 0.05;
              poll (tries - 1)
            end
        | _, Unix.WEXITED n -> Some (Printf.sprintf "exited %d" n)
        | _, Unix.WSIGNALED n -> Some (Printf.sprintf "signaled %d" n)
        | _, Unix.WSTOPPED n -> Some (Printf.sprintf "stopped %d" n)
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> None
      in
      poll 10

let fail_worker t wi exn =
  let fate =
    match worker_fate t wi with
    | Some f -> Printf.sprintf "(worker %d, %s)" wi f
    | None -> Printf.sprintf "(worker %d, still running)" wi
  in
  failwith
    (Printf.sprintf "divm_node: %s connection failed mid-batch: %s" fate
       (Printexc.to_string exn))

let send t wi msg =
  try t.wire <- t.wire + Protocol.write_msg t.conns.(wi).fd msg with
  | (Protocol.Error _ | Unix.Unix_error _ | End_of_file) as e ->
      fail_worker t wi e

let recv t wi =
  match Protocol.read_msg t.conns.(wi).fd with
  | m, n ->
      t.wire <- t.wire + n;
      m
  | exception ((Protocol.Error _ | Unix.Unix_error _ | End_of_file) as e) ->
      fail_worker t wi e

let expect_ack t wi =
  match recv t wi with
  | Protocol.Ack -> ()
  | _ -> failwith (Printf.sprintf "divm_node: worker %d: expected Ack" wi)

let expect_contents t wi =
  match recv t wi with
  | Protocol.Map_contents g -> g
  | _ ->
      failwith (Printf.sprintf "divm_node: worker %d: expected Map_contents" wi)

let expect_done t wi =
  match recv t wi with
  | Protocol.Block_done (ops, wall) -> (ops, wall)
  | _ ->
      failwith (Printf.sprintf "divm_node: worker %d: expected Block_done" wi)

let expect_shuffle_done t wi =
  match recv t wi with
  | Protocol.Shuffle_done st -> st
  | _ ->
      failwith (Printf.sprintf "divm_node: worker %d: expected Shuffle_done" wi)

(* ---- worker process spawning ---- *)

let discover_exe cfg =
  let candidates =
    (match cfg.worker_exe with Some p -> [ p ] | None -> [])
    @ (match Sys.getenv_opt "DIVM_NODE_EXE" with Some p -> [ p ] | None -> [])
    @
    let dir = Filename.dirname Sys.executable_name in
    let sibling_bin = Filename.concat (Filename.dirname dir) "bin" in
    [
      Filename.concat dir "divm_node.exe";
      Filename.concat dir "divm_node";
      Filename.concat sibling_bin "divm_node.exe";
      Filename.concat sibling_bin "divm_node";
    ]
  in
  List.find_opt Sys.file_exists candidates

let socket_counter = ref 0

let fresh_socket_path cfg =
  incr socket_counter;
  let dir =
    match cfg.socket_dir with
    | Some d -> d
    | None -> Filename.get_temp_dir_name ()
  in
  Filename.concat dir
    (Printf.sprintf "divm_node_%d_%d.sock" (Unix.getpid ()) !socket_counter)

(* Exec-based spawning: the primary mechanism. Workers are fresh
   single-domain processes of the [divm_node] binary, immune to the
   fork-after-domain-spawn deadlock of OCaml 5 runtimes. *)
let spawn_exec exe cfg =
  let path = fresh_socket_path cfg in
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_close_on_exec listener;
  (try Unix.unlink path with _ -> ());
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener cfg.workers;
  let pids =
    Array.init cfg.workers (fun wi ->
        Unix.create_process exe
          [| exe; "--worker"; "--socket"; path; "--id"; string_of_int wi |]
          Unix.stdin Unix.stdout Unix.stderr)
  in
  let conns = Array.make cfg.workers None in
  let fail msg =
    Array.iter (fun pid -> try Unix.kill pid Sys.sigkill with _ -> ()) pids;
    Array.iter
      (function Some fd -> ( try Unix.close fd with _ -> ()) | None -> ())
      conns;
    (try Unix.close listener with _ -> ());
    (try Unix.unlink path with _ -> ());
    failwith ("divm_node: " ^ msg)
  in
  for _ = 1 to cfg.workers do
    (match Unix.select [ listener ] [] [] 30. with
    | [], _, _ -> fail "worker did not connect within 30s"
    | _ -> ());
    let fd, _ = Unix.accept listener in
    match Protocol.read_msg fd with
    | Protocol.Hello wid, _ when wid >= 0 && wid < cfg.workers ->
        if conns.(wid) <> None then
          fail (Printf.sprintf "worker %d connected twice" wid);
        conns.(wid) <- Some fd
    | _ -> fail "bad handshake from worker"
    | exception e -> fail ("handshake failed: " ^ Printexc.to_string e)
  done;
  (try Unix.close listener with _ -> ());
  (try Unix.unlink path with _ -> ());
  Array.mapi
    (fun wi c ->
      match c with
      | Some fd -> { fd; pid = Some pids.(wi) }
      | None -> fail "missing worker connection" (* unreachable *))
    conns

(* Fork fallback for environments without the worker binary (e.g. a
   toplevel). Only safe before any Par pool domain exists: forking a
   multi-domain OCaml 5 process leaves the child's stop-the-world
   machinery waiting on domains that did not survive the fork. *)
let spawn_fork cfg =
  if Par.spawned_domains () > 0 then
    failwith
      "divm_node: no divm_node worker executable found and domains are \
       already spawned (fork unsafe); set DIVM_NODE_EXE or config.worker_exe";
  let parent_ends = ref [] in
  Array.init cfg.workers (fun wi ->
      let parent_fd, child_fd =
        Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
      in
      match Unix.fork () with
      | 0 ->
          (* Child: drop every parent-side descriptor, serve, hard-exit
             (no at_exit: the pool shutdown hook is the parent's). *)
          List.iter (fun fd -> try Unix.close fd with _ -> ()) !parent_ends;
          (try Unix.close parent_fd with _ -> ());
          ignore_sigpipe ();
          let code =
            try
              ignore (Protocol.write_msg child_fd (Protocol.Hello wi));
              serve ~id:wi child_fd;
              0
            with e ->
              prerr_endline ("divm_node worker: " ^ Printexc.to_string e);
              1
          in
          Unix._exit code
      | pid ->
          (try Unix.close child_fd with _ -> ());
          parent_ends := parent_fd :: !parent_ends;
          { fd = parent_fd; pid = Some pid })

let create ?(config = default_config) (dp : Dprog.t) =
  if config.workers < 1 then invalid_arg "Node.create: workers must be >= 1";
  ignore_sigpipe ();
  let conns =
    match discover_exe config with
    | Some exe -> spawn_exec exe config
    | None -> spawn_fork config
  in
  Array.iter
    (fun c ->
      (* Bounded coordinator waits: a wedged worker fails the batch
         instead of hanging a CI job. *)
      try Unix.setsockopt_float c.fd Unix.SO_RCVTIMEO 120. with _ -> ())
    conns;
  let t0 =
    {
      cfg = config;
      dprog = dp;
      driver = Runtime.create ~domains:1 (Dprog.compute_prog dp);
      conns;
      plans = [];
      delta_at_workers = false;
      wire = 0;
      alive = true;
      telem_started = false;
      offsets = Array.make config.workers 0.;
      rtts = Array.make config.workers infinity;
      (* Per-worker labeled instruments, registered up front so a scrape
         of /metrics shows every worker from the first batch on. *)
      wops =
        Array.init config.workers (fun wi ->
            Obs.Counter.make
              (Obs.with_labels "divm_node_worker_ops_total"
                 [ ("worker", string_of_int wi) ]));
      wstage =
        Array.init config.workers (fun wi ->
            Obs.Histogram.make
              (Obs.with_labels "divm_node_stage_seconds"
                 [ ("worker", string_of_int wi) ]));
      (* Per-link wire counters, off-diagonal only: a worker never puts
         its own share on a socket. Diagonal cells exist (the matrix is
         square for direct indexing) but stay out of the registry. *)
      mlinks =
        (if config.shuffle = Mesh && config.workers > 1 then
           Array.init config.workers (fun s ->
               Array.init config.workers (fun d ->
                   Obs.Counter.make ~register:(s <> d)
                     (Obs.with_labels "divm_node_mesh_bytes_total"
                        [ ("src", string_of_int s); ("dst", string_of_int d) ])))
         else [||]);
      tindex =
        (let tbl = Hashtbl.create 16 in
         Array.iteri
           (fun i tr -> if not (Hashtbl.mem tbl tr) then Hashtbl.add tbl tr i)
           (Dprog.transfers dp);
         tbl);
    }
  in
  (* Ship the program; workers compile the same statements we do. *)
  let init = Protocol.Init (Marshal.to_string dp []) in
  Array.iteri (fun wi _ -> send t0 wi init) conns;
  Array.iteri (fun wi _ -> expect_ack t0 wi) conns;
  (* Mesh handshake: distribute every worker's listener path, barrier on
     the binds (so each listen backlog exists before any peer connects),
     then tell everyone to wire up. *)
  (if config.shuffle = Mesh then begin
     let paths = Array.init config.workers (fun _ -> fresh_socket_path config) in
     let peers = Protocol.Peers paths in
     Array.iteri (fun wi _ -> send t0 wi peers) conns;
     Array.iteri (fun wi _ -> expect_ack t0 wi) conns;
     Array.iteri (fun wi _ -> send t0 wi Protocol.Mesh_connect) conns;
     Array.iteri (fun wi _ -> expect_ack t0 wi) conns
   end);
  let compile_block trigger bi nstages (b : Dprog.block) =
    match b.bmode with
    | Dprog.MDist ->
        let label = Printf.sprintf "stage:%d" nstages in
        BDist (bi, Prof.slot ~trigger ~label)
    | Dprog.MLocal ->
        BLocal
          (List.map
             (fun d ->
               match d with
               | Dprog.Transfer { tname; tkind; key; source } ->
                   NTransfer
                     {
                       tname;
                       tkind;
                       key;
                       source;
                       tslot = Prof.slot ~trigger ~label:("transfer:" ^ tname);
                     }
               | Dprog.Compute s ->
                   let label = "driver:" ^ s.target in
                   NDriver
                     ( label,
                       Prof.slot ~trigger ~label,
                       List.hd (Runtime.compile_stmts t0.driver [ s ]) ))
             b.bstmts)
  in
  let plans =
    List.map
      (fun (tr : Dprog.dtrigger) ->
        let nstages = ref 0 in
        ( tr.drelation,
          List.mapi
            (fun bi (b : Dprog.block) ->
              if b.bmode = Dprog.MDist then incr nstages;
              compile_block tr.drelation bi !nstages b)
            tr.blocks ))
      dp.dtriggers
  in
  let delta_at_workers =
    List.exists
      (fun (m : Divm_compiler.Prog.map_decl) ->
        m.mkind = Divm_compiler.Prog.Transient
        && Divm_calc.Calc.has_deltas m.definition
        && Loc.find dp.locs m.mname <> Loc.Local)
      dp.base.maps
  in
  Obs.Gauge.set g_workers (float_of_int config.workers);
  { t0 with plans; delta_at_workers }

(* ---- transfers (star topology through the coordinator) ---- *)

type net = {
  mutable total_bytes : int;
  mutable into_node : int array;
  mutable into_driver : int;
}

let tuple_bytes = Costmodel.tuple_bytes

(* Pull sources, clear destinations, partition, deliver. The modeled byte
   accounting is the simulator's exactly — origin = destination moves are
   free in the model even though the star topology really sends them over
   two socket hops; the difference is precisely what [wire_bytes] vs
   [bytes_shuffled] exposes. *)
let run_transfer t net (tr : transfer) =
  let src_loc = Loc.find t.dprog.locs tr.source in
  let dst_loc = Loc.find t.dprog.locs tr.tname in
  let w = Array.length t.conns in
  let sources =
    match src_loc with
    | Loc.Local -> [ (-1, Runtime.map_contents t.driver tr.source) ]
    | Loc.Replicated ->
        send t 0 (Protocol.Pull_map tr.source);
        [ (-2, expect_contents t 0) ]
    | Loc.Dist _ | Loc.Random ->
        Array.iteri (fun wi _ -> send t wi (Protocol.Pull_map tr.source)) t.conns;
        Array.to_list (Array.init w (fun wi -> (wi, expect_contents t wi)))
  in
  (match dst_loc with
  | Loc.Local -> Runtime.clear_map t.driver tr.tname
  | _ ->
      Array.iteri (fun wi _ -> send t wi (Protocol.Clear_map tr.tname)) t.conns;
      Array.iteri (fun wi _ -> expect_ack t wi) t.conns);
  (* Per-destination out-buffers: duplicates pre-sum at the coordinator in
     source-iteration order, so the float each worker finally stores is
     bit-identical to the simulator's in-order adds into a cleared map. *)
  let outs = Array.init w (fun _ -> Gmr.create ()) in
  let deliver_worker origin wi tup m =
    Gmr.add outs.(wi) tup m;
    if origin <> wi then begin
      let b = tuple_bytes tup in
      net.total_bytes <- net.total_bytes + b;
      net.into_node.(wi) <- net.into_node.(wi) + b
    end
  in
  let deliver_driver origin tup m =
    Runtime.add_to_map t.driver tr.tname tup m;
    if origin <> -1 then begin
      let b = tuple_bytes tup in
      net.total_bytes <- net.total_bytes + b;
      net.into_driver <- net.into_driver + b
    end
  in
  let ser_bytes = ref 0 in
  List.iter
    (fun (origin, contents) ->
      Gmr.iter
        (fun tup m ->
          ser_bytes := !ser_bytes + tuple_bytes tup;
          match tr.tkind with
          | Dprog.Gather -> deliver_driver origin tup m
          | Dprog.Scatter | Dprog.Repart ->
              if Array.length tr.key = 0 then
                for wi = 0 to w - 1 do
                  deliver_worker origin wi tup m
                done
              else
                let sub = Divm_ring.Vtuple.project tup tr.key in
                deliver_worker origin
                  (Divm_ring.Vtuple.hash sub mod w)
                  tup m)
        contents)
    sources;
  if dst_loc <> Loc.Local then begin
    Array.iteri
      (fun wi _ -> send t wi (Protocol.Deliver (tr.tname, outs.(wi))))
      t.conns;
    Array.iteri (fun wi _ -> expect_ack t wi) t.conns
  end;
  !ser_bytes

(* ---- transfers (direct worker-to-worker mesh) ---- *)

(* A transfer goes over the mesh when every byte both starts and ends on
   workers: distributed-to-distributed scatters and repartitions. Gathers
   terminate at the driver and replicated/local sources live off the
   mesh, so those stay on the star path — which also keeps the star code
   exercised under the default Mesh config. *)
let mesh_eligible t (tr : transfer) =
  t.cfg.shuffle = Mesh
  && tr.tkind <> Dprog.Gather
  && (match Loc.find t.dprog.locs tr.source with
     | Loc.Dist _ | Loc.Random -> true
     | Loc.Local | Loc.Replicated -> false)
  && Loc.find t.dprog.locs tr.tname <> Loc.Local

(* How many times a shuffled byte crosses a socket, feeding the a-priori
   wire predictor. Star relays through the coordinator: one crossing to
   pull from a remote source, then one per delivery (a broadcast fans out
   to every worker). Mesh ships direct: one crossing per remote
   destination — a keyed repartition keeps ~1/w of the bytes home, which
   the per-byte estimate rounds to one crossing. *)
let predicted_crossings t (tr : transfer) ~mesh =
  let w = t.cfg.workers in
  let fanout =
    if Array.length tr.key = 0 && tr.tkind <> Dprog.Gather then w else 1
  in
  if mesh then max 1 (fanout - 1)
  else
    match tr.tkind with
    | Dprog.Gather -> 1
    | Dprog.Scatter | Dprog.Repart ->
        let src_remote =
          match Loc.find t.dprog.locs tr.source with
          | Loc.Dist _ | Loc.Random | Loc.Replicated -> true
          | Loc.Local -> false
        in
        (if src_remote then 1 else 0) + fanout

(* One mesh transfer: broadcast [Shuffle], barrier on every worker's
   [Shuffle_done], fold the reported stats into the same modeled-byte
   ledger the star path and the simulator fill — the workers apply the
   simulator's free-when-origin-equals-destination rule locally, so
   [net] ends up integer-identical and the modeled latency downstream is
   bit-identical. Actual socket bytes land in [t.wire] and the per-link
   counters instead. Returns (modeled ser bytes, per-worker shuffle
   walls, (src, dst, wire bytes) per active link). *)
let run_transfer_mesh t net (tr : transfer) =
  let w = Array.length t.conns in
  let idx =
    match Hashtbl.find_opt t.tindex (tr.tname, tr.key, tr.source) with
    | Some i -> i
    | None ->
        failwith
          (Printf.sprintf "divm_node: transfer %s <- %s not in Dprog.transfers"
             tr.tname tr.source)
  in
  let m = Protocol.Shuffle idx in
  Array.iteri (fun wi _ -> send t wi m) t.conns;
  let stats = Array.init w (fun wi -> expect_shuffle_done t wi) in
  let ser = ref 0 in
  let links = ref [] in
  Array.iteri
    (fun src (st : Protocol.shuffle_stat) ->
      if Array.length st.ss_modeled <> w || Array.length st.ss_sent <> w then
        failwith
          (Printf.sprintf
             "divm_node: worker %d: shuffle stat arity mismatch (%d/%d \
              destinations, %d workers)"
             src
             (Array.length st.ss_modeled)
             (Array.length st.ss_sent) w);
      ser := !ser + st.ss_ser;
      Array.iteri
        (fun dst b ->
          if dst <> src && b > 0 then begin
            net.total_bytes <- net.total_bytes + b;
            net.into_node.(dst) <- net.into_node.(dst) + b
          end)
        st.ss_modeled;
      Array.iteri
        (fun dst b ->
          if dst <> src && b > 0 then begin
            t.wire <- t.wire + b;
            Obs.Counter.add t.mlinks.(src).(dst) b;
            links := (src, dst, b) :: !links
          end)
        st.ss_sent)
    stats;
  ( !ser,
    Array.map (fun (st : Protocol.shuffle_stat) -> st.Protocol.ss_wall) stats,
    List.rev !links )

(* ---- telemetry plane (coordinator side) ---- *)

(* Lazily arm the workers' observers: collection can be switched on by
   the CLI layer after [create] (profile/trace activation happens once
   the engine exists), so the first batch that runs under an armed
   collector ships [Start_telemetry] with whatever is enabled then. *)
let maybe_start_telemetry t =
  if (not t.telem_started) && Obs.collection () then begin
    t.telem_started <- true;
    let m = Protocol.Start_telemetry (Prof.enabled (), Obs.tracing ()) in
    Array.iteri (fun wi _ -> send t wi m) t.conns;
    Array.iteri (fun wi _ -> expect_ack t wi) t.conns
  end

(* One pull per worker, sequentially: the request/reply timestamps double
   as a clock-offset probe (offset = worker_now - midpoint), and the
   estimate from the smallest round-trip seen so far wins — the classic
   NTP bound: the error is at most rtt/2. The offset is stored per pid
   and applied uniformly at export, so refining it between pulls can
   shift but never reorder a worker's own timeline. *)
let pull_telemetry t =
  Array.iteri
    (fun wi _ ->
      let t0 = Unix.gettimeofday () in
      send t wi Protocol.Pull_telemetry;
      match recv t wi with
      | Protocol.Telemetry tm ->
          let t1 = Unix.gettimeofday () in
          let rtt = t1 -. t0 in
          if rtt < t.rtts.(wi) then begin
            t.rtts.(wi) <- rtt;
            t.offsets.(wi) <- tm.Protocol.t_now -. ((t0 +. t1) /. 2.)
          end;
          let wl = [ ("worker", string_of_int wi) ] in
          Obs.ingest ~labels:wl tm.Protocol.t_snap;
          List.iter
            (fun (r : Prof.row) ->
              Prof.merge ~trigger:r.r_trigger
                ~label:(Printf.sprintf "%s@w%d" r.r_label wi)
                r)
            tm.Protocol.t_slots;
          if tm.Protocol.t_spans <> [] then
            Obs.add_remote_events ~pid:(wi + 2)
              ~pname:(Printf.sprintf "worker %d" wi)
              ~offset:t.offsets.(wi) tm.Protocol.t_spans
      | _ ->
          failwith
            (Printf.sprintf "divm_node: worker %d: expected Telemetry" wi))
    t.conns

(* ---- batch execution ---- *)

let apply_batch t ~rel batch =
  if not t.alive then failwith "divm_node: engine is shut down";
  let w = Array.length t.conns in
  let batch_wall0 = Unix.gettimeofday () in
  t.wire <- 0;
  maybe_start_telemetry t;
  Obs.span ("node:" ^ rel) @@ fun () ->
  if t.delta_at_workers then begin
    let shares = Array.init w (fun _ -> Gmr.create ()) in
    let i = ref 0 in
    Gmr.iter
      (fun tup m ->
        Gmr.add shares.(!i mod w) tup m;
        incr i)
      batch;
    Array.iteri
      (fun wi _ -> send t wi (Protocol.Load_batch (rel, shares.(wi))))
      t.conns;
    Array.iteri (fun wi _ -> expect_ack t wi) t.conns;
    Runtime.load_batch t.driver ~rel (Gmr.create ())
  end
  else begin
    Runtime.load_batch t.driver ~rel batch;
    let empty = Gmr.create () in
    Array.iteri
      (fun wi _ -> send t wi (Protocol.Load_batch (rel, empty)))
      t.conns;
    Array.iteri (fun wi _ -> expect_ack t wi) t.conns
  end;
  let blocks =
    match List.assoc_opt rel t.plans with
    | Some b -> b
    | None -> invalid_arg ("Node.apply_batch: no trigger for " ^ rel)
  in
  let net = { total_bytes = 0; into_node = Array.make w 0; into_driver = 0 } in
  let latency = ref 0. in
  let stages = ref 0 in
  let worker_ops = Array.make w 0 in
  let max_worker_ops = ref 0 in
  let driver_ops0 = Runtime.ops t.driver in
  let pending_max_into = ref 0 in
  let stats = ref [] in
  List.iter
    (fun nb ->
      match nb with
      | BLocal items ->
          List.iter
            (fun it ->
              match it with
              | NDriver (lbl, slot, f) ->
                  Runtime.run_attributed t.driver ~label:lbl ~slot f
              | NTransfer tr ->
                  Obs.span ("transfer:" ^ tr.tname) (fun () ->
                      let wall0 = Unix.gettimeofday () in
                      let wire0 = t.wire in
                      let bytes_before = net.total_bytes in
                      let before_max =
                        Array.fold_left max net.into_driver net.into_node
                      in
                      let mesh = mesh_eligible t tr in
                      let ser, mwalls, mlinks_l =
                        if mesh then run_transfer_mesh t net tr
                        else (run_transfer t net tr, [||], [])
                      in
                      let wall = Unix.gettimeofday () -. wall0 in
                      if Prof.enabled () then
                        Prof.add tr.tslot ~ops:0 ~probes:0 ~misses:0 ~scanned:0
                          ~svscan:0 ~svsel:0
                          ~bytes:(net.total_bytes - bytes_before)
                          ~wall;
                      let after_max =
                        Array.fold_left max net.into_driver net.into_node
                      in
                      pending_max_into :=
                        max !pending_max_into (after_max - before_max);
                      let dt =
                        Costmodel.transfer_latency t.cfg.cost ~ser_bytes:ser
                          ~max_into:(after_max - before_max)
                      in
                      latency := !latency +. dt;
                      stats :=
                        {
                          sname = "transfer:" ^ tr.tname;
                          predicted = dt;
                          measured = wall;
                          sbytes = net.total_bytes - bytes_before;
                          swire = t.wire - wire0;
                          spwire =
                            Costmodel.predicted_wire_bytes
                              ~crossings:(predicted_crossings t tr ~mesh)
                              ~workers:w ~ser_bytes:ser;
                          swalls = mwalls;
                          slinks = mlinks_l;
                        }
                        :: !stats;
                      if Obs.tracing () then begin
                        Obs.set_attr "modeled_ms"
                          (Printf.sprintf "%.6f" (dt *. 1e3));
                        Obs.set_attr "measured_ms"
                          (Printf.sprintf "%.6f" (wall *. 1e3));
                        Obs.set_attr "bytes"
                          (string_of_int (net.total_bytes - bytes_before))
                      end))
            items
      | BDist (bi, slot) ->
          incr stages;
          let lbl = Printf.sprintf "stage:%d" !stages in
          Obs.span lbl (fun () ->
              let wall0 = Unix.gettimeofday () in
              let wire0 = t.wire in
              (* Broadcast, then barrier on every worker's reply — the
                 workers execute their partitions genuinely in parallel. *)
              Array.iteri
                (fun wi _ -> send t wi (Protocol.Run_block (rel, bi)))
                t.conns;
              let replies = Array.init w (fun wi -> expect_done t wi) in
              let wall = Unix.gettimeofday () -. wall0 in
              let deltas = Array.map fst replies in
              let walls = Array.map snd replies in
              let max_ops = ref 0 in
              Array.iteri
                (fun wi d ->
                  worker_ops.(wi) <- worker_ops.(wi) + d;
                  Obs.Counter.add t.wops.(wi) d;
                  Obs.Histogram.observe t.wstage.(wi) walls.(wi);
                  max_ops := max !max_ops d)
                deltas;
              (* Straggler ratio over the workers' own measured walls —
                 socket turnaround excluded, so a loaded coordinator does
                 not read as a slow worker. *)
              (if w > 1 then
                 let sorted = Array.copy walls in
                 Array.sort compare sorted;
                 let median =
                   if w land 1 = 1 then sorted.(w / 2)
                   else (sorted.((w / 2) - 1) +. sorted.(w / 2)) /. 2.
                 in
                 if median > 0. then
                   Obs.Histogram.observe h_straggler (sorted.(w - 1) /. median));
              max_worker_ops := !max_worker_ops + !max_ops;
              if Prof.enabled () then
                Prof.add slot
                  ~ops:(Array.fold_left ( + ) 0 deltas)
                  ~probes:0 ~misses:0 ~scanned:0 ~svscan:0 ~svsel:0 ~bytes:0
                  ~wall;
              let dt =
                Costmodel.stage_latency t.cfg.cost ~workers:w ~max_ops:!max_ops
                  ~pending_max_into:!pending_max_into
              in
              pending_max_into := 0;
              latency := !latency +. dt;
              stats :=
                {
                  sname = lbl;
                  predicted = dt;
                  measured = wall;
                  sbytes = 0;
                  swire = t.wire - wire0;
                  spwire = 0;
                  swalls = walls;
                  slinks = [];
                }
                :: !stats;
              if Obs.tracing () then begin
                Obs.set_attr "modeled_ms" (Printf.sprintf "%.6f" (dt *. 1e3));
                Obs.set_attr "measured_ms" (Printf.sprintf "%.6f" (wall *. 1e3));
                Obs.set_attr "max_worker_ops" (string_of_int !max_ops);
                Obs.set_attr "workers" (string_of_int w)
              end);
          (* Ship the stage's telemetry right at the barrier (outside the
             stage span, so pull traffic never pollutes stage wire/wall
             accounting). *)
          if t.telem_started then pull_telemetry t)
    blocks;
  let driver_ops = Runtime.ops t.driver - driver_ops0 in
  let wall = Unix.gettimeofday () -. batch_wall0 in
  Obs.Counter.add m_bytes_shuffled net.total_bytes;
  Obs.Counter.add m_wire_bytes t.wire;
  Obs.Counter.add m_stages !stages;
  Obs.Counter.incr m_batches;
  Obs.Counter.add m_worker_ops (Array.fold_left ( + ) 0 worker_ops);
  Obs.Counter.add m_driver_ops driver_ops;
  if Obs.tracing () then begin
    Obs.set_attr "modeled_latency_ms" (Printf.sprintf "%.6f" (!latency *. 1e3));
    Obs.set_attr "stages" (string_of_int !stages);
    Obs.set_attr "bytes_shuffled" (string_of_int net.total_bytes);
    Obs.set_attr "wire_bytes" (string_of_int t.wire)
  end;
  {
    latency = !latency;
    wall;
    stages = !stages;
    bytes_shuffled = net.total_bytes;
    wire_bytes = t.wire;
    max_worker_ops = !max_worker_ops;
    driver_ops;
    stage_stats = List.rev !stats;
  }

(* ---- inspection ---- *)

let map_contents t name =
  if not t.alive then failwith "divm_node: engine is shut down";
  match Loc.find t.dprog.locs name with
  | Loc.Local -> Runtime.map_contents t.driver name
  | Loc.Replicated ->
      send t 0 (Protocol.Pull_map name);
      expect_contents t 0
  | Loc.Dist _ | Loc.Random ->
      Array.iteri (fun wi _ -> send t wi (Protocol.Pull_map name)) t.conns;
      let out = Gmr.create () in
      Array.iteri
        (fun wi _ -> Gmr.union_into out (expect_contents t wi))
        t.conns;
      out

let result t qname =
  match List.assoc_opt qname t.dprog.base.queries with
  | Some m -> map_contents t m
  | None -> invalid_arg ("Node.result: unknown query " ^ qname)

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    (* Final drain: anything observed since the last stage barrier (or a
       collector armed after the last batch) still reaches the merged
       view before the workers go away. *)
    if Obs.collection () then begin
      (try maybe_start_telemetry t with _ -> ());
      if t.telem_started then try pull_telemetry t with _ -> ()
    end;
    Array.iter
      (fun c ->
        try ignore (Protocol.write_msg c.fd Protocol.Shutdown) with _ -> ())
      t.conns;
    Array.iter
      (fun c -> try ignore (Protocol.read_msg c.fd) with _ -> ())
      t.conns;
    Array.iter (fun c -> try Unix.close c.fd with _ -> ()) t.conns;
    Array.iter
      (fun c ->
        match c.pid with
        | Some pid -> ( try ignore (Unix.waitpid [] pid) with _ -> ())
        | None -> ())
      t.conns
  end
