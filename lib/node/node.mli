(** Multi-process distributed execution: real worker processes instead of
    the simulator's in-process runtimes.

    A coordinator (this module, in the calling process) spawns [workers]
    child processes, each owning one partition of every distributed map in
    its own address space. Children are started by exec-ing the
    [divm_node] binary in worker mode (fork is used only as a fallback
    when no worker executable can be found and no {!Divm_par.Par} domains
    have been spawned — forking a multi-domain OCaml 5 process deadlocks
    the child). Coordinator and workers speak the framed binary protocol
    of {!Protocol} over Unix domain sockets; the framing is
    address-agnostic, so a TCP transport only changes socket setup.

    Execution is driven stage-by-stage from the same
    {!Divm_dist.Dprog.t} block structure the simulator executes: local
    blocks run compiled statements on the coordinator's driver runtime,
    distributed blocks are broadcast as [Run_block] and barrier on every
    worker's [Block_done], and transfers move re-partitioned shares
    between partitions. Worker-to-worker transfers travel over a
    {!topology}: [Star] relays every payload byte through the coordinator
    (pull, re-partition, deliver — two socket hops per byte), [Mesh] (the
    default) ships them directly over an N×N worker connection mesh set
    up at [create] time, leaving the coordinator as the barrier/ack
    control plane. Gathers and replicated-source transfers stay on the
    star path under either setting. Workers compile the identical
    statements, shard identically, hash-partition identically, and apply
    received shuffle buffers in ascending source order, so stores are
    bit-identical to a {!Divm_cluster.Cluster} run of the same program
    under both topologies (qcheck-verified in [test_node]).

    The {!Divm_dist.Costmodel} is evaluated over the real per-stage op
    counts and modeled shuffle bytes — the same formulas, over the same
    inputs, as the simulator — which makes the model a {e predictor}:
    {!metrics} reports predicted latency next to measured wall time and
    actual wire bytes, per batch and per stage. *)

open Divm_storage
open Divm_dist

(** How worker-to-worker shuffle payloads travel (CLI: [--shuffle]).
    Modeled latencies and [bytes_shuffled] are bit-identical under both;
    only real wire traffic, [wire_bytes], and per-link metrics differ. *)
type topology =
  | Star  (** relay through the coordinator: 2 hops per payload byte *)
  | Mesh  (** direct peer sockets: 1 hop, coordinator only barriers *)

type config = {
  workers : int;
  cost : Costmodel.t;  (** predictor parameters ({!Costmodel.default}) *)
  socket_dir : string option;
      (** where the listening socket lives; default: [TMPDIR] *)
  worker_exe : string option;
      (** worker binary; default: [DIVM_NODE_EXE], else a [divm_node]
          executable next to the running binary (or in a sibling [bin/]
          directory), else fork fallback *)
  shuffle : topology;  (** transfer data plane; default {!Mesh} *)
}

val config :
  ?workers:int ->
  ?cost:Costmodel.t ->
  ?socket_dir:string ->
  ?worker_exe:string ->
  ?shuffle:topology ->
  unit ->
  config
(** Defaults: 2 workers (real processes are heavier than simulated
    nodes), {!Costmodel.default}, [TMPDIR], auto-discovered binary,
    [Mesh] shuffle. *)

val default_config : config

(** One distributed stage or transfer of a batch: the cost model's
    prediction next to what actually happened. *)
type stage_stat = {
  sname : string;  (** ["stage:N"] or ["transfer:NAME"] *)
  predicted : float;  (** modeled seconds ({!Divm_dist.Costmodel}) *)
  measured : float;  (** wall-clock seconds *)
  sbytes : int;  (** modeled shuffled payload bytes *)
  swire : int;  (** actual framed bytes on the sockets *)
  spwire : int;
      (** a-priori wire prediction for transfers
          ({!Costmodel.predicted_wire_bytes}); 0 for stages *)
  swalls : float array;
      (** per-worker wall seconds the workers measured for this stage or
          mesh shuffle (empty for star transfers) — the straggler
          detector's input *)
  slinks : (int * int * int) list;
      (** mesh transfers: [(src, dst, wire bytes)] per active link, in
          ascending (src, dst) order; [[]] otherwise *)
}

type metrics = {
  latency : float;  (** predicted end-to-end seconds (cost model) *)
  wall : float;  (** measured end-to-end seconds *)
  stages : int;
  bytes_shuffled : int;  (** modeled payload bytes (simulator-comparable) *)
  wire_bytes : int;  (** actual bytes written to + read from sockets *)
  max_worker_ops : int;
  driver_ops : int;
  stage_stats : stage_stat list;  (** in execution order *)
}

type t

(** Spawn the worker processes, ship them the marshaled program, and wait
    for every [Init] acknowledgment. Under [Mesh], then distribute every
    worker's peer socket path ([Peers]), barrier, and establish the full
    worker connection mesh ([Mesh_connect]) before the first batch.
    Raises [Failure] when a worker cannot be spawned or dies during the
    handshake. *)
val create : ?config:config -> Dprog.t -> t

val workers : t -> int

(** Child process ids in worker order ([None] only for connections not
    owned by this coordinator). Exposed for failure-injection tests. *)
val worker_pids : t -> int option list

(** Process one batch through the trigger of [rel]. Same sharding as the
    simulator: round-robin over workers when the delta pre-aggregations
    live there, whole batch to the driver otherwise.

    When {!Divm_obs.Obs.collection} is armed, the first such batch sends
    [Start_telemetry] (arming the workers' profiler/tracer to mirror the
    coordinator's), and every distributed-stage barrier pulls a
    [Telemetry] frame per worker: registry deltas merge into this
    process's registry under a [worker="i"] label, profiler slot rows
    merge with an ["@wI"] label suffix, and completed spans enter the
    merged Chrome trace under pid [i+2] with an NTP-style clock-offset
    correction estimated from the pull round-trips. With collection off
    (the default), no telemetry crosses the wire and the worker-side
    hooks cost one flag check per statement.

    If a worker process dies mid-batch, the raised [Failure] names it
    and its fate — [(worker i, exited N)] / [(worker i, signaled N)] —
    from a [waitpid] poll, instead of an opaque socket error. *)
val apply_batch : t -> rel:string -> Gmr.t -> metrics

(** Assembled global contents of a map (driver + worker partitions pulled
    over the wire). *)
val map_contents : t -> string -> Gmr.t

val result : t -> string -> Gmr.t

(** Orderly teardown: [Shutdown] to every worker, wait for the [Ack],
    reap the children, remove the socket. Idempotent. *)
val shutdown : t -> unit

(** {1 Worker mode} *)

(** [worker_main ~socket ~id] is the child's entry point ([divm_node
    --worker]): connect to the coordinator's socket, identify with
    [Hello id], and serve requests until [Shutdown]. Returns after the
    shutdown handshake. *)
val worker_main : socket:string -> id:int -> unit
