(** Wire protocol of the multi-process engine ({!Node}).

    Every message travels in one frame: a 4-byte big-endian payload
    length, then the payload — one tag byte followed by the body. The
    framing carries no addresses or version fields; it is the same shape a
    TCP transport would use, so moving off Unix domain sockets only
    changes how the file descriptors are obtained.

    The data plane (batches, map contents, shuffle deliveries) is encoded
    by hand, not [Marshal]: values round-trip exactly (floats by their
    IEEE-754 bits), so a store filled through the wire is bit-identical
    to one filled in process — the property the simulator-equivalence
    qcheck in [test_node] relies on. The one exception is [Init], whose
    body is a marshaled {!Divm_dist.Dprog.t}: the distributed program is
    pure data (no closures) and both ends run the same binary.

    Decoding is strict: a frame longer than [max_frame], a payload that
    ends mid-field, an unknown tag, or trailing bytes after the message
    all raise {!Error} rather than yielding a partial message. *)

open Divm_storage
open Divm_obs

(** One telemetry pull's worth of worker-side observability state. The
    snapshot and slot rows are {e deltas} since the previous pull (the
    worker keeps the subtraction baseline); spans are the completed
    spans since the previous pull, stamped with the worker's own clock.
    [t_now] is the worker's [Unix.gettimeofday] at encode time — the
    coordinator combines it with its own send/receive timestamps to
    estimate the worker's clock offset. *)
type telem = {
  t_now : float;
  t_snap : Obs.snapshot;
  t_slots : Prof.row list;
  t_spans : Obs.event list;
}

(** One worker's report of a direct mesh shuffle it just finished, the
    coordinator's only involvement in the data movement. [ss_modeled]
    and [ss_sent] are indexed by destination worker: [ss_modeled] is the
    cost model's byte accounting (origin = destination moves are free,
    exactly the simulator's rule), [ss_sent] the framed bytes actually
    written to each peer socket (0 at the worker's own index). [ss_ser]
    is the modeled serialized size of everything this worker shuffled
    out, and [ss_wall] the seconds the whole partition/exchange/apply
    took. *)
type shuffle_stat = {
  ss_ser : int;
  ss_modeled : int array;
  ss_sent : int array;
  ss_wall : float;
}

type msg =
  | Hello of int
      (** worker id, first message after connecting — to the coordinator,
          and to an accepting peer on each mesh link *)
  | Init of string
      (** marshaled {!Divm_dist.Dprog.t}; the worker builds its runtime *)
  | Load_batch of string * Gmr.t  (** relation, this worker's batch share *)
  | Run_block of string * int  (** trigger relation, block index *)
  | Block_done of int * float
      (** record-op delta and wall seconds the block took on the worker *)
  | Pull_map of string
  | Map_contents of Gmr.t  (** reply to [Pull_map] *)
  | Deliver of string * Gmr.t  (** shuffle delivery into a transient map *)
  | Clear_map of string
  | Ack
  | Shutdown
  | Start_telemetry of bool * bool
      (** (profile, trace): enable the worker-side profiler and/or span
          tracer so subsequent pulls have something to ship *)
  | Pull_telemetry  (** coordinator requests a {!Telemetry} reply *)
  | Telemetry of telem  (** reply to [Pull_telemetry] *)
  | Peers of string array
      (** coordinator → worker: every worker's mesh listener socket path,
          indexed by worker id; the receiver binds its own entry *)
  | Mesh_connect
      (** coordinator → worker: establish the full connection mesh now
          (initiate to lower ids, accept from higher ids) *)
  | Shuffle of int
      (** coordinator → worker: run one direct transfer, named by its
          index into {!Divm_dist.Dprog.transfers} — both ends derive the
          identical table from the [Init] program, so four bytes replace
          the (map name, key, source) strings on the hottest control
          frame. An empty partition key in the table entry broadcasts to
          every worker. *)
  | Shuffle_done of shuffle_stat
      (** reply to [Shuffle]. The per-peer byte arrays ride as i32 (each
          entry is bounded by [max_frame]) to keep the per-transfer
          control floor small. *)
  | Mesh_data of int * Gmr.t
      (** worker → worker, on a mesh link: [(source worker id, pre-summed
          buffer)]. The destination map is implied — the exchange is a
          synchronous barrier per [Shuffle], so a frame can only belong
          to the transfer in flight; repeating the map name in every
          frame would only pad the empty-buffer floor. The sender's slot
          order is preserved, so replay stays bit-identical. *)

(** Malformed frame or payload. The message names the defect, and for a
    field-level failure also the frame's claimed message tag and payload
    length; a bad length prefix cites the would-be tag byte when one is
    available. *)
exception Error of string

(** Frames larger than this are rejected on both ends (64 MiB — far above
    any TPC-H batch, small enough to stop a corrupt length prefix from
    allocating the moon). *)
val max_frame : int

(** [encode m] is [m]'s payload (tag + body, no length prefix). *)
val encode : msg -> string

(** [decode s] parses a full payload. Raises {!Error} on unknown tags,
    truncated fields, or trailing bytes. *)
val decode : string -> msg

(** [encode_frame m] is the complete frame: length prefix + payload. *)
val encode_frame : msg -> string

(** [decode_frame s] parses one complete frame and returns the message and
    the number of bytes consumed. Raises {!Error} when [s] is shorter
    than its own length prefix claims, or when the prefix exceeds
    [max_frame]. *)
val decode_frame : string -> msg * int

(** Blocking send of one framed message; returns bytes written (frame
    size, for wire accounting). *)
val write_msg : Unix.file_descr -> msg -> int

(** Blocking receive of one framed message; returns the message and bytes
    read. Raises {!Error} on EOF mid-frame or an oversized length, and
    [End_of_file] on EOF at a frame boundary (orderly peer exit). *)
val read_msg : Unix.file_descr -> msg * int
