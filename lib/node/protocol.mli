(** Wire protocol of the multi-process engine ({!Node}).

    Every message travels in one frame: a 4-byte big-endian payload
    length, then the payload — one tag byte followed by the body. The
    framing carries no addresses or version fields; it is the same shape a
    TCP transport would use, so moving off Unix domain sockets only
    changes how the file descriptors are obtained.

    The data plane (batches, map contents, shuffle deliveries) is encoded
    by hand, not [Marshal]: values round-trip exactly (floats by their
    IEEE-754 bits), so a store filled through the wire is bit-identical
    to one filled in process — the property the simulator-equivalence
    qcheck in [test_node] relies on. The one exception is [Init], whose
    body is a marshaled {!Divm_dist.Dprog.t}: the distributed program is
    pure data (no closures) and both ends run the same binary.

    Decoding is strict: a frame longer than [max_frame], a payload that
    ends mid-field, an unknown tag, or trailing bytes after the message
    all raise {!Error} rather than yielding a partial message. *)

open Divm_storage
open Divm_obs

(** One telemetry pull's worth of worker-side observability state. The
    snapshot and slot rows are {e deltas} since the previous pull (the
    worker keeps the subtraction baseline); spans are the completed
    spans since the previous pull, stamped with the worker's own clock.
    [t_now] is the worker's [Unix.gettimeofday] at encode time — the
    coordinator combines it with its own send/receive timestamps to
    estimate the worker's clock offset. *)
type telem = {
  t_now : float;
  t_snap : Obs.snapshot;
  t_slots : Prof.row list;
  t_spans : Obs.event list;
}

type msg =
  | Hello of int  (** worker id, first message after connecting *)
  | Init of string
      (** marshaled {!Divm_dist.Dprog.t}; the worker builds its runtime *)
  | Load_batch of string * Gmr.t  (** relation, this worker's batch share *)
  | Run_block of string * int  (** trigger relation, block index *)
  | Block_done of int * float
      (** record-op delta and wall seconds the block took on the worker *)
  | Pull_map of string
  | Map_contents of Gmr.t  (** reply to [Pull_map] *)
  | Deliver of string * Gmr.t  (** shuffle delivery into a transient map *)
  | Clear_map of string
  | Ack
  | Shutdown
  | Start_telemetry of bool * bool
      (** (profile, trace): enable the worker-side profiler and/or span
          tracer so subsequent pulls have something to ship *)
  | Pull_telemetry  (** coordinator requests a {!Telemetry} reply *)
  | Telemetry of telem  (** reply to [Pull_telemetry] *)

(** Malformed frame or payload (message names the defect). *)
exception Error of string

(** Frames larger than this are rejected on both ends (64 MiB — far above
    any TPC-H batch, small enough to stop a corrupt length prefix from
    allocating the moon). *)
val max_frame : int

(** [encode m] is [m]'s payload (tag + body, no length prefix). *)
val encode : msg -> string

(** [decode s] parses a full payload. Raises {!Error} on unknown tags,
    truncated fields, or trailing bytes. *)
val decode : string -> msg

(** [encode_frame m] is the complete frame: length prefix + payload. *)
val encode_frame : msg -> string

(** [decode_frame s] parses one complete frame and returns the message and
    the number of bytes consumed. Raises {!Error} when [s] is shorter
    than its own length prefix claims, or when the prefix exceeds
    [max_frame]. *)
val decode_frame : string -> msg * int

(** Blocking send of one framed message; returns bytes written (frame
    size, for wire accounting). *)
val write_msg : Unix.file_descr -> msg -> int

(** Blocking receive of one framed message; returns the message and bytes
    read. Raises {!Error} on EOF mid-frame or an oversized length, and
    [End_of_file] on EOF at a frame boundary (orderly peer exit). *)
val read_msg : Unix.file_descr -> msg * int
