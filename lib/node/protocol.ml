open Divm_ring
open Divm_storage
open Divm_obs

type telem = {
  t_now : float;
  t_snap : Obs.snapshot;
  t_slots : Prof.row list;
  t_spans : Obs.event list;
}

type shuffle_stat = {
  ss_ser : int;
  ss_modeled : int array;
  ss_sent : int array;
  ss_wall : float;
}

type msg =
  | Hello of int
  | Init of string
  | Load_batch of string * Gmr.t
  | Run_block of string * int
  | Block_done of int * float
  | Pull_map of string
  | Map_contents of Gmr.t
  | Deliver of string * Gmr.t
  | Clear_map of string
  | Ack
  | Shutdown
  | Start_telemetry of bool * bool
  | Pull_telemetry
  | Telemetry of telem
  | Peers of string array
  | Mesh_connect
  | Shuffle of int
  | Shuffle_done of shuffle_stat
  | Mesh_data of int * Gmr.t

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt
let max_frame = 64 * 1024 * 1024

(* -------------------------------------------------------------- *)
(* Encoding                                                        *)
(* -------------------------------------------------------------- *)

let add_string b s =
  let n = String.length s in
  if n > max_frame then err "string field of %d bytes exceeds max_frame" n;
  Buffer.add_int32_be b (Int32.of_int n);
  Buffer.add_string b s

let add_f64 b f = Buffer.add_int64_be b (Int64.bits_of_float f)
let add_i64 b i = Buffer.add_int64_be b (Int64.of_int i)

(* Element count of a list field. Every element encodes to >= 1 byte, so
   the frame cap bounds any legitimate count; the decoder enforces the
   same bound before allocating. *)
let add_count b n =
  if n > max_frame then err "list of %d elements exceeds max_frame" n;
  Buffer.add_int32_be b (Int32.of_int n)

(* Telemetry payload: registry snapshot entries (name + kind byte:
   0 = counter, 1 = gauge, 2 = histogram with its bucket layout),
   profiler slot rows, completed spans. Floats travel as IEEE-754 bits,
   like the data plane, so merged-vs-local reconciliation is exact. *)
let add_snapshot b (snap : Obs.snapshot) =
  add_count b (List.length snap);
  List.iter
    (fun (name, v) ->
      add_string b name;
      match (v : Obs.value) with
      | Obs.VCounter c ->
          Buffer.add_uint8 b 0;
          add_i64 b c
      | Obs.VGauge g ->
          Buffer.add_uint8 b 1;
          add_f64 b g
      | Obs.VHistogram { buckets; counts; sum; count } ->
          Buffer.add_uint8 b 2;
          add_count b (Array.length buckets);
          if Array.length counts <> Array.length buckets + 1 then
            err "histogram %s: %d counts for %d buckets" name
              (Array.length counts) (Array.length buckets);
          Array.iter (add_f64 b) buckets;
          Array.iter (add_i64 b) counts;
          add_f64 b sum;
          add_i64 b count)
    snap

let add_slots b (rows : Prof.row list) =
  add_count b (List.length rows);
  List.iter
    (fun (r : Prof.row) ->
      add_string b r.r_trigger;
      add_string b r.r_label;
      add_i64 b r.r_firings;
      add_i64 b r.r_ops;
      add_i64 b r.r_probes;
      add_i64 b r.r_misses;
      add_i64 b r.r_scanned;
      add_i64 b r.r_svscan;
      add_i64 b r.r_svsel;
      add_i64 b r.r_bytes;
      add_f64 b r.r_wall)
    rows

let add_spans b (evs : Obs.event list) =
  add_count b (List.length evs);
  List.iter
    (fun (e : Obs.event) ->
      add_string b e.ev_name;
      add_f64 b e.ev_start;
      add_f64 b e.ev_dur;
      Buffer.add_int32_be b (Int32.of_int e.ev_depth);
      add_count b (List.length e.ev_attrs);
      List.iter
        (fun (k, v) ->
          add_string b k;
          add_string b v)
        e.ev_attrs)
    evs

let add_telem b t =
  add_f64 b t.t_now;
  add_snapshot b t.t_snap;
  add_slots b t.t_slots;
  add_spans b t.t_spans

let add_value b (v : Value.t) =
  match v with
  | Value.Int i ->
      Buffer.add_uint8 b 0;
      Buffer.add_int64_be b (Int64.of_int i)
  | Value.Float f ->
      Buffer.add_uint8 b 1;
      Buffer.add_int64_be b (Int64.bits_of_float f)
  | Value.String s ->
      Buffer.add_uint8 b 2;
      add_string b s
  | Value.Date d ->
      Buffer.add_uint8 b 3;
      Buffer.add_int64_be b (Int64.of_int d)

let add_tuple b (tup : Vtuple.t) =
  let n = Array.length tup in
  if n > 0xffff then err "tuple arity %d exceeds encoding limit" n;
  Buffer.add_uint16_be b n;
  Array.iter (add_value b) tup

(* Uniform tuple arity of a GMR, or [None] for mixed arities (which must
   fall back to the row layout). *)
let gmr_width g =
  let w = ref (-1) and ok = ref true in
  Gmr.iter
    (fun tup _ ->
      let n = Array.length tup in
      if !w = -1 then w := n else if n <> !w then ok := false)
    g;
  if !ok && !w >= 0 && !w <= 0xffff then Some !w else None

let add_rows b g =
  Gmr.iter
    (fun tup m ->
      add_tuple b tup;
      Buffer.add_int64_be b (Int64.bits_of_float m))
    g

(* GMR payload: entry count, then a layout byte. Layout 1 ships the
   entries as flat typed columns (u16 width; per column a u8 kind tag and
   an unboxed payload; then the multiplicities) — one contiguous run per
   attribute instead of a tag per cell. Layout 0 is the per-row fallback,
   kept for empty and mixed-arity GMRs. Both layouts preserve the
   source's slot iteration order, so replaying a decoded GMR rebuilds a
   bit-identical store. *)
let add_gmr b g =
  Buffer.add_int32_be b (Int32.of_int (Gmr.cardinal g));
  match gmr_width g with
  | Some w when Gmr.cardinal g > 0 && w > 0 ->
      Buffer.add_uint8 b 1;
      Buffer.add_uint16_be b w;
      let cb = Colbatch.of_gmr ~width:w g in
      (* safety net: any all-string column that arrived boxed (legacy
         construction paths) still ships dictionary-encoded *)
      Colbatch.dictify cb;
      let n = Colbatch.length cb in
      for c = 0 to w - 1 do
        match Colbatch.col cb c with
        | Colbatch.CInt a ->
            Buffer.add_uint8 b 0;
            for i = 0 to n - 1 do
              Buffer.add_int64_be b (Int64.of_int a.(i))
            done
        | Colbatch.CFloat a ->
            Buffer.add_uint8 b 1;
            for i = 0 to n - 1 do
              Buffer.add_int64_be b (Int64.bits_of_float a.(i))
            done
        | Colbatch.CDate a ->
            Buffer.add_uint8 b 2;
            for i = 0 to n - 1 do
              Buffer.add_int64_be b (Int64.of_int a.(i))
            done
        | Colbatch.CBoxed a ->
            Buffer.add_uint8 b 3;
            Array.iter (add_value b) a
        | Colbatch.CDict (d, codes) ->
            (* dictionary once, then one i32 code per row — repeated
               strings never travel twice *)
            Buffer.add_uint8 b 4;
            let dn = Colbatch.dict_size d in
            add_count b dn;
            for e = 0 to dn - 1 do
              add_string b (Colbatch.dict_entry d e)
            done;
            Array.iter (fun c -> Buffer.add_int32_be b (Int32.of_int c)) codes
      done;
      Array.iter
        (fun m -> Buffer.add_int64_be b (Int64.bits_of_float m))
        (Colbatch.mults cb)
  | _ ->
      Buffer.add_uint8 b 0;
      add_rows b g

let tag_of = function
  | Hello _ -> 1
  | Init _ -> 2
  | Load_batch _ -> 3
  | Run_block _ -> 4
  | Block_done _ -> 5
  | Pull_map _ -> 6
  | Map_contents _ -> 7
  | Deliver _ -> 8
  | Clear_map _ -> 9
  | Ack -> 10
  | Shutdown -> 11
  | Start_telemetry _ -> 12
  | Pull_telemetry -> 13
  | Telemetry _ -> 14
  | Peers _ -> 15
  | Mesh_connect -> 16
  | Shuffle _ -> 17
  | Shuffle_done _ -> 18
  | Mesh_data _ -> 19

let max_tag = 19

(* Names for diagnostics only: a malformed frame's error message cites
   the message it claimed to be, so a bad peer is debuggable from the
   exception alone instead of a socket hexdump. *)
let tag_name = function
  | 1 -> "Hello"
  | 2 -> "Init"
  | 3 -> "Load_batch"
  | 4 -> "Run_block"
  | 5 -> "Block_done"
  | 6 -> "Pull_map"
  | 7 -> "Map_contents"
  | 8 -> "Deliver"
  | 9 -> "Clear_map"
  | 10 -> "Ack"
  | 11 -> "Shutdown"
  | 12 -> "Start_telemetry"
  | 13 -> "Pull_telemetry"
  | 14 -> "Telemetry"
  | 15 -> "Peers"
  | 16 -> "Mesh_connect"
  | 17 -> "Shuffle"
  | 18 -> "Shuffle_done"
  | 19 -> "Mesh_data"
  | _ -> "unknown"

let encode m =
  let b = Buffer.create 256 in
  Buffer.add_uint8 b (tag_of m);
  (match m with
  | Hello wid -> Buffer.add_int32_be b (Int32.of_int wid)
  | Init s -> add_string b s
  | Load_batch (rel, g) ->
      add_string b rel;
      add_gmr b g
  | Run_block (rel, bi) ->
      add_string b rel;
      Buffer.add_int32_be b (Int32.of_int bi)
  | Block_done (ops, wall) ->
      Buffer.add_int64_be b (Int64.of_int ops);
      add_f64 b wall
  | Pull_map name | Clear_map name -> add_string b name
  | Map_contents g -> add_gmr b g
  | Deliver (name, g) ->
      add_string b name;
      add_gmr b g
  | Ack | Shutdown | Pull_telemetry | Mesh_connect -> ()
  | Start_telemetry (profile, trace) ->
      Buffer.add_uint8 b (Bool.to_int profile);
      Buffer.add_uint8 b (Bool.to_int trace)
  | Telemetry t -> add_telem b t
  | Peers paths ->
      add_count b (Array.length paths);
      Array.iter (add_string b) paths
  | Shuffle idx -> Buffer.add_int32_be b (Int32.of_int idx)
  | Shuffle_done st ->
      (* control-plane reply on the hot per-transfer path: the per-peer
         byte counts are bounded by max_frame, so they ship as i32, not
         i64 — at w workers that is 8w fewer bytes on every transfer *)
      add_i64 b st.ss_ser;
      add_count b (Array.length st.ss_modeled);
      Array.iter (fun v -> Buffer.add_int32_be b (Int32.of_int v)) st.ss_modeled;
      add_count b (Array.length st.ss_sent);
      Array.iter (fun v -> Buffer.add_int32_be b (Int32.of_int v)) st.ss_sent;
      add_f64 b st.ss_wall
  | Mesh_data (src, g) ->
      Buffer.add_int32_be b (Int32.of_int src);
      add_gmr b g);
  Buffer.contents b

(* -------------------------------------------------------------- *)
(* Decoding (strict: every read is bounds-checked)                 *)
(* -------------------------------------------------------------- *)

type reader = { buf : string; mutable pos : int }

let need r n =
  if r.pos + n > String.length r.buf then
    err "truncated payload: need %d bytes at offset %d of %d" n r.pos
      (String.length r.buf)

let get_u8 r =
  need r 1;
  let v = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u16 r =
  need r 2;
  let v = String.get_uint16_be r.buf r.pos in
  r.pos <- r.pos + 2;
  v

let get_i32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_be r.buf r.pos) in
  r.pos <- r.pos + 4;
  v

let get_i64 r =
  need r 8;
  let v = String.get_int64_be r.buf r.pos in
  r.pos <- r.pos + 8;
  v

let get_string r =
  let n = get_i32 r in
  if n < 0 || n > max_frame then err "string length %d out of range" n;
  need r n;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let get_f64 r = Int64.float_of_bits (get_i64 r)

(* List element count: bounded before any allocation. Every element of
   the lists below encodes to >= 8 bytes, so max_frame / 8 is a safe
   upper bound for a payload that can actually exist. *)
let get_count r what =
  let n = get_i32 r in
  if n < 0 || n > max_frame / 8 then err "%s count %d out of range" what n;
  n

let get_bool r what =
  match get_u8 r with
  | 0 -> false
  | 1 -> true
  | v -> err "%s flag byte %d is not a bool" what v

let get_value r : Value.t =
  match get_u8 r with
  | 0 -> Value.Int (Int64.to_int (get_i64 r))
  | 1 -> Value.Float (Int64.float_of_bits (get_i64 r))
  | 2 -> Value.String (get_string r)
  | 3 -> Value.Date (Int64.to_int (get_i64 r))
  | t -> err "unknown value tag %d" t

let get_tuple r : Vtuple.t =
  let n = get_u16 r in
  Array.init n (fun _ -> get_value r)

let get_gmr r =
  let n = get_i32 r in
  if n < 0 then err "negative entry count %d" n;
  (* every entry carries at least an 8-byte multiplicity *)
  if n > max_frame / 8 then err "entry count %d exceeds frame capacity" n;
  match get_u8 r with
  | 0 ->
      let g = Gmr.create ~size:(max 16 n) () in
      for _ = 1 to n do
        let tup = get_tuple r in
        let m = Int64.float_of_bits (get_i64 r) in
        Gmr.add g tup m
      done;
      g
  | 1 ->
      let w = get_u16 r in
      if w = 0 then err "columnar layout with zero width";
      if n = 0 then err "columnar layout with zero entries";
      let cols =
        Array.init w (fun _ ->
            match get_u8 r with
            | 0 ->
                Colbatch.CInt
                  (Array.init n (fun _ -> Int64.to_int (get_i64 r)))
            | 1 ->
                Colbatch.CFloat
                  (Array.init n (fun _ -> Int64.float_of_bits (get_i64 r)))
            | 2 ->
                Colbatch.CDate
                  (Array.init n (fun _ -> Int64.to_int (get_i64 r)))
            | 3 -> Colbatch.CBoxed (Array.init n (fun _ -> get_value r))
            | 4 ->
                let dn = get_count r "dictionary entry" in
                let seen = Hashtbl.create (max 16 dn) in
                let vals =
                  Array.init dn (fun _ ->
                      let s = get_string r in
                      if Hashtbl.mem seen s then
                        err "duplicate dictionary entry %S" s;
                      Hashtbl.add seen s ();
                      s)
                in
                let codes =
                  Array.init n (fun _ ->
                      let c = get_i32 r in
                      if c < 0 || c >= dn then
                        err "dictionary code %d out of range [0,%d)" c dn;
                      c)
                in
                Colbatch.CDict (Colbatch.dict_of_strings vals, codes)
            | k -> err "unknown column kind %d" k)
      in
      let mults =
        Array.init n (fun _ -> Int64.float_of_bits (get_i64 r))
      in
      Colbatch.to_gmr (Colbatch.of_cols cols ~mults)
  | l -> err "unknown gmr layout %d" l

let get_snapshot r : Obs.snapshot =
  let n = get_count r "snapshot entry" in
  List.init n (fun _ ->
      let name = get_string r in
      match get_u8 r with
      | 0 -> (name, Obs.VCounter (Int64.to_int (get_i64 r)))
      | 1 -> (name, Obs.VGauge (get_f64 r))
      | 2 ->
          let nb = get_count r "histogram bucket" in
          let buckets = Array.init nb (fun _ -> get_f64 r) in
          let counts =
            Array.init (nb + 1) (fun _ -> Int64.to_int (get_i64 r))
          in
          let sum = get_f64 r in
          let count = Int64.to_int (get_i64 r) in
          (name, Obs.VHistogram { buckets; counts; sum; count })
      | k -> err "unknown snapshot value kind %d" k)

let get_slots r : Prof.row list =
  let n = get_count r "profiler slot" in
  List.init n (fun _ ->
      let r_trigger = get_string r in
      let r_label = get_string r in
      let r_firings = Int64.to_int (get_i64 r) in
      let r_ops = Int64.to_int (get_i64 r) in
      let r_probes = Int64.to_int (get_i64 r) in
      let r_misses = Int64.to_int (get_i64 r) in
      let r_scanned = Int64.to_int (get_i64 r) in
      let r_svscan = Int64.to_int (get_i64 r) in
      let r_svsel = Int64.to_int (get_i64 r) in
      let r_bytes = Int64.to_int (get_i64 r) in
      let r_wall = get_f64 r in
      {
        Prof.r_trigger;
        r_label;
        r_firings;
        r_ops;
        r_probes;
        r_misses;
        r_scanned;
        r_svscan;
        r_svsel;
        r_bytes;
        r_wall;
      })

let get_spans r : Obs.event list =
  let n = get_count r "span" in
  List.init n (fun _ ->
      let ev_name = get_string r in
      let ev_start = get_f64 r in
      let ev_dur = get_f64 r in
      let ev_depth = get_i32 r in
      if ev_depth < 0 then err "negative span depth %d" ev_depth;
      let na = get_count r "span attribute" in
      let ev_attrs =
        List.init na (fun _ ->
            let k = get_string r in
            let v = get_string r in
            (k, v))
      in
      { Obs.ev_name; ev_start; ev_dur; ev_depth; ev_attrs })

let get_telem r =
  let t_now = get_f64 r in
  let t_snap = get_snapshot r in
  let t_slots = get_slots r in
  let t_spans = get_spans r in
  { t_now; t_snap; t_slots; t_spans }

let get_nonneg r what =
  let v = Int64.to_int (get_i64 r) in
  if v < 0 then err "negative %s %d" what v;
  v

let get_nonneg32 r what =
  let v = get_i32 r in
  if v < 0 then err "negative %s %d" what v;
  v

let get_shuffle_stat r =
  let ss_ser = get_nonneg r "serialized byte count" in
  let nm = get_count r "modeled byte entry" in
  let ss_modeled =
    Array.init nm (fun _ -> get_nonneg32 r "modeled byte count")
  in
  let ns = get_count r "sent byte entry" in
  let ss_sent = Array.init ns (fun _ -> get_nonneg32 r "sent byte count") in
  let ss_wall = get_f64 r in
  { ss_ser; ss_modeled; ss_sent; ss_wall }

let decode s =
  let r = { buf = s; pos = 0 } in
  let tag = get_u8 r in
  if tag < 1 || tag > max_tag then err "unknown message tag %d" tag;
  let m =
    (* Re-raise field-level defects with the frame's identity attached:
       which message it claimed to be and how long the payload actually
       was — the context that otherwise takes a socket hexdump. *)
    try
      match tag with
      | 1 -> Hello (get_i32 r)
      | 2 -> Init (get_string r)
      | 3 ->
          let rel = get_string r in
          Load_batch (rel, get_gmr r)
      | 4 ->
          let rel = get_string r in
          Run_block (rel, get_i32 r)
      | 5 ->
          let ops = Int64.to_int (get_i64 r) in
          Block_done (ops, get_f64 r)
      | 6 -> Pull_map (get_string r)
      | 7 -> Map_contents (get_gmr r)
      | 8 ->
          let name = get_string r in
          Deliver (name, get_gmr r)
      | 9 -> Clear_map (get_string r)
      | 10 -> Ack
      | 11 -> Shutdown
      | 12 ->
          let profile = get_bool r "profile" in
          Start_telemetry (profile, get_bool r "trace")
      | 13 -> Pull_telemetry
      | 14 -> Telemetry (get_telem r)
      | 15 ->
          let n = get_count r "peer" in
          Peers (Array.init n (fun _ -> get_string r))
      | 16 -> Mesh_connect
      | 17 ->
          let idx = get_i32 r in
          if idx < 0 then err "negative transfer index %d" idx;
          Shuffle idx
      | 18 -> Shuffle_done (get_shuffle_stat r)
      | 19 ->
          let src = get_i32 r in
          if src < 0 then err "negative mesh source id %d" src;
          Mesh_data (src, get_gmr r)
      | _ -> assert false
    with Error msg ->
      err "bad %s frame (tag %d, %d-byte payload): %s" (tag_name tag) tag
        (String.length s) msg
  in
  if r.pos <> String.length s then
    err "bad %s frame (tag %d): %d trailing bytes after message"
      (tag_name tag) tag
      (String.length s - r.pos);
  m

(* -------------------------------------------------------------- *)
(* Framing                                                         *)
(* -------------------------------------------------------------- *)

let encode_frame m =
  let payload = encode m in
  let n = String.length payload in
  if n > max_frame then
    err "%s frame (tag %d) of %d bytes exceeds max_frame %d"
      (tag_name (tag_of m)) (tag_of m) n max_frame;
  let b = Buffer.create (n + 4) in
  Buffer.add_int32_be b (Int32.of_int n);
  Buffer.add_string b payload;
  Buffer.contents b

(* When enough bytes follow a bad length prefix, cite the would-be tag:
   a frame-cap trip usually means desynced framing, and the byte where
   the tag should be says what the stream thinks it is sending. *)
let describe_tag_byte s pos =
  if String.length s > pos then
    let t = Char.code s.[pos] in
    Printf.sprintf " (first payload byte: tag %d, %s)" t (tag_name t)
  else ""

let frame_len s =
  if String.length s < 4 then err "truncated frame: no length prefix";
  let n = Int32.to_int (String.get_int32_be s 0) in
  if n < 1 then err "declared frame length %d out of range%s" n (describe_tag_byte s 4);
  if n > max_frame then
    err "declared frame length %d exceeds max_frame %d%s" n max_frame
      (describe_tag_byte s 4);
  n

let decode_frame s =
  let n = frame_len s in
  if String.length s < 4 + n then
    err "truncated frame: length prefix says %d, only %d available" n
      (String.length s - 4);
  (decode (String.sub s 4 n), 4 + n)

let write_msg fd m =
  let frame = encode_frame m in
  let n = String.length frame in
  let pos = ref 0 in
  while !pos < n do
    match Unix.write_substring fd frame !pos (n - !pos) with
    | 0 -> err "write returned 0"
    | k -> pos := !pos + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  n

(* Read exactly [n] bytes. [at_boundary] distinguishes an orderly peer
   close (End_of_file) from a connection dying mid-frame (Error). *)
let really_read fd n ~at_boundary =
  let buf = Bytes.create n in
  let pos = ref 0 in
  while !pos < n do
    match Unix.read fd buf !pos (n - !pos) with
    | 0 ->
        if at_boundary && !pos = 0 then raise End_of_file
        else err "connection closed mid-frame (%d of %d bytes)" !pos n
    | k -> pos := !pos + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  Bytes.unsafe_to_string buf

let read_msg fd =
  let header = really_read fd 4 ~at_boundary:true in
  let n = Int32.to_int (String.get_int32_be header 0) in
  if n < 1 || n > max_frame then begin
    (* The stream is already lost; peek the would-be tag byte so the
       error names the frame the peer thought it was sending. *)
    let tag_info =
      match really_read fd 1 ~at_boundary:false with
      | s -> Printf.sprintf " (next byte: tag %d, %s)" (Char.code s.[0]) (tag_name (Char.code s.[0]))
      | exception _ -> ""
    in
    err "declared frame length %d out of range (max_frame %d)%s" n max_frame
      tag_info
  end;
  let payload = really_read fd n ~at_boundary:false in
  (decode payload, 4 + n)
