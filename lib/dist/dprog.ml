open Divm_calc
open Divm_compiler

type transfer_kind = Scatter | Repart | Gather

type dstmt =
  | Compute of Prog.stmt
  | Transfer of {
      tname : string;
      tkind : transfer_kind;
      key : int array;
      source : string;
    }

type mode = MLocal | MDist

type block = { bmode : mode; bstmts : dstmt list }
type dtrigger = { drelation : string; blocks : block list }
type t = { base : Prog.t; locs : Loc.catalog; dtriggers : dtrigger list }

let writes = function
  | Compute s -> s.Prog.target
  | Transfer { tname; _ } -> tname

let reads = function
  | Compute s -> Calc.map_refs s.Prog.rhs
  | Transfer { source; _ } -> [ source ]

let is_assign = function
  | Compute { Prog.op = Prog.Assign; _ } -> true
  | Transfer _ -> true (* transfers overwrite their destination *)
  | _ -> false

let mode_of locs = function
  | Transfer _ -> MLocal
  | Compute s -> (
      match Loc.find locs s.Prog.target with
      | Loc.Local -> MLocal
      | Loc.Dist _ | Loc.Replicated | Loc.Random -> MDist)

let commute s1 s2 =
  let w1 = writes s1 and w2 = writes s2 in
  (not (List.mem w1 (reads s2)))
  && (not (List.mem w2 (reads s1)))
  && (w1 <> w2 || not (is_assign s1 || is_assign s2))

(* --- Appendix C.3, transcribed --- *)

let blocks_commute b1 b2 =
  List.for_all (fun l -> List.for_all (fun r -> commute l r) b2.bstmts) b1.bstmts

let merge_into_head hd tl =
  List.fold_left
    (fun (b1, rhs) b2 ->
      if b1.bmode = b2.bmode && List.for_all (fun b -> blocks_commute b b2) rhs
      then ({ b1 with bstmts = b1.bstmts @ b2.bstmts }, rhs)
      else (b1, rhs @ [ b2 ]))
    (hd, []) tl

let rec fuse = function
  | [] -> []
  | hd :: tl ->
      let hd2, tl2 = merge_into_head hd tl in
      if hd = hd2 then hd :: fuse tl else fuse (hd2 :: tl2)

let promote locs stmts =
  List.map (fun s -> { bmode = mode_of locs s; bstmts = [ s ] }) stmts

let find_trigger t rel =
  match List.find_opt (fun tr -> String.equal tr.drelation rel) t.dtriggers with
  | Some tr -> tr
  | None -> invalid_arg ("Dprog.find_trigger: " ^ rel)

let jobs_and_stages t rel =
  let tr = find_trigger t rel in
  let stages =
    List.length (List.filter (fun b -> b.bmode = MDist) tr.blocks)
  in
  let jobs, _ =
    List.fold_left
      (fun (jobs, in_run) b ->
        match b.bmode with
        | MDist -> if in_run then (jobs, true) else (jobs + 1, true)
        | MLocal -> (jobs, false))
      (0, false) tr.blocks
  in
  (jobs, stages)

(* The plain trigger program over just the compute statements, in block
   order — what a node's [Runtime] compiles, and what EXPLAIN's
   access-path analysis runs on. *)
let compute_prog (t : t) =
  let triggers =
    List.map
      (fun tr ->
        {
          Prog.relation = tr.drelation;
          stmts =
            List.concat_map
              (fun b ->
                List.filter_map
                  (function Compute s -> Some s | Transfer _ -> None)
                  b.bstmts)
              tr.blocks;
        })
      t.dtriggers
  in
  { t.base with Prog.triggers = triggers }

let transfers (t : t) =
  Array.of_list
    (List.concat_map
       (fun tr ->
         List.concat_map
           (fun b ->
             List.filter_map
               (function
                 | Transfer { tname; key; source; _ } ->
                     Some (tname, key, source)
                 | Compute _ -> None)
               b.bstmts)
           tr.blocks)
       t.dtriggers)

let block_counts tr =
  List.fold_left
    (fun (l, d) b -> match b.bmode with MLocal -> (l + 1, d) | MDist -> (l, d + 1))
    (0, 0) tr.blocks

let pp_key ppf key =
  Format.fprintf ppf "<%s>"
    (String.concat "," (Array.to_list (Array.map string_of_int key)))

let pp_dstmt locs ppf s =
  let mode = match mode_of locs s with MLocal -> "LOCAL" | MDist -> "DISTRIBUTED" in
  match s with
  | Compute st ->
      Format.fprintf ppf "%-11s %s %s { %s }" mode st.Prog.target
        (match st.Prog.op with Prog.Add_to -> "+=" | Prog.Assign -> ":=")
        (String.concat ", " (Calc.map_refs st.Prog.rhs))
  | Transfer { tname; tkind; key; source } ->
      let kw =
        match tkind with
        | Scatter -> "SCATTER"
        | Repart -> "REPARTITION"
        | Gather -> "GATHER"
      in
      Format.fprintf ppf "%-11s %s := %s%a { %s }" mode tname kw pp_key key
        source

let pp ppf t =
  List.iter
    (fun tr ->
      Format.fprintf ppf "@[<v>ON UPDATE %s:@ " tr.drelation;
      List.iteri
        (fun i b ->
          Format.fprintf ppf "-- block %d (%s)@ " i
            (match b.bmode with MLocal -> "local" | MDist -> "distributed");
          List.iter
            (fun s -> Format.fprintf ppf "  %a@ " (pp_dstmt t.locs) s)
            b.bstmts)
        tr.blocks;
      Format.fprintf ppf "@]@.")
    t.dtriggers
