(** Distributed trigger programs: statements annotated with execution mode,
    explicit location-transformer statements (single-transformer form,
    §4.3.2), statement blocks, and the block fusion algorithm of
    Appendix C.3. *)

open Divm_compiler

type transfer_kind = Scatter | Repart | Gather

type dstmt =
  | Compute of Prog.stmt
  | Transfer of {
      tname : string;  (** destination transient map *)
      tkind : transfer_kind;
      key : int array;
          (** destination partition key positions; [[||]] with [Scatter]
              replicates to every worker *)
      source : string;  (** source map *)
    }

type mode = MLocal | MDist

type block = { bmode : mode; bstmts : dstmt list }
type dtrigger = { drelation : string; blocks : block list }

type t = {
  base : Prog.t;  (** map declarations incl. transfer transients *)
  locs : Loc.catalog;  (** location of every map *)
  dtriggers : dtrigger list;
}

val writes : dstmt -> string
val reads : dstmt -> string list

(** Execution mode of a statement: distributed when its target lives on the
    workers; transfers are driver-initiated (local). *)
val mode_of : Loc.catalog -> dstmt -> mode

(** Do two statements commute (Appendix C.3)? Neither reads the other's
    write target, and they do not write the same target unless both are
    commutative accumulations. *)
val commute : dstmt -> dstmt -> bool

(** The block fusion algorithm of Appendix C.3: reorder and merge
    consecutive blocks of the same mode when they commute with everything
    in between. *)
val fuse : block list -> block list

(** [promote locs stmts] wraps each statement in its own single-statement
    block. *)
val promote : Loc.catalog -> dstmt list -> block list

(** (jobs, stages) needed to process one batch of the given trigger: stages
    are distributed blocks; a job is a maximal run of distributed blocks. *)
val jobs_and_stages : t -> string -> int * int

val find_trigger : t -> string -> dtrigger
val pp_dstmt : Loc.catalog -> Format.formatter -> dstmt -> unit
val pp : Format.formatter -> t -> unit

(** Every [Transfer] statement's [(tname, key, source)] in deterministic
    program order — triggers, then blocks, then statements. Two parties
    holding the same (e.g. marshaled-and-restored) program derive the
    identical table, so a transfer can travel over a wire as a single
    index into it (the multiprocess engine's [Shuffle] control frame). *)
val transfers : t -> (string * int array * string) array

(** Count of blocks per mode across one trigger: (local, distributed). *)
val block_counts : dtrigger -> int * int

(** The plain trigger program over just the compute statements, in block
    order: what each node's runtime compiles (the cluster simulator) and
    what EXPLAIN's access-pattern analysis runs on. *)
val compute_prog : t -> Prog.t
