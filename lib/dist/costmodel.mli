(** The distributed cost model, shared by every distributed backend.

    Calibrated against the paper's §6.2 measurements (see
    {!Divm_cluster.Cluster}): a distributed stage costs a driver–worker
    synchronization round plus the slowest worker's compute; a transfer
    costs serialization of the shipped bytes plus the receive bandwidth of
    the busiest node; stragglers are a deterministic multiplicative factor
    growing with the data shuffled to the slowest worker.

    The simulated cluster uses these formulas to {e replace} time; the
    multi-process engine ({!Divm_node.Node}) evaluates the same formulas
    over its real per-stage op counts as a {e predictor} that EXPLAIN and
    the profiler reconcile against measured wall time. *)

open Divm_ring

type t = {
  sync_base : float;  (** s, per distributed stage *)
  sync_per_worker : float;  (** s per worker per stage *)
  per_op : float;  (** s per elementary record operation *)
  bandwidth : float;  (** bytes/s into one node *)
  ser_per_byte : float;  (** serialization cost, s/byte *)
  straggler : float;
      (** extra slowdown of the slowest worker per MB shuffled to it *)
}

(** Q6 batch sync 65 ms at 50 workers, 386 ms at 1000 (§6.2.1) gives
    [sync_base ≈ 48 ms] and [≈ 0.34 ms/worker]; a worker aggregates 100k
    tuples in 6 ms → 60 ns per elementary operation. *)
val default : t

(** Serialized size of one shipped (tuple, multiplicity) entry. *)
val tuple_bytes : Vtuple.t -> int

(** [stage_latency t ~workers ~max_ops ~pending_max_into]: one distributed
    stage — sync round + slowest worker's ops, straggler-scaled by the
    bytes shuffled into the busiest node since the previous stage. *)
val stage_latency : t -> workers:int -> max_ops:int -> pending_max_into:int -> float

(** [transfer_latency t ~ser_bytes ~max_into]: one location transformer —
    serialize [ser_bytes] at the sources, receive [max_into] bytes at the
    busiest destination. *)
val transfer_latency : t -> ser_bytes:int -> max_into:int -> float

(** Synchronous checkpoint: one sync round plus the slowest node's
    serialization of its partitions. *)
val checkpoint_latency : t -> workers:int -> max_node_bytes:int -> float

(** [predicted_wire_bytes ~crossings ~workers ~ser_bytes]: a-priori
    framed bytes one transfer should put on real sockets — the modeled
    payload shipped once per wire crossing, plus a per-worker control
    envelope (request + ack frames). [crossings] encodes the topology:
    a star-relayed worker shuffle crosses twice (source → coordinator →
    destination), a direct mesh shuffle, gather, or scatter crosses
    once, and a broadcast fans out once per receiving peer. Reporting
    only — this never enters a latency formula, so modeled latencies
    stay bit-identical across topologies. *)
val predicted_wire_bytes : crossings:int -> workers:int -> ser_bytes:int -> int
