open Divm_ring

type t = {
  sync_base : float;
  sync_per_worker : float;
  per_op : float;
  bandwidth : float;
  ser_per_byte : float;
  straggler : float;
}

let default =
  {
    sync_base = 0.048;
    sync_per_worker = 0.00034;
    per_op = 6e-8;
    bandwidth = 3e8;
    ser_per_byte = 4e-9;
    straggler = 0.08;
  }

let tuple_bytes tup = Vtuple.byte_size tup + 8

(* Evaluation order below is kept exactly as the simulator historically
   computed it, so extracting the model preserves bit-identical latencies
   (the test suite checks modeled floats by their Int64 bits). *)

let straggle t ~pending_max_into =
  1. +. (t.straggler *. float_of_int pending_max_into /. 1e6)

let stage_latency t ~workers ~max_ops ~pending_max_into =
  t.sync_base
  +. (t.sync_per_worker *. float_of_int workers)
  +. (float_of_int max_ops *. t.per_op *. straggle t ~pending_max_into)

let transfer_latency t ~ser_bytes ~max_into =
  (t.ser_per_byte *. float_of_int ser_bytes)
  +. (float_of_int max_into /. t.bandwidth)

let checkpoint_latency t ~workers ~max_node_bytes =
  t.sync_base
  +. (t.sync_per_worker *. float_of_int workers)
  +. (float_of_int max_node_bytes *. (t.ser_per_byte +. (1. /. t.bandwidth)))

(* Reporting-only wire predictor: never feeds a latency formula, so the
   modeled latencies above stay bit-identical whatever topology runs.
   Each per-message control envelope is a frame header, a tag, and a
   handful of fixed fields; 24 bytes is the round figure. *)
let control_frame_bytes = 24

let predicted_wire_bytes ~crossings ~workers ~ser_bytes =
  (crossings * ser_bytes) + (2 * workers * control_frame_bytes)
