module Tsch = Schema
open Divm_ring
open Divm_storage
open Value

exception Error of string

let split line = String.split_on_char '|' line

let int_field ctx s =
  match int_of_string_opt (String.trim s) with
  | Some k -> Int k
  | None -> raise (Error (ctx ^ ": expected int, got '" ^ s ^ "'"))

let float_field ctx s =
  match float_of_string_opt (String.trim s) with
  | Some f -> Float f
  | None -> raise (Error (ctx ^ ": expected float, got '" ^ s ^ "'"))

let date_field ctx s =
  match String.split_on_char '-' (String.trim s) with
  | [ y; m; d ] -> (
      try Value.date (int_of_string y) (int_of_string m) (int_of_string d)
      with _ -> raise (Error (ctx ^ ": bad date '" ^ s ^ "'")))
  | _ -> raise (Error (ctx ^ ": bad date '" ^ s ^ "'"))

let str_field s = String (String.trim s)

(* Derived category columns replacing LIKE predicates of the synthetic
   schema: a stable hash of the source text into a small domain. *)
let category ~buckets s =
  Int (Hashtbl.hash (String.trim s) mod buckets)

(* Phone country code: the digits before the first '-'. *)
let country_code ctx s =
  match String.index_opt s '-' with
  | Some i -> int_field ctx (String.sub s 0 i)
  | None -> category ~buckets:25 s

let nth ctx fields i =
  match List.nth_opt fields i with
  | Some f -> f
  | None -> raise (Error (ctx ^ ": missing column " ^ string_of_int i))

let parse_line table line =
  let fs = split line in
  let g = nth table fs in
  let i k = int_field table (g k) in
  let f k = float_field table (g k) in
  let d k = date_field table (g k) in
  let s k = str_field (g k) in
  match table with
  (* dbgen column layouts; trailing comment columns are skipped *)
  | "region" -> [| i 0; s 1 |]
  | "nation" -> [| i 0; s 1; i 2 |]
  | "supplier" ->
      (* suppkey, name, address, nationkey, phone, acctbal, comment *)
      [| i 0; s 1; i 3; f 5 |]
  | "customer" ->
      (* custkey, name, address, nationkey, phone, acctbal, mktsegment *)
      [| i 0; s 1; i 3; s 6; f 5; country_code table (g 4) |]
  | "part" ->
      (* partkey, name, mfgr, brand, type, size, container, retail, comment *)
      [| i 0; category ~buckets:10 (g 1); s 2; s 3; s 4; i 5; s 6 |]
  | "partsupp" -> [| i 0; i 1; i 2; f 3 |]
  | "orders" ->
      (* okey, ckey, status, totalprice, date, priority, clerk, shippriority *)
      [| i 0; i 1; s 2; f 3; d 4; s 5; i 7 |]
  | "lineitem" ->
      (* okey, pkey, skey, linenum, qty, extprice, disc, tax, rflag, status,
         shipdate, commitdate, receiptdate, shipinstruct, shipmode, comment *)
      [|
        i 0; i 1; i 2; i 3; f 4; f 5; f 6; f 7; s 8; s 9; d 10; d 11; d 12;
        s 14;
      |]
  | _ -> raise (Error ("unknown table " ^ table))

let load_file table path =
  let ic = open_in path in
  let g = Gmr.create () in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.length (String.trim line) > 0 then
         try Gmr.add g (parse_line table line) 1.
         with Error m ->
           close_in ic;
           raise (Error (Printf.sprintf "%s:%d: %s" path !lineno m))
     done
   with End_of_file -> close_in ic);
  g

let load_dir dir =
  List.filter_map
    (fun (table, _) ->
      let path = Filename.concat dir (table ^ ".tbl") in
      if Sys.file_exists path then Some (table, load_file table path) else None)
    Tsch.streams
