module Tsch = Schema
open Divm_ring
open Divm_storage
open Value

type config = { scale : float; seed : int }

let default = { scale = 1.; seed = 42 }

let segments =
  [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "MACHINERY"; "HOUSEHOLD" |]

let priorities =
  [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]

let containers =
  [| "SM CASE"; "SM BOX"; "MED BAG"; "MED BOX"; "LG CASE"; "LG BOX"; "JUMBO PKG"; "WRAP CASE" |]

let types =
  [|
    "STANDARD ANODIZED BRASS"; "STANDARD BURNISHED TIN"; "SMALL PLATED COPPER";
    "SMALL POLISHED STEEL"; "MEDIUM BRUSHED BRASS"; "MEDIUM ANODIZED NICKEL";
    "LARGE PLATED STEEL"; "LARGE BURNISHED COPPER"; "ECONOMY ANODIZED STEEL";
    "ECONOMY POLISHED TIN"; "PROMO BRUSHED NICKEL"; "PROMO PLATED BRASS";
  |]

let ship_modes = [| "AIR"; "AIR REG"; "FOB"; "MAIL"; "RAIL"; "SHIP"; "TRUCK" |]
let region_names = [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

let rand_date st =
  let y = 1992 + Random.State.int st 7 in
  let m = 1 + Random.State.int st 12 in
  let d = 1 + Random.State.int st 28 in
  Value.date y m d

let date_plus d days =
  (* coarse date arithmetic in the synthetic calendar (28-day months) *)
  match d with
  | Date x ->
      let y = x / 10000 and m = x / 100 mod 100 and dd = x mod 100 in
      let total = (((y * 12) + (m - 1)) * 28) + (dd - 1) + days in
      let y' = total / (12 * 28) in
      let m' = total / 28 mod 12 in
      let d' = total mod 28 in
      Value.date y' (m' + 1) (d' + 1)
  | _ -> invalid_arg "date_plus"

let counts cfg =
  let u x = max 1 (int_of_float (float_of_int x *. cfg.scale)) in
  ( u 100 (* supplier *),
    u 150 (* customer *),
    u 200 (* part *),
    u 1500 (* orders *) )

let tables_list cfg : (string * Vtuple.t list) list =
  let st = Random.State.make [| cfg.seed |] in
  let n_supp, n_cust, n_part, n_ord = counts cfg in
  let f x = Float x and i x = Int x and s x = String x in
  let region =
    List.init 5 (fun k -> [| i k; s region_names.(k) |])
  in
  let nation =
    List.init 25 (fun k ->
        [| i k; s (Printf.sprintf "NATION_%02d" k); i (k mod 5) |])
  in
  let supplier =
    List.init n_supp (fun k ->
        [|
          i k;
          s (Printf.sprintf "Supplier#%05d" k);
          i (Random.State.int st 25);
          f (Random.State.float st 11000. -. 1000.);
        |])
  in
  let customer =
    List.init n_cust (fun k ->
        [|
          i k;
          s (Printf.sprintf "Customer#%06d" k);
          i (Random.State.int st 25);
          s segments.(Random.State.int st 5);
          f (Random.State.float st 10000. -. 1000.);
          i (10 + Random.State.int st 25);
        |])
  in
  let part =
    List.init n_part (fun k ->
        [|
          i k;
          i (Random.State.int st 10);
          s (Printf.sprintf "MFGR#%d" (1 + Random.State.int st 5));
          s (Printf.sprintf "Brand#%d%d" (1 + Random.State.int st 5)
               (1 + Random.State.int st 5));
          s types.(Random.State.int st (Array.length types));
          i (1 + Random.State.int st 50);
          s containers.(Random.State.int st (Array.length containers));
        |])
  in
  let partsupp =
    List.concat
      (List.init n_part (fun p ->
           List.init 4 (fun _ ->
               [|
                 i p;
                 i (Random.State.int st n_supp);
                 i (1 + Random.State.int st 9999);
                 f (1. +. Random.State.float st 999.);
               |])))
  in
  let orders = ref [] in
  let lineitem = ref [] in
  for ok = 0 to n_ord - 1 do
    let odate = rand_date st in
    let status = [| "O"; "F"; "P" |].(Random.State.int st 3) in
    orders :=
      [|
        i ok;
        i (Random.State.int st n_cust);
        s status;
        f (1000. +. Random.State.float st 400000.);
        odate;
        s priorities.(Random.State.int st 5);
        i 0;
      |]
      :: !orders;
    let nlines = 1 + Random.State.int st 7 in
    for ln = 1 to nlines do
      let sdate = date_plus odate (1 + Random.State.int st 120) in
      let cdate = date_plus odate (15 + Random.State.int st 60) in
      let rdate = date_plus sdate (1 + Random.State.int st 30) in
      lineitem :=
        [|
          i ok;
          i (Random.State.int st n_part);
          i (Random.State.int st n_supp);
          i ln;
          f (float_of_int (1 + Random.State.int st 50));
          f (900. +. Random.State.float st 104000.);
          f (float_of_int (Random.State.int st 11) /. 100.);
          f (float_of_int (Random.State.int st 9) /. 100.);
          s [| "A"; "N"; "R" |].(Random.State.int st 3);
          s [| "O"; "F" |].(Random.State.int st 2);
          sdate;
          cdate;
          rdate;
          s ship_modes.(Random.State.int st (Array.length ship_modes));
        |]
        :: !lineitem
    done
  done;
  [
    ("lineitem", List.rev !lineitem);
    ("orders", List.rev !orders);
    ("customer", customer);
    ("part", part);
    ("partsupp", partsupp);
    ("supplier", supplier);
    ("nation", nation);
    ("region", region);
  ]

let tables cfg =
  List.map
    (fun (n, tuples) ->
      let g = Gmr.create ~size:(List.length tuples) () in
      List.iter (fun t -> Gmr.add g t 1.) tuples;
      (n, g))
    (tables_list cfg)

(* Proportional round-robin interleave: at every step emit from the relation
   with the largest remaining fraction, so all relations finish together. *)
let stream_tuples cfg =
  let tl = tables_list cfg in
  let arrs = List.map (fun (n, l) -> (n, Array.of_list l)) tl in
  let idx = List.map (fun (n, a) -> (n, ref 0, a)) arrs in
  let total = List.fold_left (fun acc (_, a) -> acc + Array.length a) 0 arrs in
  let out = ref [] in
  for _ = 1 to total do
    let best = ref None in
    List.iter
      (fun (n, i, a) ->
        let len = Array.length a in
        if !i < len then begin
          let remaining = float_of_int (len - !i) /. float_of_int len in
          match !best with
          | Some (_, _, _, r) when r >= remaining -> ()
          | _ -> best := Some (n, i, a, remaining)
        end)
      idx;
    match !best with
    | Some (n, i, a, _) ->
        out := (n, a.(!i)) :: !out;
        incr i
    | None -> ()
  done;
  List.rev !out

let stream cfg ~batch_size =
  let events = stream_tuples cfg in
  (* chunk consecutive events into per-relation batches of [batch_size] *)
  let open_batches : (string, Gmr.t * int ref) Hashtbl.t = Hashtbl.create 8 in
  let out = ref [] in
  let flush n =
    match Hashtbl.find_opt open_batches n with
    | Some (g, _) when Gmr.cardinal g > 0 ->
        out := (n, g) :: !out;
        Hashtbl.remove open_batches n
    | _ -> Hashtbl.remove open_batches n
  in
  List.iter
    (fun (n, tup) ->
      let g, count =
        match Hashtbl.find_opt open_batches n with
        | Some x -> x
        | None ->
            let x = (Gmr.create ~size:batch_size (), ref 0) in
            Hashtbl.replace open_batches n x;
            x
      in
      Gmr.add g tup 1.;
      incr count;
      if !count >= batch_size then flush n)
    events;
  List.iter (fun (n, _) -> flush n) Tsch.streams;
  List.rev !out
