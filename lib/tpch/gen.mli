(** Deterministic synthetic TPC-H data and stream generator.

    Row counts scale linearly: at [scale = 1.] the generator produces
    roughly 1/1000 of a TPC-H SF-1 database (1500 orders, ~6000 lineitems,
    150 customers, 200 parts, 800 partsupps, 100 suppliers, 25 nations,
    5 regions). Value distributions follow the TPC-H shapes the workload's
    predicates exercise (dates 1992–1998, discounts 0–0.10, quantities
    1–50, ...). *)

open Divm_ring
open Divm_storage

type config = { scale : float; seed : int }

val default : config

(** Full table contents (insert-only multiplicities of 1). *)
val tables : config -> (string * Gmr.t) list

(** [stream cfg ~batch_size] synthesizes the update stream of §6: per-table
    insertions interleaved round-robin (proportionally, so all tables finish
    together), chunked into per-relation batches of [batch_size]. *)
val stream : config -> batch_size:int -> (string * Gmr.t) list

(** Event-level stream: every insertion as a single tuple, same order. *)
val stream_tuples : config -> (string * Vtuple.t) list
