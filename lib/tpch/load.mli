(** Loader for dbgen-format [.tbl] files ('|'-separated, one row per line),
    so real TPC-H data can drive the system instead of the synthetic
    generator. Columns are mapped onto the streaming schema (extra dbgen
    columns such as comments are skipped; LIKE-category columns are derived
    where the synthetic schema replaced them, e.g. [p_color] from
    [p_name]). *)

open Divm_ring
open Divm_storage

exception Error of string

(** [parse_line table line] parses one dbgen row of [table] into a tuple of
    the streaming schema. Raises [Error] with line context on malformed
    input. *)
val parse_line : string -> string -> Vtuple.t

(** [load_file table path] reads a .tbl file into a GMR (multiplicity 1 per
    row). *)
val load_file : string -> string -> Gmr.t

(** [load_dir dir] loads every [<relation>.tbl] present in [dir]. *)
val load_dir : string -> (string * Gmr.t) list
