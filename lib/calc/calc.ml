open Divm_ring

type cmp_op = Eq | Neq | Lt | Lte | Gt | Gte
type rel = { rname : string; rvars : Schema.t }
type map_access = { mname : string; mvars : Schema.t }

type expr =
  | Const of float
  | Value of Vexpr.t
  | Cmp of cmp_op * Vexpr.t * Vexpr.t
  | Rel of rel
  | DeltaRel of rel
  | Map of map_access
  | Lift of Schema.var * expr
  | Exists of expr
  | Sum of Schema.t * expr
  | Prod of expr list
  | Add of expr list

exception Type_error of string

let one = Const 1.
let zero = Const 0.
let const c = Const c
let is_zero = function Const c -> Float.abs c < Mult.zero_eps | _ -> false
let is_one = function Const 1. -> true | _ -> false
let rel rname rvars = Rel { rname; rvars }
let delta_rel rname rvars = DeltaRel { rname; rvars }
let map_ mname mvars = Map { mname; mvars }

let prod es =
  let es = List.concat_map (function Prod xs -> xs | e -> [ e ]) es in
  if List.exists is_zero es then zero
  else
    (* Fold adjacent constants together but keep evaluation order of the
       non-constant factors: binding flows left to right. *)
    let c, rest =
      List.fold_left
        (fun (c, acc) e ->
          match e with Const k -> (c *. k, acc) | e -> (c, e :: acc))
        (1., []) es
    in
    let rest = List.rev rest in
    match (rest, c) with
    | [], _ -> Const c
    | es, 1. -> ( match es with [ e ] -> e | es -> Prod es)
    | es, c -> Prod (Const c :: es)

let add es =
  let es = List.concat_map (function Add xs -> xs | e -> [ e ]) es in
  let es = List.filter (fun e -> not (is_zero e)) es in
  match es with [] -> zero | [ e ] -> e | es -> Add es

let neg e = prod [ Const (-1.); e ]

let lift v e = Lift (v, e)
let exists e = match e with Const c when c <> 0. -> one | e -> Exists e
let cmp op a b = Cmp (op, a, b)
let cmp_vars op a b = Cmp (op, Vexpr.Var a, Vexpr.Var b)
let value v = match v with Vexpr.Const (Value.Float f) -> Const f | v -> Value v

let eval_cmp op a b =
  let c = Value.compare_approx a b in
  match op with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Lte -> c <= 0
  | Gt -> c > 0
  | Gte -> c >= 0

(* ------------------------------------------------------------------ *)
(* Schema inference                                                    *)
(* ------------------------------------------------------------------ *)

let rec schema ?(bound = []) e =
  match e with
  | Const _ -> []
  | Value v ->
      let unbound = Schema.diff (Vexpr.vars v) bound in
      if unbound <> [] then
        raise
          (Type_error
             (Printf.sprintf "Value with unbound variables %s"
                (Schema.to_string unbound)))
      else []
  | Cmp (_, a, b) ->
      let unbound = Schema.diff (Schema.union (Vexpr.vars a) (Vexpr.vars b)) bound in
      if unbound <> [] then
        raise
          (Type_error
             (Printf.sprintf "Cmp with unbound variables %s"
                (Schema.to_string unbound)))
      else []
  | Rel r | DeltaRel r -> Schema.diff r.rvars bound
  | Map m -> Schema.diff m.mvars bound
  | Lift (v, q) ->
      let sq = schema ~bound q in
      if Schema.mem v bound then sq else Schema.union sq [ v ]
  | Exists q -> schema ~bound q
  | Sum (gb, q) ->
      let sq = schema ~bound q in
      let missing = Schema.diff gb (Schema.union sq bound) in
      if missing <> [] then
        raise
          (Type_error
             (Printf.sprintf "Sum group-by vars %s not produced (have %s)"
                (Schema.to_string missing) (Schema.to_string sq)))
      else Schema.diff gb bound
  | Prod es ->
      let _, out =
        List.fold_left
          (fun (bound, out) e ->
            let s = schema ~bound e in
            (Schema.union bound s, Schema.union out s))
          (bound, []) es
      in
      out
  | Add es -> (
      match es with
      | [] -> []
      | hd :: tl ->
          let s = schema ~bound hd in
          List.iter
            (fun e ->
              let s' = schema ~bound e in
              if not (Schema.equal_as_sets s s') then
                raise
                  (Type_error
                     (Printf.sprintf "Add members with schemas %s vs %s"
                        (Schema.to_string s) (Schema.to_string s'))))
            tl;
          s)

let sum gb e =
  if is_zero e then zero
  else
    (* Drop the projection when it is an exact no-op (same variables, same
       order) — this lets alpha-canonical map reuse unify e.g.
       Sum_[A](Exists q) with Exists q. *)
    let noop =
      match schema ~bound:[] e with
      | s ->
          List.length s = List.length gb
          && List.for_all2 Schema.var_equal s gb
      | exception Type_error _ -> false
    in
    if noop then e
    else
      match e with
      (* Collapse nested projections: Sum_gb(Sum_gb2 q) = Sum_gb q when
         gb is a subset of gb2. *)
      | Sum (gb2, q) when Schema.subset gb gb2 -> Sum (gb, q)
      | e -> Sum (gb, e)

(* ------------------------------------------------------------------ *)
(* Analyses                                                            *)
(* ------------------------------------------------------------------ *)

let rec all_vars = function
  | Const _ -> []
  | Value v -> Vexpr.vars v
  | Cmp (_, a, b) -> Schema.union (Vexpr.vars a) (Vexpr.vars b)
  | Rel r | DeltaRel r -> r.rvars
  | Map m -> m.mvars
  | Lift (v, q) -> Schema.union [ v ] (all_vars q)
  | Exists q -> all_vars q
  | Sum (gb, q) -> Schema.union gb (all_vars q)
  | Prod es | Add es ->
      List.fold_left (fun acc e -> Schema.union acc (all_vars e)) [] es

let rec inputs ?(bound = []) e =
  match e with
  | Const _ | Rel _ | DeltaRel _ | Map _ -> []
  | Value v -> Schema.diff (Vexpr.vars v) bound
  | Cmp (_, a, b) ->
      Schema.diff (Schema.union (Vexpr.vars a) (Vexpr.vars b)) bound
  | Lift (_, q) | Exists q | Sum (_, q) -> inputs ~bound q
  | Add es ->
      List.fold_left (fun acc e -> Schema.union acc (inputs ~bound e)) [] es
  | Prod es ->
      let acc, _ =
        List.fold_left
          (fun (acc, bound) e ->
            let acc = Schema.union acc (inputs ~bound e) in
            let bound =
              match schema ~bound e with
              | s -> Schema.union bound s
              | exception Type_error _ -> Schema.union bound (all_vars e)
            in
            (acc, bound))
          ([], bound) es
      in
      acc

let collect f e =
  let acc = ref [] in
  let push x = if not (List.mem x !acc) then acc := x :: !acc in
  let rec go e =
    f push e;
    match e with
    | Lift (_, q) | Exists q | Sum (_, q) -> go q
    | Prod es | Add es -> List.iter go es
    | _ -> ()
  in
  go e;
  List.rev !acc

let base_rels e =
  collect (fun push -> function Rel r -> push r.rname | _ -> ()) e

let delta_rels e =
  collect (fun push -> function DeltaRel r -> push r.rname | _ -> ()) e

let map_refs e =
  collect (fun push -> function Map m -> push m.mname | _ -> ()) e

let has_base_rels e = base_rels e <> []
let has_deltas e = delta_rels e <> []

let rec degree = function
  | Const _ | Value _ | Cmp _ -> 0
  | Rel _ | DeltaRel _ | Map _ -> 1
  | Lift (_, q) | Exists q | Sum (_, q) -> degree q
  | Prod es -> List.fold_left (fun acc e -> acc + degree e) 0 es
  | Add es -> List.fold_left (fun acc e -> max acc (degree e)) 0 es

(* ------------------------------------------------------------------ *)
(* Transformations                                                     *)
(* ------------------------------------------------------------------ *)

let rec rename f = function
  | Const c -> Const c
  | Value v -> Value (Vexpr.rename f v)
  | Cmp (op, a, b) -> Cmp (op, Vexpr.rename f a, Vexpr.rename f b)
  | Rel r -> Rel { r with rvars = List.map f r.rvars }
  | DeltaRel r -> DeltaRel { r with rvars = List.map f r.rvars }
  | Map m -> Map { m with mvars = List.map f m.mvars }
  | Lift (v, q) -> Lift (f v, rename f q)
  | Exists q -> Exists (rename f q)
  | Sum (gb, q) -> Sum (List.map f gb, rename f q)
  | Prod es -> Prod (List.map (rename f) es)
  | Add es -> Add (List.map (rename f) es)

let rename_by_assoc assoc e =
  rename
    (fun v ->
      match List.assoc_opt v.Schema.name assoc with
      | Some v' -> v'
      | None -> v)
    e

let rec equal a b =
  match (a, b) with
  | Const x, Const y -> Float.equal x y
  | Value x, Value y -> Vexpr.equal x y
  | Cmp (o1, a1, b1), Cmp (o2, a2, b2) ->
      o1 = o2 && Vexpr.equal a1 a2 && Vexpr.equal b1 b2
  | Rel r1, Rel r2 | DeltaRel r1, DeltaRel r2 ->
      String.equal r1.rname r2.rname
      && List.length r1.rvars = List.length r2.rvars
      && List.for_all2 Schema.var_equal r1.rvars r2.rvars
  | Map m1, Map m2 ->
      String.equal m1.mname m2.mname
      && List.length m1.mvars = List.length m2.mvars
      && List.for_all2 Schema.var_equal m1.mvars m2.mvars
  | Lift (v1, q1), Lift (v2, q2) -> Schema.var_equal v1 v2 && equal q1 q2
  | Exists q1, Exists q2 -> equal q1 q2
  | Sum (g1, q1), Sum (g2, q2) ->
      List.length g1 = List.length g2
      && List.for_all2 Schema.var_equal g1 g2
      && equal q1 q2
  | Prod e1, Prod e2 | Add e1, Add e2 ->
      List.length e1 = List.length e2 && List.for_all2 equal e1 e2
  | _ -> false

let alpha_canon ~keep e =
  let tbl = Hashtbl.create 16 in
  let counter = ref 0 in
  let f (v : Schema.var) =
    if Schema.mem v keep then v
    else
      match Hashtbl.find_opt tbl v.name with
      | Some v' -> v'
      | None ->
          let v' = { v with Schema.name = Printf.sprintf "!c%d" !counter } in
          incr counter;
          Hashtbl.add tbl v.name v';
          v'
  in
  rename f e

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_cmp_op ppf op =
  Format.pp_print_string ppf
    (match op with
    | Eq -> "="
    | Neq -> "!="
    | Lt -> "<"
    | Lte -> "<="
    | Gt -> ">"
    | Gte -> ">=")

let rec pp ppf = function
  | Const c -> Format.fprintf ppf "%g" c
  | Value v -> Format.fprintf ppf "{%a}" Vexpr.pp v
  | Cmp (op, a, b) ->
      Format.fprintf ppf "{%a %a %a}" Vexpr.pp a pp_cmp_op op Vexpr.pp b
  | Rel r -> Format.fprintf ppf "%s(%a)" r.rname pp_vars r.rvars
  | DeltaRel r -> Format.fprintf ppf "d%s(%a)" r.rname pp_vars r.rvars
  | Map m -> Format.fprintf ppf "%s[%a]" m.mname pp_vars m.mvars
  | Lift (v, q) -> Format.fprintf ppf "(%s := %a)" v.Schema.name pp q
  | Exists q -> Format.fprintf ppf "Exists(%a)" pp q
  | Sum (gb, q) -> Format.fprintf ppf "Sum_[%a](%a)" pp_vars gb pp q
  | Prod es ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " * ")
           pp)
        es
  | Add es ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ")
           pp)
        es

and pp_vars ppf vs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    Schema.pp_var ppf vs

let to_string e = Format.asprintf "%a" pp e
