(** Named-query boilerplate shared by the CLIs and the bench harness.

    Every front end does the same dance: resolve a query name (TPC-H
    [Q1]–[Q22] or TPC-DS [DS…]) or an ad-hoc SQL string to its calculus
    maps plus the matching stream catalog and partition keys, compile the
    local trigger program, and — for distributed execution — place maps
    with the §6.2 heuristic and run the distributed compiler. *)

open Divm_ring
open Divm_calc
open Divm_compiler
open Divm_dist

type t = {
  wname : string;  (** canonical query name, e.g. ["Q3"] or ["DS3"] *)
  maps : (string * Calc.expr) list;  (** top-level result maps *)
  streams : (string * Schema.t) list;  (** stream catalog the maps are over *)
  partition_keys : string list;  (** column names favored by {!Loc.heuristic} *)
}

(** [find name] resolves a benchmark query by (case-insensitive) name:
    names starting with ["DS"] come from {!Divm_tpcds.Queries}, everything
    else from {!Divm_tpch.Queries}. Raises [Not_found] on unknown names,
    like the underlying tables. *)
val find : string -> t

(** [of_sql ?name text] compiles an SQL string over the TPC-H schema. *)
val of_sql : ?name:string -> string -> t

(** Local trigger program ([preaggregate] defaults to [true], §3.3). *)
val compile : ?preaggregate:bool -> t -> Prog.t

(** Distributed program for [prog]: heuristic placement over the
    workload's partition keys, then the distributed compiler at
    [level] (default 3, the full Figure 13 pipeline). *)
val distribute : ?level:int -> t -> Prog.t -> Dprog.t
