open Divm_ring
open Divm_calc
open Divm_compiler
open Divm_dist

type t = {
  wname : string;
  maps : (string * Calc.expr) list;
  streams : (string * Schema.t) list;
  partition_keys : string list;
}

let is_tpcds n = String.length n >= 2 && String.sub n 0 2 = "DS"

let find name =
  let n = String.uppercase_ascii name in
  if is_tpcds n then
    let q = Divm_tpcds.Queries.find n in
    {
      wname = q.Divm_tpcds.Queries.qname;
      maps = q.Divm_tpcds.Queries.maps;
      streams = Divm_tpcds.Schema.streams;
      partition_keys = Divm_tpcds.Schema.partition_keys;
    }
  else
    let q = Divm_tpch.Queries.find n in
    {
      wname = q.Divm_tpch.Queries.qname;
      maps = q.Divm_tpch.Queries.maps;
      streams = Divm_tpch.Schema.streams;
      partition_keys = Divm_tpch.Schema.partition_keys;
    }

let of_sql ?(name = "Q") text =
  {
    wname = name;
    maps = Divm_sql.Sql.compile ~catalog:Divm_tpch.Schema.streams ~name text;
    streams = Divm_tpch.Schema.streams;
    partition_keys = Divm_tpch.Schema.partition_keys;
  }

let compile ?(preaggregate = true) w =
  Compile.compile
    ~options:{ Compile.default_options with preaggregate }
    ~streams:w.streams w.maps

let distribute ?(level = 3) w prog =
  let catalog = Loc.heuristic ~keys:w.partition_keys prog in
  Distribute.compile
    ~options:{ Distribute.default_options with level }
    ~catalog prog
