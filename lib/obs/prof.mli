(** Per-statement attribution slots — the profiler's accumulator.

    The runtime and cluster resolve a slot id per compiled statement (or
    transfer) once at compile time with {!slot}; firing a statement under
    an enabled profiler charges counter {e deltas} to that id with {!add}
    — array-indexed additions only, no string lookups on the hot path.
    With the profiler disabled ({!enabled} [= false], the default) the
    firing path pays a single flag check.

    The report layer ([Divm.Profile]) joins {!rows} against the static
    plan; it lives in a separate library above runtime/dist, which is why
    this accumulator sits here in [Divm_obs]. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** [slot ~trigger ~label] returns the dense id for the (trigger, label)
    pair, allocating it on first use. Idempotent; ids are stable for the
    process lifetime. Labels follow ["stmt:<target>"], ["columnar:<target>"],
    ["driver:<target>"], ["transfer:<name>"]. *)
val slot : trigger:string -> label:string -> int

(** Charge one firing plus counter deltas to a slot. *)
val add :
  int ->
  ops:int ->
  probes:int ->
  misses:int ->
  scanned:int ->
  svscan:int ->
  svsel:int ->
  bytes:int ->
  wall:float ->
  unit

type row = {
  r_trigger : string;
  r_label : string;
  r_firings : int;
  r_ops : int;  (** elementary record ops (§6 cost model) *)
  r_probes : int;  (** primary-index probes ([Pool.get]/[Pool.slice]) *)
  r_misses : int;  (** probes that found nothing *)
  r_scanned : int;  (** records scanned through secondary-index slices *)
  r_svscan : int;  (** rows examined by selection-vector filter kernels *)
  r_svsel : int;  (** rows surviving the kernels (survivor-vector length) *)
  r_bytes : int;  (** serialized bytes this transfer shuffled *)
  r_wall : float;  (** seconds *)
}

(** [merge ~trigger ~label row] folds a whole row — e.g. a worker
    process's slot delta shipped over the wire — into the slot
    registered under [(trigger, label)], carrying the source's firing
    count (unlike {!add}, which charges exactly one firing). *)
val merge : trigger:string -> label:string -> row -> unit

(** All slots in id (registration) order, including zero ones. *)
val rows : unit -> row list

(** Zero every tally; slot registrations (and the ids captured by compiled
    closures) survive. *)
val reset : unit -> unit
