(* Global metrics registry + span tracer. Counters and gauges are
   domain-safe (see the contract in obs.mli): counters are striped into
   per-domain shards so the hot increment stays a plain store into a cell
   this domain owns exclusively, and reads sum the shards. Histograms and
   the span tracer remain single-writer. *)

(* ------------------------------------------------------------------ *)
(* Instruments                                                         *)
(* ------------------------------------------------------------------ *)

(* Dense stripe ids: the first time a domain touches any counter it draws
   the next id, so shard arrays stay as small as the number of domains
   that ever counted anything. *)
let stripe_next = Atomic.make 0

let stripe_key =
  Domain.DLS.new_key (fun () -> Atomic.fetch_and_add stripe_next 1)

(* One shard is an 8-word int array with only slot 0 used: the padding
   keeps neighbouring domains' cells off each other's cache lines. *)
let shard_pad = 8
let new_shard () = Array.make shard_pad 0

(* Shard-array growth is rare (once per counter per new domain); one
   process-wide lock is plenty. Publication of the grown outer array goes
   through the [Atomic.t] so a domain that observes the new array also
   observes its fully-initialized contents; old shards are carried over by
   reference, never copied by value, so no concurrent increment is lost. *)
let grow_lock = Mutex.create ()

type counter = { c_name : string; c_shards : int array array Atomic.t }
type gauge = { g_name : string; g : float Atomic.t }

type hist = {
  h_name : string;
  h_buckets : float array; (* ascending upper bounds *)
  h_counts : int array; (* length = buckets + 1 (+inf) *)
  mutable h_sum : float;
  mutable h_count : int;
}

type instrument = ICounter of counter | IGauge of gauge | IHist of hist

(* Registration order matters for human-readable dumps. The lock makes
   registration safe from any domain, though in practice instruments are
   created at module-init or program-load time on the main domain. *)
let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let order : string list ref = ref []
let registry_lock = Mutex.create ()

let register_instrument name i =
  Mutex.lock registry_lock;
  let r =
    match Hashtbl.find_opt registry name with
    | Some existing -> existing
    | None ->
        Hashtbl.replace registry name i;
        order := name :: !order;
        i
  in
  Mutex.unlock registry_lock;
  r

module Counter = struct
  type t = counter

  let fresh name = { c_name = name; c_shards = Atomic.make [| new_shard () |] }

  let make ?(register = true) name =
    if not register then fresh name
    else
      match register_instrument name (ICounter (fresh name)) with
      | ICounter c -> c
      | _ -> invalid_arg ("Obs.Counter.make: " ^ name ^ " is not a counter")

  (* Slow path: extend the outer array with fresh shards so stripe [sid]
     has a cell. Existing shard objects are shared between the old and new
     outer arrays, so domains still holding the old array keep writing to
     live cells. *)
  let grow t sid =
    Mutex.lock grow_lock;
    let a = Atomic.get t.c_shards in
    let n = Array.length a in
    let r =
      if sid < n then a.(sid)
      else begin
        let n' = max (sid + 1) (2 * n) in
        let a' =
          Array.init n' (fun i -> if i < n then a.(i) else new_shard ())
        in
        Atomic.set t.c_shards a';
        a'.(sid)
      end
    in
    Mutex.unlock grow_lock;
    r

  let[@inline] shard t =
    let sid = Domain.DLS.get stripe_key in
    let a = Atomic.get t.c_shards in
    if sid < Array.length a then Array.unsafe_get a sid else grow t sid

  let[@inline] incr t =
    let s = shard t in
    s.(0) <- s.(0) + 1

  let[@inline] add t n =
    let s = shard t in
    s.(0) <- s.(0) + n

  let value t =
    let a = Atomic.get t.c_shards in
    let acc = ref 0 in
    Array.iter (fun s -> acc := !acc + s.(0)) a;
    !acc

  let reset t = Array.iter (fun s -> s.(0) <- 0) (Atomic.get t.c_shards)
  let name t = t.c_name
end

module Gauge = struct
  type t = gauge

  let fresh name = { g_name = name; g = Atomic.make 0. }

  let make ?(register = true) name =
    if not register then fresh name
    else
      match register_instrument name (IGauge (fresh name)) with
      | IGauge g -> g
      | _ -> invalid_arg ("Obs.Gauge.make: " ^ name ^ " is not a gauge")

  let[@inline] set t v = Atomic.set t.g v
  let value t = Atomic.get t.g
end

module Histogram = struct
  type t = hist

  (* 100µs .. 100s, one bucket per decade third. *)
  let default_buckets =
    Array.init 19 (fun i -> 1e-4 *. (10. ** (float_of_int i /. 3.)))

  let make ?(register = true) ?(buckets = default_buckets) name =
    let fresh () =
      {
        h_name = name;
        h_buckets = buckets;
        h_counts = Array.make (Array.length buckets + 1) 0;
        h_sum = 0.;
        h_count = 0;
      }
    in
    if not register then fresh ()
    else
      match register_instrument name (IHist (fresh ())) with
      | IHist h -> h
      | _ -> invalid_arg ("Obs.Histogram.make: " ^ name ^ " is not a histogram")

  let observe t v =
    let n = Array.length t.h_buckets in
    let rec slot i = if i >= n || v <= t.h_buckets.(i) then i else slot (i + 1) in
    let i = slot 0 in
    t.h_counts.(i) <- t.h_counts.(i) + 1;
    t.h_sum <- t.h_sum +. v;
    t.h_count <- t.h_count + 1

  let count t = t.h_count
  let sum t = t.h_sum

  (* Shared with the snapshot exporters, which carry the same arrays. *)
  let percentile_of ~buckets ~counts ~count p =
    if count <= 0 then Float.nan
    else begin
      let n = Array.length buckets in
      let rank = p /. 100. *. float_of_int count in
      let res = ref Float.nan in
      let cum = ref 0 in
      (try
         for i = 0 to n do
           let c = counts.(i) in
           if c > 0 && float_of_int (!cum + c) >= rank then begin
             (if i >= n then
                (* +Inf bucket: no finite upper bound to interpolate
                   towards; report the largest finite bound *)
                res := (if n = 0 then Float.nan else buckets.(n - 1))
              else
                let lo = if i = 0 then 0. else buckets.(i - 1) in
                let hi = buckets.(i) in
                let frac =
                  Float.max 0. (rank -. float_of_int !cum) /. float_of_int c
                in
                res := lo +. (frac *. (hi -. lo)));
             raise Exit
           end;
           cum := !cum + c
         done
       with Exit -> ());
      !res
    end

  let percentile t p =
    percentile_of ~buckets:t.h_buckets ~counts:t.h_counts ~count:t.h_count p
end

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type value =
  | VCounter of int
  | VGauge of float
  | VHistogram of {
      buckets : float array;
      counts : int array;
      sum : float;
      count : int;
    }

type snapshot = (string * value) list

let snapshot () =
  List.rev_map
    (fun name ->
      let v =
        match Hashtbl.find registry name with
        | ICounter c -> VCounter (Counter.value c)
        | IGauge g -> VGauge (Gauge.value g)
        | IHist h ->
            VHistogram
              {
                buckets = h.h_buckets;
                counts = Array.copy h.h_counts;
                sum = h.h_sum;
                count = h.h_count;
              }
      in
      (name, v))
    !order

let diff ~later ~earlier =
  List.map
    (fun (name, v) ->
      match (v, List.assoc_opt name earlier) with
      | VCounter a, Some (VCounter b) -> (name, VCounter (a - b))
      | VHistogram a, Some (VHistogram b) ->
          if a.buckets = b.buckets then
            ( name,
              VHistogram
                {
                  a with
                  counts = Array.mapi (fun i c -> c - b.counts.(i)) a.counts;
                  sum = a.sum -. b.sum;
                  count = a.count - b.count;
                } )
          else
            (* Bucket layout changed between the snapshots, so per-bucket
               deltas are meaningless: zero them and subtract only the
               scalar moments, which remain well-defined. *)
            ( name,
              VHistogram
                {
                  a with
                  counts = Array.make (Array.length a.counts) 0;
                  sum = a.sum -. b.sum;
                  count = a.count - b.count;
                } )
      | _ -> (name, v))
    later

let find snap name = List.assoc_opt name snap

let counter_value snap name =
  match find snap name with Some (VCounter c) -> c | _ -> 0

(* ------------------------------------------------------------------ *)
(* Remote collection (multi-process telemetry)                         *)
(* ------------------------------------------------------------------ *)

(* Whether a distributed engine should pull telemetry frames from its
   worker processes. Off by default so the hot path and the wire stay
   untouched unless some consumer (metrics/trace/profile/listen) wants
   the merged view. *)
let collection_flag = ref false
let set_collection b = collection_flag := b
let collection () = !collection_flag

(* "name{a="1"}" + [("worker","2")] -> "name{a="1",worker="2"}". Label
   values are escaped like Prometheus expects (backslash, quote, LF). *)
let with_labels name labels =
  if labels = [] then name
  else begin
    let esc v =
      let buf = Buffer.create (String.length v) in
      String.iter
        (fun c ->
          match c with
          | '\\' -> Buffer.add_string buf "\\\\"
          | '"' -> Buffer.add_string buf "\\\""
          | '\n' -> Buffer.add_string buf "\\n"
          | c -> Buffer.add_char buf c)
        v;
      Buffer.contents buf
    in
    let lbls =
      String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (esc v)) labels)
    in
    match String.index_opt name '{' with
    | Some i ->
        (* merge into the existing label set, before the closing brace *)
        let n = String.length name in
        if n > 0 && name.[n - 1] = '}' then
          String.sub name 0 (n - 1)
          ^ (if n - 1 > i + 1 then "," else "")
          ^ lbls ^ "}"
        else String.sub name 0 i ^ "{" ^ lbls ^ "}"
    | None -> name ^ "{" ^ lbls ^ "}"
  end

let base_of name =
  match String.index_opt name '{' with
  | Some i -> String.sub name 0 i
  | None -> name

(* Fold a (delta) snapshot from another process into this registry under
   per-source labels. Counters add, gauges take the incoming value,
   histograms merge bucket-wise when the layouts agree (and always merge
   the scalar moments). Instruments are created on first sight, keyed by
   the labeled name, so successive ingests accumulate. *)
let ingest ~labels snap =
  List.iter
    (fun (name, v) ->
      let lname = with_labels name labels in
      match v with
      | VCounter c -> Counter.add (Counter.make lname) c
      | VGauge g -> Gauge.set (Gauge.make lname) g
      | VHistogram h ->
          let dst = Histogram.make ~buckets:h.buckets lname in
          if dst.h_buckets = h.buckets
             && Array.length dst.h_counts = Array.length h.counts
          then
            Array.iteri
              (fun i c -> dst.h_counts.(i) <- dst.h_counts.(i) + c)
              h.counts;
          dst.h_sum <- dst.h_sum +. h.sum;
          dst.h_count <- dst.h_count + h.count)
    snap

let reset_all () =
  Hashtbl.iter
    (fun _ i ->
      match i with
      | ICounter c -> Counter.reset c
      | IGauge _ -> ()
      | IHist h ->
          Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
          h.h_sum <- 0.;
          h.h_count <- 0)
    registry

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

(* Split "name{labels}" so bucket suffixes land before the label set. *)
let base_and_labels name =
  match String.index_opt name '{' with
  | Some i ->
      ( String.sub name 0 i,
        Some (String.sub name i (String.length name - i)) )
  | None -> (name, None)

let to_text snap =
  let buf = Buffer.create 1024 in
  (* one TYPE line per metric family: labeled instruments of the same base
     name share it *)
  let typed = Hashtbl.create 16 in
  let type_line base kind =
    if not (Hashtbl.mem typed base) then begin
      Hashtbl.add typed base ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" base kind)
    end
  in
  List.iter
    (fun (name, v) ->
      let base, labels = base_and_labels name in
      let lbl = match labels with Some l -> l | None -> "" in
      match v with
      | VCounter c ->
          type_line base "counter";
          Buffer.add_string buf (Printf.sprintf "%s%s %d\n" base lbl c)
      | VGauge g ->
          type_line base "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" base lbl (fmt_float g))
      | VHistogram h ->
          type_line base "histogram";
          let cum = ref 0 in
          Array.iteri
            (fun i c ->
              cum := !cum + c;
              let le =
                if i < Array.length h.buckets then fmt_float h.buckets.(i)
                else "+Inf"
              in
              if c > 0 || i = Array.length h.buckets then
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" base le !cum))
            h.counts;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n%s_count %d\n" base (fmt_float h.sum)
               base h.count);
          if h.count > 0 then begin
            let q p =
              Histogram.percentile_of ~buckets:h.buckets ~counts:h.counts
                ~count:h.count p
            in
            Buffer.add_string buf
              (Printf.sprintf "# %s%s p50=%s p95=%s p99=%s p999=%s\n" base lbl
                 (fmt_float (q 50.)) (fmt_float (q 95.)) (fmt_float (q 99.))
                 (fmt_float (q 99.9)))
          end)
    snap;
  Buffer.contents buf

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_float f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

(* Round-trip-exact float literal: histogram sums (and anything else a
   remote merge must reconcile bit-exactly against) export with the full
   17 significant digits, not a display rounding. *)
let json_float_exact f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_json snap =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf (json_string name);
      Buffer.add_string buf ":";
      match v with
      | VCounter c ->
          Buffer.add_string buf
            (Printf.sprintf "{\"type\":\"counter\",\"value\":%d}" c)
      | VGauge g ->
          Buffer.add_string buf
            (Printf.sprintf "{\"type\":\"gauge\",\"value\":%s}" (json_float g))
      | VHistogram h ->
          Buffer.add_string buf "{\"type\":\"histogram\",\"buckets\":[";
          Array.iteri
            (fun j b ->
              if j > 0 then Buffer.add_string buf ",";
              Buffer.add_string buf (json_float b))
            h.buckets;
          Buffer.add_string buf "],\"counts\":[";
          Array.iteri
            (fun j c ->
              if j > 0 then Buffer.add_string buf ",";
              Buffer.add_string buf (string_of_int c))
            h.counts;
          let q p =
            Histogram.percentile_of ~buckets:h.buckets ~counts:h.counts
              ~count:h.count p
          in
          Buffer.add_string buf
            (Printf.sprintf
               "],\"sum\":%s,\"count\":%d,\"p50\":%s,\"p95\":%s,\"p99\":%s,\"p999\":%s}"
               (json_float_exact h.sum) h.count
               (json_float (q 50.))
               (json_float (q 95.))
               (json_float (q 99.))
               (json_float (q 99.9))))
    snap;
  Buffer.add_string buf "}";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Span tracing                                                        *)
(* ------------------------------------------------------------------ *)

type event = {
  ev_name : string;
  ev_start : float;
  ev_dur : float;
  ev_depth : int;
  ev_attrs : (string * string) list;
}

type open_span = {
  os_name : string;
  os_start : float;
  os_depth : int;
  mutable os_attrs : (string * string) list; (* reversed *)
}

let tracing_on = ref false
let stack : open_span list ref = ref []
let completed : event list ref = ref []

let tracing () = !tracing_on

let set_tracing b =
  tracing_on := b;
  if not b then stack := []

let events () = List.rev !completed
let open_spans () = List.length !stack

(* Spans collected from other processes, keyed by the Chrome-trace pid
   they will export under. Events keep their source clock; the per-pid
   [offset] (source_clock - local_clock, estimated by whoever merged
   them) is applied uniformly at export time, so re-estimating the offset
   mid-run can never reorder a process's own timeline. *)
type remote_proc = {
  rp_name : string;
  mutable rp_offset : float;
  mutable rp_events : event list; (* reversed (newest first) *)
}

let remote : (int * remote_proc) list ref = ref []

let add_remote_events ~pid ~pname ~offset evs =
  let p =
    match List.assoc_opt pid !remote with
    | Some p -> p
    | None ->
        let p = { rp_name = pname; rp_offset = offset; rp_events = [] } in
        remote := !remote @ [ (pid, p) ];
        p
  in
  p.rp_offset <- offset;
  p.rp_events <- List.rev_append evs p.rp_events

let remote_events () =
  List.map
    (fun (pid, p) -> (pid, p.rp_name, p.rp_offset, List.rev p.rp_events))
    !remote

let clear_events () =
  completed := [];
  stack := [];
  remote := []

let set_attr key v =
  match !stack with
  | s :: _ -> s.os_attrs <- (key, v) :: s.os_attrs
  | [] -> ()

let span ?(attrs = []) name f =
  if not !tracing_on then f ()
  else begin
    let s =
      {
        os_name = name;
        os_start = Unix.gettimeofday ();
        os_depth = List.length !stack;
        os_attrs = List.rev attrs;
      }
    in
    stack := s :: !stack;
    let close () =
      let t1 = Unix.gettimeofday () in
      (match !stack with
      | x :: tl when x == s -> stack := tl
      | _ ->
          (* a nested span leaked (e.g. exception swallowed between
             pushes); drop down to this frame *)
          let rec pop = function
            | x :: tl -> if x == s then tl else pop tl
            | [] -> []
          in
          stack := pop !stack);
      completed :=
        {
          ev_name = s.os_name;
          ev_start = s.os_start;
          ev_dur = t1 -. s.os_start;
          ev_depth = s.os_depth;
          ev_attrs = List.rev s.os_attrs;
        }
        :: !completed
    in
    match f () with
    | v ->
        close ();
        v
    | exception e ->
        close ();
        raise e
  end

(* Merged timeline: local spans under pid 1, each remote process under
   its own pid with its clock offset subtracted, so coordinator and
   worker spans line up on one corrected axis. Process-name metadata
   events are only emitted when the trace actually spans processes. *)
let chrome_trace_json () =
  let evs = events () in
  let rem = remote_events () in
  let t0 =
    let min_of acc off l =
      List.fold_left (fun acc e -> Float.min acc (e.ev_start -. off)) acc l
    in
    let seed =
      match (evs, rem) with
      | e :: _, _ -> e.ev_start
      | [], (_, _, off, e :: _) :: _ -> e.ev_start -. off
      | [], _ -> 0.
    in
    List.fold_left
      (fun acc (_, _, off, l) -> min_of acc off l)
      (min_of seed 0. evs) rem
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_string buf "," in
  let emit_meta pid pname =
    sep ();
    Buffer.add_string buf
      (Printf.sprintf
         "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":%s}}"
         pid (json_string pname))
  in
  let emit_event pid off e =
    sep ();
    Buffer.add_string buf
      (Printf.sprintf
         "{\"name\":%s,\"cat\":\"divm\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":1"
         (json_string e.ev_name)
         ((e.ev_start -. off -. t0) *. 1e6)
         (e.ev_dur *. 1e6)
         pid);
    (match e.ev_attrs with
    | [] -> ()
    | attrs ->
        Buffer.add_string buf ",\"args\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_string buf ",";
            Buffer.add_string buf (json_string k);
            Buffer.add_string buf ":";
            Buffer.add_string buf (json_string v))
          attrs;
        Buffer.add_string buf "}");
    Buffer.add_string buf "}"
  in
  if rem <> [] then emit_meta 1 "coordinator";
  List.iter (emit_event 1 0.) evs;
  List.iter
    (fun (pid, pname, off, l) ->
      emit_meta pid pname;
      List.iter (emit_event pid off) l)
    rem;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let write_chrome_trace path =
  let oc = open_out path in
  output_string oc (chrome_trace_json ());
  close_out oc
