(** Unified observability: one metrics registry and one span tracer that
    every layer feeds (storage, runtime, cluster) and every front end
    consumes (CLIs, bench harness, tests).

    The paper's entire evaluation is an exercise in counting — elementary
    ops per stage, bytes shuffled, stages per trigger — so the counts live
    here, behind one API, instead of ad-hoc records and [Printf]s.

    {1 Metrics}

    Named monotonic {!Counter}s, {!Gauge}s, and latency {!Histogram}s
    register themselves in a global registry at creation ([make] is
    idempotent per name: re-creating returns the existing instrument).
    Hot paths pay a few loads and one plain store per event — there is no
    sampling toggle for counters because an increment is already about as
    cheap as the check would be. {!snapshot} captures the registry, {!diff}
    subtracts
    two snapshots (counters and histograms subtract; gauges keep the later
    value), and {!to_text} / {!to_json} export Prometheus-style text and a
    machine-readable JSON report.

    {1 Spans}

    [span "trigger:R" (fun () -> ...)] produces a nested timed span when
    tracing is enabled ({!set_tracing}); when disabled it is one mutable
    load and a branch — the closure runs untouched. Completed spans carry
    string attributes ({!set_attr} tags the innermost open span, e.g. with
    the cluster's modeled milliseconds next to measured wall time) and
    export as Chrome [trace_event] JSON ({!write_chrome_trace}) so a
    batch's trigger → statement → stage → shuffle breakdown opens directly
    in [chrome://tracing] / [ui.perfetto.dev]. *)

(** {2 Memory-ordering contract (multicore)}

    Counters are striped: each domain increments a cache-line-padded shard
    cell it owns exclusively (shard assignment goes through [Domain.DLS],
    so it is injective by construction), and shard-array growth publishes
    the new array through an [Atomic.t], which establishes the
    happens-before needed for its initialized contents. Consequences:

    - {!Counter.incr}/{!Counter.add} from any number of domains
      concurrently never lose an update and never tear.
    - {!Counter.value} (and {!snapshot}) may be called concurrently with
      increments; the result is a sum of per-domain cells, each a plain
      read, so it can lag in-flight increments but is always a value the
      counter actually passed through per shard. After a synchronization
      point that orders all prior increments before the read —
      [Domain.join], or a {!Divm_par.Par.Pool.run} barrier — the value is
      exact.
    - {!Counter.reset}/{!reset_all} are quiescent-only: call them when no
      other domain is incrementing, or concurrent increments may survive
      the reset.
    - {!Gauge.set}/{!Gauge.value} are sequentially-consistent atomics:
      last-writer-wins, no tearing.
    - {!Histogram.observe} and the span tracer ({!span}, {!set_attr}) are
      {b not} domain-safe: they keep single-writer mutable state and must
      only be driven from one domain (the parallel executors in
      [Divm_runtime]/[Divm_cluster] fall back to their serial paths while
      tracing or profiling is enabled).
    - Instrument registration ([make ~register:true]) is serialized by a
      lock and safe from any domain. *)

module Counter : sig
  type t

  (** [make name] registers (or retrieves) the counter [name] in the global
      registry. [~register:false] creates a private, unregistered counter
      (per-instance accounting, e.g. one runtime's op count). *)
  val make : ?register:bool -> string -> t

  val incr : t -> unit
  val add : t -> int -> unit

  (** Sum over per-domain shards; exact once prior increments
      happen-before the read (see the memory-ordering contract above). *)
  val value : t -> int

  (** Quiescent-only (see the memory-ordering contract above). *)
  val reset : t -> unit

  val name : t -> string
end

module Gauge : sig
  type t

  val make : ?register:bool -> string -> t
  val set : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  (** Bucket upper bounds in seconds; the default spans 100µs–100s
      geometrically. An implicit +inf bucket is always present. *)
  val make : ?register:bool -> ?buckets:float array -> string -> t

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  (** [percentile t p] estimates the [p]-th percentile ([0. <= p <= 100.])
      by linear interpolation inside the bucket containing the rank; the
      first bucket interpolates from 0, the +inf bucket reports the
      largest finite bound. [nan] on an empty histogram. *)
  val percentile : t -> float -> float

  (** Same estimator over raw snapshot arrays (see {!value}). *)
  val percentile_of :
    buckets:float array -> counts:int array -> count:int -> float -> float
end

(** {1 Registry snapshots} *)

type value =
  | VCounter of int
  | VGauge of float
  | VHistogram of {
      buckets : float array;  (** upper bounds, ascending *)
      counts : int array;  (** same length as [buckets] plus +inf last *)
      sum : float;
      count : int;
    }

type snapshot = (string * value) list  (** registration order *)

val snapshot : unit -> snapshot

(** [diff ~later ~earlier]: counters and histogram counts/sums subtract,
    gauges keep [later]'s value; instruments absent from [earlier] pass
    through. If a histogram's bucket bounds changed between the snapshots
    (an instrument re-created with different [~buckets]), per-bucket deltas
    are meaningless: the result keeps [later]'s bounds with all bucket
    counts zeroed and subtracts only [sum]/[count]. *)
val diff : later:snapshot -> earlier:snapshot -> snapshot

val find : snapshot -> string -> value option

(** Counter value by name; 0 when absent or not a counter. *)
val counter_value : snapshot -> string -> int

(** {1 Remote collection (multi-process telemetry)}

    A distributed coordinator merges the registries, profiler slots and
    spans of its worker processes into this process's view. The flag
    below gates the wire traffic; {!ingest} and the remote-span store do
    the merging. *)

(** When true, distributed engines pull telemetry frames from their
    worker processes at stage barriers and on shutdown. Set by the CLI
    layer whenever some consumer of the merged view is active
    ([--metrics]/[--metrics-json]/[--trace]/[--profile]/[--listen]);
    default false, in which case nothing extra crosses the wire. *)
val set_collection : bool -> unit

val collection : unit -> bool

(** [with_labels name labels] appends [labels] to [name]'s Prometheus
    label set (["m{worker=\"2\"}"]), merging with any existing set.
    Values are escaped. [name] is returned unchanged on empty labels. *)
val with_labels : string -> (string * string) list -> string

(** Metric family name: everything before the label set. *)
val base_of : string -> string

(** [ingest ~labels delta] folds a (delta) snapshot from another process
    into this registry under [with_labels name labels]: counters add,
    gauges take the incoming value, histogram buckets merge when the
    layouts agree (the scalar sum/count always merge). Labeled
    instruments are created on first sight and accumulate across
    ingests. *)
val ingest : labels:(string * string) list -> snapshot -> unit

(** Prometheus text exposition format ([# TYPE] comments included). *)
val to_text : snapshot -> string

(** One JSON object per instrument, keyed by metric name; histograms
    include estimated [p50]/[p95]/[p99] (see {!Histogram.percentile}). *)
val to_json : snapshot -> string

(** Reset every registered counter and histogram to zero (gauges keep
    their value). Tests and per-run CLIs use this; long-lived processes
    should prefer {!snapshot} + {!diff}. *)
val reset_all : unit -> unit

(** {1 Span tracing} *)

val tracing : unit -> bool
val set_tracing : bool -> unit

(** [span name f] runs [f] inside a named span. Nesting follows the call
    stack; exceptions still close the span. Disabled tracing means [f] is
    invoked directly. *)
val span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Attach an attribute to the innermost open span (no-op when tracing is
    off or no span is open). *)
val set_attr : string -> string -> unit

type event = {
  ev_name : string;
  ev_start : float;  (** seconds, [Unix.gettimeofday] epoch *)
  ev_dur : float;  (** seconds *)
  ev_depth : int;  (** 0 = top-level *)
  ev_attrs : (string * string) list;
}

(** Completed spans in completion order. *)
val events : unit -> event list

(** Number of currently open spans (0 when balanced). *)
val open_spans : unit -> int

(** Drops completed spans, the open-span stack, and all remote events. *)
val clear_events : unit -> unit

(** [add_remote_events ~pid ~pname ~offset evs] stores spans collected
    from another process for the merged Chrome trace. [offset] is that
    process's clock minus this process's clock (subtracted uniformly at
    export, so a refined estimate can never reorder the source's own
    timeline); repeated calls for the same [pid] append events and keep
    the latest offset. Events must carry the source's own clock. *)
val add_remote_events :
  pid:int -> pname:string -> offset:float -> event list -> unit

(** Stored remote spans: [(pid, process name, offset, events)] per
    process, events in arrival order with uncorrected source-clock
    timestamps. *)
val remote_events : unit -> (int * string * float * event list) list

(** Chrome [trace_event] JSON (an object with a ["traceEvents"] array of
    complete-["X"] events; attributes appear under ["args"]). Local spans
    export under pid 1; remote processes under their own pid with their
    clock offset corrected, plus [process_name] metadata events (only
    when remote spans are present). *)
val chrome_trace_json : unit -> string

val write_chrome_trace : string -> unit

(** {1 JSON helper} *)

(** Escape and quote a string as a JSON literal (shared by the exporters;
    exposed for the CLIs' reports). *)
val json_string : string -> string
