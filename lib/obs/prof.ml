(* Per-statement attribution slots for the profiler (Divm.Profile).

   This lives below runtime/cluster so their compiled closures can charge
   work to a slot without depending on the report layer. Slots are
   resolved to dense integer ids once, at statement-compile time; the
   firing path does plain array additions — no string hashing, no
   Hashtbl, no allocation. *)

type row = {
  r_trigger : string;
  r_label : string;
  r_firings : int;
  r_ops : int;
  r_probes : int;
  r_misses : int;
  r_scanned : int;
  r_svscan : int;
  r_svsel : int;
  r_bytes : int;
  r_wall : float;
}

let enabled_flag = ref false
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* Structure-of-arrays keyed by slot id; grows geometrically. Slot ids
   are stable for the life of the process (compiled closures capture
   them), so [reset] zeroes the tallies but keeps registrations. *)
let cap = ref 0
let n = ref 0
let triggers = ref [||]
let labels = ref [||]
let firings = ref [||]
let ops = ref [||]
let probes = ref [||]
let misses = ref [||]
let scanned = ref [||]
let svscan = ref [||]
let svsel = ref [||]
let bytes = ref [||]
let wall = ref [||]
let ids : (string * string, int) Hashtbl.t = Hashtbl.create 64

let grow () =
  let cap' = if !cap = 0 then 32 else 2 * !cap in
  let gi a = Array.append !a (Array.make (cap' - !cap) 0) in
  let gs a = Array.append !a (Array.make (cap' - !cap) "") in
  triggers := gs triggers;
  labels := gs labels;
  firings := gi firings;
  ops := gi ops;
  probes := gi probes;
  misses := gi misses;
  scanned := gi scanned;
  svscan := gi svscan;
  svsel := gi svsel;
  bytes := gi bytes;
  wall := Array.append !wall (Array.make (cap' - !cap) 0.);
  cap := cap'

let slot ~trigger ~label =
  match Hashtbl.find_opt ids (trigger, label) with
  | Some id -> id
  | None ->
      if !n >= !cap then grow ();
      let id = !n in
      incr n;
      !triggers.(id) <- trigger;
      !labels.(id) <- label;
      Hashtbl.replace ids (trigger, label) id;
      id

let add id ~ops:o ~probes:p ~misses:m ~scanned:s ~svscan:v ~svsel:e ~bytes:b
    ~wall:w =
  let fa = !firings and oa = !ops and pa = !probes in
  let ma = !misses and sa = !scanned and ba = !bytes and wa = !wall in
  let va = !svscan and ea = !svsel in
  Array.unsafe_set fa id (Array.unsafe_get fa id + 1);
  Array.unsafe_set oa id (Array.unsafe_get oa id + o);
  Array.unsafe_set pa id (Array.unsafe_get pa id + p);
  Array.unsafe_set ma id (Array.unsafe_get ma id + m);
  Array.unsafe_set sa id (Array.unsafe_get sa id + s);
  Array.unsafe_set va id (Array.unsafe_get va id + v);
  Array.unsafe_set ea id (Array.unsafe_get ea id + e);
  Array.unsafe_set ba id (Array.unsafe_get ba id + b);
  Array.unsafe_set wa id (Array.unsafe_get wa id +. w)

(* Fold a whole row (e.g. a worker process's slot delta shipped over the
   wire) into the slot registered under (trigger, label) — unlike [add]
   this carries the source's firing count instead of charging one. *)
let merge ~trigger ~label (r : row) =
  let id = slot ~trigger ~label in
  !firings.(id) <- !firings.(id) + r.r_firings;
  !ops.(id) <- !ops.(id) + r.r_ops;
  !probes.(id) <- !probes.(id) + r.r_probes;
  !misses.(id) <- !misses.(id) + r.r_misses;
  !scanned.(id) <- !scanned.(id) + r.r_scanned;
  !svscan.(id) <- !svscan.(id) + r.r_svscan;
  !svsel.(id) <- !svsel.(id) + r.r_svsel;
  !bytes.(id) <- !bytes.(id) + r.r_bytes;
  !wall.(id) <- !wall.(id) +. r.r_wall

let rows () =
  List.init !n (fun id ->
      {
        r_trigger = !triggers.(id);
        r_label = !labels.(id);
        r_firings = !firings.(id);
        r_ops = !ops.(id);
        r_probes = !probes.(id);
        r_misses = !misses.(id);
        r_scanned = !scanned.(id);
        r_svscan = !svscan.(id);
        r_svsel = !svsel.(id);
        r_bytes = !bytes.(id);
        r_wall = !wall.(id);
      })

let reset () =
  Array.fill !firings 0 !cap 0;
  Array.fill !ops 0 !cap 0;
  Array.fill !probes 0 !cap 0;
  Array.fill !misses 0 !cap 0;
  Array.fill !scanned 0 !cap 0;
  Array.fill !svscan 0 !cap 0;
  Array.fill !svsel 0 !cap 0;
  Array.fill !bytes 0 !cap 0;
  Array.fill !wall 0 !cap 0.
