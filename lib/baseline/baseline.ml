open Divm_storage
open Divm_compiler
open Divm_runtime

type engine = Reeval | Classical | Rivm_interp | Rivm

let engine_name = function
  | Reeval -> "re-eval"
  | Classical -> "classical-ivm"
  | Rivm_interp -> "rivm-interpreted"
  | Rivm -> "rivm-specialized"

type impl = Interp of Exec.t | Compiled of Runtime.t

type t = { impl : impl; p : Prog.t }

let create engine ~streams queries =
  match engine with
  | Reeval ->
      let p = Compile.compile_reeval ~streams queries in
      { impl = Interp (Exec.create p); p }
  | Classical ->
      let p = Compile.compile_classical ~streams queries in
      { impl = Interp (Exec.create p); p }
  | Rivm_interp ->
      let p = Compile.compile ~streams queries in
      { impl = Interp (Exec.create p); p }
  | Rivm ->
      let p = Compile.compile ~streams queries in
      { impl = Compiled (Runtime.create p); p }

let load t tables =
  match t.impl with
  | Interp ex -> Exec.load ex tables
  | Compiled rt -> Runtime.load rt tables

let timed f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let apply_batch t ~rel batch =
  match t.impl with
  | Interp ex -> timed (fun () -> Exec.apply_batch ex ~rel batch)
  | Compiled rt -> (Runtime.apply_batch rt ~rel batch).Runtime.wall

let apply_single t ~rel tup m =
  match t.impl with
  | Compiled rt -> (Runtime.apply_single rt ~rel tup m).Runtime.wall
  | Interp ex ->
      timed (fun () ->
          Exec.apply_batch ex ~rel (Gmr.of_list [ (tup, m) ]))

let result t q =
  match t.impl with
  | Interp ex -> Exec.result ex q
  | Compiled rt -> Runtime.result rt q

let prog t = t.p
