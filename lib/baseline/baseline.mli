(** The comparison engines of §6 under one interface.

    - [Reeval] — recompute each query from materialized base tables on
      every batch (the paper's "Re-eval (PostgreSQL)" column);
    - [Classical] — first-order incremental view maintenance: one delta
      query per base relation, joined against materialized base tables,
      with no recursive materialization ("IVM (PostgreSQL)");
    - [Rivm_interp] — recursive IVM executed by the generic interpreter
      (per-statement hash-join evaluation, no specialization);
    - [Rivm] — recursive IVM compiled to specialized closures over indexed
      record pools (the paper's generated C++).

    The two "PostgreSQL" stand-ins run through the interpreter, whose
    per-evaluation hash builds mirror a conventional engine's per-statement
    join processing (see DESIGN.md). *)

open Divm_ring
open Divm_storage
open Divm_calc

type engine = Reeval | Classical | Rivm_interp | Rivm

val engine_name : engine -> string

type t

val create :
  engine ->
  streams:(string * Schema.t) list ->
  (string * Calc.expr) list ->
  t

(** Bulk initial load of base-table contents (computes every materialized
    view once from scratch). *)
val load : t -> (string * Gmr.t) list -> unit

(** Process one batch; returns elapsed wall-clock seconds. *)
val apply_batch : t -> rel:string -> Gmr.t -> float

(** Single-tuple fast path (only meaningful for [Rivm]; other engines fall
    back to a size-one batch). *)
val apply_single : t -> rel:string -> Vtuple.t -> float -> float

val result : t -> string -> Gmr.t
val prog : t -> Divm_compiler.Prog.t
