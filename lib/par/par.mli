(** Dependency-free domain pool for batch-parallel execution (no
    domainslib): worker domains are spawned once and reused, work arrives
    as an array of task closures claimed from a shared chunked queue, and
    {!Pool.run} is a barrier — it returns only after every task has
    finished, which establishes happens-before from everything the tasks
    wrote to everything the caller reads next (this is the
    synchronization point the {!Divm_obs.Obs} counter contract relies
    on).

    Workers spin briefly for new work (cheap hand-off between the
    back-to-back trigger firings of a batch stream), then block on a
    condition variable, so an idle pool costs nothing.

    The pool is deliberately minimal: no futures, no nesting, no work
    stealing beyond the shared claim counter. That is all the two users
    need — the local runtime fans one batch's row ranges out and merges,
    and the cluster simulator runs its per-worker closure arrays. *)

module Pool : sig
  type t

  (** [create ~domains] spawns [domains - 1] worker domains ([domains >= 1];
      the caller of {!run} is the remaining participant). *)
  val create : domains:int -> t

  (** Participants: spawned workers + the calling domain. *)
  val domains : t -> int

  (** Spawn additional workers so [domains t] reaches at least [domains]. *)
  val ensure : t -> domains:int -> unit

  (** [run t tasks] executes every task exactly once (workers and the
      calling domain claim indices from a shared counter) and returns when
      all have finished. If any task raised, the first exception captured
      is re-raised in the caller after the barrier. Not reentrant: must
      not be called from inside a task, and only one [run] may be active
      per pool at a time (the runtime and cluster drive it from the single
      applying domain). *)
  val run : t -> (unit -> unit) array -> unit

  (** Stop and join all workers. The pool must be idle. Idempotent. *)
  val shutdown : t -> unit
end

(** Process-wide shared pool, spawned on first use and grown (never
    shrunk) to the largest [domains] ever requested; registered with
    [at_exit] so worker domains are joined before the process exits.
    Every [Runtime.create ?domains] and [Cluster.create ?domains] shares
    this pool, so requesting [domains:4] twice costs three spawned
    domains total, once. *)
val get : domains:int -> Pool.t

(** Worker domains currently alive in the shared pool (0 until {!get} has
    spawned any). [Unix.fork] is only safe while this is 0 — forking a
    multi-domain OCaml 5 process leaves the child's runtime waiting on
    domains that no longer exist; {!Divm_node.Node} consults this before
    choosing fork-based worker spawning. *)
val spawned_domains : unit -> int

(** Default domain count for CLIs and [create ?domains] callers that were
    given nothing explicit: the [DIVM_DOMAINS] environment variable when
    set to a positive integer, else 1 (serial). *)
val default_domains : unit -> int
