(* Spawn-once domain pool. Stdlib only: Domain + Atomic + Mutex/Condition.

   Synchronization design, kept small enough to audit:

   - Each [run] builds a fresh [batch] record (task array + claim counter
     + completion counter) and publishes it by storing it in [cur] and
     bumping the SC generation counter [gen]. A worker that observes the
     new generation therefore also observes the fully-built batch
     (sequentially-consistent atomics give happens-before).
   - Tasks are claimed with [Atomic.fetch_and_add] on the batch's own
     counter, so a straggler still waking from a previous generation can
     only ever touch its own (exhausted) batch, never steal from or
     corrupt the next one.
   - Completion is an atomic count-up; the caller participates in
     draining, then spins briefly and finally blocks on [donec]. Workers
     broadcast [donec] after pushing the count to the total. Because only
     the caller starts generations, the task array a worker reads in its
     epilogue is still the one it drained.
   - Exceptions are captured under the mutex (first one wins) and
     re-raised in the caller after the barrier, so a failing task cannot
     hang or kill a worker domain. *)

type batch = {
  tasks : (unit -> unit) array;
  next : int Atomic.t; (* claim counter *)
  fin : int Atomic.t; (* completed-task count *)
}

let empty_batch = { tasks = [||]; next = Atomic.make 0; fin = Atomic.make 0 }

module Pool = struct
  type t = {
    mutable workers : unit Domain.t list;
    mutable nworkers : int;
    m : Mutex.t;
    work : Condition.t; (* signalled: new generation or stop *)
    donec : Condition.t; (* signalled: a batch completed *)
    gen : int Atomic.t;
    mutable cur : batch;
    stop : bool Atomic.t;
    mutable err : exn option;
  }

  let domains t = t.nworkers + 1

  (* Iterations of [cpu_relax] before falling back to the condvar. Long
     enough to catch the next firing of a hot batch stream, short enough
     not to burn a core while idle (or to fight the caller for the only
     core on a single-CPU host). *)
  let spin_budget = 2_000

  let drain t b =
    let n = Array.length b.tasks in
    let rec loop () =
      let i = Atomic.fetch_and_add b.next 1 in
      if i < n then begin
        (try b.tasks.(i) ()
         with e ->
           Mutex.lock t.m;
           if t.err = None then t.err <- Some e;
           Mutex.unlock t.m);
        Atomic.incr b.fin;
        loop ()
      end
    in
    loop ();
    (* wake a caller blocked on the barrier once the batch is complete *)
    if Atomic.get b.fin >= n then begin
      Mutex.lock t.m;
      Condition.broadcast t.donec;
      Mutex.unlock t.m
    end

  let worker t () =
    let mygen = ref (Atomic.get t.gen) in
    let running = ref true in
    while !running do
      (* wait for the next generation: spin, then block *)
      let state = ref `Spin in
      let tries = ref 0 in
      while !state = `Spin do
        if Atomic.get t.stop then state := `Stop
        else begin
          let g = Atomic.get t.gen in
          if g <> !mygen then begin
            mygen := g;
            state := `Work
          end
          else begin
            incr tries;
            if !tries >= spin_budget then begin
              Mutex.lock t.m;
              while
                (not (Atomic.get t.stop)) && Atomic.get t.gen = !mygen
              do
                Condition.wait t.work t.m
              done;
              Mutex.unlock t.m
            end
            else Domain.cpu_relax ()
          end
        end
      done;
      if !state = `Stop then running := false else drain t t.cur
    done

  let add_workers t k =
    for _ = 1 to k do
      t.workers <- Domain.spawn (fun () -> worker t ()) :: t.workers
    done;
    t.nworkers <- t.nworkers + k

  let create ~domains =
    if domains < 1 then invalid_arg "Par.Pool.create: domains must be >= 1";
    let t =
      {
        workers = [];
        nworkers = 0;
        m = Mutex.create ();
        work = Condition.create ();
        donec = Condition.create ();
        gen = Atomic.make 0;
        cur = empty_batch;
        stop = Atomic.make false;
        err = None;
      }
    in
    add_workers t (domains - 1);
    t

  let ensure t ~domains =
    if domains > t.nworkers + 1 then add_workers t (domains - t.nworkers - 1)

  let run t tasks =
    let n = Array.length tasks in
    if n = 0 then ()
    else if n = 1 then tasks.(0) ()
    else begin
      let b = { tasks; next = Atomic.make 0; fin = Atomic.make 0 } in
      t.err <- None;
      t.cur <- b;
      Atomic.incr t.gen;
      Mutex.lock t.m;
      Condition.broadcast t.work;
      Mutex.unlock t.m;
      drain t b;
      (* barrier: wait for workers still finishing their claimed tasks *)
      let tries = ref 0 in
      while Atomic.get b.fin < n do
        incr tries;
        if !tries >= spin_budget then begin
          Mutex.lock t.m;
          while Atomic.get b.fin < n do
            Condition.wait t.donec t.m
          done;
          Mutex.unlock t.m
        end
        else Domain.cpu_relax ()
      done;
      match t.err with
      | Some e ->
          t.err <- None;
          raise e
      | None -> ()
    end

  let shutdown t =
    Atomic.set t.stop true;
    Mutex.lock t.m;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    List.iter Domain.join t.workers;
    t.workers <- [];
    t.nworkers <- 0
end

let global = ref None
let global_lock = Mutex.create ()

let get ~domains =
  Mutex.lock global_lock;
  let p =
    match !global with
    | Some p ->
        Pool.ensure p ~domains;
        p
    | None ->
        let p = Pool.create ~domains in
        global := Some p;
        at_exit (fun () ->
            match !global with
            | Some p ->
                global := None;
                Pool.shutdown p
            | None -> ());
        p
  in
  Mutex.unlock global_lock;
  p

let spawned_domains () =
  Mutex.lock global_lock;
  let n = match !global with Some p -> Pool.domains p - 1 | None -> 0 in
  Mutex.unlock global_lock;
  n

let default_domains () =
  match Sys.getenv_opt "DIVM_DOMAINS" with
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some d when d >= 1 -> d
    | _ -> 1)
  | None -> 1
