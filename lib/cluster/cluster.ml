open Divm_ring
open Divm_storage
open Divm_compiler
open Divm_dist
open Divm_runtime
module Obs = Divm_obs.Obs
module Prof = Divm_obs.Prof
module Par = Divm_par.Par

(* Registry instruments. [apply_batch]'s metrics record is a view over
   these: each batch is accounted into the counters first and the record
   is read back as the deltas, so `--metrics` totals and per-batch records
   can never disagree. *)
let m_bytes_shuffled = Obs.Counter.make "divm_cluster_bytes_shuffled_total"
let m_stages = Obs.Counter.make "divm_cluster_stages_total"
let m_batches = Obs.Counter.make "divm_cluster_batches_total"
let m_worker_ops = Obs.Counter.make "divm_cluster_max_worker_ops_total"
let m_worker_ops_all = Obs.Counter.make "divm_cluster_worker_ops_total"
let m_driver_ops = Obs.Counter.make "divm_cluster_driver_ops_total"

let h_latency =
  Obs.Histogram.make "divm_cluster_batch_latency_seconds" (* modeled *)

let g_workers = Obs.Gauge.make "divm_cluster_workers"
let g_last_latency = Obs.Gauge.make "divm_cluster_last_latency_seconds"
let g_max_bytes_per_worker = Obs.Gauge.make "divm_cluster_max_bytes_per_worker"

type config = {
  workers : int;
  domains : int option;
  cost : Costmodel.t;
}

let config ?(workers = 50) ?domains ?(cost = Costmodel.default) () =
  { workers; domains; cost }

let default_config = config ()

type metrics = {
  latency : float;
  stages : int;
  bytes_shuffled : int;
  max_bytes_per_worker : int;
  max_worker_ops : int;
  driver_ops : int;
}

type transfer = {
  tname : string;
  tkind : Dprog.transfer_kind;
  key : int array;
  source : string;
  tslot : int; (* profiler slot: shuffled bytes are charged here *)
}

type pstmt =
  | PDriver of string * int * (unit -> unit)
      (* span label, profiler slot, compiled stmt *)
  | PWorkers of string * int * (unit -> unit) array
  | PTransfer of transfer

type pblock = { pmode : Dprog.mode; pstmts : pstmt list }

type t = {
  cfg : config;
  dprog : Dprog.t;
  driver : Runtime.t;
  nodes : Runtime.t array;
  plans : (string * pblock list) list;
  par : Par.Pool.t option;
  delta_at_workers : bool;
  worker_ops_gauges : Obs.Gauge.t array;
      (* per-worker ops of the last batch, labeled Prometheus-style *)
}

let workers t = t.cfg.workers

let create ?(config = default_config) ?domains (dp : Dprog.t) =
  (* Explicit precedence: the config record pins the domain count; the
     optional argument is a convenience for callers without a config. Both
     given and disagreeing is a caller bug, not a silent override. *)
  let domains =
    match (config.domains, domains) with
    | Some a, Some b when a <> b ->
        invalid_arg
          (Printf.sprintf
             "Cluster.create: contradictory domain counts (config.domains=%d \
              vs ~domains:%d)"
             a b)
    | Some d, _ | None, Some d -> max 1 d
    | None, None -> Par.default_domains ()
  in
  (* The runtimes never fire whole triggers themselves, but the compute
     statements of the distributed program (with their transfer-renamed
     map references) must be visible to the access-pattern analysis so
     the pools get their slice indexes. Simulated nodes run serially
     within themselves ([domains:1]): the cluster's own parallelism is one
     pool task per worker node, and nesting pools is not supported. *)
  let rprog = Dprog.compute_prog dp in
  let driver = Runtime.create ~domains:1 rprog in
  let nodes =
    Array.init config.workers (fun _ -> Runtime.create ~domains:1 rprog)
  in
  let compile_block trigger (b : Dprog.block) =
    {
      pmode = b.bmode;
      pstmts =
        List.map
          (fun d ->
            match d with
            | Dprog.Transfer { tname; tkind; key; source } ->
                PTransfer
                  {
                    tname;
                    tkind;
                    key;
                    source;
                    tslot = Prof.slot ~trigger ~label:("transfer:" ^ tname);
                  }
            | Dprog.Compute s -> (
                match Dprog.mode_of dp.locs (Dprog.Compute s) with
                | Dprog.MLocal ->
                    let label = "driver:" ^ s.target in
                    PDriver
                      ( label,
                        Prof.slot ~trigger ~label,
                        List.hd (Runtime.compile_stmts driver [ s ]) )
                | Dprog.MDist ->
                    let label = "stmt:" ^ s.target in
                    PWorkers
                      ( label,
                        Prof.slot ~trigger ~label,
                        Array.map
                          (fun rt -> List.hd (Runtime.compile_stmts rt [ s ]))
                          nodes )))
          b.bstmts;
    }
  in
  let plans =
    List.map
      (fun (tr : Dprog.dtrigger) ->
        (tr.drelation, List.map (compile_block tr.drelation) tr.blocks))
      dp.dtriggers
  in
  (* Batches live at the workers when the delta pre-aggregations do. *)
  let delta_at_workers =
    List.exists
      (fun (m : Prog.map_decl) ->
        m.mkind = Prog.Transient
        && Divm_calc.Calc.has_deltas m.definition
        && Loc.find dp.locs m.mname <> Loc.Local)
      dp.base.maps
  in
  let worker_ops_gauges =
    Array.init config.workers (fun i ->
        Obs.Gauge.make (Printf.sprintf "divm_worker_ops{worker=\"%d\"}" i))
  in
  {
    cfg = config;
    dprog = dp;
    driver;
    nodes;
    plans;
    par = (if domains > 1 then Some (Par.get ~domains) else None);
    delta_at_workers;
    worker_ops_gauges;
  }

(* ------------------------------------------------------------------ *)
(* Transfers                                                           *)
(* ------------------------------------------------------------------ *)

type net = {
  mutable total_bytes : int;
  mutable into_node : int array; (* bytes received per worker since reset *)
  mutable into_driver : int;
}

let tuple_bytes = Costmodel.tuple_bytes

(* Execute one transfer; returns (total network bytes, max bytes into one
   node, serialization bytes at sources). *)
let run_transfer t net tr =
  let src_loc = Loc.find t.dprog.locs tr.source in
  let dst_loc = Loc.find t.dprog.locs tr.tname in
  let w = t.cfg.workers in
  (* (origin, contents) pairs; origin -1 = driver, -2 = replicated *)
  let sources =
    match src_loc with
    | Loc.Local -> [ (-1, Runtime.map_contents t.driver tr.source) ]
    | Loc.Replicated -> [ (-2, Runtime.map_contents t.nodes.(0) tr.source) ]
    | Loc.Dist _ | Loc.Random ->
        Array.to_list
          (Array.mapi (fun i rt -> (i, Runtime.map_contents rt tr.source)) t.nodes)
  in
  (* clear destinations *)
  (match dst_loc with
  | Loc.Local -> Runtime.clear_map t.driver tr.tname
  | _ -> Array.iter (fun rt -> Runtime.clear_map rt tr.tname) t.nodes);
  let deliver_worker origin wi tup m =
    Runtime.add_to_map t.nodes.(wi) tr.tname tup m;
    if origin <> wi then begin
      let b = tuple_bytes tup in
      net.total_bytes <- net.total_bytes + b;
      net.into_node.(wi) <- net.into_node.(wi) + b
    end
  in
  let deliver_driver origin tup m =
    Runtime.add_to_map t.driver tr.tname tup m;
    if origin <> -1 then begin
      let b = tuple_bytes tup in
      net.total_bytes <- net.total_bytes + b;
      net.into_driver <- net.into_driver + b
    end
  in
  let ser_bytes = ref 0 in
  List.iter
    (fun (origin, contents) ->
      Gmr.iter
        (fun tup m ->
          ser_bytes := !ser_bytes + tuple_bytes tup;
          match tr.tkind with
          | Dprog.Gather -> deliver_driver origin tup m
          | Dprog.Scatter | Dprog.Repart ->
              if Array.length tr.key = 0 then
                for wi = 0 to w - 1 do
                  deliver_worker origin wi tup m
                done
              else
                let sub = Vtuple.project tup tr.key in
                deliver_worker origin (Vtuple.hash sub mod w) tup m)
        contents)
    sources;
  !ser_bytes

(* ------------------------------------------------------------------ *)
(* Batch execution                                                     *)
(* ------------------------------------------------------------------ *)

let apply_batch t ~rel batch =
  let w = t.cfg.workers in
  (* registry state before this batch: the returned record is the delta *)
  let bytes0 = Obs.Counter.value m_bytes_shuffled in
  let stages0 = Obs.Counter.value m_stages in
  let wops0 = Obs.Counter.value m_worker_ops in
  let dops0 = Obs.Counter.value m_driver_ops in
  Obs.span ("cluster:" ^ rel) @@ fun () ->
  (* distribute the incoming batch *)
  if t.delta_at_workers then begin
    let shares = Array.init w (fun _ -> Gmr.create ()) in
    let i = ref 0 in
    Gmr.iter
      (fun tup m ->
        Gmr.add shares.(!i mod w) tup m;
        incr i)
      batch;
    Array.iteri (fun wi rt -> Runtime.load_batch rt ~rel shares.(wi)) t.nodes;
    Runtime.load_batch t.driver ~rel (Gmr.create ())
  end
  else begin
    Runtime.load_batch t.driver ~rel batch;
    Array.iter (fun rt -> Runtime.load_batch rt ~rel (Gmr.create ())) t.nodes
  end;
  let blocks =
    match List.assoc_opt rel t.plans with
    | Some b -> b
    | None -> invalid_arg ("Cluster.apply_batch: no trigger for " ^ rel)
  in
  let net = { total_bytes = 0; into_node = Array.make w 0; into_driver = 0 } in
  let latency = ref 0. in
  let stages = ref 0 in
  let worker_ops = Array.make w 0 in
  let driver_ops0 = Runtime.ops t.driver in
  let pending_bytes = ref 0 in
  (* bytes into the busiest node since the last distributed stage, for the
     straggler factor *)
  let pending_max_into = ref 0 in
  List.iter
    (fun b ->
      match b.pmode with
      | Dprog.MLocal ->
          List.iter
            (fun ps ->
              match ps with
              | PDriver (lbl, slot, f) ->
                  Runtime.run_attributed t.driver ~label:lbl ~slot f
              | PTransfer tr ->
                  Obs.span ("transfer:" ^ tr.tname) (fun () ->
                      let wall0 = Unix.gettimeofday () in
                      let before_max =
                        Array.fold_left max net.into_driver net.into_node
                      in
                      let bytes_before = net.total_bytes in
                      let ser = run_transfer t net tr in
                      if Prof.enabled () then
                        Prof.add tr.tslot ~ops:0 ~probes:0 ~misses:0 ~scanned:0
                          ~svscan:0 ~svsel:0
                          ~bytes:(net.total_bytes - bytes_before)
                          ~wall:(Unix.gettimeofday () -. wall0);
                      let after_max =
                        Array.fold_left max net.into_driver net.into_node
                      in
                      pending_bytes := !pending_bytes + ser;
                      pending_max_into :=
                        max !pending_max_into (after_max - before_max);
                      let dt =
                        Costmodel.transfer_latency t.cfg.cost ~ser_bytes:ser
                          ~max_into:(after_max - before_max)
                      in
                      latency := !latency +. dt;
                      if Obs.tracing () then begin
                        Obs.set_attr "modeled_ms"
                          (Printf.sprintf "%.6f" (dt *. 1e3));
                        Obs.set_attr "kind"
                          (match tr.tkind with
                          | Dprog.Gather -> "gather"
                          | Dprog.Scatter -> "scatter"
                          | Dprog.Repart -> "repart");
                        Obs.set_attr "bytes"
                          (string_of_int (net.total_bytes - bytes_before))
                      end)
              | PWorkers _ -> assert false)
            b.pstmts
      | Dprog.MDist ->
          incr stages;
          let stage_lbl =
            if Obs.tracing () then Printf.sprintf "stage:%d" !stages
            else ""
          in
          Obs.span stage_lbl (fun () ->
              (* Every simulated node owns disjoint state (its own runtime,
                 pools, batch partitions), so the per-worker closure arrays
                 are embarrassingly parallel. Each task writes only its own
                 [deltas] cell; the modeled time is computed afterwards by
                 a serial reduction over [deltas], which is a pure function
                 of the per-worker op counts — so modeled latency and
                 shuffled bytes are bit-identical whether the stage ran on
                 one domain or many. *)
              let deltas = Array.make w 0 in
              let run_worker wi rt =
                let o0 = Runtime.ops rt in
                List.iter
                  (fun ps ->
                    match ps with
                    | PWorkers (lbl, slot, fs) ->
                        Runtime.run_attributed rt ~label:lbl ~slot fs.(wi)
                    | PDriver _ | PTransfer _ -> assert false)
                  b.pstmts;
                deltas.(wi) <- Runtime.ops rt - o0
              in
              (match t.par with
              | Some pl
                when (not (Prof.enabled ()))
                     && (not (Obs.tracing ()))
                     && not (Trace.enabled ()) ->
                  Par.Pool.run pl
                    (Array.mapi (fun wi rt () -> run_worker wi rt) t.nodes)
              | _ ->
                  Array.iteri
                    (fun wi rt ->
                      if Obs.tracing () then
                        Obs.span (Printf.sprintf "worker:%d" wi) (fun () ->
                            run_worker wi rt)
                      else run_worker wi rt)
                    t.nodes);
              let max_ops = ref 0 in
              Array.iteri
                (fun wi d ->
                  worker_ops.(wi) <- worker_ops.(wi) + d;
                  max_ops := max !max_ops d)
                deltas;
              Obs.Counter.add m_worker_ops !max_ops;
              let dt =
                Costmodel.stage_latency t.cfg.cost ~workers:w ~max_ops:!max_ops
                  ~pending_max_into:!pending_max_into
              in
              pending_bytes := 0;
              pending_max_into := 0;
              latency := !latency +. dt;
              if Obs.tracing () then begin
                Obs.set_attr "modeled_ms" (Printf.sprintf "%.6f" (dt *. 1e3));
                Obs.set_attr "max_worker_ops" (string_of_int !max_ops);
                Obs.set_attr "workers" (string_of_int w)
              end))
    blocks;
  (* account the batch into the registry, then read the record back *)
  Obs.Counter.add m_bytes_shuffled net.total_bytes;
  Obs.Counter.add m_stages !stages;
  Obs.Counter.incr m_batches;
  Obs.Counter.add m_driver_ops (Runtime.ops t.driver - driver_ops0);
  Obs.Counter.add m_worker_ops_all (Array.fold_left ( + ) 0 worker_ops);
  Obs.Histogram.observe h_latency !latency;
  Obs.Gauge.set g_workers (float_of_int w);
  Obs.Gauge.set g_last_latency !latency;
  Obs.Gauge.set g_max_bytes_per_worker
    (float_of_int (Array.fold_left max 0 net.into_node));
  Array.iteri
    (fun wi g -> Obs.Gauge.set g (float_of_int worker_ops.(wi)))
    t.worker_ops_gauges;
  if Obs.tracing () then begin
    Obs.set_attr "modeled_latency_ms" (Printf.sprintf "%.6f" (!latency *. 1e3));
    Obs.set_attr "stages" (string_of_int !stages);
    Obs.set_attr "bytes_shuffled" (string_of_int net.total_bytes);
    Obs.set_attr "tuples" (string_of_int (Gmr.cardinal batch))
  end;
  {
    latency = !latency;
    stages = Obs.Counter.value m_stages - stages0;
    bytes_shuffled = Obs.Counter.value m_bytes_shuffled - bytes0;
    max_bytes_per_worker = Array.fold_left max 0 net.into_node;
    max_worker_ops = Obs.Counter.value m_worker_ops - wops0;
    driver_ops = Obs.Counter.value m_driver_ops - dops0;
  }

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)
(* ------------------------------------------------------------------ *)

let map_contents t name =
  match Loc.find t.dprog.locs name with
  | Loc.Local -> Runtime.map_contents t.driver name
  | Loc.Replicated -> Runtime.map_contents t.nodes.(0) name
  | Loc.Dist _ | Loc.Random ->
      let out = Gmr.create () in
      Array.iter
        (fun rt -> Gmr.union_into out (Runtime.map_contents rt name))
        t.nodes;
      out

let result t qname =
  match List.assoc_opt qname t.dprog.base.queries with
  | Some m -> map_contents t m
  | None -> invalid_arg ("Cluster.result: unknown query " ^ qname)

(* Storage self-metrics for the driver and one representative worker
   (partitions are symmetric modulo hashing skew). *)
let storage_stats t =
  List.map
    (fun (n, s) -> ("driver/" ^ n, s))
    (Runtime.storage_stats t.driver)
  @
  if t.cfg.workers = 0 then []
  else
    List.map
      (fun (n, s) -> ("w0/" ^ n, s))
      (Runtime.storage_stats t.nodes.(0))

(* ------------------------------------------------------------------ *)
(* Fault tolerance                                                     *)
(* ------------------------------------------------------------------ *)

module Checkpoint = struct
  (* node -> (map name -> contents); index 0 is the driver, 1..W workers *)
  type snapshot = (string * (Vtuple.t * float) list) list array

  let save_file (s : snapshot) path =
    let oc = open_out_bin path in
    Marshal.to_channel oc s [];
    close_out oc

  let load_file path : snapshot =
    let ic = open_in_bin path in
    let s = (Marshal.from_channel ic : snapshot) in
    close_in ic;
    s

  let byte_size (s : snapshot) =
    Array.fold_left
      (fun acc node ->
        List.fold_left
          (fun acc (_, entries) ->
            List.fold_left
              (fun acc (tup, _) -> acc + Vtuple.byte_size tup + 8)
              acc entries)
          acc node)
      0 s
end

let snapshot_node rt maps =
  List.filter_map
    (fun (m : Prog.map_decl) ->
      match m.mkind with
      | Prog.Transient -> None
      | _ -> Some (m.mname, Gmr.to_list (Runtime.map_contents rt m.mname)))
    maps

let checkpoint t =
  let maps = t.dprog.base.maps in
  let snap =
    Array.init
      (1 + t.cfg.workers)
      (fun i ->
        if i = 0 then snapshot_node t.driver maps
        else snapshot_node t.nodes.(i - 1) maps)
  in
  (* Nodes serialize their partitions in parallel; the checkpoint barrier
     costs one sync round plus the slowest node's serialization. *)
  let max_node_bytes =
    Array.fold_left
      (fun acc node ->
        max acc
          (List.fold_left
             (fun a (_, entries) ->
               List.fold_left
                 (fun a (tup, _) -> a + Vtuple.byte_size tup + 8)
                 a entries)
             0 node))
      0 snap
  in
  let latency =
    Costmodel.checkpoint_latency t.cfg.cost ~workers:t.cfg.workers
      ~max_node_bytes
  in
  (snap, latency)

let restore_node rt node =
  List.iter
    (fun (name, entries) ->
      Runtime.clear_map rt name;
      List.iter (fun (tup, m) -> Runtime.add_to_map rt name tup m) entries)
    node

let restore t snap =
  restore_node t.driver snap.(0);
  Array.iteri (fun i rt -> restore_node rt snap.(i + 1)) t.nodes

let fail_worker t wi =
  List.iter
    (fun (m : Prog.map_decl) ->
      match m.mkind with
      | Prog.Transient -> ()
      | _ -> Runtime.clear_map t.nodes.(wi) m.mname)
    t.dprog.base.maps

let check_replicas t =
  List.iter
    (fun (m : Prog.map_decl) ->
      match Loc.find t.dprog.locs m.mname with
      | Loc.Replicated ->
          let ref_contents = Runtime.map_contents t.nodes.(0) m.mname in
          Array.iteri
            (fun wi rt ->
              if
                wi > 0
                && not (Gmr.equal ref_contents (Runtime.map_contents rt m.mname))
              then
                failwith
                  (Printf.sprintf "Cluster.check_replicas: %s diverges on worker %d"
                     m.mname wi))
            t.nodes
      | _ -> ())
    t.dprog.base.maps
