(** Simulated synchronous driver/worker cluster (the Spark substitute, cf.
    DESIGN.md).

    Real execution, modeled time. The simulator holds one specialized
    runtime per worker plus one for the driver, executes every block of the
    distributed program on real partitioned data, and counts the work: per
    worker elementary operations per stage, bytes moved per transfer. A cost
    model calibrated against the paper's §6.2 measurements converts the
    counts into latency:

    - per distributed stage: [sync_base + sync_per_worker·W] (driver-worker
      coordination; the paper's Q6 measures 65 ms at 50 workers and 386 ms
      at 1000) plus [max_worker_ops · per_op],
    - per transfer: [ser_per_byte · total_bytes / W_effective] +
      [max bytes into one node / bandwidth],
    - driver statements: [driver_ops · per_op].

    Straggler variability is modeled as a deterministic multiplicative
    factor on the slowest worker, growing with the data shuffled per stage
    (§6.2.1 observes 1.5–3x stage prolongation on shuffle-heavy queries). *)

open Divm_storage
open Divm_dist

type config = {
  workers : int;  (** simulated worker nodes *)
  domains : int option;
      (** execution domains for the stage fan-out; [None] defers to the
          [?domains] argument of {!create}, then [DIVM_DOMAINS]. When both
          the record and the argument pin a count they must agree —
          {!create} raises [Invalid_argument] on contradiction instead of
          silently preferring one. *)
  cost : Costmodel.t;
      (** the latency model (calibrated defaults: {!Costmodel.default}) *)
}

(** Calibrated to the paper's cluster (see module doc). 50 workers. *)
val default_config : config

val config :
  ?workers:int -> ?domains:int -> ?cost:Costmodel.t -> unit -> config

(** Per-batch cost record. Since the observability layer this is a view
    over the {!Divm_obs.Obs} registry: every batch is first accounted into
    the global counters ([divm_cluster_bytes_shuffled_total],
    [divm_cluster_stages_total], …) and the record reports the deltas, so
    summing per-batch records always matches the registry totals printed
    by [--metrics]. *)
type metrics = {
  latency : float;  (** modeled end-to-end seconds for the batch *)
  stages : int;
  bytes_shuffled : int;  (** total over the network *)
  max_bytes_per_worker : int;
  max_worker_ops : int;  (** summed over stages *)
  driver_ops : int;
}

type t

(** [domains] (precedence: [config.domains], else [?domains], else the
    [DIVM_DOMAINS] environment variable, else 1 — contradictory explicit
    values raise [Invalid_argument]) runs each distributed stage's
    per-worker closures as tasks on the
    shared {!Divm_par.Par} pool — simulated nodes own disjoint runtimes,
    so a stage is embarrassingly parallel. The cost model is evaluated by
    a serial reduction over the per-worker op counts after the barrier,
    so modeled latency, stage counts, and shuffled bytes are bit-identical
    at any domain count. While the profiler, span tracer, or cachesim
    sink is enabled, stages run serially (those observers are
    single-writer; see {!Divm_obs.Obs}'s memory-ordering contract). *)
val create : ?config:config -> ?domains:int -> Dprog.t -> t

val workers : t -> int

(** Process one batch through the trigger of [rel]; batches are partitioned
    across the workers like the paper's experiments (each worker receives a
    random share) unless the program was compiled with deltas at the
    driver.

    Under [Obs.set_tracing true] the batch produces a [cluster:rel] span
    whose [stage:N] and [transfer:NAME] children each carry a [modeled_ms]
    attribute; those attributes sum exactly to [latency] (driver
    statements execute for real but contribute no modeled latency, as in
    the cost model above). Wall time is the span duration itself, so both
    clocks travel in one trace. *)
val apply_batch : t -> rel:string -> Gmr.t -> metrics

(** Assembled global contents of a map (driver + all worker partitions). *)
val map_contents : t -> string -> Gmr.t

val result : t -> string -> Gmr.t

(** Per-pool storage self-metrics for the driver (["driver/…"]) and one
    representative worker (["w0/…"]); partitions are symmetric modulo
    hashing skew. Cold path. *)
val storage_stats : t -> (string * Divm_storage.Pool.stats) list

(** Consistency check: replicated maps hold identical contents on every
    worker. Raises [Failure] when violated. *)
val check_replicas : t -> unit

(** {1 Fault tolerance}

    §4: "Using data checkpointing, we can periodically save intermediate
    state to reliable storage in order to shorten recovery time." A
    checkpoint snapshots every map on the driver and all workers; recovery
    rolls the whole cluster back to it, after which the missed batches are
    replayed. [checkpoint] returns the modeled time the synchronous
    checkpoint adds to the processing pipeline. *)

module Checkpoint : sig
  type snapshot

  (** Persist to / read from a file (reliable-storage stand-in). *)
  val save_file : snapshot -> string -> unit

  val load_file : string -> snapshot

  (** Serialized size in bytes. *)
  val byte_size : snapshot -> int
end

(** Snapshot the full cluster state; returns the snapshot and the modeled
    checkpointing latency (serialization of every node's state in parallel,
    bounded by the slowest node). *)
val checkpoint : t -> Checkpoint.snapshot * float

(** Roll every node back to the snapshot (e.g. after [fail_worker]). *)
val restore : t -> Checkpoint.snapshot -> unit

(** Simulate a worker crash: its partitions are lost. Subsequent results
    are incorrect until [restore] + replay. *)
val fail_worker : t -> int -> unit
