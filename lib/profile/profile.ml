open Divm_compiler
open Divm_storage
module Obs = Divm_obs.Obs
module Prof = Divm_obs.Prof
module Patterns = Divm_runtime.Patterns
module Runtime = Divm_runtime.Runtime
module Dprog = Divm_dist.Dprog
module Loc = Divm_dist.Loc

(* Profiler controls, re-exported so front ends only need this module. *)
let enabled = Prof.enabled
let set_enabled = Prof.set_enabled
let reset = Prof.reset

(* ------------------------------------------------------------------ *)
(* Static plans (EXPLAIN)                                              *)
(* ------------------------------------------------------------------ *)

type access = {
  a_name : string;
  a_delta : bool;  (** reads the update batch, not a materialized map *)
  a_path : Patterns.path;
  a_index : int option;
}

type stmt_plan = {
  sp_trigger : string;
  sp_label : string;
  sp_target : string;
  sp_op : string;
  sp_columnar : bool;
  sp_selvec : int;
      (** filters compiled to selection-vector kernels (columnar scans
          into packed survivor index vectors) *)
  sp_rowwise : int;
      (** filters left on the per-row closure path (dynamic predicates) *)
  sp_block : int option;
  sp_stage : int option;
  sp_loc : string option;
  sp_accesses : access list;
}

type transfer_plan = {
  tp_trigger : string;
  tp_label : string;
  tp_kind : string;
  tp_source : string;
  tp_dest : string;
  tp_key : int array;
  tp_block : int;
}

type plan = {
  pl_name : string;
  pl_dist : bool;
  pl_stmts : stmt_plan list;
  pl_transfers : transfer_plan list;
}

(* Resolve each atom access against the declared slice patterns — the
   same [Patterns] tables the runtime builds its indexes from, so the
   printed index choice cannot drift from the executed one. *)
let accesses_of slice_pats batch_pats (s : Prog.stmt) =
  List.map
    (fun (a : Patterns.access) ->
      let delta = a.acc_kind = `Delta in
      let pats =
        match
          List.assoc_opt a.acc_name (if delta then batch_pats else slice_pats)
        with
        | Some l -> l
        | None -> []
      in
      let index =
        match a.acc_path with
        | Patterns.Slice pos ->
            let rec go i = function
              | [] -> None
              | p :: tl -> if p = pos then Some i else go (i + 1) tl
            in
            go 0 pats
        | Patterns.Get | Patterns.Foreach -> None
      in
      {
        a_name = a.acc_name;
        a_delta = delta;
        a_path = a.acc_path;
        a_index = index;
      })
    (Patterns.accesses s)

let op_str = function Prog.Add_to -> "+=" | Prog.Assign -> ":="

(* Route kind of a statement label: the prefix before ':'. *)
let route_of_label lbl =
  match String.index_opt lbl ':' with
  | Some i -> String.sub lbl 0 i
  | None -> lbl

let explain ?(name = "program") (prog : Prog.t) =
  let sp = Patterns.slices prog and bp = Patterns.batch_slices prog in
  let stmts =
    List.concat_map
      (fun (rel, routed) ->
        List.map
          (fun ((st : Prog.stmt), lbl, selvec, rowwise) ->
            {
              sp_trigger = rel;
              sp_label = lbl;
              sp_target = st.Prog.target;
              sp_op = op_str st.op;
              sp_columnar = route_of_label lbl <> "stmt";
              sp_selvec = selvec;
              sp_rowwise = rowwise;
              sp_block = None;
              sp_stage = None;
              sp_loc = None;
              sp_accesses = accesses_of sp bp st;
            })
          routed)
      (Runtime.stmt_routes_ex prog)
  in
  { pl_name = name; pl_dist = false; pl_stmts = stmts; pl_transfers = [] }

let explain_dist ?(name = "program") (dp : Dprog.t) =
  let cprog = Dprog.compute_prog dp in
  let sp = Patterns.slices cprog and bp = Patterns.batch_slices cprog in
  let stmts = ref [] and transfers = ref [] in
  List.iter
    (fun (tr : Dprog.dtrigger) ->
      let stage = ref 0 in
      List.iteri
        (fun bi (b : Dprog.block) ->
          if b.bmode = Dprog.MDist then incr stage;
          let cur_stage =
            if b.bmode = Dprog.MDist then Some !stage else None
          in
          List.iter
            (fun d ->
              match d with
              | Dprog.Transfer { tname; tkind; key; source } ->
                  transfers :=
                    {
                      tp_trigger = tr.drelation;
                      tp_label = "transfer:" ^ tname;
                      tp_kind =
                        (match tkind with
                        | Dprog.Scatter -> "scatter"
                        | Dprog.Repart -> "repartition"
                        | Dprog.Gather -> "gather");
                      tp_source = source;
                      tp_dest = tname;
                      tp_key = key;
                      tp_block = bi;
                    }
                    :: !transfers
              | Dprog.Compute s ->
                  let mode = Dprog.mode_of dp.locs d in
                  stmts :=
                    {
                      sp_trigger = tr.drelation;
                      sp_label =
                        (match mode with
                        | Dprog.MLocal -> "driver:"
                        | Dprog.MDist -> "stmt:")
                        ^ s.target;
                      sp_target = s.target;
                      sp_op = op_str s.op;
                      sp_columnar = false;
                      sp_selvec = 0;
                      sp_rowwise = 0;
                      sp_block = Some bi;
                      sp_stage = cur_stage;
                      sp_loc =
                        Some
                          (Format.asprintf "%a" Loc.pp
                             (Loc.find dp.locs s.target));
                      sp_accesses = accesses_of sp bp s;
                    }
                    :: !stmts)
            b.bstmts)
        tr.blocks)
    dp.dtriggers;
  {
    pl_name = name;
    pl_dist = true;
    pl_stmts = List.rev !stmts;
    pl_transfers = List.rev !transfers;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let positions_str pos =
  String.concat "," (List.map string_of_int (Array.to_list pos))

let path_str a =
  match a.a_path with
  | Patterns.Get -> "get (unique index)"
  | Patterns.Foreach -> "foreach (full scan)"
  | Patterns.Slice pos -> (
      match a.a_index with
      | Some i -> Printf.sprintf "slice(%s) via idx#%d" (positions_str pos) i
      | None ->
          Printf.sprintf "slice(%s) UNINDEXED: scan with checks"
            (positions_str pos))

let atom_str a = (if a.a_delta then "\xce\x94" else "") ^ a.a_name

let trigger_order stmts transfers =
  let seen = ref [] in
  let note tr = if not (List.mem tr !seen) then seen := tr :: !seen in
  List.iter (fun s -> note s.sp_trigger) stmts;
  List.iter (fun t -> note t.tp_trigger) transfers;
  List.rev !seen

let filter_split_str s =
  let part n kind = Printf.sprintf "%d %s" n kind in
  match (s.sp_selvec, s.sp_rowwise) with
  | 0, 0 -> ""
  | sv, 0 -> part sv "selvec"
  | 0, rw -> part rw "rowwise"
  | sv, rw -> part sv "selvec" ^ ", " ^ part rw "rowwise"

let render_stmt buf indent s =
  let route = route_of_label s.sp_label in
  Printf.bprintf buf "%s%-28s %s %s %s%s\n" indent ("[" ^ s.sp_label ^ "]")
    s.sp_target s.sp_op
    (match route with
    | "columnar" -> "columnar batch pre-aggregation (one pass)"
    | "selvec" -> "columnar pass with selection-vector filter kernels"
    | "columnar-join" -> "vectorized batched join (key-grouped probes)"
    | "selvec-join" ->
        "vectorized batched join (selection-vector kernels, key-grouped \
         probes)"
    | "fused" -> "fused columnar group (one pass over the grouped batch)"
    | "fused-selvec" ->
        "fused columnar group (selection-vector kernels, one pass)"
    | _ -> "compiled closure")
    (match s.sp_loc with Some l -> "  @" ^ l | None -> "");
  match route with
  | "columnar" ->
      Printf.bprintf buf
        "%s    batch transposed once; filters scan single columns\n" indent
  | "selvec" ->
      Printf.bprintf buf
        "%s    filters (%s): kernels pack survivor indexes; chain runs over \
         survivors only\n"
        indent (filter_split_str s)
  | "columnar-join" | "fused" ->
      Printf.bprintf buf
        "%s    batch compacted to distinct keys; store accessors resolved \
         once per key group\n"
        indent
  | "selvec-join" | "fused-selvec" ->
      Printf.bprintf buf
        "%s    batch compacted to distinct keys; filters (%s) gate rows \
         before accessor resolution\n"
        indent (filter_split_str s)
  | _ ->
      List.iter
        (fun a ->
          Printf.bprintf buf "%s    read %-20s via %s\n" indent (atom_str a)
            (path_str a))
        s.sp_accesses

let render (p : plan) =
  let buf = Buffer.create 2048 in
  Printf.bprintf buf "== EXPLAIN %s (%s: %d statements%s) ==\n" p.pl_name
    (if p.pl_dist then "distributed" else "local")
    (List.length p.pl_stmts)
    (if p.pl_dist then
       Printf.sprintf ", %d transfers" (List.length p.pl_transfers)
     else "");
  List.iter
    (fun tr ->
      let stmts = List.filter (fun s -> s.sp_trigger = tr) p.pl_stmts in
      let transfers =
        List.filter (fun t -> t.tp_trigger = tr) p.pl_transfers
      in
      Printf.bprintf buf "ON UPDATE %s:\n" tr;
      if not p.pl_dist then List.iter (render_stmt buf "  ") stmts
      else begin
        let max_block =
          List.fold_left
            (fun acc s ->
              match s.sp_block with Some b -> max acc b | None -> acc)
            (List.fold_left (fun acc t -> max acc t.tp_block) (-1) transfers)
            stmts
        in
        for bi = 0 to max_block do
          let bstmts =
            List.filter (fun s -> s.sp_block = Some bi) stmts
          in
          let btransfers =
            List.filter (fun t -> t.tp_block = bi) transfers
          in
          if bstmts <> [] || btransfers <> [] then begin
            let stage =
              List.fold_left
                (fun acc s ->
                  match s.sp_stage with Some st -> Some st | None -> acc)
                None bstmts
            in
            (match stage with
            | Some st ->
                Printf.bprintf buf "  block %d [distributed, stage %d]:\n" bi
                  st
            | None -> Printf.bprintf buf "  block %d [local]:\n" bi);
            List.iter
              (fun t ->
                Printf.bprintf buf "    %-28s %s %s <- %s  key=<%s>\n"
                  ("[" ^ t.tp_label ^ "]")
                  t.tp_kind t.tp_dest t.tp_source (positions_str t.tp_key))
              btransfers;
            List.iter (render_stmt buf "    ") bstmts
          end
        done
      end)
    (trigger_order p.pl_stmts p.pl_transfers);
  Buffer.contents buf

let plan_json (p : plan) =
  let buf = Buffer.create 2048 in
  let js = Obs.json_string in
  Printf.bprintf buf "{\"name\":%s,\"dist\":%b,\"statements\":[" (js p.pl_name)
    p.pl_dist;
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "{\"trigger\":%s,\"label\":%s,\"target\":%s,\"op\":%s,\"columnar\":%b,\"selvec\":%d,\"rowwise\":%d"
        (js s.sp_trigger) (js s.sp_label) (js s.sp_target) (js s.sp_op)
        s.sp_columnar s.sp_selvec s.sp_rowwise;
      (match s.sp_block with
      | Some b -> Printf.bprintf buf ",\"block\":%d" b
      | None -> ());
      (match s.sp_stage with
      | Some st -> Printf.bprintf buf ",\"stage\":%d" st
      | None -> ());
      (match s.sp_loc with
      | Some l -> Printf.bprintf buf ",\"loc\":%s" (js l)
      | None -> ());
      Buffer.add_string buf ",\"accesses\":[";
      List.iteri
        (fun j a ->
          if j > 0 then Buffer.add_char buf ',';
          Printf.bprintf buf
            "{\"atom\":%s,\"delta\":%b,\"path\":%s%s}" (js a.a_name) a.a_delta
            (js
               (match a.a_path with
               | Patterns.Get -> "get"
               | Patterns.Foreach -> "foreach"
               | Patterns.Slice pos -> "slice(" ^ positions_str pos ^ ")"))
            (match a.a_index with
            | Some ix -> Printf.sprintf ",\"index\":%d" ix
            | None -> ""))
        s.sp_accesses;
      Buffer.add_string buf "]}")
    p.pl_stmts;
  Buffer.add_string buf "],\"transfers\":[";
  List.iteri
    (fun i t ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "{\"trigger\":%s,\"label\":%s,\"kind\":%s,\"source\":%s,\"dest\":%s,\"key\":[%s],\"block\":%d}"
        (js t.tp_trigger) (js t.tp_label) (js t.tp_kind) (js t.tp_source)
        (js t.tp_dest) (positions_str t.tp_key) t.tp_block)
    p.pl_transfers;
  Buffer.add_string buf "]}";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

(* Compact access summary for a slot, looked up in the static plan. *)
let plan_summary plan r =
  match plan with
  | None -> ""
  | Some p -> (
      match
        List.find_opt
          (fun s ->
            s.sp_trigger = r.Prof.r_trigger && s.sp_label = r.Prof.r_label)
          p.pl_stmts
      with
      | Some s ->
          if s.sp_columnar then route_of_label s.sp_label
          else
            String.concat " "
              (List.map
                 (fun a ->
                   atom_str a
                   ^
                   match a.a_path with
                   | Patterns.Get -> ":get"
                   | Patterns.Foreach -> ":scan"
                   | Patterns.Slice _ -> (
                       match a.a_index with
                       | Some i -> Printf.sprintf ":slice#%d" i
                       | None -> ":slice!"))
                 s.sp_accesses)
      | None -> (
          match
            List.find_opt
              (fun t ->
                t.tp_trigger = r.Prof.r_trigger
                && t.tp_label = r.Prof.r_label)
              p.pl_transfers
          with
          | Some t ->
              Printf.sprintf "%s %s <- %s" t.tp_kind t.tp_dest t.tp_source
          | None -> ""))

(* Slot sums against the registry deltas of the same window: the two
   accounting paths (per-slot attribution vs. whole-batch counter folds)
   must agree exactly when the profiler covered every firing.

   With the multiprocess backend's telemetry merge, worker-side counters
   arrive labeled ([divm_record_ops_total{worker="1"}]) and their slot
   rows arrive with an ["@wI"] suffix — both sides of the ledger grow
   symmetrically, so the invariant extends across process boundaries.
   The storage-layer families therefore sum over every label set
   ([base_of]), while the engine counters match exactly by name: the
   coordinator also registers per-worker labeled
   [divm_node_worker_ops_total{worker=...}] variants, and base-summing
   those would double-count what the unlabeled total already holds. *)
let reconcile ~diff =
  let rows = Prof.rows () in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  let reg = Obs.counter_value diff in
  let reg_base name =
    List.fold_left
      (fun acc (n, v) ->
        match v with
        | Obs.VCounter c when Obs.base_of n = name -> acc + c
        | _ -> acc)
      0 diff
  in
  [
    ( "ops",
      sum (fun r -> r.Prof.r_ops),
      reg_base "divm_record_ops_total"
      + reg "divm_cluster_driver_ops_total"
      + reg "divm_cluster_worker_ops_total"
      + reg "divm_node_driver_ops_total"
      + reg "divm_node_worker_ops_total" );
    ( "probes",
      sum (fun r -> r.Prof.r_probes),
      reg_base "divm_index_probes_total" );
    ( "misses",
      sum (fun r -> r.Prof.r_misses),
      reg_base "divm_index_probe_misses_total" );
    ( "scanned",
      sum (fun r -> r.Prof.r_scanned),
      reg_base "divm_slice_scanned_total" );
    ( "selvec_scanned",
      sum (fun r -> r.Prof.r_svscan),
      reg_base "divm_selvec_rows_scanned_total" );
    ( "selvec_selected",
      sum (fun r -> r.Prof.r_svsel),
      reg_base "divm_selvec_rows_selected_total" );
    ( "bytes",
      sum (fun r -> r.Prof.r_bytes),
      reg "divm_cluster_bytes_shuffled_total"
      + reg "divm_node_bytes_shuffled_total" );
  ]

let hist_summary h =
  let n = Array.length h in
  let total = Array.fold_left ( + ) 0 h in
  if total = 0 then "-"
  else begin
    let cum = ref 0 and p50 = ref (n - 1) and p99 = ref (n - 1) in
    (try
       Array.iteri
         (fun i c ->
           cum := !cum + c;
           if !p50 = n - 1 && 2 * !cum >= total then p50 := i;
           if 100 * !cum >= 99 * total then begin
             p99 := i;
             raise Exit
           end)
         h
     with Exit -> ());
    let max_d = ref 0 in
    Array.iteri (fun i c -> if c > 0 then max_d := i) h;
    Printf.sprintf "%d/%d/%d" !p50 !p99 !max_d
  end

let report ?plan ?storage ?diff ?(top = 20) () =
  let buf = Buffer.create 2048 in
  let rows =
    List.filter (fun r -> r.Prof.r_firings > 0) (Prof.rows ())
  in
  let shown =
    let sorted =
      List.sort
        (fun a b -> compare b.Prof.r_wall a.Prof.r_wall)
        rows
    in
    List.filteri (fun i _ -> i < top) sorted
  in
  Printf.bprintf buf "== PROFILE%s: top %d of %d statements by wall time ==\n"
    (match plan with Some p -> " " ^ p.pl_name | None -> "")
    (List.length shown) (List.length rows);
  Printf.bprintf buf "%-10s %-26s %8s %10s %10s %8s %9s %10s %10s %10s %9s  %s\n"
    "trigger" "statement" "fires" "ops" "probes" "misses" "scanned" "svscan"
    "svsel" "bytes" "wall_ms" "plan";
  List.iter
    (fun r ->
      Printf.bprintf buf
        "%-10s %-26s %8d %10d %10d %8d %9d %10d %10d %10d %9.2f  %s\n"
        r.Prof.r_trigger r.Prof.r_label r.Prof.r_firings r.Prof.r_ops
        r.Prof.r_probes r.Prof.r_misses r.Prof.r_scanned r.Prof.r_svscan
        r.Prof.r_svsel r.Prof.r_bytes (r.Prof.r_wall *. 1e3)
        (plan_summary plan r))
    shown;
  let tot f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  Printf.bprintf buf
    "-- totals: %d firings, %d ops, %d probes (%d misses), %d scanned, %d \
     selvec-scanned -> %d selected, %d bytes\n"
    (tot (fun r -> r.Prof.r_firings))
    (tot (fun r -> r.Prof.r_ops))
    (tot (fun r -> r.Prof.r_probes))
    (tot (fun r -> r.Prof.r_misses))
    (tot (fun r -> r.Prof.r_scanned))
    (tot (fun r -> r.Prof.r_svscan))
    (tot (fun r -> r.Prof.r_svsel))
    (tot (fun r -> r.Prof.r_bytes));
  (match diff with
  | None -> ()
  | Some diff ->
      Buffer.add_string buf "-- reconciliation vs Obs registry deltas:\n";
      List.iter
        (fun (what, slot_sum, registry) ->
          Printf.bprintf buf "   %-8s slots=%-12d registry=%-12d %s\n" what
            slot_sum registry
            (if slot_sum = registry then "OK" else "MISMATCH"))
        (reconcile ~diff));
  (match storage with
  | None | Some [] -> ()
  | Some stats ->
      Buffer.add_string buf "-- storage:\n";
      Printf.bprintf buf "   %-28s %10s %8s %8s %6s  %s\n" "pool" "live"
        "free" "indexes" "load" "probe p50/p99/max";
      List.iter
        (fun (n, (s : Pool.stats)) ->
          Printf.bprintf buf "   %-28s %10d %8d %8d %6.2f  %s\n" n s.s_live
            s.s_free s.s_indexes s.s_load
            (hist_summary s.s_probe_hist))
        stats);
  Buffer.contents buf

let report_json ?plan ?storage ?diff () =
  let buf = Buffer.create 2048 in
  let js = Obs.json_string in
  Buffer.add_string buf "{\"slots\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf
        "{\"trigger\":%s,\"label\":%s,\"firings\":%d,\"ops\":%d,\"probes\":%d,\"misses\":%d,\"scanned\":%d,\"svscan\":%d,\"svsel\":%d,\"bytes\":%d,\"wall_s\":%.9f,\"plan\":%s}"
        (js r.Prof.r_trigger) (js r.Prof.r_label) r.Prof.r_firings
        r.Prof.r_ops r.Prof.r_probes r.Prof.r_misses r.Prof.r_scanned
        r.Prof.r_svscan r.Prof.r_svsel r.Prof.r_bytes r.Prof.r_wall
        (js (plan_summary plan r)))
    (List.filter (fun r -> r.Prof.r_firings > 0) (Prof.rows ()));
  Buffer.add_string buf "]";
  (match diff with
  | None -> ()
  | Some diff ->
      Buffer.add_string buf ",\"reconciliation\":[";
      List.iteri
        (fun i (what, slot_sum, registry) ->
          if i > 0 then Buffer.add_char buf ',';
          Printf.bprintf buf
            "{\"what\":%s,\"slots\":%d,\"registry\":%d,\"ok\":%b}" (js what)
            slot_sum registry (slot_sum = registry))
        (reconcile ~diff);
      Buffer.add_string buf "]");
  (match storage with
  | None -> ()
  | Some stats ->
      Buffer.add_string buf ",\"storage\":[";
      List.iteri
        (fun i (n, (s : Pool.stats)) ->
          if i > 0 then Buffer.add_char buf ',';
          Printf.bprintf buf
            "{\"pool\":%s,\"live\":%d,\"free\":%d,\"hwm\":%d,\"indexes\":%d,\"load\":%.4f,\"probe_hist\":[%s]}"
            (js n) s.s_live s.s_free s.s_hwm s.s_indexes s.s_load
            (String.concat ","
               (List.map string_of_int (Array.to_list s.s_probe_hist))))
        stats;
      Buffer.add_string buf "]");
  (match plan with
  | None -> ()
  | Some p -> Printf.bprintf buf ",\"plan\":%s" (plan_json p));
  Buffer.add_char buf '}';
  Buffer.contents buf
