(** Profiling and EXPLAIN: per-statement attribution over the {!Divm_obs}
    registry (§5–§6's evaluation methodology, as a subsystem).

    {1 EXPLAIN}

    {!explain} / {!explain_dist} derive a static {!plan} for a compiled
    trigger program: per statement, the access path the runtime will take
    for every atom it reads ([get] / [foreach] / [slice]), which declared
    {!Divm_runtime.Patterns} index serves each slice, and whether batch
    mode routes the statement through the columnar §5.2.2 pre-aggregation;
    for distributed programs additionally the location tag of each target,
    the block/stage structure, and the transfers each block induces. The
    analysis reuses the exact walks the runtime compiles from
    ({!Divm_runtime.Patterns.accesses},
    {!Divm_runtime.Runtime.columnar_routed}), so the printout cannot
    disagree with execution.

    {1 Profiling}

    With {!set_enabled}[ true], every statement firing (local runtime,
    cluster driver/worker statements) and every cluster transfer charges
    its counter deltas — record ops, index probes and misses, slice-scanned
    records, shuffled bytes — plus wall time to a per-statement slot
    ({!Divm_obs.Prof}). {!report} joins the slots with the static plan into
    a top-N hot-statement table; {!reconcile} checks the slot sums against
    the registry's own totals, so the two accounting paths can never
    silently drift. *)

open Divm_compiler
open Divm_storage
module Obs = Divm_obs.Obs
module Prof = Divm_obs.Prof

(** {2 Profiler controls} (re-exported from {!Divm_obs.Prof}) *)

val enabled : unit -> bool
val set_enabled : bool -> unit
val reset : unit -> unit

(** {2 Static plans} *)

type access = {
  a_name : string;
  a_delta : bool;  (** reads the update batch, not a materialized map *)
  a_path : Divm_runtime.Patterns.path;
  a_index : int option;
      (** which declared slice index serves a [Slice] access; [None] for
          [Get]/[Foreach], or for an unindexed slice (scan with checks) *)
}

type stmt_plan = {
  sp_trigger : string;
  sp_label : string;  (** the {!Divm_obs.Prof} slot label *)
  sp_target : string;
  sp_op : string;  (** ["+="] or [":="] *)
  sp_columnar : bool;
  sp_selvec : int;
      (** filters compiled to selection-vector kernels (columnar scans
          into packed survivor index vectors); 0 on generic routes *)
  sp_rowwise : int;
      (** filters left on the per-row closure path (dynamic predicates) *)
  sp_block : int option;  (** distributed programs only *)
  sp_stage : int option;  (** 1-based distributed stage, if any *)
  sp_loc : string option;  (** rendered location tag of the target *)
  sp_accesses : access list;
}

type transfer_plan = {
  tp_trigger : string;
  tp_label : string;
  tp_kind : string;  (** ["scatter"] / ["repartition"] / ["gather"] *)
  tp_source : string;
  tp_dest : string;
  tp_key : int array;
  tp_block : int;
}

type plan = {
  pl_name : string;
  pl_dist : bool;
  pl_stmts : stmt_plan list;
  pl_transfers : transfer_plan list;
}

val explain : ?name:string -> Prog.t -> plan
val explain_dist : ?name:string -> Divm_dist.Dprog.t -> plan

(** Human-readable EXPLAIN text. *)
val render : plan -> string

val plan_json : plan -> string

(** {2 Reports} *)

(** [report ()] renders the hot-statement table: slots with at least one
    firing, sorted by wall time, [top] (default 20) shown, totals row
    always over all slots. [?plan] adds each statement's access-path
    summary; [?storage] appends per-pool self-metrics; [?diff] (a registry
    {!Obs.diff} over the profiled window) appends the reconciliation
    check. *)
val report :
  ?plan:plan ->
  ?storage:(string * Pool.stats) list ->
  ?diff:Obs.snapshot ->
  ?top:int ->
  unit ->
  string

val report_json :
  ?plan:plan ->
  ?storage:(string * Pool.stats) list ->
  ?diff:Obs.snapshot ->
  unit ->
  string

(** [(what, slot_sum, registry_delta)] per accounted quantity; the two
    numbers are equal whenever the profiler was enabled (and slots reset)
    for the whole window [diff] covers. *)
val reconcile : diff:Obs.snapshot -> (string * int * int) list
