open Divm_ring
open Divm_calc
open Divm_calc.Calc
open Divm_storage
open Divm_compiler
module Obs = Divm_obs.Obs
module Prof = Divm_obs.Prof
module Par = Divm_par.Par

(* Registry instruments fed once per batch (never per record op): the
   hot-path counter is the runtime's private [ops] counter, folded into
   the global totals when the trigger completes. *)
let m_record_ops = Obs.Counter.make "divm_record_ops_total"
let m_batches = Obs.Counter.make "divm_batches_total"
let m_singles = Obs.Counter.make "divm_single_updates_total"
let m_tuples = Obs.Counter.make "divm_tuples_total"
let h_batch_seconds = Obs.Histogram.make "divm_batch_seconds"
let g_stored_tuples = Obs.Gauge.make "divm_stored_tuples"

(* The storage layer's probe counters ([Counter.make] is idempotent per
   name, so these are [Pool]'s own instruments): the profiler reads them
   around each statement firing to attribute probe work per statement. *)
let m_probes = Obs.Counter.make "divm_index_probes_total"
let m_probe_misses = Obs.Counter.make "divm_index_probe_misses_total"
let m_slice_scanned = Obs.Counter.make "divm_slice_scanned_total"

(* Vectorized executor gauges of what the batching bought: rows merged
   away by key compaction, and probes the generic row-at-a-time path
   would have issued but the key-grouped accessors did not. *)
let m_rows_compacted = Obs.Counter.make "divm_batch_rows_compacted_total"
let m_probes_saved = Obs.Counter.make "divm_probes_saved_total"

(* Selection-vector kernels: rows examined by columnar filter passes and
   rows that survived them (the survivor-vector length after the last
   pass). Scanned counts every pass — a member with two hoisted filters
   charges the dense pass over the range plus the refine pass over the
   first pass's survivors. *)
let m_selvec_scanned = Obs.Counter.make "divm_selvec_rows_scanned_total"
let m_selvec_selected = Obs.Counter.make "divm_selvec_rows_selected_total"

type env = Value.t array
type code = env -> (float -> unit) -> unit

(* One entry of a trigger's batch-mode executor list: a generic compiled
   statement or a vectorized (possibly fused) statement group, in original
   statement order. The lazy colbatch is the raw batch transposed at most
   once per trigger firing, shared by every batch-sourced group. *)
type exec_unit = {
  eu_label : string;
  eu_slot : int; (* profiler slot *)
  eu_run : Colbatch.t Lazy.t -> unit;
  (* domain-parallel executor for the same unit, bound only for vectorized
     groups when the runtime was created with [domains > 1]; generic
     statements serialize (see [par_routes]) *)
  eu_par : (Colbatch.t Lazy.t -> unit) option;
}

type trigger_exec = {
  tx_load : bool; (* any generic statement still reads the batch pool *)
  tx_units : exec_unit list;
}

type t = {
  prog : Prog.t;
  pools : (string, Pool.t) Hashtbl.t;
  batch_pools : (string, Pool.t) Hashtbl.t; (* per-stream, refilled per batch *)
  mutable cur_tuple : Vtuple.t;
  mutable cur_mult : float;
  ops : Obs.Counter.t; (* per-instance elementary record operations *)
  domains : int;
  par : Par.Pool.t option; (* shared domain pool when [domains > 1] *)
  par_min_rows : int; (* batches below this stay on the serial path *)
  mutable triggers_batch : (string * trigger_exec) list;
  mutable triggers_single : (string * (int * (unit -> unit)) list) list;
}

type batch_report = { ops : int; tuples : int; wall : float }

(* ------------------------------------------------------------------ *)
(* Variable layouts                                                    *)
(* ------------------------------------------------------------------ *)

type layout = { slots : (string, int) Hashtbl.t; mutable width : int }

let layout_of_stmt (s : Prog.stmt) =
  let l = { slots = Hashtbl.create 16; width = 0 } in
  let bind (v : Schema.var) =
    if not (Hashtbl.mem l.slots v.name) then begin
      Hashtbl.replace l.slots v.name l.width;
      l.width <- l.width + 1
    end
  in
  List.iter bind s.target_vars;
  List.iter bind (Calc.all_vars s.rhs);
  l

let slot l (v : Schema.var) =
  match Hashtbl.find_opt l.slots v.name with
  | Some i -> i
  | None -> invalid_arg ("Runtime: variable without slot: " ^ v.name)

let slots_of l vars = Array.of_list (List.map (slot l) vars)

(* ------------------------------------------------------------------ *)
(* Value expression compilation                                        *)
(* ------------------------------------------------------------------ *)

let rec compile_vexpr l (v : Vexpr.t) : env -> Value.t =
  match v with
  | Vexpr.Const c -> fun _ -> c
  | Vexpr.Var x ->
      let s = slot l x in
      fun env -> env.(s)
  | Vexpr.Add (a, b) -> bin l Value.add a b
  | Vexpr.Sub (a, b) -> bin l Value.sub a b
  | Vexpr.Mul (a, b) -> bin l Value.mul a b
  | Vexpr.Div (a, b) -> bin l Value.div a b
  | Vexpr.Neg a ->
      let ca = compile_vexpr l a in
      fun env -> Value.neg (ca env)
  | Vexpr.Floor a ->
      let ca = compile_vexpr l a in
      fun env ->
        Value.Int (int_of_float (Float.floor (Value.to_float (ca env))))
  | Vexpr.Min (a, b) ->
      let ca = compile_vexpr l a and cb = compile_vexpr l b in
      fun env ->
        let x = ca env and y = cb env in
        if Value.compare x y <= 0 then x else y
  | Vexpr.Max (a, b) ->
      let ca = compile_vexpr l a and cb = compile_vexpr l b in
      fun env ->
        let x = ca env and y = cb env in
        if Value.compare x y >= 0 then x else y

and bin l op a b =
  let ca = compile_vexpr l a and cb = compile_vexpr l b in
  fun env -> op (ca env) (cb env)

(* ------------------------------------------------------------------ *)
(* Atom compilation                                                    *)
(* ------------------------------------------------------------------ *)

(* Static classification of an atom's key positions: bound positions are
   checked, first occurrences of unbound variables are written, later
   duplicate occurrences are checked against the written slot. *)
let classify ~bound l vars =
  let seen = ref [] in
  List.mapi
    (fun i v ->
      let b = Schema.mem v bound || Schema.mem v !seen in
      seen := Schema.union !seen [ v ];
      (i, slot l v, b))
    vars

let compile_pool_atom (rt : t) ~pool ~bound l vars : code =
  let ops = rt.ops in
  let cls = classify ~bound l vars in
  let n = List.length vars in
  let bound_cls = List.filter (fun (_, _, b) -> b) cls in
  let free_cls = List.filter (fun (_, _, b) -> not b) cls in
  if List.length bound_cls = n then begin
    (* full key lookup: probe with a reusable scratch key (the pool only
       copies keys it must retain, and [get] retains nothing) *)
    let key_slots = Array.of_list (List.map (fun (_, s, _) -> s) cls) in
    let kw = Array.length key_slots in
    let scratch = Array.make kw (Value.Int 0) in
    fun env k ->
      Obs.Counter.incr ops;
      for j = 0 to kw - 1 do
        Array.unsafe_set scratch j env.(Array.unsafe_get key_slots j)
      done;
      let m = Pool.get pool scratch in
      if m <> 0. then k m
  end
  else begin
    let writes = Array.of_list (List.map (fun (i, s, _) -> (i, s)) free_cls) in
    let checks = Array.of_list (List.map (fun (i, s, _) -> (i, s)) bound_cls) in
    (* duplicate occurrences of a variable are classified as bound by
       [classify], so every entry of [writes] is a distinct variable's
       first occurrence: write it, nothing to re-verify *)
    let visit env k (key : Vtuple.t) m =
      Obs.Counter.incr ops;
      let ok = ref true in
      Array.iter
        (fun (i, s) -> if not (Value.equal key.(i) env.(s)) then ok := false)
        checks;
      if !ok then begin
        Array.iter (fun (i, s) -> env.(s) <- key.(i)) writes;
        k m
      end
    in
    if bound_cls = [] then fun env k -> Pool.foreach pool (visit env k)
    else
      let bpos = Array.of_list (List.map (fun (i, _, _) -> i) bound_cls) in
      let bslots = Array.of_list (List.map (fun (_, s, _) -> s) bound_cls) in
      (* the slice index is resolved once per compiled statement, not per
         visited tuple: pools and their declared indexes are fixed at
         program-load time *)
      match Pool.find_slice pool bpos with
      | Some index ->
          let bw = Array.length bslots in
          let sub = Array.make bw (Value.Int 0) in
          fun env k ->
            for j = 0 to bw - 1 do
              Array.unsafe_set sub j env.(Array.unsafe_get bslots j)
            done;
            Pool.slice pool ~index sub (visit env k)
      | None ->
          (* no declared index: scan with checks (correct, slower) *)
          fun env k -> Pool.foreach pool (visit env k)
  end

(* Single-tuple delta atom: binds the current tuple's fields directly. *)
let compile_single_delta (rt : t) ~bound l vars : code =
  let ops = rt.ops in
  let cls = classify ~bound l vars in
  let writes =
    Array.of_list
      (List.filter_map (fun (i, s, b) -> if b then None else Some (i, s)) cls)
  in
  let checks =
    Array.of_list
      (List.filter_map (fun (i, s, b) -> if b then Some (i, s) else None) cls)
  in
  fun env k ->
    Obs.Counter.incr ops;
    let key = rt.cur_tuple in
    let ok = ref true in
    Array.iter
      (fun (i, s) -> if not (Value.equal key.(i) env.(s)) then ok := false)
      checks;
    if !ok then begin
      (* [writes] holds only first occurrences (see [classify]) *)
      Array.iter (fun (i, s) -> env.(s) <- key.(i)) writes;
      k rt.cur_mult
    end

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)
(* ------------------------------------------------------------------ *)

let pool rt name =
  match Hashtbl.find_opt rt.pools name with
  | Some p -> p
  | None -> invalid_arg ("Runtime: unknown map " ^ name)

type mode = Batch | Single

let rec compile_expr (rt : t) ~mode ~bound l (e : expr) : code =
  let ops = rt.ops in
  match e with
  | Const c -> fun _ k -> k c
  | Value v ->
      let cv = compile_vexpr l v in
      fun env k ->
        Obs.Counter.incr ops;
        let x = Value.to_float (cv env) in
        if x <> 0. then k x
  | Cmp (op, a, b) ->
      let ca = compile_vexpr l a and cb = compile_vexpr l b in
      fun env k ->
        Obs.Counter.incr ops;
        if Calc.eval_cmp op (ca env) (cb env) then k 1.
  | Rel r ->
      invalid_arg ("Runtime: raw base relation in statement: " ^ r.rname)
  | Map m ->
      let p = pool rt m.mname in
      compile_pool_atom rt ~pool:p ~bound l m.mvars
  | DeltaRel r -> (
      match mode with
      | Single -> compile_single_delta rt ~bound l r.rvars
      | Batch ->
          let p =
            match Hashtbl.find_opt rt.batch_pools r.rname with
            | Some p -> p
            | None -> invalid_arg ("Runtime: no batch pool for " ^ r.rname)
          in
          compile_pool_atom rt ~pool:p ~bound l r.rvars)
  | Prod es ->
      let rec go bound = function
        | [] -> fun _ k -> k 1.
        | [ e ] -> compile_expr rt ~mode ~bound l e
        | e :: rest ->
            let ce = compile_expr rt ~mode ~bound l e in
            let bound' =
              match Calc.schema ~bound e with
              | s -> Schema.union bound s
              | exception Type_error _ -> bound
            in
            let crest = go bound' rest in
            fun env k -> ce env (fun m1 -> crest env (fun m2 -> k (m1 *. m2)))
      in
      go bound es
  | Add es ->
      let cs = List.map (compile_expr rt ~mode ~bound l) es in
      fun env k -> List.iter (fun c -> c env k) cs
  | Sum (gb, q) ->
      let out = List.filter (fun v -> not (Schema.mem v bound)) gb in
      let cq = compile_expr rt ~mode ~bound l q in
      let out_slots = slots_of l out in
      if out = [] then (fun env k ->
        let total = ref 0. in
        cq env (fun m -> total := !total +. m);
        if Float.abs !total >= Gmr.zero_eps then k !total)
      else begin
        (* temp group and scratch key allocated once per compiled closure:
           invocations of one closure never overlap, so [clear]-and-reuse
           replaces a fresh table per evaluation, and [add_borrow] copies
           the scratch key only on first insert of a group *)
        let ow = Array.length out_slots in
        let scratch = Array.make ow (Value.Int 0) in
        let temp = Gmr.create () in
        fun env k ->
          Gmr.clear temp;
          cq env (fun m ->
              for j = 0 to ow - 1 do
                Array.unsafe_set scratch j env.(Array.unsafe_get out_slots j)
              done;
              Gmr.add_borrow temp scratch m);
          Gmr.iter
            (fun key m ->
              Obs.Counter.incr ops;
              Array.iteri (fun j s -> env.(s) <- key.(j)) out_slots;
              k m)
            temp
      end
  | Exists q ->
      let qsch = Calc.schema ~bound q in
      let cq = compile_expr rt ~mode ~bound l q in
      if qsch = [] then (fun env k ->
        let total = ref 0. in
        cq env (fun m -> total := !total +. m);
        if Float.abs !total >= Gmr.zero_eps then k 1.)
      else begin
        let q_slots = slots_of l qsch in
        let qw = Array.length q_slots in
        let scratch = Array.make qw (Value.Int 0) in
        let temp = Gmr.create () in
        fun env k ->
          Gmr.clear temp;
          cq env (fun m ->
              for j = 0 to qw - 1 do
                Array.unsafe_set scratch j env.(Array.unsafe_get q_slots j)
              done;
              Gmr.add_borrow temp scratch m);
          Gmr.iter
            (fun key _m ->
              Obs.Counter.incr ops;
              Array.iteri (fun j s -> env.(s) <- key.(j)) q_slots;
              k 1.)
            temp
      end
  | Lift (v, q) ->
      let qsch = Calc.schema ~bound q in
      let cq = compile_expr rt ~mode ~bound l q in
      let v_bound = Schema.mem v bound in
      let v_slot = slot l v in
      if qsch = [] then
        fun env k ->
          let total = ref 0. in
          cq env (fun m -> total := !total +. m);
          Obs.Counter.incr ops;
          if v_bound then begin
            if Value.compare_approx env.(v_slot) (Value.Float !total) = 0 then k 1.
          end
          else begin
            env.(v_slot) <- Value.Float !total;
            k 1.
          end
      else begin
        let q_slots = slots_of l qsch in
        let qw = Array.length q_slots in
        let scratch = Array.make qw (Value.Int 0) in
        let temp = Gmr.create () in
        fun env k ->
          Gmr.clear temp;
          cq env (fun m ->
              for j = 0 to qw - 1 do
                Array.unsafe_set scratch j env.(Array.unsafe_get q_slots j)
              done;
              Gmr.add_borrow temp scratch m);
          Gmr.iter
            (fun key m ->
              Obs.Counter.incr ops;
              Array.iteri (fun j s -> env.(s) <- key.(j)) q_slots;
              if v_bound then begin
                if Value.compare_approx env.(v_slot) (Value.Float m) = 0 then k 1.
              end
              else begin
                env.(v_slot) <- Value.Float m;
                k 1.
              end)
            temp
      end

(* ------------------------------------------------------------------ *)
(* Statement compilation                                               *)
(* ------------------------------------------------------------------ *)

let compile_stmt rt ~mode (s : Prog.stmt) : unit -> unit =
  let l = layout_of_stmt s in
  let tv_slots = slots_of l s.target_vars in
  (* Exploit a top-level Sum over exactly the target variables: accumulate
     straight into the pool with no intermediate grouping. *)
  let body =
    match s.rhs with
    | Sum (gb, body) when Schema.equal_as_sets gb s.target_vars -> body
    | rhs -> rhs
  in
  let code = compile_expr rt ~mode ~bound:[] l body in
  let target = pool rt s.target in
  (* If the RHS reads the target map, adding into the pool while evaluating
     would expose mid-statement writes (and mutate a pool being scanned) —
     buffer the result and apply afterwards. *)
  let self_reading = List.mem s.target (Calc.map_refs s.rhs) in
  (* Per-statement scratch target key; the sinks copy it on first insert
     ([add_borrow]), so the buffer is safe to refill on the next tuple. *)
  let tw = Array.length tv_slots in
  let scratch = Array.make tw (Value.Int 0) in
  let fill env =
    for j = 0 to tw - 1 do
      Array.unsafe_set scratch j env.(Array.unsafe_get tv_slots j)
    done
  in
  let direct () =
    let env = Array.make l.width (Value.Int 0) in
    code env (fun m ->
        fill env;
        Pool.add_borrow target scratch m)
  in
  (* Reused across firings: trigger executions never overlap, and [clear]
     only drops references — keys handed to the pool stay intact. *)
  let buf = Gmr.create () in
  let buffered () =
    let env = Array.make l.width (Value.Int 0) in
    Gmr.clear buf;
    code env (fun m ->
        fill env;
        Gmr.add_borrow buf scratch m);
    buf
  in
  match (s.op, self_reading) with
  | Prog.Add_to, false -> direct
  | Prog.Add_to, true ->
      fun () ->
        let buf = buffered () in
        Gmr.iter (fun key m -> Pool.add target key m) buf
  | Prog.Assign, false ->
      fun () ->
        Pool.clear target;
        direct ()
  | Prog.Assign, true ->
      fun () ->
        let buf = buffered () in
        Pool.clear target;
        Gmr.iter (fun key m -> Pool.add target key m) buf

(* ------------------------------------------------------------------ *)
(* Vectorized batched joins (§5.2): static planning                    *)
(* ------------------------------------------------------------------ *)

(* A trigger statement qualifies for the vectorized executor when it is a
   single product driven by one batch-derived source factor — the raw
   update batch or a transient pre-aggregation assigned earlier in the
   same trigger, optionally Exists-wrapped — joined against store maps
   that are fully keyed by source columns (get probes, resolved once per
   distinct key group), at most one partially keyed map (a slice probe),
   lifts of fully keyed probes, and comparisons / value terms over the
   bound columns. The source is compacted to the group's used columns
   (duplicate keys coalesce) and sort-grouped by the probe key columns,
   so every accessor resolves once per distinct key instead of once per
   batch row — O(K) probes for a batch with K distinct keys (§5.2). *)

type vsource = {
  vs_name : string; (* delta stream or transient map *)
  vs_batch : bool; (* raw update batch vs transient pool *)
  vs_exists : bool; (* Exists-wrapped: row weight is support, not mult *)
  vs_vars : Schema.t;
}

(* a store-map probe fully keyed by source columns; [vb_cols] are source
   column positions in map-key order *)
type vprobe = { vb_map : string; vb_cols : int list }

type vslice = {
  sl_map : string;
  sl_bcols : int array; (* source columns of the bound part, in index order *)
  sl_bpos : int array; (* map-key positions that are bound *)
  sl_outs : Schema.t; (* unbound map-key variables, bound per slice row *)
  sl_opos : int array; (* their map-key positions *)
}

(* where a statement variable lives: a source column, or an auxiliary
   slot written by a lift or a slice output *)
type vref = VSrc of int | VAux of string

type vstep =
  | VGet of int (* multiply by probe value, skip the row on 0 *)
  | VExists of int (* skip the row unless the probe has support *)
  | VLift of string * int list (* aux var := sum of probe values *)
  | VFilter of Calc.cmp_op * Vexpr.t * Vexpr.t
  | VFilterIn of (Calc.cmp_op * Vexpr.t * Vexpr.t) list
      (* a sum of comparisons (IN-list / membership disjunction): the
         factor's value is the number of matching disjuncts *)
  | VWeight of Vexpr.t
  | VSlice of vslice

type vplan = {
  vp_stmt : Prog.stmt;
  vp_sign : float; (* product of constant factors *)
  vp_source : vsource;
  vp_probes : vprobe list; (* accessor table; VGet/VExists/VLift indices *)
  vp_steps : vstep list; (* factor order; at most one VSlice *)
  vp_tkey : vref list; (* target key, one ref per target variable *)
  vp_used : int list; (* source columns read anywhere, sorted *)
  vp_keycols : int list; (* source columns feeding probes/slice binds *)
  vp_reads : string list; (* store maps probed or sliced *)
}

exception Not_vectorizable

let plan_stmt_exn ~rel ~transient_ready (s : Prog.stmt) : vplan =
  (* self-reading statements need buffered evaluation: generic path *)
  if List.mem s.target (Calc.map_refs s.rhs) then raise Not_vectorizable;
  let body =
    match s.rhs with
    | Sum (gb, body) ->
        (* only the accumulate-into-the-pool fast path of [compile_stmt] *)
        if Schema.equal_as_sets gb s.target_vars then body
        else raise Not_vectorizable
    | rhs -> rhs
  in
  let distinct (vars : Schema.t) =
    let names = List.map (fun (v : Schema.var) -> v.name) vars in
    List.length names = List.length (List.sort_uniq compare names)
  in
  let sign = ref 1. in
  let rec skim = function
    | Const c :: tl ->
        sign := !sign *. c;
        skim tl
    | l -> l
  in
  let src, rest =
    let source_of = function
      | DeltaRel r when String.equal r.rname rel && r.rvars <> [] ->
          Some (r.rname, true, r.rvars)
      | Map m when transient_ready m.mname && m.mvars <> [] ->
          Some (m.mname, false, m.mvars)
      | _ -> None
    in
    match skim (Divm_delta.Poly.factors body) with
    | f :: tl -> (
        let wrapped, atom = match f with Exists q -> (true, q) | q -> (false, q) in
        match source_of atom with
        | Some (name, batch, vars) when distinct vars ->
            ( { vs_name = name; vs_batch = batch; vs_exists = wrapped; vs_vars = vars },
              tl )
        | _ -> raise Not_vectorizable)
    | [] -> raise Not_vectorizable
  in
  let pos_of (v : Schema.var) =
    let rec go i = function
      | [] -> None
      | (x : Schema.var) :: tl ->
          if String.equal x.name v.name then Some i else go (i + 1) tl
    in
    go 0 src.vs_vars
  in
  let aux = ref [] in (* names bound by lifts and slice outputs, in order *)
  let used = ref [] and keyc = ref [] and reads = ref [] in
  let use p = if not (List.mem p !used) then used := p :: !used in
  let usek p =
    use p;
    if not (List.mem p !keyc) then keyc := p :: !keyc
  in
  (* a variable read by a filter / weight / target key must already be
     bound — by a source column or by an earlier lift or slice output *)
  let vref (v : Schema.var) =
    match pos_of v with
    | Some p ->
        use p;
        VSrc p
    | None ->
        if List.mem v.name !aux then VAux v.name else raise Not_vectorizable
  in
  let check_vexpr ve = List.iter (fun v -> ignore (vref v)) (Vexpr.vars ve) in
  let probes = ref [] in
  let probe_id map cols =
    let rec find i = function
      | [] ->
          probes := !probes @ [ { vb_map = map; vb_cols = cols } ];
          i
      | p :: tl ->
          if String.equal p.vb_map map && p.vb_cols = cols then i
          else find (i + 1) tl
    in
    find 0 !probes
  in
  (* probe keys must be source columns: that is what makes the accessor
     constant over a sort group and therefore shareable *)
  let get_cols (vars : Schema.t) =
    List.map
      (fun v ->
        match pos_of v with
        | Some p ->
            usek p;
            p
        | None -> raise Not_vectorizable)
      vars
  in
  let fully_src (vars : Schema.t) = List.for_all (fun v -> pos_of v <> None) vars in
  let slice_seen = ref false in
  let steps =
    List.filter_map
      (fun f ->
        match f with
        | Const c ->
            sign := !sign *. c;
            None
        | Cmp (op, a, b) ->
            check_vexpr a;
            check_vexpr b;
            Some (VFilter (op, a, b))
        | Value ve ->
            check_vexpr ve;
            Some (VWeight ve)
        | Exists (Map m) when fully_src m.mvars ->
            reads := m.mname :: !reads;
            Some (VExists (probe_id m.mname (get_cols m.mvars)))
        | Map m when fully_src m.mvars ->
            reads := m.mname :: !reads;
            Some (VGet (probe_id m.mname (get_cols m.mvars)))
        | Lift (v, q) when pos_of v = None && not (List.mem v.name !aux) ->
            let term = function
              | Map m when fully_src m.mvars ->
                  reads := m.mname :: !reads;
                  probe_id m.mname (get_cols m.mvars)
              | _ -> raise Not_vectorizable
            in
            let ids =
              match q with
              | Map _ -> [ term q ]
              | Add qs -> List.map term qs
              | _ -> raise Not_vectorizable
            in
            aux := v.name :: !aux;
            Some (VLift (v.name, ids))
        | Map m ->
            (* partially keyed: the single slice probe *)
            if !slice_seen then raise Not_vectorizable;
            slice_seen := true;
            reads := m.mname :: !reads;
            let indexed = List.mapi (fun i v -> (i, v)) m.mvars in
            let bound, free =
              List.partition (fun (_, v) -> pos_of v <> None) indexed
            in
            let free_vars = List.map snd free in
            if free = [] || not (distinct free_vars) then
              raise Not_vectorizable;
            List.iter
              (fun (v : Schema.var) ->
                if List.mem v.name !aux then raise Not_vectorizable)
              free_vars;
            let bcol (_, v) =
              match pos_of v with
              | Some p ->
                  usek p;
                  p
              | None -> assert false
            in
            let sl =
              {
                sl_map = m.mname;
                sl_bcols = Array.of_list (List.map bcol bound);
                sl_bpos = Array.of_list (List.map fst bound);
                sl_outs = free_vars;
                sl_opos = Array.of_list (List.map fst free);
              }
            in
            aux := List.map (fun (v : Schema.var) -> v.name) free_vars @ !aux;
            Some (VSlice sl)
        | Add es
          when es <> []
               && List.for_all (function Cmp _ -> true | _ -> false) es ->
            (* membership test (e.g. [in_set]): a sum of comparison
               indicators — evaluates to the number of matching disjuncts *)
            Some
              (VFilterIn
                 (List.map
                    (function
                      | Cmp (op, a, b) ->
                          check_vexpr a;
                          check_vexpr b;
                          (op, a, b)
                      | _ -> assert false)
                    es))
        | _ -> raise Not_vectorizable)
      rest
  in
  let tkey = List.map vref s.target_vars in
  {
    vp_stmt = s;
    vp_sign = !sign;
    vp_source = src;
    vp_probes = !probes;
    vp_steps = steps;
    vp_tkey = tkey;
    vp_used = List.sort compare !used;
    vp_keycols = List.sort compare !keyc;
    vp_reads = !reads;
  }

(* One entry of a trigger's planned executor: a statement on the generic
   closure path, or a group of ≥1 consecutive vectorized statements
   sharing a source (and, when fused, one pass over the grouped batch). *)
type unit_plan = UStmt of Prog.stmt | UGroup of vplan list

(* Fusing [p] into [group] is sound when they share the source and no
   member's writes can be observed by another member's reads before the
   group completes: generic execution finishes statement i before
   statement j starts, the fused pass interleaves them per row. *)
let fuse_ok group (p : vplan) =
  match group with
  | [] -> false
  | g0 :: _ ->
      String.equal g0.vp_source.vs_name p.vp_source.vs_name
      && g0.vp_source.vs_batch = p.vp_source.vs_batch
      && (not (String.equal p.vp_stmt.target p.vp_source.vs_name))
      && List.for_all
           (fun (q : vplan) ->
             (not (List.mem p.vp_stmt.target q.vp_reads))
             && (not (List.mem q.vp_stmt.target p.vp_reads))
             && (not (String.equal q.vp_stmt.target p.vp_source.vs_name))
             && ((not (String.equal q.vp_stmt.target p.vp_stmt.target))
                || (q.vp_stmt.op = Prog.Add_to && p.vp_stmt.op = Prog.Add_to)))
           group

let plan_trigger (prog : Prog.t) (tr : Prog.trigger) : unit_plan list =
  let kinds = Hashtbl.create 16 in
  List.iter
    (fun (m : Prog.map_decl) -> Hashtbl.replace kinds m.mname m.mkind)
    prog.maps;
  (* a transient qualifies as a source once its Assign has executed *)
  let assigned = Hashtbl.create 8 in
  let plans =
    List.map
      (fun (s : Prog.stmt) ->
        let transient_ready n =
          Hashtbl.find_opt kinds n = Some Prog.Transient && Hashtbl.mem assigned n
        in
        let p =
          match plan_stmt_exn ~rel:tr.relation ~transient_ready s with
          | p -> Some p
          | exception Not_vectorizable -> None
        in
        if
          s.op = Prog.Assign
          && Hashtbl.find_opt kinds s.target = Some Prog.Transient
        then Hashtbl.replace assigned s.target ();
        (s, p))
      tr.stmts
  in
  let finish group acc =
    match group with [] -> acc | g -> UGroup (List.rev g) :: acc
  in
  let rec go acc group = function
    | [] -> List.rev (finish group acc)
    | (s, None) :: tl -> go (UStmt s :: finish group acc) [] tl
    | (_, Some p) :: tl ->
        if group <> [] && fuse_ok group p then go acc (p :: group) tl
        else go (finish group acc) [ p ] tl
  in
  let units = go [] [] plans in
  (* a lone transient-sourced statement with no probes is a pure copy /
     filter pass: transposing the pool buys nothing, keep it generic *)
  List.map
    (function
      | UGroup [ p ] when (not p.vp_source.vs_batch) && p.vp_reads = [] ->
          UStmt p.vp_stmt
      | u -> u)
    units

(* ------------------------------------------------------------------ *)
(* Selection-vector kernels: static classification                     *)
(* ------------------------------------------------------------------ *)

(* A side of a comparison the kernel compiler can hoist out of the
   per-row chain: a numeric constant (as its float image), a numeric
   source column, a string constant, or a string source column.
   Anything else — aux variables bound by lifts or slice outputs,
   arithmetic over columns, mixed string/numeric typing — keeps the
   filter on the per-row path ("genuinely dynamic"). *)
type kside =
  | KNum of float
  | KCol of int (* source column position, numeric-typed *)
  | KStr of string
  | KSCol of int (* source column position, string-typed *)

(* [Value.compare_approx] is antisymmetric on both of its branches
   (numeric tolerance compare and polymorphic string compare), so a
   comparison may be flipped to put the column on the left. *)
let mirror_op : Calc.cmp_op -> Calc.cmp_op = function
  | Calc.Lt -> Calc.Gt
  | Calc.Lte -> Calc.Gte
  | Calc.Gt -> Calc.Lt
  | Calc.Gte -> Calc.Lte
  | (Calc.Eq | Calc.Neq) as op -> op

let classify_side (p : vplan) (ve : Vexpr.t) : kside option =
  match ve with
  | Vexpr.Const (Value.Int i) -> Some (KNum (float_of_int i))
  | Vexpr.Const (Value.Float f) -> Some (KNum f)
  | Vexpr.Const (Value.Date d) -> Some (KNum (float_of_int d))
  | Vexpr.Const (Value.String s) -> Some (KStr s)
  | Vexpr.Var x -> (
      let rec go i = function
        | [] -> None
        | (v : Schema.var) :: tl ->
            if String.equal v.name x.name then Some i else go (i + 1) tl
      in
      match go 0 p.vp_source.vs_vars with
      | None -> None (* aux variable: bound per row, not hoistable *)
      | Some c ->
          if x.ty = Value.TString then Some (KSCol c) else Some (KCol c))
  | _ -> None

(* [classify_filter] is the single authority on hoistability: the
   EXPLAIN labels ([route_label_of_group], [stmt_routes_ex]) and the
   kernel binder ([bind_instance]) both consume it, so the plan a user
   reads and the code that runs can never disagree. Comparisons are
   canonicalized column-first via [mirror_op]. String/numeric mixes are
   rejected (their semantics live in [Value.compare_approx]'s
   polymorphic branch; the per-row path handles them as before). *)
let classify_filter (p : vplan) ((op, a, b) : Calc.cmp_op * Vexpr.t * Vexpr.t)
    : (Calc.cmp_op * kside * kside) option =
  match (classify_side p a, classify_side p b) with
  | Some (KCol _ as l), Some ((KNum _ | KCol _) as r)
  | Some (KSCol _ as l), Some ((KStr _ | KSCol _) as r) -> Some (op, l, r)
  | Some (KNum _ as r), Some (KCol _ as l)
  | Some (KStr _ as r), Some (KSCol _ as l) -> Some (mirror_op op, l, r)
  | _ -> None

(* Per-plan filter split: (filters hoisted to selection-vector kernels,
   filters remaining on the per-row path). A hoistable membership test
   ([VFilterIn]) counts as a kernel: its any-disjunct-matches gate runs
   columnar even though the match-count multiply stays in the chain. *)
let plan_filter_split (p : vplan) =
  List.fold_left
    (fun (sv, rw) st ->
      match st with
      | VFilter (op, a, b) ->
          if classify_filter p (op, a, b) <> None then (sv + 1, rw)
          else (sv, rw + 1)
      | VFilterIn cs ->
          if List.for_all (fun c -> classify_filter p c <> None) cs then
            (sv + 1, rw)
          else (sv, rw + 1)
      | _ -> (sv, rw))
    (0, 0) p.vp_steps

let route_label_of_group (ps : vplan list) =
  let sv =
    List.fold_left (fun acc p -> acc + fst (plan_filter_split p)) 0 ps
  in
  match ps with
  | [ p ] ->
      (if sv > 0 then if p.vp_reads = [] then "selvec:" else "selvec-join:"
       else if p.vp_reads = [] then "columnar:"
       else "columnar-join:")
      ^ p.vp_stmt.target
  | ps ->
      let targets =
        List.fold_left
          (fun acc (p : vplan) ->
            if List.mem p.vp_stmt.target acc then acc
            else acc @ [ p.vp_stmt.target ])
          [] ps
      in
      (if sv > 0 then "fused-selvec:" else "fused:")
      ^ String.concat "+" targets

(* ------------------------------------------------------------------ *)
(* Vectorized batched joins: binding and execution                     *)
(* ------------------------------------------------------------------ *)

(* Per-group mutable view of the compacted source batch; every bound
   closure reads the current row through this record, so one binding
   serves every batch. *)
type vctx = {
  mutable vc_cols : Colbatch.col array; (* group column layout, typed *)
  mutable vc_mults : float array;
  mutable vc_counts : float array; (* source rows merged per compacted row *)
  mutable vc_row : int;
}

(* A get-style accessor shared by the whole group: resolved once per
   distinct key group, read by every member referencing it. *)
type gacc = {
  ga_pool : Pool.t;
  ga_key : int array; (* compacted column positions, in map-key order *)
  ga_scratch : Vtuple.t;
  mutable ga_val : float;
  mutable ga_uses : int; (* member references, for the probes-saved model *)
}

(* A shared slice accessor: the matching store rows are cached once per
   key group. The cached key arrays are borrowed from the pool — sound
   because fusion safety guarantees no member writes a probed pool while
   the group runs. *)
type gslice = {
  gs_pool : Pool.t;
  gs_index : int option; (* declared slice index; None scans with checks *)
  gs_bcols : int array; (* compacted columns of the bound part *)
  gs_bpos : int array;
  gs_sub : Vtuple.t;
  mutable gs_keys : Vtuple.t array;
  mutable gs_ms : float array;
  mutable gs_n : int;
  mutable gs_uses : int;
}

(* The static shape of a group: which source columns the compacted batch
   keeps and how they are ordered. Shared by every execution instance of
   the group (the serial driver binds one, the parallel driver one per
   domain). *)
type gshape = {
  sh_src : vsource;
  sh_width : int; (* source width *)
  sh_sk : int array; (* grouping-key columns *)
  sh_rest : int array;
  sh_sel : int array;
  sh_cpos : int array; (* original source column -> compacted column *)
}

let group_shape (ps : vplan list) =
  let src = (List.hd ps).vp_source in
  let src_width = List.length src.vs_vars in
  let addu l p = if not (List.mem p !l) then l := p :: !l in
  let keyc = ref [] and usedc = ref [] in
  List.iter
    (fun p ->
      List.iter (addu keyc) p.vp_keycols;
      List.iter (addu usedc) p.vp_used)
    ps;
  let sk = Array.of_list (List.sort compare !keyc) in
  let rest =
    Array.of_list
      (List.sort compare (List.filter (fun c -> not (List.mem c !keyc)) !usedc))
  in
  let sel = Array.append sk rest in
  let cpos = Array.make src_width (-1) in
  Array.iteri (fun i c -> cpos.(c) <- i) sel;
  {
    sh_src = src;
    sh_width = src_width;
    sh_sk = sk;
    sh_rest = rest;
    sh_sel = sel;
    sh_cpos = cpos;
  }

(* Source columns worth dictionary-encoding for this group, this batch:
   operands of hoistable string filters (the selection kernel then
   tests an int-indexed per-dictionary truth table instead of comparing
   strings) and, when the group compacts, its grouping-key columns (the
   radix path then hashes the dictionary's cached entry hashes instead
   of boxed cells). The drivers pass the list to
   [Colbatch.dictify_cols] once per batch; it skips everything that is
   not a low-cardinality all-string column, so over-asking (e.g. int
   key columns) costs one representation check. *)
let dict_want (ps : vplan list) (shape : gshape) ~keys =
  let acc = ref [] in
  let addc c = if not (List.mem c !acc) then acc := c :: !acc in
  let add_side = function KSCol c -> addc c | _ -> () in
  let add_cmp p cmp =
    match classify_filter p cmp with
    | Some (_, l, r) ->
        add_side l;
        add_side r
    | None -> ()
  in
  List.iter
    (fun p ->
      List.iter
        (function
          | VFilter (op, a, b) -> add_cmp p (op, a, b)
          | VFilterIn cs -> List.iter (add_cmp p) cs
          | _ -> ())
        p.vp_steps)
    ps;
  if keys then Array.iter addc shape.sh_sk;
  !acc

(* ------------------------------------------------------------------ *)
(* Selection-vector kernels: columnar filter evaluation                *)
(* ------------------------------------------------------------------ *)

(* Local replica of [Value.fcompare_approx]: cross-module float calls
   box their arguments without flambda, and this runs once per scanned
   row. Keep in sync with [Value.fcompare_approx] — the selection-vector
   qcheck suite pins the two paths' agreement on NaN/infinity edges. *)
let[@inline] fcmp x y =
  let scale = Float.max 1. (Float.max (Float.abs x) (Float.abs y)) in
  if Float.abs (x -. y) <= 1e-9 *. scale then 0 else Float.compare x y

let ftest : Calc.cmp_op -> float -> float -> bool = function
  | Calc.Eq -> fun x y -> fcmp x y = 0
  | Calc.Neq -> fun x y -> fcmp x y <> 0
  | Calc.Lt -> fun x y -> fcmp x y < 0
  | Calc.Lte -> fun x y -> fcmp x y <= 0
  | Calc.Gt -> fun x y -> fcmp x y > 0
  | Calc.Gte -> fun x y -> fcmp x y >= 0

(* Packed-survivor loops. The dense pass scans rows [lo, lo+len),
   writing each index unconditionally and advancing the cursor only on a
   pass (no branch around the store); the refine pass re-tests a packed
   vector in place (the write cursor never overtakes the read cursor). *)
let pack dense lo len (sel : int array) (pass : int -> bool) =
  let k = ref 0 in
  if dense then
    for i = lo to lo + len - 1 do
      Array.unsafe_set sel !k i;
      k := !k + Bool.to_int (pass i)
    done
  else
    for j = 0 to len - 1 do
      let i = Array.unsafe_get sel j in
      Array.unsafe_set sel !k i;
      k := !k + Bool.to_int (pass i)
    done;
  !k

(* A built kernel: the dense pass scans a row range into [sel], the
   refine pass re-tests a packed vector in place. Built once per batch
   from the current columns ([prep_inst]); the hot loops below are the
   only code that runs per group. *)
type kern = {
  kdense : int -> int -> int array -> int; (* lo len sel -> survivors *)
  krefine : int -> int array -> int; (* n sel -> survivors *)
}

let kern_of_pass (pass : int -> bool) =
  {
    kdense = (fun lo len sel -> pack true lo len sel pass);
    krefine = (fun n sel -> pack false 0 n sel pass);
  }

(* Comparator encoded as a 3-bit mask over the comparison's sign
   (bit 0: <, bit 1: =, bit 2: >), so one loop body serves all six
   operators with no per-row indirect call. *)
let sign_mask = function
  | Calc.Eq -> 0b010
  | Calc.Neq -> 0b101
  | Calc.Lt -> 0b001
  | Calc.Lte -> 0b011
  | Calc.Gt -> 0b100
  | Calc.Gte -> 0b110

(* Fully-specialized loops for the hottest kernel shape — an unboxed
   numeric column against a constant: direct array load, direct [fcmp]
   call, mask test, branchless store. *)
let kern_float_const (a : float array) op (v : float) =
  let mask = sign_mask op in
  {
    kdense =
      (fun lo len sel ->
        let k = ref 0 in
        for i = lo to lo + len - 1 do
          Array.unsafe_set sel !k i;
          let c = fcmp (Array.unsafe_get a i) v in
          let s = Bool.to_int (c >= 0) + Bool.to_int (c > 0) in
          k := !k + ((mask lsr s) land 1)
        done;
        !k);
    krefine =
      (fun n sel ->
        let k = ref 0 in
        for j = 0 to n - 1 do
          let i = Array.unsafe_get sel j in
          Array.unsafe_set sel !k i;
          let c = fcmp (Array.unsafe_get a i) v in
          let s = Bool.to_int (c >= 0) + Bool.to_int (c > 0) in
          k := !k + ((mask lsr s) land 1)
        done;
        !k);
  }

let kern_int_const (a : int array) op (v : float) =
  let mask = sign_mask op in
  {
    kdense =
      (fun lo len sel ->
        let k = ref 0 in
        for i = lo to lo + len - 1 do
          Array.unsafe_set sel !k i;
          let c = fcmp (float_of_int (Array.unsafe_get a i)) v in
          let s = Bool.to_int (c >= 0) + Bool.to_int (c > 0) in
          k := !k + ((mask lsr s) land 1)
        done;
        !k);
    krefine =
      (fun n sel ->
        let k = ref 0 in
        for j = 0 to n - 1 do
          let i = Array.unsafe_get sel j in
          Array.unsafe_set sel !k i;
          let c = fcmp (float_of_int (Array.unsafe_get a i)) v in
          let s = Bool.to_int (c >= 0) + Bool.to_int (c > 0) in
          k := !k + ((mask lsr s) land 1)
        done;
        !k);
  }

(* Band kernels: two constant comparisons against the same column fused
   into one pass — one load serves both tests (ranges like
   [lo <= x < hi] are the common shape: date windows, BETWEEN). *)
let kern_float_const2 (a : float array) op1 (v1 : float) op2 (v2 : float) =
  let m1 = sign_mask op1 and m2 = sign_mask op2 in
  {
    kdense =
      (fun lo len sel ->
        let k = ref 0 in
        for i = lo to lo + len - 1 do
          Array.unsafe_set sel !k i;
          let x = Array.unsafe_get a i in
          let c1 = fcmp x v1 in
          let s1 = Bool.to_int (c1 >= 0) + Bool.to_int (c1 > 0) in
          let c2 = fcmp x v2 in
          let s2 = Bool.to_int (c2 >= 0) + Bool.to_int (c2 > 0) in
          k := !k + ((m1 lsr s1) land (m2 lsr s2) land 1)
        done;
        !k);
    krefine =
      (fun n sel ->
        let k = ref 0 in
        for j = 0 to n - 1 do
          let i = Array.unsafe_get sel j in
          Array.unsafe_set sel !k i;
          let x = Array.unsafe_get a i in
          let c1 = fcmp x v1 in
          let s1 = Bool.to_int (c1 >= 0) + Bool.to_int (c1 > 0) in
          let c2 = fcmp x v2 in
          let s2 = Bool.to_int (c2 >= 0) + Bool.to_int (c2 > 0) in
          k := !k + ((m1 lsr s1) land (m2 lsr s2) land 1)
        done;
        !k);
  }

let kern_int_const2 (a : int array) op1 (v1 : float) op2 (v2 : float) =
  let m1 = sign_mask op1 and m2 = sign_mask op2 in
  {
    kdense =
      (fun lo len sel ->
        let k = ref 0 in
        for i = lo to lo + len - 1 do
          Array.unsafe_set sel !k i;
          let x = float_of_int (Array.unsafe_get a i) in
          let c1 = fcmp x v1 in
          let s1 = Bool.to_int (c1 >= 0) + Bool.to_int (c1 > 0) in
          let c2 = fcmp x v2 in
          let s2 = Bool.to_int (c2 >= 0) + Bool.to_int (c2 > 0) in
          k := !k + ((m1 lsr s1) land (m2 lsr s2) land 1)
        done;
        !k);
    krefine =
      (fun n sel ->
        let k = ref 0 in
        for j = 0 to n - 1 do
          let i = Array.unsafe_get sel j in
          Array.unsafe_set sel !k i;
          let x = float_of_int (Array.unsafe_get a i) in
          let c1 = fcmp x v1 in
          let s1 = Bool.to_int (c1 >= 0) + Bool.to_int (c1 > 0) in
          let c2 = fcmp x v2 in
          let s2 = Bool.to_int (c2 >= 0) + Bool.to_int (c2 > 0) in
          k := !k + ((m1 lsr s1) land (m2 lsr s2) land 1)
        done;
        !k);
  }

(* Row predicates specialized on the column's physical representation
   and the comparator: the representation/op dispatch happens once per
   kernel invocation (per batch or per key group), never per row. The
   fallback arm mirrors the per-row path exactly — [float_get] raises on
   string cells just as the rowwise float-compiled filter would. *)
let pass_col_num (col : Colbatch.col) op (v : float) : int -> bool =
  match col with
  | Colbatch.CFloat a -> (
      match op with
      | Calc.Eq -> fun i -> fcmp (Array.unsafe_get a i) v = 0
      | Calc.Neq -> fun i -> fcmp (Array.unsafe_get a i) v <> 0
      | Calc.Lt -> fun i -> fcmp (Array.unsafe_get a i) v < 0
      | Calc.Lte -> fun i -> fcmp (Array.unsafe_get a i) v <= 0
      | Calc.Gt -> fun i -> fcmp (Array.unsafe_get a i) v > 0
      | Calc.Gte -> fun i -> fcmp (Array.unsafe_get a i) v >= 0)
  | Colbatch.CInt a | Colbatch.CDate a -> (
      match op with
      | Calc.Eq -> fun i -> fcmp (float_of_int (Array.unsafe_get a i)) v = 0
      | Calc.Neq -> fun i -> fcmp (float_of_int (Array.unsafe_get a i)) v <> 0
      | Calc.Lt -> fun i -> fcmp (float_of_int (Array.unsafe_get a i)) v < 0
      | Calc.Lte -> fun i -> fcmp (float_of_int (Array.unsafe_get a i)) v <= 0
      | Calc.Gt -> fun i -> fcmp (float_of_int (Array.unsafe_get a i)) v > 0
      | Calc.Gte -> fun i -> fcmp (float_of_int (Array.unsafe_get a i)) v >= 0)
  | col ->
      let t = ftest op in
      fun i -> t (Colbatch.float_get col i) v

let pass_col_col (ca : Colbatch.col) (cb : Colbatch.col) op : int -> bool =
  let t = ftest op in
  match (ca, cb) with
  | Colbatch.CFloat a, Colbatch.CFloat b ->
      fun i -> t (Array.unsafe_get a i) (Array.unsafe_get b i)
  | _ -> fun i -> t (Colbatch.float_get ca i) (Colbatch.float_get cb i)

(* String filter against a constant. With a dictionary-encoded column
   the comparison is precomputed once per distinct entry and each row
   costs one table lookup by code. The table is cached on the
   dictionary's physical identity — [trunc]/[gather] share dictionaries,
   so one table serves every key group of a batch. *)
let pass_col_str (cache : (Colbatch.dict * bool array) option ref)
    (col : Colbatch.col) op (kv : Value.t) : int -> bool =
  match col with
  | Colbatch.CDict (d, codes) ->
      let tbl =
        match !cache with
        | Some (d', t) when d' == d -> t
        | _ ->
            let t =
              Array.init (Colbatch.dict_size d) (fun e ->
                  Calc.eval_cmp op (Value.String (Colbatch.dict_entry d e)) kv)
            in
            cache := Some (d, t);
            t
      in
      fun i -> Array.unsafe_get tbl (Array.unsafe_get codes i)
  | col -> fun i -> Calc.eval_cmp op (Colbatch.get col i) kv


(* One independent execution instance of a group: its own batch cursor,
   accessor caches, auxiliary slots, and scratch — so instances on
   different domains share nothing but the read-only compacted columns
   and the store pools they probe. [buffered] gives each member a private
   [Gmr] output buffer (paired with its merge target) instead of writing
   the target pool directly; the parallel driver merges the buffers
   serially after the barrier. *)
(* One member of an execution instance: its per-row closure plus the
   selection-vector kernels hoisted from its filter chain. [gm_kerns]
   holds pass *builders*: they read [ctx.vc_cols] (assigned once per
   batch) and specialize on the column representation, so the drivers
   rebuild [gm_passes] exactly once per batch ([prep_insts]) and the
   grouped driver pays no per-group dispatch or closure allocation.
   [gm_sel] is the member's packed survivor index vector (grown on
   demand); [gm_cnt] is the survivor count after the last kernel pass,
   or -1 when the member runs dense (no kernels, or the grouped driver
   chose the dense loop for it this group). *)
type gmember = {
  gm_run : unit -> unit;
  gm_kerns : (unit -> kern) array;
      (* kernel builders: called after [vc_cols] is set for the batch *)
  mutable gm_passes : kern array;
      (* built kernels, refreshed once per batch ([prep_inst]) *)
  mutable gm_sel : int array;
  mutable gm_cnt : int;
}

type ginst = {
  gi_ctx : vctx;
  gi_members : gmember array;
  gi_kerned : bool;
      (* any member with kernels? false routes the drivers through the
         row-major loops (identical to the pre-selection-vector path:
         no survivor bookkeeping, no per-member passes) *)
  gi_gaccs : gacc array;
  gi_gslices : gslice array;
  gi_bufs : (Pool.t * Gmr.t) array; (* per member, only when buffered *)
  gi_clears : Pool.t list; (* Assign targets, cleared before any run *)
  gi_boxed : int array;
      (* column slots read as boxed [Value]s by some per-row reader;
         batch prep pre-boxes these (see [box_reads]) *)
}

let bind_instance (rt : t) ~(shape : gshape) ~buffered (ps : vplan list) :
    ginst =
  let cpos = shape.sh_cpos in
  let ctx = { vc_cols = [||]; vc_mults = [||]; vc_counts = [||]; vc_row = 0 } in
  let gaccs = ref [] in
  let gacc_for map cols =
    let ccols = Array.of_list (List.map (fun c -> cpos.(c)) cols) in
    let p = pool rt map in
    match
      List.find_opt (fun a -> a.ga_pool == p && a.ga_key = ccols) !gaccs
    with
    | Some a -> a
    | None ->
        let a =
          {
            ga_pool = p;
            ga_key = ccols;
            ga_scratch = Array.make (Array.length ccols) (Value.Int 0);
            ga_val = 0.;
            ga_uses = 0;
          }
        in
        gaccs := !gaccs @ [ a ];
        a
  in
  let gslices = ref [] in
  let gslice_for (sl : vslice) =
    let bcols = Array.map (fun c -> cpos.(c)) sl.sl_bcols in
    let p = pool rt sl.sl_map in
    match
      List.find_opt
        (fun g -> g.gs_pool == p && g.gs_bcols = bcols && g.gs_bpos = sl.sl_bpos)
        !gslices
    with
    | Some g -> g
    | None ->
        let g =
          {
            gs_pool = p;
            gs_index = Pool.find_slice p sl.sl_bpos;
            gs_bcols = bcols;
            gs_bpos = sl.sl_bpos;
            gs_sub = Array.make (Array.length bcols) (Value.Int 0);
            gs_keys = [||];
            gs_ms = [||];
            gs_n = 0;
            gs_uses = 0;
          }
        in
        gslices := !gslices @ [ g ];
        g
  in
  let ops = rt.ops in
  let bufs = ref [] in
  (* compacted columns some bound reader reads as boxed [Value]s, row by
     row — the batch prep pre-boxes exactly these once per batch so the
     hot loops chase one pointer instead of allocating per read *)
  let boxed_cols : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let bind_member (p : vplan) =
    let accs =
      Array.of_list
        (List.map (fun pr -> gacc_for pr.vb_map pr.vb_cols) p.vp_probes)
    in
    (* auxiliary slots: lift variables and slice outputs *)
    let aux_slots = Hashtbl.create 8 in
    let naux = ref 0 in
    List.iter
      (function
        | VLift (n, _) ->
            Hashtbl.replace aux_slots n !naux;
            incr naux
        | VSlice sl ->
            List.iter
              (fun (v : Schema.var) ->
                Hashtbl.replace aux_slots v.name !naux;
                incr naux)
              sl.sl_outs
        | _ -> ())
      p.vp_steps;
    let aux_arr = Array.make (max 1 !naux) (Value.Int 0) in
    let aux_slot n =
      match Hashtbl.find_opt aux_slots n with
      | Some i -> i
      | None -> invalid_arg ("Runtime: unbound vectorized variable " ^ n)
    in
    (* resolve against this member's own occurrence naming: fused members
       may access the shared source under different positional names *)
    let pos_of name =
      let rec go i = function
        | [] -> None
        | (x : Schema.var) :: tl ->
            if String.equal x.name name then Some i else go (i + 1) tl
      in
      go 0 p.vp_source.vs_vars
    in
    let reader_of = function
      | VSrc c ->
          let cc = cpos.(c) in
          Hashtbl.replace boxed_cols cc ();
          fun () -> Colbatch.get ctx.vc_cols.(cc) ctx.vc_row
      | VAux n ->
          let i = aux_slot n in
          fun () -> aux_arr.(i)
    in
    let reader_of_var (v : Schema.var) =
      match pos_of v.name with
      | Some c -> reader_of (VSrc c)
      | None -> reader_of (VAux v.name)
    in
    (* value expressions over bound columns, resolved at bind time *)
    let rec compile_ve (ve : Vexpr.t) : unit -> Value.t =
      match ve with
      | Vexpr.Const c -> fun () -> c
      | Vexpr.Var x -> reader_of_var x
      | Vexpr.Add (a, b) -> vbin Value.add a b
      | Vexpr.Sub (a, b) -> vbin Value.sub a b
      | Vexpr.Mul (a, b) -> vbin Value.mul a b
      | Vexpr.Div (a, b) -> vbin Value.div a b
      | Vexpr.Neg a ->
          let ca = compile_ve a in
          fun () -> Value.neg (ca ())
      | Vexpr.Floor a ->
          let ca = compile_ve a in
          fun () ->
            Value.Int (int_of_float (Float.floor (Value.to_float (ca ()))))
      | Vexpr.Min (a, b) ->
          let ca = compile_ve a and cb = compile_ve b in
          fun () ->
            let x = ca () and y = cb () in
            if Value.compare x y <= 0 then x else y
      | Vexpr.Max (a, b) ->
          let ca = compile_ve a and cb = compile_ve b in
          fun () ->
            let x = ca () and y = cb () in
            if Value.compare x y >= 0 then x else y
    and vbin op a b =
      let ca = compile_ve a and cb = compile_ve b in
      fun () -> op (ca ()) (cb ())
    in
    (* Float-specialized compilation: statically numeric expressions
       evaluate as raw floats, so hot filters and weights never box a
       [Value] per row (typed columns otherwise allocate on every read).
       The bool tracks possible [Date] operands, whose ordering under
       [Value.compare] (Min/Max) and [Value.neg] differ from plain
       numerics — those shapes fall back to the boxed evaluator. *)
    let rec compile_vf (ve : Vexpr.t) : ((unit -> float) * bool) option =
      match ve with
      | Vexpr.Const (Value.Int i) ->
          let f = float_of_int i in
          Some ((fun () -> f), false)
      | Vexpr.Const (Value.Float f) -> Some ((fun () -> f), false)
      | Vexpr.Const (Value.Date d) ->
          let f = float_of_int d in
          Some ((fun () -> f), true)
      | Vexpr.Const (Value.String _) -> None
      | Vexpr.Var x -> (
          if x.ty = Value.TString then None
          else
            let dateish = x.ty = Value.TDate in
            match pos_of x.name with
            | Some c ->
                let cc = cpos.(c) in
                Some
                  ( (fun () -> Colbatch.float_get ctx.vc_cols.(cc) ctx.vc_row),
                    dateish )
            | None ->
                let i = aux_slot x.name in
                Some ((fun () -> Value.to_float aux_arr.(i)), dateish))
      | Vexpr.Add (a, b) -> fbin ( +. ) a b
      | Vexpr.Sub (a, b) -> fbin ( -. ) a b
      | Vexpr.Mul (a, b) -> fbin ( *. ) a b
      | Vexpr.Div (a, b) -> fbin ( /. ) a b
      | Vexpr.Neg a -> (
          match compile_vf a with
          | Some (fa, false) -> Some ((fun () -> -.fa ()), false)
          | _ -> None)
      | Vexpr.Floor a -> (
          match compile_vf a with
          | Some (fa, d) -> Some ((fun () -> Float.floor (fa ())), d)
          | None -> None)
      | Vexpr.Min (a, b) -> fminmax Float.min a b
      | Vexpr.Max (a, b) -> fminmax Float.max a b
    and fbin op a b =
      match (compile_vf a, compile_vf b) with
      | Some (fa, da), Some (fb, db) ->
          Some ((fun () -> op (fa ()) (fb ())), da || db)
      | _ -> None
    and fminmax op a b =
      match (compile_vf a, compile_vf b) with
      | Some (fa, false), Some (fb, false) ->
          Some ((fun () -> op (fa ()) (fb ())), false)
      | _ -> None
    in
    (* Hoist statically-typed filters out of the per-row chain into
       selection-vector kernels. [classify_filter] is the shared
       authority with the EXPLAIN labels, so [selvec:]/[rowwise:] in the
       plan matches what actually runs. A hoisted membership test
       ([VFilterIn]) keeps its match-count multiply in the residual
       chain — the kernel only gates zero-match rows. *)
    let kerns = ref [] in
    let pass_builder ((op, l, r) : Calc.cmp_op * kside * kside) :
        unit -> int -> bool =
      match (l, r) with
      | KCol c, KNum v ->
          let cc = cpos.(c) in
          fun () -> pass_col_num ctx.vc_cols.(cc) op v
      | KCol c1, KCol c2 ->
          let a = cpos.(c1) and b = cpos.(c2) in
          fun () -> pass_col_col ctx.vc_cols.(a) ctx.vc_cols.(b) op
      | KSCol c, KStr s ->
          let cc = cpos.(c) in
          let kv = Value.String s in
          let cache = ref None in
          fun () -> pass_col_str cache ctx.vc_cols.(cc) op kv
      | KSCol c1, KSCol c2 ->
          let a = cpos.(c1) and b = cpos.(c2) in
          fun () ->
            let ca = ctx.vc_cols.(a) and cb = ctx.vc_cols.(b) in
            fun i -> Calc.eval_cmp op (Colbatch.get ca i) (Colbatch.get cb i)
      | _ -> assert false (* [classify_filter] returns no other pairing *)
    in
    (* A single comparison gets the fully-specialized loops when its
       column is unboxed; everything else wraps its row predicate in the
       generic packed loops. *)
    let kern_builder ((op, l, r) as cf : Calc.cmp_op * kside * kside) :
        unit -> kern =
      match (l, r) with
      | KCol c, KNum v ->
          let cc = cpos.(c) in
          fun () -> (
            match ctx.vc_cols.(cc) with
            | Colbatch.CFloat a -> kern_float_const a op v
            | Colbatch.CInt a | Colbatch.CDate a -> kern_int_const a op v
            | col -> kern_of_pass (pass_col_num col op v))
      | _ ->
          let pb = pass_builder cf in
          fun () -> kern_of_pass (pb ())
    in
    (* Two constant comparisons on the same column fuse into one band
       kernel — one pass, one load per row. *)
    let kern_builder2 c op1 v1 op2 v2 : unit -> kern =
      let cc = cpos.(c) in
      fun () ->
        match ctx.vc_cols.(cc) with
        | Colbatch.CFloat a -> kern_float_const2 a op1 v1 op2 v2
        | Colbatch.CInt a | Colbatch.CDate a -> kern_int_const2 a op1 v1 op2 v2
        | col ->
            let p1 = pass_col_num col op1 v1 and p2 = pass_col_num col op2 v2 in
            kern_of_pass (fun i -> p1 i && p2 i)
    in
    let consts = ref [] (* constant filters, kept in step order *) in
    let add_kern build = kerns := !kerns @ [ build ] in
    let steps =
      List.filter
        (fun st ->
          match st with
          | VFilter (op, a, b) -> (
              match classify_filter p (op, a, b) with
              | Some (op', KCol c, KNum v) ->
                  consts := !consts @ [ (c, op', v) ];
                  false
              | Some cf ->
                  add_kern (kern_builder cf);
                  false
              | None -> true)
          | VFilterIn cs ->
              let cfs = List.map (classify_filter p) cs in
              if List.for_all (fun o -> o <> None) cfs then begin
                let builders =
                  Array.of_list (List.map (fun o -> pass_builder (Option.get o)) cfs)
                in
                add_kern (fun () ->
                    let pfs = Array.map (fun b -> b ()) builders in
                    let np = Array.length pfs in
                    kern_of_pass (fun i ->
                        let rec any j =
                          j < np && ((Array.unsafe_get pfs j) i || any (j + 1))
                        in
                        any 0))
              end;
              true (* the match-count multiply stays in the chain *)
          | _ -> true)
        p.vp_steps
    in
    (* pair same-column constant filters into band kernels; constant
       kernels run before the generic ones (cheapest per scanned row) *)
    let rec pair = function
      | [] -> []
      | (c, op, v) :: rest -> (
          match List.partition (fun (c2, _, _) -> c2 = c) rest with
          | (_, op2, v2) :: more_same, others ->
              kern_builder2 c op v op2 v2 :: pair (more_same @ others)
          | [], _ -> kern_builder (op, KCol c, KNum v) :: pair rest)
    in
    kerns := pair !consts @ !kerns;
    (* account member references for the probes-saved model *)
    List.iter
      (function
        | VGet i | VExists i -> accs.(i).ga_uses <- accs.(i).ga_uses + 1
        | VLift (_, ids) ->
            List.iter (fun i -> accs.(i).ga_uses <- accs.(i).ga_uses + 1) ids
        | _ -> ())
      p.vp_steps;
    let target = pool rt p.vp_stmt.target in
    (* An all-source target key emits through the columnar bulk path:
       hash and compare typed cells in place ([Colbatch.row_hash] is
       bit-compatible with [Oaidx.hash]), materializing the key tuple
       only when the record is first inserted. Keys involving lift/slice
       outputs fall back to the scratch-tuple path. *)
    let src_tkey =
      let rec go acc = function
        | [] -> Some (Array.of_list (List.rev acc))
        | VSrc c :: tl -> go (cpos.(c) :: acc) tl
        | VAux _ :: _ -> None
      in
      go [] p.vp_tkey
    in
    let emit =
      match src_tkey with
      | Some tkc ->
          let eq (key : Vtuple.t) =
            Colbatch.row_eq ctx.vc_cols tkc ctx.vc_row key
          in
          let make () = Colbatch.row_tuple ctx.vc_cols tkc ctx.vc_row in
          if buffered then begin
            let buf = Gmr.create () in
            bufs := (target, buf) :: !bufs;
            fun m ->
              Gmr.add_by buf
                ~hash:(Colbatch.row_hash ctx.vc_cols tkc ctx.vc_row)
                ~eq ~make m
          end
          else
            fun m ->
              Pool.add_by target
                ~hash:(Colbatch.row_hash ctx.vc_cols tkc ctx.vc_row)
                ~eq ~make m
      | None ->
          let tk = Array.of_list (List.map reader_of p.vp_tkey) in
          let tw = Array.length tk in
          let scratch = Array.make tw (Value.Int 0) in
          if buffered then begin
            let buf = Gmr.create () in
            bufs := (target, buf) :: !bufs;
            fun m ->
              for j = 0 to tw - 1 do
                Array.unsafe_set scratch j ((Array.unsafe_get tk j) ())
              done;
              Gmr.add_borrow buf scratch m
          end
          else
            fun m ->
              for j = 0 to tw - 1 do
                Array.unsafe_set scratch j ((Array.unsafe_get tk j) ())
              done;
              Pool.add_borrow target scratch m
    in
    let rec chain steps (k : float -> unit) : float -> unit =
      match steps with
      | [] -> k
      | VGet i :: tl ->
          let a = accs.(i) and next = chain tl k in
          fun m ->
            let v = a.ga_val in
            if v <> 0. then next (m *. v)
      | VExists i :: tl ->
          let a = accs.(i) and next = chain tl k in
          fun m -> if Float.abs a.ga_val >= Gmr.zero_eps then next m
      | VLift (n, ids) :: tl ->
          let s = aux_slot n
          and terms = Array.of_list (List.map (fun i -> accs.(i)) ids)
          and next = chain tl k in
          fun m ->
            let t = ref 0. in
            Array.iter (fun a -> t := !t +. a.ga_val) terms;
            aux_arr.(s) <- Value.Float !t;
            next m
      | VFilter (op, a, b) :: tl -> (
          let next = chain tl k in
          match (compile_vf a, compile_vf b) with
          | Some (fa, _), Some (fb, _) ->
              (* unboxed comparison; [ftest] replicates exactly the
                 numeric branch of [Value.compare_approx] *)
              let test = ftest op in
              fun m -> if test (fa ()) (fb ()) then next m
          | _ ->
              let ca = compile_ve a and cb = compile_ve b in
              fun m -> if Calc.eval_cmp op (ca ()) (cb ()) then next m)
      | VFilterIn cs :: tl ->
          (* membership disjunction: the factor's value is the number of
             matching disjuncts, multiplied into the row weight (a
             hoisted kernel has already gated zero-match rows, making
             this a counted pass-through for them) *)
          let next = chain tl k in
          let tests =
            Array.of_list
              (List.map
                 (fun (op, a, b) ->
                   match (compile_vf a, compile_vf b) with
                   | Some (fa, _), Some (fb, _) ->
                       let t = ftest op in
                       fun () -> t (fa ()) (fb ())
                   | _ ->
                       let ca = compile_ve a and cb = compile_ve b in
                       fun () -> Calc.eval_cmp op (ca ()) (cb ()))
                 cs)
          in
          fun m ->
            let c = ref 0 in
            Array.iter (fun t -> if t () then incr c) tests;
            if !c > 0 then next (m *. float_of_int !c)
      | VWeight ve :: tl -> (
          let next = chain tl k in
          match compile_vf ve with
          | Some (fv, _) ->
              fun m ->
                let x = fv () in
                if x <> 0. then next (m *. x)
          | None ->
              let cv = compile_ve ve in
              fun m ->
                let x = Value.to_float (cv ()) in
                if x <> 0. then next (m *. x))
      | VSlice _ :: _ -> assert false
    in
    let pre, sliced =
      let rec split acc = function
        | [] -> (List.rev acc, None)
        | VSlice sl :: post -> (List.rev acc, Some (sl, post))
        | st :: tl -> split (st :: acc) tl
      in
      split [] steps
    in
    let body =
      match sliced with
      | None -> chain pre emit
      | Some (sl, post) ->
          let gs = gslice_for sl in
          gs.gs_uses <- gs.gs_uses + 1;
          let out_slots =
            Array.of_list
              (List.map (fun (v : Schema.var) -> aux_slot v.name) sl.sl_outs)
          in
          let opos = sl.sl_opos in
          let now = Array.length out_slots in
          let postk = chain post emit in
          let inner m =
            for j = 0 to gs.gs_n - 1 do
              Obs.Counter.incr ops;
              let key = gs.gs_keys.(j) in
              for x = 0 to now - 1 do
                aux_arr.(out_slots.(x)) <- key.(opos.(x))
              done;
              postk (m *. gs.gs_ms.(j))
            done
          in
          chain pre inner
    in
    let sign = p.vp_sign in
    let exists = p.vp_source.vs_exists in
    let clear = p.vp_stmt.op = Prog.Assign in
    let run () =
      let base =
        if exists then ctx.vc_counts.(ctx.vc_row) else ctx.vc_mults.(ctx.vc_row)
      in
      if base <> 0. then begin
        Obs.Counter.incr ops;
        body (base *. sign)
      end
    in
    ((if clear then Some target else None), run, Array.of_list !kerns)
  in
  let members = List.map bind_member ps in
  {
    gi_ctx = ctx;
    gi_members =
      Array.of_list
        (List.map
           (fun (_, run, kerns) ->
             {
               gm_run = run;
               gm_kerns = kerns;
               gm_passes = [||];
               gm_sel = [||];
               gm_cnt = -1;
             })
           members);
    gi_kerned =
      List.exists (fun (_, _, kerns) -> Array.length kerns > 0) members;
    gi_gaccs = Array.of_list !gaccs;
    gi_gslices = Array.of_list !gslices;
    gi_bufs = Array.of_list (List.rev !bufs);
    gi_clears = List.filter_map (fun (c, _, _) -> c) members;
    gi_boxed =
      (let cs = Hashtbl.fold (fun c () acc -> c :: acc) boxed_cols [] in
       Array.of_list (List.sort compare cs));
  }

let resolve_slice ctx gs =
  gs.gs_n <- 0;
    let push key m =
      if gs.gs_n >= Array.length gs.gs_keys then begin
        let cap = max 16 (2 * Array.length gs.gs_keys) in
        let nk = Array.make cap [||] and nm = Array.make cap 0. in
        Array.blit gs.gs_keys 0 nk 0 gs.gs_n;
        Array.blit gs.gs_ms 0 nm 0 gs.gs_n;
        gs.gs_keys <- nk;
        gs.gs_ms <- nm
      end;
      gs.gs_keys.(gs.gs_n) <- key;
      gs.gs_ms.(gs.gs_n) <- m;
      gs.gs_n <- gs.gs_n + 1
    in
    let bw = Array.length gs.gs_bcols in
    for j = 0 to bw - 1 do
      gs.gs_sub.(j) <- Colbatch.get ctx.vc_cols.(gs.gs_bcols.(j)) ctx.vc_row
    done;
    match gs.gs_index with
    | Some index -> Pool.slice gs.gs_pool ~index gs.gs_sub push
    | None ->
        Pool.foreach gs.gs_pool (fun key m ->
            let ok = ref true in
            for j = 0 to bw - 1 do
              if not (Value.equal key.(gs.gs_bpos.(j)) gs.gs_sub.(j)) then
                ok := false
            done;
            if !ok then push key m)

(* Build every member's kernel passes for the current batch. Must run
   after the driver assigns [ctx.vc_cols]; the built passes capture the
   batch's concrete columns, so the per-group hot loop below never
   re-dispatches on column representation or allocates a closure. *)
let prep_inst (inst : ginst) =
  if inst.gi_kerned then
    Array.iter
      (fun m ->
        if Array.length m.gm_kerns > 0 then
          m.gm_passes <- Array.map (fun build -> build ()) m.gm_kerns)
      inst.gi_members

(* Run member [m]'s kernel pipeline over rows [lo, lo+len): a dense
   first pass, then in-place refines over the survivors. Leaves the
   survivor count in [gm_cnt] and returns the (rows scanned, rows
   selected) tallies — scanned counts every pass's input rows, selected
   the final survivor-vector length. *)
let run_kerns (m : gmember) lo len =
  if Array.length m.gm_sel < len then m.gm_sel <- Array.make (max 1024 len) 0;
  let sel = m.gm_sel in
  let passes = m.gm_passes in
  let scanned = ref len in
  let c = ref ((Array.unsafe_get passes 0).kdense lo len sel) in
  for ki = 1 to Array.length passes - 1 do
    scanned := !scanned + !c;
    c := (Array.unsafe_get passes ki).krefine !c sel
  done;
  m.gm_cnt <- !c;
  (!scanned, !c)

(* Run one instance straight over compacted rows [lo, hi) (the no-access
   fast path: nothing to resolve per group). Members with hoisted filter
   kernels scan their columns into packed survivor vectors first and
   fire the per-row chain only over survivors; kernel-less members
   iterate densely. Member-major order is sound for fused groups for
   the same reason fusion itself is ([fuse_ok]): no member reads another
   member's target while the group runs. Returns the (rows scanned,
   rows selected) kernel tallies. *)
let run_rows (inst : ginst) lo hi =
  let ctx = inst.gi_ctx in
  let members = inst.gi_members in
  if not inst.gi_kerned then begin
    (* pure row-major, exactly the pre-kernel path *)
    let nm = Array.length members in
    for r = lo to hi - 1 do
      ctx.vc_row <- r;
      for mi = 0 to nm - 1 do
        (Array.unsafe_get members mi).gm_run ()
      done
    done;
    (0, 0)
  end
  else begin
    let svscan = ref 0 and svsel = ref 0 in
    for mi = 0 to Array.length members - 1 do
      let m = members.(mi) in
      if Array.length m.gm_kerns = 0 then
        for r = lo to hi - 1 do
          ctx.vc_row <- r;
          m.gm_run ()
        done
      else begin
        let sc, se = run_kerns m lo (hi - lo) in
        svscan := !svscan + sc;
        svsel := !svsel + se;
        let sel = m.gm_sel in
        for j = 0 to m.gm_cnt - 1 do
          ctx.vc_row <- Array.unsafe_get sel j;
          m.gm_run ()
        done
      end
    done;
    (!svscan, !svsel)
  end

(* Run one instance over key groups [glo, ghi): run the selection
   kernels first, resolve the shared accessors once per group, then fire
   members over their survivors (kernel-less members over every row).
   When every member has kernels and nothing survives the group, the
   accessors are never resolved at all — the whole group is skipped
   before a single probe. Returns (probes saved, rows scanned, rows
   selected) for the range. *)
let run_groups (inst : ginst) starts (counts : float array) glo ghi =
  let ctx = inst.gi_ctx in
  let members = inst.gi_members in
  let nm = Array.length members in
  let saved = ref 0 and svscan = ref 0 and svsel = ref 0 in
  if not inst.gi_kerned then
    (* pure row-major per group, exactly the pre-kernel path *)
    for g = glo to ghi - 1 do
      let lo = starts.(g) and hi = starts.(g + 1) in
      ctx.vc_row <- lo;
      let orig = ref 0. in
      for r = lo to hi - 1 do
        orig := !orig +. counts.(r)
      done;
      let orig = int_of_float !orig in
      Array.iter
        (fun a ->
          let kw = Array.length a.ga_key in
          for j = 0 to kw - 1 do
            a.ga_scratch.(j) <- Colbatch.get ctx.vc_cols.(a.ga_key.(j)) lo
          done;
          a.ga_val <- Pool.get a.ga_pool a.ga_scratch;
          saved := !saved + (a.ga_uses * orig) - 1)
        inst.gi_gaccs;
      Array.iter
        (fun gs ->
          resolve_slice ctx gs;
          saved := !saved + (gs.gs_uses * orig) - 1)
        inst.gi_gslices;
      for r = lo to hi - 1 do
        ctx.vc_row <- r;
        for mi = 0 to nm - 1 do
          (Array.unsafe_get members mi).gm_run ()
        done
      done
    done
  else
  for g = glo to ghi - 1 do
    let lo = starts.(g) and hi = starts.(g + 1) in
    ctx.vc_row <- lo;
    let live = ref false in
    for mi = 0 to nm - 1 do
      let m = members.(mi) in
      if Array.length m.gm_kerns = 0 then begin
        m.gm_cnt <- -1;
        live := true
      end
      else begin
        let sc, se = run_kerns m lo (hi - lo) in
        svscan := !svscan + sc;
        svsel := !svsel + se;
        if se > 0 then live := true
      end
    done;
    (* the row-at-a-time path would have probed per source row per
       reference; the group resolves each accessor exactly once — or
       zero times, when the kernels filtered the whole group away *)
    let orig = ref 0. in
    for r = lo to hi - 1 do
      orig := !orig +. counts.(r)
    done;
    let orig = int_of_float !orig in
    if !live then begin
      Array.iter
        (fun a ->
          let kw = Array.length a.ga_key in
          for j = 0 to kw - 1 do
            a.ga_scratch.(j) <- Colbatch.get ctx.vc_cols.(a.ga_key.(j)) lo
          done;
          a.ga_val <- Pool.get a.ga_pool a.ga_scratch;
          saved := !saved + (a.ga_uses * orig) - 1)
        inst.gi_gaccs;
      Array.iter
        (fun gs ->
          resolve_slice ctx gs;
          saved := !saved + (gs.gs_uses * orig) - 1)
        inst.gi_gslices;
      for mi = 0 to nm - 1 do
        let m = members.(mi) in
        if m.gm_cnt < 0 then
          for r = lo to hi - 1 do
            ctx.vc_row <- r;
            m.gm_run ()
          done
        else begin
          let sel = m.gm_sel in
          for j = 0 to m.gm_cnt - 1 do
            ctx.vc_row <- Array.unsafe_get sel j;
            m.gm_run ()
          done
        end
      done
    end
    else begin
      Array.iter (fun a -> saved := !saved + (a.ga_uses * orig)) inst.gi_gaccs;
      Array.iter
        (fun gs -> saved := !saved + (gs.gs_uses * orig))
        inst.gi_gslices
    end
  done;
  (!saved, !svscan, !svsel)

let source_colbatch rt (shape : gshape) raw =
  if shape.sh_src.vs_batch then Lazy.force raw
  else
    let p = pool rt shape.sh_src.vs_name in
    Colbatch.of_iter ~width:shape.sh_width ~count:(Pool.cardinal p) (fun f ->
        Pool.foreach p f)

(* Merged batch rows whose multiplicity cancelled to ~0 can be dropped
   before execution when every member weights rows by multiplicity; an
   Exists-wrapped source reads support counts instead, and a cancelled
   row still has support. *)
let group_drop_cancelled (ps : vplan list) =
  List.for_all (fun (p : vplan) -> not p.vp_source.vs_exists) ps

(* Whether any member resolves store accessors per group (probes or
   slices) — the grouped driver only pays for compaction when it does. *)
(* Pre-box the columns in [boxed] (compacted slot numbers): per-row
   boxed readers then return an existing heap value instead of
   allocating a fresh [Value] on every read. Columns only read through
   unboxed paths (float-compiled filters/weights, [row_hash]) keep
   their typed representation. *)
let box_reads (cols : Colbatch.col array) n (boxed : int array) =
  Array.iter
    (fun c ->
      match cols.(c) with
      (* CDict reads are already allocation-free: [get] returns the
         dictionary's shared box, so there is nothing to pre-box. *)
      | Colbatch.CBoxed _ | Colbatch.CDict _ -> ()
      | col -> cols.(c) <- Colbatch.CBoxed (Array.init n (Colbatch.get col)))
    boxed

let plans_have_access (ps : vplan list) =
  List.exists
    (fun (p : vplan) ->
      p.vp_probes <> []
      || List.exists (function VSlice _ -> true | _ -> false) p.vp_steps)
    ps

let bind_group (rt : t) (ps : vplan list) : Colbatch.t Lazy.t -> unit =
  let shape = group_shape ps in
  let drop_cancelled = group_drop_cancelled ps in
  let has_access = plans_have_access ps in
  let wd = dict_want ps shape ~keys:has_access in
  let inst = bind_instance rt ~shape ~buffered:false ps in
  let ctx = inst.gi_ctx in
  let clears = inst.gi_clears in
  (* No store accessors means grouping has nothing to amortize: skip the
     sort-based compaction and run the members straight over the batch
     rows (each batch/pool row is a distinct tuple, so per-row support
     counts are 1). *)
  let no_access = not has_access in
  let ones = ref [||] in
  let ones_of n =
    if Array.length !ones < n then ones := Array.make (max n 1024) 1.;
    !ones
  in
  if no_access then fun raw ->
    let cb = source_colbatch rt shape raw in
    if wd <> [] then Colbatch.dictify_cols cb wd;
    List.iter Pool.clear clears;
    let n = Colbatch.length cb in
    ctx.vc_cols <- Array.map (Colbatch.col cb) shape.sh_sel;
    box_reads ctx.vc_cols n inst.gi_boxed;
    ctx.vc_mults <- Colbatch.mults cb;
    ctx.vc_counts <- ones_of n;
    prep_inst inst;
    let sc, se = run_rows inst 0 n in
    Obs.Counter.add m_selvec_scanned sc;
    Obs.Counter.add m_selvec_selected se;
    (* an Assign member's freshly-cleared target now holds exactly the
       distinct rows of the batch under that statement's key set: the
       difference is the per-statement batch compaction *)
    List.iter
      (fun p -> Obs.Counter.add m_rows_compacted (max 0 (n - Pool.cardinal p)))
      clears
  else fun raw ->
    let cb = source_colbatch rt shape raw in
    if wd <> [] then Colbatch.dictify_cols cb wd;
    List.iter Pool.clear clears;
    let comp, starts, counts =
      Colbatch.compact_group ~drop_cancelled cb ~key:shape.sh_sk
        ~rest:shape.sh_rest
    in
    Obs.Counter.add m_rows_compacted
      (Colbatch.length cb - Colbatch.length comp);
    ctx.vc_cols <- Array.init (Array.length shape.sh_sel) (Colbatch.col comp);
    box_reads ctx.vc_cols (Colbatch.length comp) inst.gi_boxed;
    ctx.vc_mults <- Colbatch.mults comp;
    ctx.vc_counts <- counts;
    prep_inst inst;
    let saved, sc, se =
      run_groups inst starts counts 0 (Array.length starts - 1)
    in
    Obs.Counter.add m_probes_saved saved;
    Obs.Counter.add m_selvec_scanned sc;
    Obs.Counter.add m_selvec_selected se

(* Domain-parallel driver for one vectorized group (§6's argument applied
   locally): D shared-nothing instances run disjoint contiguous ranges of
   the same compacted batch, emitting into private per-member buffers,
   which then merge serially into the target pools by ring [+]. Sound for
   every plannable group because a vectorized statement never reads its
   own target ([plan_stmt_exn]) and no member writes a pool any member
   probes ([fuse_ok]) — so during the fan-out, store pools are read-only
   and all writes land in domain-private buffers. Counter totals (ops,
   probes, rows compacted, probes saved) are identical to the serial
   driver's: the same groups resolve the same accessors, only on
   different domains. *)
let bind_group_par (rt : t) (pl : Par.Pool.t) (ps : vplan list) :
    Colbatch.t Lazy.t -> unit =
  let d = rt.domains in
  let shape = group_shape ps in
  let drop_cancelled = group_drop_cancelled ps in
  let has_access = plans_have_access ps in
  let wd = dict_want ps shape ~keys:has_access in
  let insts =
    Array.init d (fun _ -> bind_instance rt ~shape ~buffered:true ps)
  in
  let inst0 = insts.(0) in
  (* Assign targets are shared pools: every instance lists the same ones *)
  let clears = inst0.gi_clears in
  let no_access = not has_access in
  let merge () =
    Array.iter
      (fun inst ->
        Array.iter
          (fun (target, buf) ->
            (* bulk merge replaying the buffer's cached hashes; keys are
               transferred (the buffer is cleared immediately after) *)
            Pool.merge_gmr target buf;
            Gmr.clear buf)
          inst.gi_bufs)
      insts
  in
  let ones = ref [||] in
  let ones_of n =
    if Array.length !ones < n then ones := Array.make (max n 1024) 1.;
    !ones
  in
  if no_access then fun raw ->
    let cb = source_colbatch rt shape raw in
    if wd <> [] then Colbatch.dictify_cols cb wd;
    List.iter Pool.clear clears;
    let n = Colbatch.length cb in
    let cols = Array.map (Colbatch.col cb) shape.sh_sel in
    box_reads cols n inst0.gi_boxed;
    let mults = Colbatch.mults cb in
    let counts = ones_of n in
    let scs = Array.make d 0 and ses = Array.make d 0 in
    let tasks =
      Array.init d (fun di ->
          let lo = di * n / d and hi = (di + 1) * n / d in
          fun () ->
            let inst = insts.(di) in
            let ctx = inst.gi_ctx in
            ctx.vc_cols <- cols;
            ctx.vc_mults <- mults;
            ctx.vc_counts <- counts;
            prep_inst inst;
            let sc, se = run_rows inst lo hi in
            scs.(di) <- sc;
            ses.(di) <- se)
    in
    Par.Pool.run pl tasks;
    merge ();
    Obs.Counter.add m_selvec_scanned (Array.fold_left ( + ) 0 scs);
    Obs.Counter.add m_selvec_selected (Array.fold_left ( + ) 0 ses);
    List.iter
      (fun p -> Obs.Counter.add m_rows_compacted (max 0 (n - Pool.cardinal p)))
      clears
  else fun raw ->
    let cb = source_colbatch rt shape raw in
    if wd <> [] then Colbatch.dictify_cols cb wd;
    List.iter Pool.clear clears;
    let comp, starts, counts =
      Colbatch.compact_group ~drop_cancelled cb ~key:shape.sh_sk
        ~rest:shape.sh_rest
    in
    Obs.Counter.add m_rows_compacted
      (Colbatch.length cb - Colbatch.length comp);
    let cols = Array.init (Array.length shape.sh_sel) (Colbatch.col comp) in
    box_reads cols (Colbatch.length comp) inst0.gi_boxed;
    let mults = Colbatch.mults comp in
    let ng = Array.length starts - 1 in
    (* contiguous group ranges, balanced by compacted row count (group
       boundaries must not split: an accessor is resolved once per group) *)
    let bounds = Array.make (d + 1) ng in
    bounds.(0) <- 0;
    let total = Colbatch.length comp in
    let gi = ref 0 in
    for di = 1 to d - 1 do
      let row_target = di * total / d in
      while !gi < ng && starts.(!gi) < row_target do
        incr gi
      done;
      bounds.(di) <- !gi
    done;
    let saved = Array.make d 0 in
    let scs = Array.make d 0 and ses = Array.make d 0 in
    let tasks =
      Array.init d (fun di () ->
          let inst = insts.(di) in
          let ctx = inst.gi_ctx in
          ctx.vc_cols <- cols;
          ctx.vc_mults <- mults;
          ctx.vc_counts <- counts;
          prep_inst inst;
          let sv, sc, se =
            run_groups inst starts counts bounds.(di) bounds.(di + 1)
          in
          saved.(di) <- sv;
          scs.(di) <- sc;
          ses.(di) <- se)
    in
    Par.Pool.run pl tasks;
    merge ();
    Obs.Counter.add m_probes_saved (Array.fold_left ( + ) 0 saved);
    Obs.Counter.add m_selvec_scanned (Array.fold_left ( + ) 0 scs);
    Obs.Counter.add m_selvec_selected (Array.fold_left ( + ) 0 ses)

(* ------------------------------------------------------------------ *)
(* Program loading                                                     *)
(* ------------------------------------------------------------------ *)

let create ?(auto_index = true) ?(columnar = true) ?domains
    ?(par_min_rows = 128) (prog : Prog.t) =
  let domains =
    match domains with Some d -> max 1 d | None -> Par.default_domains ()
  in
  let slice_patterns = if auto_index then Patterns.slices prog else [] in
  let batch_patterns = if auto_index then Patterns.batch_slices prog else [] in
  let pools = Hashtbl.create 32 in
  List.iter
    (fun (m : Prog.map_decl) ->
      let slices =
        match List.assoc_opt m.mname slice_patterns with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace pools m.mname
        (Pool.create ~name:m.mname ~key_width:(List.length m.mschema) ~slices
           ()))
    prog.maps;
  let batch_pools = Hashtbl.create 8 in
  List.iter
    (fun (r, vars) ->
      let slices =
        match List.assoc_opt r batch_patterns with Some l -> l | None -> []
      in
      Hashtbl.replace batch_pools r
        (Pool.create ~name:("batch_" ^ r) ~key_width:(List.length vars)
           ~slices ()))
    prog.streams;
  let rt =
    {
      prog;
      pools;
      batch_pools;
      cur_tuple = Vtuple.empty;
      cur_mult = 0.;
      ops = Obs.Counter.make ~register:false "runtime_record_ops";
      domains;
      par = (if domains > 1 then Some (Par.get ~domains) else None);
      par_min_rows;
      triggers_batch = [];
      triggers_single = [];
    }
  in
  (* Batch mode: one ordered executor list per trigger — vectorized
     (possibly fused) statement groups interleaved with generic compiled
     statements, in original statement order. *)
  rt.triggers_batch <-
    List.map
      (fun (tr : Prog.trigger) ->
        let units =
          if columnar then plan_trigger prog tr
          else List.map (fun s -> UStmt s) tr.stmts
        in
        let tx_units =
          List.map
            (function
              | UStmt st ->
                  let label = "stmt:" ^ st.Prog.target in
                  let f = compile_stmt rt ~mode:Batch st in
                  {
                    eu_label = label;
                    eu_slot = Prof.slot ~trigger:tr.relation ~label;
                    eu_run = (fun _ -> f ());
                    eu_par = None;
                  }
              | UGroup ps ->
                  let label = route_label_of_group ps in
                  {
                    eu_label = label;
                    eu_slot = Prof.slot ~trigger:tr.relation ~label;
                    eu_run = bind_group rt ps;
                    eu_par =
                      (match rt.par with
                      | Some pl -> Some (bind_group_par rt pl ps)
                      | None -> None);
                  })
            units
        in
        let tx_load =
          List.exists
            (function
              | UStmt st -> Calc.has_deltas st.Prog.rhs
              | UGroup _ -> false)
            units
        in
        (tr.relation, { tx_load; tx_units }))
      prog.triggers;
  rt.triggers_single <-
    List.map
      (fun (tr : Prog.trigger) ->
        ( tr.relation,
          List.map
            (fun (st : Prog.stmt) ->
              ( Prof.slot ~trigger:tr.relation ~label:("stmt:" ^ st.target),
                compile_stmt rt ~mode:Single st ))
            tr.stmts ))
      prog.triggers;
  rt

let prog rt = rt.prog

let compile_stmts rt stmts = List.map (compile_stmt rt ~mode:Batch) stmts

let load_batch rt ~rel batch =
  let bp =
    match Hashtbl.find_opt rt.batch_pools rel with
    | Some p -> p
    | None -> invalid_arg ("Runtime.load_batch: unknown stream " ^ rel)
  in
  Pool.clear bp;
  Gmr.iter (fun tup m -> Pool.add bp tup m) batch

let add_to_map rt name tup m = Pool.add (pool rt name) tup m
let clear_map rt name = Pool.clear (pool rt name)
let map_cardinal rt name = Pool.cardinal (pool rt name)

let total_tuples rt =
  List.fold_left
    (fun acc (m : Prog.map_decl) ->
      match m.mkind with
      | Prog.Transient -> acc
      | _ -> acc + Pool.cardinal (pool rt m.mname))
    0 rt.prog.maps

(* Fold one finished trigger into the global registry. Runs once per batch
   (or single update), so it may afford the [total_tuples] walk. *)
let report (rt : t) ~ops0 ~tuples ~t0 ~single =
  let wall = Unix.gettimeofday () -. t0 in
  let dops = Obs.Counter.value rt.ops - ops0 in
  Obs.Counter.add m_record_ops dops;
  Obs.Counter.add m_tuples tuples;
  if single then Obs.Counter.incr m_singles
  else begin
    (* the single-tuple fast path skips everything but plain counters *)
    Obs.Counter.incr m_batches;
    Obs.Histogram.observe h_batch_seconds wall;
    Obs.Gauge.set g_stored_tuples (float_of_int (total_tuples rt))
  end;
  { ops = dops; tuples; wall }

(* Attribute one firing's counter deltas to a profiler slot. Reads four
   counters before and after the closure — O(#statements) per batch, and
   with the profiler disabled the firing path pays only the flag check in
   the callers below. *)
let attributed (rt : t) slot f =
  let t0 = Unix.gettimeofday () in
  let o0 = Obs.Counter.value rt.ops
  and p0 = Obs.Counter.value m_probes
  and ms0 = Obs.Counter.value m_probe_misses
  and s0 = Obs.Counter.value m_slice_scanned
  and v0 = Obs.Counter.value m_selvec_scanned
  and e0 = Obs.Counter.value m_selvec_selected in
  f ();
  Prof.add slot
    ~ops:(Obs.Counter.value rt.ops - o0)
    ~probes:(Obs.Counter.value m_probes - p0)
    ~misses:(Obs.Counter.value m_probe_misses - ms0)
    ~scanned:(Obs.Counter.value m_slice_scanned - s0)
    ~svscan:(Obs.Counter.value m_selvec_scanned - v0)
    ~svsel:(Obs.Counter.value m_selvec_selected - e0)
    ~bytes:0
    ~wall:(Unix.gettimeofday () -. t0)

let run_attributed rt ~label ~slot f =
  if Prof.enabled () then Obs.span label (fun () -> attributed rt slot f)
  else Obs.span label f

(* Parallel execution excludes itself while any single-writer observer is
   live: the profiler's slot arrays, the span tracer's stack, and the
   cachesim's trace sink all keep global mutable state (see obs.mli's
   memory-ordering contract). Those runs take the serial path, which also
   keeps their exact-equality reconciliations trivially intact. *)
let par_active rt =
  rt.par <> None
  && (not (Prof.enabled ()))
  && (not (Obs.tracing ()))
  && not (Trace.enabled ())

let apply_batch rt ~rel batch =
  let tx =
    match List.assoc_opt rel rt.triggers_batch with
    | Some tx -> tx
    | None -> invalid_arg ("Runtime.apply_batch: no trigger for " ^ rel)
  in
  let t0 = Unix.gettimeofday () in
  let ops0 = Obs.Counter.value rt.ops in
  let use_par = par_active rt && Gmr.cardinal batch >= rt.par_min_rows in
  Obs.span ("trigger:" ^ rel) (fun () ->
      (* the batch pool only matters to generic statements; fully
         vectorized triggers skip the per-tuple load entirely *)
      if tx.tx_load then load_batch rt ~rel batch;
      let width =
        match List.assoc_opt rel rt.prog.streams with
        | Some vars -> List.length vars
        | None -> 0
      in
      let raw = lazy (Colbatch.of_gmr ~width batch) in
      List.iter
        (fun u ->
          let run =
            match u.eu_par with
            | Some pf when use_par -> pf
            | _ -> u.eu_run
          in
          run_attributed rt ~label:u.eu_label ~slot:u.eu_slot (fun () ->
              run raw))
        tx.tx_units);
  report rt ~ops0 ~tuples:(Gmr.cardinal batch) ~t0 ~single:false

let apply_single rt ~rel tup m =
  let stmts =
    match List.assoc_opt rel rt.triggers_single with
    | Some stmts -> stmts
    | None -> invalid_arg ("Runtime.apply_single: no trigger for " ^ rel)
  in
  let t0 = Unix.gettimeofday () in
  let ops0 = Obs.Counter.value rt.ops in
  rt.cur_tuple <- tup;
  rt.cur_mult <- m;
  (* the single-tuple fast path never opens spans; under an enabled
     profiler it still charges per-statement deltas *)
  if Prof.enabled () then
    List.iter (fun (slot, f) -> attributed rt slot f) stmts
  else List.iter (fun (_, f) -> f ()) stmts;
  report rt ~ops0 ~tuples:1 ~t0 ~single:true

let load rt tables =
  (* streams absent from the load are empty relations *)
  let tables =
    tables
    @ List.filter_map
        (fun (r, _) ->
          if List.mem_assoc r tables then None else Some (r, Gmr.create ()))
        rt.prog.streams
  in
  let src = Divm_eval.Interp.source_of_rels tables in
  List.iter
    (fun (m : Prog.map_decl) ->
      match m.mkind with
      | Prog.Transient -> ()
      | _ ->
          let sch, g = Divm_eval.Interp.eval_closed src m.definition in
          let p = pool rt m.mname in
          Pool.clear p;
          if sch = m.mschema then Gmr.iter (fun tup mm -> Pool.add p tup mm) g
          else begin
            let pos = Schema.positions m.mschema sch in
            Gmr.iter
              (fun tup mm -> Pool.add p (Vtuple.project tup pos) mm)
              g
          end)
    rt.prog.maps

let map_contents rt name = Pool.to_gmr (pool rt name)

let result rt qname =
  match List.assoc_opt qname rt.prog.queries with
  | Some m -> map_contents rt m
  | None -> invalid_arg ("Runtime.result: unknown query " ^ qname)

let ops (rt : t) = Obs.Counter.value rt.ops
let reset_ops (rt : t) = Obs.Counter.reset rt.ops
let domains (rt : t) = rt.domains

(* Per trigger, each statement (in original order) with the route label
   batch mode gives it plus its filter split: "stmt:T" for the generic
   closure path, "columnar:T" / "columnar-join:T" for solo vectorized
   statements ("selvec:T" / "selvec-join:T" when ≥1 filter hoists to a
   selection-vector kernel), and a shared "fused:T1+T2" /
   "fused-selvec:T1+T2" label for every member of a fused group. The
   ints are (filters hoisted to kernels, filters on the per-row path)
   for that statement. The same [plan_trigger] that [create] uses
   produces this, and the same [classify_filter] the binder uses decides
   the split — so EXPLAIN agrees with the runtime by construction. *)
let stmt_routes_ex (prog : Prog.t) :
    (string * (Prog.stmt * string * int * int) list) list =
  List.map
    (fun (tr : Prog.trigger) ->
      ( tr.relation,
        List.concat_map
          (function
            | UStmt s -> [ (s, "stmt:" ^ s.Prog.target, 0, 0) ]
            | UGroup ps ->
                let lbl = route_label_of_group ps in
                List.map
                  (fun (p : vplan) ->
                    let sv, rw = plan_filter_split p in
                    (p.vp_stmt, lbl, sv, rw))
                  ps)
          (plan_trigger prog tr) ))
    prog.Prog.triggers

let stmt_routes (prog : Prog.t) : (string * (Prog.stmt * string) list) list =
  List.map
    (fun (rel, stmts) ->
      (rel, List.map (fun (s, lbl, _, _) -> (s, lbl)) stmts))
    (stmt_routes_ex prog)

(* Per-statement multicore decision, from the same planner and access
   analysis EXPLAIN uses: every vectorized group fans its batch ranges out
   over domains and merges per-domain partial deltas by ring [+]; every
   generic statement serializes on the applying domain, and the reason
   names what defeats vectorization — the self-read, or the first
   unbindable full-map scan ([Patterns.Foreach] over a store map). *)
let par_routes (prog : Prog.t) : (string * (Prog.stmt * string) list) list =
  List.map
    (fun (rel, stmts) ->
      ( rel,
        List.map
          (fun ((s : Prog.stmt), lbl) ->
            let generic =
              String.length lbl >= 5
              && String.equal (String.sub lbl 0 5) "stmt:"
            in
            let decision =
              if not generic then "parallel"
              else if List.mem s.target (Calc.map_refs s.rhs) then
                "serialize: reads own target"
              else
                match
                  List.find_opt
                    (fun (a : Patterns.access) ->
                      a.acc_kind = `Map && a.acc_path = Patterns.Foreach)
                    (Patterns.accesses s)
                with
                | Some a -> "serialize: full scan of " ^ a.acc_name
                | None -> "serialize: not vectorizable"
            in
            (s, decision))
          stmts ))
    (stmt_routes prog)

(* The (trigger relation, target) pairs batch mode routes through the
   vectorized executor, exposed for EXPLAIN and its tests. *)
let columnar_routed (prog : Prog.t) =
  List.concat_map
    (fun (rel, stmts) ->
      List.filter_map
        (fun ((s : Prog.stmt), lbl) ->
          if String.length lbl >= 5 && String.equal (String.sub lbl 0 5) "stmt:"
          then None
          else Some (rel, s.target))
        stmts)
    (stmt_routes prog)

let storage_stats rt =
  let maps =
    List.filter_map
      (fun (m : Prog.map_decl) ->
        Option.map
          (fun p ->
            Pool.observe p;
            (m.mname, Pool.stats p))
          (Hashtbl.find_opt rt.pools m.mname))
      rt.prog.maps
  in
  let batches =
    List.filter_map
      (fun (r, _) ->
        Option.map
          (fun p ->
            Pool.observe p;
            ("batch_" ^ r, Pool.stats p))
          (Hashtbl.find_opt rt.batch_pools r))
      rt.prog.streams
  in
  maps @ batches
