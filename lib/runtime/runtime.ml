open Divm_ring
open Divm_calc
open Divm_calc.Calc
open Divm_storage
open Divm_compiler
module Obs = Divm_obs.Obs
module Prof = Divm_obs.Prof

(* Registry instruments fed once per batch (never per record op): the
   hot-path counter is the runtime's private [ops] counter, folded into
   the global totals when the trigger completes. *)
let m_record_ops = Obs.Counter.make "divm_record_ops_total"
let m_batches = Obs.Counter.make "divm_batches_total"
let m_singles = Obs.Counter.make "divm_single_updates_total"
let m_tuples = Obs.Counter.make "divm_tuples_total"
let h_batch_seconds = Obs.Histogram.make "divm_batch_seconds"
let g_stored_tuples = Obs.Gauge.make "divm_stored_tuples"

(* The storage layer's probe counters ([Counter.make] is idempotent per
   name, so these are [Pool]'s own instruments): the profiler reads them
   around each statement firing to attribute probe work per statement. *)
let m_probes = Obs.Counter.make "divm_index_probes_total"
let m_probe_misses = Obs.Counter.make "divm_index_probe_misses_total"
let m_slice_scanned = Obs.Counter.make "divm_slice_scanned_total"

type env = Value.t array
type code = env -> (float -> unit) -> unit

type t = {
  prog : Prog.t;
  pools : (string, Pool.t) Hashtbl.t;
  batch_pools : (string, Pool.t) Hashtbl.t; (* per-stream, refilled per batch *)
  mutable cur_tuple : Vtuple.t;
  mutable cur_mult : float;
  ops : Obs.Counter.t; (* per-instance elementary record operations *)
  mutable triggers_batch : (string * (string * int * (unit -> unit)) list) list;
      (* each statement carries its span label and profiler slot id *)
  mutable triggers_single : (string * (int * (unit -> unit)) list) list;
  mutable col_runners :
    (string * (string * int * (Colbatch.t -> unit)) list) list;
      (* per-relation columnar pre-aggregation executors (§5.2.2) *)
}

type batch_report = { ops : int; tuples : int; wall : float }

(* ------------------------------------------------------------------ *)
(* Variable layouts                                                    *)
(* ------------------------------------------------------------------ *)

type layout = { slots : (string, int) Hashtbl.t; mutable width : int }

let layout_of_stmt (s : Prog.stmt) =
  let l = { slots = Hashtbl.create 16; width = 0 } in
  let bind (v : Schema.var) =
    if not (Hashtbl.mem l.slots v.name) then begin
      Hashtbl.replace l.slots v.name l.width;
      l.width <- l.width + 1
    end
  in
  List.iter bind s.target_vars;
  List.iter bind (Calc.all_vars s.rhs);
  l

let slot l (v : Schema.var) =
  match Hashtbl.find_opt l.slots v.name with
  | Some i -> i
  | None -> invalid_arg ("Runtime: variable without slot: " ^ v.name)

let slots_of l vars = Array.of_list (List.map (slot l) vars)

(* ------------------------------------------------------------------ *)
(* Value expression compilation                                        *)
(* ------------------------------------------------------------------ *)

let rec compile_vexpr l (v : Vexpr.t) : env -> Value.t =
  match v with
  | Vexpr.Const c -> fun _ -> c
  | Vexpr.Var x ->
      let s = slot l x in
      fun env -> env.(s)
  | Vexpr.Add (a, b) -> bin l Value.add a b
  | Vexpr.Sub (a, b) -> bin l Value.sub a b
  | Vexpr.Mul (a, b) -> bin l Value.mul a b
  | Vexpr.Div (a, b) -> bin l Value.div a b
  | Vexpr.Neg a ->
      let ca = compile_vexpr l a in
      fun env -> Value.neg (ca env)
  | Vexpr.Floor a ->
      let ca = compile_vexpr l a in
      fun env ->
        Value.Int (int_of_float (Float.floor (Value.to_float (ca env))))
  | Vexpr.Min (a, b) ->
      let ca = compile_vexpr l a and cb = compile_vexpr l b in
      fun env ->
        let x = ca env and y = cb env in
        if Value.compare x y <= 0 then x else y
  | Vexpr.Max (a, b) ->
      let ca = compile_vexpr l a and cb = compile_vexpr l b in
      fun env ->
        let x = ca env and y = cb env in
        if Value.compare x y >= 0 then x else y

and bin l op a b =
  let ca = compile_vexpr l a and cb = compile_vexpr l b in
  fun env -> op (ca env) (cb env)

(* ------------------------------------------------------------------ *)
(* Atom compilation                                                    *)
(* ------------------------------------------------------------------ *)

(* Static classification of an atom's key positions: bound positions are
   checked, first occurrences of unbound variables are written, later
   duplicate occurrences are checked against the written slot. *)
let classify ~bound l vars =
  let seen = ref [] in
  List.mapi
    (fun i v ->
      let b = Schema.mem v bound || Schema.mem v !seen in
      seen := Schema.union !seen [ v ];
      (i, slot l v, b))
    vars

let compile_pool_atom (rt : t) ~pool ~bound l vars : code =
  let ops = rt.ops in
  let cls = classify ~bound l vars in
  let n = List.length vars in
  let bound_cls = List.filter (fun (_, _, b) -> b) cls in
  let free_cls = List.filter (fun (_, _, b) -> not b) cls in
  if List.length bound_cls = n then begin
    (* full key lookup: probe with a reusable scratch key (the pool only
       copies keys it must retain, and [get] retains nothing) *)
    let key_slots = Array.of_list (List.map (fun (_, s, _) -> s) cls) in
    let kw = Array.length key_slots in
    let scratch = Array.make kw (Value.Int 0) in
    fun env k ->
      Obs.Counter.incr ops;
      for j = 0 to kw - 1 do
        Array.unsafe_set scratch j env.(Array.unsafe_get key_slots j)
      done;
      let m = Pool.get pool scratch in
      if m <> 0. then k m
  end
  else begin
    let writes = Array.of_list (List.map (fun (i, s, _) -> (i, s)) free_cls) in
    let checks = Array.of_list (List.map (fun (i, s, _) -> (i, s)) bound_cls) in
    (* duplicate occurrences of a variable are classified as bound by
       [classify], so every entry of [writes] is a distinct variable's
       first occurrence: write it, nothing to re-verify *)
    let visit env k (key : Vtuple.t) m =
      Obs.Counter.incr ops;
      let ok = ref true in
      Array.iter
        (fun (i, s) -> if not (Value.equal key.(i) env.(s)) then ok := false)
        checks;
      if !ok then begin
        Array.iter (fun (i, s) -> env.(s) <- key.(i)) writes;
        k m
      end
    in
    if bound_cls = [] then fun env k -> Pool.foreach pool (visit env k)
    else
      let bpos = Array.of_list (List.map (fun (i, _, _) -> i) bound_cls) in
      let bslots = Array.of_list (List.map (fun (_, s, _) -> s) bound_cls) in
      (* the slice index is resolved once per compiled statement, not per
         visited tuple: pools and their declared indexes are fixed at
         program-load time *)
      match Pool.find_slice pool bpos with
      | Some index ->
          let bw = Array.length bslots in
          let sub = Array.make bw (Value.Int 0) in
          fun env k ->
            for j = 0 to bw - 1 do
              Array.unsafe_set sub j env.(Array.unsafe_get bslots j)
            done;
            Pool.slice pool ~index sub (visit env k)
      | None ->
          (* no declared index: scan with checks (correct, slower) *)
          fun env k -> Pool.foreach pool (visit env k)
  end

(* Single-tuple delta atom: binds the current tuple's fields directly. *)
let compile_single_delta (rt : t) ~bound l vars : code =
  let ops = rt.ops in
  let cls = classify ~bound l vars in
  let writes =
    Array.of_list
      (List.filter_map (fun (i, s, b) -> if b then None else Some (i, s)) cls)
  in
  let checks =
    Array.of_list
      (List.filter_map (fun (i, s, b) -> if b then Some (i, s) else None) cls)
  in
  fun env k ->
    Obs.Counter.incr ops;
    let key = rt.cur_tuple in
    let ok = ref true in
    Array.iter
      (fun (i, s) -> if not (Value.equal key.(i) env.(s)) then ok := false)
      checks;
    if !ok then begin
      (* [writes] holds only first occurrences (see [classify]) *)
      Array.iter (fun (i, s) -> env.(s) <- key.(i)) writes;
      k rt.cur_mult
    end

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)
(* ------------------------------------------------------------------ *)

let pool rt name =
  match Hashtbl.find_opt rt.pools name with
  | Some p -> p
  | None -> invalid_arg ("Runtime: unknown map " ^ name)

type mode = Batch | Single

let rec compile_expr (rt : t) ~mode ~bound l (e : expr) : code =
  let ops = rt.ops in
  match e with
  | Const c -> fun _ k -> k c
  | Value v ->
      let cv = compile_vexpr l v in
      fun env k ->
        Obs.Counter.incr ops;
        let x = Value.to_float (cv env) in
        if x <> 0. then k x
  | Cmp (op, a, b) ->
      let ca = compile_vexpr l a and cb = compile_vexpr l b in
      fun env k ->
        Obs.Counter.incr ops;
        if Calc.eval_cmp op (ca env) (cb env) then k 1.
  | Rel r ->
      invalid_arg ("Runtime: raw base relation in statement: " ^ r.rname)
  | Map m ->
      let p = pool rt m.mname in
      compile_pool_atom rt ~pool:p ~bound l m.mvars
  | DeltaRel r -> (
      match mode with
      | Single -> compile_single_delta rt ~bound l r.rvars
      | Batch ->
          let p =
            match Hashtbl.find_opt rt.batch_pools r.rname with
            | Some p -> p
            | None -> invalid_arg ("Runtime: no batch pool for " ^ r.rname)
          in
          compile_pool_atom rt ~pool:p ~bound l r.rvars)
  | Prod es ->
      let rec go bound = function
        | [] -> fun _ k -> k 1.
        | [ e ] -> compile_expr rt ~mode ~bound l e
        | e :: rest ->
            let ce = compile_expr rt ~mode ~bound l e in
            let bound' =
              match Calc.schema ~bound e with
              | s -> Schema.union bound s
              | exception Type_error _ -> bound
            in
            let crest = go bound' rest in
            fun env k -> ce env (fun m1 -> crest env (fun m2 -> k (m1 *. m2)))
      in
      go bound es
  | Add es ->
      let cs = List.map (compile_expr rt ~mode ~bound l) es in
      fun env k -> List.iter (fun c -> c env k) cs
  | Sum (gb, q) ->
      let out = List.filter (fun v -> not (Schema.mem v bound)) gb in
      let cq = compile_expr rt ~mode ~bound l q in
      let out_slots = slots_of l out in
      if out = [] then (fun env k ->
        let total = ref 0. in
        cq env (fun m -> total := !total +. m);
        if Float.abs !total >= Gmr.zero_eps then k !total)
      else begin
        (* temp group and scratch key allocated once per compiled closure:
           invocations of one closure never overlap, so [clear]-and-reuse
           replaces a fresh table per evaluation, and [add_borrow] copies
           the scratch key only on first insert of a group *)
        let ow = Array.length out_slots in
        let scratch = Array.make ow (Value.Int 0) in
        let temp = Gmr.create () in
        fun env k ->
          Gmr.clear temp;
          cq env (fun m ->
              for j = 0 to ow - 1 do
                Array.unsafe_set scratch j env.(Array.unsafe_get out_slots j)
              done;
              Gmr.add_borrow temp scratch m);
          Gmr.iter
            (fun key m ->
              Obs.Counter.incr ops;
              Array.iteri (fun j s -> env.(s) <- key.(j)) out_slots;
              k m)
            temp
      end
  | Exists q ->
      let qsch = Calc.schema ~bound q in
      let cq = compile_expr rt ~mode ~bound l q in
      if qsch = [] then (fun env k ->
        let total = ref 0. in
        cq env (fun m -> total := !total +. m);
        if Float.abs !total >= Gmr.zero_eps then k 1.)
      else begin
        let q_slots = slots_of l qsch in
        let qw = Array.length q_slots in
        let scratch = Array.make qw (Value.Int 0) in
        let temp = Gmr.create () in
        fun env k ->
          Gmr.clear temp;
          cq env (fun m ->
              for j = 0 to qw - 1 do
                Array.unsafe_set scratch j env.(Array.unsafe_get q_slots j)
              done;
              Gmr.add_borrow temp scratch m);
          Gmr.iter
            (fun key _m ->
              Obs.Counter.incr ops;
              Array.iteri (fun j s -> env.(s) <- key.(j)) q_slots;
              k 1.)
            temp
      end
  | Lift (v, q) ->
      let qsch = Calc.schema ~bound q in
      let cq = compile_expr rt ~mode ~bound l q in
      let v_bound = Schema.mem v bound in
      let v_slot = slot l v in
      if qsch = [] then
        fun env k ->
          let total = ref 0. in
          cq env (fun m -> total := !total +. m);
          Obs.Counter.incr ops;
          if v_bound then begin
            if Value.compare_approx env.(v_slot) (Value.Float !total) = 0 then k 1.
          end
          else begin
            env.(v_slot) <- Value.Float !total;
            k 1.
          end
      else begin
        let q_slots = slots_of l qsch in
        let qw = Array.length q_slots in
        let scratch = Array.make qw (Value.Int 0) in
        let temp = Gmr.create () in
        fun env k ->
          Gmr.clear temp;
          cq env (fun m ->
              for j = 0 to qw - 1 do
                Array.unsafe_set scratch j env.(Array.unsafe_get q_slots j)
              done;
              Gmr.add_borrow temp scratch m);
          Gmr.iter
            (fun key m ->
              Obs.Counter.incr ops;
              Array.iteri (fun j s -> env.(s) <- key.(j)) q_slots;
              if v_bound then begin
                if Value.compare_approx env.(v_slot) (Value.Float m) = 0 then k 1.
              end
              else begin
                env.(v_slot) <- Value.Float m;
                k 1.
              end)
            temp
      end

(* ------------------------------------------------------------------ *)
(* Statement compilation                                               *)
(* ------------------------------------------------------------------ *)

let compile_stmt rt ~mode (s : Prog.stmt) : unit -> unit =
  let l = layout_of_stmt s in
  let tv_slots = slots_of l s.target_vars in
  (* Exploit a top-level Sum over exactly the target variables: accumulate
     straight into the pool with no intermediate grouping. *)
  let body =
    match s.rhs with
    | Sum (gb, body) when Schema.equal_as_sets gb s.target_vars -> body
    | rhs -> rhs
  in
  let code = compile_expr rt ~mode ~bound:[] l body in
  let target = pool rt s.target in
  (* If the RHS reads the target map, adding into the pool while evaluating
     would expose mid-statement writes (and mutate a pool being scanned) —
     buffer the result and apply afterwards. *)
  let self_reading = List.mem s.target (Calc.map_refs s.rhs) in
  (* Per-statement scratch target key; the sinks copy it on first insert
     ([add_borrow]), so the buffer is safe to refill on the next tuple. *)
  let tw = Array.length tv_slots in
  let scratch = Array.make tw (Value.Int 0) in
  let fill env =
    for j = 0 to tw - 1 do
      Array.unsafe_set scratch j env.(Array.unsafe_get tv_slots j)
    done
  in
  let direct () =
    let env = Array.make l.width (Value.Int 0) in
    code env (fun m ->
        fill env;
        Pool.add_borrow target scratch m)
  in
  (* Reused across firings: trigger executions never overlap, and [clear]
     only drops references — keys handed to the pool stay intact. *)
  let buf = Gmr.create () in
  let buffered () =
    let env = Array.make l.width (Value.Int 0) in
    Gmr.clear buf;
    code env (fun m ->
        fill env;
        Gmr.add_borrow buf scratch m);
    buf
  in
  match (s.op, self_reading) with
  | Prog.Add_to, false -> direct
  | Prog.Add_to, true ->
      fun () ->
        let buf = buffered () in
        Gmr.iter (fun key m -> Pool.add target key m) buf
  | Prog.Assign, false ->
      fun () ->
        Pool.clear target;
        direct ()
  | Prog.Assign, true ->
      fun () ->
        let buf = buffered () in
        Pool.clear target;
        Gmr.iter (fun key m -> Pool.add target key m) buf

(* ------------------------------------------------------------------ *)
(* Columnar batch pre-aggregation (§5.2.2)                             *)
(* ------------------------------------------------------------------ *)

(* Transient delta pre-aggregations of the common shape
   [D := Sum_used(dR ⋈ const-comparisons ⋈ batch-column values)] bypass
   the generic closure path: the batch is transposed once into columnar
   form, static conditions scan single columns, and the projected rows are
   aggregated straight into the transient pool. *)
type col_plan = {
  cp_target : string;
  cp_keep : int array; (* batch columns kept, in target-key order *)
  cp_filters : (int * Calc.cmp_op * Value.t) list;
  cp_weight : (int -> Colbatch.t -> float) option;
}

(* the delta relation a statement's pre-aggregation reads, if any *)
let trigger_rel_of (s : Prog.stmt) =
  match Calc.delta_rels s.rhs with [ r ] -> r | _ -> ""

let columnar_plan (s : Prog.stmt) : col_plan option =
  let shape =
    match s.rhs with
    | Sum (_, body) -> Some (Divm_delta.Poly.factors body)
    | (DeltaRel _ | Prod _) as e -> Some (Divm_delta.Poly.factors e)
    | _ -> None
  in
  match (s.op, shape) with
  | Prog.Assign, Some (DeltaRel r :: rest) -> (
      let pos_of (v : Schema.var) =
        let rec go i = function
          | [] -> None
          | (x : Schema.var) :: tl ->
              if Schema.var_equal x v then Some i else go (i + 1) tl
        in
        go 0 r.rvars
      in
      try
        let filters = ref [] and weights = ref [] in
        List.iter
          (fun f ->
            match f with
            | Cmp (op, Vexpr.Var v, Vexpr.Const c) -> (
                match pos_of v with
                | Some i -> filters := (i, op, c) :: !filters
                | None -> raise Exit)
            | Cmp (op, Vexpr.Const c, Vexpr.Var v) -> (
                let flip =
                  match op with
                  | Lt -> Gt
                  | Lte -> Gte
                  | Gt -> Lt
                  | Gte -> Lte
                  | (Eq | Neq) as o -> o
                in
                match pos_of v with
                | Some i -> filters := (i, flip, c) :: !filters
                | None -> raise Exit)
            | Value ve ->
                let vars = Vexpr.vars ve in
                let slots =
                  List.map
                    (fun v ->
                      match pos_of v with
                      | Some i -> (v.Schema.name, i)
                      | None -> raise Exit)
                    vars
                in
                weights :=
                  (fun row (cb : Colbatch.t) ->
                    let lookup (v : Schema.var) =
                      Colbatch.column cb (List.assoc v.name slots)
                      |> fun col -> col.(row)
                    in
                    Value.to_float (Vexpr.eval lookup ve))
                  :: !weights
            | _ -> raise Exit)
          rest;
        let keep =
          Array.of_list
            (List.map
               (fun v ->
                 match pos_of v with Some i -> i | None -> raise Exit)
               s.target_vars)
        in
        let weight =
          match !weights with
          | [] -> None
          | ws ->
              Some
                (fun row cb ->
                  List.fold_left (fun acc w -> acc *. w row cb) 1. ws)
        in
        Some
          {
            cp_target = s.target;
            cp_keep = keep;
            cp_filters = !filters;
            cp_weight = weight;
          }
      with Exit -> None)
  | _ -> None

let run_col_plan (rt : t) (cb : Colbatch.t) plan =
  let ops = rt.ops in
  let target = pool rt plan.cp_target in
  Pool.clear target;
  let mults = Colbatch.mults cb in
  let filter_cols =
    List.map (fun (i, op, c) -> (Colbatch.column cb i, op, c)) plan.cp_filters
  in
  let keep_cols = Array.map (Colbatch.column cb) plan.cp_keep in
  let kw = Array.length keep_cols in
  let scratch = Array.make kw (Value.Int 0) in
  for row = 0 to Colbatch.length cb - 1 do
    if
      List.for_all
        (fun (col, op, c) -> Calc.eval_cmp op col.(row) c)
        filter_cols
    then begin
      let w =
        match plan.cp_weight with None -> 1. | Some f -> f row cb
      in
      Obs.Counter.incr ops;
      for j = 0 to kw - 1 do
        Array.unsafe_set scratch j (Array.unsafe_get keep_cols j).(row)
      done;
      Pool.add_borrow target scratch (mults.(row) *. w)
    end
  done

(* ------------------------------------------------------------------ *)
(* Program loading                                                     *)
(* ------------------------------------------------------------------ *)

let create ?(auto_index = true) ?(columnar = true) (prog : Prog.t) =
  let slice_patterns = if auto_index then Patterns.slices prog else [] in
  let batch_patterns = if auto_index then Patterns.batch_slices prog else [] in
  let pools = Hashtbl.create 32 in
  List.iter
    (fun (m : Prog.map_decl) ->
      let slices =
        match List.assoc_opt m.mname slice_patterns with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace pools m.mname
        (Pool.create ~name:m.mname ~key_width:(List.length m.mschema) ~slices
           ()))
    prog.maps;
  let batch_pools = Hashtbl.create 8 in
  List.iter
    (fun (r, vars) ->
      let slices =
        match List.assoc_opt r batch_patterns with Some l -> l | None -> []
      in
      Hashtbl.replace batch_pools r
        (Pool.create ~name:("batch_" ^ r) ~key_width:(List.length vars)
           ~slices ()))
    prog.streams;
  let rt =
    {
      prog;
      pools;
      batch_pools;
      cur_tuple = Vtuple.empty;
      cur_mult = 0.;
      ops = Obs.Counter.make ~register:false "runtime_record_ops";
      triggers_batch = [];
      triggers_single = [];
      col_runners = [];
    }
  in
  (* Batch mode: pre-aggregations of the supported shape go through the
     columnar path; their statements compile to no-ops. *)
  let planned = Hashtbl.create 8 in
  if columnar then
    rt.col_runners <-
      List.map
        (fun (tr : Prog.trigger) ->
          ( tr.relation,
            List.filter_map
              (fun (st : Prog.stmt) ->
                if not (String.equal (trigger_rel_of st) tr.relation) then
                  None
                else
                  match columnar_plan st with
                  | Some plan ->
                      Hashtbl.replace planned (tr.relation, st.target) ();
                      let label = "columnar:" ^ st.target in
                      Some
                        ( label,
                          Prof.slot ~trigger:tr.relation ~label,
                          fun cb -> run_col_plan rt cb plan )
                  | None -> None)
              tr.stmts ))
        prog.triggers;
  rt.triggers_batch <-
    List.map
      (fun (tr : Prog.trigger) ->
        ( tr.relation,
          List.map
            (fun (st : Prog.stmt) ->
              let label = "stmt:" ^ st.target in
              ( label,
                Prof.slot ~trigger:tr.relation ~label,
                if Hashtbl.mem planned (tr.relation, st.target) then
                  fun () -> ()
                else compile_stmt rt ~mode:Batch st ))
            tr.stmts ))
      prog.triggers;
  rt.triggers_single <-
    List.map
      (fun (tr : Prog.trigger) ->
        ( tr.relation,
          List.map
            (fun (st : Prog.stmt) ->
              ( Prof.slot ~trigger:tr.relation ~label:("stmt:" ^ st.target),
                compile_stmt rt ~mode:Single st ))
            tr.stmts ))
      prog.triggers;
  rt

let prog rt = rt.prog

let compile_stmts rt stmts = List.map (compile_stmt rt ~mode:Batch) stmts

let load_batch rt ~rel batch =
  let bp =
    match Hashtbl.find_opt rt.batch_pools rel with
    | Some p -> p
    | None -> invalid_arg ("Runtime.load_batch: unknown stream " ^ rel)
  in
  Pool.clear bp;
  Gmr.iter (fun tup m -> Pool.add bp tup m) batch

let add_to_map rt name tup m = Pool.add (pool rt name) tup m
let clear_map rt name = Pool.clear (pool rt name)
let map_cardinal rt name = Pool.cardinal (pool rt name)

let total_tuples rt =
  List.fold_left
    (fun acc (m : Prog.map_decl) ->
      match m.mkind with
      | Prog.Transient -> acc
      | _ -> acc + Pool.cardinal (pool rt m.mname))
    0 rt.prog.maps

(* Fold one finished trigger into the global registry. Runs once per batch
   (or single update), so it may afford the [total_tuples] walk. *)
let report (rt : t) ~ops0 ~tuples ~t0 ~single =
  let wall = Unix.gettimeofday () -. t0 in
  let dops = Obs.Counter.value rt.ops - ops0 in
  Obs.Counter.add m_record_ops dops;
  Obs.Counter.add m_tuples tuples;
  if single then Obs.Counter.incr m_singles
  else begin
    (* the single-tuple fast path skips everything but plain counters *)
    Obs.Counter.incr m_batches;
    Obs.Histogram.observe h_batch_seconds wall;
    Obs.Gauge.set g_stored_tuples (float_of_int (total_tuples rt))
  end;
  { ops = dops; tuples; wall }

(* Attribute one firing's counter deltas to a profiler slot. Reads four
   counters before and after the closure — O(#statements) per batch, and
   with the profiler disabled the firing path pays only the flag check in
   the callers below. *)
let attributed (rt : t) slot f =
  let t0 = Unix.gettimeofday () in
  let o0 = Obs.Counter.value rt.ops
  and p0 = Obs.Counter.value m_probes
  and ms0 = Obs.Counter.value m_probe_misses
  and s0 = Obs.Counter.value m_slice_scanned in
  f ();
  Prof.add slot
    ~ops:(Obs.Counter.value rt.ops - o0)
    ~probes:(Obs.Counter.value m_probes - p0)
    ~misses:(Obs.Counter.value m_probe_misses - ms0)
    ~scanned:(Obs.Counter.value m_slice_scanned - s0)
    ~bytes:0
    ~wall:(Unix.gettimeofday () -. t0)

let run_attributed rt ~label ~slot f =
  if Prof.enabled () then Obs.span label (fun () -> attributed rt slot f)
  else Obs.span label f

let apply_batch rt ~rel batch =
  let stmts =
    match List.assoc_opt rel rt.triggers_batch with
    | Some stmts -> stmts
    | None -> invalid_arg ("Runtime.apply_batch: no trigger for " ^ rel)
  in
  let t0 = Unix.gettimeofday () in
  let ops0 = Obs.Counter.value rt.ops in
  Obs.span ("trigger:" ^ rel) (fun () ->
      load_batch rt ~rel batch;
      (match List.assoc_opt rel rt.col_runners with
      | Some (_ :: _ as runners) ->
          let width =
            match List.assoc_opt rel rt.prog.streams with
            | Some vars -> List.length vars
            | None -> 0
          in
          let cb = Colbatch.of_gmr ~width batch in
          List.iter
            (fun (lbl, slot, run) ->
              run_attributed rt ~label:lbl ~slot (fun () -> run cb))
            runners
      | _ -> ());
      List.iter
        (fun (lbl, slot, f) -> run_attributed rt ~label:lbl ~slot f)
        stmts);
  report rt ~ops0 ~tuples:(Gmr.cardinal batch) ~t0 ~single:false

let apply_single rt ~rel tup m =
  let stmts =
    match List.assoc_opt rel rt.triggers_single with
    | Some stmts -> stmts
    | None -> invalid_arg ("Runtime.apply_single: no trigger for " ^ rel)
  in
  let t0 = Unix.gettimeofday () in
  let ops0 = Obs.Counter.value rt.ops in
  rt.cur_tuple <- tup;
  rt.cur_mult <- m;
  (* the single-tuple fast path never opens spans; under an enabled
     profiler it still charges per-statement deltas *)
  if Prof.enabled () then
    List.iter (fun (slot, f) -> attributed rt slot f) stmts
  else List.iter (fun (_, f) -> f ()) stmts;
  report rt ~ops0 ~tuples:1 ~t0 ~single:true

let load rt tables =
  (* streams absent from the load are empty relations *)
  let tables =
    tables
    @ List.filter_map
        (fun (r, _) ->
          if List.mem_assoc r tables then None else Some (r, Gmr.create ()))
        rt.prog.streams
  in
  let src = Divm_eval.Interp.source_of_rels tables in
  List.iter
    (fun (m : Prog.map_decl) ->
      match m.mkind with
      | Prog.Transient -> ()
      | _ ->
          let sch, g = Divm_eval.Interp.eval_closed src m.definition in
          let p = pool rt m.mname in
          Pool.clear p;
          if sch = m.mschema then Gmr.iter (fun tup mm -> Pool.add p tup mm) g
          else begin
            let pos = Schema.positions m.mschema sch in
            Gmr.iter
              (fun tup mm -> Pool.add p (Vtuple.project tup pos) mm)
              g
          end)
    rt.prog.maps

let map_contents rt name = Pool.to_gmr (pool rt name)

let result rt qname =
  match List.assoc_opt qname rt.prog.queries with
  | Some m -> map_contents rt m
  | None -> invalid_arg ("Runtime.result: unknown query " ^ qname)

let ops (rt : t) = Obs.Counter.value rt.ops
let reset_ops (rt : t) = Obs.Counter.reset rt.ops

(* The (trigger relation, target) pairs batch mode routes through the
   columnar §5.2.2 path — the same [columnar_plan] test [create] applies,
   exposed so EXPLAIN agrees with the runtime by construction. *)
let columnar_routed (prog : Prog.t) =
  List.concat_map
    (fun (tr : Prog.trigger) ->
      List.filter_map
        (fun (st : Prog.stmt) ->
          if
            String.equal (trigger_rel_of st) tr.relation
            && columnar_plan st <> None
          then Some (tr.relation, st.target)
          else None)
        tr.stmts)
    prog.Prog.triggers

let storage_stats rt =
  let maps =
    List.filter_map
      (fun (m : Prog.map_decl) ->
        Option.map
          (fun p ->
            Pool.observe p;
            (m.mname, Pool.stats p))
          (Hashtbl.find_opt rt.pools m.mname))
      rt.prog.maps
  in
  let batches =
    List.filter_map
      (fun (r, _) ->
        Option.map
          (fun p ->
            Pool.observe p;
            ("batch_" ^ r, Pool.stats p))
          (Hashtbl.find_opt rt.batch_pools r))
      rt.prog.streams
  in
  maps @ batches
