open Divm_ring
open Divm_calc
open Divm_calc.Calc
open Divm_compiler
module Obs = Divm_obs.Obs

(* Distinct slice patterns discovered by the §5.2.1 access-pattern
   analysis (maps and batch pools separately, summed here). *)
let m_patterns = Obs.Counter.make "divm_index_patterns_total"

(* Bound positions (indices into the atom's variable list) given the bound
   variable set; duplicates of earlier positions count as bound. *)
let bound_positions bound vars =
  let seen = ref [] in
  List.mapi
    (fun i v ->
      let b = Schema.mem v bound || Schema.mem v !seen in
      seen := Schema.union !seen [ v ];
      (i, b))
    vars
  |> List.filter snd |> List.map fst

(* Walk an expression, calling [f kind name vars bound_pos] per atom with
   the statically-known bound set, mirroring the evaluation order. Returns
   the schema of the expression. *)
let rec walk ~bound e f =
  match e with
  | Const _ | Value _ | Cmp _ -> ()
  | Rel r -> f `Rel r.rname r.rvars (bound_positions bound r.rvars)
  | DeltaRel r -> f `Delta r.rname r.rvars (bound_positions bound r.rvars)
  | Map m -> f `Map m.mname m.mvars (bound_positions bound m.mvars)
  | Lift (_, q) | Exists q -> walk ~bound q f
  | Sum (_, q) -> walk ~bound q f
  | Prod es ->
      ignore
        (List.fold_left
           (fun bound e ->
             walk ~bound e f;
             match Calc.schema ~bound e with
             | s -> Schema.union bound s
             | exception Type_error _ -> bound)
           bound es)
  | Add es -> List.iter (fun e -> walk ~bound e f) es

let collect prog select =
  let tbl : (string, int array list) Hashtbl.t = Hashtbl.create 16 in
  let record name vars pos =
    let width = List.length vars in
    if pos <> [] && List.length pos < width then begin
      let arr = Array.of_list pos in
      let prev =
        match Hashtbl.find_opt tbl name with Some l -> l | None -> []
      in
      if not (List.mem arr prev) then Hashtbl.replace tbl name (arr :: prev)
    end
  in
  List.iter
    (fun (tr : Prog.trigger) ->
      List.iter
        (fun (s : Prog.stmt) ->
          walk ~bound:[] s.rhs (fun kind name vars pos ->
              if select kind then record name vars pos))
        tr.stmts)
    prog.Prog.triggers;
  let out = Hashtbl.fold (fun name l acc -> (name, List.rev l) :: acc) tbl [] in
  Obs.Counter.add m_patterns
    (List.fold_left (fun acc (_, l) -> acc + List.length l) 0 out);
  out

let slices prog = collect prog (fun k -> k = `Map)
let batch_slices prog = collect prog (fun k -> k = `Delta)

(* The per-statement view of the same analysis, for EXPLAIN: one entry
   per atom occurrence in evaluation order, classified exactly as the
   closure compiler will access it. *)
type path = Get | Foreach | Slice of int array

type access = {
  acc_kind : [ `Map | `Delta | `Rel ];
  acc_name : string;
  acc_path : path;
}

let accesses (s : Prog.stmt) =
  let out = ref [] in
  walk ~bound:[] s.Prog.rhs (fun kind name vars pos ->
      let path =
        if pos = [] then Foreach
        else if List.length pos = List.length vars then Get
        else Slice (Array.of_list pos)
      in
      out := { acc_kind = kind; acc_name = name; acc_path = path } :: !out);
  List.rev !out
