(** Specialized local runtime (§5): trigger statements are compiled, at
    program-load time, into OCaml closures in continuation-passing style —
    the stand-in for the paper's LMS-generated native code.

    Specialization performed here, mirroring §5.1–§5.2:
    - high-level operators become concrete [foreach] / [get] / [slice]
      operations over record pools, selected by static analysis of which
      key positions are bound at each access;
    - non-unique hash indexes are created exactly for the observed slice
      patterns ({!Patterns});
    - continuation passing avoids intermediate materialization of unions
      and top-level aggregates;
    - a single-tuple fast path binds the update tuple's fields directly,
      with no batch materialization ([apply_single]).

    {b Front ends:} this interface is the [Local] backend behind
    [Divm.Engine]; binaries and harnesses construct engines through
    [Engine.create] rather than calling {!create} directly (one config
    record selects local/simulated/multiprocess execution behind one
    [apply_batch]/[query] signature). Direct [Runtime] use is for the
    library layers that {e are} the backends — the cluster simulator, the
    node engine's driver and workers — and for tests that exercise this
    runtime specifically. *)

open Divm_ring
open Divm_storage
open Divm_compiler

type t

(** Work accounting for one trigger firing, mirroring
    [Cluster.apply_batch]'s metrics so callers can swap local and cluster
    backends behind one reporting path. Ops and tuples also accumulate
    into the {!Divm_obs.Obs} registry ([divm_record_ops_total],
    [divm_batches_total], [divm_batch_seconds], …). *)
type batch_report = {
  ops : int;  (** elementary record operations this trigger executed *)
  tuples : int;  (** update tuples touched (batch cardinality, or 1) *)
  wall : float;  (** wall-clock seconds *)
}

(** [create prog] loads a program. [auto_index] (default true) controls the
    §5.2.1 automatic secondary-index creation — disabling it falls back to
    scans with checks (the index ablation). [columnar] (default true)
    routes supported batch pre-aggregations through the §5.2.2 columnar
    path: the batch is transposed once, static conditions scan single
    columns, and projected rows aggregate straight into the transient
    pool.

    [domains] (default: the [DIVM_DOMAINS] environment variable, else 1)
    enables domain-parallel batch execution: each vectorized statement
    group fans disjoint ranges of the compacted batch out over the shared
    {!Divm_par.Par} pool, every domain running its own instance of the
    compiled group lock-free (store pools are read-only during the
    fan-out; all writes land in domain-private buffers merged serially by
    ring [+] after the barrier). Generic statements serialize — see
    {!par_routes} for the per-statement decision. Results are exact for
    integer multiplicities; float stores can differ from the serial path
    by summation order within [Gmr.zero_eps]-style epsilons, exactly like
    the columnar on/off contract. Batches smaller than [par_min_rows]
    (default 128) stay serial, as do all firings while the profiler,
    span tracer, or cachesim trace sink is enabled (their state is
    single-writer). *)
val create :
  ?auto_index:bool ->
  ?columnar:bool ->
  ?domains:int ->
  ?par_min_rows:int ->
  Prog.t ->
  t

val prog : t -> Prog.t

(** Domain count this runtime was created with (1 = serial). *)
val domains : t -> int

(** Fire the batch trigger for [rel]. Under [Obs.set_tracing true] the
    firing produces a [trigger:rel] span with one nested span per
    compiled statement (and per columnar runner). *)
val apply_batch : t -> rel:string -> Gmr.t -> batch_report

(** Fire the single-tuple fast path for [rel] with one (tuple, mult). *)
val apply_single : t -> rel:string -> Vtuple.t -> float -> batch_report

(** Bulk initial load: set every non-transient map to its definition
    evaluated over the given base-table contents. *)
val load : t -> (string * Gmr.t) list -> unit

(** Fresh snapshot of a map. *)
val map_contents : t -> string -> Gmr.t

val result : t -> string -> Gmr.t

(** Elementary record operations executed since last reset.

    Deprecated: prefer the [ops] field of {!batch_report} (per firing) or
    the registry's [divm_record_ops_total] (process totals). Kept as a
    thin wrapper over the runtime's private counter for the cluster
    simulator's per-stage deltas and old callers. *)
val ops : t -> int

(** Deprecated: see {!ops}. *)
val reset_ops : t -> unit

(** Total stored tuples over non-transient maps. *)
val total_tuples : t -> int

(** {1 Profiling and EXPLAIN support}

    Per-statement attribution slots live in {!Divm_obs.Prof}; each
    compiled statement captures its slot id at compile time. When the
    profiler is enabled, every firing charges the statement's record-op
    and index-probe counter deltas (plus wall time) to its slot; disabled,
    the firing path pays one flag check. *)

(** Per trigger, each statement (in original order) paired with the route
    label batch mode gives it: ["stmt:T"] for the generic closure path,
    ["columnar:T"] for a solo vectorized pass with no store reads,
    ["columnar-join:T"] for a solo vectorized statement with key-grouped
    store probes, and a shared ["fused:T1+T2"] label for every member of a
    fused group. When at least one of a group's filters hoists to a
    selection-vector kernel the labels become ["selvec:T"] /
    ["selvec-join:T"] / ["fused-selvec:T1+T2"]. Produced by the same
    planner [create] uses, so EXPLAIN cannot disagree with the runtime. *)
val stmt_routes : Prog.t -> (string * (Prog.stmt * string) list) list

(** Like {!stmt_routes}, with each statement's filter split appended:
    [(stmt, label, selvec, rowwise)] where [selvec] is the number of its
    filters compiled to selection-vector kernels (columnar scans into
    packed survivor index vectors) and [rowwise] the number left on the
    per-row closure path (genuinely dynamic predicates: aux-variable
    operands, arithmetic over columns, string/numeric mixes). Both are 0
    for ["stmt:"] routes. Decided by the same classification the binder
    uses, so the printed split matches what actually executes. *)
val stmt_routes_ex :
  Prog.t -> (string * (Prog.stmt * string * int * int) list) list

(** The (trigger relation, statement target) pairs that batch mode routes
    through the vectorized executor (any non-["stmt:"] label above). *)
val columnar_routed : Prog.t -> (string * string) list

(** Per trigger, each statement paired with its multicore execution
    decision, derived from the same planner as {!stmt_routes}:
    ["parallel"] for vectorized groups (batch ranges fan out over domains,
    per-domain partial deltas merge by ring [+]), or a
    ["serialize: <reason>"] naming what pins the statement to the applying
    domain (a self-reading RHS, or a full scan of a store map that the
    {!Patterns.accesses} analysis could not bind). *)
val par_routes : Prog.t -> (string * (Prog.stmt * string) list) list

(** Per-pool storage self-metrics (maps first, then [batch_*] update
    pools), also published as registry gauges ({!Pool.observe}). Computed
    on demand; cold path. *)
val storage_stats : t -> (string * Pool.stats) list

(** [run_attributed rt ~label ~slot f] runs [f] inside an [Obs.span label]
    and, when the profiler is enabled, charges its counter deltas to
    [slot]. Exposed for the cluster simulator's block executor. *)
val run_attributed : t -> label:string -> slot:int -> (unit -> unit) -> unit

(** {1 Hooks for the cluster simulator}

    The distributed runtime executes statements at a finer granularity than
    whole triggers and moves map contents between nodes itself. *)

(** Compile an arbitrary statement list against this runtime's pools
    (batch mode). *)
val compile_stmts : t -> Prog.stmt list -> (unit -> unit) list

(** Load the update batch for [rel] without firing its trigger. *)
val load_batch : t -> rel:string -> Gmr.t -> unit

(** Add one tuple into a map (used to deliver shuffled data). *)
val add_to_map : t -> string -> Vtuple.t -> float -> unit

val clear_map : t -> string -> unit

(** Number of stored tuples in one map. *)
val map_cardinal : t -> string -> int
