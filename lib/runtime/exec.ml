open Divm_ring
open Divm_storage
open Divm_compiler
module Obs = Divm_obs.Obs

let m_batches = Obs.Counter.make "divm_exec_batches_total"

type t = {
  prog : Prog.t;
  store : (string, Gmr.t) Hashtbl.t;
}

let create (prog : Prog.t) =
  let store = Hashtbl.create 32 in
  List.iter
    (fun (m : Prog.map_decl) ->
      Hashtbl.replace store m.mname (Gmr.create ()))
    prog.maps;
  { prog; store }

let prog t = t.prog

let map_contents t name =
  match Hashtbl.find_opt t.store name with
  | Some g -> g
  | None -> invalid_arg ("Exec.map_contents: unknown map " ^ name)

let result t qname =
  match List.assoc_opt qname t.prog.queries with
  | Some m -> map_contents t m
  | None -> invalid_arg ("Exec.result: unknown query " ^ qname)

(* Evaluate [rhs] and re-key the result in [target_vars] order (the
   interpreter returns tuples in inferred-schema order). *)
let eval_rhs source (s : Prog.stmt) =
  let sch, g = Divm_eval.Interp.eval_closed source s.rhs in
  if Schema.equal_as_sets sch s.target_vars && sch = s.target_vars then g
  else begin
    let pos = Schema.positions s.target_vars sch in
    let out = Gmr.create ~size:(Gmr.cardinal g) () in
    Gmr.iter (fun tup m -> Gmr.add out (Vtuple.project tup pos) m) g;
    out
  end

(* Evaluate a map definition over base tables, keyed in declaration order. *)
let eval_definition tables (m : Prog.map_decl) =
  let src = Divm_eval.Interp.source_of_rels tables in
  let sch, g = Divm_eval.Interp.eval_closed src m.definition in
  if sch = m.mschema then g
  else begin
    let pos = Schema.positions m.mschema sch in
    let out = Gmr.create ~size:(Gmr.cardinal g) () in
    Gmr.iter (fun tup mm -> Gmr.add out (Vtuple.project tup pos) mm) g;
    out
  end

let load t tables =
  let tables =
    tables
    @ List.filter_map
        (fun (r, _) ->
          if List.mem_assoc r tables then None else Some (r, Gmr.create ()))
        t.prog.streams
  in
  List.iter
    (fun (m : Prog.map_decl) ->
      match m.mkind with
      | Prog.Transient -> ()
      | _ -> Hashtbl.replace t.store m.mname (eval_definition tables m))
    t.prog.maps

let apply_batch t ~rel batch =
  let tr = Prog.find_trigger t.prog rel in
  let source =
    {
      Divm_eval.Interp.rel =
        (fun n -> invalid_arg ("Exec: statement references base relation " ^ n));
      delta =
        (fun n -> if String.equal n rel then batch else raise Not_found);
      map =
        (fun n ->
          match Hashtbl.find_opt t.store n with
          | Some g -> g
          | None -> raise Not_found);
    }
  in
  Obs.Counter.incr m_batches;
  Obs.span ("exec:trigger:" ^ rel) (fun () ->
      List.iter
        (fun (s : Prog.stmt) ->
          Obs.span ("exec:stmt:" ^ s.target) (fun () ->
              let v = eval_rhs source s in
              match s.op with
              | Prog.Assign -> Hashtbl.replace t.store s.target v
              | Prog.Add_to ->
                  let g = map_contents t s.target in
                  Gmr.union_into g v))
        tr.stmts)

let total_size t =
  List.fold_left
    (fun acc (m : Prog.map_decl) ->
      match m.mkind with
      | Prog.Transient -> acc
      | _ -> acc + Gmr.cardinal (map_contents t m.mname))
    0 t.prog.maps
