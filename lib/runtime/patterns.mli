(** Access-pattern analysis (§5.2.1).

    Walks every trigger statement with the same static bound-variable
    tracking as the closure compiler and records, for every map, the key
    positions that are bound when the map is accessed:
    - all positions bound → [get] (unique hash index, always present),
    - none → [foreach] (no index needed),
    - a strict subset → [slice] (one non-unique hash index per pattern). *)

open Divm_compiler

(** [slices prog] returns, for each map name, the list of distinct slice
    patterns (sorted position arrays, strict non-empty subsets of the key). *)
val slices : Prog.t -> (string * int array list) list

(** Batch relation patterns: slice patterns over the raw update batch of
    each stream relation (for programs that reference [DeltaRel] inline). *)
val batch_slices : Prog.t -> (string * int array list) list

(** {2 Per-statement view (EXPLAIN)} *)

type path =
  | Get  (** every key position bound: unique-index point lookup *)
  | Foreach  (** nothing bound: full scan *)
  | Slice of int array  (** these positions bound: secondary-index slice *)

type access = {
  acc_kind : [ `Map | `Delta | `Rel ];
      (** materialized map, update-batch pool, or raw relation *)
  acc_name : string;
  acc_path : path;
}

(** [accesses stmt] lists every atom the statement's RHS reads, in
    evaluation order, with the access path the closure compiler will use —
    the same walk that feeds {!slices}, so EXPLAIN can never disagree with
    the indexes actually built. *)
val accesses : Prog.stmt -> access list
