(** Interpreted trigger-program executor.

    Maintains all materialized maps as plain GMRs and evaluates trigger
    statements with the reference interpreter. This is the semantics
    baseline: the specialized runtime ({!Runtime}) and the distributed
    runtime are tested against it, and the baseline engines
    ("PostgreSQL-style" classical IVM and re-evaluation) run through it. *)

open Divm_storage
open Divm_compiler

type t

val create : Prog.t -> t
val prog : t -> Prog.t

(** [apply_batch t ~rel batch] fires the trigger for [rel] with the update
    batch (positive multiplicities insert, negative delete). *)
val apply_batch : t -> rel:string -> Gmr.t -> unit

(** Bulk initial load: set every non-transient map to its definition
    evaluated over the given base-table contents (the "initial view
    computation" of a freshly started system). *)
val load : t -> (string * Gmr.t) list -> unit

(** Contents of a map (keyed in the map declaration's variable order). The
    returned GMR is live — do not mutate. *)
val map_contents : t -> string -> Gmr.t

(** Result of a named query. *)
val result : t -> string -> Gmr.t

(** Total number of tuples across non-transient maps. *)
val total_size : t -> int
