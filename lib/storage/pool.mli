(** Multi-indexed record pools (§5.2, Figure 6).

    A pool stores fixed-format records (a key tuple plus one aggregate
    value) in a growable arena with a free-list stack. A unique
    open-addressing index ({!Oaidx}: cached hashes, single-probe upserts,
    tombstone-free deletion) serves [get]/[update]/[delete]; non-unique
    indexes over key subsets serve [slice], with growable int-array
    buckets and O(1) swap-remove maintenance. Indexes are declared up
    front by the compiler's access-pattern analysis (§5.2.1) and
    maintained incrementally.

    Iteration callbacks ([foreach], [slice]) must not add or remove
    records of the pool being iterated (the runtime buffers self-reading
    statements for exactly this reason). *)

open Divm_ring

type t

(** [create ~key_width ~slices ()] builds a pool for records whose key has
    [key_width] fields. Each element of [slices] lists the key positions of
    one non-unique secondary index. *)
val create : ?name:string -> key_width:int -> slices:int array list -> unit -> t

val cardinal : t -> int
val key_width : t -> int

(** Multiplicity of [key]; [0.] if absent. *)
val get : t -> Vtuple.t -> float

(** [add pool key m] adds [m] to the multiplicity of [key], inserting or
    removing the record as needed (zero multiplicities are not stored).
    [key] is retained by reference on insert: the caller must not mutate
    it afterwards. *)
val add : t -> Vtuple.t -> float -> unit

(** Scratch-key variant of [add] for compiled trigger closures: [key] is a
    borrowed buffer the caller will overwrite, copied by the pool only
    when the record is first inserted. *)
val add_borrow : t -> Vtuple.t -> float -> unit

(** [add_hashed pool h key m]: [add] with the finalized [Oaidx.hash]
    already in hand (e.g. replayed from a GMR via [Gmr.iter_hashed]).
    [key] is retained by reference on insert. *)
val add_hashed : t -> int -> Vtuple.t -> float -> unit

(** Columnar upsert: probe with a precomputed [hash] and a cell-level
    [eq] against stored keys; [make] materializes the key tuple and is
    called only on first insert. Lets columnar producers apply compacted
    batch rows without building a [Vtuple] per row (see
    [Colbatch.row_hash]/[row_eq]/[row_tuple]). *)
val add_by :
  t -> hash:int -> eq:(Vtuple.t -> bool) -> make:(unit -> Vtuple.t) ->
  float -> unit

(** Ring-(+) bulk merge of a GMR buffer into the pool, replaying the
    buffer's cached hashes instead of re-hashing, in the buffer's slot
    order (deterministic destination slot assignment). Keys are retained
    by reference: the caller transfers ownership (clear the buffer
    after). *)
val merge_gmr : t -> Gmr.t -> unit

(** [set pool key m] overwrites (removing on zero). *)
val set : t -> Vtuple.t -> float -> unit

val foreach : t -> (Vtuple.t -> float -> unit) -> unit

(** [slice pool ~index sub f] iterates the records whose key projected on
    the [index]-th declared slice equals [sub]. *)
val slice : t -> index:int -> Vtuple.t -> (Vtuple.t -> float -> unit) -> unit

(** Index of the declared slice with exactly these positions. *)
val find_slice : t -> int array -> int option

val clear : t -> unit

(** Snapshot to a GMR (fresh). *)
val to_gmr : t -> Gmr.t

val of_gmr : ?name:string -> key_width:int -> slices:int array list -> Gmr.t -> t

(** Serialized size in bytes (for shuffle accounting). *)
val byte_size : t -> int

(** Number of free-list slots currently available for reuse. *)
val free_slots : t -> int

(** The [?name] given at creation (["anon"] otherwise). *)
val name : t -> string

(** {2 Self-metrics}

    Snapshot of a pool's storage health, computed on demand (the hot
    paths carry no extra instrumentation). *)

type stats = {
  s_name : string;
  s_live : int;  (** live records *)
  s_free : int;  (** free-list slots awaiting reuse *)
  s_hwm : int;  (** slot high-water mark (live + free) *)
  s_indexes : int;  (** declared secondary slice indexes *)
  s_load : float;  (** unique-index load factor, ≤ 1/2 *)
  s_probe_hist : int array;  (** unique-index probe-length histogram *)
}

val stats : t -> stats

(** Publish live/free-slot and load-factor gauges for this pool to the
    [Obs] registry (labeled by pool name). Cold path. *)
val observe : t -> unit
