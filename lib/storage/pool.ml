open Divm_ring
module Obs = Divm_obs.Obs

(* Registry instruments (§5.2 storage layer): pools and secondary indexes
   created, unique/slice index probes and the probes that found nothing. *)
let m_pools = Obs.Counter.make "divm_pools_created_total"
let m_indexes = Obs.Counter.make "divm_indexes_created_total"
let m_probes = Obs.Counter.make "divm_index_probes_total"
let m_probe_misses = Obs.Counter.make "divm_index_probe_misses_total"
let m_slice_scanned = Obs.Counter.make "divm_slice_scanned_total"

(* One non-unique secondary index. Sub-keys get their own slot space
   ("sec slots"): [idx] maps a sub-key to its sec slot, [buckets.(ss)]
   stacks the pool slots sharing that sub-key, and the per-pool-slot
   back-pointers [of_sec]/[pos_in_bucket] make removal a true O(1)
   swap-remove with no bucket scan. *)
type sec = {
  positions : int array;
  idx : Oaidx.t;
  mutable sub_keys : Vtuple.t array; (* per sec slot *)
  mutable sub_hashes : int array; (* per sec slot: cached Oaidx.hash *)
  mutable buckets : Intvec.t array; (* per sec slot *)
  mutable sec_hwm : int;
  sec_free : Intvec.t;
  mutable of_sec : int array; (* pool slot -> sec slot *)
  mutable pos_in_bucket : int array; (* pool slot -> offset in its bucket *)
  sec_base : int;
}

type t = {
  pname : string;
  kw : int;
  rec_bytes : int;
  base : int;
  mutable keys : Vtuple.t array;
  mutable values : float array; (* 0. marks a dead slot *)
  mutable hwm : int; (* high-water mark *)
  free : Intvec.t;
  mutable count : int;
  unique : Oaidx.t;
  unique_base : int;
  secs : sec array;
}

let create ?(name = "anon") ~key_width ~slices () =
  Obs.Counter.incr m_pools;
  Obs.Counter.add m_indexes (List.length slices);
  let cap = 16 in
  let rec_bytes = (key_width * 8) + 8 + 16 in
  {
    pname = name;
    kw = key_width;
    rec_bytes;
    base = Trace.alloc_region (1 lsl 28);
    keys = Array.make cap Vtuple.empty;
    values = Array.make cap 0.;
    hwm = 0;
    free = Intvec.create ();
    count = 0;
    unique = Oaidx.create ~size:cap ();
    unique_base = Trace.alloc_region (1 lsl 24);
    secs =
      Array.of_list
        (List.map
           (fun positions ->
             {
               positions;
               idx = Oaidx.create ();
               sub_keys = Array.make cap Vtuple.empty;
               sub_hashes = Array.make cap 0;
               buckets = Array.make cap (Intvec.create ~cap:0 ());
               sec_hwm = 0;
               sec_free = Intvec.create ();
               of_sec = Array.make cap (-1);
               pos_in_bucket = Array.make cap 0;
               sec_base = Trace.alloc_region (1 lsl 24);
             })
           slices);
  }

let cardinal t = t.count
let key_width t = t.kw

let addr t slot = t.base + (slot * t.rec_bytes)

let grow t =
  let cap = Array.length t.keys in
  let cap' = cap * 2 in
  let keys = Array.make cap' Vtuple.empty in
  Array.blit t.keys 0 keys 0 cap;
  let values = Array.make cap' 0. in
  Array.blit t.values 0 values 0 cap;
  t.keys <- keys;
  t.values <- values;
  (* the per-pool-slot back-pointer arrays track the slot space *)
  Array.iter
    (fun sec ->
      let of_sec = Array.make cap' (-1) in
      Array.blit sec.of_sec 0 of_sec 0 cap;
      sec.of_sec <- of_sec;
      let pos = Array.make cap' 0 in
      Array.blit sec.pos_in_bucket 0 pos 0 cap;
      sec.pos_in_bucket <- pos)
    t.secs

let alloc_slot t =
  if Intvec.is_empty t.free then begin
    if t.hwm >= Array.length t.keys then grow t;
    let s = t.hwm in
    t.hwm <- t.hwm + 1;
    s
  end
  else Intvec.pop t.free

let sec_grow sec =
  let cap = Array.length sec.sub_keys in
  let cap' = cap * 2 in
  let sub_keys = Array.make cap' Vtuple.empty in
  Array.blit sec.sub_keys 0 sub_keys 0 cap;
  sec.sub_keys <- sub_keys;
  let sub_hashes = Array.make cap' 0 in
  Array.blit sec.sub_hashes 0 sub_hashes 0 cap;
  sec.sub_hashes <- sub_hashes;
  let buckets = Array.make cap' (Intvec.create ~cap:0 ()) in
  Array.blit sec.buckets 0 buckets 0 cap;
  sec.buckets <- buckets

let sec_insert t slot key =
  Array.iter
    (fun sec ->
      let sub = Vtuple.project key sec.positions in
      let h = Oaidx.hash sub in
      let ss =
        let ss = Oaidx.find_latched sec.idx sec.sub_keys h sub in
        if ss >= 0 then ss
        else begin
          let ss =
            if Intvec.is_empty sec.sec_free then begin
              if sec.sec_hwm >= Array.length sec.sub_keys then sec_grow sec;
              let ss = sec.sec_hwm in
              sec.sec_hwm <- sec.sec_hwm + 1;
              ss
            end
            else Intvec.pop sec.sec_free
          in
          sec.sub_keys.(ss) <- sub;
          sec.sub_hashes.(ss) <- h;
          sec.buckets.(ss) <- Intvec.create ();
          Oaidx.add_latched sec.idx h ss;
          ss
        end
      in
      let b = sec.buckets.(ss) in
      sec.of_sec.(slot) <- ss;
      sec.pos_in_bucket.(slot) <- Intvec.length b;
      Intvec.push b slot)
    t.secs

let sec_remove t slot =
  Array.iter
    (fun sec ->
      let ss = sec.of_sec.(slot) in
      let b = sec.buckets.(ss) in
      let last = Intvec.pop b in
      if last <> slot then begin
        (* swap-remove: the popped tail fills the vacated position *)
        let pos = sec.pos_in_bucket.(slot) in
        Intvec.set b pos last;
        sec.pos_in_bucket.(last) <- pos
      end;
      sec.of_sec.(slot) <- -1;
      if Intvec.is_empty b then begin
        (* retire the sub-key entry so churn cannot accumulate garbage *)
        let h = sec.sub_hashes.(ss) in
        ignore (Oaidx.find_latched sec.idx sec.sub_keys h sec.sub_keys.(ss));
        Oaidx.remove_latched sec.idx;
        sec.sub_keys.(ss) <- Vtuple.empty;
        Intvec.push sec.sec_free ss
      end)
    t.secs

let get t key =
  let h = Oaidx.hash key in
  if Trace.enabled () then
    Trace.emit (t.unique_base + ((h land 0xffff) * 8)) Trace.Read;
  Obs.Counter.incr m_probes;
  let slot = Oaidx.find t.unique t.keys h key in
  if slot < 0 then begin
    Obs.Counter.incr m_probe_misses;
    0.
  end
  else begin
    if Trace.enabled () then Trace.emit (addr t slot) Trace.Read;
    t.values.(slot)
  end

(* The latched unique-index bucket still points at [slot]'s entry. *)
let remove_slot_latched t slot =
  Oaidx.remove_latched t.unique;
  t.values.(slot) <- 0.;
  t.keys.(slot) <- Vtuple.empty;
  Intvec.push t.free slot;
  t.count <- t.count - 1;
  sec_remove t slot

let insert_latched ~copy t h key m =
  let slot = alloc_slot t in
  let key = if copy then Array.copy key else key in
  t.keys.(slot) <- key;
  t.values.(slot) <- m;
  t.count <- t.count + 1;
  Oaidx.add_latched t.unique h slot;
  sec_insert t slot key;
  if Trace.enabled () then Trace.emit (addr t slot) Trace.Write

(* Single-probe upsert (one hash, one probe sequence); [copy] is the
   scratch-key protocol: borrowed key buffers are duplicated only when the
   record is first inserted. *)
let upsert_h ~copy t h key m =
  if Float.abs m >= Mult.zero_eps then begin
    if Trace.enabled () then
      Trace.emit (t.unique_base + ((h land 0xffff) * 8)) Trace.Read;
    let slot = Oaidx.find_latched t.unique t.keys h key in
    if slot < 0 then insert_latched ~copy t h key m
    else begin
      let v = t.values.(slot) +. m in
      if Trace.enabled () then Trace.emit (addr t slot) Trace.Write;
      if Float.abs v < Mult.zero_eps then remove_slot_latched t slot
      else t.values.(slot) <- v
    end
  end

let upsert ~copy t key m = upsert_h ~copy t (Oaidx.hash key) key m
let add t key m = upsert ~copy:false t key m
let add_borrow t key m = upsert ~copy:true t key m
let add_hashed t h key m = upsert_h ~copy:false t h key m

(* Columnar upsert: probe with a precomputed hash and a cell-level
   equality; the key tuple is materialized by [make] only on first
   insert (secondary indexes need it then). *)
let add_by t ~hash:h ~eq ~make m =
  if Float.abs m >= Mult.zero_eps then begin
    if Trace.enabled () then
      Trace.emit (t.unique_base + ((h land 0xffff) * 8)) Trace.Read;
    let slot = Oaidx.find_pred_latched t.unique t.keys h eq in
    if slot < 0 then insert_latched ~copy:false t h (make ()) m
    else begin
      let v = t.values.(slot) +. m in
      if Trace.enabled () then Trace.emit (addr t slot) Trace.Write;
      if Float.abs v < Mult.zero_eps then remove_slot_latched t slot
      else t.values.(slot) <- v
    end
  end

(* Ring-(+) bulk merge of a GMR buffer: replays the buffer's cached
   index hashes instead of re-hashing every key, in the buffer's slot
   (= insertion) order so destination slots are assigned
   deterministically — serial and domain-parallel execution must leave
   bit-identical stores. Keys are retained by reference — the caller
   transfers ownership (the executor's private per-member buffers are
   cleared right after). *)
let merge_gmr t g = Gmr.iter_hashed (fun key m h -> add_hashed t h key m) g

let set t key m =
  let h = Oaidx.hash key in
  if Trace.enabled () then
    Trace.emit (t.unique_base + ((h land 0xffff) * 8)) Trace.Read;
  let slot = Oaidx.find_latched t.unique t.keys h key in
  if slot < 0 then begin
    if Float.abs m >= Mult.zero_eps then insert_latched ~copy:false t h key m
  end
  else if Float.abs m < Mult.zero_eps then remove_slot_latched t slot
  else begin
    t.values.(slot) <- m;
    if Trace.enabled () then Trace.emit (addr t slot) Trace.Write
  end

let foreach t f =
  for slot = 0 to t.hwm - 1 do
    let v = Array.unsafe_get t.values slot in
    if v <> 0. then begin
      if Trace.enabled () then Trace.emit (addr t slot) Trace.Read;
      f (Array.unsafe_get t.keys slot) v
    end
  done

let slice t ~index sub f =
  let sec = t.secs.(index) in
  let h = Oaidx.hash sub in
  if Trace.enabled () then
    Trace.emit (sec.sec_base + ((h land 0xffff) * 8)) Trace.Read;
  Obs.Counter.incr m_probes;
  let ss = Oaidx.find sec.idx sec.sub_keys h sub in
  if ss < 0 then Obs.Counter.incr m_probe_misses
  else begin
    let b = sec.buckets.(ss) in
    Obs.Counter.add m_slice_scanned (Intvec.length b);
    for i = 0 to Intvec.length b - 1 do
      let slot = Intvec.get b i in
      if Trace.enabled () then Trace.emit (addr t slot) Trace.Read;
      f t.keys.(slot) t.values.(slot)
    done
  end

let find_slice t positions =
  let rec go i =
    if i >= Array.length t.secs then None
    else if t.secs.(i).positions = positions then Some i
    else go (i + 1)
  in
  go 0

let clear t =
  Oaidx.clear t.unique;
  Array.iter
    (fun sec ->
      Oaidx.clear sec.idx;
      for ss = 0 to sec.sec_hwm - 1 do
        sec.sub_keys.(ss) <- Vtuple.empty;
        Intvec.clear sec.buckets.(ss)
      done;
      sec.sec_hwm <- 0;
      Intvec.clear sec.sec_free;
      Array.fill sec.of_sec 0 (Array.length sec.of_sec) (-1))
    t.secs;
  for slot = 0 to t.hwm - 1 do
    t.keys.(slot) <- Vtuple.empty;
    t.values.(slot) <- 0.
  done;
  t.hwm <- 0;
  Intvec.clear t.free;
  t.count <- 0

let to_gmr t =
  let g = Gmr.create ~size:t.count () in
  foreach t (fun key v -> Gmr.add g key v);
  g

let of_gmr ?name ~key_width ~slices g =
  let t = create ?name ~key_width ~slices () in
  Gmr.iter (fun key m -> add t key m) g;
  t

let byte_size t =
  let acc = ref 0 in
  foreach t (fun key _ -> acc := !acc + Vtuple.byte_size key + 8);
  !acc

let free_slots t = Intvec.length t.free
let name t = t.pname

(* --------------------------------------------------------------- *)
(* Self-metrics                                                     *)
(* --------------------------------------------------------------- *)

type stats = {
  s_name : string;
  s_live : int;
  s_free : int;
  s_hwm : int;
  s_indexes : int;
  s_load : float;
  s_probe_hist : int array;
}

let stats t =
  {
    s_name = t.pname;
    s_live = t.count;
    s_free = Intvec.length t.free;
    s_hwm = t.hwm;
    s_indexes = Array.length t.secs;
    s_load = Oaidx.load t.unique;
    s_probe_hist = Oaidx.probe_hist t.unique;
  }

(* Push the per-pool gauges into the registry under the pool's name.
   Cold path: called by report generators, never by compiled closures. *)
let observe t =
  let g suffix v =
    Obs.Gauge.set
      (Obs.Gauge.make
         (Printf.sprintf "divm_pool_%s{pool=%s}" suffix
            (Obs.json_string t.pname)))
      v
  in
  g "live_slots" (float_of_int t.count);
  g "free_slots" (float_of_int (Intvec.length t.free));
  g "load_factor" (Oaidx.load t.unique)
