open Divm_ring
module Obs = Divm_obs.Obs

(* Registry instruments (§5.2 storage layer): pools and secondary indexes
   created, unique/slice index probes and the probes that found nothing. *)
let m_pools = Obs.Counter.make "divm_pools_created_total"
let m_indexes = Obs.Counter.make "divm_indexes_created_total"
let m_probes = Obs.Counter.make "divm_index_probes_total"
let m_probe_misses = Obs.Counter.make "divm_index_probe_misses_total"

type sec = {
  positions : int array;
  tbl : int list Vtuple.Tbl.t; (* sub-key -> live slots *)
  sec_base : int;
}

type t = {
  kw : int;
  rec_bytes : int;
  base : int;
  mutable keys : Vtuple.t array;
  mutable values : float array;
  mutable live : Bool.t array;
  mutable hwm : int; (* high-water mark *)
  mutable free : int list;
  mutable count : int;
  unique : int Vtuple.Tbl.t;
  unique_base : int;
  secs : sec array;
}

let create ?name ~key_width ~slices () =
  ignore name;
  Obs.Counter.incr m_pools;
  Obs.Counter.add m_indexes (List.length slices);
  let cap = 16 in
  let rec_bytes = (key_width * 8) + 8 + 16 in
  {
    kw = key_width;
    rec_bytes;
    base = Trace.alloc_region (1 lsl 28);
    keys = Array.make cap Vtuple.empty;
    values = Array.make cap 0.;
    live = Array.make cap false;
    hwm = 0;
    free = [];
    count = 0;
    unique = Vtuple.Tbl.create cap;
    unique_base = Trace.alloc_region (1 lsl 24);
    secs =
      Array.of_list
        (List.map
           (fun positions ->
             {
               positions;
               tbl = Vtuple.Tbl.create cap;
               sec_base = Trace.alloc_region (1 lsl 24);
             })
           slices);
  }

let cardinal t = t.count
let key_width t = t.kw

let addr t slot = t.base + (slot * t.rec_bytes)

let probe t key =
  if Trace.enabled () then
    Trace.emit (t.unique_base + (Vtuple.hash key land 0xffff) * 8) Trace.Read

let grow t =
  let cap = Array.length t.keys in
  let cap' = cap * 2 in
  let keys = Array.make cap' Vtuple.empty in
  Array.blit t.keys 0 keys 0 cap;
  let values = Array.make cap' 0. in
  Array.blit t.values 0 values 0 cap;
  let live = Array.make cap' false in
  Array.blit t.live 0 live 0 cap;
  t.keys <- keys;
  t.values <- values;
  t.live <- live

let alloc_slot t =
  match t.free with
  | s :: rest ->
      t.free <- rest;
      s
  | [] ->
      if t.hwm >= Array.length t.keys then grow t;
      let s = t.hwm in
      t.hwm <- t.hwm + 1;
      s

let sec_insert t slot key =
  Array.iter
    (fun sec ->
      let sub = Vtuple.project key sec.positions in
      let prev =
        match Vtuple.Tbl.find_opt sec.tbl sub with Some l -> l | None -> []
      in
      Vtuple.Tbl.replace sec.tbl sub (slot :: prev))
    t.secs

let sec_remove t slot key =
  Array.iter
    (fun sec ->
      let sub = Vtuple.project key sec.positions in
      match Vtuple.Tbl.find_opt sec.tbl sub with
      | None -> ()
      | Some l -> (
          match List.filter (fun s -> s <> slot) l with
          | [] -> Vtuple.Tbl.remove sec.tbl sub
          | l' -> Vtuple.Tbl.replace sec.tbl sub l'))
    t.secs

let get t key =
  probe t key;
  Obs.Counter.incr m_probes;
  match Vtuple.Tbl.find_opt t.unique key with
  | None ->
      Obs.Counter.incr m_probe_misses;
      0.
  | Some slot ->
      if Trace.enabled () then Trace.emit (addr t slot) Trace.Read;
      t.values.(slot)

let remove_slot t key slot =
  Vtuple.Tbl.remove t.unique key;
  t.live.(slot) <- false;
  t.keys.(slot) <- Vtuple.empty;
  t.free <- slot :: t.free;
  t.count <- t.count - 1;
  sec_remove t slot key

let insert t key m =
  let slot = alloc_slot t in
  t.keys.(slot) <- key;
  t.values.(slot) <- m;
  t.live.(slot) <- true;
  t.count <- t.count + 1;
  Vtuple.Tbl.replace t.unique key slot;
  sec_insert t slot key;
  if Trace.enabled () then Trace.emit (addr t slot) Trace.Write

let add t key m =
  if Float.abs m >= Gmr.zero_eps then begin
    probe t key;
    match Vtuple.Tbl.find_opt t.unique key with
    | None -> insert t key m
    | Some slot ->
        let v = t.values.(slot) +. m in
        if Trace.enabled () then Trace.emit (addr t slot) Trace.Write;
        if Float.abs v < Gmr.zero_eps then remove_slot t key slot
        else t.values.(slot) <- v
  end

let set t key m =
  probe t key;
  match Vtuple.Tbl.find_opt t.unique key with
  | None -> if Float.abs m >= Gmr.zero_eps then insert t key m
  | Some slot ->
      if Float.abs m < Gmr.zero_eps then remove_slot t key slot
      else begin
        t.values.(slot) <- m;
        if Trace.enabled () then Trace.emit (addr t slot) Trace.Write
      end

let foreach t f =
  for slot = 0 to t.hwm - 1 do
    if t.live.(slot) then begin
      if Trace.enabled () then Trace.emit (addr t slot) Trace.Read;
      f t.keys.(slot) t.values.(slot)
    end
  done

let slice t ~index sub f =
  let sec = t.secs.(index) in
  if Trace.enabled () then
    Trace.emit (sec.sec_base + (Vtuple.hash sub land 0xffff) * 8) Trace.Read;
  Obs.Counter.incr m_probes;
  match Vtuple.Tbl.find_opt sec.tbl sub with
  | None -> Obs.Counter.incr m_probe_misses
  | Some slots ->
      List.iter
        (fun slot ->
          if t.live.(slot) then begin
            if Trace.enabled () then Trace.emit (addr t slot) Trace.Read;
            f t.keys.(slot) t.values.(slot)
          end)
        slots

let find_slice t positions =
  let rec go i =
    if i >= Array.length t.secs then None
    else if t.secs.(i).positions = positions then Some i
    else go (i + 1)
  in
  go 0

let clear t =
  Vtuple.Tbl.clear t.unique;
  Array.iter (fun sec -> Vtuple.Tbl.clear sec.tbl) t.secs;
  Array.fill t.live 0 (Array.length t.live) false;
  t.hwm <- 0;
  t.free <- [];
  t.count <- 0

let to_gmr t =
  let g = Gmr.create ~size:t.count () in
  for slot = 0 to t.hwm - 1 do
    if t.live.(slot) then Gmr.add g t.keys.(slot) t.values.(slot)
  done;
  g

let of_gmr ?name ~key_width ~slices g =
  let t = create ?name ~key_width ~slices () in
  Gmr.iter (fun key m -> add t key m) g;
  t

let byte_size t =
  let acc = ref 0 in
  foreach t (fun key _ -> acc := !acc + Vtuple.byte_size key + 8);
  !acc

let free_slots t = List.length t.free
