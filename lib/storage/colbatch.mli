(** Column-oriented update batches (§5.2.2).

    Input batches and shuffled view contents travel in columnar form: one
    value array per attribute plus a multiplicity array. Filtering and
    projection scan single columns (cache-friendly); row transformers
    convert to and from row-oriented GMRs/pools. [compact_group] is the
    workhorse of the vectorized batched-join executor: it coalesces
    duplicate keys and sort-groups the survivors so downstream probes run
    once per distinct key, not once per row. *)

open Divm_ring

type t

val width : t -> int
val length : t -> int

(** Row-to-column transformer. [width] must be the tuple width; empty GMRs
    need it to be supplied explicitly. *)
val of_gmr : width:int -> Gmr.t -> t

(** [of_iter ~width ~count iter] builds a batch by running [iter emit]
    where [emit tup m] appends one row. [count] must be an upper bound on
    the number of rows emitted (e.g. [Pool.cardinal]); tuples are copied,
    so borrowed rows are fine. *)
val of_iter :
  width:int -> count:int -> ((Vtuple.t -> float -> unit) -> unit) -> t

(** Column-to-row transformer. *)
val to_gmr : t -> Gmr.t

val column : t -> int -> Value.t array
val mults : t -> float array

(** [iter_rows b f] calls [f tuple mult] per row. The tuple array is a
    single scratch buffer BORROWED by [f] for the duration of the call
    only: it is overwritten in place before the next row, so [f] must copy
    it (e.g. via [Gmr.add] / [Pool.add], which copy keys) before retaining
    it anywhere. *)
val iter_rows : t -> (Vtuple.t -> float -> unit) -> unit

(** [filter b pred] keeps the rows whose index satisfies [pred] (the
    predicate reads columns directly). *)
val filter : t -> (int -> bool) -> t

(** [project b keep] keeps the columns at positions [keep]. *)
val project : t -> int array -> t

(** [aggregate b] merges equal rows, summing multiplicities (the row-format
    output is the pre-aggregated batch). *)
val aggregate : t -> Gmr.t

(** [compact_group b ~key ~rest] sorts the batch on the selected columns
    [key @ rest] (original column positions), merges rows that agree on
    every selected column (summing multiplicities), and returns
    [(compacted, starts, counts)]:

    - [compacted] has exactly the columns [key @ rest] in that order and
      one row per distinct selected-column combination;
    - [starts] delimits runs of equal [key] columns: group [g] spans rows
      [starts.(g) .. starts.(g+1) - 1] of [compacted] (with [key = [||]]
      the whole batch is one group);
    - [counts.(i)] is the number of source rows merged into row [i]
      (needed by Exists-style consumers that count support rather than
      summing multiplicities).

    Merged multiplicities may cancel to ~0; rows are kept regardless, so
    consumers decide between mult- and count-based semantics. *)
val compact_group : t -> key:int array -> rest:int array -> t * int array * float array

(** Serialized size in bytes. *)
val byte_size : t -> int
