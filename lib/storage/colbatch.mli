(** Column-oriented update batches (§5.2.2), v2: typed unboxed columns.

    Input batches and shuffled view contents travel in columnar form: one
    array per attribute plus a multiplicity array. Each column commits to
    an unboxed physical representation ([int array] for Int and Date,
    [float array] for Float) chosen from its first row at construction
    time; a column falls back to boxed [Value.t] cells only when it holds
    strings or genuinely mixed types. Scans touch flat arrays
    (cache-friendly, no per-cell pointer chase); row transformers convert
    to and from row-oriented GMRs/pools.

    [compact_group] is the workhorse of the vectorized batched-join
    executor: it coalesces duplicate rows and groups the survivors by key
    so downstream probes run once per distinct key, not once per row.
    Since v2 it orders rows by cached hashes (two stable counting
    passes — no comparison sort); cell values are compared only between
    hash-equal neighbours. *)

open Divm_ring

(** Per-batch string dictionary backing a [CDict] column: distinct
    strings in first-seen order, with a cached [Value.hash] and one
    shared [Value.String] box per entry. *)
type dict

(** The physical representation of one column. Read-only: the arrays are
    owned by the batch. [CInt]/[CDate]/[CFloat] are the unboxed fast
    paths; [CDict] is the dictionary-encoded string path (per-batch
    dictionary + int code per row — equality and compaction hashing run
    on codes, never on string contents); [CBoxed] is the fallback for
    genuinely mixed-type columns. *)
type col =
  | CInt of int array
  | CDate of int array
  | CFloat of float array
  | CDict of dict * int array
  | CBoxed of Value.t array

(** Number of distinct entries in a dictionary. Codes in the column's
    code array are always in [0, dict_size d). *)
val dict_size : dict -> int

(** [dict_entry d c] is the string behind code [c]. *)
val dict_entry : dict -> int -> string

(** Build a dictionary from decoded wire entries, in order: entry [i]
    gets code [i]. Entries should be distinct ([dict_intern]-produced
    dictionaries always are); the wire decoder enforces this. *)
val dict_of_strings : string array -> dict

type t

val width : t -> int
val length : t -> int

(** Row-to-column transformer. [width] must be the tuple width; empty GMRs
    need it to be supplied explicitly. *)
val of_gmr : width:int -> Gmr.t -> t

(** [of_iter ~width ~count iter] builds a batch by running [iter emit]
    where [emit tup m] appends one row. [count] must be an upper bound on
    the number of rows emitted (e.g. [Pool.cardinal]); tuples are copied,
    so borrowed rows are fine. *)
val of_iter :
  width:int -> count:int -> ((Vtuple.t -> float -> unit) -> unit) -> t

(** Wrap pre-built columns (all the same length as [mults]). Used by the
    wire codec, which ships columns as flat arrays. *)
val of_cols : col array -> mults:float array -> t

(** Column-to-row transformer; adds rows in row order (so replaying a
    decoded batch is deterministic). *)
val to_gmr : t -> Gmr.t

(** Typed physical column [c]. *)
val col : t -> int -> col

(** Boxed read of one cell. *)
val get : col -> int -> Value.t

(** Unboxed numeric read ([Value.to_float] semantics). *)
val float_get : col -> int -> float

(** Materialize column [c] as boxed values (copies; test/debug aid). *)
val column : t -> int -> Value.t array

val mults : t -> float array

(** [iter_rows b f] calls [f tuple mult] per row. The tuple array is a
    single scratch buffer BORROWED by [f] for the duration of the call
    only: it is overwritten in place before the next row, so [f] must copy
    it (e.g. via [Gmr.add] / [Pool.add], which copy keys) before retaining
    it anywhere. *)
val iter_rows : t -> (Vtuple.t -> float -> unit) -> unit

(** [filter b pred] keeps the rows whose index satisfies [pred] (the
    predicate reads columns directly). *)
val filter : t -> (int -> bool) -> t

(** [project b keep] keeps the columns at positions [keep]. *)
val project : t -> int array -> t

(** [aggregate b] merges equal rows, summing multiplicities (the row-format
    output is the pre-aggregated batch). *)
val aggregate : t -> Gmr.t

(** {2 Row hashing for bulk merges}

    These fold typed cells directly — no per-cell boxing — and are
    bit-compatible with the row-oriented stores: [row_hash cols sel i]
    equals [Oaidx.hash] of the materialized sub-tuple, [row_eq] matches
    [Vtuple.equal], and [row_tuple] materializes the sub-tuple (only
    needed on first insert). Together with [Pool.add_by]/[Gmr.add_by]
    they let the executor's ring-(+) merge apply compacted rows without
    building a [Vtuple] per row. *)

val row_hash : col array -> int array -> int -> int
val row_eq : col array -> int array -> int -> Vtuple.t -> bool
val row_tuple : col array -> int array -> int -> Vtuple.t

(** [compact_group b ~key ~rest] merges rows that agree on every selected
    column [key @ rest] (original column positions, summing
    multiplicities), groups the survivors by the [key] columns, and
    returns [(compacted, starts, counts)]:

    - [compacted] has exactly the columns [key @ rest] in that order and
      one row per distinct selected-column combination;
    - [starts] delimits runs of equal [key] columns: group [g] spans rows
      [starts.(g) .. starts.(g+1) - 1] of [compacted] (with [key = [||]]
      the whole batch is one group);
    - [counts.(i)] is the number of source rows merged into row [i]
      (needed by Exists-style consumers that count support rather than
      summing multiplicities).

    Rows are ordered by cached 64-bit hashes (radix-style stable counting
    partitions), not sorted by value: duplicate rows always share hashes
    and therefore always merge, but in the (vanishingly rare) event of a
    hash collision a key group may be emitted split across two ranges of
    [starts]. Consumers must treat groups as "runs of equal keys", not
    "all rows of that key" — the executor's per-group accessor resolution
    is correct either way, it merely amortizes slightly less on a split.

    With [~drop_cancelled:true], merged rows whose multiplicity cancels
    to ~0 ([Mult.zero_eps]) are dropped and counted in
    [divm_batch_rows_cancelled_total]. Only sound when every consumer
    weights rows by multiplicity; count/Exists-style consumers (which
    read [counts]) must keep cancelled rows. *)
val compact_group :
  ?drop_cancelled:bool ->
  t ->
  key:int array ->
  rest:int array ->
  t * int array * float array

(** The PR 4 sort-based compaction (comparison sort over boxed cells).
    Reference implementation: slower, but its output satisfies the same
    contract with perfect grouping. Kept as the qcheck oracle for the
    radix path. *)
val compact_group_sorted :
  ?drop_cancelled:bool ->
  t ->
  key:int array ->
  rest:int array ->
  t * int array * float array

(** Test hook for the radix path: when [Some b], per-cell compaction
    hashes keep only their low [b] bits, forcing distinct values to
    collide. Reset to [None] after use. *)
val hash_bits_for_tests : int option ref

(** Serialized size in bytes. O(width) arithmetic on typed columns;
    dictionary columns account the dictionary payload (count +
    length-prefixed entries) plus one i32 code per row; boxed columns are
    scanned once. The result is memoized — representation upgrades
    ([dictify]) invalidate the memo. *)
val byte_size : t -> int

(** Promote every [CBoxed] column holding only strings to [CDict] in
    place (the wire path: each such column then ships as dictionary +
    codes). High-cardinality columns — more than 64 distinct entries,
    e.g. generated per-row names — are left boxed: a near-distinct
    dictionary pays hash-and-append per cell and compresses nothing.
    Invalidates the [byte_size] memo when anything changed. *)
val dictify : t -> unit

(** Targeted form of {!dictify}: promote only the named columns (by
    index). The runtime's planner calls this once per batch with the
    columns whose dictionary form pays for itself — string
    filter-kernel operands (the kernel then tests an int-indexed
    per-dictionary truth table) and string compaction keys (the radix
    path then hashes cached per-entry hashes instead of boxed cells).
    Already-[CDict], non-string, and high-cardinality columns are
    skipped; same cutoff as {!dictify}. *)
val dictify_cols : t -> int list -> unit
