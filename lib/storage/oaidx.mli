(** Open-addressing slot index: the specialized storage core (§5.1–5.2).

    Maps tuples to integer slot ids. The index stores only (cached hash,
    slot) pairs — the key tuples themselves live in the owner's slot
    arrays and are passed to [find] for comparison, so one key array
    serves the records and every index over them. Linear probing over a
    power-of-two capacity at load factor ≤ 1/2; deletion is tombstone-free
    (backward shift), so probe chains never degrade under churn.

    The upsert protocol costs exactly one hash and one probe sequence:

    {[
      let h = Oaidx.hash key in
      match Oaidx.find_latched idx keys h key with
      | -1 ->                         (* miss: the bucket is latched *)
          let slot = (* allocate; write key/value *) in
          Oaidx.add_latched idx h slot
      | slot ->                       (* hit: update in place, or *)
          Oaidx.remove_latched idx    (* delete with no second probe *)
    ]}

    [add_latched]/[remove_latched] must immediately follow the
    [find_latched] that latched the bucket, with no intervening operation
    on the index.

    Concurrency: {!find} is side-effect free, so any number of domains may
    probe a quiescent (not concurrently mutated) table; the latch lives in
    per-table state, which is why read paths must use {!find} and only
    single-owner write paths may use {!find_latched}. Mutation is
    single-writer, with no concurrent readers. *)

open Divm_ring

type t

val create : ?size:int -> unit -> t
val cardinal : t -> int

(** Finalized, never-zero hash of a key. Cache it: every entry point below
    takes it instead of recomputing. *)
val hash : Vtuple.t -> int

(** Finalize a raw [Vtuple.hash]-style fold into the cached-hash domain
    ([hash k = finalize (Vtuple.hash k)]). Columnar producers that fold
    hashes over typed cells use this to stay bit-compatible. *)
val finalize : int -> int

(** [iter t f] calls [f hash slot] for every entry, in bucket order. The
    cached hashes let bulk merges into another table skip re-hashing. *)
val iter : t -> (int -> int -> unit) -> unit

(** [find t keys h k] returns the slot mapped to [k] (compared via
    [keys.(slot)]), or [-1]. Pure probe: no latch, safe for concurrent
    readers. *)
val find : t -> Vtuple.t array -> int -> Vtuple.t -> int

(** Like {!find}, and additionally latches the final probe bucket for an
    immediately-following {!add_latched}/{!remove_latched}. Single-owner
    write paths only. *)
val find_latched : t -> Vtuple.t array -> int -> Vtuple.t -> int

(** [find_pred_latched t keys h eq]: {!find_latched} with a caller-supplied
    equality predicate on the stored key. [eq] must agree with the notion
    of equality under which [h] was computed (hash-equal keys that are
    [eq]-unequal are probed past, as usual). *)
val find_pred_latched : t -> Vtuple.t array -> int -> (Vtuple.t -> bool) -> int

(** Insert at the bucket latched by a missing [find]. Grows (and
    re-probes internally) when the load factor would exceed 1/2. *)
val add_latched : t -> int -> int -> unit

(** Delete the entry at the bucket latched by a successful [find],
    backward-shifting the probe chain. *)
val remove_latched : t -> unit

val clear : t -> unit
val copy : t -> t

(** {2 Self-metrics}

    Computed on demand by walking the table — the probe paths stay
    uninstrumented. *)

(** Occupancy over capacity; ≤ 1/2 by construction. *)
val load : t -> float

(** [probe_hist t] buckets every stored entry by its displacement from its
    home bucket (the probes a successful lookup of it costs). Index [i]
    counts displacement [i]; the last bucket ([max_len], default 16)
    absorbs longer chains. Sums to {!cardinal}. *)
val probe_hist : ?max_len:int -> t -> int array
