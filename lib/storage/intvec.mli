(** Growable int-array stack: the bucket and free-list representation of
    the storage engine (§5.2). Pushes are amortized O(1); removal is by
    swap-remove at the owner's hands ([set] the hole to [pop]'s result).

    Bounds are not checked on [get]/[set]; indices must be [< length]. *)

type t

val create : ?cap:int -> unit -> t
val length : t -> int
val is_empty : t -> bool
val get : t -> int -> int
val set : t -> int -> int -> unit
val push : t -> int -> unit

(** Remove and return the last element. The stack must be non-empty. *)
val pop : t -> int

val clear : t -> unit
val copy : t -> t
val iter : (int -> unit) -> t -> unit
