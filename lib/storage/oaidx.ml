open Divm_ring

type t = {
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable hashes : int array; (* cached key hashes; 0 marks an empty bucket *)
  mutable slots : int array; (* slot id stored alongside each hash *)
  mutable count : int;
  mutable last : int; (* bucket latched by the most recent [find] *)
}

let rec pow2_above c n = if c >= n then c else pow2_above (c * 2) n

let create ?(size = 16) () =
  let cap = pow2_above 16 (2 * size) in
  {
    mask = cap - 1;
    hashes = Array.make cap 0;
    slots = Array.make cap 0;
    count = 0;
    last = 0;
  }

let cardinal t = t.count

(* Finalize [Vtuple.hash] (a multiplicative fold with little high-bit
   diffusion) so that low bits — the only ones the mask keeps — depend on
   every key field. The multiplier is the xorshift* constant, the largest
   odd mixing constant that fits in a 63-bit OCaml int. Never returns 0,
   which is reserved for empty buckets. *)
let finalize h =
  let h = h lxor (h lsr 31) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  if h = 0 then 0x2545F491 else h

let hash (k : Vtuple.t) = finalize (Vtuple.hash k)

(* Visit every (cached hash, slot) pair, in bucket order. *)
let iter t f =
  for i = 0 to t.mask do
    let h = Array.unsafe_get t.hashes i in
    if h <> 0 then f h (Array.unsafe_get t.slots i)
  done

(* Side-effect-free probe: safe for concurrent readers of a shared table
   (the parallel batch executor probes store pools from many domains).
   Write paths use [find_latched], which additionally records the bucket
   where the probe ended for the follow-up [add_latched]/[remove_latched]. *)
let find t (keys : Vtuple.t array) h (k : Vtuple.t) =
  let mask = t.mask in
  let hashes = t.hashes and slots = t.slots in
  let i = ref (h land mask) in
  let res = ref (-2) in
  while !res = -2 do
    let hb = Array.unsafe_get hashes !i in
    if hb = 0 then res := -1
    else if
      hb = h
      && Vtuple.equal (Array.unsafe_get keys (Array.unsafe_get slots !i)) k
    then res := Array.unsafe_get slots !i
    else i := (!i + 1) land mask
  done;
  !res

let find_latched t (keys : Vtuple.t array) h (k : Vtuple.t) =
  let mask = t.mask in
  let hashes = t.hashes and slots = t.slots in
  let i = ref (h land mask) in
  let res = ref (-2) in
  while !res = -2 do
    let hb = Array.unsafe_get hashes !i in
    if hb = 0 then res := -1
    else if
      hb = h
      && Vtuple.equal (Array.unsafe_get keys (Array.unsafe_get slots !i)) k
    then res := Array.unsafe_get slots !i
    else i := (!i + 1) land mask
  done;
  t.last <- !i;
  !res

(* [find_latched] with a caller-supplied equality on the stored key —
   lets columnar producers compare typed cells against stored tuples
   without materializing the probe key. *)
let find_pred_latched t (keys : Vtuple.t array) h eq =
  let mask = t.mask in
  let hashes = t.hashes and slots = t.slots in
  let i = ref (h land mask) in
  let res = ref (-2) in
  while !res = -2 do
    let hb = Array.unsafe_get hashes !i in
    if hb = 0 then res := -1
    else if
      hb = h && eq (Array.unsafe_get keys (Array.unsafe_get slots !i))
    then res := Array.unsafe_get slots !i
    else i := (!i + 1) land mask
  done;
  t.last <- !i;
  !res

let grow t =
  let cap = (t.mask + 1) * 2 in
  let nmask = cap - 1 in
  let nh = Array.make cap 0 and ns = Array.make cap 0 in
  let oh = t.hashes and os = t.slots in
  for i = 0 to t.mask do
    let h = Array.unsafe_get oh i in
    if h <> 0 then begin
      (* keys are unique, so finding the first empty bucket suffices *)
      let j = ref (h land nmask) in
      while Array.unsafe_get nh !j <> 0 do
        j := (!j + 1) land nmask
      done;
      Array.unsafe_set nh !j h;
      Array.unsafe_set ns !j (Array.unsafe_get os i)
    end
  done;
  t.hashes <- nh;
  t.slots <- ns;
  t.mask <- nmask

let add_latched t h slot =
  (* keep load factor <= 1/2 so probe chains stay short and the find/grow
     loops always terminate *)
  if 2 * (t.count + 1) > t.mask + 1 then begin
    grow t;
    let mask = t.mask in
    let hashes = t.hashes in
    let i = ref (h land mask) in
    while Array.unsafe_get hashes !i <> 0 do
      i := (!i + 1) land mask
    done;
    t.last <- !i
  end;
  t.hashes.(t.last) <- h;
  t.slots.(t.last) <- slot;
  t.count <- t.count + 1

let remove_latched t =
  (* Tombstone-free backward-shift deletion: walk the probe chain after
     the hole and pull back every entry whose home bucket lies at or
     before the hole, until the chain ends. *)
  let mask = t.mask in
  let hashes = t.hashes and slots = t.slots in
  let i = ref t.last in
  let j = ref ((t.last + 1) land mask) in
  let running = ref true in
  while !running do
    let h = Array.unsafe_get hashes !j in
    if h = 0 then begin
      Array.unsafe_set hashes !i 0;
      running := false
    end
    else begin
      let home = h land mask in
      if (!j - home) land mask >= (!j - !i) land mask then begin
        Array.unsafe_set hashes !i h;
        Array.unsafe_set slots !i (Array.unsafe_get slots !j);
        i := !j
      end;
      j := (!j + 1) land mask
    end
  done;
  t.count <- t.count - 1

let clear t =
  let cap = t.mask + 1 in
  (* Reused scratch tables alternate between one large evaluation and many
     tiny ones; a full-width fill would then dominate every tiny reuse, so
     shrink when the table is nearly empty for its footprint. Tables that
     are genuinely full (grow leaves load > 1/4) never shrink. *)
  if cap > 1024 && 8 * t.count < cap then begin
    let cap' = pow2_above 16 (2 * t.count) in
    t.mask <- cap' - 1;
    t.hashes <- Array.make cap' 0;
    t.slots <- Array.make cap' 0
  end
  else Array.fill t.hashes 0 cap 0;
  t.count <- 0

(* On-demand self-metrics: the find/add hot paths carry no instrumentation,
   so the stats walk the table instead. Displacement from the home bucket
   is exactly the probe count a successful lookup of that entry pays. *)
let load t = float_of_int t.count /. float_of_int (t.mask + 1)

let probe_hist ?(max_len = 16) t =
  let h = Array.make (max_len + 1) 0 in
  for i = 0 to t.mask do
    let hb = t.hashes.(i) in
    if hb <> 0 then begin
      let d = (i - (hb land t.mask)) land t.mask in
      let d = if d > max_len then max_len else d in
      h.(d) <- h.(d) + 1
    end
  done;
  h

let copy t =
  {
    mask = t.mask;
    hashes = Array.copy t.hashes;
    slots = Array.copy t.slots;
    count = t.count;
    last = t.last;
  }
