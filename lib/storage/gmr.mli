(** Generalized multiset relations (GMRs): finite maps from tuples to
    non-zero real multiplicities (§3.1, Appendix A).

    A GMR both represents base-table contents (count multiplicities) and
    materialized aggregate results (aggregate values stored in the
    multiplicity). Addition is the bag union of the calculus: multiplicities
    of equal tuples sum, tuples reaching multiplicity zero disappear.

    Rebased on the specialized storage core ({!Oaidx}): tuples and
    multiplicities live in parallel slot arrays (multiplicities unboxed),
    reached through an open-addressing index with cached hashes,
    single-probe upserts and tombstone-free deletion — the direct
    data-structure operations §5.1 compiles triggers down to. *)

open Divm_ring

type t

val create : ?size:int -> unit -> t

(** [add r tup m] adds multiplicity [m] to tuple [tup], removing the entry if
    the result cancels to zero. [tup] is retained by reference: the caller
    must not mutate it afterwards. *)
val add : t -> Vtuple.t -> float -> unit

(** Scratch-key variant of [add] for compiled trigger closures: [tup] is a
    borrowed buffer the caller will overwrite, copied by the table only
    when this is its first insertion. *)
val add_borrow : t -> Vtuple.t -> float -> unit

(** [add_hashed r h tup m]: [add] with the finalized [Oaidx.hash] already
    in hand (e.g. replayed from another table via {!iter_hashed}). [tup]
    is retained by reference. *)
val add_hashed : t -> int -> Vtuple.t -> float -> unit

(** Columnar upsert: probe with a precomputed [hash] and a cell-level
    [eq] against stored tuples; [make] materializes the key tuple and is
    called only on first insert. Lets columnar producers merge rows
    without building a [Vtuple] per row (see [Colbatch.row_hash]). *)
val add_by :
  t -> hash:int -> eq:(Vtuple.t -> bool) -> make:(unit -> Vtuple.t) ->
  float -> unit

(** [iter_hashed f r] calls [f tup m h] per entry with its cached
    finalized hash, in slot (= insertion) order, same as {!iter}. Slot
    order matters: bulk merges that replay a buffer into a destination
    store assign destination slots in a deterministic order, which keeps
    later float summation orders — and so whole stores — bit-identical
    across serial and parallel execution. *)
val iter_hashed : (Vtuple.t -> float -> int -> unit) -> t -> unit

(** [set r tup m] overwrites the multiplicity (removing on zero). *)
val set : t -> Vtuple.t -> float -> unit

(** Multiplicity of a tuple; [0.] if absent. *)
val mult : t -> Vtuple.t -> float

val mem : t -> Vtuple.t -> bool
val iter : (Vtuple.t -> float -> unit) -> t -> unit
val fold : (Vtuple.t -> float -> 'a -> 'a) -> t -> 'a -> 'a
val cardinal : t -> int
val is_empty : t -> bool
val copy : t -> t

(** Reset to empty, keeping the allocated capacity for reuse. *)
val clear : t -> unit

(** In-place bag union: [union_into dst src] adds every entry of [src]. *)
val union_into : t -> t -> unit

(** [scale r c] multiplies every multiplicity by [c] (fresh GMR). *)
val scale : t -> float -> t

val of_list : (Vtuple.t * float) list -> t
val to_list : t -> (Vtuple.t * float) list

(** Sorted, canonical listing — used for equality in tests. *)
val to_sorted_list : t -> (Vtuple.t * float) list

(** Equality up to a small numeric tolerance on multiplicities. *)
val equal : ?eps:float -> t -> t -> bool

(** Total serialized byte size (tuples + one 8-byte multiplicity each). *)
val byte_size : t -> int

val pp : Format.formatter -> t -> unit

(** [zero_eps] is the cancellation threshold: multiplicities with absolute
    value below it are treated as zero (= {!Divm_ring.Mult.zero_eps}). *)
val zero_eps : float
