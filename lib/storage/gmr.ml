open Divm_ring

type t = {
  mutable keys : Vtuple.t array;
  mutable mults : float array; (* 0. marks a dead slot: live ones are >= eps *)
  mutable hs : int array; (* per-slot cached index hash, for bulk merges *)
  mutable hwm : int; (* high-water mark *)
  mutable count : int;
  free : Intvec.t;
  idx : Oaidx.t;
}

let zero_eps = Mult.zero_eps
let is_zero = Mult.is_zero

let create ?(size = 16) () =
  let cap = max 8 size in
  {
    keys = Array.make cap Vtuple.empty;
    mults = Array.make cap 0.;
    hs = Array.make cap 0;
    hwm = 0;
    count = 0;
    free = Intvec.create ();
    idx = Oaidx.create ~size ();
  }

let cardinal r = r.count
let is_empty r = r.count = 0

let grow r =
  let cap = Array.length r.keys in
  let nk = Array.make (2 * cap) Vtuple.empty in
  Array.blit r.keys 0 nk 0 cap;
  let nm = Array.make (2 * cap) 0. in
  Array.blit r.mults 0 nm 0 cap;
  let nh = Array.make (2 * cap) 0 in
  Array.blit r.hs 0 nh 0 cap;
  r.keys <- nk;
  r.mults <- nm;
  r.hs <- nh

let alloc_slot r =
  if Intvec.is_empty r.free then begin
    if r.hwm >= Array.length r.keys then grow r;
    let s = r.hwm in
    r.hwm <- r.hwm + 1;
    s
  end
  else Intvec.pop r.free

let drop_slot r s =
  Oaidx.remove_latched r.idx;
  r.mults.(s) <- 0.;
  r.keys.(s) <- Vtuple.empty;
  Intvec.push r.free s;
  r.count <- r.count - 1

(* Single-probe upsert. [copy] implements the scratch-key protocol: a
   borrowed key buffer is only duplicated when it must be retained, i.e.
   on first insert of that key. *)
let upsert_h ~copy r h tup m =
  if not (is_zero m) then begin
    let s = Oaidx.find_latched r.idx r.keys h tup in
    if s >= 0 then begin
      let m' = r.mults.(s) +. m in
      if is_zero m' then drop_slot r s else r.mults.(s) <- m'
    end
    else begin
      let s = alloc_slot r in
      r.keys.(s) <- (if copy then Array.copy tup else tup);
      r.mults.(s) <- m;
      r.hs.(s) <- h;
      Oaidx.add_latched r.idx h s;
      r.count <- r.count + 1
    end
  end

let upsert ~copy r tup m = upsert_h ~copy r (Oaidx.hash tup) tup m
let add r tup m = upsert ~copy:false r tup m
let add_borrow r tup m = upsert ~copy:true r tup m
let add_hashed r h tup m = upsert_h ~copy:false r h tup m

(* Columnar upsert: the key exists only as typed cells on the producer's
   side. [eq] compares those cells against a stored tuple; [make]
   materializes the tuple, called only when this is the first insert. *)
let add_by r ~hash ~eq ~make m =
  if not (is_zero m) then begin
    let s = Oaidx.find_pred_latched r.idx r.keys hash eq in
    if s >= 0 then begin
      let m' = r.mults.(s) +. m in
      if is_zero m' then drop_slot r s else r.mults.(s) <- m'
    end
    else begin
      let s = alloc_slot r in
      r.keys.(s) <- make ();
      r.mults.(s) <- m;
      r.hs.(s) <- hash;
      Oaidx.add_latched r.idx hash s;
      r.count <- r.count + 1
    end
  end

(* Visit entries together with their cached hashes, in slot order — the
   same order as [iter]. Bulk merges into another hash-indexed store skip
   re-hashing, and because slot order is insertion order, replaying a
   merge assigns destination slots deterministically (the serial and
   domain-parallel executors must converge on bit-identical stores). *)
let iter_hashed f r =
  let keys = r.keys and mults = r.mults and hs = r.hs in
  for s = 0 to r.hwm - 1 do
    let m = Array.unsafe_get mults s in
    if m <> 0. then
      f (Array.unsafe_get keys s) m (Array.unsafe_get hs s)
  done

let set r tup m =
  let h = Oaidx.hash tup in
  let s = Oaidx.find_latched r.idx r.keys h tup in
  if s >= 0 then begin
    if is_zero m then drop_slot r s else r.mults.(s) <- m
  end
  else if not (is_zero m) then begin
    let s = alloc_slot r in
    r.keys.(s) <- tup;
    r.mults.(s) <- m;
    r.hs.(s) <- h;
    Oaidx.add_latched r.idx h s;
    r.count <- r.count + 1
  end

let mult r tup =
  let s = Oaidx.find r.idx r.keys (Oaidx.hash tup) tup in
  if s >= 0 then r.mults.(s) else 0.

let mem r tup = Oaidx.find r.idx r.keys (Oaidx.hash tup) tup >= 0

let iter f r =
  for s = 0 to r.hwm - 1 do
    let m = Array.unsafe_get r.mults s in
    if m <> 0. then f (Array.unsafe_get r.keys s) m
  done

let fold f r acc =
  let acc = ref acc in
  iter (fun tup m -> acc := f tup m !acc) r;
  !acc

let copy r =
  {
    keys = Array.copy r.keys;
    mults = Array.copy r.mults;
    hs = Array.copy r.hs;
    hwm = r.hwm;
    count = r.count;
    free = Intvec.copy r.free;
    idx = Oaidx.copy r.idx;
  }

let clear r =
  for s = 0 to r.hwm - 1 do
    r.keys.(s) <- Vtuple.empty;
    r.mults.(s) <- 0.
  done;
  r.hwm <- 0;
  r.count <- 0;
  Intvec.clear r.free;
  Oaidx.clear r.idx

let union_into dst src = iter (fun tup m -> add dst tup m) src

let scale r c =
  let out = create ~size:(cardinal r) () in
  if not (is_zero c) then iter (fun tup m -> add out tup (m *. c)) r;
  out

let of_list l =
  let r = create ~size:(List.length l) () in
  List.iter (fun (tup, m) -> add r tup m) l;
  r

let to_list r = fold (fun tup m acc -> (tup, m) :: acc) r []

let to_sorted_list r =
  List.sort (fun (a, _) (b, _) -> Vtuple.compare a b) (to_list r)

let equal ?(eps = 1e-6) a b =
  cardinal a = cardinal b
  && fold (fun tup m ok -> ok && Float.abs (mult b tup -. m) <= eps) a true

let byte_size r = fold (fun tup _ acc -> acc + Vtuple.byte_size tup + 8) r 0

let pp ppf r =
  Format.fprintf ppf "@[<v>{";
  List.iter
    (fun (tup, m) -> Format.fprintf ppf "@ %a -> %g;" Vtuple.pp tup m)
    (to_sorted_list r);
  Format.fprintf ppf "@ }@]"
