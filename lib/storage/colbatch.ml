open Divm_ring
module Obs = Divm_obs.Obs

(* Rows whose merged multiplicity cancelled to ~0 and were dropped by
   [compact_group ~drop_cancelled:true] (counted in source rows). *)
let m_cancelled = Obs.Counter.make "divm_batch_rows_cancelled_total"

(* Dictionary interning outcomes while building [CDict] columns: a hit
   reuses an existing code, a miss appends a new dictionary entry. *)
let m_dict_hits = Obs.Counter.make "divm_dict_intern_hits_total"
let m_dict_misses = Obs.Counter.make "divm_dict_intern_misses_total"

(* Per-batch string dictionary backing a [CDict] column. [dvhash] caches
   [Value.hash] per entry (so row hashing over codes stays
   [Vtuple.hash]-compatible) and [dboxed] caches one shared
   [Value.String] box per entry (so [get] never allocates). *)
type dict = {
  mutable dn : int;
  mutable dvals : string array;
  mutable dvhash : int array;
  mutable dboxed : Value.t array;
  dtbl : (string, int) Hashtbl.t;
}

type col =
  | CInt of int array
  | CDate of int array
  | CFloat of float array
  | CDict of dict * int array
  | CBoxed of Value.t array

let dict_create ?(cap = 8) () =
  {
    dn = 0;
    dvals = Array.make (max cap 1) "";
    dvhash = Array.make (max cap 1) 0;
    dboxed = Array.make (max cap 1) (Value.Int 0);
    dtbl = Hashtbl.create 16;
  }

let dict_grow d =
  let cap = 2 * Array.length d.dvals in
  let vals = Array.make cap "" in
  let vh = Array.make cap 0 in
  let bx = Array.make cap (Value.Int 0) in
  Array.blit d.dvals 0 vals 0 d.dn;
  Array.blit d.dvhash 0 vh 0 d.dn;
  Array.blit d.dboxed 0 bx 0 d.dn;
  d.dvals <- vals;
  d.dvhash <- vh;
  d.dboxed <- bx

let dict_append d s =
  let c = d.dn in
  if c = Array.length d.dvals then dict_grow d;
  let v = Value.String s in
  d.dvals.(c) <- s;
  d.dvhash.(c) <- Value.hash v;
  d.dboxed.(c) <- v;
  Hashtbl.add d.dtbl s c;
  d.dn <- c + 1;
  c

(* Physical-equality fast path first: low-cardinality categorical
   columns (flags, segments, ship modes) almost always reuse the same
   string blocks, so a pointer scan over the first entries resolves the
   common case without hashing the string. High-cardinality columns fall
   through to the hash table after a bounded scan. *)
let dict_intern d s =
  let lim = if d.dn < 16 then d.dn else 16 in
  let vals = d.dvals in
  let rec scan i =
    if i >= lim then -1
    else if Array.unsafe_get vals i == s then i
    else scan (i + 1)
  in
  let phys = scan 0 in
  if phys >= 0 then begin
    Obs.Counter.incr m_dict_hits;
    phys
  end
  else
    match Hashtbl.find_opt d.dtbl s with
    | Some c ->
        Obs.Counter.incr m_dict_hits;
        c
    | None ->
        Obs.Counter.incr m_dict_misses;
        dict_append d s

let dict_size d = d.dn
let dict_entry d c = d.dvals.(c)

(* Cardinality cutoff for dictionary encoding. Past this many distinct
   entries a per-batch dictionary is paying a hash and an append per
   cell while compressing nothing (think generated names, one fresh
   string per row) — the column is better off boxed. Categorical
   columns (flags, segments, ship modes, brands) stay far below it. *)
let dict_demote = 64

let dict_of_strings vals =
  let d = dict_create ~cap:(max 1 (Array.length vals)) () in
  Array.iter (fun s -> ignore (dict_append d s)) vals;
  d

type t = {
  cols : col array;
  mults : float array;
  n : int;
  tbase : int; (* cachesim arena base; 0 = untraced batch *)
  tstride : int; (* rows per column in the arena layout *)
  mutable bytes : int; (* memoized [byte_size]; -1 = not yet computed *)
}

let width t = Array.length t.cols
let length t = t.n
let col t c = t.cols.(c)
let mults t = t.mults

let get c i =
  match c with
  | CInt a -> Value.Int (Array.unsafe_get a i)
  | CDate a -> Value.Date (Array.unsafe_get a i)
  | CFloat a -> Value.Float (Array.unsafe_get a i)
  | CDict (d, c) -> Array.unsafe_get d.dboxed (Array.unsafe_get c i)
  | CBoxed a -> Array.unsafe_get a i

let float_get c i =
  match c with
  | CFloat a -> Array.unsafe_get a i
  | CInt a | CDate a -> float_of_int (Array.unsafe_get a i)
  | CDict (d, c) -> Value.to_float (Array.unsafe_get d.dboxed (Array.unsafe_get c i))
  | CBoxed a -> Value.to_float (Array.unsafe_get a i)

let column t c = Array.init t.n (get t.cols.(c))

(* ------------------------------------------------------------------ *)
(* Construction: per-column representation commitment                  *)
(* ------------------------------------------------------------------ *)

let new_col cap (v : Value.t) : col =
  match v with
  | Value.Int _ -> CInt (Array.make cap 0)
  | Value.Date _ -> CDate (Array.make cap 0)
  | Value.Float _ -> CFloat (Array.make cap 0.)
  (* Strings commit to [CBoxed]: transposition stays a pointer write
     per cell. Dictionary encoding is an explicit upgrade for the
     columns that profit from it — filter-kernel operands and
     compaction keys ([dictify_cols], driven by the runtime's planner)
     and whole batches headed for the wire ([dictify]). *)
  | Value.String _ -> CBoxed (Array.make cap v)

let box_upto c i cap =
  let out = Array.make cap (Value.Int 0) in
  for j = 0 to i - 1 do
    out.(j) <- get c j
  done;
  out

(* Write cell [i] of column [ci]; the first value whose type does not
   match the committed representation promotes the column to boxed. *)
let set_cell (cols : col array) ci cap i (v : Value.t) =
  match (Array.unsafe_get cols ci, v) with
  | CInt a, Value.Int x -> Array.unsafe_set a i x
  | CDate a, Value.Date x -> Array.unsafe_set a i x
  | CFloat a, Value.Float x -> Array.unsafe_set a i x
  | CDict (d, c), Value.String s ->
      Array.unsafe_set c i (dict_intern d s);
      (* high-cardinality column: demote to boxed for the rest of the
         fill ([box_upto] replays the interned prefix as shared boxes) *)
      if d.dn > dict_demote then
        cols.(ci) <- CBoxed (box_upto (CDict (d, c)) (i + 1) cap)
  | CBoxed a, v -> Array.unsafe_set a i v
  | c, v ->
      let a = box_upto c i cap in
      a.(i) <- v;
      cols.(ci) <- CBoxed a

let trunc_col n c =
  match c with
  | CInt a -> if Array.length a = n then c else CInt (Array.sub a 0 n)
  | CDate a -> if Array.length a = n then c else CDate (Array.sub a 0 n)
  | CFloat a -> if Array.length a = n then c else CFloat (Array.sub a 0 n)
  | CDict (d, a) ->
      if Array.length a = n then c else CDict (d, Array.sub a 0 n)
  | CBoxed a -> if Array.length a = n then c else CBoxed (Array.sub a 0 n)

(* Trace arena for a batch: one region holding [w] columns of [stride]
   rows column-major, multiplicities after the columns. *)
let alloc_arena w stride =
  if Trace.enabled () && stride > 0 then
    Trace.alloc_region (((w + 1) * stride * 8) + 64)
  else 0

let cell_addr t c i = t.tbase + (((c * t.tstride) + i) * 8)

let of_iter ~width ~count iter =
  let cap = count in
  let cols = Array.make width (CInt [||]) in
  let mults = Array.make cap 0. in
  let tbase = alloc_arena width cap in
  let i = ref 0 in
  iter (fun (tup : Vtuple.t) m ->
      let r = !i in
      if r = 0 then
        for c = 0 to width - 1 do
          cols.(c) <- new_col cap tup.(c)
        done;
      for c = 0 to width - 1 do
        set_cell cols c cap r tup.(c);
        if tbase <> 0 then
          Trace.emit (tbase + (((c * cap) + r) * 8)) Trace.Write
      done;
      mults.(r) <- m;
      if tbase <> 0 then
        Trace.emit (tbase + (((width * cap) + r) * 8)) Trace.Write;
      incr i);
  let n = !i in
  {
    cols = Array.map (trunc_col n) cols;
    mults = (if n = cap then mults else Array.sub mults 0 n);
    n;
    tbase;
    tstride = cap;
    bytes = -1;
  }

let of_gmr ~width g =
  of_iter ~width ~count:(Gmr.cardinal g) (fun f -> Gmr.iter f g)

let of_cols cols ~mults =
  let n = Array.length mults in
  Array.iter
    (fun c ->
      let l =
        match c with
        | CInt a | CDate a -> Array.length a
        | CFloat a -> Array.length a
        | CDict (_, a) -> Array.length a
        | CBoxed a -> Array.length a
      in
      if l <> n then invalid_arg "Colbatch.of_cols: column length mismatch")
    cols;
  { cols; mults; n; tbase = 0; tstride = 0; bytes = -1 }

let to_gmr t =
  let g = Gmr.create ~size:t.n () in
  let w = width t in
  for i = 0 to t.n - 1 do
    let tup = Array.init w (fun c -> get t.cols.(c) i) in
    (if t.tbase <> 0 then
       for c = 0 to w - 1 do
         Trace.emit (cell_addr t c i) Trace.Read
       done);
    Gmr.add g tup t.mults.(i)
  done;
  g

let iter_rows t f =
  let w = width t in
  let row = Array.make w (Value.Int 0) in
  for i = 0 to t.n - 1 do
    for c = 0 to w - 1 do
      row.(c) <- get (Array.unsafe_get t.cols c) i;
      if t.tbase <> 0 then Trace.emit (cell_addr t c i) Trace.Read
    done;
    f row t.mults.(i)
  done

let gather_col (keep : int array) c =
  let m = Array.length keep in
  match c with
  | CInt a -> CInt (Array.init m (fun j -> Array.unsafe_get a keep.(j)))
  | CDate a -> CDate (Array.init m (fun j -> Array.unsafe_get a keep.(j)))
  | CFloat a -> CFloat (Array.init m (fun j -> Array.unsafe_get a keep.(j)))
  | CDict (d, a) ->
      CDict (d, Array.init m (fun j -> Array.unsafe_get a keep.(j)))
  | CBoxed a -> CBoxed (Array.init m (fun j -> Array.unsafe_get a keep.(j)))

let filter t pred =
  let keep = ref [] in
  for i = t.n - 1 downto 0 do
    if pred i then keep := i :: !keep
  done;
  let keep = Array.of_list !keep in
  {
    cols = Array.map (gather_col keep) t.cols;
    mults = Array.map (fun j -> t.mults.(j)) keep;
    n = Array.length keep;
    tbase = 0;
    tstride = 0;
    bytes = -1;
  }

let project t keep =
  {
    cols = Array.map (fun c -> t.cols.(c)) keep;
    mults = t.mults;
    n = t.n;
    tbase = 0;
    tstride = 0;
    bytes = -1;
  }

let aggregate t = to_gmr t

(* ------------------------------------------------------------------ *)
(* Row hashing (Vtuple/Oaidx-compatible, no boxing)                    *)
(* ------------------------------------------------------------------ *)

(* Replicates [Value.hash] cell by cell, so a hash folded over typed
   columns equals [Vtuple.hash] of the materialized row. The Int/Float
   normalization (integer-valued floats hash like the int) must match
   [Value.equal]'s cross-type equality. *)
let cell_vhash c i =
  match c with
  | CInt a -> Hashtbl.hash (Array.unsafe_get a i)
  | CDate a -> Hashtbl.hash (Array.unsafe_get a i lxor 0x5a5a)
  | CFloat a ->
      let x = Array.unsafe_get a i in
      if Float.is_integer x && Float.abs x < 1e15 then
        Hashtbl.hash (int_of_float x)
      else Hashtbl.hash x
  | CDict (d, c) -> Array.unsafe_get d.dvhash (Array.unsafe_get c i)
  | CBoxed a -> Value.hash (Array.unsafe_get a i)

let row_vhash (cols : col array) (sel : int array) i =
  let h = ref 17 in
  for c = 0 to Array.length sel - 1 do
    h :=
      (!h * 31)
      + cell_vhash (Array.unsafe_get cols (Array.unsafe_get sel c)) i
  done;
  !h land max_int

let row_hash cols sel i = Oaidx.finalize (row_vhash cols sel i)

let cell_veq c i (v : Value.t) =
  match (c, v) with
  | CInt a, Value.Int y -> Array.unsafe_get a i = y
  | CInt a, Value.Float y -> Float.equal (float_of_int (Array.unsafe_get a i)) y
  | CDate a, Value.Date y -> Array.unsafe_get a i = y
  | CFloat a, Value.Float y -> Float.equal (Array.unsafe_get a i) y
  | CFloat a, Value.Int y -> Float.equal (Array.unsafe_get a i) (float_of_int y)
  | CDict (d, c), Value.String y ->
      String.equal (Array.unsafe_get d.dvals (Array.unsafe_get c i)) y
  | CBoxed a, v -> Value.equal (Array.unsafe_get a i) v
  | _ -> false

let row_eq (cols : col array) (sel : int array) i (key : Vtuple.t) =
  Array.length key = Array.length sel
  &&
  let rec go c =
    c < 0
    || cell_veq (Array.unsafe_get cols (Array.unsafe_get sel c)) i key.(c)
       && go (c - 1)
  in
  go (Array.length sel - 1)

let row_tuple (cols : col array) (sel : int array) i =
  Array.init (Array.length sel) (fun c -> get cols.(sel.(c)) i)

(* ------------------------------------------------------------------ *)
(* Batch compaction: radix-hash partitioning                           *)
(* ------------------------------------------------------------------ *)

(* Test hook: when set to [Some b], every per-cell compaction hash keeps
   only its low [b] bits, forcing distinct values to collide so the
   comparison fallback is exercised. *)
let hash_bits_for_tests : int option ref = ref None

let mixmul = 0x2545F4914F6CDD1D

(* Internal fast cell hash for compaction ordering — consistent with
   cell equality within one column (the only comparisons compaction
   makes), including the Int/Float normalization boxed columns need.
   Unlike [cell_vhash] this never calls [Hashtbl.hash] on immediates. *)
let cell_ih c i =
  match c with
  | CInt a -> Array.unsafe_get a i
  | CDate a -> Array.unsafe_get a i lxor 0x5a5a
  | CFloat a ->
      let x = Array.unsafe_get a i in
      if Float.is_integer x && Float.abs x < 1e15 then int_of_float x
      else Int64.to_int (Int64.bits_of_float x)
  | CDict (_, c) ->
      (* Codes are unique per string within one dict, and compaction only
         compares cells within one column, so the raw code is consistent
         with [cells_eq] — no string hashing in the hot loop. *)
      Array.unsafe_get c i
  | CBoxed a -> (
      match Array.unsafe_get a i with
      | Value.Int x -> x
      | Value.Date x -> x lxor 0x5a5a
      | Value.Float x ->
          if Float.is_integer x && Float.abs x < 1e15 then int_of_float x
          else Int64.to_int (Int64.bits_of_float x)
      | Value.String s -> Hashtbl.hash s)

let fin h =
  let h = h lxor (h lsr 29) in
  let h = h * mixmul in
  h lxor (h lsr 32)

(* Cells of rows [a] and [b] equal in column [c]? Typed compare — no
   boxing, and [Value.equal] only for genuinely mixed columns. *)
let cells_eq c a b =
  match c with
  | CInt x | CDate x -> Array.unsafe_get x a = Array.unsafe_get x b
  | CFloat x -> Float.equal (Array.unsafe_get x a) (Array.unsafe_get x b)
  | CDict (_, x) -> Array.unsafe_get x a = Array.unsafe_get x b
  | CBoxed x -> Value.equal (Array.unsafe_get x a) (Array.unsafe_get x b)

(* Stable counting partition of [perm_in] by [keys land bmask]. *)
let counting_pass (keys : int array) (perm_in : int array)
    (perm_out : int array) (cnt : int array) bmask =
  Array.fill cnt 0 (bmask + 1) 0;
  let n = Array.length perm_in in
  for i = 0 to n - 1 do
    let b = Array.unsafe_get keys (Array.unsafe_get perm_in i) land bmask in
    Array.unsafe_set cnt b (Array.unsafe_get cnt b + 1)
  done;
  let acc = ref 0 in
  for b = 0 to bmask do
    let c = Array.unsafe_get cnt b in
    Array.unsafe_set cnt b !acc;
    acc := !acc + c
  done;
  for i = 0 to n - 1 do
    let r = Array.unsafe_get perm_in i in
    let b = Array.unsafe_get keys r land bmask in
    Array.unsafe_set perm_out (Array.unsafe_get cnt b) r;
    Array.unsafe_set cnt b (Array.unsafe_get cnt b + 1)
  done

(* Shared commit walk: given rows in an order that places duplicates
   (rows equal on every selected column) adjacently, merge runs, detect
   key-group boundaries by comparing actual cell values, optionally drop
   runs whose multiplicity cancelled, and gather the survivors into
   fresh typed columns. [dup] and [key_eq] compare two source rows. *)
let commit_walk t ~sel ~nk ~drop_cancelled ~(perm : int array)
    ~(dup : int -> int -> bool) ~(key_eq : int -> int -> bool) =
  let n = Array.length perm in
  let sw = Array.length sel in
  let src = Array.make n 0 in
  let msum = Array.make n 0. in
  let counts = Array.make n 0. in
  let starts = ref [ 0 ] in
  let out = ref 0 in
  let prev_key = ref (-1) in
  let cancelled = ref 0 in
  let i = ref 0 in
  while !i < n do
    let r0 = perm.(!i) in
    let m = ref t.mults.(r0) in
    let c = ref 1 in
    incr i;
    let continue = ref true in
    while !continue && !i < n do
      let r = perm.(!i) in
      if dup r0 r then begin
        m := !m +. t.mults.(r);
        incr c;
        incr i
      end
      else continue := false
    done;
    if drop_cancelled && Float.abs !m < Mult.zero_eps then
      cancelled := !cancelled + !c
    else begin
      if !out > 0 && nk > 0 && not (key_eq !prev_key r0) then
        starts := !out :: !starts;
      src.(!out) <- r0;
      msum.(!out) <- !m;
      counts.(!out) <- float_of_int !c;
      prev_key := r0;
      incr out
    end
  done;
  if !cancelled > 0 then Obs.Counter.add m_cancelled !cancelled;
  let m = !out in
  let src = if m = n then src else Array.sub src 0 m in
  let obase = alloc_arena sw m in
  let cols =
    Array.init sw (fun c ->
        let cin = t.cols.(sel.(c)) in
        let out = gather_col src cin in
        if obase <> 0 then
          for k = 0 to m - 1 do
            if t.tbase <> 0 then
              Trace.emit (cell_addr t sel.(c) src.(k)) Trace.Read;
            Trace.emit (obase + (((c * m) + k) * 8)) Trace.Write
          done;
        out)
  in
  let trunc a = if Array.length a = m then a else Array.sub a 0 m in
  let batch =
    {
      cols;
      mults = trunc msum;
      n = m;
      tbase = obase;
      tstride = m;
      bytes = -1;
    }
  in
  let starts =
    if m = 0 then [| 0 |] else Array.of_list (List.rev (m :: !starts))
  in
  (batch, starts, trunc counts)

let compact_group ?(drop_cancelled = false) t ~key ~rest =
  let n = t.n in
  let sel = Array.append key rest in
  let nk = Array.length key in
  let sw = Array.length sel in
  let nr = Array.length rest in
  (* Per-row hashes: [hk] over the grouping key, [ha] over every selected
     column ([ha] continues the unfinalized key fold). The test hook masks
     each cell hash to force collisions. *)
  let cmask =
    match !hash_bits_for_tests with None -> -1 | Some b -> (1 lsl b) - 1
  in
  let hk = Array.make (max n 1) 0 in
  let ha = Array.make (max n 1) 0 in
  let traced = t.tbase <> 0 in
  for i = 0 to n - 1 do
    let h = ref 17 in
    for c = 0 to nk - 1 do
      let x = cell_ih (Array.unsafe_get t.cols (Array.unsafe_get key c)) i in
      h := (!h + (x land cmask)) * mixmul;
      if traced then Trace.emit (cell_addr t key.(c) i) Trace.Read
    done;
    Array.unsafe_set hk i (fin !h);
    for c = 0 to nr - 1 do
      let x = cell_ih (Array.unsafe_get t.cols (Array.unsafe_get rest c)) i in
      h := (!h + (x land cmask)) * mixmul;
      if traced then Trace.emit (cell_addr t rest.(c) i) Trace.Read
    done;
    Array.unsafe_set ha i (fin !h)
  done;
  (* Order rows by (key hash, full hash) with two stable counting passes:
     minor pass on [ha], major pass on [hk]. Duplicate rows always share
     both hashes, so they land adjacently (up to low-bit collisions, which
     at worst split a run — linearly equivalent downstream). Key groups
     end up contiguous for the same reason. *)
  let bbits =
    let rec go b = if 1 lsl b >= n || b >= 16 then b else go (b + 1) in
    go 4
  in
  let bmask = (1 lsl bbits) - 1 in
  let cnt = Array.make (bmask + 1) 0 in
  let perm0 = Array.init n (fun i -> i) in
  let perm1 = Array.make n 0 in
  let perm =
    if sw = 0 then perm0
    else if nr = 0 then begin
      (* sel = key: one pass on hk *)
      counting_pass hk perm0 perm1 cnt bmask;
      perm1
    end
    else if nk = 0 then begin
      (* no grouping: one pass on ha *)
      counting_pass ha perm0 perm1 cnt bmask;
      perm1
    end
    else begin
      counting_pass ha perm0 perm1 cnt bmask;
      counting_pass hk perm1 perm0 cnt bmask;
      perm0
    end
  in
  let dup a b =
    hk.(a) = hk.(b)
    && ha.(a) = ha.(b)
    &&
    let rec go c =
      c < 0
      || cells_eq (Array.unsafe_get t.cols (Array.unsafe_get sel c)) a b
         && go (c - 1)
    in
    go (sw - 1)
  in
  let key_eq a b =
    hk.(a) = hk.(b)
    &&
    let rec go c =
      c < 0
      || cells_eq (Array.unsafe_get t.cols (Array.unsafe_get key c)) a b
         && go (c - 1)
    in
    go (nk - 1)
  in
  commit_walk t ~sel ~nk ~drop_cancelled ~perm ~dup ~key_eq

(* Sort-based reference (the PR 4 algorithm): comparison sort over boxed
   cell values. Kept as the equivalence oracle for the radix path. *)
let compact_group_sorted ?(drop_cancelled = false) t ~key ~rest =
  let n = t.n in
  let sel = Array.append key rest in
  let nk = Array.length key in
  let sw = Array.length sel in
  let cmp_upto k a b =
    let rec go c =
      if c >= k then 0
      else
        let r = Value.compare (get t.cols.(sel.(c)) a) (get t.cols.(sel.(c)) b) in
        if r <> 0 then r else go (c + 1)
    in
    go 0
  in
  let perm = Array.init n (fun i -> i) in
  Array.sort (cmp_upto sw) perm;
  commit_walk t ~sel ~nk ~drop_cancelled ~perm
    ~dup:(fun a b -> cmp_upto sw a b = 0)
    ~key_eq:(fun a b -> cmp_upto nk a b = 0)

(* ------------------------------------------------------------------ *)
(* Size accounting                                                     *)
(* ------------------------------------------------------------------ *)

let col_bytes n c =
  match c with
  | CInt _ | CDate _ | CFloat _ -> 8 * n
  | CDict (d, _) ->
      (* dictionary payload (count + length-prefixed entries, matching
         [Value.byte_size] per string) + one i32 code per row *)
      let s = ref 4 in
      for e = 0 to d.dn - 1 do
        s := !s + 4 + String.length d.dvals.(e)
      done;
      !s + (4 * n)
  | CBoxed a ->
      let s = ref 0 in
      for i = 0 to n - 1 do
        s := !s + Value.byte_size a.(i)
      done;
      !s

let byte_size t =
  if t.bytes < 0 then
    t.bytes <-
      Array.fold_left (fun acc c -> acc + col_bytes t.n c) (8 * t.n) t.cols;
  t.bytes

(* Representation upgrade: promote one [CBoxed] column holding only
   strings to [CDict] in place. Columns whose dictionary would exceed
   [dict_demote] distinct entries are left boxed — encoding
   near-distinct strings (generated names) pays hash-and-append per
   cell and compresses nothing. Returns whether the column changed. *)
let dictify_col t ci =
  match t.cols.(ci) with
  | CBoxed a
    when Array.length a > 0
         && Array.for_all (function Value.String _ -> true | _ -> false) a
    -> (
      let d = dict_create () in
      try
        let codes =
          Array.map
            (function
              | Value.String s ->
                  let code = dict_intern d s in
                  if d.dn > dict_demote then raise Exit;
                  code
              | _ -> assert false)
            a
        in
        t.cols.(ci) <- CDict (d, codes);
        true
      with Exit -> false)
  | _ -> false

(* Targeted upgrade: the runtime's planner names the columns whose
   dictionary form pays for itself this batch (string filter-kernel
   operands, string compaction keys). Already-[CDict] and non-string
   columns are skipped. Invalidates the [byte_size] memo on change. *)
let dictify_cols t cis =
  let changed =
    List.fold_left (fun acc ci -> dictify_col t ci || acc) false cis
  in
  if changed then t.bytes <- -1

(* Whole-batch upgrade for the wire path: every all-string column below
   the cardinality cutoff ships as dictionary + codes. *)
let dictify t =
  let changed = ref false in
  for ci = 0 to Array.length t.cols - 1 do
    if dictify_col t ci then changed := true
  done;
  if !changed then t.bytes <- -1
