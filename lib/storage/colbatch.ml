open Divm_ring

type t = {
  columns : Value.t array array; (* [width][length] *)
  mults : float array;
  n : int;
}

let width t = Array.length t.columns
let length t = t.n

let of_gmr ~width g =
  let n = Gmr.cardinal g in
  let columns = Array.init width (fun _ -> Array.make n (Value.Int 0)) in
  let mults = Array.make n 0. in
  let i = ref 0 in
  Gmr.iter
    (fun tup m ->
      for c = 0 to width - 1 do
        columns.(c).(!i) <- tup.(c)
      done;
      mults.(!i) <- m;
      incr i)
    g;
  { columns; mults; n }

let of_iter ~width ~count iter =
  let columns = Array.init width (fun _ -> Array.make count (Value.Int 0)) in
  let mults = Array.make count 0. in
  let i = ref 0 in
  iter (fun tup m ->
      for c = 0 to width - 1 do
        columns.(c).(!i) <- tup.(c)
      done;
      mults.(!i) <- m;
      incr i);
  { columns; mults; n = !i }

let to_gmr t =
  let g = Gmr.create ~size:t.n () in
  let w = width t in
  for i = 0 to t.n - 1 do
    let tup = Array.init w (fun c -> t.columns.(c).(i)) in
    Gmr.add g tup t.mults.(i)
  done;
  g

let column t c = t.columns.(c)
let mults t = t.mults

let iter_rows t f =
  let w = width t in
  let row = Array.make w (Value.Int 0) in
  for i = 0 to t.n - 1 do
    for c = 0 to w - 1 do
      row.(c) <- t.columns.(c).(i)
    done;
    f row t.mults.(i)
  done

let filter t pred =
  let keep = ref [] in
  for i = t.n - 1 downto 0 do
    if pred i then keep := i :: !keep
  done;
  let keep = Array.of_list !keep in
  let n = Array.length keep in
  {
    columns =
      Array.map (fun col -> Array.init n (fun j -> col.(keep.(j)))) t.columns;
    mults = Array.init n (fun j -> t.mults.(keep.(j)));
    n;
  }

let project t keep =
  { t with columns = Array.map (fun c -> t.columns.(c)) keep }

let aggregate t = to_gmr t

let compact_group t ~key ~rest =
  let n = t.n in
  let sel = Array.append key rest in
  let nk = Array.length key in
  let sw = Array.length sel in
  let idx = Array.init n (fun i -> i) in
  (* compare rows [a] and [b] on the first [k] selected columns *)
  let cmp_upto k a b =
    let rec go c =
      if c >= k then 0
      else
        let r = Value.compare t.columns.(sel.(c)).(a) t.columns.(sel.(c)).(b) in
        if r <> 0 then r else go (c + 1)
    in
    go 0
  in
  Array.sort (cmp_upto sw) idx;
  let columns = Array.init sw (fun _ -> Array.make n (Value.Int 0)) in
  let msum = Array.make n 0. in
  let counts = Array.make n 0. in
  let starts = ref [ 0 ] in
  let out = ref 0 in
  for i = 0 to n - 1 do
    let r = idx.(i) in
    if i > 0 && cmp_upto sw idx.(i - 1) r = 0 then begin
      (* duplicate of the previous emitted row on every selected column:
         coalesce multiplicities in place *)
      msum.(!out - 1) <- msum.(!out - 1) +. t.mults.(r);
      counts.(!out - 1) <- counts.(!out - 1) +. 1.
    end
    else begin
      if !out > 0 && nk > 0 && cmp_upto nk idx.(i - 1) r <> 0 then
        starts := !out :: !starts;
      for c = 0 to sw - 1 do
        columns.(c).(!out) <- t.columns.(sel.(c)).(r)
      done;
      msum.(!out) <- t.mults.(r);
      counts.(!out) <- 1.;
      incr out
    end
  done;
  let m = !out in
  let trunc a = if Array.length a = m then a else Array.sub a 0 m in
  let batch =
    { columns = Array.map trunc columns; mults = trunc msum; n = m }
  in
  let starts =
    if m = 0 then [| 0 |] else Array.of_list (List.rev (m :: !starts))
  in
  (batch, starts, trunc counts)

let byte_size t =
  let acc = ref (8 * t.n) in
  Array.iter
    (fun col -> Array.iter (fun v -> acc := !acc + Value.byte_size v) col)
    t.columns;
  !acc
