type t = { mutable a : int array; mutable len : int }

let create ?(cap = 8) () = { a = Array.make (max 1 cap) 0; len = 0 }
let length t = t.len
let is_empty t = t.len = 0
let get t i = Array.unsafe_get t.a i
let set t i x = Array.unsafe_set t.a i x

let push t x =
  if t.len = Array.length t.a then begin
    let a' = Array.make (max 8 (2 * t.len)) 0 in
    Array.blit t.a 0 a' 0 t.len;
    t.a <- a'
  end;
  Array.unsafe_set t.a t.len x;
  t.len <- t.len + 1

let pop t =
  t.len <- t.len - 1;
  Array.unsafe_get t.a t.len

let clear t = t.len <- 0

let copy t = { a = Array.copy t.a; len = t.len }

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.a i)
  done
